
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frameworks/aurora_like_framework.cc" "src/frameworks/CMakeFiles/heron_frameworks.dir/aurora_like_framework.cc.o" "gcc" "src/frameworks/CMakeFiles/heron_frameworks.dir/aurora_like_framework.cc.o.d"
  "/root/repo/src/frameworks/framework.cc" "src/frameworks/CMakeFiles/heron_frameworks.dir/framework.cc.o" "gcc" "src/frameworks/CMakeFiles/heron_frameworks.dir/framework.cc.o.d"
  "/root/repo/src/frameworks/sim_cluster.cc" "src/frameworks/CMakeFiles/heron_frameworks.dir/sim_cluster.cc.o" "gcc" "src/frameworks/CMakeFiles/heron_frameworks.dir/sim_cluster.cc.o.d"
  "/root/repo/src/frameworks/yarn_like_framework.cc" "src/frameworks/CMakeFiles/heron_frameworks.dir/yarn_like_framework.cc.o" "gcc" "src/frameworks/CMakeFiles/heron_frameworks.dir/yarn_like_framework.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/heron_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
