// Ablation: the two §IV-A packing policies the paper contrasts — Round
// Robin ("optimize for load balancing") vs First Fit Decreasing bin
// packing ("reduce the total cost ... minimum number of containers") —
// plus the resource-compliant middle ground, across topology sizes.
//
// Reports container count (pay-as-you-go cost proxy) and load balance
// (max/mean instance count per container).

#include <algorithm>

#include "bench/figures/fig_util.h"
#include "packing/packing_registry.h"
#include "workloads/word_count.h"

using namespace heron;

namespace {

struct PolicyStats {
  int containers = 0;
  double balance = 0;  ///< max/mean instances per container; 1.0 = perfect.
  double max_cpu = 0;  ///< Largest container CPU ask (homogeneous sizing).
};

PolicyStats Evaluate(const std::string& policy, int spouts, int bolts) {
  auto topology =
      workloads::BuildWordCountTopology("ablation", spouts, bolts);
  HERON_CHECK_OK(topology.status());
  auto packing = packing::PackingRegistry::Global()->Create(policy);
  HERON_CHECK_OK(packing.status());
  Config config;
  config.SetDouble(config_keys::kContainerCpuHint, 9.0);
  config.SetInt(config_keys::kContainerRamMbHint, 10 * 1024);
  HERON_CHECK_OK((*packing)->Initialize(config, *topology));
  auto plan = (*packing)->Pack();
  HERON_CHECK_OK(plan.status());

  PolicyStats stats;
  stats.containers = plan->NumContainers();
  size_t max_instances = 0;
  size_t total_instances = 0;
  for (const auto& c : plan->containers()) {
    max_instances = std::max(max_instances, c.instances.size());
    total_instances += c.instances.size();
    stats.max_cpu = std::max(stats.max_cpu, c.required.cpu);
  }
  stats.balance = static_cast<double>(max_instances) /
                  (static_cast<double>(total_instances) /
                   static_cast<double>(stats.containers));
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseSmoke(argc, argv);
  bench::PrintFigureHeader(
      "Ablation: packing policy (Resource Manager, §IV-A)",
      "Round Robin balances load; bin packing minimizes containers (cost)");
  bench::PrintColumns({"topology", "policy", "containers", "balance",
                       "max_cpu_ask"});

  for (const auto& [spouts, bolts] : std::vector<std::pair<int, int>>{
           {25, 25}, {100, 100}, {200, 200}, {10, 100}}) {
    for (const auto& [policy, label] :
         std::vector<std::pair<std::string, std::string>>{
             {"ROUND_ROBIN", "RR"},
             {"FIRST_FIT_DECREASING", "FFD_BINPACK"},
             {"RESOURCE_COMPLIANT_RR", "RC_RR"}}) {
      const PolicyStats stats = Evaluate(policy, spouts, bolts);
      char topo[32];
      std::snprintf(topo, sizeof(topo), "%dx%d", spouts, bolts);
      bench::PrintCell(topo);
      bench::PrintCell(label.c_str());
      bench::PrintCellInt(stats.containers);
      bench::PrintCell(stats.balance);
      bench::PrintCell(stats.max_cpu);
      bench::EndRow();
    }
  }
  std::printf(
      "\n  Reading: FIRST_FIT_DECREASING packs the same topology into fewer\n"
      "  containers (lower cost) at the price of skew; ROUND_ROBIN keeps\n"
      "  balance ~1.0 with more containers. Different topologies on one\n"
      "  cluster can each pick their own policy (§IV-A).\n");
  return 0;
}
