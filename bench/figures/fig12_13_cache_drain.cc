// Reproduces Figures 12 and 13: throughput and latency as a function of
// the Stream Manager cache drain frequency (§V-B), for three parallelism
// levels.
//
// "As the time threshold to drain the cache increases the overall
// throughput gradually increases until it reaches a peak point. After
// that point, the throughput starts decreasing. ... as the time threshold
// increases, the latency improves until the system reaches a point where
// the additional queuing delays hurt performance." (§VI-C)

#include <vector>

#include "bench/figures/fig_util.h"
#include "sim/heron_model.h"

using namespace heron;
using namespace heron::sim;

int main(int argc, char** argv) {
  bench::ParseSmoke(argc, argv);
  bench::JsonReport report("fig12_13_cache_drain");
  HeronCostModel costs;
  const std::vector<double> sweep = {1, 2, 5, 10, 15, 20, 25, 30, 35};

  bench::PrintFigureHeader(
      "Figure 12: Throughput vs cache drain frequency | Figure 13: Latency "
      "vs cache drain frequency",
      "Throughput peaks at an intermediate drain period then declines; "
      "latency eventually rises with the drain period");

  for (const int p : {25, 100, 200}) {
    std::printf("\n-- %d spouts / %d bolts --\n", p, p);
    bench::PrintColumns({"drain_ms", "tput_Mt/min", "latency_ms"});
    double peak_tput = 0, peak_at = 0;
    double first_tput = 0, last_tput = 0;
    for (const double drain : sweep) {
      HeronSimConfig config;
      config.spouts = config.bolts = p;
      config.acking = true;
      config.max_spout_pending = 20000;
      config.cache_drain_frequency_ms = drain;
      config.warmup_sec = bench::WarmupSec();
      config.measure_sec = bench::MeasureSec();
      const SimResult r = RunHeronSim(config, costs);
      bench::PrintCell(drain);
      bench::PrintCell(r.tuples_per_min / 1e6);
      bench::PrintCell(r.latency_ms_mean);
      bench::EndRow();
      const std::string scenario = "p" + std::to_string(p) + "_drain_" +
                                   std::to_string(static_cast<int>(drain));
      report.Add(scenario, "tput_mtuples_min", r.tuples_per_min / 1e6);
      report.Add(scenario, "latency_ms", r.latency_ms_mean);
      if (r.tuples_per_min > peak_tput) {
        peak_tput = r.tuples_per_min;
        peak_at = drain;
      }
      if (drain == sweep.front()) first_tput = r.tuples_per_min;
      if (drain == sweep.back()) last_tput = r.tuples_per_min;
    }
    std::printf(
        "  shape: peak %.0f Mt/min at %.0f ms; edges at %.0f (1 ms) and %.0f "
        "(35 ms) Mt/min — interior peak %s\n",
        peak_tput / 1e6, peak_at, first_tput / 1e6, last_tput / 1e6,
        (peak_tput > first_tput && peak_tput > last_tput) ? "CONFIRMED"
                                                          : "NOT OBSERVED");
  }
  report.Write();
  return 0;
}
