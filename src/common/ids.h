#ifndef HERON_COMMON_IDS_H_
#define HERON_COMMON_IDS_H_

#include <cstdint>
#include <string>

namespace heron {

/// Identifier vocabulary shared across modules. These are deliberately
/// plain typedefs (not strong types) to keep the serialized wire formats
/// simple; naming documents intent at API boundaries.

/// Logical component name in a topology ("sentence-spout", "count-bolt").
using ComponentId = std::string;

/// Global index of a Heron Instance within a topology, dense from 0.
using TaskId = int32_t;

/// Container ordinal within a topology; container 0 runs the TMaster.
using ContainerId = int32_t;

/// Stream name within a component; the default stream is "default".
using StreamId = std::string;

inline constexpr char kDefaultStreamId[] = "default";

/// \brief Generates process-unique identifiers ("t-42") for topologies,
/// sessions and ephemeral nodes. Thread-safe.
class IdGenerator {
 public:
  /// Returns "<prefix>-<n>" with a process-wide monotonically increasing n.
  static std::string Next(const std::string& prefix);
};

}  // namespace heron

#endif  // HERON_COMMON_IDS_H_
