# Empty dependencies file for fig12_13_cache_drain.
# This may be replaced when dependencies are built.
