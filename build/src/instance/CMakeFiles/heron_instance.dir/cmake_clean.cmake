file(REMOVE_RECURSE
  "CMakeFiles/heron_instance.dir/instance.cc.o"
  "CMakeFiles/heron_instance.dir/instance.cc.o.d"
  "CMakeFiles/heron_instance.dir/outbox.cc.o"
  "CMakeFiles/heron_instance.dir/outbox.cc.o.d"
  "libheron_instance.a"
  "libheron_instance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
