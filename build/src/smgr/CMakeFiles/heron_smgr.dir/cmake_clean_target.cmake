file(REMOVE_RECURSE
  "libheron_smgr.a"
)
