// Tail latency by execution mode: thread-per-instance vs the cooperative
// tasklet engine, across idle policies.
//
// The experiment the cooperative engine exists for: once instances
// outnumber cores, thread-per-instance hands every tuple handoff to the
// kernel scheduler, and the p99.9/p99.99 complete latency inflates by the
// scheduling quantum. The cooperative engine multiplexes every module
// loop onto a fixed worker set with bounded (AIMD-autotuned) slices, so
// the deep tail is a function of the pass length — microseconds — rather
// than of CFS wakeup jitter — milliseconds.
//
// One WordChain topology (1 spout -> 3 relay stages x4 -> 8 count bolts,
// 4 containers, acking) is deliberately deep, wide AND bursty: every relay
// stage adds one module handoff to the tuple's critical path, so in
// thread mode each word pays ~8 kernel wake-chains end to end and the
// tail of each 64-word emission burst rides a convoy of them, while in
// cooperative mode the whole chain rides the tasklet pool's passes. The
// spout is rate-limited below thread-mode saturation, so both modes
// carry the same offered load — equal throughput by construction — and
// the complete-latency distribution isolates scheduling. The scenarios
// run in interleaved rounds and each reports its least-polluted run by
// p99.99 (the deep tail of a short run is a max statistic, and one
// stray host-side preemption must not decide the verdict either way).
//
// Scenarios: thread | coop-condvar-park | coop-adaptive-spin |
// coop-busy-spin. For each: acks/sec plus complete-latency
// p50/p99/p99.9/p99.99.
//
// Verdict (full mode only — `--smoke` reports without enforcing): the
// best cooperative policy must beat thread-per-instance p99.99 by >= 5x
// at >= 0.9x its throughput, or the binary exits non-zero. CI's
// bench-regress lane then tracks the archived ratios against
// bench/baselines/.

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>
#include <string>
#include <vector>

#include "bench/figures/fig_util.h"
#include "common/logging.h"
#include "runtime/local_cluster.h"
#include "workloads/word_count.h"

using namespace heron;

namespace {

struct ModeResult {
  std::string name;
  double acks_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double p9999_ms = 0;
  bool ok = false;
};

ModeResult RunModeOnce(const std::string& name, const std::string& mode,
                       const std::string& idle_policy) {
  ModeResult out;
  out.name = name;
  // instance.acked on the "word" component counts data-branch root
  // completions, i.e. measured words.
  const uint64_t target_acks = bench::FastMode() ? 4000 : 30000;

  Config config;
  config.SetInt(config_keys::kNumContainersHint, 4);
  config.SetBool(config_keys::kAckingEnabled, true);
  // Shallow enough that the standing queue does not drown the scheduling
  // tail (Little's law: a deep pending window makes every mode look the
  // same), deep enough to keep the pipeline busy end to end.
  config.SetInt(config_keys::kMaxSpoutPending, 512);
  // Drain the SMGR cache eagerly (size trigger 1 byte, 1ms timer as the
  // backstop): a 10ms drain period would quantize every tuple's complete
  // latency to the timer and hide the scheduler entirely. Eager drains
  // make complete latency traversal-bound — the quantity the two
  // execution modes actually differ on.
  config.SetInt(config_keys::kCacheDrainFrequencyMs, 1);
  config.SetInt(config_keys::kCacheDrainSizeBytes, 1);
  // Collection rounds snapshot every histogram on the housekeeping loop
  // (a tasklet in cooperative mode, on the same worker as the data path):
  // each round is a self-inflicted multi-hundred-microsecond stall. The
  // bench reads counters and quantiles live (SumCounter sweeps instance
  // metrics directly), so push collection past the run window entirely.
  config.SetInt(config_keys::kMetricsCollectIntervalMs, 5000);
  config.Set(config_keys::kExecutionMode, mode);
  // Cooperative tail = (tasklets on the worker) x (slice target): with
  // ~17 module loops riding one worker, the default 200us slice puts a
  // full round-robin pass into the milliseconds. 25us keeps a quiet pass
  // in the tens of microseconds, and the derived step bound (8x = 200us)
  // lets one step still swallow an entire 64-word burst at the SMGR's
  // ~3us/tuple — sizing steps to the slice itself would convoy each
  // burst across many passes.
  config.SetInt(config_keys::kExecutionSliceNanos, 25000);
  if (!idle_policy.empty()) {
    config.Set(config_keys::kExecutionIdlePolicy, idle_policy);
  }

  runtime::LocalCluster cluster(config);
  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 1000;
  // Bursty emission, the paper's spout contract ("spouts are extremely
  // fast, if left unrestricted"): each NextTuple drains up to a full
  // 32-word burst of accrued rate tokens. The tail of a burst convoys
  // through every hop — in thread mode that is 32 tuples' worth of
  // wake-chains stacked onto one word's critical path, in cooperative
  // mode one drain pass. The burst size is also the deep-tail floor for
  // a perfect scheduler (the burst's last word waits for the whole
  // burst's chain CPU), so it is kept small enough that the floor sits
  // well under the thread-mode quantum while still covering a ~0.45ms
  // token gap at the offered rate.
  spout_options.words_per_call = 32;
  // Fixed offered load, comfortably below thread-mode saturation on one
  // core: at saturation every mode's latency is queueing (Little's law),
  // and the comparison degenerates into the throughput ratio measured
  // separately. Below it, latency is traversal + scheduling — the thing
  // the two engines do differently.
  spout_options.target_rate_per_sec = 70000;
  // Finite stream: the spout stops itself after the sample budget, so the
  // main thread never needs to poll while tuples are in flight. On a
  // one-core host every mid-run poll preempts the pool worker and poisons
  // the in-flight tuples' latency — at a few polls per second that is
  // enough to own the p99.99 of a clean cooperative run.
  spout_options.warmup_emits = 5000;  // Unanchored: no latency samples.
  spout_options.emit_limit = spout_options.warmup_emits + target_acks;
  auto topology = workloads::BuildWordChainTopology(
      "tail-" + name, /*spouts=*/1, /*relay_stages=*/3,
      /*relay_parallelism=*/4, /*bolts=*/8, spout_options);
  if (!topology.ok() || !cluster.Submit(*topology).ok()) return out;

  // Sleep through the entire emission window before the first completion
  // check (see emit_limit above: polling mid-run would pollute the tail),
  // then poll the drained stream at leisure.
  const auto t0 = std::chrono::steady_clock::now();
  const double expected_secs = static_cast<double>(spout_options.emit_limit) /
                               spout_options.target_rate_per_sec;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(expected_secs * 1000) + 300));
  bool reached = false;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() < 120.0) {
    if (cluster.SumCounter("instance.acked", "word") >= target_acks) {
      reached = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!reached) {
    cluster.Kill().ok();
    return out;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const uint64_t acked = cluster.SumCounter("instance.acked", "word");
  out.acks_per_sec = secs > 0 ? static_cast<double>(acked) / secs : 0;
  const auto quantile_ms = [&cluster](double q) {
    return static_cast<double>(cluster.CompleteLatencyQuantile(q, "word")) /
           1e6;
  };
  out.p50_ms = quantile_ms(0.5);
  out.p99_ms = quantile_ms(0.99);
  out.p999_ms = quantile_ms(0.999);
  out.p9999_ms = quantile_ms(0.9999);
  out.ok = true;
  cluster.Kill().ok();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseSmoke(argc, argv);
  bench::JsonReport report("tail_latency_modes");
  Logging::SetLevel(LogLevel::kError);

  bench::PrintFigureHeader(
      "Tail latency by execution mode (thread-per-instance vs cooperative)",
      "Cooperative tasklet scheduling bounds the deep tail by the slice "
      "pass, not the kernel scheduling quantum: order-of-magnitude better "
      "p99.99 at equal throughput on an oversubscribed host");

  const std::vector<std::pair<std::string, std::pair<std::string, std::string>>>
      scenarios = {
          {"thread", {"thread", ""}},
          {"coop-condvar-park", {"cooperative", "condvar-park"}},
          {"coop-adaptive-spin", {"cooperative", "adaptive-spin"}},
          {"coop-busy-spin", {"cooperative", "busy-spin"}},
      };

  // Interleaved rounds, min-of-N by p99.99 per scenario. Two layers of
  // noise defense on a shared host: the deep tail of one short run is a
  // max statistic (one stray host preemption poisons every in-flight
  // tuple), so each scenario keeps its least-polluted run; and the rounds
  // interleave the scenarios so all of them sample the same minutes of
  // host weather — a sequential per-mode block could park one mode's
  // entire repeat budget inside a noisy patch.
  const int rounds = bench::FastMode() ? 1 : 10;
  std::vector<ModeResult> results(scenarios.size());
  for (int round = 0; round < rounds; ++round) {
    for (size_t i = 0; i < scenarios.size(); ++i) {
      ModeResult r = RunModeOnce(scenarios[i].first, scenarios[i].second.first,
                                 scenarios[i].second.second);
      if (!r.ok) {
        std::printf("  %s (did not complete!)\n", scenarios[i].first.c_str());
        return 1;
      }
      std::printf("  round %d %-20s p99.99 %7.1f ms  (p50 %5.1f, p99 %5.1f)\n",
                  round, scenarios[i].first.c_str(), r.p9999_ms, r.p50_ms,
                  r.p99_ms);
      if (!results[i].ok || r.p9999_ms < results[i].p9999_ms) {
        results[i] = std::move(r);
      }
    }
  }

  std::printf("\n-- complete latency by mode (acking WordChain 1->3x4->8, "
              "4 containers) --\n");
  bench::PrintColumns({"mode", "acks_per_s", "p50_ms", "p99_ms", "p999_ms",
                       "p9999_ms"});
  for (const ModeResult& r : results) {
    bench::PrintCell(r.name.c_str());
    bench::PrintCell(r.acks_per_sec);
    bench::PrintCell(r.p50_ms);
    bench::PrintCell(r.p99_ms);
    bench::PrintCell(r.p999_ms);
    bench::PrintCell(r.p9999_ms);
    bench::EndRow();
    report.Add(r.name, "acks_per_sec", r.acks_per_sec);
    report.Add(r.name, "p50_ms", r.p50_ms);
    report.Add(r.name, "p99_ms", r.p99_ms);
    report.Add(r.name, "p999_ms", r.p999_ms);
    report.Add(r.name, "p9999_ms", r.p9999_ms);
  }

  // The verdict compares thread-per-instance against the best cooperative
  // policy: the engine claims the *mechanism* wins, the policy sweep shows
  // how much each idle strategy pays for it.
  const ModeResult& thread_mode = results[0];
  const ModeResult* best_coop = nullptr;
  for (size_t i = 1; i < results.size(); ++i) {
    if (best_coop == nullptr || results[i].p9999_ms < best_coop->p9999_ms) {
      best_coop = &results[i];
    }
  }
  const double floor_ms = 1e-3;  // Histogram resolution floor.
  const double tail_win =
      std::max(thread_mode.p9999_ms, floor_ms) /
      std::max(best_coop->p9999_ms, floor_ms);
  const double throughput_ratio =
      thread_mode.acks_per_sec > 0
          ? best_coop->acks_per_sec / thread_mode.acks_per_sec
          : 0;

  std::printf("\n-- verdict (best cooperative: %s) --\n",
              best_coop->name.c_str());
  bench::PrintVerdict("p99.99 win (thread / cooperative)", tail_win, 5.0,
                      1e9);
  bench::PrintVerdict("throughput ratio (cooperative / thread)",
                      throughput_ratio, 0.9, 1e9);

  report.Add("verdict", "tail_win_ratio", tail_win);
  report.Add("verdict", "throughput_ratio", throughput_ratio);
  report.Write();

  if (!bench::FastMode() && (tail_win < 5.0 || throughput_ratio < 0.9)) {
    std::printf("\n  FAIL: cooperative engine did not clear the tail/"
                "throughput bar.\n");
    return 1;
  }
  return 0;
}
