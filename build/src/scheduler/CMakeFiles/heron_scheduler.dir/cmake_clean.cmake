file(REMOVE_RECURSE
  "CMakeFiles/heron_scheduler.dir/framework_scheduler.cc.o"
  "CMakeFiles/heron_scheduler.dir/framework_scheduler.cc.o.d"
  "CMakeFiles/heron_scheduler.dir/local_scheduler.cc.o"
  "CMakeFiles/heron_scheduler.dir/local_scheduler.cc.o.d"
  "CMakeFiles/heron_scheduler.dir/scheduler.cc.o"
  "CMakeFiles/heron_scheduler.dir/scheduler.cc.o.d"
  "libheron_scheduler.a"
  "libheron_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
