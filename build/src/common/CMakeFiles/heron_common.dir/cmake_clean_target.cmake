file(REMOVE_RECURSE
  "libheron_common.a"
)
