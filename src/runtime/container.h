#ifndef HERON_RUNTIME_CONTAINER_H_
#define HERON_RUNTIME_CONTAINER_H_

#include <memory>
#include <vector>

#include "common/config.h"
#include "instance/instance.h"
#include "metrics/metrics_manager.h"
#include "packing/packing_plan.h"
#include "proto/physical_plan.h"
#include "runtime/event_loop.h"
#include "runtime/tasklet.h"
#include "smgr/stream_manager.h"

namespace heron {
namespace runtime {

/// \brief One running container: "the remaining containers each run a
/// Stream Manager, a Metrics Manager and a set of Heron Instances" (§II).
///
/// Owns the three process kinds, wires them to the topology transport,
/// and tears them down in dependency order. The Scheduler starts and
/// stops Containers through the launcher.
///
/// The Metrics Manager's periodic collection runs on the container's own
/// housekeeping reactor (an EventLoop with a single periodic timer, cf.
/// kMetricsCollectIntervalMs) — the same kernel every other module loop
/// runs on. Stop() halts the housekeeping loop before tearing down the
/// instances whose registries it snapshots.
class Container {
 public:
  /// \param config  merged topology + cluster config, source of the SMGR
  ///        tuning knobs (§V-B) and the acking switch
  Container(const packing::ContainerPlan& plan,
            std::shared_ptr<const proto::PhysicalPlan> physical_plan,
            const Config& config, smgr::Transport* transport,
            const Clock* clock);
  ~Container();

  Container(const Container&) = delete;
  Container& operator=(const Container&) = delete;

  /// Starts the SMGR first (instances need a routable container), then
  /// every instance, and registers all metric sources.
  Status Start();
  /// Step-mode Start: full wiring (SMGR, instances, housekeeping timers)
  /// but zero threads — the caller drives Step(). Deterministic under a
  /// SimClock; this is how the failure-recovery tests replay a kill.
  Status StartStepMode();
  /// One step-mode round: SMGR reactor, every instance reactor, then the
  /// housekeeping (metrics collection) reactor, each RunOnce.
  void Step();
  /// Stops instances first, then the SMGR. Idempotent.
  void Stop();
  /// Fault injection: hard-kills the container mid-stream. Reactors halt
  /// without their shutdown drains (caches, outboxes, parked envelopes die
  /// with the "process"), endpoints deregister, threads join. The survivor
  /// SMGRs see the dead endpoints as kNotFound and park traffic for them;
  /// the TMaster sees the heartbeats stop. Distinct from graceful Stop().
  void Fail();
  /// Marks the *next* Start as a recovered incarnation: its SMGR then
  /// broadcasts kStopBackpressure on registration so survivors release any
  /// throttle ref the dead predecessor held (see Options::announce_recovery).
  void MarkRecovering() { recovering_ = true; }

  /// Cooperative execution: every module loop this container starts (SMGR,
  /// instances, housekeeping) becomes a tasklet on `pool` instead of owning
  /// a thread. Must be set before Start; null (the default) keeps
  /// thread-per-instance. Ignored in step mode (zero threads either way).
  void set_tasklet_pool(TaskletPool* pool) { tasklet_pool_ = pool; }

  /// Attaches the container's span sink for sampled tuple-path tracing
  /// (shared by the SMGR and every instance). Must be set before Start;
  /// nullptr (the default) disables tracing for this container. The
  /// collector is owned by the caller (LocalCluster keeps it across
  /// restarts so a recovered incarnation appends to the same ring).
  void set_span_collector(observability::SpanCollector* collector) {
    span_collector_ = collector;
  }
  observability::SpanCollector* span_collector() const {
    return span_collector_;
  }

  /// Attaches the container's flight recorder (control-plane event ring,
  /// fed by the SMGR's backpressure protocol). Must be set before Start;
  /// nullptr (the default) leaves the journal dark. Owned by the caller
  /// (LocalCluster keeps it across restarts so a recovered incarnation
  /// appends to the same ring).
  void set_journal(observability::EventJournal* journal) {
    journal_ = journal;
  }
  observability::EventJournal* journal() const { return journal_; }

  /// Wires the checkpoint subsystem into every instance this container
  /// starts: the snapshot target, the checkpoint to restore on startup
  /// (0 = cold start) and the cluster incarnation epoch. Must be set
  /// before Start; nullptr state (the default) disables checkpointing.
  void set_checkpoint_options(statemgr::IStateManager* state,
                              uint64_t restore_checkpoint, int64_t epoch) {
    checkpoint_state_ = state;
    restore_checkpoint_ = restore_checkpoint;
    checkpoint_epoch_ = epoch;
  }

  ContainerId id() const { return plan_.id; }
  smgr::StreamManager* stream_manager() { return smgr_.get(); }
  metrics::MetricsManager* metrics_manager() { return &metrics_manager_; }
  const std::vector<std::unique_ptr<instance::HeronInstance>>& instances()
      const {
    return instances_;
  }

  /// Sums a counter across this container's instances. With `component`
  /// non-empty, only that component's instances contribute.
  uint64_t SumInstanceCounter(const std::string& name,
                              const std::string& component = "") const;

  /// Sums a gauge across this container's instances.
  int64_t SumInstanceGauge(const std::string& name) const;

  /// Reads a gauge from this container's Stream Manager (0 when absent).
  int64_t SmgrGauge(const std::string& name) const;

  /// Reads a counter from this container's Stream Manager (0 when absent).
  uint64_t SmgrCounter(const std::string& name) const;

 private:
  packing::ContainerPlan plan_;
  std::shared_ptr<const proto::PhysicalPlan> physical_plan_;
  Config config_;
  smgr::Transport* transport_;
  const Clock* clock_;

  std::unique_ptr<smgr::StreamManager> smgr_;
  std::vector<std::unique_ptr<instance::HeronInstance>> instances_;
  metrics::MetricsManager metrics_manager_;
  /// Registry for the housekeeping loop's own instrumentation, exported
  /// through the Metrics Manager like any other source.
  metrics::MetricsRegistry housekeeping_metrics_;
  /// The Metrics Manager's collection reactor.
  EventLoop housekeeping_;
  bool housekeeping_wired_ = false;
  TaskletPool* tasklet_pool_ = nullptr;
  TaskletPool::Handle* housekeeping_handle_ = nullptr;
  bool started_ = false;
  bool step_mode_ = false;
  bool recovering_ = false;
  observability::SpanCollector* span_collector_ = nullptr;
  observability::EventJournal* journal_ = nullptr;
  statemgr::IStateManager* checkpoint_state_ = nullptr;
  uint64_t restore_checkpoint_ = 0;
  int64_t checkpoint_epoch_ = 0;

  /// Shared Start/StartStepMode body.
  Status StartInternal(bool step_mode);
};

}  // namespace runtime
}  // namespace heron

#endif  // HERON_RUNTIME_CONTAINER_H_
