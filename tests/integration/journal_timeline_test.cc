// The flight recorder and the unified timeline, replayed twice: the
// journal is an always-on structured record of control-plane transitions
// (container lifecycle, checkpoint barriers, restores, plan swaps), and
// like every other observability surface it must be a pure function of
// the (SimClock-driven) execution. Two identical step-mode universes —
// including a mid-stream hard kill recovered via checkpoint rollback —
// therefore produce identical merged journal streams and byte-identical
// Perfetto timeline documents.
//
// Also covered here because they need a live cluster: the journal dump
// lands in the TopologySnapshot's journal section, HERON_TRACE_OUT makes
// Kill() write the merged timeline to disk, and a zero ring capacity
// leaves the whole layer dark (no rings, no events, empty digest).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "observability/journal.h"
#include "observability/json.h"
#include "observability/snapshot.h"
#include "runtime/local_cluster.h"
#include "workloads/word_count.h"

namespace heron {
namespace runtime {
namespace {

constexpr uint64_t kEmitLimit = 200;
constexpr int64_t kMonitorIntervalMs = 100;
constexpr int64_t kCollectIntervalMs = 50;
constexpr char kTopologyName[] = "journal-det";

Config StepClusterConfig(int64_t journal_capacity) {
  Config config;
  config.SetInt(config_keys::kNumContainersHint, 2);
  config.SetBool(config_keys::kClusterStepMode, true);
  config.SetInt(config_keys::kSchedulerMonitorIntervalMs, kMonitorIntervalMs);
  config.SetInt(config_keys::kSchedulerMonitorMissLimit, 3);
  config.SetInt(config_keys::kMetricsCollectIntervalMs, kCollectIntervalMs);
  config.SetInt(config_keys::kTraceSampleInverse, 4);
  config.SetInt(config_keys::kJournalRingCapacity, journal_capacity);
  return config;
}

Config ExactlyOnceTopologyConfig() {
  Config config;
  config.SetBool(config_keys::kAckingEnabled, true);
  config.SetInt(config_keys::kMessageTimeoutMs, 600000);
  config.SetInt(config_keys::kMaxSpoutPending, 16);
  config.Set(config_keys::kCheckpointMode, "exactly-once");
  return config;
}

/// Everything one universe produces that the twin must reproduce.
struct JournalUniverse {
  bool ok = false;
  std::vector<observability::JournalEvent> events;
  std::string timeline_json;
  std::string snapshot_json;
  uint64_t dropped = 0;
};

/// A fixed step schedule: pump, checkpoint, pump, hard-kill the bolt
/// container, recover via rollback, pump — so the journal sees container
/// starts, checkpoint lifecycle, a death, a restore and the re-starts.
JournalUniverse RunJournalUniverse() {
  JournalUniverse out;
  SimClock clock(0);
  LocalCluster cluster(StepClusterConfig(/*journal_capacity=*/8192), &clock);

  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 200;
  spout_options.words_per_call = 2;
  spout_options.emit_limit = kEmitLimit;
  auto topology = workloads::BuildWordCountTopology(
      kTopologyName, /*spouts=*/1, /*bolts=*/1, spout_options,
      ExactlyOnceTopologyConfig());
  EXPECT_TRUE(topology.ok());
  if (!cluster.Submit(*topology).ok()) return out;

  const auto rounds = [&](int n) {
    for (int i = 0; i < n; ++i) {
      cluster.StepAll();
      clock.AdvanceMillis(5);
      cluster.StepAll();
    }
  };

  // Phase 1: pump, then cut a checkpoint and step it to completion.
  rounds(6);
  const uint64_t ck1 = cluster.TriggerCheckpoint();
  EXPECT_GT(ck1, 0u);
  int waited = 0;
  while (cluster.checkpoint_coordinator()->latest_complete() < ck1 &&
         waited < 500) {
    ++waited;
    rounds(1);
    cluster.MonitorTick();
  }
  EXPECT_EQ(cluster.checkpoint_coordinator()->latest_complete(), ck1);

  // Phase 2: post-checkpoint data, then a mid-stream hard kill. Recovery
  // is the global rollback; the journal records death, restore and the
  // recovered incarnations' starts.
  rounds(6);
  EXPECT_TRUE(cluster.FailContainer(1).ok());
  int detect_ticks = 0;
  while (cluster.recovery_metrics()->GetCounter("recovery.deaths")->value() ==
             0 &&
         detect_ticks < 30) {
    ++detect_ticks;
    clock.AdvanceMillis(kCollectIntervalMs);
    cluster.StepAll();
    cluster.MonitorTick();
  }
  EXPECT_EQ(
      cluster.recovery_metrics()->GetCounter("recovery.deaths")->value(), 1u);
  EXPECT_EQ(cluster.num_live_containers(), 2);

  // Phase 3: a fixed post-recovery schedule (heartbeats resume → the
  // monitor records the restoration).
  for (int r = 0; r < 40; ++r) {
    rounds(1);
    cluster.MonitorTick();
  }

  out.events = cluster.CollectJournal();
  out.dropped = cluster.journal_dropped();
  out.timeline_json = cluster.BuildTimelineJson();
  out.snapshot_json = cluster.BuildSnapshot().ToJson();
  out.ok = cluster.Kill().ok();
  return out;
}

uint64_t CountType(const std::vector<observability::JournalEvent>& events,
                   observability::JournalEventType type) {
  uint64_t n = 0;
  for (const auto& e : events) {
    if (e.type == type) ++n;
  }
  return n;
}

class JournalTimelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { Logging::SetLevel(LogLevel::kError); }
};

TEST_F(JournalTimelineTest, TwoUniversesProduceIdenticalJournalsAndTimelines) {
  const JournalUniverse first = RunJournalUniverse();
  const JournalUniverse second = RunJournalUniverse();
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);

  // Identical merged journal streams: same events, same sequence numbers,
  // same SimClock timestamps, same merge order.
  EXPECT_EQ(first.events, second.events);
  EXPECT_FALSE(first.events.empty());
  EXPECT_EQ(first.dropped, 0u);

  // Byte-identical timeline and snapshot documents.
  EXPECT_EQ(first.timeline_json, second.timeline_json);
  EXPECT_EQ(first.snapshot_json, second.snapshot_json);
}

TEST_F(JournalTimelineTest, JournalRecordsTheControlPlaneStory) {
  const JournalUniverse r = RunJournalUniverse();
  ASSERT_TRUE(r.ok);
  using T = observability::JournalEventType;

  // 2 initial starts + 2 recovered incarnations after the rollback.
  EXPECT_GE(CountType(r.events, T::kContainerStart), 4u);
  EXPECT_GE(CountType(r.events, T::kCheckpointTriggered), 1u);
  EXPECT_GE(CountType(r.events, T::kCheckpointComplete), 1u);
  EXPECT_EQ(CountType(r.events, T::kContainerDead), 1u);
  EXPECT_EQ(CountType(r.events, T::kCheckpointRestore), 1u);
  EXPECT_GE(CountType(r.events, T::kContainerRestored), 1u);

  // Merged stream is time-ordered (the total order the export relies on).
  for (size_t i = 1; i < r.events.size(); ++i) {
    EXPECT_GE(r.events[i].at_nanos, r.events[i - 1].at_nanos);
  }

  // The snapshot's journal digest agrees with the raw stream.
  const auto snapshot =
      observability::TopologySnapshot::FromJson(r.snapshot_json);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->journal.events, r.events.size());
  EXPECT_EQ(snapshot->journal.dropped, 0u);
  EXPECT_FALSE(snapshot->journal.by_type.empty());
}

TEST_F(JournalTimelineTest, TimelineParsesAndTracksAreMonotonic) {
  const JournalUniverse r = RunJournalUniverse();
  ASSERT_TRUE(r.ok);
  const auto parsed = observability::json::Parse(r.timeline_json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const observability::json::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->array.empty());

  std::vector<std::pair<int, double>> last_per_pid;
  bool saw_instant = false;
  for (const observability::json::Value& e : events->array) {
    if (e.StringOr("ph", "") == "M") continue;
    if (e.StringOr("ph", "") == "i") saw_instant = true;
    const int pid = static_cast<int>(e.NumberOr("pid", -1));
    const double ts = e.NumberOr("ts", -1);
    bool found = false;
    for (auto& [p, last] : last_per_pid) {
      if (p != pid) continue;
      EXPECT_GE(ts, last) << "track " << pid << " went backwards";
      last = ts;
      found = true;
    }
    if (!found) last_per_pid.push_back({pid, ts});
  }
  EXPECT_TRUE(saw_instant) << "no journal instants reached the timeline";
}

TEST_F(JournalTimelineTest, TraceOutEnvDumpsTimelineOnKill) {
  const std::string path =
      testing::TempDir() + "/journal_timeline_trace_out.json";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("HERON_TRACE_OUT", path.c_str(), 1), 0);

  {
    SimClock clock(0);
    LocalCluster cluster(StepClusterConfig(/*journal_capacity=*/1024),
                         &clock);
    workloads::WordSpout::Options spout_options;
    spout_options.emit_limit = 20;
    auto topology = workloads::BuildWordCountTopology(
        "trace-out", 1, 1, spout_options, ExactlyOnceTopologyConfig());
    ASSERT_TRUE(topology.ok());
    ASSERT_TRUE(cluster.Submit(*topology).ok());
    for (int i = 0; i < 10; ++i) {
      cluster.StepAll();
      clock.AdvanceMillis(5);
      cluster.StepAll();
    }
    ASSERT_TRUE(cluster.Kill().ok());
  }
  unsetenv("HERON_TRACE_OUT");

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "Kill() did not write " << path;
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());

  const auto parsed = observability::json::Parse(content);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(parsed->Find("traceEvents"), nullptr);
}

TEST_F(JournalTimelineTest, ZeroCapacityLeavesTheJournalDark) {
  SimClock clock(0);
  LocalCluster cluster(StepClusterConfig(/*journal_capacity=*/0), &clock);
  workloads::WordSpout::Options spout_options;
  spout_options.emit_limit = 20;
  auto topology = workloads::BuildWordCountTopology(
      "journal-dark", 1, 1, spout_options, ExactlyOnceTopologyConfig());
  ASSERT_TRUE(topology.ok());
  ASSERT_TRUE(cluster.Submit(*topology).ok());
  for (int i = 0; i < 10; ++i) {
    cluster.StepAll();
    clock.AdvanceMillis(5);
    cluster.StepAll();
  }

  EXPECT_EQ(cluster.journal(0), nullptr);
  EXPECT_EQ(cluster.journal(1), nullptr);
  EXPECT_EQ(cluster.control_journal(), nullptr);
  EXPECT_TRUE(cluster.CollectJournal().empty());
  EXPECT_EQ(cluster.journal_dropped(), 0u);

  const auto snapshot = cluster.BuildSnapshot();
  EXPECT_EQ(snapshot.journal.events, 0u);
  EXPECT_TRUE(snapshot.journal.by_type.empty());

  // The timeline still renders (spans only) and still parses.
  const auto parsed =
      observability::json::Parse(cluster.BuildTimelineJson());
  EXPECT_TRUE(parsed.ok());
  ASSERT_TRUE(cluster.Kill().ok());
}

}  // namespace
}  // namespace runtime
}  // namespace heron
