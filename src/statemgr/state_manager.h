#ifndef HERON_STATEMGR_STATE_MANAGER_H_
#define HERON_STATEMGR_STATE_MANAGER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/result.h"
#include "serde/wire.h"

namespace heron {
namespace statemgr {

/// Session handle for ephemeral-node ownership; 0 is "no session".
using SessionId = uint64_t;
inline constexpr SessionId kNoSession = 0;

/// \brief What changed under a watched path.
enum class WatchEventType : uint8_t {
  kCreated = 0,
  kDataChanged = 1,
  kDeleted = 2,
  kChildrenChanged = 3,
};

struct WatchEvent {
  WatchEventType type;
  std::string path;
};

/// One-shot watch callback, ZooKeeper style: fires once, then must be
/// re-armed. May be invoked from the mutating thread; callbacks must not
/// call back into the state manager while handling the event on pain of
/// deadlock (matching ZK client single-event-thread discipline).
using WatchCallback = std::function<void(const WatchEvent&)>;

/// \brief Heron's distributed coordination and topology-metadata store
/// (§IV-C).
///
/// "Both implementations currently operate on tree-structured storage
/// where the root of the tree is supplied by the Heron administrator."
/// Paths are "/"-separated, absolute under the configured root. The
/// module is pluggable: the two built-ins mirror the paper's ZooKeeper
/// and local-filesystem implementations, and new backends register just
/// like new packing policies.
class IStateManager {
 public:
  virtual ~IStateManager() = default;

  /// Binds to the configured root path. Must be called once, first.
  virtual Status Initialize(const Config& config) = 0;
  virtual Status Close() = 0;

  /// Creates a node (parents must exist; the root always exists).
  /// Ephemeral nodes (`session != kNoSession`) disappear when their
  /// session ends — this is how TMaster location advertisement detects a
  /// dead TMaster.
  virtual Status CreateNode(const std::string& path, serde::BytesView data,
                            SessionId session = kNoSession) = 0;

  /// Overwrites the data of an existing node.
  virtual Status SetNodeData(const std::string& path,
                             serde::BytesView data) = 0;

  /// Reads a node's data.
  virtual Result<serde::Buffer> GetNodeData(const std::string& path) const = 0;

  /// Deletes a node; kFailedPrecondition when it has children.
  virtual Status DeleteNode(const std::string& path) = 0;

  virtual Result<bool> ExistsNode(const std::string& path) const = 0;

  /// Immediate child names (not full paths), sorted.
  virtual Result<std::vector<std::string>> ListChildren(
      const std::string& path) const = 0;

  /// Arms a one-shot watch on `path` (existence, data, children).
  virtual Status Watch(const std::string& path, WatchCallback callback) = 0;

  /// Opens a session owning ephemeral nodes.
  virtual Result<SessionId> OpenSession() = 0;

  /// Ends a session: its ephemeral nodes are deleted (firing watches).
  /// Also how tests simulate a TMaster crash.
  virtual Status CloseSession(SessionId session) = 0;

  /// Backend name ("IN_MEMORY", "LOCAL_FILE", ...).
  virtual std::string Name() const = 0;
};

/// Validates a state path: absolute, "/"-separated, non-empty segments,
/// no "." / ".." segments.
Status ValidatePath(const std::string& path);

/// Splits "/a/b/c" into {"a","b","c"}; "/" yields {}.
std::vector<std::string> SplitPath(const std::string& path);

/// Parent of "/a/b/c" is "/a/b"; parent of "/a" is "/".
std::string ParentPath(const std::string& path);

/// Creates every missing ancestor of `path` (with empty data) and then
/// `path` itself with `data`; existing nodes are left untouched except the
/// leaf, which is overwritten.
Status EnsurePath(IStateManager* sm, const std::string& path,
                  serde::BytesView data);

/// Recursively deletes `path` and everything under it (children first).
/// kNotFound when the path does not exist. Used to garbage-collect
/// superseded checkpoint trees.
Status DeleteTree(IStateManager* sm, const std::string& path);

/// Canonical locations of topology metadata under the root, mirroring the
/// layout Heron uses in ZooKeeper (§IV-C lists what is stored: topology
/// definition, packing plan, container locations, scheduler URL, ...).
namespace paths {
std::string Topologies();
std::string TopologyDef(const std::string& topology);
std::string PackingPlan(const std::string& topology);
std::string TMasterLocation(const std::string& topology);
std::string SchedulerLocation(const std::string& topology);
std::string ContainerInfo(const std::string& topology, int container);
std::string Containers(const std::string& topology);
/// Parent of the per-container backpressure markers the TMaster keeps so
/// the topology status reflects which containers are currently initiating
/// cluster-wide spout back pressure.
std::string Backpressure(const std::string& topology);
std::string BackpressureContainer(const std::string& topology, int container);
/// Parent of the TMaster MetricsCache's published rollups.
std::string Metrics(const std::string& topology);
/// Topology-level rollup JSON (throughput, latency quantiles,
/// backpressure time, restarts over the newest cache window).
std::string MetricsTopologyRollup(const std::string& topology);
/// Parent of the per-component rollups.
std::string MetricsComponents(const std::string& topology);
/// One component's rollup JSON.
std::string MetricsComponent(const std::string& topology,
                             const std::string& component);
/// Parent of the checkpoint trees; its node data holds the id of the
/// latest globally-complete checkpoint (decimal string, absent/empty
/// when none has completed yet).
std::string Checkpoints(const std::string& topology);
/// One checkpoint's tree; children are per-task snapshot nodes, and the
/// node's own data flips from "" to "complete" when every task reported.
std::string Checkpoint(const std::string& topology, uint64_t ckpt_id);
/// One task's snapshot inside a checkpoint.
std::string CheckpointTask(const std::string& topology, uint64_t ckpt_id,
                           int task);
/// Parent of the ScalingPolicyEngine's published decision records; its
/// node data holds the sequence number of the latest decision.
std::string Scaling(const std::string& topology);
/// One scaling decision record (JSON: trigger signals, component, old and
/// new parallelism, packing algorithm, outcome).
std::string ScalingDecision(const std::string& topology, uint64_t seq);
}  // namespace paths

/// \brief Instantiates the backend named by `heron.statemgr.kind`
/// (IN_MEMORY default, LOCAL_FILE) and initializes it.
Result<std::unique_ptr<IStateManager>> CreateStateManager(
    const Config& config);

}  // namespace statemgr
}  // namespace heron

#endif  // HERON_STATEMGR_STATE_MANAGER_H_
