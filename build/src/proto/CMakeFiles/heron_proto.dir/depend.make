# Empty dependencies file for heron_proto.
# This may be replaced when dependencies are built.
