#ifndef HERON_TMASTER_SCALING_POLICY_ENGINE_H_
#define HERON_TMASTER_SCALING_POLICY_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/config.h"
#include "observability/journal.h"
#include "observability/metrics_cache.h"
#include "statemgr/state_manager.h"

namespace heron {
namespace tmaster {

/// \brief The TMaster-side auto-scaler: closes the metrics → placement
/// loop the paper leaves to "the fullness of time" (§VI: self-regulating
/// streaming systems that "adjust the topology configuration on the fly
/// based on the load").
///
/// Rides the monitor tick. Each completed MetricsCache window is judged
/// exactly once against three hot-signals:
///  - backpressure: the topology spent more than `backpressure_ratio` of
///    the window under cluster-wide backpressure (rollup duration deltas,
///    cross-checked against the live /backpressure/<container> markers);
///  - skew: within some component, max/mean per-task processed delta
///    exceeds `skew_threshold` (one instance is the straggler);
///  - latency: the spout p90 complete latency rose more than
///    `latency_rise`× over its rolling healthy baseline.
///
/// A window with any signal extends the hot streak; a healthy window
/// resets it (hysteresis). After `hot_windows` consecutive hot windows —
/// and outside the post-action `cooldown_ms` quiet period — the engine
/// picks the bottleneck component (the skewed one, else the busiest
/// scalable component by processed delta), computes the new parallelism
/// (`ceil(old × factor)`, capped at `max_parallelism`), publishes a
/// decision record under /topologies/<t>/scaling/<seq>, and hands the
/// target to the executor callback — in LocalCluster, the exactly-once
/// repack rollout (checkpoint-abort → Repack → restart → replay).
///
/// The engine itself is deterministic: no RNG, no wall-clock reads beyond
/// the injected Clock, decisions keyed to window start times — so two
/// step-mode universes fed identical metrics fire identically.
///
/// Thread-safety: driven from the monitor reactor; introspection entry
/// points lock.
class ScalingPolicyEngine {
 public:
  struct Options {
    std::string topology;
    bool enabled = false;
    double backpressure_ratio = 0.25;     ///< kScalingBackpressureRatio.
    double skew_threshold = 0;            ///< kScalingSkewThreshold; 0 = off.
    double latency_rise = 0;              ///< kScalingLatencyRise; 0 = off.
    int hot_windows = 3;                  ///< kScalingHotWindows.
    int64_t cooldown_ms = 10000;          ///< kScalingCooldownMs.
    double factor = 2.0;                  ///< kScalingFactor.
    int max_parallelism = 64;             ///< kScalingMaxParallelism.
    /// Control-plane flight recorder: every fired decision lands here
    /// (detail = component, arg0 = from, arg1 = to). nullptr = dark.
    observability::EventJournal* journal = nullptr;

    static Options FromConfig(const std::string& topology,
                              const Config& config);
  };

  /// One fired decision, as published to the state tree.
  struct Decision {
    uint64_t seq = 0;
    std::string component;
    int from = 0;
    int to = 0;
    std::string reason;  ///< "backpressure" | "skew" | "latency".
    int64_t decided_at_nanos = 0;
    std::string outcome;  ///< "applied" or the executor's error string.

    std::string ToJson() const;
  };

  /// Applies a decision: repack `component` to `new_parallelism` and roll
  /// the plan through the restart path. Invoked with no engine lock held.
  using ExecuteFn = std::function<Status(const ComponentId& component,
                                         int new_parallelism)>;

  ScalingPolicyEngine(const Options& options,
                      observability::MetricsCache* cache,
                      statemgr::IStateManager* state, const Clock* clock);

  void SetExecute(ExecuteFn execute);

  /// Components the engine may scale (the bolts — spout parallelism is an
  /// ingest-rate decision, not a relief valve) with their task → component
  /// attribution for the skew detector. Refreshed on every plan install.
  void SetScalableComponents(std::vector<ComponentId> components,
                             std::map<TaskId, ComponentId> task_component);

  /// One monitor round. Judges at most one new metrics window; returns
  /// true when a scaling decision fired (and was executed) this tick.
  bool Tick();

  // -- Introspection (tests / snapshot). --
  uint64_t decisions_fired() const;
  int hot_streak() const;
  std::vector<Decision> history() const;
  const Options& options() const { return options_; }

 private:
  struct Verdict {
    bool hot = false;
    std::string reason;
    ComponentId skewed;  ///< Set when the skew detector fired.
  };

  Verdict JudgeWindowLocked(
      const observability::ComponentRollup& topo,
      const std::vector<observability::ComponentRollup>& rollups);
  /// The busiest scalable component by processed delta (skew target wins
  /// when set). Empty when nothing is scalable.
  ComponentId PickTargetLocked(
      const std::vector<observability::ComponentRollup>& rollups,
      const ComponentId& skewed, int* current_parallelism) const;
  Status PublishLocked(const Decision& decision);

  const Options options_;
  observability::MetricsCache* cache_;
  statemgr::IStateManager* state_;
  const Clock* clock_;

  mutable std::mutex mutex_;
  ExecuteFn execute_;
  std::vector<ComponentId> scalable_;
  std::map<TaskId, ComponentId> task_component_;
  int64_t last_window_nanos_ = -1;   ///< Newest window already judged.
  int hot_streak_ = 0;
  double latency_baseline_ms_ = 0;   ///< EWMA of healthy-window p90.
  int64_t last_action_nanos_ = 0;
  uint64_t next_seq_ = 1;
  std::vector<Decision> history_;
};

}  // namespace tmaster
}  // namespace heron

#endif  // HERON_TMASTER_SCALING_POLICY_ENGINE_H_
