file(REMOVE_RECURSE
  "CMakeFiles/micro_ipc.dir/micro/micro_ipc.cc.o"
  "CMakeFiles/micro_ipc.dir/micro/micro_ipc.cc.o.d"
  "micro_ipc"
  "micro_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
