#ifndef HERON_API_VALUES_H_
#define HERON_API_VALUES_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "serde/wire.h"

namespace heron {
namespace api {

/// \brief One field of a tuple.
///
/// Heron tuples are schemaless on the wire; the supported scalar types
/// cover the workloads in the paper (word strings, counts, timestamps,
/// flags, scores). Strings dominate the WordCount benchmarks, so the
/// variant keeps std::string inline (no extra indirection).
using Value = std::variant<int64_t, double, bool, std::string>;

/// \brief The payload of a tuple: an ordered list of values.
using Values = std::vector<Value>;

/// Index of each alternative in Value, used as the wire type discriminator.
enum class ValueKind : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kBool = 2,
  kString = 3,
};

/// \brief Returns the kind of a value.
ValueKind KindOf(const Value& v);

/// \brief 64-bit stable hash of a value: FNV-1a over the value's canonical
/// wire encoding (exactly the bytes EncodeValue writes). Fields grouping
/// routes on this hash; defining it over the encoding lets the Stream
/// Manager hash serialized byte ranges without decoding (§V-A) and land on
/// the same destination.
uint64_t HashValue(const Value& v);

/// \brief FNV-1a over raw serialized bytes; HashValue(v) ==
/// HashSerializedBytes(encoding of v). Used by the lazy routing path.
uint64_t HashSerializedBytes(const void* data, size_t len);

/// \brief Combines field hashes for multi-field grouping keys.
uint64_t HashCombine(uint64_t seed, uint64_t h);

/// \brief Serializes one value as (kind varint, payload).
void EncodeValue(const Value& v, serde::WireEncoder* enc);

/// \brief Decodes one value written by EncodeValue.
Result<Value> DecodeValue(serde::WireDecoder* dec);

/// \brief Human-readable rendering ("42", "3.14", "true", "\"word\"").
std::string ValueToString(const Value& v);

/// \brief Approximate in-memory size in bytes, used for cache accounting.
size_t ValueByteSize(const Value& v);

}  // namespace api
}  // namespace heron

#endif  // HERON_API_VALUES_H_
