#include "packing/placement_cost.h"

#include <algorithm>

#include "common/config.h"

namespace heron {
namespace packing {

std::map<ComponentId, double> ComponentRatesFromConfig(
    const api::Topology& topology, const Config& config) {
  std::map<ComponentId, double> rates;
  for (const api::ComponentDef& def : topology.components()) {
    rates[def.id] = config.GetDoubleOr(
        std::string(config_keys::kMctsRatePrefix) + def.id, 1.0);
  }
  return rates;
}

PlacementCost EvaluatePlacement(const api::Topology& topology,
                                const PackingPlan& plan,
                                const std::map<ComponentId, double>& rates,
                                const PackingPlan* previous,
                                const PlacementCostWeights& weights) {
  PlacementCost cost;

  // task → container, and component → (container of each task) maps, built
  // once — the edge walk below is per (producer instance × edge), so keep
  // its inner loop a lookup, not a scan.
  std::map<TaskId, ContainerId> task_container;
  std::map<ComponentId, std::vector<std::pair<TaskId, ContainerId>>>
      component_tasks;
  for (const ContainerPlan& c : plan.containers()) {
    for (const InstancePlan& i : c.instances) {
      task_container[i.task_id] = c.id;
      component_tasks[i.component].emplace_back(i.task_id, c.id);
    }
  }
  for (auto& [_, tasks] : component_tasks) std::sort(tasks.begin(), tasks.end());

  const auto rate_of = [&rates](const ComponentId& id) {
    const auto it = rates.find(id);
    return it == rates.end() ? 1.0 : it->second;
  };

  // Every subscribed edge, from the consumer side (inputs list the DAG).
  for (const api::ComponentDef& consumer : topology.components()) {
    const auto consumers_it = component_tasks.find(consumer.id);
    if (consumers_it == component_tasks.end()) continue;
    const auto& consumer_tasks = consumers_it->second;
    if (consumer_tasks.empty()) continue;
    for (const api::InputSpec& input : consumer.inputs) {
      const auto producers_it = component_tasks.find(input.source);
      if (producers_it == component_tasks.end()) continue;
      const double rate = rate_of(input.source);
      for (const auto& [ptask, pcontainer] : producers_it->second) {
        (void)ptask;
        double cross_fraction = 0;
        switch (input.grouping) {
          case api::GroupingKind::kAll:
            // Every consumer task receives a copy.
            for (const auto& [_, ccontainer] : consumer_tasks) {
              if (ccontainer != pcontainer) cross_fraction += 1.0;
            }
            break;
          case api::GroupingKind::kGlobal:
            // Everything lands on the lowest consumer task.
            if (consumer_tasks.front().second != pcontainer) {
              cross_fraction = 1.0;
            }
            break;
          default: {
            // Shuffle/fields/custom spread uniformly over consumer tasks
            // (fields is uniform in expectation for a balanced key space —
            // the skew case is the rate hint's job, not the grouping's).
            int remote = 0;
            for (const auto& [_, ccontainer] : consumer_tasks) {
              if (ccontainer != pcontainer) ++remote;
            }
            cross_fraction =
                static_cast<double>(remote) / consumer_tasks.size();
            break;
          }
        }
        cost.inter_container_tps += rate * cross_fraction;
      }
    }
  }

  // CPU imbalance: max/mean of instance CPU load per container.
  if (plan.NumContainers() > 1) {
    double max_cpu = 0, total_cpu = 0;
    for (const ContainerPlan& c : plan.containers()) {
      const double cpu = c.InstanceTotal().cpu;
      max_cpu = std::max(max_cpu, cpu);
      total_cpu += cpu;
    }
    const double mean = total_cpu / plan.NumContainers();
    if (mean > 0) cost.cpu_imbalance = max_cpu / mean - 1.0;
  }

  if (previous != nullptr) {
    for (const auto& [task, container] : task_container) {
      const ContainerPlan* was = previous->FindContainerOfTask(task);
      if (was != nullptr && was->id != container) ++cost.moved_instances;
    }
  }

  cost.total = weights.traffic_ns_per_tuple * cost.inter_container_tps +
               weights.imbalance_penalty_ns * cost.cpu_imbalance +
               weights.disruption_per_move_ns * cost.moved_instances;
  return cost;
}

}  // namespace packing
}  // namespace heron
