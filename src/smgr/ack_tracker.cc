#include "smgr/ack_tracker.h"

#include <limits>

namespace heron {
namespace smgr {

void AckTracker::Register(api::TupleKey root, api::TupleKey spout_tuple_key,
                          int64_t now_nanos) {
  auto [it, inserted] = entries_.try_emplace(root);
  it->second.xor_state ^= spout_tuple_key;
  if (inserted) {
    it->second.deadline_nanos = now_nanos + timeout_nanos_;
    by_deadline_.emplace(it->second.deadline_nanos, root);
  }
}

std::optional<AckTracker::Completion> AckTracker::Update(
    api::TupleKey root, api::TupleKey xor_value, bool fail) {
  const auto it = entries_.find(root);
  if (it == entries_.end()) return std::nullopt;  // Stale update.
  if (fail) {
    entries_.erase(it);
    return Completion{root, true};
  }
  it->second.xor_state ^= xor_value;
  if (it->second.xor_state == 0) {
    entries_.erase(it);
    return Completion{root, false};
  }
  return std::nullopt;
}

std::vector<AckTracker::Completion> AckTracker::ExpireTimeouts(
    int64_t now_nanos) {
  std::vector<Completion> expired;
  auto it = by_deadline_.begin();
  while (it != by_deadline_.end() && it->first <= now_nanos) {
    const api::TupleKey root = it->second;
    it = by_deadline_.erase(it);
    if (entries_.erase(root) != 0) {
      expired.push_back({root, true});
    }
    // Roots already completed leave stale deadline records; skipping them
    // here is what keeps Update O(log n) without deadline-index surgery.
  }
  return expired;
}

int64_t AckTracker::NextDeadlineNanos() {
  // Drop stale deadline records for completed roots as they surface, so
  // repeated calls stay O(1) amortized instead of rescanning the backlog.
  while (!by_deadline_.empty()) {
    const auto it = by_deadline_.begin();
    if (entries_.count(it->second) != 0) return it->first;
    by_deadline_.erase(it);
  }
  return std::numeric_limits<int64_t>::max();
}

}  // namespace smgr
}  // namespace heron
