file(REMOVE_RECURSE
  "CMakeFiles/heron_smgr.dir/ack_tracker.cc.o"
  "CMakeFiles/heron_smgr.dir/ack_tracker.cc.o.d"
  "CMakeFiles/heron_smgr.dir/stream_manager.cc.o"
  "CMakeFiles/heron_smgr.dir/stream_manager.cc.o.d"
  "CMakeFiles/heron_smgr.dir/transport.cc.o"
  "CMakeFiles/heron_smgr.dir/transport.cc.o.d"
  "CMakeFiles/heron_smgr.dir/tuple_cache.cc.o"
  "CMakeFiles/heron_smgr.dir/tuple_cache.cc.o.d"
  "libheron_smgr.a"
  "libheron_smgr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_smgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
