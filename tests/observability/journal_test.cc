// Unit tests for the flight recorder: the wait-free EventJournal ring
// (ordering, wraparound accounting, detail truncation, concurrent
// Record/Snapshot — the TSan lane runs these), the SliceRing, the
// journal snapshot digest and the Chrome trace_event timeline export.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "observability/journal.h"
#include "observability/json.h"
#include "observability/snapshot.h"
#include "observability/trace_export.h"

namespace heron {
namespace observability {
namespace {

// -- EventJournal ----------------------------------------------------------

TEST(EventJournalTest, RecordsAndSnapshotsInOrder) {
  EventJournal ring(8);
  ring.Record(JournalEventType::kBackpressureStart, 1, -1, 100, 7, 9);
  ring.Record(JournalEventType::kBackpressureStop, 1, -1, 200, 100, 0);
  ring.Record(JournalEventType::kCheckpointTriggered, -1, -1, 300, 1, 4);

  const std::vector<JournalEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].type, JournalEventType::kBackpressureStart);
  EXPECT_EQ(events[0].origin, 1);
  EXPECT_EQ(events[0].at_nanos, 100);
  EXPECT_EQ(events[0].arg0, 7);
  EXPECT_EQ(events[0].arg1, 9);
  EXPECT_EQ(events[1].type, JournalEventType::kBackpressureStop);
  EXPECT_EQ(events[2].type, JournalEventType::kCheckpointTriggered);
  EXPECT_EQ(events[2].origin, -1);
  EXPECT_EQ(ring.total_recorded(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(EventJournalTest, WraparoundKeepsNewestAndCountsDropped) {
  EventJournal ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.Record(JournalEventType::kPlanSwap, -1, -1, 1000 + i, i, 0);
  }
  const std::vector<JournalEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The newest four survive, oldest-first, seq counting past capacity.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, static_cast<uint64_t>(6 + i));
    EXPECT_EQ(events[i].arg0, 6 + i);
    EXPECT_EQ(events[i].at_nanos, 1006 + i);
  }
  EXPECT_EQ(ring.total_recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
}

TEST(EventJournalTest, DetailRoundTripsAndTruncates) {
  EventJournal ring(4);
  ring.Record(JournalEventType::kScalingDecision, -1, -1, 1, 2, 4, "bolt");
  ring.Record(JournalEventType::kScalingDecision, -1, -1, 2, 2, 4,
              "a-component-name-too-long-for-the-ring");
  ring.Record(JournalEventType::kScalingDecision, -1, -1, 3, 2, 4, nullptr);

  const std::vector<JournalEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].detail, "bolt");
  EXPECT_EQ(events[1].detail.size(), kJournalDetailBytes);
  EXPECT_EQ(events[1].detail,
            std::string("a-component-name-too-long").substr(
                0, kJournalDetailBytes));
  EXPECT_EQ(events[2].detail, "");
}

TEST(EventJournalTest, ZeroCapacityClampsToOne) {
  EventJournal ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.Record(JournalEventType::kChaosKill, 2, -1, 5, 0, 0);
  ring.Record(JournalEventType::kChaosKill, 3, -1, 6, 0, 0);
  const std::vector<JournalEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].origin, 3);
  EXPECT_EQ(ring.dropped(), 1u);
}

// Concurrent writers + a live reader: every snapshotted event must be
// internally consistent (origin encodes the writer, arg0 its sequence and
// at_nanos a function of both), proving torn slots are never returned.
// The TSan cooperative lane runs this test for the data-race proof.
TEST(EventJournalTest, ConcurrentRecordSnapshotIsConsistent) {
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  EventJournal ring(256);
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const JournalEvent& e : ring.Snapshot()) {
        ASSERT_GE(e.origin, 0);
        ASSERT_LT(e.origin, kWriters);
        ASSERT_EQ(e.at_nanos, e.origin * 1000000 + e.arg0);
        ASSERT_EQ(e.type, JournalEventType::kRemoteThrottleOn);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        ring.Record(JournalEventType::kRemoteThrottleOn, w, -1,
                    w * 1000000 + i, i, 0);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(ring.total_recorded(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(ring.dropped(),
            static_cast<uint64_t>(kWriters) * kPerWriter - 256);
  EXPECT_EQ(ring.Snapshot().size(), 256u);
}

// -- SliceRing -------------------------------------------------------------

TEST(SliceRingTest, WraparoundKeepsNewestAndCountsDropped) {
  SliceRing ring(4);
  for (int i = 0; i < 7; ++i) {
    ring.Record(/*worker=*/i % 2, /*tasklet=*/i, 100 * i, 50);
  }
  const std::vector<SchedSlice> slices = ring.Snapshot();
  ASSERT_EQ(slices.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(slices[i].tasklet, 3 + i);
    EXPECT_EQ(slices[i].start_nanos, 100 * (3 + i));
    EXPECT_EQ(slices[i].dur_nanos, 50);
  }
  EXPECT_EQ(ring.total_recorded(), 7u);
  EXPECT_EQ(ring.dropped(), 3u);
}

TEST(SliceRingTest, ConcurrentRecordSnapshotIsConsistent) {
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  SliceRing ring(128);
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const SchedSlice& s : ring.Snapshot()) {
        ASSERT_GE(s.worker, 0);
        ASSERT_LT(s.worker, kWriters);
        ASSERT_EQ(s.start_nanos, s.worker * 1000000 + s.tasklet);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        ring.Record(w, i, w * 1000000 + i, 10);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(ring.total_recorded(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
}

// -- Journal digest --------------------------------------------------------

TEST(SummarizeJournalTest, CountsByTypeInEnumOrder) {
  std::vector<JournalEvent> events;
  JournalEvent e;
  e.type = JournalEventType::kBackpressureStop;
  events.push_back(e);
  e.type = JournalEventType::kBackpressureStart;
  events.push_back(e);
  events.push_back(e);

  const TopologySnapshot::JournalSummary summary =
      SummarizeJournal(events, /*recorded=*/5, /*dropped=*/2);
  EXPECT_EQ(summary.events, 3u);
  EXPECT_EQ(summary.recorded, 5u);
  EXPECT_EQ(summary.dropped, 2u);
  ASSERT_EQ(summary.by_type.size(), 2u);
  EXPECT_EQ(summary.by_type[0].type, "backpressure_start");
  EXPECT_EQ(summary.by_type[0].count, 2u);
  EXPECT_EQ(summary.by_type[1].type, "backpressure_stop");
  EXPECT_EQ(summary.by_type[1].count, 1u);
}

TEST(SnapshotJournalTest, JournalAndSchedulerSectionsRoundTrip) {
  TopologySnapshot snap;
  snap.topology = "t";
  snap.journal.events = 12;
  snap.journal.recorded = 20;
  snap.journal.dropped = 8;
  snap.journal.by_type.push_back({"backpressure_start", 6});
  snap.journal.by_type.push_back({"plan_swap", 6});
  snap.scheduler.workers = 3;
  snap.scheduler.tasklets = 9;
  snap.scheduler.slices = 1234;
  snap.scheduler.overruns = 5;
  snap.scheduler.occupancy = 0.5;
  snap.scheduler.busy_ms = 10;
  snap.scheduler.wall_ms = 20;
  snap.scheduler.slice_events = 100;
  snap.scheduler.dropped_slices = 7;

  const auto parsed = TopologySnapshot::FromJson(snap.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->journal == snap.journal);
  EXPECT_TRUE(parsed->scheduler == snap.scheduler);
}

// -- Timeline export -------------------------------------------------------

TimelineInput SampleInput() {
  TimelineInput input;
  input.spans.push_back({/*trace_id=*/7, TraceStage::kSpoutEmit,
                         /*location=*/1, /*at_nanos=*/1000});
  input.spans.push_back({7, TraceStage::kSmgrRoute, 0, 2000});
  input.spans.push_back({7, TraceStage::kExecute, 2, 3500});
  JournalEvent e;
  e.seq = 0;
  e.type = JournalEventType::kBackpressureStart;
  e.origin = 0;
  e.at_nanos = 1500;
  e.arg0 = 9;
  input.events.push_back(e);
  e.seq = 1;
  e.type = JournalEventType::kScalingDecision;
  e.origin = -1;
  e.at_nanos = 4000;
  e.detail = "bolt";
  input.events.push_back(e);
  input.slices.push_back({/*worker=*/0, /*tasklet=*/1, 1200, 300});
  input.tasklet_names = {"smgr-0", "task-2"};
  return input;
}

TEST(TraceExportTest, ProducesValidJsonWithAllTrackKinds) {
  const std::string doc = BuildChromeTrace(SampleInput());
  const auto parsed = json::Parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);

  bool saw_metadata = false, saw_duration = false, saw_instant = false;
  bool saw_worker_slice = false, saw_control = false;
  for (const json::Value& e : events->array) {
    const std::string ph = e.StringOr("ph", "");
    if (ph == "M") {
      saw_metadata = true;
      continue;
    }
    if (ph == "X") saw_duration = true;
    if (ph == "i") saw_instant = true;
    const int pid = static_cast<int>(e.NumberOr("pid", -1));
    if (pid >= 2000 && e.StringOr("name", "") == "task-2") {
      saw_worker_slice = true;  // Slice named via tasklet_names[1].
    }
    if (pid == 0 && e.StringOr("name", "") == "scaling_decision") {
      saw_control = true;
    }
  }
  EXPECT_TRUE(saw_metadata);
  EXPECT_TRUE(saw_duration);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_worker_slice);
  EXPECT_TRUE(saw_control);
}

TEST(TraceExportTest, TimestampsAreMonotonicPerTrack) {
  const auto parsed = json::Parse(BuildChromeTrace(SampleInput()));
  ASSERT_TRUE(parsed.ok());
  const json::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::vector<std::pair<int, double>> last_per_pid;
  for (const json::Value& e : events->array) {
    if (e.StringOr("ph", "") == "M") continue;
    const int pid = static_cast<int>(e.NumberOr("pid", -1));
    const double ts = e.NumberOr("ts", -1);
    bool found = false;
    for (auto& [p, last] : last_per_pid) {
      if (p != pid) continue;
      EXPECT_GE(ts, last) << "track " << pid << " went backwards";
      last = ts;
      found = true;
    }
    if (!found) last_per_pid.push_back({pid, ts});
  }
  EXPECT_FALSE(last_per_pid.empty());
}

TEST(TraceExportTest, DeterministicForIdenticalInput) {
  EXPECT_EQ(BuildChromeTrace(SampleInput()), BuildChromeTrace(SampleInput()));
}

TEST(TraceExportTest, SpanSlicesTelescope) {
  const auto parsed = json::Parse(BuildChromeTrace(SampleInput()));
  ASSERT_TRUE(parsed.ok());
  const json::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // smgr_route spans spout_emit→route (1.0µs..2.0µs); execute spans
  // route→execute (2.0µs..3.5µs). Together they tile emit→execute.
  for (const json::Value& e : events->array) {
    const std::string name = e.StringOr("name", "");
    if (name == "smgr_route") {
      EXPECT_DOUBLE_EQ(e.NumberOr("ts", 0), 1.0);
      EXPECT_DOUBLE_EQ(e.NumberOr("dur", 0), 1.0);
    } else if (name == "execute") {
      EXPECT_DOUBLE_EQ(e.NumberOr("ts", 0), 2.0);
      EXPECT_DOUBLE_EQ(e.NumberOr("dur", 0), 1.5);
    }
  }
}

}  // namespace
}  // namespace observability
}  // namespace heron
