#ifndef HERON_METRICS_METRICS_MANAGER_H_
#define HERON_METRICS_METRICS_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "metrics/metrics.h"

namespace heron {
namespace metrics {

/// \brief Destination for collected metrics; pluggable like every other
/// Heron module.
class IMetricsSink {
 public:
  virtual ~IMetricsSink() = default;
  /// Receives one collection round: (source process name, samples).
  virtual void Flush(const std::string& source,
                     const std::vector<Sample>& samples,
                     int64_t collected_at_nanos) = 0;
};

/// \brief Sink that retains everything in memory; used by tests and by the
/// benchmark harness to read back component breakdowns (Fig. 14).
class InMemorySink final : public IMetricsSink {
 public:
  struct Entry {
    std::string source;
    std::vector<Sample> samples;
    int64_t collected_at_nanos;
  };

  void Flush(const std::string& source, const std::vector<Sample>& samples,
             int64_t collected_at_nanos) override;

  std::vector<Entry> entries() const;
  /// Latest value of `source`/`name`, or fallback.
  double Latest(const std::string& source, const std::string& name,
                double fallback = 0) const;

 private:
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

/// \brief Sink that prints one line per sample to stderr; for examples.
class ConsoleSink final : public IMetricsSink {
 public:
  void Flush(const std::string& source, const std::vector<Sample>& samples,
             int64_t collected_at_nanos) override;
};

/// \brief The per-container Metrics Manager (§II: "collects several
/// metrics about the status of the processes in a container").
///
/// Processes in the container (the SMGR, each Heron Instance) register
/// their MetricsRegistry under a source name; Collect() snapshots every
/// registry and forwards to the configured sinks. The container runtime
/// calls Collect on its housekeeping interval; tests call it directly.
class MetricsManager {
 public:
  explicit MetricsManager(const Clock* clock) : clock_(clock) {}

  /// Registers a process's registry under `source`. The registry must
  /// outlive the manager or be removed first.
  Status RegisterSource(const std::string& source, MetricsRegistry* registry);
  Status RemoveSource(const std::string& source);

  void AddSink(std::shared_ptr<IMetricsSink> sink);

  /// Registers a callback invoked after every Collect() round, on the
  /// collecting thread. Waiters (e.g. LocalCluster::WaitForCounter) hook
  /// their condition variables here instead of sleep-polling.
  void AddCollectListener(std::function<void()> listener);

  /// Snapshots every source into every sink, then notifies the collect
  /// listeners. Snapshotting is skipped when no sink is attached (the
  /// listeners still fire — they key off the collection heartbeat).
  void Collect();

  std::vector<std::string> Sources() const;

 private:
  const Clock* clock_;
  mutable std::mutex mutex_;
  std::map<std::string, MetricsRegistry*> sources_;
  std::vector<std::shared_ptr<IMetricsSink>> sinks_;
  std::vector<std::function<void()>> listeners_;
};

}  // namespace metrics
}  // namespace heron

#endif  // HERON_METRICS_METRICS_MANAGER_H_
