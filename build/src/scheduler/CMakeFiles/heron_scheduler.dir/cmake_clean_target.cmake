file(REMOVE_RECURSE
  "libheron_scheduler.a"
)
