file(REMOVE_RECURSE
  "CMakeFiles/heron_common.dir/clock.cc.o"
  "CMakeFiles/heron_common.dir/clock.cc.o.d"
  "CMakeFiles/heron_common.dir/config.cc.o"
  "CMakeFiles/heron_common.dir/config.cc.o.d"
  "CMakeFiles/heron_common.dir/ids.cc.o"
  "CMakeFiles/heron_common.dir/ids.cc.o.d"
  "CMakeFiles/heron_common.dir/logging.cc.o"
  "CMakeFiles/heron_common.dir/logging.cc.o.d"
  "CMakeFiles/heron_common.dir/status.cc.o"
  "CMakeFiles/heron_common.dir/status.cc.o.d"
  "CMakeFiles/heron_common.dir/strings.cc.o"
  "CMakeFiles/heron_common.dir/strings.cc.o.d"
  "libheron_common.a"
  "libheron_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
