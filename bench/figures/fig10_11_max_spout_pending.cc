// Reproduces Figures 10 and 11: throughput and end-to-end latency as a
// function of the max_spout_pending flow-control knob (§V-B), for three
// parallelism levels.
//
// "As the value of the parameter increases the overall throughput also
// increases until the topology cannot handle more in-flight tuples. ...
// as the number of maximum pending tuples increases, the end-to-end
// latency also increases." (§VI-C)

#include <vector>

#include "bench/figures/fig_util.h"
#include "sim/heron_model.h"

using namespace heron;
using namespace heron::sim;

int main(int argc, char** argv) {
  bench::ParseSmoke(argc, argv);
  bench::JsonReport report("fig10_11_max_spout_pending");
  HeronCostModel costs;
  const std::vector<int64_t> sweep = {1000,  5000,  10000, 20000,
                                      30000, 40000, 50000, 60000};

  bench::PrintFigureHeader(
      "Figure 10: Throughput vs max spout pending | Figure 11: Latency vs "
      "max spout pending",
      "Throughput rises then saturates; latency rises monotonically");

  for (const int p : {25, 100, 200}) {
    std::printf("\n-- %d spouts / %d bolts --\n", p, p);
    bench::PrintColumns({"max_pending", "tput_Mt/min", "latency_ms"});
    double first_tput = 0, last_tput = 0;
    double first_lat = 0, last_lat = 0;
    for (const int64_t msp : sweep) {
      HeronSimConfig config;
      config.spouts = config.bolts = p;
      config.acking = true;
      config.max_spout_pending = msp;
      config.warmup_sec = bench::WarmupSec();
      config.measure_sec = bench::MeasureSec();
      const SimResult r = RunHeronSim(config, costs);
      bench::PrintCellInt(msp);
      bench::PrintCell(r.tuples_per_min / 1e6);
      bench::PrintCell(r.latency_ms_mean);
      bench::EndRow();
      const std::string scenario =
          "p" + std::to_string(p) + "_pending_" + std::to_string(msp);
      report.Add(scenario, "tput_mtuples_min", r.tuples_per_min / 1e6);
      report.Add(scenario, "latency_ms", r.latency_ms_mean);
      if (msp == sweep.front()) {
        first_tput = r.tuples_per_min;
        first_lat = r.latency_ms_mean;
      }
      if (msp == sweep.back()) {
        last_tput = r.tuples_per_min;
        last_lat = r.latency_ms_mean;
      }
    }
    std::printf(
        "  shape: throughput grew %.1fx from smallest to largest pending; "
        "latency grew %.1fx\n",
        last_tput / first_tput, last_lat / first_lat);
  }
  std::printf(
      "\n  Paper's observed best tradeoff was ~20K pending tuples; the knee "
      "of the\n  throughput curves above falls in the same region.\n");
  report.Write();
  return 0;
}
