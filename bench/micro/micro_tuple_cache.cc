// Microbenchmarks of the Stream Manager TupleCache (§V-B): batched
// append + drain versus per-tuple batch construction (what an unbatched
// engine does for every tuple).

#include <benchmark/benchmark.h>

#include "proto/messages.h"
#include "smgr/tuple_cache.h"

namespace heron {
namespace {

serde::Buffer MakeTupleBytes() {
  proto::TupleDataMsg msg;
  msg.tuple_key = 99;
  msg.emit_time_nanos = 123;
  msg.values.emplace_back(std::string("cachedword"));
  return msg.SerializeAsBuffer();
}

/// The engine's path: tuples append to per-destination batches; one drain
/// hands off complete serialized batches.
void BM_CacheAddAndDrain(benchmark::State& state) {
  const int64_t batch = state.range(0);
  serde::BufferPool pool(/*enabled=*/true);
  smgr::TupleCache::Options options;
  options.drain_size_bytes = 64 << 20;  // Size cap out of the way.
  smgr::TupleCache cache(options, &pool);
  const serde::Buffer tuple = MakeTupleBytes();
  for (auto _ : state) {
    for (int64_t i = 0; i < batch; ++i) {
      cache.Add(/*dest=*/static_cast<TaskId>(i % 8), /*src_task=*/1,
                kDefaultStreamId, "word", tuple);
    }
    for (auto& drained : cache.DrainAll()) {
      benchmark::DoNotOptimize(drained.bytes.data());
      pool.Release(std::move(drained.bytes));
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_CacheAddAndDrain)->Arg(64)->Arg(512)->Arg(4096);

/// The unbatched baseline: every tuple becomes its own fully-framed batch.
void BM_PerTupleBatches(benchmark::State& state) {
  const int64_t batch = state.range(0);
  const serde::Buffer tuple = MakeTupleBytes();
  for (auto _ : state) {
    for (int64_t i = 0; i < batch; ++i) {
      proto::TupleBatchMsg msg;
      msg.src_task = 1;
      msg.dest_task = static_cast<TaskId>(i % 8);
      msg.src_component = "word";
      msg.tuples.push_back(tuple);
      benchmark::DoNotOptimize(msg.SerializeAsBuffer().size());
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_PerTupleBatches)->Arg(64)->Arg(512)->Arg(4096);

/// Drain-frequency sensitivity: cost per tuple of flushing the cache more
/// or less often (smaller adds-per-drain = more per-batch overhead).
void BM_CacheDrainGranularity(benchmark::State& state) {
  const int64_t adds_per_drain = state.range(0);
  serde::BufferPool pool(/*enabled=*/true);
  smgr::TupleCache::Options options;
  options.drain_size_bytes = 64 << 20;
  smgr::TupleCache cache(options, &pool);
  const serde::Buffer tuple = MakeTupleBytes();
  for (auto _ : state) {
    for (int64_t i = 0; i < adds_per_drain; ++i) {
      cache.Add(static_cast<TaskId>(i % 8), 1, kDefaultStreamId, "word",
                tuple);
    }
    for (auto& drained : cache.DrainAll()) {
      benchmark::DoNotOptimize(drained.bytes.size());
      pool.Release(std::move(drained.bytes));
    }
  }
  state.SetItemsProcessed(state.iterations() * adds_per_drain);
}
BENCHMARK(BM_CacheDrainGranularity)->Arg(8)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace heron

BENCHMARK_MAIN();
