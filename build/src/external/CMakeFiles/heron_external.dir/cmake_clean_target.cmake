file(REMOVE_RECURSE
  "libheron_external.a"
)
