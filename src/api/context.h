#ifndef HERON_API_CONTEXT_H_
#define HERON_API_CONTEXT_H_

#include <memory>
#include <string>

#include "common/ids.h"
#include "metrics/metrics.h"

namespace heron {
namespace api {

/// \brief What user code may know about where it is running: its task
/// identity within the topology, plus a metrics surface. Handed to
/// ISpout::Open / IBolt::Prepare by the executor.
class TopologyContext {
 public:
  TopologyContext(std::string topology_name, ComponentId component,
                  TaskId task_id, int component_index, int parallelism,
                  metrics::MetricsRegistry* registry = nullptr)
      : topology_name_(std::move(topology_name)),
        component_(std::move(component)),
        task_id_(task_id),
        component_index_(component_index),
        parallelism_(parallelism),
        registry_(registry) {}

  const std::string& topology_name() const { return topology_name_; }
  /// The logical component this instance executes.
  const ComponentId& component() const { return component_; }
  /// Global task id, unique across the topology.
  TaskId task_id() const { return task_id_; }
  /// This instance's index among the component's instances, in [0,
  /// parallelism).
  int component_index() const { return component_index_; }
  /// Current parallelism of the component.
  int parallelism() const { return parallelism_; }

  /// User-code metric registration, namespaced under the instance's
  /// registry (e.g. WordSpout's `replay.dropped`). Always non-null: when
  /// the executor injects no registry (unit-test contexts) a private one
  /// backs the counters so user code never has to null-check.
  metrics::MetricsRegistry* metrics() {
    if (registry_ == nullptr) {
      if (own_registry_ == nullptr) {
        own_registry_ = std::make_unique<metrics::MetricsRegistry>();
      }
      registry_ = own_registry_.get();
    }
    return registry_;
  }

 private:
  std::string topology_name_;
  ComponentId component_;
  TaskId task_id_;
  int component_index_;
  int parallelism_;
  metrics::MetricsRegistry* registry_;
  std::unique_ptr<metrics::MetricsRegistry> own_registry_;
};

}  // namespace api
}  // namespace heron

#endif  // HERON_API_CONTEXT_H_
