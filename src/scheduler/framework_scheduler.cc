#include "scheduler/framework_scheduler.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/strings.h"

namespace heron {
namespace scheduler {

FrameworkScheduler::FrameworkScheduler(
    frameworks::ISchedulingFramework* framework, IContainerLauncher* launcher)
    : framework_(framework), launcher_(launcher) {}

Status FrameworkScheduler::Initialize(const Config& conf) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (framework_ == nullptr || launcher_ == nullptr) {
    return Status::InvalidArgument(
        "FrameworkScheduler needs a framework and a launcher");
  }
  if (initialized_) {
    return Status::FailedPrecondition("scheduler already initialized");
  }
  config_ = conf;
  initialized_ = true;
  return Status::OK();
}

ContainerId FrameworkScheduler::PlanContainerAt(int slot) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slot_to_container_.find(slot);
  return it == slot_to_container_.end() ? -1 : it->second;
}

Status FrameworkScheduler::StartSlot(int slot) {
  const ContainerId id = PlanContainerAt(slot);
  packing::PackingPlan plan = current_plan();
  const packing::ContainerPlan* container = plan.FindContainer(id);
  if (container == nullptr) {
    return Status::NotFound(
        StrFormat("no plan container for framework slot %d", slot));
  }
  return launcher_->StartContainer(*container);
}

Status FrameworkScheduler::StopSlot(int slot) {
  const ContainerId id = PlanContainerAt(slot);
  if (id < 0) {
    return Status::NotFound(
        StrFormat("no plan container for framework slot %d", slot));
  }
  return launcher_->StopContainer(id);
}

Status FrameworkScheduler::OnSchedule(
    const packing::PackingPlan& initial_plan) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!initialized_) {
      return Status::FailedPrecondition("scheduler not initialized");
    }
    if (!job_.empty()) {
      return Status::FailedPrecondition(
          StrFormat("topology '%s' already scheduled as job '%s'",
                    initial_plan.topology_name().c_str(), job_.c_str()));
    }
    HERON_RETURN_NOT_OK(initial_plan.Validate());
    plan_ = initial_plan;
    slot_to_container_.clear();
    int slot = 0;
    for (const auto& c : initial_plan.containers()) {
      slot_to_container_[slot++] = c.id;
    }
  }

  // "Depending on the framework used, the Heron Scheduler determines
  // whether homogeneous or heterogeneous containers should be allocated."
  std::vector<Resource> demands;
  if (framework_->SupportsHeterogeneousContainers()) {
    for (const auto& c : initial_plan.containers()) {
      demands.push_back(c.required);
    }
  } else {
    const Resource uniform = initial_plan.MaxContainerResource();
    demands.assign(initial_plan.containers().size(), uniform);
  }

  if (IsStateful()) {
    framework_->SetEventCallback(
        [this](const frameworks::FrameworkEvent& event) {
          HandleFrameworkEvent(event);
        });
  }

  frameworks::JobSpec spec;
  spec.name = initial_plan.topology_name();
  spec.containers = std::move(demands);
  spec.start = [this](int slot) {
    const Status st = StartSlot(slot);
    if (!st.ok()) {
      HLOG(ERROR) << "container start for slot " << slot
                  << " failed: " << st.ToString();
    }
  };
  spec.stop = [this](int slot) {
    const Status st = StopSlot(slot);
    if (!st.ok() && !st.IsNotFound()) {
      HLOG(WARNING) << "container stop for slot " << slot
                    << " failed: " << st.ToString();
    }
  };

  HERON_ASSIGN_OR_RETURN(frameworks::JobId job, framework_->SubmitJob(spec));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
  }
  HLOG(INFO) << Name() << " scheduled '" << initial_plan.topology_name()
             << "' (" << initial_plan.NumContainers() << " containers, "
             << (IsStateful() ? "stateful" : "stateless") << " mode)";
  return Status::OK();
}

void FrameworkScheduler::HandleFrameworkEvent(
    const frameworks::FrameworkEvent& event) {
  if (event.container.state != frameworks::ContainerState::kFailed) return;
  // Stateful mode (§IV-B, YARN): "When a container failure is detected,
  // the Scheduler invokes the appropriate commands to restart the
  // container and its associated tasks."
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (event.job != job_) return;
    ++failovers_;
  }
  const Status st =
      framework_->RestartContainer(event.job, event.container.index);
  if (!st.ok()) {
    HLOG(ERROR) << Name() << " failed to recover container "
                << event.container.index << ": " << st.ToString();
  } else {
    HLOG(INFO) << Name() << " recovered failed container "
               << event.container.index;
  }
}

Status FrameworkScheduler::OnContainerDead(const std::string& topology,
                                           ContainerId container) {
  frameworks::JobId job;
  int slot = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (topology != plan_.topology_name() || job_.empty()) {
      return Status::NotFound(StrFormat(
          "topology '%s' is not managed by this scheduler", topology.c_str()));
    }
    job = job_;
    for (const auto& [s, cid] : slot_to_container_) {
      if (cid == container) {
        slot = s;
        break;
      }
    }
  }
  if (slot < 0) {
    return Status::NotFound(
        StrFormat("container %d not deployed", container));
  }
  HLOG(INFO) << Name() << ": container " << container
             << " reported dead; marking framework slot " << slot
             << " failed";
  // The framework contract does the rest: auto-restart (stateless mode) or
  // kFailed event → HandleFrameworkEvent → RestartContainer (stateful).
  return framework_->InjectContainerFailure(job, slot);
}

Status FrameworkScheduler::OnKill(const KillTopologyRequest& request) {
  frameworks::JobId job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (request.topology != plan_.topology_name()) {
      return Status::NotFound(StrFormat(
          "topology '%s' is not managed by this scheduler",
          request.topology.c_str()));
    }
    job = job_;
    job_.clear();
  }
  if (job.empty()) {
    return Status::FailedPrecondition("topology not scheduled");
  }
  return framework_->KillJob(job);
}

Status FrameworkScheduler::OnRestart(const RestartTopologyRequest& request) {
  frameworks::JobId job = job_id();
  if (job.empty()) {
    return Status::FailedPrecondition("topology not scheduled");
  }
  if (request.container >= 0) {
    std::vector<int> slots;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& [slot, cid] : slot_to_container_) {
        if (cid == request.container) slots.push_back(slot);
      }
    }
    if (slots.empty()) {
      return Status::NotFound(
          StrFormat("container %d not deployed", request.container));
    }
    return framework_->RestartContainer(job, slots.front());
  }
  // Restart everything.
  HERON_ASSIGN_OR_RETURN(auto statuses, framework_->JobStatus(job));
  for (const auto& s : statuses) {
    HERON_RETURN_NOT_OK(framework_->RestartContainer(job, s.index));
  }
  return Status::OK();
}

Status FrameworkScheduler::OnUpdate(const UpdateTopologyRequest& request) {
  frameworks::JobId job = job_id();
  if (job.empty()) {
    return Status::FailedPrecondition("topology not scheduled");
  }
  HERON_RETURN_NOT_OK(request.new_plan.Validate());

  // Diff old vs new container sets. "The Scheduler might remove existing
  // containers or request new containers from the underlying scheduling
  // framework."
  std::set<ContainerId> old_ids;
  std::set<ContainerId> new_ids;
  packing::PackingPlan old_plan = current_plan();
  for (const auto& c : old_plan.containers()) old_ids.insert(c.id);
  for (const auto& c : request.new_plan.containers()) new_ids.insert(c.id);

  std::vector<ContainerId> added;
  std::vector<ContainerId> removed;
  for (const ContainerId id : new_ids) {
    if (old_ids.count(id) == 0) added.push_back(id);
  }
  for (const ContainerId id : old_ids) {
    if (new_ids.count(id) == 0) removed.push_back(id);
  }

  // Install the new plan first so start hooks see it.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    plan_ = request.new_plan;
  }

  // Remove dropped containers.
  for (const ContainerId id : removed) {
    int slot = -1;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& [s, cid] : slot_to_container_) {
        if (cid == id) {
          slot = s;
          break;
        }
      }
    }
    if (slot < 0) continue;
    HERON_RETURN_NOT_OK(framework_->RemoveContainer(job, slot));
    std::lock_guard<std::mutex> lock(mutex_);
    slot_to_container_.erase(slot);
  }

  // Grow for new containers. A homogeneous framework (Aurora) can only
  // hand out more containers of the size the job already runs with; if
  // the new plan demands more than that, the topology must be restarted
  // rather than updated in place.
  if (!added.empty()) {
    std::vector<Resource> demands;
    if (framework_->SupportsHeterogeneousContainers()) {
      for (const ContainerId id : added) {
        demands.push_back(request.new_plan.FindContainer(id)->required);
      }
    } else {
      const Resource deployed = old_plan.MaxContainerResource();
      for (const ContainerId id : added) {
        if (!deployed.Fits(request.new_plan.FindContainer(id)->required)) {
          return Status::FailedPrecondition(StrFormat(
              "new container %d needs more than the deployed homogeneous "
              "size %s; restart the topology to resize",
              id, deployed.ToString().c_str()));
        }
      }
      demands.assign(added.size(), deployed);
    }
    // Map framework slots to plan containers before the start hooks run.
    HERON_ASSIGN_OR_RETURN(
        std::vector<int> slots,
        framework_->AddContainers(
            job, demands, [this, &added](const std::vector<int>& s) {
              std::lock_guard<std::mutex> lock(mutex_);
              for (size_t i = 0; i < s.size(); ++i) {
                slot_to_container_[s[i]] = added[i];
              }
            }));
    (void)slots;
  }

  HLOG(INFO) << Name() << " updated '" << request.topology << "': +"
             << added.size() << " / -" << removed.size() << " containers";
  return Status::OK();
}

void FrameworkScheduler::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  initialized_ = false;
}

frameworks::JobId FrameworkScheduler::job_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return job_;
}

packing::PackingPlan FrameworkScheduler::current_plan() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plan_;
}

int FrameworkScheduler::failovers_handled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failovers_;
}

}  // namespace scheduler
}  // namespace heron
