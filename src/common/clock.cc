#include "common/clock.h"

#include <ctime>

#include <chrono>

namespace heron {

int64_t RealClock::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RealClock* RealClock::Get() {
  static RealClock clock;
  return &clock;
}

int64_t ThreadCpuNanos() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

void VirtualClock::AdvanceTo(int64_t target_nanos) {
  int64_t current = now_nanos_.load(std::memory_order_acquire);
  while (current < target_nanos &&
         !now_nanos_.compare_exchange_weak(current, target_nanos,
                                           std::memory_order_acq_rel)) {
  }
}

}  // namespace heron
