// Reproduces Figures 7 and 8: Stream Manager optimizations with acks —
// total throughput and throughput per provisioned CPU core.
//
// "The Stream Manager optimizations provide a 3.5-4.5X performance
// improvement. At the same time ... a substantial performance improvement
// per CPU core." (§VI-B)

#include "bench/figures/fig_util.h"
#include "sim/heron_model.h"

using namespace heron;
using namespace heron::sim;

int main(int argc, char** argv) {
  bench::ParseSmoke(argc, argv);
  bench::JsonReport report("fig07_08_smgr_opts_acks");
  HeronCostModel costs;
  constexpr int64_t kMaxSpoutPending = 50000;

  bench::PrintFigureHeader(
      "Figure 7: Throughput with acks | Figure 8: Throughput per CPU core",
      "SMGR optimizations with acks: 3.5-4.5X throughput");
  bench::PrintColumns({"parallelism", "opt_Mt/min", "noopt_Mt/min", "ratio",
                       "opt_Mt/m/core", "noopt_Mt/m/core", "core_ratio"});

  double min_ratio = 1e30, max_ratio = 0;
  for (const int p : {25, 100, 200}) {
    HeronSimConfig config;
    config.spouts = config.bolts = p;
    config.acking = true;
    config.max_spout_pending = kMaxSpoutPending;
    config.warmup_sec = bench::WarmupSec();
    config.measure_sec = bench::MeasureSec();

    config.optimizations = true;
    const SimResult on = RunHeronSim(config, costs);
    config.optimizations = false;
    const SimResult off = RunHeronSim(config, costs);

    const double ratio = on.tuples_per_min / off.tuples_per_min;
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);

    bench::PrintCellInt(p);
    bench::PrintCell(on.tuples_per_min / 1e6);
    bench::PrintCell(off.tuples_per_min / 1e6);
    bench::PrintCell(ratio);
    bench::PrintCell(on.tuples_per_min_per_core / 1e6);
    bench::PrintCell(off.tuples_per_min_per_core / 1e6);
    bench::PrintCell(on.tuples_per_min_per_core /
                     off.tuples_per_min_per_core);
    bench::EndRow();

    const std::string scenario = "parallelism_" + std::to_string(p);
    report.Add(scenario, "opt_mtuples_min", on.tuples_per_min / 1e6);
    report.Add(scenario, "noopt_mtuples_min", off.tuples_per_min / 1e6);
    report.Add(scenario, "tput_ratio", ratio);
    report.Add(scenario, "core_ratio",
               on.tuples_per_min_per_core / off.tuples_per_min_per_core);
  }

  std::printf("\n");
  bench::PrintVerdict("Fig 7 min optimization throughput ratio", min_ratio,
                      3.5, 4.5);
  bench::PrintVerdict("Fig 7 max optimization throughput ratio", max_ratio,
                      3.5, 4.5);
  report.Write();
  return 0;
}
