# Empty compiler generated dependencies file for heron_serde.
# This may be replaced when dependencies are built.
