#include "smgr/tuple_cache.h"

namespace heron {
namespace smgr {

namespace tbf = proto::tuple_batch_fields;

bool TupleCache::Add(TaskId dest, TaskId src_task, serde::BytesView stream,
                     serde::BytesView src_component,
                     serde::BytesView tuple_bytes, uint64_t trace_id) {
  const uint64_t key = KeyOf(dest, src_task);
  auto it = pending_.find(key);
  if (it != pending_.end() && it->second.stream != stream) {
    // Same (dest, src) pair on a different stream: flush the old batch
    // eagerly rather than widen the key space for a rare case. The bytes
    // move to the eager staging area but keep counting toward the size
    // trip (eager_bytes_) — previously they silently stopped counting, so
    // an eagerly flushed batch could sit stranded until the next timer
    // tick. Drain stats are attributed in DrainAll, when the batch
    // actually leaves the cache.
    Pending& old = it->second;
    pending_bytes_ -= old.buffer.size();
    eager_bytes_ += old.buffer.size();
    eager_.push_back(
        {dest, std::move(old.buffer), old.tuple_count, old.trace_id});
    pending_.erase(it);
    it = pending_.end();
  }
  if (it == pending_.end()) {
    Pending fresh;
    fresh.buffer = pool_->Acquire();
    fresh.stream = std::string(stream);
    serde::WireEncoder enc(&fresh.buffer);
    enc.WriteInt32Field(tbf::kSrcTask, src_task);
    enc.WriteInt32Field(tbf::kDestTask, dest);
    enc.WriteBytesField(tbf::kStream, stream);
    enc.WriteBytesField(tbf::kSrcComponent, src_component);
    pending_bytes_ += fresh.buffer.size();
    it = pending_.emplace(key, std::move(fresh)).first;
  }
  Pending& p = it->second;
  const size_t before = p.buffer.size();
  serde::WireEncoder enc(&p.buffer);
  enc.WriteBytesField(tbf::kTuple, tuple_bytes);
  pending_bytes_ += p.buffer.size() - before;
  ++p.tuple_count;
  if (trace_id != 0) p.trace_id = trace_id;
  ++stats_.tuples_added;
  return should_drain();
}

std::vector<TupleCache::Batch> TupleCache::DrainAll(bool timer_drain) {
  std::vector<Batch> out = std::move(eager_);
  eager_.clear();
  for (Batch& b : out) {
    stats_.bytes_drained += b.bytes.size();
    ++stats_.batches_drained;
  }
  eager_bytes_ = 0;
  for (auto& [key, p] : pending_) {
    Batch b;
    b.dest = static_cast<TaskId>(static_cast<int32_t>(key >> 32));
    b.bytes = std::move(p.buffer);
    b.tuple_count = p.tuple_count;
    b.trace_id = p.trace_id;
    stats_.bytes_drained += b.bytes.size();
    ++stats_.batches_drained;
    out.push_back(std::move(b));
  }
  pending_.clear();
  pending_bytes_ = 0;
  if (!out.empty()) {
    if (timer_drain) {
      ++stats_.timer_drains;
    } else {
      ++stats_.size_drains;
    }
  }
  return out;
}

}  // namespace smgr
}  // namespace heron
