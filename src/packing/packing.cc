#include "packing/packing.h"

#include <algorithm>

#include "common/strings.h"

namespace heron {
namespace packing {
namespace internal {

std::vector<InstancePlan> EnumerateInstances(const api::Topology& topology) {
  std::vector<InstancePlan> instances;
  TaskId next_task = 0;
  for (const auto& component : topology.components()) {
    for (int i = 0; i < component.parallelism; ++i) {
      InstancePlan inst;
      inst.task_id = next_task++;
      inst.component = component.id;
      inst.component_index = i;
      inst.resources = component.resources;
      instances.push_back(std::move(inst));
    }
  }
  return instances;
}

Resource ContainerCapacityFromConfig(const Config& config) {
  return Resource(
      config.GetDoubleOr(config_keys::kContainerCpuHint, 8.0),
      config.GetIntOr(config_keys::kContainerRamMbHint, 16384),
      config.GetIntOr(config_keys::kContainerDiskMbHint, 65536));
}

Result<PackingPlan> RepackMinimalDisruption(
    const api::Topology& topology, const PackingPlan& current,
    const std::map<ComponentId, int>& parallelism_changes,
    const Resource& capacity) {
  // Resolve target parallelism for every component.
  std::map<ComponentId, int> target = current.ComponentParallelism();
  for (const auto& [component, parallelism] : parallelism_changes) {
    if (topology.FindComponent(component) == nullptr) {
      return Status::NotFound(StrFormat(
          "scaling request names unknown component '%s'", component.c_str()));
    }
    if (parallelism < 1) {
      return Status::InvalidArgument(StrFormat(
          "component '%s' parallelism must be >= 1, got %d",
          component.c_str(), parallelism));
    }
    target[component] = parallelism;
  }

  // Copy the plan, dropping scaled-down instances (highest index first —
  // equivalently: keep only indices below the new target).
  PackingPlan next;
  next.set_topology_name(current.topology_name());
  TaskId max_task = -1;
  ContainerId max_container = -1;
  for (const auto& c : current.containers()) {
    ContainerPlan copy;
    copy.id = c.id;
    copy.required = c.required;
    max_container = std::max(max_container, c.id);
    for (const auto& inst : c.instances) {
      if (inst.component_index < target[inst.component]) {
        copy.instances.push_back(inst);
        max_task = std::max(max_task, inst.task_id);
      }
    }
    if (!copy.instances.empty()) {
      next.mutable_containers()->push_back(std::move(copy));
    }
  }

  // Enumerate the instances to add, in component declaration order.
  std::vector<InstancePlan> to_add;
  for (const auto& component : topology.components()) {
    const auto it = target.find(component.id);
    const int want = it == target.end() ? component.parallelism : it->second;
    const int have = static_cast<int>(next.TasksOfComponent(component.id).size());
    for (int idx = have; idx < want; ++idx) {
      InstancePlan inst;
      inst.task_id = ++max_task;
      inst.component = component.id;
      inst.component_index = idx;
      inst.resources = component.resources;
      to_add.push_back(std::move(inst));
    }
  }

  // Place additions: most free headroom first ("exploit the available free
  // space of the already provisioned containers" while "providing load
  // balancing for the newly added instances").
  auto& containers = *next.mutable_containers();
  for (auto& inst : to_add) {
    ContainerPlan* best = nullptr;
    double best_free_cpu = -1.0;
    for (auto& c : containers) {
      const Resource used = c.InstanceTotal() + ContainerOverhead();
      const Resource free = capacity - used;
      if (free.Fits(inst.resources) && free.cpu > best_free_cpu) {
        best = &c;
        best_free_cpu = free.cpu;
      }
    }
    if (best == nullptr) {
      if (!(capacity - ContainerOverhead()).Fits(inst.resources)) {
        return Status::ResourceExhausted(StrFormat(
            "instance of '%s' demands %s, beyond container capacity %s",
            inst.component.c_str(), inst.resources.ToString().c_str(),
            capacity.ToString().c_str()));
      }
      ContainerPlan fresh;
      fresh.id = ++max_container;
      containers.push_back(std::move(fresh));
      best = &containers.back();
    }
    best->instances.push_back(std::move(inst));
  }

  // Recompute requirements for touched containers.
  for (auto& c : containers) {
    const Resource demand = c.InstanceTotal() + ContainerOverhead();
    c.required = Resource::Max(c.required, demand);
  }

  HERON_RETURN_NOT_OK(next.Validate(/*require_dense_task_ids=*/false));
  return next;
}

}  // namespace internal
}  // namespace packing
}  // namespace heron
