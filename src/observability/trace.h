#ifndef HERON_OBSERVABILITY_TRACE_H_
#define HERON_OBSERVABILITY_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace heron {
namespace observability {

/// \brief The stations a traced tuple passes on its end-to-end path.
///
/// The stage timestamps telescope: the delta between two consecutive
/// *recorded* stages attributes that slice of wall-clock to the later
/// stage, so the per-stage deltas of one trace sum exactly to its
/// end-to-end latency (ack-complete − spout-emit). kTransportHop is only
/// recorded when the tuple crosses containers; local deliveries fold that
/// slice into kInstanceDequeue.
enum class TraceStage : uint8_t {
  kSpoutEmit = 0,       ///< SpoutCollector serialized + enqueued the tuple.
  kSmgrRoute = 1,       ///< Origin SMGR applied grouping, cached for drain.
  kTransportHop = 2,    ///< Remote SMGR received the routed batch.
  kInstanceDequeue = 3, ///< Destination instance parsed the tuple.
  kExecute = 4,         ///< Bolt Execute() returned.
  kAckComplete = 5,     ///< Spout learned the tuple tree finished.
};

inline constexpr size_t kNumTraceStages = 6;

/// Short stable name for dumps and JSON ("spout_emit", "smgr_route", ...).
const char* TraceStageName(TraceStage stage);

/// \brief One recorded trace event.
struct Span {
  uint64_t trace_id = 0;
  TraceStage stage = TraceStage::kSpoutEmit;
  /// Task id for instance-side stages, container id for SMGR-side stages.
  int32_t location = -1;
  int64_t at_nanos = 0;

  bool operator==(const Span& o) const {
    return trace_id == o.trace_id && stage == o.stage &&
           location == o.location && at_nanos == o.at_nanos;
  }
};

/// \brief Wait-free fixed-capacity span sink: one per container, shared by
/// its SMGR and all its instances.
///
/// Record() is a relaxed fetch_add to claim a slot plus relaxed atomic
/// field stores and one release publish — no locks, no allocation, no
/// branches beyond the modulo, so traced tuples cost nanoseconds and
/// untraced tuples never get here at all (callers gate on trace_id != 0).
/// On wrap the oldest spans are overwritten and counted in dropped().
///
/// Snapshot() returns the retained spans oldest-first in record order; a
/// slot mid-overwrite is detected through its sequence stamp and skipped,
/// so concurrent Record/Snapshot is safe (and TSan-clean: every shared
/// field is atomic).
class SpanCollector {
 public:
  explicit SpanCollector(size_t capacity);

  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// Wait-free; callable from any thread.
  void Record(uint64_t trace_id, TraceStage stage, int32_t location,
              int64_t at_nanos);

  /// Retained spans, oldest-first in record order.
  std::vector<Span> Snapshot() const;

  /// Spans ever recorded (including overwritten ones).
  uint64_t total_recorded() const {
    return next_.load(std::memory_order_acquire);
  }
  /// Spans lost to ring wraparound.
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    /// 0 = empty; otherwise 1 + the global record index that owns the
    /// slot's current contents. Written last (release) by Record.
    std::atomic<uint64_t> stamp{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint8_t> stage{0};
    std::atomic<int32_t> location{-1};
    std::atomic<int64_t> at_nanos{0};
  };

  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
};

/// \brief One traced tuple's assembled stage timeline.
struct TraceRecord {
  uint64_t trace_id = 0;
  /// First-recorded timestamp per stage; -1 when the stage never fired
  /// (e.g. kTransportHop on a container-local delivery).
  std::array<int64_t, kNumTraceStages> at_nanos;
  /// Wall-clock attributed to each stage: at[stage] − at[previous recorded
  /// stage]. Telescopes, so the deltas sum to last − first. -1 for absent
  /// stages (kSpoutEmit's delta is 0 by definition when present).
  std::array<int64_t, kNumTraceStages> delta_nanos;
  /// kAckComplete − kSpoutEmit; -1 until both endpoints recorded.
  int64_t end_to_end_nanos = -1;
  bool complete() const { return end_to_end_nanos >= 0; }
};

/// \brief Aggregate stage attribution across many traces (the stacked
/// panel of the latency-breakdown figure).
struct TraceBreakdown {
  std::vector<TraceRecord> traces;  ///< Ordered by first appearance.
  size_t complete_count = 0;        ///< Traces with both endpoints.
  /// Mean per-stage delta over complete traces (nanos; 0 when a stage
  /// never fired).
  std::array<double, kNumTraceStages> mean_delta_nanos;
  double mean_end_to_end_nanos = 0;
};

/// Groups spans by trace id (keeping the first record per stage) and
/// computes the telescoping per-stage attribution.
TraceBreakdown BuildTraceBreakdown(const std::vector<Span>& spans);

}  // namespace observability
}  // namespace heron

#endif  // HERON_OBSERVABILITY_TRACE_H_
