# Empty compiler generated dependencies file for heron_frameworks.
# This may be replaced when dependencies are built.
