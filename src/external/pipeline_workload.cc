#include "external/pipeline_workload.h"

#include <vector>

#include "api/context.h"
#include "common/clock.h"
#include "common/random.h"

namespace heron {
namespace external {

namespace {

/// Times a section with the thread CPU clock and folds it into `sink`.
class SectionTimer {
 public:
  explicit SectionTimer(std::atomic<int64_t>* sink)
      : sink_(sink), start_(ThreadCpuNanos()) {}
  ~SectionTimer() { sink_->fetch_add(ThreadCpuNanos() - start_); }

 private:
  std::atomic<int64_t>* sink_;
  int64_t start_;
};

/// Spout reading one Kafka partition per instance (Fig. 14 source).
class KafkaSpout final : public api::ISpout {
 public:
  KafkaSpout(const PipelineWorkloadOptions& options,
             std::shared_ptr<SimKafka> kafka,
             std::shared_ptr<CostRecorder> recorder)
      : options_(options),
        kafka_(std::move(kafka)),
        recorder_(std::move(recorder)) {}

  void Open(const Config& config, api::TopologyContext* context,
            api::ISpoutOutputCollector* collector) override {
    collector_ = collector;
    partition_ = context->component_index() % kafka_->partitions();
    acking_ = config.GetBoolOr(config_keys::kAckingEnabled, false);
  }

  void NextTuple() override {
    if (options_.emit_limit_per_spout != 0 &&
        emitted_ >= options_.emit_limit_per_spout) {
      return;
    }
    std::vector<KafkaEvent> events;
    {
      SectionTimer timer(&recorder_->fetch_ns);
      if (!kafka_->Fetch(partition_, options_.fetch_batch, &events).ok()) {
        return;
      }
    }
    for (auto& event : events) {
      api::Values values;
      values.emplace_back(std::move(event.key));
      values.emplace_back(std::move(event.value));
      values.emplace_back(event.offset);
      if (acking_) {
        collector_->Emit(kDefaultStreamId, std::move(values),
                         next_message_id_++);
      } else {
        collector_->Emit(kDefaultStreamId, std::move(values), std::nullopt);
      }
      ++emitted_;
    }
  }

 private:
  PipelineWorkloadOptions options_;
  std::shared_ptr<SimKafka> kafka_;
  std::shared_ptr<CostRecorder> recorder_;
  api::ISpoutOutputCollector* collector_ = nullptr;
  int partition_ = 0;
  bool acking_ = false;
  uint64_t emitted_ = 0;
  int64_t next_message_id_ = 1;
};

/// Filter bolt: drops a fraction of events after a per-event predicate
/// (the "user logic" the paper's breakdown charges 21% for, part 1).
class FilterBolt final : public api::IBolt {
 public:
  FilterBolt(const PipelineWorkloadOptions& options,
             std::shared_ptr<CostRecorder> recorder)
      : options_(options), recorder_(std::move(recorder)) {}

  void Prepare(const Config& config, api::TopologyContext* context,
               api::IBoltOutputCollector* collector) override {
    collector_ = collector;
    rng_ = Random(7 + static_cast<uint64_t>(context->task_id()));
  }

  void Execute(const api::Tuple& input) override {
    bool pass;
    {
      SectionTimer timer(&recorder_->user_ns);
      BurnCpu(options_.filter_user_cost_ns);
      pass = rng_.NextDouble() < options_.filter_pass_fraction;
    }
    if (pass) {
      collector_->Emit(kDefaultStreamId, {&input},
                       {input.at(0), input.at(1), input.at(2)});
    }
    collector_->Ack(input);
  }

 private:
  PipelineWorkloadOptions options_;
  std::shared_ptr<CostRecorder> recorder_;
  api::IBoltOutputCollector* collector_ = nullptr;
  Random rng_{7};
};

/// Aggregator bolt: per-key counting (user logic, part 2) with pipelined
/// Redis flushes (the 8% "writing data" share).
class AggregateBolt final : public api::IBolt {
 public:
  AggregateBolt(const PipelineWorkloadOptions& options,
                std::shared_ptr<SimRedis> redis,
                std::shared_ptr<CostRecorder> recorder)
      : options_(options),
        redis_(std::move(redis)),
        recorder_(std::move(recorder)) {}

  void Prepare(const Config& config, api::TopologyContext* context,
               api::IBoltOutputCollector* collector) override {
    collector_ = collector;
  }

  void Execute(const api::Tuple& input) override {
    {
      SectionTimer timer(&recorder_->user_ns);
      BurnCpu(options_.aggregate_user_cost_ns);
      ++pending_[input.GetString(0)];
    }
    if (pending_.size() >= static_cast<size_t>(options_.redis_flush_every)) {
      FlushToRedis();
    }
    collector_->Ack(input);
  }

  void Cleanup() override { FlushToRedis(); }

 private:
  void FlushToRedis() {
    if (pending_.empty()) return;
    std::vector<std::pair<std::string, int64_t>> ops;
    ops.reserve(pending_.size());
    for (auto& [key, count] : pending_) {
      ops.emplace_back(key, count);
    }
    pending_.clear();
    SectionTimer timer(&recorder_->write_ns);
    redis_->PipelineIncr(ops).ok();
  }

  PipelineWorkloadOptions options_;
  std::shared_ptr<SimRedis> redis_;
  std::shared_ptr<CostRecorder> recorder_;
  api::IBoltOutputCollector* collector_ = nullptr;
  std::map<std::string, int64_t> pending_;
};

}  // namespace

Result<std::shared_ptr<const api::Topology>> BuildPipelineTopology(
    const std::string& name, const PipelineWorkloadOptions& options,
    std::shared_ptr<SimKafka> kafka, std::shared_ptr<SimRedis> redis,
    std::shared_ptr<CostRecorder> recorder, const Config& topology_config) {
  if (kafka == nullptr || redis == nullptr || recorder == nullptr) {
    return Status::InvalidArgument(
        "pipeline topology needs kafka, redis and a recorder");
  }
  api::TopologyBuilder builder(name);
  *builder.mutable_config() = topology_config;
  builder
      .SetSpout(
          "kafka-events",
          [options, kafka, recorder] {
            return std::make_unique<KafkaSpout>(options, kafka, recorder);
          },
          options.spouts)
      .OutputFields({"key", "value", "offset"});
  builder
      .SetBolt(
          "filter",
          [options, recorder] {
            return std::make_unique<FilterBolt>(options, recorder);
          },
          options.filters)
      .OutputFields({"key", "value", "offset"})
      .ShuffleGrouping("kafka-events");
  builder
      .SetBolt(
          "aggregate",
          [options, redis, recorder] {
            return std::make_unique<AggregateBolt>(options, redis, recorder);
          },
          options.aggregators)
      .FieldsGrouping("filter", {"key"});
  return builder.Build();
}

}  // namespace external
}  // namespace heron
