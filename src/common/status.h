#ifndef HERON_COMMON_STATUS_H_
#define HERON_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace heron {

/// \brief Error category carried by a Status.
///
/// The set mirrors the failure classes that appear across the engine:
/// user errors (kInvalidArgument), lookup failures (kNotFound), resource
/// exhaustion from packing and flow control (kResourceExhausted), transport
/// and framework failures (kUnavailable, kTimeout, kIOError), and internal
/// invariant violations (kInternal).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kResourceExhausted = 4,
  kFailedPrecondition = 5,
  kUnavailable = 6,
  kTimeout = 7,
  kCancelled = 8,
  kNotImplemented = 9,
  kIOError = 10,
  kInternal = 11,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Cheap, movable success/error value used on every fallible path.
///
/// The data plane never throws; functions that can fail return Status (or
/// Result<T>). The OK state is represented by a null internal pointer so
/// that passing around successful statuses costs one word.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;
  /// Constructs a status with the given code and message. A kOk code yields
  /// an OK status regardless of the message.
  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsTimeout() const { return code() == StatusCode::kTimeout; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const;

  /// Formats as "<code name>: <message>" (or "OK").
  std::string ToString() const;

  /// Prefixes the existing message with `context`, preserving the code.
  /// Used when propagating errors upward to record the call site.
  Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

/// Propagates a non-OK Status to the caller.
#define HERON_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::heron::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Aborts the process if `expr` returns a non-OK Status. For use in tests,
/// examples, and initialization code where failure is unrecoverable.
#define HERON_CHECK_OK(expr)                                            \
  do {                                                                  \
    ::heron::Status _st = (expr);                                       \
    if (!_st.ok()) {                                                    \
      ::heron::internal::AbortWithStatus(_st, __FILE__, __LINE__);      \
    }                                                                   \
  } while (0)

namespace internal {
[[noreturn]] void AbortWithStatus(const Status& st, const char* file, int line);
}  // namespace internal

}  // namespace heron

#endif  // HERON_COMMON_STATUS_H_
