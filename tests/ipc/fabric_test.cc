#include "ipc/fabric.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serde/message_pool.h"

namespace heron {
namespace ipc {
namespace {

/// Test sink: records delivered frames; refuses with kResourceExhausted
/// while `full` is set (leaving the payload intact, per the contract).
struct RecordingSink {
  struct Delivery {
    serde::FrameHeader header;
    serde::Buffer payload;
  };
  std::vector<Delivery> deliveries;
  bool full = false;

  FrameSink AsSink() {
    return [this](const serde::FrameHeader& header, serde::Buffer&& payload) {
      if (full) return Status::ResourceExhausted("sink full");
      deliveries.push_back({header, std::move(payload)});
      return Status::OK();
    };
  }
};

serde::FrameHeader MakeHeader(uint8_t type, const serde::Buffer& payload,
                              uint64_t trace_id = 0) {
  serde::FrameHeader h;
  h.type = type;
  h.payload_len = static_cast<uint32_t>(payload.size());
  h.trace_id = trace_id;
  return h;
}

class FabricModesTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Fabric> Make(size_t link_capacity = 1u << 16) {
    Fabric::Options options;
    options.link_capacity_bytes = link_capacity;
    options.pool = &pool_;
    auto made = MakeFabric(GetParam(), options);
    EXPECT_TRUE(made.ok());
    return std::move(*made);
  }

  serde::BufferPool pool_;
};

TEST_P(FabricModesTest, FramesArriveInFifoOrderWithExactBytes) {
  auto fabric = Make();
  RecordingSink sink;
  ASSERT_TRUE(fabric->OpenLink(1, sink.AsSink()).ok());
  for (int i = 0; i < 50; ++i) {
    serde::Buffer payload(static_cast<size_t>(i * 7 + 1),
                          static_cast<char>('a' + i % 26));
    auto header = MakeHeader(static_cast<uint8_t>(i % 7 + 1), payload,
                             static_cast<uint64_t>(i) << 32);
    ASSERT_TRUE(fabric->SendFrame(1, header, &payload).ok());
  }
  fabric->Pump();
  ASSERT_EQ(sink.deliveries.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    const auto& d = sink.deliveries[static_cast<size_t>(i)];
    EXPECT_EQ(d.header.type, static_cast<uint8_t>(i % 7 + 1));
    EXPECT_EQ(d.header.trace_id, static_cast<uint64_t>(i) << 32);
    EXPECT_EQ(d.payload,
              serde::Buffer(static_cast<size_t>(i * 7 + 1),
                            static_cast<char>('a' + i % 26)));
  }
  const FabricStats stats = fabric->stats();
  EXPECT_EQ(stats.frames_sent, 50u);
  EXPECT_EQ(stats.frames_delivered, 50u);
}

TEST_P(FabricModesTest, UnknownLinkIsNotFound) {
  auto fabric = Make();
  serde::Buffer payload = "orphan";
  EXPECT_TRUE(
      fabric->SendFrame(42, MakeHeader(1, payload), &payload).IsNotFound());
  // Failed send leaves the payload intact for the caller to retry.
  EXPECT_EQ(payload, "orphan");
}

TEST_P(FabricModesTest, DoubleOpenAndMissingCloseAreErrors) {
  auto fabric = Make();
  RecordingSink sink;
  ASSERT_TRUE(fabric->OpenLink(1, sink.AsSink()).ok());
  EXPECT_TRUE(fabric->OpenLink(1, sink.AsSink()).IsAlreadyExists());
  EXPECT_TRUE(fabric->CloseLink(9).IsNotFound());
  EXPECT_TRUE(fabric->CloseLink(1).ok());
  EXPECT_TRUE(fabric->CloseLink(1).IsNotFound());
}

TEST_P(FabricModesTest, SinkStallRetainsFrameUntilReceiverFrees) {
  auto fabric = Make();
  RecordingSink sink;
  ASSERT_TRUE(fabric->OpenLink(1, sink.AsSink()).ok());
  sink.full = true;
  serde::Buffer payload = "stalled-frame";
  const Status st = fabric->SendFrame(1, MakeHeader(3, payload), &payload);
  if (std::string(GetParam()) == "in-process") {
    // Synchronous delivery: the stall surfaces to the sender directly,
    // with the payload intact for its park/retry queue.
    EXPECT_TRUE(st.IsResourceExhausted());
    EXPECT_EQ(payload, "stalled-frame");
    EXPECT_GE(fabric->stats().sink_stalls, 1u);
    return;
  }
  // Wire fabrics accept the frame (it is on the wire), retain it at the
  // receive side across stalled pumps, and redeliver exactly once.
  ASSERT_TRUE(st.ok());
  fabric->Pump();
  fabric->Pump();
  EXPECT_TRUE(sink.deliveries.empty());
  sink.full = false;
  fabric->Pump();
  ASSERT_EQ(sink.deliveries.size(), 1u);
  EXPECT_EQ(sink.deliveries[0].payload, "stalled-frame");
  EXPECT_EQ(sink.deliveries[0].header.type, 3u);
  EXPECT_GE(fabric->stats().sink_stalls, 1u);
}

TEST_P(FabricModesTest, StalledFrameKeepsFifoOrder) {
  if (std::string(GetParam()) == "in-process") GTEST_SKIP();
  auto fabric = Make();
  RecordingSink sink;
  ASSERT_TRUE(fabric->OpenLink(1, sink.AsSink()).ok());
  serde::Buffer first = "first";
  serde::Buffer second = "second";
  ASSERT_TRUE(fabric->SendFrame(1, MakeHeader(1, first), &first).ok());
  sink.full = true;
  fabric->Pump();  // Reads "first", sink refuses, frame retained.
  ASSERT_TRUE(fabric->SendFrame(1, MakeHeader(2, second), &second).ok());
  sink.full = false;
  fabric->Pump();
  ASSERT_EQ(sink.deliveries.size(), 2u);
  EXPECT_EQ(sink.deliveries[0].payload, "first");
  EXPECT_EQ(sink.deliveries[1].payload, "second");
}

TEST_P(FabricModesTest, WireBacklogCapSurfacesAsResourceExhausted) {
  if (std::string(GetParam()) == "in-process") GTEST_SKIP();
  // A tiny link and a sink that never accepts: unread frames accumulate on
  // the wire until the fabric's own backpressure trips.
  auto fabric = Make(/*link_capacity=*/4096);
  RecordingSink sink;
  sink.full = true;
  ASSERT_TRUE(fabric->OpenLink(1, sink.AsSink()).ok());
  bool saw_exhausted = false;
  for (int i = 0; i < 20000 && !saw_exhausted; ++i) {
    serde::Buffer payload(512, 'x');
    const Status st = fabric->SendFrame(1, MakeHeader(1, payload), &payload);
    if (st.IsResourceExhausted()) {
      saw_exhausted = true;
      EXPECT_EQ(payload, serde::Buffer(512, 'x'));  // Intact for retry.
    } else {
      // Deliberately never pumped: unread frames must eventually push
      // back on the sender (kernel socket buffer + spill cap, or ring
      // fill), not accumulate without bound.
      ASSERT_TRUE(st.ok());
    }
  }
  EXPECT_TRUE(saw_exhausted);
}

TEST_P(FabricModesTest, CloseLinkDrainsDeliverableFrames) {
  auto fabric = Make();
  RecordingSink sink;
  ASSERT_TRUE(fabric->OpenLink(1, sink.AsSink()).ok());
  serde::Buffer payload = "last-words";
  ASSERT_TRUE(fabric->SendFrame(1, MakeHeader(1, payload), &payload).ok());
  // No pump before close: the close itself must flush what is readable.
  ASSERT_TRUE(fabric->CloseLink(1).ok());
  ASSERT_EQ(sink.deliveries.size(), 1u);
  EXPECT_EQ(sink.deliveries[0].payload, "last-words");
}

TEST_P(FabricModesTest, EmptyPayloadFramesWork) {
  auto fabric = Make();
  RecordingSink sink;
  ASSERT_TRUE(fabric->OpenLink(1, sink.AsSink()).ok());
  serde::Buffer empty;
  ASSERT_TRUE(
      fabric->SendFrame(1, MakeHeader(6, empty, 77), &empty).ok());
  fabric->Pump();
  ASSERT_EQ(sink.deliveries.size(), 1u);
  EXPECT_TRUE(sink.deliveries[0].payload.empty());
  EXPECT_EQ(sink.deliveries[0].header.trace_id, 77u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, FabricModesTest,
                         ::testing::Values("in-process", "socket", "shm"));

TEST(FabricTest, MakeFabricRejectsUnknownMode) {
  Fabric::Options options;
  EXPECT_FALSE(MakeFabric("carrier-pigeon", options).ok());
}

TEST(FabricTest, SocketUsesScatterGatherWrites) {
  Fabric::Options options;
  SocketFabric fabric(options);
  RecordingSink sink;
  ASSERT_TRUE(fabric.OpenLink(1, sink.AsSink()).ok());
  serde::Buffer payload = "gathered";
  ASSERT_TRUE(fabric.SendFrame(1, MakeHeader(1, payload), &payload).ok());
  // Header + payload left in one writev: the zero-extra-copy flush.
  EXPECT_EQ(fabric.stats().gather_writes, 1u);
  EXPECT_EQ(fabric.stats().bytes_on_wire,
            serde::kFrameHeaderBytes + std::string("gathered").size());
}

TEST(FabricTest, ShmRejectsFrameLargerThanRing) {
  Fabric::Options options;
  options.link_capacity_bytes = 4096;
  ShmRingFabric fabric(options);
  RecordingSink sink;
  ASSERT_TRUE(fabric.OpenLink(1, sink.AsSink()).ok());
  serde::Buffer payload(8192, 'x');
  EXPECT_TRUE(fabric.SendFrame(1, MakeHeader(1, payload), &payload)
                  .IsInvalidArgument());
}

TEST(FabricTest, ShmRingWrapAroundPreservesBytes) {
  // Force many wraps through a small ring and verify every payload.
  Fabric::Options options;
  options.link_capacity_bytes = 1024;
  ShmRingFabric fabric(options);
  RecordingSink sink;
  ASSERT_TRUE(fabric.OpenLink(1, sink.AsSink()).ok());
  for (int i = 0; i < 200; ++i) {
    serde::Buffer payload(static_cast<size_t>(i % 97 + 1),
                          static_cast<char>('0' + i % 10));
    ASSERT_TRUE(fabric.SendFrame(1, MakeHeader(1, payload), &payload).ok());
    fabric.Pump();
  }
  ASSERT_EQ(sink.deliveries.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(sink.deliveries[static_cast<size_t>(i)].payload,
              serde::Buffer(static_cast<size_t>(i % 97 + 1),
                            static_cast<char>('0' + i % 10)));
  }
}

TEST(FabricTest, BackgroundPumpDeliversWithoutManualPumping) {
  Fabric::Options options;
  options.pump_interval_us = 100;
  SocketFabric fabric(options);
  RecordingSink sink;
  ASSERT_TRUE(fabric.OpenLink(1, sink.AsSink()).ok());
  fabric.StartPump();
  serde::Buffer payload = "threaded";
  ASSERT_TRUE(fabric.SendFrame(1, MakeHeader(1, payload), &payload).ok());
  for (int spin = 0; spin < 2000 && fabric.stats().frames_delivered == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  fabric.StopPump();
  EXPECT_EQ(fabric.stats().frames_delivered, 1u);
}

}  // namespace
}  // namespace ipc
}  // namespace heron
