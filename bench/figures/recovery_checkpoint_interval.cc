// Recovery work vs checkpoint interval: the whole argument for snapshot
// checkpoints, measured on the real components.
//
// A step-mode WordCount universe runs in exactly-once mode with periodic
// aligned checkpoints; at a scripted sim-time the bolt container is
// hard-killed and the cluster rolls back to the latest globally-complete
// checkpoint. The recovery work is the spout suffix the restore must
// re-emit: (words emitted at the kill) - (emission cursor inside the
// restored snapshot). Two panels:
//
//  1. Interval sweep, fixed kill time — snapshot-based recovery work is
//     bounded by (rate x interval): shrink the interval, shrink the
//     re-emission, independent of how long the topology ran.
//  2. Uptime sweep, fixed interval — replay-based recovery (no
//     snapshots: rebuild state by replaying the full history) re-emits
//     everything since t=0 and grows linearly with uptime, while the
//     snapshot-based suffix stays flat.
//
// Each measured row sits next to the analytic model of
// sim/cost_model.h (SnapshotRecoveryWork / ReplayRecoveryWork) so the
// shapes can be eyeballed; the universes replay deterministically on a
// SimClock (same two-universe step harness the recovery tests use).
//
// `--smoke` (or HERON_BENCH_FAST=1) trims the sweeps for CI.

#include <cstdint>
#include <string>
#include <vector>

#include "bench/figures/fig_util.h"
#include "common/logging.h"
#include "runtime/local_cluster.h"
#include "serde/wire.h"
#include "sim/cost_model.h"
#include "statemgr/state_manager.h"
#include "workloads/word_count.h"

using namespace heron;

namespace {

/// What one kill-and-restore universe measured.
struct RecoveryRun {
  bool ok = false;
  uint64_t emitted_at_kill = 0;    ///< Replay-based recovery re-emits all.
  uint64_t snapshot_cursor = 0;    ///< Spout emission count in the snapshot.
  uint64_t restored_ckpt = 0;
  uint64_t checkpoints_completed = 0;
  double rate_per_sec = 0;         ///< Emission rate up to the kill.
  /// The suffix a snapshot restore re-emits.
  uint64_t snapshot_work() const {
    return emitted_at_kill - snapshot_cursor;
  }
};

/// Reads the spout's emission cursor (field 2 of the WordSpout snapshot)
/// out of the restored checkpoint's task-0 node.
uint64_t ParseSpoutCursor(const serde::Buffer& snapshot) {
  serde::WireDecoder dec(snapshot);
  while (!dec.AtEnd()) {
    auto tag = dec.ReadTag();
    if (!tag.ok() || *tag == 0) break;
    if (serde::TagFieldNumber(*tag) == 2) {
      auto v = dec.ReadUint64();
      return v.ok() ? *v : 0;
    }
    if (!dec.SkipField(serde::TagWireType(*tag)).ok()) break;
  }
  return 0;
}

RecoveryRun RunUniverse(int64_t interval_ms, double kill_at_sec) {
  RecoveryRun out;
  const std::string name = "ckpt-interval";
  SimClock clock(0);

  Config config;
  config.SetInt(config_keys::kNumContainersHint, 2);
  config.SetBool(config_keys::kClusterStepMode, true);
  config.SetInt(config_keys::kSchedulerMonitorIntervalMs, 100);
  config.SetInt(config_keys::kSchedulerMonitorMissLimit, 3);
  config.SetInt(config_keys::kMetricsCollectIntervalMs, 50);
  config.SetBool(config_keys::kAckingEnabled, true);
  config.SetInt(config_keys::kMessageTimeoutMs, 600000);
  config.SetInt(config_keys::kMaxSpoutPending, 16);
  config.Set(config_keys::kCheckpointMode, "exactly-once");
  config.SetInt(config_keys::kCheckpointIntervalMs, interval_ms);
  runtime::LocalCluster cluster(config, &clock);

  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 1000;
  spout_options.words_per_call = 2;
  auto topology =
      workloads::BuildWordCountTopology(name, /*spouts=*/1, /*bolts=*/1,
                                        spout_options, config);
  if (!topology.ok() || !cluster.Submit(*topology).ok()) return out;
  auto* coordinator = cluster.checkpoint_coordinator();
  if (coordinator == nullptr) return out;

  // Run to the scripted kill time; the coordinator's periodic triggers
  // and completion polls ride the monitor tick.
  const int64_t kill_nanos = static_cast<int64_t>(kill_at_sec * 1e9);
  while (clock.NowNanos() < kill_nanos) {
    cluster.StepAll();
    clock.AdvanceMillis(5);
    cluster.StepAll();
    cluster.MonitorTick();
  }
  out.emitted_at_kill = cluster.SumCounter("instance.emitted");
  out.checkpoints_completed = coordinator->completed();
  out.rate_per_sec = static_cast<double>(out.emitted_at_kill) / kill_at_sec;

  // The kill, then heartbeat-silence detection → global rollback.
  if (!cluster.FailContainer(1).ok()) return out;
  int detect_ticks = 0;
  while (cluster.recovery_metrics()
                 ->GetCounter("recovery.checkpoint.restores")
                 ->value() == 0 &&
         detect_ticks < 30) {
    ++detect_ticks;
    clock.AdvanceMillis(50);
    cluster.StepAll();
    cluster.MonitorTick();
  }
  out.restored_ckpt = coordinator->latest_complete();
  if (out.restored_ckpt != 0) {
    const auto snapshot = cluster.state_manager()->GetNodeData(
        statemgr::paths::CheckpointTask(name, out.restored_ckpt, /*task=*/0));
    if (snapshot.ok()) out.snapshot_cursor = ParseSpoutCursor(*snapshot);
  }
  out.ok = cluster.Kill().ok() && out.emitted_at_kill > 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseSmoke(argc, argv);
  bench::JsonReport report("recovery_checkpoint_interval");
  Logging::SetLevel(LogLevel::kError);

  bench::PrintFigureHeader(
      "Recovery work vs checkpoint interval (exactly-once rollback)",
      "Snapshot restore re-emits at most one checkpoint interval of "
      "history; replay-from-scratch grows with uptime");

  // Off the cadence grid so the analytic model's (kill mod interval)
  // column is non-degenerate.
  const double kill_at_sec = bench::FastMode() ? 1.05 : 2.05;

  std::printf("\n-- panel 1: interval sweep, kill at %.1fs --\n", kill_at_sec);
  bench::PrintColumns({"interval_ms", "ckpts_done", "rate_w/s", "snap_work",
                       "model_snap", "replay_work", "bound_r*i"});
  const std::vector<int64_t> intervals =
      bench::FastMode() ? std::vector<int64_t>{100, 400}
                        : std::vector<int64_t>{100, 200, 400, 800};
  double max_bound_ratio = 0;
  for (const int64_t interval_ms : intervals) {
    const RecoveryRun r = RunUniverse(interval_ms, kill_at_sec);
    const double interval_sec = static_cast<double>(interval_ms) / 1000.0;
    const double model_snap =
        sim::SnapshotRecoveryWork(r.rate_per_sec, interval_sec, kill_at_sec);
    const double bound = r.rate_per_sec * interval_sec;
    bench::PrintCellInt(interval_ms);
    bench::PrintCellInt(static_cast<int64_t>(r.checkpoints_completed));
    bench::PrintCell(r.rate_per_sec);
    bench::PrintCellInt(static_cast<int64_t>(r.snapshot_work()));
    bench::PrintCell(model_snap);
    bench::PrintCellInt(static_cast<int64_t>(r.emitted_at_kill));
    bench::PrintCell(bound);
    bench::EndRow();
    if (!r.ok) std::printf("  (universe did not recover!)\n");
    const std::string scenario = "interval_" + std::to_string(interval_ms);
    report.Add(scenario, "snapshot_work",
               static_cast<double>(r.snapshot_work()));
    report.Add(scenario, "replay_work",
               static_cast<double>(r.emitted_at_kill));
    report.Add(scenario, "bound_rate_x_interval", bound);
    // The bound has slack for completion lag: a checkpoint cut at the
    // cadence still needs a barrier round-trip before it is restorable,
    // so the restored snapshot can be up to ~2 intervals stale.
    if (bound > 0) {
      const double ratio = static_cast<double>(r.snapshot_work()) / bound;
      if (ratio > max_bound_ratio) max_bound_ratio = ratio;
    }
  }
  bench::PrintVerdict("snapshot work / (rate x interval) stays bounded",
                      max_bound_ratio, 0.0, 3.0);

  std::printf("\n-- panel 2: uptime sweep, interval fixed at 200ms --\n");
  bench::PrintColumns({"kill_at_s", "snap_work", "replay_work",
                       "model_replay", "replay/snap"});
  const std::vector<double> uptimes =
      bench::FastMode() ? std::vector<double>{0.5, 1.0}
                        : std::vector<double>{0.5, 1.0, 2.0, 4.0};
  double first_replay = 0, last_replay = 0;
  double worst_snap_over_bound = 0;
  for (const double uptime : uptimes) {
    const RecoveryRun r = RunUniverse(/*interval_ms=*/200, uptime);
    const double model_replay =
        sim::ReplayRecoveryWork(r.rate_per_sec, uptime);
    const double snap = static_cast<double>(r.snapshot_work());
    const double replay = static_cast<double>(r.emitted_at_kill);
    bench::PrintCell(uptime);
    bench::PrintCellInt(static_cast<int64_t>(snap));
    bench::PrintCellInt(static_cast<int64_t>(replay));
    bench::PrintCell(model_replay);
    bench::PrintCell(snap > 0 ? replay / snap : 0.0);
    bench::EndRow();
    if (!r.ok) std::printf("  (universe did not recover!)\n");
    const std::string scenario =
        "uptime_" + std::to_string(static_cast<int>(uptime * 1e3)) + "ms";
    report.Add(scenario, "snapshot_work", snap);
    report.Add(scenario, "replay_work", replay);
    const double bound = r.rate_per_sec * 0.2;
    if (bound > 0 && snap / bound > worst_snap_over_bound) {
      worst_snap_over_bound = snap / bound;
    }
    if (first_replay == 0) first_replay = replay;
    last_replay = replay;
  }
  // Replay work scales with uptime (last/first tracks the uptime ratio);
  // snapshot work stays under the interval bound at *every* uptime — it
  // wobbles with the kill's phase in the cadence but never grows with
  // history.
  const double uptime_ratio = uptimes.back() / uptimes.front();
  bench::PrintVerdict(
      "replay-work growth / uptime growth (linear => ~1)",
      first_replay > 0 ? (last_replay / first_replay) / uptime_ratio : 0.0,
      0.5, 1.5);
  bench::PrintVerdict(
      "max snapshot work / (rate x interval) over the sweep",
      worst_snap_over_bound, 0.0, 2.0);
  std::printf(
      "\n  shape: the replay column grows linearly with uptime while the "
      "snapshot\n  column stays pinned near rate x interval — the restored "
      "suffix is bounded\n  by the checkpoint cadence, not by history.\n");
  report.Write();
  return 0;
}
