file(REMOVE_RECURSE
  "CMakeFiles/heron_serde.dir/wire.cc.o"
  "CMakeFiles/heron_serde.dir/wire.cc.o.d"
  "libheron_serde.a"
  "libheron_serde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_serde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
