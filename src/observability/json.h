#ifndef HERON_OBSERVABILITY_JSON_H_
#define HERON_OBSERVABILITY_JSON_H_

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace heron {
namespace observability {
namespace json {

/// \brief Minimal JSON emitter: objects, arrays, strings, numbers, bools.
///
/// The snapshot exporter and the MetricsCache publish machine-readable
/// state; a third-party JSON dependency is out of scope, so this writer
/// (and the matching recursive-descent Parse below) implement exactly the
/// subset the schemas use. Numbers are emitted with enough precision to
/// round-trip doubles.
class Writer {
 public:
  Writer& BeginObject();
  Writer& EndObject();
  Writer& BeginArray();
  Writer& EndArray();
  /// Must precede every value inside an object.
  Writer& Key(std::string_view key);
  Writer& String(std::string_view value);
  Writer& Number(double value);
  Writer& Int(int64_t value);
  Writer& Uint(uint64_t value);
  Writer& Bool(bool value);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Comma();
  std::string out_;
  /// Whether the current nesting level already holds a value (→ comma).
  std::vector<bool> has_value_{false};
  bool pending_key_ = false;
};

/// Appends the JSON string escape of `value` (quotes included) to `out`.
void AppendEscaped(std::string_view value, std::string* out);

/// \brief Parsed JSON value tree.
struct Value {
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  /// Insertion-ordered members.
  std::vector<std::pair<std::string, Value>> object;
  std::vector<Value> array;

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;
  double NumberOr(std::string_view key, double fallback) const;
  std::string StringOr(std::string_view key, std::string_view fallback) const;
  bool BoolOr(std::string_view key, bool fallback) const;
};

/// Parses one JSON document (objects/arrays/strings/numbers/bools/null);
/// trailing garbage is an error.
Result<Value> Parse(std::string_view text);

}  // namespace json
}  // namespace observability
}  // namespace heron

#endif  // HERON_OBSERVABILITY_JSON_H_
