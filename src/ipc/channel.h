#ifndef HERON_IPC_CHANNEL_H_
#define HERON_IPC_CHANNEL_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "common/status.h"
#include "ipc/wakeup.h"

namespace heron {
namespace ipc {

/// \brief Outcome of a non-blocking receive: distinguishes "nothing right
/// now" from "nothing ever again", which hand-rolled loops previously had
/// to discover with an extra closed() lock round-trip per idle iteration.
enum class RecvState {
  kItem,    ///< An item was returned.
  kEmpty,   ///< Queue empty, channel still open — more may arrive.
  kClosed,  ///< Closed *and* drained — end of stream, stop polling.
};

/// \brief Bounded multi-producer/multi-consumer message channel — the IPC
/// kernel of Fig. 1.
///
/// In the paper's deployment the modules are separate processes connected
/// by sockets; here each module runs on its own thread and a Channel is
/// the socket stand-in. The semantics that matter for fidelity are
/// preserved: payloads cross the boundary only as serialized bytes
/// (enforced by the Envelope discipline, not by this class), and capacity
/// is bounded so a slow consumer exerts back pressure on producers exactly
/// as a full TCP window would.
template <typename T>
class Channel {
 public:
  explicit Channel(size_t capacity) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks until space is available (back pressure) or the channel is
  /// closed. kCancelled after Close.
  Status Send(T item) {
    Wakeup* wakeup = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_full_.wait(lock,
                     [&] { return closed_ || queue_.size() < capacity_; });
      if (closed_) return Status::Cancelled("channel closed");
      queue_.push_back(std::move(item));
      ++total_enqueued_;
      wakeup = wakeup_;
    }
    not_empty_.notify_one();
    if (wakeup != nullptr) wakeup->Notify();
    return Status::OK();
  }

  /// Non-blocking send; kResourceExhausted when full, kCancelled when
  /// closed. Takes an rvalue reference and moves only on success, so the
  /// caller keeps the item (and can park it for retry) on failure.
  Status TrySend(T&& item) {
    Wakeup* wakeup = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return Status::Cancelled("channel closed");
      if (queue_.size() >= capacity_) {
        return Status::ResourceExhausted("channel full");
      }
      queue_.push_back(std::move(item));
      ++total_enqueued_;
      wakeup = wakeup_;
    }
    not_empty_.notify_one();
    if (wakeup != nullptr) wakeup->Notify();
    return Status::OK();
  }

  /// Blocks until an item arrives or the channel is closed *and* drained.
  /// std::nullopt signals end of stream.
  std::optional<T> Recv() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    return PopLocked(&lock);
  }

  /// Like Recv but gives up after `timeout`; std::nullopt on timeout or
  /// end of stream (check closed() to distinguish).
  std::optional<T> RecvFor(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !queue_.empty(); })) {
      return std::nullopt;
    }
    return PopLocked(&lock);
  }

  /// Non-blocking receive. std::nullopt for both "empty" and
  /// "closed-and-drained"; prefer the RecvState overload when the caller
  /// must tell them apart.
  std::optional<T> TryRecv() {
    RecvState ignored;
    return TryRecv(&ignored);
  }

  /// Non-blocking receive that reports why nothing was returned:
  /// kEmpty means retry later, kClosed means end of stream. Saves the
  /// extra closed() lock round-trip every reactor poll used to pay.
  std::optional<T> TryRecv(RecvState* state) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.empty()) {
      *state = closed_ ? RecvState::kClosed : RecvState::kEmpty;
      return std::nullopt;
    }
    *state = RecvState::kItem;
    return PopLocked(&lock);
  }

  /// Closes the channel: senders fail immediately; receivers drain the
  /// remaining items and then see end of stream.
  void Close() {
    Wakeup* wakeup = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      wakeup = wakeup_;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    if (wakeup != nullptr) wakeup->Notify();
  }

  /// Binds (or, with nullptr, unbinds) a reactor wakeup: it is notified on
  /// every enqueue and on Close, so an EventLoop can sleep on one Wakeup
  /// while multiplexing many channels. At most one consumer loop per
  /// channel; the binding must outlive all concurrent Send/Close calls or
  /// be cleared first (EventLoop unbinds in its destructor).
  void BindWakeup(Wakeup* wakeup) {
    std::lock_guard<std::mutex> lock(mutex_);
    wakeup_ = wakeup;
  }

  /// Expires when this channel is destroyed. A party holding a deferred
  /// reference to the channel (the EventLoop's teardown unbind) locks the
  /// token first, so channel-before-loop destruction is safe: touching a
  /// destroyed channel's mutex is undefined behavior (it wedged the UBSan
  /// lane in a futex wait on the dead lock's stack bytes).
  std::weak_ptr<void> alive_token() const { return alive_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  size_t capacity() const { return capacity_; }

  /// Total items ever enqueued; a cheap throughput probe for tests.
  uint64_t total_enqueued() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_enqueued_;
  }

 private:
  std::optional<T> PopLocked(std::unique_lock<std::mutex>* lock) {
    if (queue_.empty()) return std::nullopt;  // Closed and drained.
    T item = std::move(queue_.front());
    queue_.pop_front();
    lock->unlock();
    not_full_.notify_one();
    return item;
  }

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  bool closed_ = false;
  uint64_t total_enqueued_ = 0;
  Wakeup* wakeup_ = nullptr;  ///< Reactor notification hook; see BindWakeup.
  /// Declared last so it is destroyed first: alive_token() observers see
  /// expiry before any other member (the mutex above all) is torn down.
  std::shared_ptr<void> alive_ = std::make_shared<int>(0);
};

}  // namespace ipc
}  // namespace heron

#endif  // HERON_IPC_CHANNEL_H_
