#include "storm/storm_cluster.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "api/context.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/strings.h"
#include "runtime/event_loop.h"

namespace heron {
namespace storm {

namespace {
constexpr char kAckerComponent[] = "__acker";
}  // namespace

/// Everything that moves between executors. Data tuples travel as live
/// objects inside a worker and as serialized bytes between workers — the
/// Storm model. Acker traffic uses the same struct and the same queues,
/// which is precisely the §III-A coupling the paper criticizes.
struct StormCluster::Message {
  enum class Kind : uint8_t {
    kData = 0,
    kAckerInit = 1,
    kAckerAck = 2,
    kAckerFail = 3,
    kSpoutAck = 4,
    kSpoutFail = 5,
  };

  Kind kind = Kind::kData;
  TaskId dest = -1;
  api::Tuple tuple;                ///< kData (object form).
  serde::Buffer serialized;        ///< kData in transit between workers.
  ComponentId src_component;       ///< kData provenance.
  StreamId stream{kDefaultStreamId};
  TaskId src_task = -1;
  api::TupleKey root = 0;          ///< Acker protocol.
  api::TupleKey xor_value = 0;
  TaskId spout_task = -1;          ///< kAckerInit.
};

/// A worker "process": the thread group of a Storm worker slot — its
/// executors plus the transfer and receive threads that do communication
/// inside the same process. Each former communication thread is now one
/// single-source reactor, so the thread count (and the §III-A contention
/// the Fig. 2-4 comparison measures) is unchanged.
class StormCluster::Worker {
 public:
  Worker(int id, size_t queue_capacity, StormCluster* cluster)
      : id_(id),
        cluster_(cluster),
        transfer_(queue_capacity),
        receive_(queue_capacity),
        transfer_loop_(
            runtime::EventLoop::Options{
                /*.name=*/StrFormat("storm-w%d-xfer", id),
                /*.burst=*/128,
                /*.idle_backoff_nanos=*/200000,
                /*.max_park_nanos=*/100000000,
                /*.registry=*/nullptr,
                /*.metric_prefix=*/"loop"},
            cluster->clock_),
        receive_loop_(
            runtime::EventLoop::Options{
                /*.name=*/StrFormat("storm-w%d-recv", id),
                /*.burst=*/128,
                /*.idle_backoff_nanos=*/200000,
                /*.max_park_nanos=*/100000000,
                /*.registry=*/nullptr,
                /*.metric_prefix=*/"loop"},
            cluster->clock_) {
    transfer_loop_.AddChannel<Message>(
        &transfer_, [this](Message&& message) { Transfer(std::move(message)); });
    receive_loop_.AddChannel<Message>(
        &receive_, [this](Message&& message) { Receive(std::move(message)); });
  }

  void Start() {
    transfer_loop_.Start();
    receive_loop_.Start();
  }

  void Stop() {
    transfer_.Close();
    receive_.Close();
    transfer_loop_.Join();
    transfer_loop_.Shutdown();
    receive_loop_.Join();
    receive_loop_.Shutdown();
  }

  ipc::Channel<Message>* transfer() { return &transfer_; }
  ipc::Channel<Message>* receive() { return &receive_; }
  int id() const { return id_; }

 private:
  void Transfer(Message message);
  void Receive(Message message);

  int id_;
  StormCluster* cluster_;
  /// Outbound serialized tuples from this worker's executors.
  ipc::Channel<Message> transfer_;
  /// Inbound serialized tuples from peer workers.
  ipc::Channel<Message> receive_;
  runtime::EventLoop transfer_loop_;
  runtime::EventLoop receive_loop_;
};

/// An executor thread multiplexing several tasks, Storm style: one
/// reactor whose idle worker round-robins the spout tasks and whose sole
/// source is the executor's shared inbound queue.
class StormCluster::Executor {
 public:
  Executor(int id, const Options& options, StormCluster* cluster)
      : id_(id),
        cluster_(cluster),
        inbound_(options.queue_capacity),
        rng_(options.seed + static_cast<uint64_t>(id) * 31),
        loop_(
            runtime::EventLoop::Options{
                /*.name=*/StrFormat("storm-exec-%d", id),
                /*.burst=*/256,
                /*.idle_backoff_nanos=*/200000,
                /*.max_park_nanos=*/100000000,
                /*.registry=*/nullptr,
                /*.metric_prefix=*/"loop"},
            cluster->clock_) {
    loop_.OnStartup([this] { SetupTasks(); });
    loop_.AddChannel<Message>(
        &inbound_, [this](Message&& message) { Dispatch(std::move(message)); });
    loop_.AddIdle([this] { return SpoutRound(); });
    loop_.OnShutdown([this] {
      for (auto& [_, state] : spouts_) state.spout->Close();
      for (auto& [_, state] : bolts_) state.bolt->Cleanup();
    });
  }

  void AddTask(const TaskInfo& info) { task_ids_.push_back(info.task); }

  void Start() { loop_.Start(); }

  void Stop() {
    inbound_.Close();
    loop_.Join();
    loop_.Shutdown();
  }

  ipc::Channel<Message>* inbound() { return &inbound_; }
  Random* rng() { return &rng_; }
  int id() const { return id_; }

 private:
  friend class StormCluster;
  class SpoutCollector;
  class BoltCollector;

  struct SpoutState {
    std::unique_ptr<api::ISpout> spout;
    std::unique_ptr<SpoutCollector> collector;
    std::unique_ptr<api::TopologyContext> context;
    /// root → (message id, emit time).
    std::map<api::TupleKey, std::pair<int64_t, int64_t>> pending;
    int64_t next_message_id = 1;
  };
  struct BoltState {
    std::unique_ptr<api::IBolt> bolt;
    std::unique_ptr<BoltCollector> collector;
    std::unique_ptr<api::TopologyContext> context;
  };
  /// Acker task state: root → (xor, spout task).
  struct AckerState {
    std::map<api::TupleKey, std::pair<api::TupleKey, TaskId>> roots;
  };

  /// Startup hook: instantiates user objects on the executor thread.
  void SetupTasks();
  /// Idle worker: one NextTuple per emit-eligible spout task.
  bool SpoutRound();
  void Dispatch(Message message);
  bool CanEmit(const SpoutState& state) const;

  int id_;
  StormCluster* cluster_;
  ipc::Channel<Message> inbound_;
  Random rng_;
  std::vector<TaskId> task_ids_;
  std::map<TaskId, SpoutState> spouts_;
  std::map<TaskId, BoltState> bolts_;
  std::map<TaskId, AckerState> ackers_;
  runtime::EventLoop loop_;
};

/// Spout collector: routes inline on the executor thread (no separate
/// routing process — the Storm way).
class StormCluster::Executor::SpoutCollector final
    : public api::ISpoutOutputCollector {
 public:
  SpoutCollector(Executor* executor, TaskId task, ComponentId component)
      : executor_(executor), task_(task), component_(std::move(component)) {}

  void Emit(const StreamId& stream, api::Values values,
            std::optional<int64_t> message_id) override {
    StormCluster* cluster = executor_->cluster_;
    api::Tuple tuple(component_, stream, task_, std::move(values));
    tuple.set_emit_time_nanos(cluster->clock_->NowNanos());
    auto& state = executor_->spouts_[task_];
    if (cluster->options_.acking && message_id.has_value()) {
      const api::TupleKey root =
          proto::MakeRootKey(task_, executor_->rng_.NextUint64());
      tuple.set_tuple_key(root);
      tuple.set_roots({root});
      state.pending[root] = {*message_id, tuple.emit_time_nanos()};
      // Init the acker — one more message through the shared queues.
      Message init;
      init.kind = Message::Kind::kAckerInit;
      init.dest = cluster->AckerOf(root);
      init.root = root;
      init.xor_value = root;
      init.spout_task = task_;
      cluster->Deliver(std::move(init), executor_->id_);
    } else {
      tuple.set_tuple_key(executor_->rng_.NextUint64());
    }
    cluster->emitted_->Increment();
    cluster->RouteData(std::move(tuple), executor_->id_);
  }

 private:
  Executor* executor_;
  TaskId task_;
  ComponentId component_;
};

/// Bolt collector with the XOR bookkeeping (same algebra as Heron's, but
/// updates flow to acker *tasks* over the data queues).
class StormCluster::Executor::BoltCollector final
    : public api::IBoltOutputCollector {
 public:
  BoltCollector(Executor* executor, TaskId task, ComponentId component)
      : executor_(executor), task_(task), component_(std::move(component)) {}

  void Emit(const StreamId& stream, const std::vector<const api::Tuple*>& anchors,
            api::Values values) override {
    StormCluster* cluster = executor_->cluster_;
    api::Tuple tuple(component_, stream, task_, std::move(values));
    tuple.set_tuple_key(executor_->rng_.NextUint64());
    tuple.set_emit_time_nanos(anchors.empty()
                                  ? cluster->clock_->NowNanos()
                                  : anchors.front()->emit_time_nanos());
    if (cluster->options_.acking) {
      std::vector<api::TupleKey> roots;
      for (const api::Tuple* anchor : anchors) {
        auto& per_root = children_xor_[anchor->tuple_key()];
        for (const api::TupleKey root : anchor->roots()) {
          per_root[root] ^= tuple.tuple_key();
          if (std::find(roots.begin(), roots.end(), root) == roots.end()) {
            roots.push_back(root);
          }
        }
      }
      tuple.set_roots(std::move(roots));
    }
    cluster->emitted_->Increment();
    cluster->RouteData(std::move(tuple), executor_->id_);
  }

  void Ack(const api::Tuple& tuple) override {
    StormCluster* cluster = executor_->cluster_;
    if (!cluster->options_.acking || tuple.roots().empty()) return;
    const auto it = children_xor_.find(tuple.tuple_key());
    for (const api::TupleKey root : tuple.roots()) {
      api::TupleKey xor_value = tuple.tuple_key();
      if (it != children_xor_.end()) {
        const auto rit = it->second.find(root);
        if (rit != it->second.end()) xor_value ^= rit->second;
      }
      Message ack;
      ack.kind = Message::Kind::kAckerAck;
      ack.dest = cluster->AckerOf(root);
      ack.root = root;
      ack.xor_value = xor_value;
      cluster->Deliver(std::move(ack), executor_->id_);
    }
    if (it != children_xor_.end()) children_xor_.erase(it);
  }

  void Fail(const api::Tuple& tuple) override {
    StormCluster* cluster = executor_->cluster_;
    if (!cluster->options_.acking || tuple.roots().empty()) return;
    for (const api::TupleKey root : tuple.roots()) {
      Message fail;
      fail.kind = Message::Kind::kAckerFail;
      fail.dest = cluster->AckerOf(root);
      fail.root = root;
      cluster->Deliver(std::move(fail), executor_->id_);
    }
    children_xor_.erase(tuple.tuple_key());
  }

 private:
  Executor* executor_;
  TaskId task_;
  ComponentId component_;
  std::map<api::TupleKey, std::map<api::TupleKey, api::TupleKey>>
      children_xor_;
};

bool StormCluster::Executor::CanEmit(const SpoutState& state) const {
  const auto& options = cluster_->options_;
  if (!options.acking || options.max_spout_pending <= 0) return true;
  return static_cast<int64_t>(state.pending.size()) <
         options.max_spout_pending;
}

void StormCluster::Executor::SetupTasks() {
  // Instantiate user objects on the executor thread.
  for (const TaskId task : task_ids_) {
    const TaskInfo& info = cluster_->tasks_[static_cast<size_t>(task)];
    if (info.is_acker) {
      ackers_[task];
      continue;
    }
    const api::ComponentDef* def =
        cluster_->topology_->FindComponent(info.component);
    auto context = std::make_unique<api::TopologyContext>(
        cluster_->topology_->name(), info.component, task,
        info.component_index, def->parallelism);
    if (info.is_spout) {
      SpoutState state;
      state.spout = def->spout_factory();
      state.collector =
          std::make_unique<SpoutCollector>(this, task, info.component);
      state.context = std::move(context);
      state.spout->Open(cluster_->topology_->config(), state.context.get(),
                        state.collector.get());
      spouts_[task] = std::move(state);
    } else {
      BoltState state;
      state.bolt = def->bolt_factory();
      state.collector =
          std::make_unique<BoltCollector>(this, task, info.component);
      state.context = std::move(context);
      state.bolt->Prepare(cluster_->topology_->config(), state.context.get(),
                          state.collector.get());
      bolts_[task] = std::move(state);
    }
  }
}

bool StormCluster::Executor::SpoutRound() {
  bool progressed = false;
  // Round-robin the spout tasks multiplexed on this executor.
  for (auto& [task, state] : spouts_) {
    if (CanEmit(state)) {
      state.spout->NextTuple();
      progressed = true;
    }
  }
  return progressed;
}

void StormCluster::Executor::Dispatch(Message message) {
  StormCluster* cluster = cluster_;
  switch (message.kind) {
    case Message::Kind::kData: {
      const auto it = bolts_.find(message.dest);
      if (it == bolts_.end()) return;
      cluster->executed_->Increment();
      it->second.bolt->Execute(message.tuple);
      return;
    }
    case Message::Kind::kAckerInit: {
      auto& state = ackers_[message.dest];
      auto& entry = state.roots[message.root];
      entry.first ^= message.xor_value;
      entry.second = message.spout_task;
      return;
    }
    case Message::Kind::kAckerAck: {
      auto& state = ackers_[message.dest];
      const auto it = state.roots.find(message.root);
      if (it == state.roots.end()) return;  // Stale.
      it->second.first ^= message.xor_value;
      if (it->second.first == 0) {
        Message done;
        done.kind = Message::Kind::kSpoutAck;
        done.dest = it->second.second;
        done.root = message.root;
        state.roots.erase(it);
        cluster->Deliver(std::move(done), id_);
      }
      return;
    }
    case Message::Kind::kAckerFail: {
      auto& state = ackers_[message.dest];
      const auto it = state.roots.find(message.root);
      if (it == state.roots.end()) return;
      Message failed;
      failed.kind = Message::Kind::kSpoutFail;
      failed.dest = it->second.second;
      failed.root = message.root;
      state.roots.erase(it);
      cluster->Deliver(std::move(failed), id_);
      return;
    }
    case Message::Kind::kSpoutAck:
    case Message::Kind::kSpoutFail: {
      const auto it = spouts_.find(message.dest);
      if (it == spouts_.end()) return;
      auto& pending = it->second.pending;
      const auto pit = pending.find(message.root);
      if (pit == pending.end()) return;
      const auto [message_id, emit_time] = pit->second;
      pending.erase(pit);
      if (message.kind == Message::Kind::kSpoutAck) {
        cluster->acked_->Increment();
        cluster->complete_latency_->Record(static_cast<uint64_t>(
            std::max<int64_t>(cluster->clock_->NowNanos() - emit_time, 0)));
        it->second.spout->Ack(message_id);
      } else {
        cluster->failed_->Increment();
        it->second.spout->Fail(message_id);
      }
      return;
    }
  }
}

void StormCluster::Worker::Transfer(Message message) {
  // "The threads that perform the communication operations and the actual
  // processing tasks share the same JVM": this reactor's thread contends
  // with the worker's executors for the same cores.
  const int dest_worker =
      cluster_->tasks_[static_cast<size_t>(message.dest)].worker;
  Worker* peer = cluster_->workers_[static_cast<size_t>(dest_worker)].get();
  peer->receive()->Send(std::move(message)).ok();
}

void StormCluster::Worker::Receive(Message message) {
  if (message.kind == Message::Kind::kData) {
    // The naive hop: full per-tuple deserialization, fresh allocations.
    proto::TupleDataMsg msg;
    if (!msg.ParseFromBytes(message.serialized).ok()) return;
    msg.ToTuple(message.src_component, message.stream, message.src_task,
                &message.tuple);
    message.serialized.clear();
  }
  cluster_->DeliverLocal(std::move(message));
}

StormCluster::StormCluster(const Options& options)
    : options_(options), clock_(RealClock::Get()) {
  emitted_ = metrics_.GetCounter("storm.emitted");
  executed_ = metrics_.GetCounter("storm.executed");
  acked_ = metrics_.GetCounter("storm.acked");
  failed_ = metrics_.GetCounter("storm.failed");
  dropped_ = metrics_.GetCounter("storm.dropped");
  complete_latency_ = metrics_.GetHistogram("storm.complete.latency.ns");
}

StormCluster::~StormCluster() {
  if (running()) Kill().ok();
}

TaskId StormCluster::AckerOf(api::TupleKey root) const {
  return acker_tasks_[root % acker_tasks_.size()];
}

void StormCluster::RouteData(api::Tuple tuple, int src_executor) {
  const auto it = edges_.find({tuple.source_component(), tuple.stream()});
  if (it == edges_.end()) return;
  Executor* executor = executors_[static_cast<size_t>(src_executor)].get();
  for (const EdgeInfo& edge : it->second) {
    std::vector<TaskId> dests;
    switch (edge.kind) {
      case api::GroupingKind::kShuffle:
        dests.push_back(edge.consumer_tasks[executor->rng()->NextBelow(
            edge.consumer_tasks.size())]);
        break;
      case api::GroupingKind::kFields: {
        uint64_t hash = 0;
        for (const int idx : edge.sorted_field_indices) {
          hash = api::HashCombine(
              hash,
              api::HashValue(tuple.values()[static_cast<size_t>(idx)]));
        }
        dests.push_back(edge.consumer_tasks[hash % edge.consumer_tasks.size()]);
        break;
      }
      case api::GroupingKind::kGlobal:
        dests.push_back(edge.consumer_tasks.front());
        break;
      case api::GroupingKind::kAll:
        dests = edge.consumer_tasks;
        break;
      case api::GroupingKind::kCustom: {
        const auto picks = edge.custom_fn(
            tuple.values(), static_cast<int>(edge.consumer_tasks.size()));
        for (const int p : picks) {
          dests.push_back(edge.consumer_tasks[static_cast<size_t>(p)]);
        }
        break;
      }
      case api::GroupingKind::kDirect:
        continue;
    }
    for (const TaskId dest : dests) {
      Message message;
      message.kind = Message::Kind::kData;
      message.dest = dest;
      message.tuple = tuple;  // Per-destination copy, Storm style.
      message.src_component = tuple.source_component();
      message.stream = tuple.stream();
      message.src_task = tuple.source_task();
      Deliver(std::move(message), src_executor);
    }
  }
}

void StormCluster::Deliver(Message message, int src_executor) {
  const TaskInfo& dest_info = tasks_[static_cast<size_t>(message.dest)];
  const int src_worker =
      src_executor < 0
          ? dest_info.worker
          : executor_worker_[static_cast<size_t>(src_executor)];
  if (dest_info.worker == src_worker) {
    DeliverLocal(std::move(message));
    return;
  }
  // Inter-worker: serialize data tuples per tuple (acker messages are tiny
  // and ride as-is) and push through this worker's transfer thread.
  if (message.kind == Message::Kind::kData) {
    proto::TupleDataMsg msg;
    msg.FromTuple(message.tuple);
    message.serialized = msg.SerializeAsBuffer();
    message.tuple = api::Tuple();
  }
  workers_[static_cast<size_t>(src_worker)]
      ->transfer()
      ->Send(std::move(message))
      .ok();
}

void StormCluster::DeliverLocal(Message message) {
  const TaskInfo& info = tasks_[static_cast<size_t>(message.dest)];
  ipc::Channel<Message>* queue =
      executors_[static_cast<size_t>(info.executor)]->inbound();
  // Bounded retry, then shed load: executors must never block each other
  // into a cycle.
  for (int attempt = 0; attempt < 200; ++attempt) {
    const Status st = queue->TrySend(std::move(message));
    if (st.ok() || st.IsCancelled()) return;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  dropped_->Increment();
}

Status StormCluster::Submit(std::shared_ptr<const api::Topology> topology) {
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("storm cluster already running");
  }
  if (topology == nullptr) {
    return Status::InvalidArgument("null topology");
  }
  topology_ = std::move(topology);

  // Enumerate tasks: topology components, then acker tasks.
  TaskId next_task = 0;
  for (const auto& component : topology_->components()) {
    for (int i = 0; i < component.parallelism; ++i) {
      TaskInfo info;
      info.task = next_task++;
      info.component = component.id;
      info.component_index = i;
      info.is_spout = component.kind == api::ComponentKind::kSpout;
      tasks_.push_back(std::move(info));
    }
  }
  if (options_.acking) {
    for (int i = 0; i < options_.num_ackers; ++i) {
      TaskInfo info;
      info.task = next_task++;
      info.component = kAckerComponent;
      info.component_index = i;
      info.is_acker = true;
      acker_tasks_.push_back(info.task);
      tasks_.push_back(std::move(info));
    }
  }

  // Executors multiplex tasks_per_executor tasks; executors round-robin
  // over the pre-acquired workers.
  const int num_executors =
      (static_cast<int>(tasks_.size()) + options_.tasks_per_executor - 1) /
      options_.tasks_per_executor;
  for (int w = 0; w < options_.num_workers; ++w) {
    workers_.push_back(
        std::make_unique<Worker>(w, options_.queue_capacity, this));
  }
  for (int e = 0; e < num_executors; ++e) {
    executors_.push_back(std::make_unique<Executor>(e, options_, this));
    executor_worker_.push_back(e % options_.num_workers);
  }
  for (size_t t = 0; t < tasks_.size(); ++t) {
    const int executor = static_cast<int>(t) / options_.tasks_per_executor;
    tasks_[t].executor = executor;
    tasks_[t].worker = executor_worker_[static_cast<size_t>(executor)];
    executors_[static_cast<size_t>(executor)]->AddTask(tasks_[t]);
  }

  // Resolve routing edges.
  for (const auto& component : topology_->components()) {
    for (const auto& in : component.inputs) {
      EdgeInfo edge;
      edge.kind = in.grouping;
      edge.custom_fn = in.custom_fn;
      const api::Fields* schema =
          topology_->OutputSchema(in.source, in.stream);
      if (schema == nullptr) {
        return Status::NotFound(StrFormat(
            "stream '%s' of '%s' not declared", in.stream.c_str(),
            in.source.c_str()));
      }
      if (edge.kind == api::GroupingKind::kFields) {
        for (const auto& name : in.grouping_fields.names()) {
          edge.sorted_field_indices.push_back(schema->IndexOf(name));
        }
        std::sort(edge.sorted_field_indices.begin(),
                  edge.sorted_field_indices.end());
      }
      for (const auto& info : tasks_) {
        if (info.component == component.id) {
          edge.consumer_tasks.push_back(info.task);
        }
      }
      edges_[{in.source, in.stream}].push_back(std::move(edge));
    }
  }

  for (auto& worker : workers_) worker->Start();
  for (auto& executor : executors_) executor->Start();
  HLOG(INFO) << "storm cluster running '" << topology_->name() << "': "
             << tasks_.size() << " tasks on " << executors_.size()
             << " executors / " << workers_.size() << " workers";
  return Status::OK();
}

Status StormCluster::Kill() {
  if (!running_.exchange(false)) {
    return Status::FailedPrecondition("nothing running");
  }
  for (auto& executor : executors_) executor->Stop();
  for (auto& worker : workers_) worker->Stop();
  executors_.clear();
  workers_.clear();
  tasks_.clear();
  edges_.clear();
  acker_tasks_.clear();
  executor_worker_.clear();
  return Status::OK();
}

uint64_t StormCluster::TotalEmitted() const { return emitted_->value(); }
uint64_t StormCluster::TotalExecuted() const { return executed_->value(); }
uint64_t StormCluster::TotalAcked() const { return acked_->value(); }
uint64_t StormCluster::TotalFailed() const { return failed_->value(); }

uint64_t StormCluster::CompleteLatencyQuantile(double q) const {
  return complete_latency_->Quantile(q);
}

}  // namespace storm
}  // namespace heron
