file(REMOVE_RECURSE
  "CMakeFiles/heron_api.dir/grouping.cc.o"
  "CMakeFiles/heron_api.dir/grouping.cc.o.d"
  "CMakeFiles/heron_api.dir/topology.cc.o"
  "CMakeFiles/heron_api.dir/topology.cc.o.d"
  "CMakeFiles/heron_api.dir/tuple.cc.o"
  "CMakeFiles/heron_api.dir/tuple.cc.o.d"
  "CMakeFiles/heron_api.dir/values.cc.o"
  "CMakeFiles/heron_api.dir/values.cc.o.d"
  "libheron_api.a"
  "libheron_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
