// Clock, Resource, Random and IdGenerator coverage.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/clock.h"
#include "common/ids.h"
#include "common/random.h"
#include "common/resource.h"

namespace heron {
namespace {

TEST(ClockTest, RealClockIsMonotonic) {
  RealClock* clock = RealClock::Get();
  const int64_t a = clock->NowNanos();
  const int64_t b = clock->NowNanos();
  EXPECT_LE(a, b);
}

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock clock(1000);
  EXPECT_EQ(clock.NowNanos(), 1000);
  clock.AdvanceNanos(500);
  EXPECT_EQ(clock.NowNanos(), 1500);
  clock.AdvanceMillis(1);
  EXPECT_EQ(clock.NowNanos(), 1001500);
  EXPECT_EQ(clock.NowMicros(), 1001);
  EXPECT_EQ(clock.NowMillis(), 1);
}

TEST(ClockTest, VirtualClockNeverGoesBackwards) {
  VirtualClock clock(100);
  clock.AdvanceTo(50);
  EXPECT_EQ(clock.NowNanos(), 100);
  clock.AdvanceTo(200);
  EXPECT_EQ(clock.NowNanos(), 200);
}

TEST(ClockTest, StopwatchMeasuresVirtualTime) {
  VirtualClock clock;
  Stopwatch watch(&clock);
  clock.AdvanceMillis(3);
  EXPECT_EQ(watch.ElapsedNanos(), 3000000);
  EXPECT_DOUBLE_EQ(watch.ElapsedMillis(), 3.0);
  watch.Reset();
  EXPECT_EQ(watch.ElapsedNanos(), 0);
}

TEST(ClockTest, ThreadCpuNanosGrowsUnderWork) {
  const int64_t before = ThreadCpuNanos();
  volatile uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + static_cast<uint64_t>(i);
  EXPECT_GT(ThreadCpuNanos(), before);
}

TEST(ResourceTest, ArithmeticAndFits) {
  const Resource a(2.0, 1024, 512);
  const Resource b(1.0, 512, 256);
  EXPECT_EQ(a + b, Resource(3.0, 1536, 768));
  EXPECT_EQ(a - b, Resource(1.0, 512, 256));
  EXPECT_TRUE(a.Fits(b));
  EXPECT_FALSE(b.Fits(a));
  EXPECT_TRUE(a.Fits(a));  // Boundary: equal fits (with epsilon).
}

TEST(ResourceTest, FitsIsPerDimension) {
  const Resource big_cpu(10.0, 100, 0);
  const Resource big_ram(1.0, 10000, 0);
  EXPECT_FALSE(big_cpu.Fits(big_ram));
  EXPECT_FALSE(big_ram.Fits(big_cpu));
}

TEST(ResourceTest, MaxIsElementwise) {
  const Resource m = Resource::Max(Resource(1, 2048, 10), Resource(4, 512, 20));
  EXPECT_EQ(m, Resource(4, 2048, 20));
}

TEST(ResourceTest, CompoundAssignment) {
  Resource r(1.0, 100, 0);
  r += Resource(0.5, 50, 10);
  EXPECT_EQ(r, Resource(1.5, 150, 10));
  r -= Resource(0.5, 50, 10);
  EXPECT_EQ(r, Resource(1.0, 100, 0));
  EXPECT_FALSE(r.IsZero());
  EXPECT_TRUE(Resource().IsZero());
}

TEST(RandomTest, DeterministicFromSeed) {
  Random a(7);
  Random b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, BoundsRespected) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
    const int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, RoughlyUniform) {
  Random rng(99);
  int buckets[10] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.NextBelow(10)];
  for (const int count : buckets) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 50);
  }
}

TEST(IdGeneratorTest, UniqueAcrossThreads) {
  std::set<std::string> ids;
  std::mutex mutex;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        const std::string id = IdGenerator::Next("t");
        std::lock_guard<std::mutex> lock(mutex);
        ids.insert(id);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ids.size(), 400u);
}

}  // namespace
}  // namespace heron
