// Spam detection — one of the applications the paper's introduction names
// ("spam detection, real time machine learning and real time analytics").
//
// Pipeline: tweet-spout → feature bolt (shuffle) → per-user scoring bolt
// (fields grouping on user, so each user's history lives on one instance)
// → the scorer flags users whose rolling spam score crosses a threshold.
//
//   $ ./build/examples/spam_detection

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "api/context.h"
#include "common/logging.h"
#include "common/random.h"
#include "runtime/local_cluster.h"

using namespace heron;

namespace {

/// Synthetic tweet firehose: a small population of users, a few of whom
/// ("bots") post repetitive link-heavy content.
class TweetSpout final : public api::ISpout {
 public:
  void Open(const Config& config, api::TopologyContext* context,
            api::ISpoutOutputCollector* collector) override {
    collector_ = collector;
    rng_ = Random(41 + static_cast<uint64_t>(context->task_id()));
  }

  void NextTuple() override {
    const int64_t user = static_cast<int64_t>(rng_.NextBelow(200));
    const bool bot = user < 12;  // Users 0-11 are spammers.
    std::string text = bot ? "CHEAP follox http://spam.example/x"
                           : "just watched the game, what a finish";
    if (bot && rng_.NextBool(0.3)) text += " http://spam.example/y";
    collector_->Emit({api::Value(user), api::Value(std::move(text))},
                     std::nullopt);
  }

 private:
  api::ISpoutOutputCollector* collector_ = nullptr;
  Random rng_{41};
};

/// Extracts cheap features: link count, shouting ratio, spam-word hits.
class FeatureBolt final : public api::IBolt {
 public:
  void Prepare(const Config&, api::TopologyContext*,
               api::IBoltOutputCollector* collector) override {
    collector_ = collector;
  }

  void Execute(const api::Tuple& input) override {
    const std::string& text = input.GetString(1);
    int64_t links = 0;
    for (size_t pos = text.find("http"); pos != std::string::npos;
         pos = text.find("http", pos + 4)) {
      ++links;
    }
    int64_t upper = 0;
    for (const char c : text) upper += (c >= 'A' && c <= 'Z') ? 1 : 0;
    const int64_t spam_words =
        text.find("CHEAP") != std::string::npos ? 1 : 0;
    collector_->Emit(kDefaultStreamId, {},
                     {input.at(0), api::Value(links), api::Value(upper),
                      api::Value(spam_words)});
    collector_->Ack(input);
  }

 private:
  api::IBoltOutputCollector* collector_ = nullptr;
};

std::atomic<int64_t> g_flagged{0};
std::atomic<int64_t> g_scored{0};

/// Per-user rolling score; fields grouping guarantees user affinity.
class ScoreBolt final : public api::IBolt {
 public:
  void Prepare(const Config&, api::TopologyContext*,
               api::IBoltOutputCollector* collector) override {
    collector_ = collector;
  }

  void Execute(const api::Tuple& input) override {
    const int64_t user = input.GetInt64(0);
    const double increment = 2.0 * static_cast<double>(input.GetInt64(1)) +
                             0.05 * static_cast<double>(input.GetInt64(2)) +
                             3.0 * static_cast<double>(input.GetInt64(3));
    double& score = scores_[user];
    score = 0.9 * score + increment;  // Exponential decay.
    g_scored.fetch_add(1, std::memory_order_relaxed);
    if (score > 25.0 && !flagged_.count(user)) {
      flagged_.insert(user);
      g_flagged.fetch_add(1, std::memory_order_relaxed);
    }
    collector_->Ack(input);
  }

 private:
  api::IBoltOutputCollector* collector_ = nullptr;
  std::map<int64_t, double> scores_;
  std::set<int64_t> flagged_;
};

}  // namespace

int main() {
  Logging::SetLevel(LogLevel::kWarning);

  api::TopologyBuilder builder("spam-detection");
  builder
      .SetSpout(
          "tweets", [] { return std::make_unique<TweetSpout>(); }, 2)
      .OutputFields({"user", "text"});
  builder
      .SetBolt(
          "features", [] { return std::make_unique<FeatureBolt>(); }, 2)
      .OutputFields({"user", "links", "upper", "spam_words"})
      .ShuffleGrouping("tweets");
  builder
      .SetBolt(
          "score", [] { return std::make_unique<ScoreBolt>(); }, 2)
      .FieldsGrouping("features", {"user"});
  auto topology = builder.Build();
  HERON_CHECK_OK(topology.status());

  Config config;
  config.SetInt(config_keys::kNumContainersHint, 2);
  runtime::LocalCluster cluster(config);
  HERON_CHECK_OK(cluster.Submit(*topology));
  std::printf("spam-detection topology running...\n");
  std::this_thread::sleep_for(std::chrono::seconds(2));
  HERON_CHECK_OK(cluster.Kill());

  std::printf("tweets scored:   %lld\n",
              static_cast<long long>(g_scored.load()));
  std::printf("accounts flagged: %lld (12 bots planted)\n",
              static_cast<long long>(g_flagged.load()));
  return g_flagged.load() >= 10 ? 0 : 1;  // The bots must be caught.
}
