#ifndef HERON_API_CONTEXT_H_
#define HERON_API_CONTEXT_H_

#include <string>

#include "common/ids.h"

namespace heron {
namespace api {

/// \brief What user code may know about where it is running: its task
/// identity within the topology. Handed to ISpout::Open / IBolt::Prepare
/// by the executor.
class TopologyContext {
 public:
  TopologyContext(std::string topology_name, ComponentId component,
                  TaskId task_id, int component_index, int parallelism)
      : topology_name_(std::move(topology_name)),
        component_(std::move(component)),
        task_id_(task_id),
        component_index_(component_index),
        parallelism_(parallelism) {}

  const std::string& topology_name() const { return topology_name_; }
  /// The logical component this instance executes.
  const ComponentId& component() const { return component_; }
  /// Global task id, unique across the topology.
  TaskId task_id() const { return task_id_; }
  /// This instance's index among the component's instances, in [0,
  /// parallelism).
  int component_index() const { return component_index_; }
  /// Current parallelism of the component.
  int parallelism() const { return parallelism_; }

 private:
  std::string topology_name_;
  ComponentId component_;
  TaskId task_id_;
  int component_index_;
  int parallelism_;
};

}  // namespace api
}  // namespace heron

#endif  // HERON_API_CONTEXT_H_
