#include "smgr/stream_manager.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/strings.h"

namespace heron {
namespace smgr {

namespace tbf = proto::tuple_batch_fields;

StreamManager::StreamManager(const Options& options,
                             std::shared_ptr<const proto::PhysicalPlan> plan,
                             Transport* transport, const Clock* clock)
    : options_(options),
      plan_(std::move(plan)),
      transport_(transport),
      clock_(clock),
      inbound_(options.inbound_capacity),
      cache_({options.cache_drain_frequency_ms, options.cache_drain_size_bytes},
             transport->buffer_pool()),
      tracker_(options.message_timeout_ms * 1000000),
      rng_(options.seed ^ (static_cast<uint64_t>(options.container) << 32)),
      loop_(
          runtime::EventLoop::Options{
              /*.name=*/StrFormat("smgr-%d", options.container),
              /*.burst=*/128,
              /*.idle_backoff_nanos=*/200000,
              /*.max_park_nanos=*/100000000,
              /*.registry=*/&metrics_,
              /*.metric_prefix=*/"smgr"},
          clock) {
  // Resolve the routing table once: every (producer component, stream)
  // edge this container's instances can emit on.
  const api::Topology& topology = plan_->topology();
  for (const auto& component : topology.components()) {
    for (const auto& [stream, schema] : component.outputs) {
      std::vector<Edge> edges;
      for (const auto& sub : plan_->SubscribersOf(component.id, stream)) {
        Edge edge;
        edge.kind = sub.spec.grouping;
        edge.tasks = sub.consumer_tasks;
        edge.custom_fn = sub.spec.custom_fn;
        edge.schema = schema;
        if (edge.kind == api::GroupingKind::kFields) {
          for (const auto& name : sub.spec.grouping_fields.names()) {
            edge.sorted_field_indices.push_back(schema.IndexOf(name));
          }
          std::sort(edge.sorted_field_indices.begin(),
                    edge.sorted_field_indices.end());
        }
        edges.push_back(std::move(edge));
      }
      if (!edges.empty()) {
        edges_[{component.id, stream}] = std::move(edges);
      }
    }
  }
  for (const TaskId task : plan_->TasksInContainer(options_.container)) {
    const api::ComponentDef* def = plan_->ComponentOfTask(task);
    local_task_is_spout_[task] =
        def != nullptr && def->kind == api::ComponentKind::kSpout;
  }

  WireLoop();

  tuples_routed_ = metrics_.GetCounter("smgr.tuples.routed");
  batches_out_ = metrics_.GetCounter("smgr.batches.out");
  bytes_out_ = metrics_.GetCounter("smgr.bytes.out");
  acks_applied_ = metrics_.GetCounter("smgr.acks.applied");
  roots_completed_ = metrics_.GetCounter("smgr.roots.completed");
  roots_failed_ = metrics_.GetCounter("smgr.roots.failed");
  roots_timeout_ = metrics_.GetCounter("smgr.roots.timeout");
  retry_depth_ = metrics_.GetGauge("smgr.retry.depth");
  payload_touches_ = metrics_.GetCounter("smgr.payload_touches");
  barrier_fanouts_ = metrics_.GetCounter("smgr.barrier.fanouts");
  barriers_forwarded_ = metrics_.GetCounter("smgr.barriers.forwarded");
  backpressure_active_ = metrics_.GetGauge("smgr.backpressure.active");
  backpressure_duration_ns_ =
      metrics_.GetCounter("smgr.backpressure.duration.ns");
  backpressure_starts_ = metrics_.GetCounter("smgr.backpressure.starts");
  backpressure_remote_ = metrics_.GetGauge("smgr.backpressure.remote");
}

size_t StreamManager::backpressure_low_water() const {
  const size_t high = options_.backpressure_high_water;
  size_t low = options_.backpressure_low_water;
  if (low == 0) low = high / 2;
  // A low watermark at or above the high one would re-trip immediately;
  // clamp so hysteresis always has a gap (unless high is 0 or 1, where the
  // protocol degenerates to trip-on-any/clear-on-empty).
  if (low >= high) low = high == 0 ? 0 : high - 1;
  return low;
}

StreamManager::~StreamManager() { Stop(); }

void StreamManager::WireLoop() {
  // Envelope handler: the reactor drains the inbound channel in bounded
  // bursts (replacing the bespoke `for (i<128) TryRecv` drain).
  loop_.AddChannel<proto::Envelope>(
      &inbound_,
      [this](proto::Envelope&& env) { ProcessEnvelope(std::move(env)); });

  // Cache drain rides the timer heap: periodic, re-armed from fire time —
  // exactly the ArmTimer(now) policy the hand-rolled loop implemented.
  loop_.AddPeriodic(options_.cache_drain_frequency_ms * 1000000, [this] {
    DrainCacheNow(/*timer_drain=*/true);
    cache_.ArmTimer(clock_->NowNanos());
  });

  // Ack expiry is a dynamic-deadline service: the tracker's next deadline
  // moves as roots register, so it cannot be a fixed timer.
  if (options_.acking) {
    loop_.AddService([this](int64_t now) {
      if (now >= tracker_.NextDeadlineNanos()) ExpireAcksNow();
      return tracker_.NextDeadlineNanos();
    });
  }

  // Parked-send retries: flush every iteration while non-empty, and ask
  // the loop to wake within 1 ms so parked envelopes never stall longer
  // than the hand-rolled loop allowed.
  loop_.AddService([this](int64_t now) {
    if (retry_.empty()) return runtime::EventLoop::kNoDeadline;
    FlushRetries();
    return retry_.empty() ? runtime::EventLoop::kNoDeadline : now + 1000000;
  });

  // Shutdown drain: no tuple stranded in the cache, no envelope parked,
  // and no peer left throttled by an episode we can no longer end.
  loop_.OnShutdown([this] {
    DrainCacheNow(/*timer_drain=*/false);
    FlushRetries();
    if (local_backpressure_active_) {
      EndLocalEpisode(/*broadcast=*/true);
      // The kStop envelopes themselves may have parked; best-effort flush.
      FlushRetries();
    }
  });
}

Status StreamManager::Register() {
  HERON_RETURN_NOT_OK(
      transport_->RegisterSmgr(options_.container, &inbound_));
  registered_ = true;
  cache_.ArmTimer(clock_->NowNanos());
  if (options_.announce_recovery) {
    // Recovered incarnation: release any throttle ref the dead predecessor
    // left on surviving peers (its kStop could never be sent). Goes through
    // the normal park/retry FIFO, so peers not yet registered still get it.
    BroadcastBackpressure(proto::MessageType::kStopBackpressure);
  }
  return Status::OK();
}

Status StreamManager::Start() {
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("stream manager already running");
  }
  HERON_RETURN_NOT_OK(Register());
  loop_.Start();
  return Status::OK();
}

Status StreamManager::StartStepMode() {
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("stream manager already running");
  }
  return Register();
}

Status StreamManager::StartCooperative(runtime::TaskletPool* pool) {
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("stream manager already running");
  }
  HERON_RETURN_NOT_OK(Register());
  pool_ = pool;
  pool_handle_ = pool->Add(&loop_);
  return Status::OK();
}

void StreamManager::Stop() {
  if (registered_) {
    transport_->UnregisterSmgr(options_.container).ok();
    registered_ = false;
  }
  running_.store(false);
  // Closing the inbound lets the reactor drain every remaining envelope
  // and exit; Stop() is deliberately not called first, so nothing is
  // stranded. Shutdown() is a no-op when the loop thread already ran it.
  inbound_.Close();
  if (pool_handle_ != nullptr) {
    // Cooperative: fence the pool worker off the loop, then finish the
    // drain on this thread — the same iterations Run() would have done.
    pool_->Retire(pool_handle_);
    pool_handle_ = nullptr;
    while (!loop_.stopped() && !loop_.sources_done()) loop_.RunOnce();
  }
  loop_.Join();
  loop_.Shutdown();
  // Post-loop teardown bookkeeping: drop the throttle refs held by remote
  // initiators (their kStop can never arrive now) and zero the gauges so a
  // final metrics scrape does not report a dead SMGR as backlogged.
  if (!remote_initiators_.empty()) {
    throttle_refs_.fetch_sub(static_cast<int64_t>(remote_initiators_.size()),
                             std::memory_order_acq_rel);
    for (const ContainerId initiator : remote_initiators_) {
      metrics_
          .GetGauge(StrFormat("smgr.backpressure.initiator.%d", initiator))
          ->Set(0);
    }
    remote_initiators_.clear();
    backpressure_remote_->Set(0);
  }
  retry_depth_->Set(0);
}

void StreamManager::Kill() {
  if (registered_) {
    transport_->UnregisterSmgr(options_.container).ok();
    registered_ = false;
  }
  running_.store(false);
  // Halt, not Stop: the shutdown drain never runs. Whatever sat in the
  // tuple cache or retry queue dies with the "process" — exactly the loss
  // the ack-timeout replay must repair.
  loop_.Halt();
  if (pool_handle_ != nullptr) {
    pool_->Retire(pool_handle_);
    pool_handle_ = nullptr;
  }
  inbound_.Close();
  loop_.Join();
}

void StreamManager::ProcessEnvelope(proto::Envelope env) {
  switch (env.type) {
    case proto::MessageType::kTupleBatch:
      HandleInstanceBatch(env.payload, env.trace_id);
      transport_->buffer_pool()->Release(std::move(env.payload));
      // should_drain() counts eagerly flushed batches too — checking only
      // pending_bytes() stranded eager batches until the next timer tick.
      if (cache_.should_drain()) {
        DrainCacheNow(/*timer_drain=*/false);
      }
      break;
    case proto::MessageType::kTupleBatchRouted:
      HandleRoutedBatch(std::move(env));
      break;
    case proto::MessageType::kAckBatch:
      HandleAckBatch(std::move(env));
      break;
    case proto::MessageType::kCheckpointBarrier:
      HandleBarrier(std::move(env));
      break;
    case proto::MessageType::kStartBackpressure:
    case proto::MessageType::kStopBackpressure:
      HandleBackpressureControl(env.type, env.payload);
      transport_->buffer_pool()->Release(std::move(env.payload));
      break;
    case proto::MessageType::kRootEvent:
    case proto::MessageType::kControl:
      // Control traffic is handled by the container runtime today; the
      // SMGR simply ignores what it does not own.
      break;
  }
}

void StreamManager::MaybeRegisterRoots(TaskId src_task,
                                       serde::BytesView tuple_bytes) {
  api::TupleKey key = 0;
  std::vector<api::TupleKey> roots;
  if (!proto::PeekTupleKeyAndRoots(tuple_bytes, &key, &roots).ok()) return;
  const int64_t now = clock_->NowNanos();
  for (const api::TupleKey root : roots) {
    tracker_.Register(root, key, now);
  }
}

void StreamManager::RouteTuple(const std::vector<Edge>* edges, TaskId src_task,
                               serde::BytesView stream,
                               serde::BytesView src_component,
                               serde::BytesView tuple_bytes,
                               uint64_t trace_id) {
  for (const Edge& edge : *edges) {
    route_scratch_.clear();
    switch (edge.kind) {
      case api::GroupingKind::kShuffle:
        route_scratch_.push_back(
            edge.tasks[rng_.NextBelow(edge.tasks.size())]);
        break;
      case api::GroupingKind::kFields: {
        auto hash = proto::PeekFieldsHash(tuple_bytes,
                                          edge.sorted_field_indices);
        if (!hash.ok()) {
          HLOG(ERROR) << "dropping unroutable tuple: "
                      << hash.status().ToString();
          continue;
        }
        route_scratch_.push_back(edge.tasks[*hash % edge.tasks.size()]);
        break;
      }
      case api::GroupingKind::kGlobal:
        route_scratch_.push_back(edge.tasks.front());
        break;
      case api::GroupingKind::kAll:
        route_scratch_ = edge.tasks;
        break;
      case api::GroupingKind::kCustom: {
        // Custom groupings see decoded values by contract; this edge pays
        // the full decode regardless of the optimization toggle.
        proto::TupleDataMsg msg;
        if (!msg.ParseFromBytes(tuple_bytes).ok()) continue;
        const auto picks = edge.custom_fn(
            msg.values, static_cast<int>(edge.tasks.size()));
        for (const int p : picks) {
          route_scratch_.push_back(edge.tasks[static_cast<size_t>(p)]);
        }
        break;
      }
      case api::GroupingKind::kDirect:
        // Direct grouping is resolved by the emitting executor; tuples on
        // a direct edge arrive pre-addressed as routed batches.
        continue;
    }
    for (const TaskId dest : route_scratch_) {
      cache_.Add(dest, src_task, stream, src_component, tuple_bytes,
                 trace_id);
      tuples_routed_->Increment();
    }
  }
}

void StreamManager::HandleInstanceBatch(const serde::Buffer& payload,
                                        uint64_t env_trace_id) {
  // Sampled tracing: only when a collector is attached AND the envelope
  // hint says the batch contains a traced tuple do we pay a per-tuple
  // PeekTraceId. Untraced traffic routes with zero extra work.
  const bool peek_traces =
      options_.span_collector != nullptr && env_trace_id != 0;
  if (options_.optimizations) {
    // Lazy path: views only, no tuple materialization.
    if (!proto::ParseTupleBatchView(payload, &view_scratch_).ok()) {
      HLOG(ERROR) << "dropping malformed instance batch";
      return;
    }
    const std::pair<ComponentId, StreamId> key{
        std::string(view_scratch_.src_component),
        std::string(view_scratch_.stream)};
    const auto it = edges_.find(key);
    const bool is_spout =
        options_.acking &&
        local_task_is_spout_[view_scratch_.src_task];
    for (const serde::BytesView tuple : view_scratch_.tuples) {
      if (is_spout) MaybeRegisterRoots(view_scratch_.src_task, tuple);
      uint64_t trace_id = 0;
      if (peek_traces) {
        auto peeked = proto::PeekTraceId(tuple);
        if (peeked.ok() && *peeked != 0) {
          trace_id = *peeked;
          options_.span_collector->Record(
              trace_id, observability::TraceStage::kSmgrRoute,
              options_.container, clock_->NowNanos());
        }
      }
      if (it != edges_.end()) {
        RouteTuple(&it->second, view_scratch_.src_task, view_scratch_.stream,
                   view_scratch_.src_component, tuple, trace_id);
      }
    }
    return;
  }

  // Ablation path: fully deserialize the batch and every tuple, then
  // re-serialize each tuple before caching — the per-hop copy + parse a
  // naive engine performs.
  proto::TupleBatchMsg batch;
  if (!batch.ParseFromBytes(payload).ok()) {
    HLOG(ERROR) << "dropping malformed instance batch";
    return;
  }
  const auto it = edges_.find({batch.src_component, batch.stream});
  const bool is_spout =
      options_.acking && local_task_is_spout_[batch.src_task];
  for (const serde::Buffer& tuple_bytes : batch.tuples) {
    proto::TupleDataMsg tuple;
    if (!tuple.ParseFromBytes(tuple_bytes).ok()) continue;
    if (is_spout) {
      const int64_t now = clock_->NowNanos();
      for (const api::TupleKey root : tuple.roots) {
        tracker_.Register(root, tuple.tuple_key, now);
      }
    }
    if (peek_traces && tuple.trace_id != 0) {
      options_.span_collector->Record(
          tuple.trace_id, observability::TraceStage::kSmgrRoute,
          options_.container, clock_->NowNanos());
    }
    serde::Buffer reserialized = tuple.SerializeAsBuffer();
    if (it != edges_.end()) {
      RouteTuple(&it->second, batch.src_task, batch.stream,
                 batch.src_component, reserialized, tuple.trace_id);
    }
  }
}

serde::Buffer StreamManager::ReserializeBatch(const serde::Buffer& payload) {
  proto::TupleBatchMsg batch;
  if (!batch.ParseFromBytes(payload).ok()) {
    return payload;  // Malformed; pass through, the receiver will drop it.
  }
  proto::TupleBatchMsg rebuilt;
  rebuilt.src_task = batch.src_task;
  rebuilt.dest_task = batch.dest_task;
  rebuilt.stream = batch.stream;
  rebuilt.src_component = batch.src_component;
  for (const serde::Buffer& tuple_bytes : batch.tuples) {
    proto::TupleDataMsg tuple;
    if (!tuple.ParseFromBytes(tuple_bytes).ok()) continue;
    rebuilt.tuples.push_back(tuple.SerializeAsBuffer());
  }
  return rebuilt.SerializeAsBuffer();
}

void StreamManager::HandleRoutedBatch(proto::Envelope env) {
  // A routed batch entering through the inbound channel crossed the
  // container boundary (local deliveries go straight to the instance in
  // DrainCacheNow); record the transport hop for traced batches.
  if (options_.span_collector != nullptr && env.trace_id != 0) {
    options_.span_collector->Record(
        env.trace_id, observability::TraceStage::kTransportHop,
        options_.container, clock_->NowNanos());
  }
  TaskId dest = -1;
  if (options_.optimizations) {
    // Zero-copy route: the destination rode in on the envelope (and, on
    // wire transports, in the frame header), so forwarding never reads a
    // payload byte. The peek below is the compatibility fallback for
    // unaddressed envelopes only — in steady state it never runs, which
    // is exactly what `smgr.payload_touches == 0` asserts.
    dest = env.dest_task;
    if (dest < 0) {
      payload_touches_->Increment();
      auto peeked = proto::PeekDestTask(env.payload);
      if (!peeked.ok()) {
        HLOG(ERROR) << "dropping routed batch without destination";
        return;
      }
      dest = *peeked;
    }
  } else {
    // Ablation: the naive hop deserializes everything and rebuilds the
    // batch before passing it on.
    payload_touches_->Increment();
    serde::Buffer rebuilt = ReserializeBatch(env.payload);
    auto peeked = proto::PeekDestTask(rebuilt);
    if (!peeked.ok()) {
      HLOG(ERROR) << "dropping routed batch without destination";
      return;
    }
    dest = *peeked;
    env.payload = std::move(rebuilt);
  }
  env.dest_task = dest;

  auto container = plan_->ContainerOfTask(dest);
  if (!container.ok()) {
    // In-flight tuples addressed under a newer/older physical plan during
    // a scaling transition land here; dropping is the correct behaviour
    // (at-most-once for unacked tuples, replay via Fail for acked ones).
    HLOG(WARNING) << "dropping batch for unknown task " << dest;
    return;
  }
  if (*container == options_.container) {
    SendToInstance(dest, std::move(env));
  } else {
    SendToContainer(*container, std::move(env));
  }
}

void StreamManager::HandleAckBatch(proto::Envelope env) {
  // Same zero-copy contract as routed batches: the owning spout task is
  // envelope metadata; the payload is only parsed at the terminal hop
  // (applying the updates is ingestion, not forwarding).
  TaskId dest = env.dest_task;
  if (dest < 0) {
    payload_touches_->Increment();
    auto peeked = proto::PeekAckBatchDest(env.payload);
    if (!peeked.ok()) {
      HLOG(ERROR) << "dropping ack batch without destination";
      return;
    }
    dest = *peeked;
  }
  auto container = plan_->ContainerOfTask(dest);
  if (!container.ok()) {
    HLOG(ERROR) << "dropping ack batch for unknown task " << dest;
    return;
  }
  if (*container != options_.container) {
    env.dest_task = dest;
    SendToContainer(*container, std::move(env));
    return;
  }
  proto::AckBatchMsg batch;
  if (!batch.ParseFromBytes(env.payload).ok()) {
    HLOG(ERROR) << "dropping malformed ack batch";
    return;
  }
  transport_->buffer_pool()->Release(std::move(env.payload));
  for (const proto::AckUpdate& update : batch.updates) {
    acks_applied_->Increment();
    auto completion = tracker_.Update(update.root, update.xor_value,
                                      update.fail);
    if (completion.has_value()) {
      EmitRootEvent(*completion);
    }
  }
}

void StreamManager::HandleBarrier(proto::Envelope env) {
  if (env.dest_task >= 0) {
    // Addressed barrier: forward on metadata alone, exactly like a routed
    // batch — per-dest FIFO keeps it behind the data it must trail.
    const TaskId dest = env.dest_task;
    auto container = plan_->ContainerOfTask(dest);
    if (!container.ok()) {
      HLOG(WARNING) << "dropping barrier for unknown task " << dest;
      transport_->buffer_pool()->Release(std::move(env.payload));
      return;
    }
    barriers_forwarded_->Increment();
    if (*container == options_.container) {
      SendToInstance(dest, std::move(env));
    } else {
      SendToContainer(*container, std::move(env));
    }
    return;
  }
  // Fan-out request from a local instance: "my pre-barrier emissions are
  // all behind me on this channel — barrier every consumer I feed."
  proto::CheckpointBarrierMsg msg;
  const Status st = msg.ParseFromBytes(env.payload);
  transport_->buffer_pool()->Release(std::move(env.payload));
  if (!st.ok() || msg.origin_task < 0) {
    HLOG(ERROR) << "dropping malformed barrier fan-out request";
    return;
  }
  // Flush the cache first: batches staged there hold the origin's (and
  // everyone else's) pre-barrier tuples, and they must enter each
  // consumer channel ahead of the barrier.
  DrainCacheNow(/*timer_drain=*/false);
  barrier_fanouts_->Increment();
  const api::ComponentDef* def = plan_->ComponentOfTask(msg.origin_task);
  if (def == nullptr) return;
  std::set<TaskId> consumers;
  for (const auto& [stream, fields] : def->outputs) {
    for (const auto& sub : plan_->SubscribersOf(def->id, stream)) {
      consumers.insert(sub.consumer_tasks.begin(), sub.consumer_tasks.end());
    }
  }
  for (const TaskId consumer : consumers) {
    auto container = plan_->ContainerOfTask(consumer);
    if (!container.ok()) continue;
    serde::Buffer payload = transport_->buffer_pool()->Acquire();
    serde::WireEncoder enc(&payload);
    msg.SerializeTo(&enc);
    proto::Envelope out(proto::MessageType::kCheckpointBarrier,
                        std::move(payload));
    out.dest_task = consumer;
    barriers_forwarded_->Increment();
    if (*container == options_.container) {
      SendToInstance(consumer, std::move(out));
    } else {
      SendToContainer(*container, std::move(out));
    }
  }
}

void StreamManager::EmitRootEvent(const AckTracker::Completion& completion) {
  if (completion.fail) {
    roots_failed_->Increment();
  } else {
    roots_completed_->Increment();
  }
  proto::RootEventMsg msg;
  msg.root = completion.root;
  msg.fail = completion.fail;
  serde::Buffer payload = transport_->buffer_pool()->Acquire();
  serde::WireEncoder enc(&payload);
  msg.SerializeTo(&enc);
  SendToInstance(proto::RootKeyTask(completion.root),
                 proto::Envelope(proto::MessageType::kRootEvent,
                                 std::move(payload)));
}

void StreamManager::DrainCacheNow(bool timer_drain) {
  for (auto& batch : cache_.DrainAll(timer_drain)) {
    auto container = plan_->ContainerOfTask(batch.dest);
    if (!container.ok()) {
      HLOG(ERROR) << "dropping batch for unknown task " << batch.dest;
      continue;
    }
    batches_out_->Increment();
    bytes_out_->Increment(batch.bytes.size());
    proto::Envelope env(proto::MessageType::kTupleBatchRouted,
                        std::move(batch.bytes));
    env.trace_id = batch.trace_id;
    // Address the envelope here, where the destination is already known:
    // every downstream hop (peer SMGRs included) then routes on metadata
    // alone and never peeks the payload.
    env.dest_task = batch.dest;
    if (*container == options_.container) {
      if (!options_.optimizations) {
        // The naive engine re-serializes even on local delivery.
        env.payload = ReserializeBatch(env.payload);
      }
      SendToInstance(batch.dest, std::move(env));
    } else {
      SendToContainer(*container, std::move(env));
    }
  }
}

void StreamManager::ExpireAcksNow() {
  for (const auto& completion : tracker_.ExpireTimeouts(clock_->NowNanos())) {
    roots_timeout_->Increment();
    EmitRootEvent(completion);
  }
}

void StreamManager::SendToInstance(TaskId task, proto::Envelope env) {
  env.dest_task = task;
  TrySendOrPark(Transport::InstanceEndpoint(task), std::move(env));
}

void StreamManager::SendToContainer(ContainerId container,
                                    proto::Envelope env) {
  TrySendOrPark(Transport::SmgrEndpoint(container), std::move(env));
}

void StreamManager::TrySendOrPark(const Transport::Endpoint& dest,
                                  proto::Envelope env) {
  // FIFO invariant: while a destination has parked backlog, every new
  // envelope for it parks unconditionally. Attempting a direct send here
  // would let a fresh envelope overtake a parked predecessor the moment
  // the receiver freed one slot — reordering tuples on that channel.
  const auto backlog = parked_per_dest_.find(dest);
  if (backlog == parked_per_dest_.end()) {
    // Lock-guarded lookup + send; `env` is consumed only on success.
    const Status st = transport_->TrySend(dest, &env);
    if (st.ok() || st.IsCancelled()) return;
    // kNotFound — the endpoint is not registered *yet* (container still
    // starting, or mid-restart). Every destination the SMGR routes to is
    // derived from the physical plan, so it will (re)register; dropping
    // here silently loses tuples emitted during the startup window — the
    // roots then ride out the full message timeout and fail. Park instead:
    // the retry queue delivers the backlog the moment the endpoint
    // registers, which is also what gives a restarted container its
    // in-flight envelopes back.
  }
  // Full, unregistered, or queued behind backlog: park and let the loop
  // retry. The SMGR never blocks on a send, which is what makes the
  // container's channel graph deadlock-free.
  retry_.push_back({dest, std::move(env)});
  ++parked_per_dest_[dest].count;
  retry_depth_->Set(static_cast<int64_t>(retry_.size()));
  MaybeTripBackpressure();
}

size_t StreamManager::FlushRetries() {
  // One pass over the deque. Per-channel FIFO: once a destination refuses
  // an envelope this pass, every later entry for it is requeued untried —
  // otherwise a successor could slip into the slot its predecessor was
  // just denied.
  std::set<Transport::Endpoint> blocked;
  const size_t n = retry_.size();
  if (n != 0) {
    // One registry-lock hold for the whole pass. Each destination's Route
    // is resolved at most once and cached in its DestState (invalidated
    // by the transport's registration generation), so a deep backlog to
    // one endpoint costs one map lookup, not one lock + lookup per
    // envelope. The scope must close before MaybeClearBackpressure below:
    // a kStop broadcast re-enters the transport.
    Transport::FlushScope scope(transport_);
    for (size_t i = 0; i < n; ++i) {
      Parked parked = std::move(retry_.front());
      retry_.pop_front();
      if (blocked.count(parked.dest) != 0) {
        retry_.push_back(std::move(parked));
        continue;
      }
      DestState& state = parked_per_dest_[parked.dest];
      if (!state.resolved || state.gen != scope.generation()) {
        state.resolved = scope.Resolve(parked.dest, &state.route);
        state.gen = scope.generation();
      }
      // An unresolved endpoint is starting or restarting; its backlog
      // must survive until it registers, or tuples emitted across the
      // window are lost.
      const Status st = state.resolved
                            ? scope.TrySend(state.route, &parked.env)
                            : Status::NotFound("endpoint not registered");
      if (st.ok() || st.IsCancelled()) {
        // Delivered (or the channel is closed and draining no further):
        // backlog shrinks.
        auto it = parked_per_dest_.find(parked.dest);
        if (it != parked_per_dest_.end() && --it->second.count == 0) {
          parked_per_dest_.erase(it);
        }
        continue;
      }
      // Full (kResourceExhausted) or not registered yet (kNotFound):
      // keep the envelope parked.
      blocked.insert(parked.dest);
      retry_.push_back(std::move(parked));
    }
  }
  retry_depth_->Set(static_cast<int64_t>(retry_.size()));
  MaybeClearBackpressure();
  return retry_.size();
}

// -- Cluster-wide backpressure protocol --------------------------------

void StreamManager::MaybeTripBackpressure() {
  if (local_backpressure_active_) return;
  if (retry_.size() <= options_.backpressure_high_water) return;
  local_backpressure_active_ = true;  // Set before broadcasting: the
  // broadcast itself may park and re-enter MaybeTripBackpressure, which
  // the flag turns into a no-op (bounded recursion).
  backpressure_started_nanos_ = clock_->NowNanos();
  throttle_refs_.fetch_add(1, std::memory_order_acq_rel);
  backpressure_active_->Set(1);
  backpressure_starts_->Increment();
  HLOG(INFO) << "smgr " << options_.container
             << " starting backpressure (retry depth " << retry_.size()
             << " > " << options_.backpressure_high_water << ")";
  if (options_.journal != nullptr) {
    options_.journal->Record(
        observability::JournalEventType::kBackpressureStart,
        static_cast<int32_t>(options_.container), /*task=*/-1,
        backpressure_started_nanos_,
        /*arg0=*/static_cast<int64_t>(retry_.size()),
        /*arg1=*/static_cast<int64_t>(options_.backpressure_high_water));
  }
  BroadcastBackpressure(proto::MessageType::kStartBackpressure);
}

void StreamManager::MaybeClearBackpressure() {
  if (!local_backpressure_active_) return;
  if (retry_.size() > backpressure_low_water()) return;
  HLOG(INFO) << "smgr " << options_.container
             << " stopping backpressure (retry depth " << retry_.size()
             << " <= " << backpressure_low_water() << ")";
  EndLocalEpisode(/*broadcast=*/true);
}

void StreamManager::EndLocalEpisode(bool broadcast) {
  if (!local_backpressure_active_) return;
  local_backpressure_active_ = false;
  const int64_t now = clock_->NowNanos();
  backpressure_duration_ns_->Increment(now - backpressure_started_nanos_);
  throttle_refs_.fetch_sub(1, std::memory_order_acq_rel);
  backpressure_active_->Set(0);
  if (options_.journal != nullptr) {
    options_.journal->Record(
        observability::JournalEventType::kBackpressureStop,
        static_cast<int32_t>(options_.container), /*task=*/-1, now,
        /*arg0=*/now - backpressure_started_nanos_,
        /*arg1=*/static_cast<int64_t>(retry_.size()));
  }
  if (broadcast) {
    BroadcastBackpressure(proto::MessageType::kStopBackpressure);
  }
}

void StreamManager::BroadcastBackpressure(proto::MessageType type) {
  proto::BackpressureMsg msg;
  msg.initiator = options_.container;
  msg.retry_depth = retry_.size();
  for (const ContainerId peer : transport_->RegisteredSmgrs()) {
    if (peer == options_.container) continue;
    serde::Buffer payload = transport_->buffer_pool()->Acquire();
    serde::WireEncoder enc(&payload);
    msg.SerializeTo(&enc);
    // Control envelopes ride the same park/retry FIFO as data, so a kStop
    // can never overtake the kStart it is meant to cancel. A peer that
    // deregistered mid-snapshot is simply dropped by the guarded send.
    TrySendOrPark(Transport::SmgrEndpoint(peer),
                  proto::Envelope(type, std::move(payload)));
  }
}

void StreamManager::HandleBackpressureControl(proto::MessageType type,
                                              const serde::Buffer& payload) {
  proto::BackpressureMsg msg;
  if (!msg.ParseFromBytes(payload).ok()) {
    HLOG(ERROR) << "dropping malformed backpressure control message";
    return;
  }
  if (msg.initiator < 0 || msg.initiator == options_.container) return;
  if (type == proto::MessageType::kStartBackpressure) {
    if (!remote_initiators_.insert(msg.initiator).second) return;  // Dup.
    throttle_refs_.fetch_add(1, std::memory_order_acq_rel);
    metrics_
        .GetGauge(StrFormat("smgr.backpressure.initiator.%d", msg.initiator))
        ->Set(1);
    HLOG(INFO) << "smgr " << options_.container
               << " throttling spouts for initiator " << msg.initiator
               << " (remote retry depth " << msg.retry_depth << ")";
    if (options_.journal != nullptr) {
      options_.journal->Record(
          observability::JournalEventType::kRemoteThrottleOn,
          static_cast<int32_t>(options_.container), /*task=*/-1,
          clock_->NowNanos(), /*arg0=*/msg.initiator,
          /*arg1=*/static_cast<int64_t>(msg.retry_depth));
    }
  } else {
    if (remote_initiators_.erase(msg.initiator) == 0) return;  // Unknown.
    throttle_refs_.fetch_sub(1, std::memory_order_acq_rel);
    metrics_
        .GetGauge(StrFormat("smgr.backpressure.initiator.%d", msg.initiator))
        ->Set(0);
    HLOG(INFO) << "smgr " << options_.container
               << " released throttle for initiator " << msg.initiator;
    if (options_.journal != nullptr) {
      options_.journal->Record(
          observability::JournalEventType::kRemoteThrottleOff,
          static_cast<int32_t>(options_.container), /*task=*/-1,
          clock_->NowNanos(), /*arg0=*/msg.initiator, /*arg1=*/0);
    }
  }
  backpressure_remote_->Set(static_cast<int64_t>(remote_initiators_.size()));
}

void AnnounceInitiatorRemoved(Transport* transport, ContainerId removed) {
  proto::BackpressureMsg msg;
  msg.initiator = removed;
  msg.retry_depth = 0;
  for (const ContainerId peer : transport->RegisteredSmgrs()) {
    if (peer == removed) continue;
    serde::Buffer payload = transport->buffer_pool()->Acquire();
    serde::WireEncoder enc(&payload);
    msg.SerializeTo(&enc);
    proto::Envelope env(proto::MessageType::kStopBackpressure,
                        std::move(payload));
    const Status st =
        transport->TrySend(Transport::SmgrEndpoint(peer), &env);
    if (!st.ok()) {
      HLOG(WARNING) << "stop-backpressure for removed initiator " << removed
                    << " undeliverable to smgr " << peer << " ("
                    << st.ToString() << ")";
    }
  }
}

}  // namespace smgr
}  // namespace heron
