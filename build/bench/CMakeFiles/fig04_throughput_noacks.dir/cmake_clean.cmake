file(REMOVE_RECURSE
  "CMakeFiles/fig04_throughput_noacks.dir/figures/fig04_throughput_noacks.cc.o"
  "CMakeFiles/fig04_throughput_noacks.dir/figures/fig04_throughput_noacks.cc.o.d"
  "fig04_throughput_noacks"
  "fig04_throughput_noacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_throughput_noacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
