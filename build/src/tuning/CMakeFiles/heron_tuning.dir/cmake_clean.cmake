file(REMOVE_RECURSE
  "CMakeFiles/heron_tuning.dir/auto_tuner.cc.o"
  "CMakeFiles/heron_tuning.dir/auto_tuner.cc.o.d"
  "libheron_tuning.a"
  "libheron_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
