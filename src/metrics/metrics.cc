#include "metrics/metrics.h"

#include <algorithm>
#include <bit>

#include "common/strings.h"

namespace heron {
namespace metrics {

int Histogram::BucketOf(uint64_t value) {
  return value == 0 ? 0 : 64 - std::countl_zero(value);
}

void Histogram::Record(uint64_t value) {
  buckets_[std::min(BucketOf(value), 63)].fetch_add(1,
                                                    std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev_min = min_.load(std::memory_order_relaxed);
  while (value < prev_min &&
         !min_.compare_exchange_weak(prev_min, value,
                                     std::memory_order_relaxed)) {
  }
  uint64_t prev_max = max_.load(std::memory_order_relaxed);
  while (value > prev_max &&
         !max_.compare_exchange_weak(prev_max, value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

uint64_t Histogram::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1));
  uint64_t seen = 0;
  for (int b = 0; b < 64; ++b) {
    const uint64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (seen + in_bucket > rank) {
      // Interpolate within [2^(b-1), 2^b).
      const uint64_t lo = b == 0 ? 0 : (1ULL << (b - 1));
      const uint64_t hi = b == 0 ? 1 : (b >= 63 ? UINT64_MAX : (1ULL << b));
      const double frac = in_bucket == 0
                              ? 0.0
                              : static_cast<double>(rank - seen) /
                                    static_cast<double>(in_bucket);
      const uint64_t est =
          lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
      return std::clamp(est, min(), max());
    }
    seen += in_bucket;
  }
  return max();
}

uint64_t Histogram::min() const {
  const uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

uint64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<Sample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Sample> out;
  for (const auto& [name, c] : counters_) {
    out.push_back({name, static_cast<double>(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back({name, static_cast<double>(g->value())});
  }
  for (const auto& [name, h] : histograms_) {
    out.push_back({name + ".count", static_cast<double>(h->count())});
    out.push_back({name + ".mean", h->Mean()});
    out.push_back({name + ".min", static_cast<double>(h->min())});
    out.push_back({name + ".p50", static_cast<double>(h->Quantile(0.5))});
    out.push_back({name + ".p90", static_cast<double>(h->Quantile(0.9))});
    out.push_back({name + ".p99", static_cast<double>(h->Quantile(0.99))});
    // Deep-tail percentiles: the cooperative-scheduling work (ROADMAP
    // item 4) is judged at p99.99, so the sinks must carry it.
    out.push_back({name + ".p999", static_cast<double>(h->Quantile(0.999))});
    out.push_back({name + ".p9999", static_cast<double>(h->Quantile(0.9999))});
    out.push_back({name + ".max", static_cast<double>(h->max())});
  }
  return out;
}

}  // namespace metrics
}  // namespace heron
