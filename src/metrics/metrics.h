#ifndef HERON_METRICS_METRICS_H_
#define HERON_METRICS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace heron {
namespace metrics {

/// \brief Monotonic event counter. Lock-free increments; safe from any
/// thread on the data plane.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins level metric (queue depth, pending tuples, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Log2-bucketed latency/size histogram with approximate quantiles.
///
/// 64 buckets cover the full uint64 range; Record is wait-free. Quantile
/// reads interpolate within the winning bucket, which is accurate to the
/// bucket resolution — sufficient for the latency *shapes* the paper's
/// figures report (tens of ms with 2-4x deltas).
class Histogram {
 public:
  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  /// q in [0,1]; returns 0 when empty.
  uint64_t Quantile(double q) const;
  uint64_t min() const;
  uint64_t max() const;
  void Reset();

 private:
  static int BucketOf(uint64_t value);

  std::atomic<uint64_t> buckets_[64] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// \brief One flattened metric sample.
struct Sample {
  std::string name;
  double value = 0;
};

/// \brief Named metric registry, one per module instance (each Heron
/// Instance, each SMGR). Creation is synchronized; hot-path access goes
/// through the returned stable pointers.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Flattens every metric into samples (histograms expand into
  /// .count/.mean/.min/.p50/.p90/.p99/.max).
  std::vector<Sample> Snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace metrics
}  // namespace heron

#endif  // HERON_METRICS_METRICS_H_
