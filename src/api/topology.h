#ifndef HERON_API_TOPOLOGY_H_
#define HERON_API_TOPOLOGY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/bolt.h"
#include "api/fields.h"
#include "api/grouping.h"
#include "api/spout.h"
#include "common/config.h"
#include "common/resource.h"
#include "common/result.h"

namespace heron {
namespace api {

enum class ComponentKind : uint8_t { kSpout = 0, kBolt = 1 };

/// \brief One subscribed input edge of a bolt.
struct InputSpec {
  ComponentId source;
  StreamId stream = kDefaultStreamId;
  GroupingKind grouping = GroupingKind::kShuffle;
  Fields grouping_fields;        ///< kFields only.
  CustomGroupingFn custom_fn;    ///< kCustom only.
};

/// \brief A logical node of the topology DAG: a spout or bolt, its
/// parallelism, declared output streams, inputs and resource demand.
struct ComponentDef {
  ComponentId id;
  ComponentKind kind = ComponentKind::kBolt;
  int parallelism = 1;
  Resource resources{1.0, 1024, 0};  ///< Per-instance demand.
  std::map<StreamId, Fields> outputs;
  std::vector<InputSpec> inputs;   ///< Bolts only.
  SpoutFactory spout_factory;      ///< Spouts only.
  BoltFactory bolt_factory;        ///< Bolts only.
};

/// \brief An immutable, validated topology: "a directed graph of spouts
/// and bolts" (§II). Produced by TopologyBuilder::Build.
class Topology {
 public:
  const std::string& name() const { return name_; }
  const Config& config() const { return config_; }

  /// Components in declaration order (stable task-id assignment depends on
  /// this order).
  const std::vector<ComponentDef>& components() const { return components_; }

  /// Lookup by id; nullptr when absent.
  const ComponentDef* FindComponent(const ComponentId& id) const;

  /// Sum of parallelism over all components.
  int TotalInstances() const;

  /// The declared output schema of (component, stream); nullptr if the
  /// stream is not declared.
  const Fields* OutputSchema(const ComponentId& component,
                             const StreamId& stream) const;

  /// Returns a copy with `component`'s parallelism replaced; used by
  /// topology scaling before Repack (§IV-A).
  Result<Topology> WithParallelism(const ComponentId& component,
                                   int new_parallelism) const;

 private:
  friend class TopologyBuilder;
  Topology() = default;

  std::string name_;
  Config config_;
  std::vector<ComponentDef> components_;
};

class TopologyBuilder;

/// \brief Fluent handle for configuring a spout being added.
class SpoutDeclarer {
 public:
  /// Declares the schema of an output stream (default stream included).
  SpoutDeclarer& OutputFields(Fields fields,
                              StreamId stream = kDefaultStreamId);
  /// Per-instance resource demand (defaults to 1 CPU / 1024 MB).
  SpoutDeclarer& SetResources(Resource r);

 private:
  friend class TopologyBuilder;
  SpoutDeclarer(TopologyBuilder* builder, ComponentId id)
      : builder_(builder), id_(std::move(id)) {}
  ComponentDef* def();

  TopologyBuilder* builder_;
  ComponentId id_;
};

/// \brief Fluent handle for configuring a bolt being added.
class BoltDeclarer {
 public:
  BoltDeclarer& OutputFields(Fields fields, StreamId stream = kDefaultStreamId);
  BoltDeclarer& SetResources(Resource r);

  /// Input subscriptions.
  BoltDeclarer& ShuffleGrouping(const ComponentId& source,
                                const StreamId& stream = kDefaultStreamId);
  BoltDeclarer& FieldsGrouping(const ComponentId& source, Fields fields,
                               const StreamId& stream = kDefaultStreamId);
  BoltDeclarer& AllGrouping(const ComponentId& source,
                            const StreamId& stream = kDefaultStreamId);
  BoltDeclarer& GlobalGrouping(const ComponentId& source,
                               const StreamId& stream = kDefaultStreamId);
  BoltDeclarer& CustomGrouping(const ComponentId& source, CustomGroupingFn fn,
                               const StreamId& stream = kDefaultStreamId);

 private:
  friend class TopologyBuilder;
  BoltDeclarer(TopologyBuilder* builder, ComponentId id)
      : builder_(builder), id_(std::move(id)) {}
  ComponentDef* def();

  TopologyBuilder* builder_;
  ComponentId id_;
};

/// \brief Assembles and validates a Topology.
///
/// Usage mirrors Heron's Java API:
///   TopologyBuilder b("word-count");
///   b.SetSpout("sentence", MakeSentenceSpout, 25)
///       .OutputFields({"word"});
///   b.SetBolt("count", MakeCountBolt, 25)
///       .FieldsGrouping("sentence", {"word"});
///   auto topology = b.Build();
class TopologyBuilder {
 public:
  explicit TopologyBuilder(std::string name) { topology_.name_ = name; }

  SpoutDeclarer SetSpout(const ComponentId& id, SpoutFactory factory,
                         int parallelism);
  BoltDeclarer SetBolt(const ComponentId& id, BoltFactory factory,
                       int parallelism);

  /// Topology-level configuration (acking, max_spout_pending, ...).
  Config* mutable_config() { return &topology_.config_; }

  /// Validates the graph and returns the immutable topology:
  ///  - component ids unique and non-empty, parallelism >= 1;
  ///  - every input references a declared component and stream;
  ///  - spouts have no inputs; the graph is a DAG;
  ///  - fields groupings reference fields of the source schema.
  Result<std::shared_ptr<const Topology>> Build();

 private:
  friend class SpoutDeclarer;
  friend class BoltDeclarer;
  ComponentDef* FindMutable(const ComponentId& id);

  Topology topology_;
};

}  // namespace api
}  // namespace heron

#endif  // HERON_API_TOPOLOGY_H_
