#ifndef HERON_SMGR_STREAM_MANAGER_H_
#define HERON_SMGR_STREAM_MANAGER_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "api/grouping.h"
#include "common/clock.h"
#include "common/random.h"
#include "metrics/metrics.h"
#include "observability/journal.h"
#include "observability/trace.h"
#include "proto/physical_plan.h"
#include "runtime/event_loop.h"
#include "runtime/tasklet.h"
#include "smgr/ack_tracker.h"
#include "smgr/transport.h"
#include "smgr/tuple_cache.h"

namespace heron {
namespace smgr {

/// \brief The Stream Manager: "the process responsible for routing tuples
/// among Heron Instances" (§II), one per container.
///
/// Receives unrouted tuple batches from the container's local instances,
/// resolves every subscriber's grouping, batches per destination in the
/// TupleCache, and ships batches — still serialized — to local instances
/// or peer Stream Managers. Also owns ack tracking for the roots of the
/// spouts it hosts.
///
/// The §V-A optimizations are a single toggle (`optimizations`):
///  - ON: routing works on serialized views (ParseTupleBatchView /
///    PeekFieldsHash / PeekDestTask); transit batches are forwarded as
///    byte arrays; buffers come from the shared pool.
///  - OFF (the ablation baseline): every hop fully deserializes tuple
///    objects, rebuilds and reserializes them, and allocates fresh
///    buffers/messages — the naive implementation the paper's
///    "without optimizations" bars measure.
///
/// Threading: the SMGR owns no loop body of its own — it registers its
/// inbound channel, cache-drain timer and ack/retry services on a shared
/// runtime::EventLoop (the §II kernel). Start() runs that loop on a
/// thread; StartStepMode() arms it for deterministic single-stepping via
/// loop()->RunOnce() with a SimClock (no threads). The loop never blocks
/// on a send — undeliverable envelopes park in a retry queue, in strict
/// per-channel FIFO (a new envelope never overtakes a parked predecessor
/// on the same channel).
///
/// ## Cluster-wide spout back pressure
/// Heron's spout back-pressure protocol, rendered as a control-plane
/// conversation between Stream Managers: when this SMGR's retry depth
/// crosses `backpressure_high_water` it raises its own throttle and
/// broadcasts `kStartBackpressure` (a BackpressureMsg naming itself as
/// initiator) to every registered peer SMGR. Each receiver adds the
/// initiator to a ref-counted throttle set; while the set (or the local
/// episode) is non-empty, `backpressure()` reads true and the container's
/// spouts pause their NextTuple idle workers. When the retry depth drains
/// to `backpressure_low_water` (hysteresis — not the same threshold, so
/// the flag cannot flap per iteration), `kStopBackpressure` releases the
/// initiator's ref everywhere. Local episodes are measured into
/// `smgr.backpressure.duration.ns`; `smgr.backpressure.active` (own
/// episode), `smgr.backpressure.remote` (throttling initiators) and
/// per-initiator `smgr.backpressure.initiator.<id>` gauges surface the
/// protocol state to the Metrics Manager and, through it, the TMaster's
/// topology status. The whole protocol runs on the reactor, so it
/// single-steps deterministically in RunOnce() tests.
class StreamManager {
 public:
  struct Options {
    ContainerId container = 0;
    bool acking = false;
    bool optimizations = true;
    int64_t cache_drain_frequency_ms = 10;
    size_t cache_drain_size_bytes = 1 << 20;
    int64_t message_timeout_ms = 30000;
    size_t inbound_capacity = 8192;
    size_t backpressure_high_water = 4096;  ///< Retry entries that trip it.
    /// Retry entries at which an active episode releases (hysteresis).
    /// 0 = half the high watermark. Must be < high watermark to be useful.
    size_t backpressure_low_water = 0;
    uint64_t seed = 42;
    /// Set on a restarted (recovered) container: on registration this SMGR
    /// broadcasts kStopBackpressure naming itself, so survivors release any
    /// throttle ref the *previous* incarnation raised and could never clear
    /// (it died mid-episode). A no-op for peers that held no such ref.
    bool announce_recovery = false;
    /// The container's span sink for sampled tuple-path tracing; nullptr
    /// disables SMGR-side span recording entirely (the routing hot path
    /// then never inspects trace ids at all).
    observability::SpanCollector* span_collector = nullptr;
    /// The container's flight recorder: backpressure transitions land here
    /// (start/stop of the local episode, remote throttle on/off). nullptr
    /// leaves the journal dark — no control-plane event is recorded.
    observability::EventJournal* journal = nullptr;
  };

  StreamManager(const Options& options,
                std::shared_ptr<const proto::PhysicalPlan> plan,
                Transport* transport, const Clock* clock);
  ~StreamManager();

  StreamManager(const StreamManager&) = delete;
  StreamManager& operator=(const StreamManager&) = delete;

  /// Registers the inbound channel with the transport and spawns the loop.
  Status Start();
  /// Step-mode Start: registers with the transport and arms the reactor,
  /// but spawns no thread — the caller drives loop()->RunOnce().
  Status StartStepMode();
  /// Cooperative Start: registers, then hands the reactor to `pool` as a
  /// tasklet instead of spawning a thread. The SMGR loop already never
  /// blocks (TrySend-or-park routing), so no delivery-mode change needed.
  Status StartCooperative(runtime::TaskletPool* pool);
  /// Drains, deregisters and joins. Idempotent.
  void Stop();
  /// Hard-kill (fault injection): deregisters, halts the reactor without
  /// the shutdown drain — cached batches and parked envelopes are lost, as
  /// they would be when the container process dies. At-least-once recovery
  /// of the lost tuples is the ack-timeout's job, not this SMGR's.
  void Kill();

  /// The reactor this SMGR runs on (step-mode tests drive RunOnce on it).
  runtime::EventLoop* loop() { return &loop_; }

  EnvelopeChannel* inbound() { return &inbound_; }
  metrics::MetricsRegistry* metrics() { return &metrics_; }
  const Options& options() const { return options_; }

  /// True while any backpressure initiator — this SMGR itself or a remote
  /// peer that broadcast kStartBackpressure — holds a throttle ref. Local
  /// spouts pause NextTuple while true (§ back pressure). Read from
  /// instance loop threads; the refcount is the only cross-thread state.
  bool backpressure() const {
    return throttle_refs_.load(std::memory_order_acquire) > 0;
  }

  /// True while this SMGR is itself the initiator of a cluster-wide
  /// backpressure episode (retry depth above the high watermark and not
  /// yet drained to the low watermark).
  bool local_backpressure_active() const { return local_backpressure_active_; }

  /// Number of *remote* initiators currently throttling this container.
  size_t remote_backpressure_initiators() const {
    return remote_initiators_.size();
  }

  /// Effective low watermark after the 0 = high/2 default is applied.
  size_t backpressure_low_water() const;

  // -- Single-step interface (used by the loop and by deterministic tests;
  //    call only when the loop thread is not running). --

  /// Processes one envelope end to end.
  void ProcessEnvelope(proto::Envelope env);
  /// Flushes the tuple cache and dispatches the batches.
  void DrainCacheNow(bool timer_drain = true);
  /// Expires overdue roots and notifies spouts.
  void ExpireAcksNow();
  /// Attempts queued re-deliveries; returns entries still parked.
  size_t FlushRetries();

  const TupleCache::Stats& cache_stats() const { return cache_.stats(); }
  size_t acks_pending() const { return tracker_.pending(); }

 private:
  struct Edge {
    api::GroupingKind kind;
    std::vector<int> sorted_field_indices;  ///< kFields.
    std::vector<TaskId> tasks;              ///< Ascending consumer tasks.
    api::CustomGroupingFn custom_fn;        ///< kCustom.
    api::Fields schema;                     ///< kCustom decode path.
  };

  /// Registers handlers/timers/services on the reactor (ctor-time wiring).
  void WireLoop();
  /// Shared Start/StartStepMode body: transport registration + timer arm.
  Status Register();

  /// Routes every tuple of an unrouted batch from a local instance.
  /// `env_trace_id` is the envelope's trace hint: non-zero means at least
  /// one tuple in the batch is traced, so per-tuple trace peeks are worth
  /// paying; zero skips them wholesale.
  void HandleInstanceBatch(const serde::Buffer& payload,
                           uint64_t env_trace_id);
  /// Forwards / delivers a routed batch (from a peer SMGR).
  void HandleRoutedBatch(proto::Envelope env);
  /// Applies or forwards ack updates.
  void HandleAckBatch(proto::Envelope env);
  /// Checkpoint barriers. A fan-out request from a local instance
  /// (dest_task < 0) flushes the tuple cache — pre-barrier data first —
  /// then injects an addressed barrier into every consumer channel of the
  /// origin task, through the same park/retry FIFO as tuples. An
  /// addressed barrier (dest_task >= 0) forwards on metadata alone, like
  /// a routed batch (zero-copy).
  void HandleBarrier(proto::Envelope env);

  /// Routes one serialized tuple along every subscribed edge.
  /// `trace_id` (0 = untraced) rides into the tuple cache so outgoing
  /// envelopes carry the tracing hint.
  void RouteTuple(const std::vector<Edge>* edges, TaskId src_task,
                  serde::BytesView stream, serde::BytesView src_component,
                  serde::BytesView tuple_bytes, uint64_t trace_id);

  /// Registers spout roots when acking (lazy peek on the serialized tuple).
  void MaybeRegisterRoots(TaskId src_task, serde::BytesView tuple_bytes);

  void SendToInstance(TaskId task, proto::Envelope env);
  void SendToContainer(ContainerId container, proto::Envelope env);
  void TrySendOrPark(const Transport::Endpoint& dest, proto::Envelope env);
  void EmitRootEvent(const AckTracker::Completion& completion);

  // -- Cluster-wide backpressure protocol (loop thread only). --

  /// kStart/kStopBackpressure from a peer: update the throttle refcount.
  void HandleBackpressureControl(proto::MessageType type,
                                 const serde::Buffer& payload);
  /// Raises the local episode when retry depth crosses the high watermark.
  void MaybeTripBackpressure();
  /// Releases it when retry depth drains to the low watermark (hysteresis).
  void MaybeClearBackpressure();
  /// Sends a BackpressureMsg (initiator = this container) to every
  /// registered peer SMGR, through the same park/retry FIFO as data.
  void BroadcastBackpressure(proto::MessageType type);
  /// Episode bookkeeping shared by MaybeClear and shutdown teardown.
  void EndLocalEpisode(bool broadcast);

  /// The ablation path: full deserialize + rebuild + reserialize of a
  /// routed batch before delivery.
  serde::Buffer ReserializeBatch(const serde::Buffer& payload);

  Options options_;
  std::shared_ptr<const proto::PhysicalPlan> plan_;
  Transport* transport_;
  const Clock* clock_;

  EnvelopeChannel inbound_;
  TupleCache cache_;
  AckTracker tracker_;
  Random rng_;
  metrics::MetricsRegistry metrics_;

  /// (component, stream) → subscriber edges; resolved once at startup.
  std::map<std::pair<ComponentId, StreamId>, std::vector<Edge>> edges_;
  /// Components hosted in this container that are spouts (root owners).
  std::map<TaskId, bool> local_task_is_spout_;

  struct Parked {
    Transport::Endpoint dest;
    proto::Envelope env;
  };
  /// The retry queue holds Endpoints, not channel pointers: parked sends
  /// resolve through the transport directory again, so a destination torn
  /// down on another thread is never dereferenced, and a re-registered
  /// one receives its backlog on the fresh channel.
  std::deque<Parked> retry_;
  /// Per-destination backlog bookkeeping. While `count` is non-zero, new
  /// envelopes for the destination park unconditionally (per-channel
  /// FIFO, no overtake). The cached Route lets FlushRetries resolve each
  /// destination once per pass instead of paying a lock-guarded directory
  /// lookup per parked envelope; it is valid only while `gen` matches the
  /// transport's registration generation.
  struct DestState {
    size_t count = 0;
    bool resolved = false;
    uint64_t gen = 0;
    Transport::Route route;
  };
  std::map<Transport::Endpoint, DestState> parked_per_dest_;

  // Backpressure state. The refcount is read by instance loops (other
  // threads); everything else is owned by this SMGR's loop thread.
  std::atomic<int64_t> throttle_refs_{0};
  bool local_backpressure_active_ = false;
  int64_t backpressure_started_nanos_ = 0;
  std::set<ContainerId> remote_initiators_;

  runtime::EventLoop loop_;
  std::atomic<bool> running_{false};
  bool registered_ = false;

  // Cooperative mode: the pool driving loop_ (null in thread/step mode).
  runtime::TaskletPool* pool_ = nullptr;
  runtime::TaskletPool::Handle* pool_handle_ = nullptr;

  // Hot-path metric handles.
  metrics::Counter* tuples_routed_;
  metrics::Counter* batches_out_;
  metrics::Counter* bytes_out_;
  metrics::Counter* acks_applied_;
  metrics::Counter* roots_completed_;
  metrics::Counter* roots_failed_;
  metrics::Counter* roots_timeout_;
  metrics::Gauge* retry_depth_;
  /// Forwarding-path payload inspections. The zero-copy invariant: with
  /// optimizations on, every batch the SMGR forwards (rather than
  /// ingests) routes on Envelope/frame metadata alone, so this counter
  /// must read 0. Fallback peeks (unaddressed envelopes) and the ablation
  /// deserialize-reserialize hop each count one touch.
  metrics::Counter* payload_touches_;
  /// Barrier fan-out requests served for local origin tasks.
  metrics::Counter* barrier_fanouts_;
  /// Addressed barriers delivered or forwarded (one per consumer channel).
  metrics::Counter* barriers_forwarded_;

  // Backpressure protocol metrics (§ back pressure).
  metrics::Gauge* backpressure_active_;       ///< 1 while a local episode runs.
  metrics::Counter* backpressure_duration_ns_;  ///< Total local episode time.
  metrics::Counter* backpressure_starts_;     ///< Local episodes initiated.
  metrics::Gauge* backpressure_remote_;       ///< Remote initiators throttling.

  // Scratch reused across envelopes (object-reuse discipline, §V-A).
  std::vector<TaskId> route_scratch_;
  proto::TupleBatchView view_scratch_;
};

/// Plan-swap hygiene: broadcasts kStopBackpressure *on behalf of* a
/// container that a repack removed from the physical plan. If that
/// container died (or was halted) mid-episode, every survivor still holds
/// its throttle ref and — since the initiator no longer exists to drain
/// and announce recovery — would hold it forever, wedging all spouts.
/// Survivors that held no such ref treat the message as a no-op
/// (HandleBackpressureControl erases by initiator id).
void AnnounceInitiatorRemoved(Transport* transport, ContainerId removed);

}  // namespace smgr
}  // namespace heron

#endif  // HERON_SMGR_STREAM_MANAGER_H_
