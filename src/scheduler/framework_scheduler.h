#ifndef HERON_SCHEDULER_FRAMEWORK_SCHEDULER_H_
#define HERON_SCHEDULER_FRAMEWORK_SCHEDULER_H_

#include <map>
#include <mutex>

#include "frameworks/framework.h"
#include "scheduler/scheduler.h"

namespace heron {
namespace scheduler {

/// \brief Scheduler over any ISchedulingFramework — the single class that
/// serves as both the "Aurora scheduler" and the "YARN scheduler" of the
/// paper, because the behavioural differences derive entirely from the
/// framework's capability bits (§IV-B):
///
///  - Homogeneous-only frameworks (Aurora) get every container sized to
///    the packing plan's max requirement; heterogeneous frameworks (YARN)
///    get exactly what each container needs. "This architecture abstracts
///    all the low level details from the Resource Manager."
///  - If the framework auto-restarts failures (Aurora), the scheduler is
///    stateless and ignores failure events. Otherwise (YARN) it is
///    stateful: it subscribes to container events and restarts failed
///    containers itself.
class FrameworkScheduler final : public IScheduler {
 public:
  /// \param framework  the underlying scheduling framework (not owned)
  /// \param launcher   starts/stops Heron processes per container (not owned)
  FrameworkScheduler(frameworks::ISchedulingFramework* framework,
                     IContainerLauncher* launcher);

  Status Initialize(const Config& conf) override;
  Status OnSchedule(const packing::PackingPlan& initial_plan) override;
  Status OnKill(const KillTopologyRequest& request) override;
  Status OnRestart(const RestartTopologyRequest& request) override;
  Status OnUpdate(const UpdateTopologyRequest& request) override;
  void Close() override;
  /// Routes a TMaster-detected death to the framework: the slot is marked
  /// failed via InjectContainerFailure, after which an auto-restarting
  /// framework (Aurora/Marathon) relaunches it by itself, while a
  /// kFailed event from a non-restarting one (YARN/Slurm) comes back to
  /// this scheduler's stateful HandleFrameworkEvent, which restarts it.
  Status OnContainerDead(const std::string& topology,
                         ContainerId container) override;

  bool IsStateful() const override {
    return !framework_->AutoRestartsFailedContainers();
  }
  std::string Name() const override {
    return "framework:" + framework_->Name();
  }

  /// The framework job backing the topology (empty before OnSchedule).
  frameworks::JobId job_id() const;
  /// The plan currently deployed.
  packing::PackingPlan current_plan() const;
  /// Stateful-mode recoveries performed so far.
  int failovers_handled() const;

 private:
  /// Framework slot index → heron container id, for the start/stop hooks.
  ContainerId PlanContainerAt(int slot) const;
  void HandleFrameworkEvent(const frameworks::FrameworkEvent& event);
  Status StartSlot(int slot);
  Status StopSlot(int slot);

  frameworks::ISchedulingFramework* framework_;
  IContainerLauncher* launcher_;

  mutable std::mutex mutex_;
  bool initialized_ = false;
  Config config_;
  frameworks::JobId job_;
  packing::PackingPlan plan_;
  std::map<int, ContainerId> slot_to_container_;
  int failovers_ = 0;
};

}  // namespace scheduler
}  // namespace heron

#endif  // HERON_SCHEDULER_FRAMEWORK_SCHEDULER_H_
