// Microbenchmarks of the IPC kernel: per-envelope channel costs that feed
// the simulator's batch_send/batch_recv constants.

#include <benchmark/benchmark.h>

#include <thread>

#include "ipc/channel.h"
#include "proto/messages.h"

namespace heron {
namespace {

/// Uncontended enqueue + dequeue of a transport envelope.
void BM_ChannelSendRecv(benchmark::State& state) {
  ipc::Channel<proto::Envelope> channel(1024);
  for (auto _ : state) {
    proto::Envelope env(proto::MessageType::kTupleBatchRouted,
                        serde::Buffer(128, 'x'));
    benchmark::DoNotOptimize(channel.TrySend(std::move(env)).ok());
    auto out = channel.TryRecv();
    benchmark::DoNotOptimize(out.has_value());
  }
}
BENCHMARK(BM_ChannelSendRecv);

/// Two-thread producer/consumer handoff (the instance ↔ SMGR edge).
void BM_ChannelCrossThread(benchmark::State& state) {
  ipc::Channel<proto::Envelope> channel(4096);
  std::thread consumer([&channel] {
    while (channel.Recv().has_value()) {
    }
  });
  for (auto _ : state) {
    proto::Envelope env(proto::MessageType::kTupleBatchRouted,
                        serde::Buffer(128, 'x'));
    benchmark::DoNotOptimize(channel.Send(std::move(env)).ok());
  }
  channel.Close();
  consumer.join();
}
BENCHMARK(BM_ChannelCrossThread);

/// Back-pressure path: TrySend against a full channel (the SMGR's parked
/// retry case) must be cheap and must not lose the envelope.
void BM_ChannelTrySendFull(benchmark::State& state) {
  ipc::Channel<proto::Envelope> channel(1);
  HERON_CHECK_OK(channel.TrySend(
      proto::Envelope(proto::MessageType::kControl, serde::Buffer())));
  proto::Envelope env(proto::MessageType::kControl, serde::Buffer(64, 'y'));
  for (auto _ : state) {
    const Status st = channel.TrySend(std::move(env));
    benchmark::DoNotOptimize(st.IsResourceExhausted());
  }
}
BENCHMARK(BM_ChannelTrySendFull);

}  // namespace
}  // namespace heron

BENCHMARK_MAIN();
