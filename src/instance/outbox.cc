#include "instance/outbox.h"

#include "common/logging.h"

namespace heron {
namespace instance {

namespace tbf = proto::tuple_batch_fields;

Outbox::Outbox(TaskId task, ComponentId component, ContainerId container,
               smgr::Transport* transport, size_t flush_tuples)
    : task_(task),
      component_(component),
      container_(container),
      transport_(transport),
      flush_tuples_(flush_tuples == 0 ? 1 : flush_tuples) {}

void Outbox::EmitTuple(const StreamId& stream,
                       const proto::TupleDataMsg& msg) {
  auto it = pending_.find(stream);
  if (it == pending_.end()) {
    PendingBatch fresh;
    fresh.buffer = transport_->buffer_pool()->Acquire();
    serde::WireEncoder enc(&fresh.buffer);
    enc.WriteInt32Field(tbf::kSrcTask, task_);
    // dest_task is routed by the SMGR; -1 marks the batch unrouted.
    enc.WriteInt32Field(tbf::kDestTask, -1);
    enc.WriteBytesField(tbf::kStream, stream);
    enc.WriteBytesField(tbf::kSrcComponent, component_);
    it = pending_.emplace(stream, std::move(fresh)).first;
  }
  PendingBatch& batch = it->second;
  serde::WireEncoder enc(&batch.buffer);
  const size_t mark = enc.BeginLengthDelimited(tbf::kTuple);
  msg.SerializeTo(&enc);
  enc.EndLengthDelimited(mark);
  ++batch.count;
  if (msg.trace_id != 0) batch.trace_id = msg.trace_id;
  ++tuples_emitted_;
  if (batch.count >= flush_tuples_) {
    FlushStream(stream, &batch);
  }
}

void Outbox::AddAckUpdate(TaskId owner_task, const proto::AckUpdate& update) {
  proto::AckBatchMsg& batch = pending_acks_[owner_task];
  batch.dest_task = owner_task;
  batch.updates.push_back(update);
}

void Outbox::FlushStream(const StreamId& stream, PendingBatch* batch) {
  if (batch->count == 0) return;
  proto::Envelope env(proto::MessageType::kTupleBatch,
                      std::move(batch->buffer));
  env.trace_id = batch->trace_id;
  Ship(std::move(env));
  batch->buffer = serde::Buffer();
  batch->count = 0;
  batch->trace_id = 0;
  pending_.erase(stream);
}

void Outbox::Ship(proto::Envelope env) {
  smgr::EnvelopeChannel* channel = transport_->SmgrChannel(container_);
  if (channel == nullptr) {
    HLOG(WARNING) << "task " << task_
                  << " has no local smgr; dropping batch";
    return;
  }
  const bool is_batch = env.type == proto::MessageType::kTupleBatch;
  if (nonblocking_) {
    // FIFO no-overtake: while anything is parked, everything parks.
    if (!backlog_.empty()) {
      backlog_.push_back(std::move(env));
      return;
    }
    // TrySend moves from `env` only on success; on a full channel the
    // envelope is intact and parks in the backlog.
    const Status st = channel->TrySend(std::move(env));
    if (st.ok()) {
      if (is_batch) ++batches_sent_;
    } else if (st.IsResourceExhausted()) {
      backlog_.push_back(std::move(env));
    }
    // Closed channel: dropped, same as a failed blocking send.
    return;
  }
  const Status st = channel->Send(std::move(env));
  if (st.ok() && is_batch) ++batches_sent_;
}

bool Outbox::PumpBacklog() {
  if (backlog_.empty()) return false;
  smgr::EnvelopeChannel* channel = transport_->SmgrChannel(container_);
  if (channel == nullptr) {
    // SMGR endpoint gone (torn down): drop, as the blocking path would.
    backlog_.clear();
    return false;
  }
  bool progressed = false;
  while (!backlog_.empty()) {
    const bool is_batch =
        backlog_.front().type == proto::MessageType::kTupleBatch;
    const Status st = channel->TrySend(std::move(backlog_.front()));
    if (st.IsResourceExhausted()) break;  // Still full; front is intact.
    backlog_.pop_front();
    if (st.ok()) {
      if (is_batch) ++batches_sent_;
      progressed = true;
    }
    // Closed channel: popped and dropped.
  }
  return progressed;
}

void Outbox::ShipEnvelope(proto::Envelope env) { Ship(std::move(env)); }

void Outbox::Flush() {
  if (nonblocking_) PumpBacklog();
  while (!pending_.empty()) {
    auto it = pending_.begin();
    const StreamId stream = it->first;
    FlushStream(stream, &it->second);
  }
  if (!pending_acks_.empty()) {
    for (auto& [owner, batch] : pending_acks_) {
      serde::Buffer payload = transport_->buffer_pool()->Acquire();
      serde::WireEncoder enc(&payload);
      batch.SerializeTo(&enc);
      proto::Envelope env(proto::MessageType::kAckBatch, std::move(payload));
      // Address the envelope at the serialization point: every SMGR the
      // ack batch crosses then routes on metadata alone (zero-copy).
      env.dest_task = owner;
      Ship(std::move(env));
    }
    pending_acks_.clear();
  }
}

}  // namespace instance
}  // namespace heron
