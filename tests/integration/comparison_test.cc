// Real-engine sanity for the paper's comparison: both engines run the
// identical WordCount topology (same api::Topology object model) at small
// scale on live threads, and both must actually stream. Shape assertions
// at figure scale live in bench/ (DES); here we only require that the
// specialized baseline is a *working* comparator and that the two engines
// agree on routing semantics (fields grouping keeps each word on one
// instance in both).

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/logging.h"
#include "runtime/local_cluster.h"
#include "storm/storm_cluster.h"
#include "workloads/word_count.h"

namespace heron {
namespace {

class ComparisonTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { Logging::SetLevel(LogLevel::kWarning); }
};

TEST_F(ComparisonTest, BothEnginesStreamTheSameTopology) {
  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 300;
  spout_options.words_per_call = 4;

  // Heron.
  Config heron_config;
  heron_config.SetInt(config_keys::kNumContainersHint, 2);
  auto heron_topology = workloads::BuildWordCountTopology(
      "cmp-heron", 2, 2, spout_options);
  ASSERT_TRUE(heron_topology.ok());
  runtime::LocalCluster heron(heron_config);
  ASSERT_TRUE(heron.Submit(*heron_topology).ok());
  ASSERT_TRUE(heron.WaitForCounter("instance.executed", 20000, 60000).ok());
  ASSERT_TRUE(heron.Kill().ok());

  // Storm baseline, same logical topology.
  auto storm_topology = workloads::BuildWordCountTopology(
      "cmp-storm", 2, 2, spout_options);
  ASSERT_TRUE(storm_topology.ok());
  storm::StormCluster::Options storm_options;
  storm_options.num_workers = 2;
  storm::StormCluster storm_cluster(storm_options);
  ASSERT_TRUE(storm_cluster.Submit(*storm_topology).ok());
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(60);
  while (storm_cluster.TotalExecuted() < 20000 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(storm_cluster.TotalExecuted(), 20000u);
  ASSERT_TRUE(storm_cluster.Kill().ok());
}

TEST_F(ComparisonTest, AckingSemanticsAgree) {
  // Every emitted tracked tuple is eventually acked (never failed) on
  // both engines under light, bounded load.
  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 100;
  spout_options.emit_limit = 2000;  // Finite stream per spout.

  Config config;
  config.SetBool(config_keys::kAckingEnabled, true);
  config.SetInt(config_keys::kMaxSpoutPending, 500);
  config.SetInt(config_keys::kNumContainersHint, 2);
  auto heron_topology = workloads::BuildWordCountTopology(
      "ack-heron", 1, 2, spout_options, config);
  ASSERT_TRUE(heron_topology.ok());
  runtime::LocalCluster heron(config);
  ASSERT_TRUE(heron.Submit(*heron_topology).ok());
  const Status wait = heron.WaitForCounter("instance.acked", 2000, 60000);
  if (!wait.ok()) {
    // Dump the cluster state so a hung run (e.g. under a sanitizer's
    // scheduler) is diagnosable from the ctest log alone.
    for (const char* counter :
         {"instance.emitted", "instance.acked", "instance.failed",
          "instance.executed"}) {
      fprintf(stderr, "DIAG %-24s = %llu\n", counter,
              static_cast<unsigned long long>(heron.SumCounter(counter)));
    }
    for (const char* counter :
         {"smgr.acks.applied", "smgr.roots.completed", "smgr.roots.failed",
          "smgr.roots.timeout", "smgr.tuples.routed", "smgr.batches.out"}) {
      fprintf(stderr, "DIAG %-24s = %llu\n", counter,
              static_cast<unsigned long long>(heron.SumSmgrCounter(counter)));
    }
    for (const char* gauge : {"smgr.retry.depth", "smgr.backpressure.active",
                              "smgr.backpressure.remote"}) {
      fprintf(stderr, "DIAG %-24s = %lld\n", gauge,
              static_cast<long long>(heron.SumSmgrGauge(gauge)));
    }
    // The flight recorder is the "what was the control plane doing"
    // companion to the counters: dump the merged stream, then write the
    // full timeline next to the ctest log for offline inspection.
    for (const observability::JournalEvent& e : heron.CollectJournal()) {
      fprintf(stderr, "DIAG journal[%llu] %s origin=%d at=%lld args=%lld,%lld %s\n",
              static_cast<unsigned long long>(e.seq),
              observability::JournalEventTypeName(e.type), e.origin,
              static_cast<long long>(e.at_nanos),
              static_cast<long long>(e.arg0),
              static_cast<long long>(e.arg1), e.detail.c_str());
    }
    const char* diag_path = "comparison_test_failure_timeline.json";
    if (heron.DumpTimeline(diag_path).ok()) {
      fprintf(stderr, "DIAG timeline written to %s\n", diag_path);
    }
    fprintf(stderr, "DIAG wait status: %s\n", wait.ToString().c_str());
  }
  ASSERT_TRUE(wait.ok());
  EXPECT_EQ(heron.SumCounter("instance.failed"), 0u);
  ASSERT_TRUE(heron.Kill().ok());

  auto storm_topology = workloads::BuildWordCountTopology(
      "ack-storm", 1, 2, spout_options, config);
  ASSERT_TRUE(storm_topology.ok());
  storm::StormCluster::Options storm_options;
  storm_options.num_workers = 2;
  storm_options.acking = true;
  storm_options.max_spout_pending = 500;
  storm::StormCluster storm_cluster(storm_options);
  ASSERT_TRUE(storm_cluster.Submit(*storm_topology).ok());
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(60);
  while (storm_cluster.TotalAcked() < 2000 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(storm_cluster.TotalAcked(), 2000u);
  EXPECT_EQ(storm_cluster.TotalFailed(), 0u);
  ASSERT_TRUE(storm_cluster.Kill().ok());
}

}  // namespace
}  // namespace heron
