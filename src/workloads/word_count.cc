#include "workloads/word_count.h"

#include <algorithm>
#include <chrono>

#include "api/context.h"
#include "common/strings.h"
#include "serde/wire.h"

namespace heron {
namespace workloads {

WordDictionary::WordDictionary(size_t size, uint64_t seed) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz";
  Random rng(seed);
  words_.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    const size_t length = 4 + rng.NextBelow(9);
    std::string word;
    word.reserve(length);
    for (size_t c = 0; c < length; ++c) {
      word.push_back(kAlphabet[rng.NextBelow(26)]);
    }
    words_.push_back(std::move(word));
  }
}

const WordDictionary& WordDictionary::Default() {
  static const WordDictionary dictionary;
  return dictionary;
}

namespace {
// WordSpout snapshot fields (replay cursor).
constexpr uint32_t kWsRngState = 1;
constexpr uint32_t kWsEmitted = 2;
constexpr uint32_t kWsNextMessageId = 3;
// CountBolt snapshot fields, repeated in sorted word order.
constexpr uint32_t kCbWord = 1;
constexpr uint32_t kCbCount = 2;
}  // namespace

void WordSpout::Open(const Config& config, api::TopologyContext* context,
                     api::ISpoutOutputCollector* collector) {
  collector_ = collector;
  acking_ = config.GetBoolOr(config_keys::kAckingEnabled, false);
  options_.replay_track_limit = static_cast<size_t>(
      config.GetIntOr(config_keys::kSpoutReplayTrackLimit,
                      static_cast<int64_t>(options_.replay_track_limit)));
  replay_dropped_counter_ = context->metrics()->GetCounter("replay.dropped");
  if (options_.dictionary_size == 450000) {
    dictionary_ = &WordDictionary::Default();
  } else {
    owned_dictionary_ =
        std::make_unique<WordDictionary>(options_.dictionary_size);
    dictionary_ = owned_dictionary_.get();
  }
  // Decorrelate instances of the spout without losing determinism.
  rng_ = Random(2017 + static_cast<uint64_t>(context->task_id()) * 7919);
}

void WordSpout::NextTuple() {
  // Replays first: a failed word goes out again — same id, same word —
  // before any new work, so recovery backlog drains ahead of fresh load.
  while (!replay_queue_.empty()) {
    const int64_t id = replay_queue_.front();
    replay_queue_.pop_front();
    if (replay_pending_.erase(id) == 0) continue;  // Drained by an ack.
    const auto it = inflight_.find(id);
    if (it == inflight_.end()) continue;
    collector_->Emit({api::Value(dictionary_->WordAt(it->second))}, id);
    ++replayed_;
  }
  for (int i = 0; i < options_.words_per_call; ++i) {
    if (options_.emit_limit != 0 && emitted_ >= options_.emit_limit) return;
    if (options_.target_rate_per_sec > 0) {
      // Token bucket against the wall clock. No sleeping — NextTuple just
      // declines, and the engine's idle policy decides when to ask again.
      // The bucket depth is capped at one call's worth of words: a spout
      // that fell behind (cold pipeline, stalled worker) must not bank
      // the deficit and then blast a catch-up burst at full speed — that
      // backlog would queue ahead of every later word and own the tail.
      const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count();
      if (rate_epoch_nanos_ < 0) rate_epoch_nanos_ = now;
      rate_tokens_ += static_cast<double>(now - rate_epoch_nanos_) / 1e9 *
                      options_.target_rate_per_sec;
      rate_epoch_nanos_ = now;
      rate_tokens_ =
          std::min(rate_tokens_, static_cast<double>(options_.words_per_call));
      if (rate_tokens_ < 1.0) return;
      rate_tokens_ -= 1.0;
    }
    const size_t index = rng_.NextBelow(dictionary_->size());
    const std::string& word = dictionary_->WordAt(index);
    if (acking_ && emitted_ >= options_.warmup_emits) {
      if (options_.replay_failed) {
        if (inflight_.size() < options_.replay_track_limit) {
          inflight_[next_message_id_] = index;
        } else {
          // Tracking is full (endless outage): this word cannot be
          // replayed if its tree fails. Emit it anyway — losing replay
          // coverage beats unbounded memory — and count the loss.
          ++replay_dropped_;
          replay_dropped_counter_->Increment();
        }
      }
      collector_->Emit({api::Value(word)}, next_message_id_++);
    } else {
      collector_->Emit({api::Value(word)}, std::nullopt);
    }
    ++emitted_;
  }
}

void WordSpout::SnapshotState(std::string* out) {
  serde::WireEncoder enc(out);
  enc.WriteUint64Field(kWsRngState, rng_.state());
  enc.WriteUint64Field(kWsEmitted, emitted_);
  enc.WriteInt64Field(kWsNextMessageId, next_message_id_);
}

void WordSpout::RestoreState(std::string_view state) {
  serde::WireDecoder dec(state);
  while (!dec.AtEnd()) {
    auto tag = dec.ReadTag();
    if (!tag.ok() || *tag == 0) break;
    switch (serde::TagFieldNumber(*tag)) {
      case kWsRngState: {
        auto v = dec.ReadUint64();
        if (v.ok()) rng_.set_state(*v);
        break;
      }
      case kWsEmitted: {
        auto v = dec.ReadUint64();
        if (v.ok()) emitted_ = *v;
        break;
      }
      case kWsNextMessageId: {
        auto v = dec.ReadInt64();
        if (v.ok()) next_message_id_ = *v;
        break;
      }
      default:
        if (!dec.SkipField(serde::TagWireType(*tag)).ok()) return;
    }
  }
  // The restore rewinds past any in-flight bookkeeping: those trees died
  // with the failed epoch and their words will be re-emitted fresh.
  inflight_.clear();
  replay_queue_.clear();
  replay_pending_.clear();
}

void CountBolt::BurnCpu() const {
  // Busy spin on the steady clock: the artificial work must consume the
  // instance thread like real user logic would — a sleep yields the core
  // and never builds the queue depth backpressure needs.
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(delay_us_);
  while (std::chrono::steady_clock::now() < until) {
  }
}

void CountBolt::SnapshotState(std::string* out) {
  // Sorted encoding: two bolts that counted the same multiset of words
  // produce identical bytes regardless of hash-map iteration order.
  std::vector<std::pair<std::string_view, uint64_t>> sorted;
  sorted.reserve(counts_.size());
  for (const auto& [word, count] : counts_) sorted.emplace_back(word, count);
  std::sort(sorted.begin(), sorted.end());
  serde::WireEncoder enc(out);
  for (const auto& [word, count] : sorted) {
    enc.WriteBytesField(kCbWord, word);
    enc.WriteUint64Field(kCbCount, count);
  }
}

void CountBolt::RestoreState(std::string_view state) {
  counts_.clear();
  executed_ = 0;
  serde::WireDecoder dec(state);
  std::string word;
  while (!dec.AtEnd()) {
    auto tag = dec.ReadTag();
    if (!tag.ok() || *tag == 0) break;
    switch (serde::TagFieldNumber(*tag)) {
      case kCbWord: {
        auto v = dec.ReadBytes();
        if (v.ok()) word = std::string(*v);
        break;
      }
      case kCbCount: {
        auto v = dec.ReadUint64();
        if (v.ok() && !word.empty()) {
          counts_[word] = *v;
          executed_ += *v;
        }
        break;
      }
      default:
        if (!dec.SkipField(serde::TagWireType(*tag)).ok()) return;
    }
  }
}

Result<std::shared_ptr<const api::Topology>> BuildWordCountTopology(
    const std::string& name, int spouts, int bolts,
    const WordSpout::Options& spout_options, const Config& topology_config) {
  api::TopologyBuilder builder(name);
  *builder.mutable_config() = topology_config;
  builder
      .SetSpout(
          "word",
          [spout_options] { return std::make_unique<WordSpout>(spout_options); },
          spouts)
      .OutputFields({"word"});
  builder
      .SetBolt(
          "count", [] { return std::make_unique<CountBolt>(); }, bolts)
      .FieldsGrouping("word", {"word"});
  return builder.Build();
}

Result<std::shared_ptr<const api::Topology>> BuildWordChainTopology(
    const std::string& name, int spouts, int relay_stages,
    int relay_parallelism, int bolts, const WordSpout::Options& spout_options,
    const Config& topology_config) {
  api::TopologyBuilder builder(name);
  *builder.mutable_config() = topology_config;
  builder
      .SetSpout(
          "word",
          [spout_options] { return std::make_unique<WordSpout>(spout_options); },
          spouts)
      .OutputFields({"word"});
  std::string upstream = "word";
  for (int stage = 0; stage < relay_stages; ++stage) {
    const std::string id = "relay" + std::to_string(stage);
    builder
        .SetBolt(
            id, [] { return std::make_unique<RelayBolt>(); },
            relay_parallelism)
        .OutputFields({"word"})
        .ShuffleGrouping(upstream);
    upstream = id;
  }
  builder
      .SetBolt(
          "count", [] { return std::make_unique<CountBolt>(); }, bolts)
      .FieldsGrouping(upstream, {"word"});
  return builder.Build();
}

}  // namespace workloads
}  // namespace heron
