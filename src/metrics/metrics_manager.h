#ifndef HERON_METRICS_METRICS_MANAGER_H_
#define HERON_METRICS_METRICS_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/config.h"
#include "common/status.h"
#include "metrics/metrics.h"

namespace heron {
namespace metrics {

/// \brief Destination for collected metrics; pluggable like every other
/// Heron module.
class IMetricsSink {
 public:
  virtual ~IMetricsSink() = default;
  /// Receives one collection round: (source process name, samples).
  virtual void Flush(const std::string& source,
                     const std::vector<Sample>& samples,
                     int64_t collected_at_nanos) = 0;
};

/// \brief Sink that retains collection rounds in memory; used by tests and
/// by the benchmark harness to read back component breakdowns (Fig. 14).
///
/// Retention is bounded: each source keeps at most `max_rounds_per_source`
/// collection rounds (knob `heron.metricsmgr.inmemory.max.rounds`); when a
/// source exceeds its cap its oldest rounds are evicted. The default cap is
/// generous enough that existing tests and benchmarks see every round they
/// produce, while long-running topologies no longer grow without bound.
class InMemorySink final : public IMetricsSink {
 public:
  struct Entry {
    std::string source;
    std::vector<Sample> samples;
    int64_t collected_at_nanos;
  };

  /// Retains at most the newest 4096 rounds per source by default.
  static constexpr size_t kDefaultMaxRoundsPerSource = 4096;

  explicit InMemorySink(
      size_t max_rounds_per_source = kDefaultMaxRoundsPerSource);
  /// Reads the cap from `heron.metricsmgr.inmemory.max.rounds`.
  explicit InMemorySink(const Config& config);

  void Flush(const std::string& source, const std::vector<Sample>& samples,
             int64_t collected_at_nanos) override;

  /// All retained rounds, oldest-first (eviction-surviving order).
  std::vector<Entry> entries() const;
  /// Latest value of `source`/`name`, or fallback.
  double Latest(const std::string& source, const std::string& name,
                double fallback = 0) const;
  /// Rounds evicted so far to honor the per-source cap.
  uint64_t evicted_rounds() const;
  size_t max_rounds_per_source() const { return max_rounds_per_source_; }

 private:
  const size_t max_rounds_per_source_;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  /// Live round count per source (avoids an O(entries) scan on every
  /// Flush just to check the cap).
  std::map<std::string, size_t> rounds_per_source_;
  uint64_t evicted_rounds_ = 0;
};

/// \brief Sink that prints one line per sample to stderr; for examples.
///
/// Each collection round is emitted as a single buffered write, so rounds
/// flushed concurrently by several containers' housekeeping threads never
/// interleave line-by-line.
class ConsoleSink final : public IMetricsSink {
 public:
  void Flush(const std::string& source, const std::vector<Sample>& samples,
             int64_t collected_at_nanos) override;
};

/// \brief The per-container Metrics Manager (§II: "collects several
/// metrics about the status of the processes in a container").
///
/// Processes in the container (the SMGR, each Heron Instance) register
/// their MetricsRegistry under a source name; Collect() snapshots every
/// registry and forwards to the configured sinks. The container runtime
/// calls Collect on its housekeeping interval; tests call it directly.
class MetricsManager {
 public:
  explicit MetricsManager(const Clock* clock) : clock_(clock) {}

  /// Registers a process's registry under `source`. The registry must
  /// outlive the manager or be removed first.
  Status RegisterSource(const std::string& source, MetricsRegistry* registry);
  Status RemoveSource(const std::string& source);

  void AddSink(std::shared_ptr<IMetricsSink> sink);

  /// Registers a callback invoked after every Collect() round, on the
  /// collecting thread. Waiters (e.g. LocalCluster::WaitForCounter) hook
  /// their condition variables here instead of sleep-polling.
  void AddCollectListener(std::function<void()> listener);

  /// Snapshots every source into every sink, then notifies the collect
  /// listeners. Snapshotting is skipped when no sink is attached (the
  /// listeners still fire — they key off the collection heartbeat).
  void Collect();

  std::vector<std::string> Sources() const;

 private:
  const Clock* clock_;
  mutable std::mutex mutex_;
  std::map<std::string, MetricsRegistry*> sources_;
  std::vector<std::shared_ptr<IMetricsSink>> sinks_;
  std::vector<std::function<void()>> listeners_;
};

}  // namespace metrics
}  // namespace heron

#endif  // HERON_METRICS_METRICS_MANAGER_H_
