#include "common/config.h"

#include "common/strings.h"

namespace heron {

Config& Config::Set(std::string_view key, std::string_view value) {
  values_[std::string(key)] = std::string(value);
  return *this;
}

Config& Config::SetInt(std::string_view key, int64_t value) {
  return Set(key, StrFormat("%lld", static_cast<long long>(value)));
}

Config& Config::SetDouble(std::string_view key, double value) {
  return Set(key, StrFormat("%.17g", value));
}

Config& Config::SetBool(std::string_view key, bool value) {
  return Set(key, value ? "true" : "false");
}

bool Config::Has(std::string_view key) const {
  return values_.find(key) != values_.end();
}

Result<std::string> Config::GetString(std::string_view key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::NotFound(StrFormat("config key '%.*s' not set",
                                      static_cast<int>(key.size()),
                                      key.data()));
  }
  return it->second;
}

Result<int64_t> Config::GetInt(std::string_view key) const {
  HERON_ASSIGN_OR_RETURN(std::string raw, GetString(key));
  int64_t v = 0;
  if (!ParseInt64(raw, &v)) {
    return Status::InvalidArgument(
        StrFormat("config key '%.*s' is not an integer: '%s'",
                  static_cast<int>(key.size()), key.data(), raw.c_str()));
  }
  return v;
}

Result<double> Config::GetDouble(std::string_view key) const {
  HERON_ASSIGN_OR_RETURN(std::string raw, GetString(key));
  double v = 0;
  if (!ParseDouble(raw, &v)) {
    return Status::InvalidArgument(
        StrFormat("config key '%.*s' is not a double: '%s'",
                  static_cast<int>(key.size()), key.data(), raw.c_str()));
  }
  return v;
}

Result<bool> Config::GetBool(std::string_view key) const {
  HERON_ASSIGN_OR_RETURN(std::string raw, GetString(key));
  bool v = false;
  if (!ParseBool(raw, &v)) {
    return Status::InvalidArgument(
        StrFormat("config key '%.*s' is not a boolean: '%s'",
                  static_cast<int>(key.size()), key.data(), raw.c_str()));
  }
  return v;
}

std::string Config::GetStringOr(std::string_view key,
                                std::string_view dflt) const {
  auto r = GetString(key);
  return r.ok() ? *r : std::string(dflt);
}

int64_t Config::GetIntOr(std::string_view key, int64_t dflt) const {
  auto r = GetInt(key);
  return r.ok() ? *r : dflt;
}

double Config::GetDoubleOr(std::string_view key, double dflt) const {
  auto r = GetDouble(key);
  return r.ok() ? *r : dflt;
}

bool Config::GetBoolOr(std::string_view key, bool dflt) const {
  auto r = GetBool(key);
  return r.ok() ? *r : dflt;
}

Config Config::MergedWith(const Config& overrides) const {
  Config merged = *this;
  for (const auto& [k, v] : overrides.values_) {
    merged.values_[k] = v;
  }
  return merged;
}

Result<Config> Config::FromKeyValueText(std::string_view text) {
  Config config;
  int line_no = 0;
  for (const auto& raw_line : StrSplit(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("config line %d has no '=': '%s'", line_no,
                    std::string(line).c_str()));
    }
    std::string_view key = StripWhitespace(line.substr(0, eq));
    std::string_view value = StripWhitespace(line.substr(eq + 1));
    if (key.empty()) {
      return Status::InvalidArgument(
          StrFormat("config line %d has empty key", line_no));
    }
    config.Set(key, value);
  }
  return config;
}

}  // namespace heron
