#!/usr/bin/env bash
# Sanitizer ctest lane: address | thread | undefined.
#
# Configures a dedicated build tree with -DHERON_SANITIZE=<kind>, builds
# every test target and runs the full ctest suite under the sanitizer.
# What each lane is for:
#   thread    — the reactor handoff (EventLoop wakeup, ipc::Channel
#               cross-thread send/recv), the back-pressure throttle, and
#               the failure-recovery monitor (container hard-kill racing
#               live traffic). Run after any change to src/runtime,
#               src/ipc or src/smgr.
#   address   — heap-use-after-free across the kill path: Container::Fail
#               tears processes down mid-stream while survivors still hold
#               endpoints; ASan proves nothing dangles.
#   undefined — integer/shift/alignment UB in the serde and XOR-tracker
#               hot paths.
#
# Usage:
#   scripts/san_lane.sh <address|thread|undefined> [build-dir] \
#       [--transport <in-process|socket|shm>] \
#       [--execution <thread|cooperative>] [-- ctest args]
# Examples:
#   scripts/san_lane.sh thread                     # build-tsan, full suite
#   scripts/san_lane.sh address build-ci-asan      # CI's ASan lane
#   scripts/san_lane.sh thread build-tsan -- -R smgr
#   scripts/san_lane.sh thread --transport socket  # wire fabric under TSan
#   scripts/san_lane.sh thread --execution cooperative -- \
#       -R "event_loop|step_mode|comparison"       # tasklet pool under TSan
#
# --transport exports HERON_TRANSPORT_MODE so every LocalCluster in the
# suite rides the chosen ipc::Fabric — the pump thread, writev spill and
# ring wrap paths only exist in the wire modes, so TSan/ASan only see them
# when a lane opts in. --execution exports HERON_EXECUTION_MODE the same
# way: `cooperative` puts every instance and SMGR loop on the tasklet
# pool, so the worker drive loop, wakeup chaining and the Retire fence
# run under the sanitizer.

set -euo pipefail

cd "$(dirname "$0")/.."

if [[ $# -lt 1 ]]; then
  echo "usage: $0 <address|thread|undefined> [build-dir] [-- ctest args]" >&2
  exit 2
fi

SAN="$1"
shift
case "${SAN}" in
  address) DEFAULT_DIR="build-asan" ;;
  thread) DEFAULT_DIR="build-tsan" ;;
  undefined) DEFAULT_DIR="build-ubsan" ;;
  *)
    echo "unknown sanitizer '${SAN}' (want address, thread or undefined)" >&2
    exit 2
    ;;
esac

BUILD_DIR="${DEFAULT_DIR}"
TRANSPORT=""
EXECUTION=""
while [[ $# -gt 0 && "$1" != "--" ]]; do
  case "$1" in
    --transport)
      if [[ $# -lt 2 ]]; then
        echo "--transport needs a mode (in-process, socket or shm)" >&2
        exit 2
      fi
      TRANSPORT="$2"
      shift 2
      ;;
    --execution)
      if [[ $# -lt 2 ]]; then
        echo "--execution needs a mode (thread or cooperative)" >&2
        exit 2
      fi
      EXECUTION="$2"
      shift 2
      ;;
    *)
      BUILD_DIR="$1"
      shift
      ;;
  esac
done
if [[ $# -gt 0 && "$1" == "--" ]]; then
  shift
fi

case "${TRANSPORT}" in
  "" | in-process | inprocess | socket | shm) ;;
  *)
    echo "unknown transport '${TRANSPORT}' (want in-process, socket or shm)" >&2
    exit 2
    ;;
esac
if [[ -n "${TRANSPORT}" ]]; then
  export HERON_TRANSPORT_MODE="${TRANSPORT}"
fi

case "${EXECUTION}" in
  "" | thread | cooperative) ;;
  *)
    echo "unknown execution mode '${EXECUTION}' (want thread or cooperative)" >&2
    exit 2
    ;;
esac
if [[ -n "${EXECUTION}" ]]; then
  export HERON_EXECUTION_MODE="${EXECUTION}"
fi

GENERATOR_ARGS=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR_ARGS=(-G Ninja)
fi

cmake -B "${BUILD_DIR}" -S . "${GENERATOR_ARGS[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHERON_SANITIZE="${SAN}"
cmake --build "${BUILD_DIR}" --parallel

case "${SAN}" in
  thread)
    # second_deadlock_stack: the reactor parks on a futex; richer reports
    # when a test deadlocks under the sanitizer's scheduler perturbation.
    export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
    ;;
  address)
    export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=0}"
    ;;
  undefined)
    export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"
    ;;
esac

exec ctest --test-dir "${BUILD_DIR}" --output-on-failure "$@"
