#include "proto/physical_plan.h"

#include <gtest/gtest.h>

#include "packing/round_robin_packing.h"
#include "workloads/word_count.h"

namespace heron {
namespace proto {
namespace {

class PhysicalPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = workloads::BuildWordCountTopology("pp", 3, 5);
    ASSERT_TRUE(t.ok());
    topology_ = *t;
    packing::RoundRobinPacking packer;
    Config config;
    config.SetInt(config_keys::kNumContainersHint, 2);
    ASSERT_TRUE(packer.Initialize(config, topology_).ok());
    auto plan = packer.Pack();
    ASSERT_TRUE(plan.ok());
    packing_ = *plan;
  }

  std::shared_ptr<const api::Topology> topology_;
  packing::PackingPlan packing_;
};

TEST_F(PhysicalPlanTest, BuildsAndIndexesEverything) {
  auto plan = PhysicalPlan::Build(topology_, packing_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->num_tasks(), 8);
  EXPECT_EQ((*plan)->num_containers(), 2);
  EXPECT_EQ((*plan)->TasksOfComponent("word").size(), 3u);
  EXPECT_EQ((*plan)->TasksOfComponent("count").size(), 5u);
  EXPECT_TRUE((*plan)->TasksOfComponent("ghost").empty());

  // Every task resolves to a container consistent with the packing plan.
  for (const TaskId t : (*plan)->all_tasks()) {
    auto container = (*plan)->ContainerOfTask(t);
    ASSERT_TRUE(container.ok());
    EXPECT_EQ((*plan)->FindInstance(t)->task_id, t);
    const auto& in_container = (*plan)->TasksInContainer(*container);
    EXPECT_NE(std::find(in_container.begin(), in_container.end(), t),
              in_container.end());
  }
  EXPECT_TRUE((*plan)->ContainerOfTask(99).status().IsNotFound());
  EXPECT_EQ((*plan)->FindInstance(99), nullptr);
}

TEST_F(PhysicalPlanTest, ComponentOfTaskResolvesKinds) {
  auto plan = PhysicalPlan::Build(topology_, packing_);
  ASSERT_TRUE(plan.ok());
  const api::ComponentDef* spout = (*plan)->ComponentOfTask(0);
  ASSERT_NE(spout, nullptr);
  EXPECT_EQ(spout->kind, api::ComponentKind::kSpout);
  const api::ComponentDef* bolt = (*plan)->ComponentOfTask(5);
  ASSERT_NE(bolt, nullptr);
  EXPECT_EQ(bolt->kind, api::ComponentKind::kBolt);
}

TEST_F(PhysicalPlanTest, SubscriptionsWired) {
  auto plan = PhysicalPlan::Build(topology_, packing_);
  ASSERT_TRUE(plan.ok());
  const auto& subs = (*plan)->SubscribersOf("word", kDefaultStreamId);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].consumer, "count");
  EXPECT_EQ(subs[0].spec.grouping, api::GroupingKind::kFields);
  EXPECT_EQ(subs[0].consumer_tasks.size(), 5u);
  EXPECT_TRUE((*plan)->SubscribersOf("count", kDefaultStreamId).empty());
}

TEST_F(PhysicalPlanTest, RejectsMismatchedPlans) {
  EXPECT_TRUE(
      PhysicalPlan::Build(nullptr, packing_).status().IsInvalidArgument());

  // A packing plan that misses a component.
  packing::PackingPlan partial = packing_;
  for (auto& c : *partial.mutable_containers()) {
    std::erase_if(c.instances, [](const packing::InstancePlan& inst) {
      return inst.component == "count";
    });
  }
  std::erase_if(*partial.mutable_containers(),
                [](const packing::ContainerPlan& c) {
                  return c.instances.empty();
                });
  EXPECT_FALSE(PhysicalPlan::Build(topology_, partial).ok());

  // A packing plan with an alien component.
  packing::PackingPlan alien = packing_;
  (*alien.mutable_containers())[0].instances[0].component = "ghost";
  EXPECT_FALSE(PhysicalPlan::Build(topology_, alien).ok());
}

}  // namespace
}  // namespace proto
}  // namespace heron
