#include "frameworks/aurora_like_framework.h"

#include "common/logging.h"

namespace heron {
namespace frameworks {

namespace {
Status CheckHomogeneous(const Resource& reference,
                        const std::vector<Resource>& demands) {
  for (const auto& demand : demands) {
    if (!(demand == reference)) {
      return Status::InvalidArgument(
          "aurora requires homogeneous containers; demand " +
          demand.ToString() + " differs from " + reference.ToString());
    }
  }
  return Status::OK();
}
}  // namespace

Status AuroraLikeFramework::ValidateSubmit(const JobSpec& spec) const {
  return CheckHomogeneous(spec.containers.front(), spec.containers);
}

Status AuroraLikeFramework::ValidateAdd(
    const Job& job, const std::vector<Resource>& demands) const {
  if (job.containers.empty()) return Status::OK();
  return CheckHomogeneous(job.containers.begin()->second.demand, demands);
}

void AuroraLikeFramework::OnContainerFailed(const JobId& job, int index) {
  const Status st = StartContainerSlot(job, index);
  if (!st.ok()) {
    HLOG(ERROR) << "aurora auto-restart of container " << index << " in "
                << job << " failed: " << st.ToString();
  } else {
    HLOG(INFO) << "aurora auto-restarted container " << index << " of "
               << job;
  }
}

}  // namespace frameworks
}  // namespace heron
