#ifndef HERON_SERDE_MESSAGE_H_
#define HERON_SERDE_MESSAGE_H_

#include <string>

#include "serde/wire.h"

namespace heron {
namespace serde {

/// \brief Base class for every wire message in the system.
///
/// Concrete messages (TupleSet, PhysicalPlan, control messages, ...) live
/// in src/proto. The contract is protobuf-like:
///  - SerializeTo appends fields to an encoder (never clears the buffer);
///  - ParseFrom fully overwrites the message from bytes, tolerating and
///    skipping unknown fields so that module implementations can evolve
///    independently — the extensibility requirement of §II;
///  - Clear resets to the default state so instances can be pooled and
///    reused (§V-A optimization 1).
class Message {
 public:
  virtual ~Message() = default;

  virtual void SerializeTo(WireEncoder* enc) const = 0;
  virtual Status ParseFrom(WireDecoder* dec) = 0;
  virtual void Clear() = 0;

  /// Serializes into a fresh buffer. Convenience for control-plane paths;
  /// the data plane serializes into pooled buffers instead.
  Buffer SerializeAsBuffer() const {
    Buffer out;
    WireEncoder enc(&out);
    SerializeTo(&enc);
    return out;
  }

  /// Parses the full contents of `data`.
  Status ParseFromBytes(BytesView data) {
    Clear();
    WireDecoder dec(data);
    return ParseFrom(&dec);
  }
};

}  // namespace serde
}  // namespace heron

#endif  // HERON_SERDE_MESSAGE_H_
