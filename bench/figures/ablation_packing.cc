// Placement-quality shootout: the two §IV-A packing policies the paper
// contrasts — Round Robin ("optimize for load balancing") vs First Fit
// Decreasing bin packing ("reduce the total cost ... minimum number of
// containers") — plus the resource-compliant middle ground and the
// search-based MCTS packer (MIPS-style Monte-Carlo Tree Search over
// instance→container assignments, the paper's "policies based on
// Monte-Carlo Tree Search" extensibility example).
//
// Part 1 reports the static shape of each plan: container count
// (pay-as-you-go cost proxy), load balance (max/mean instances per
// container) and the largest container ask.
//
// Part 2 replays each placement against DES traffic with two load
// curves — a diurnal sine and a flash crowd — and charges every tuple
// that crosses a container boundary. Placement is static while load
// moves, so the integral separates the policies: a traffic-aware
// placement (MCTS colocates DAG neighbours) ships fewer tuples over the
// wire at every point of the curve, while a skewed placement (FFD)
// overloads its hottest container exactly when the flash crowd peaks.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bench/figures/fig_util.h"
#include "packing/packing_registry.h"
#include "packing/placement_cost.h"
#include "sim/des.h"
#include "workloads/word_count.h"

using namespace heron;

namespace {

constexpr double kSpoutRateTps = 1000.0;  // Per-spout emit rate hint.

const std::vector<std::pair<std::string, std::string>>& Policies() {
  static const std::vector<std::pair<std::string, std::string>> kPolicies = {
      {"ROUND_ROBIN", "RR"},
      {"FIRST_FIT_DECREASING", "FFD_BINPACK"},
      {"RESOURCE_COMPLIANT_RR", "RC_RR"},
      {"MCTS", "MCTS"}};
  return kPolicies;
}

Config ShootoutConfig() {
  Config config;
  config.SetDouble(config_keys::kContainerCpuHint, 9.0);
  config.SetInt(config_keys::kContainerRamMbHint, 10 * 1024);
  // Rate hints feed both the MCTS objective and the DES traffic charge:
  // the spout is the only producer in WordCount.
  config.SetDouble(std::string(config_keys::kMctsRatePrefix) + "word",
                   kSpoutRateTps);
  return config;
}

struct PlacedTopology {
  packing::PackingPlan plan;
  packing::PlacementCost cost;  // Under unit spout rate hints.
  int spouts = 0;
  int bolts = 0;
};

PlacedTopology Evaluate(const std::string& policy, int spouts, int bolts) {
  auto topology =
      workloads::BuildWordCountTopology("ablation", spouts, bolts);
  HERON_CHECK_OK(topology.status());
  auto packing = packing::PackingRegistry::Global()->Create(policy);
  HERON_CHECK_OK(packing.status());
  const Config config = ShootoutConfig();
  HERON_CHECK_OK((*packing)->Initialize(config, *topology));
  auto plan = (*packing)->Pack();
  HERON_CHECK_OK(plan.status());

  PlacedTopology placed;
  placed.plan = std::move(*plan);
  placed.spouts = spouts;
  placed.bolts = bolts;
  const auto rates = packing::ComponentRatesFromConfig(**topology, config);
  placed.cost = packing::EvaluatePlacement(
      **topology, placed.plan, rates, /*previous=*/nullptr,
      packing::PlacementCostWeights());
  return placed;
}

double Balance(const packing::PackingPlan& plan) {
  size_t max_instances = 0;
  size_t total = 0;
  for (const auto& c : plan.containers()) {
    max_instances = std::max(max_instances, c.instances.size());
    total += c.instances.size();
  }
  return static_cast<double>(max_instances) /
         (static_cast<double>(total) /
          static_cast<double>(plan.NumContainers()));
}

double MaxCpuAsk(const packing::PackingPlan& plan) {
  double max_cpu = 0;
  for (const auto& c : plan.containers()) {
    max_cpu = std::max(max_cpu, c.required.cpu);
  }
  return max_cpu;
}

// ---- Part 2: DES traffic replay -----------------------------------------

/// Offered load multiplier at simulated time `t` (seconds over a
/// `duration`-long trace). Diurnal: a full sine period, trough 0.2x, peak
/// 1.8x. Flash crowd: flat 0.5x with an 8x spike in the middle tenth.
double DiurnalLoad(double t, double duration) {
  return 1.0 + 0.8 * std::sin(2.0 * M_PI * t / duration);
}
double FlashCrowdLoad(double t, double duration) {
  const bool spike = t >= 0.45 * duration && t < 0.55 * duration;
  return spike ? 8.0 : 0.5;
}

struct TrafficResult {
  double cross_mtuples = 0;   ///< Tuples shipped between containers (M).
  double peak_backlog_sec = 0;  ///< Worst backlog on the hottest container.
};

/// Integrates the load curve against the placement: each tick charges
/// `cross_fraction` of the offered tuples to the wire and each
/// container's share of the processing work to a SimServer, whose backlog
/// shows when the hottest container falls behind the curve.
TrafficResult ReplayTraffic(const PlacedTopology& placed,
                            double (*load)(double, double)) {
  const double duration = bench::FastMode() ? 30.0 : 120.0;
  const double tick = duration / 600.0;
  const double total_tps =
      kSpoutRateTps * static_cast<double>(placed.spouts);
  // inter_container_tps is absolute under the kSpoutRateTps hints.
  const double cross_fraction = placed.cost.inter_container_tps / total_tps;

  // Per-container share of the data-plane work: spouts emit their own
  // rate, bolts absorb an even hash-partitioned share of the total.
  std::vector<double> work_share;
  double share_sum = 0;
  for (const auto& c : placed.plan.containers()) {
    double share = 0;
    for (const auto& inst : c.instances) {
      share += inst.component == "word"
                   ? 1.0
                   : static_cast<double>(placed.spouts) /
                         static_cast<double>(placed.bolts);
    }
    work_share.push_back(share);
    share_sum += share;
  }
  // Capacity: the whole cluster can absorb 1.25x the flat-load rate when
  // the work is spread evenly — a skewed placement saturates its hottest
  // container well before that.
  const double capacity_tps =
      1.25 * total_tps * 2.0 / static_cast<double>(work_share.size());

  sim::Des des;
  std::vector<sim::SimServer> servers;
  servers.reserve(work_share.size());
  for (size_t i = 0; i < work_share.size(); ++i) servers.emplace_back(&des);

  TrafficResult result;
  for (double t = 0; t < duration; t += tick) {
    des.ScheduleAt(t, [&, t] {
      const double tuples = total_tps * load(t, duration) * tick;
      result.cross_mtuples += tuples * cross_fraction / 1e6;
      for (size_t i = 0; i < servers.size(); ++i) {
        const double container_tuples =
            tuples * 2.0 * work_share[i] / share_sum;
        servers[i].Submit(container_tuples / capacity_tps, [] {});
        result.peak_backlog_sec =
            std::max(result.peak_backlog_sec, servers[i].Backlog());
      }
    });
  }
  des.RunUntil(duration + 1.0);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseSmoke(argc, argv);
  bench::JsonReport report("ablation_packing");

  bench::PrintFigureHeader(
      "Placement shootout: packing policy (Resource Manager, §IV-A)",
      "RR balances load; FFD minimizes containers; MCTS minimizes traffic");
  bench::PrintColumns({"topology", "policy", "containers", "balance",
                       "max_cpu_ask", "cross_tps"});

  for (const auto& [spouts, bolts] : std::vector<std::pair<int, int>>{
           {25, 25}, {100, 100}, {200, 200}, {10, 100}}) {
    for (const auto& [policy, label] : Policies()) {
      const PlacedTopology placed = Evaluate(policy, spouts, bolts);
      char topo[32];
      std::snprintf(topo, sizeof(topo), "%dx%d", spouts, bolts);
      bench::PrintCell(topo);
      bench::PrintCell(label.c_str());
      bench::PrintCellInt(placed.plan.NumContainers());
      bench::PrintCell(Balance(placed.plan));
      bench::PrintCell(MaxCpuAsk(placed.plan));
      bench::PrintCell(placed.cost.inter_container_tps);
      bench::EndRow();

      const std::string scenario = std::string(topo) + "_" + label;
      report.Add(scenario, "containers", placed.plan.NumContainers());
      report.Add(scenario, "balance", Balance(placed.plan));
      report.Add(scenario, "cross_tps", placed.cost.inter_container_tps);
    }
  }

  std::printf(
      "\nDES traffic replay (placement static, load moving; %s trace)\n",
      bench::FastMode() ? "30s smoke" : "120s");
  bench::PrintColumns({"curve", "policy", "cross_ktuples", "peak_backlog_s"});
  double rr_diurnal_cross = 0;
  double mcts_diurnal_cross = 0;
  for (const auto& [curve, load] :
       std::vector<std::pair<std::string, double (*)(double, double)>>{
           {"diurnal", DiurnalLoad}, {"flash_crowd", FlashCrowdLoad}}) {
    for (const auto& [policy, label] : Policies()) {
      const PlacedTopology placed = Evaluate(policy, 25, 25);
      const TrafficResult traffic = ReplayTraffic(placed, load);
      bench::PrintCell(curve.c_str());
      bench::PrintCell(label.c_str());
      bench::PrintCell(traffic.cross_mtuples * 1000.0);
      bench::PrintCell(traffic.peak_backlog_sec);
      bench::EndRow();
      if (curve == "diurnal" && label == "RR")
        rr_diurnal_cross = traffic.cross_mtuples;
      if (curve == "diurnal" && label == "MCTS")
        mcts_diurnal_cross = traffic.cross_mtuples;
      report.Add(curve + "_" + label, "cross_mtuples",
                 traffic.cross_mtuples);
      report.Add(curve + "_" + label, "peak_backlog_sec",
                 traffic.peak_backlog_sec);
    }
  }

  std::printf(
      "\n  Reading: FIRST_FIT_DECREASING packs the same topology into fewer\n"
      "  containers (lower cost) but crosses the most edges; ROUND_ROBIN\n"
      "  keeps balance ~1.0 and never colocates on purpose. MCTS colocates\n"
      "  spout→bolt edges under the rate hints and ships the fewest tuples\n"
      "  over the wire at every point of both curves, at the price of some\n"
      "  balance — visible as backlog on its hottest container when the\n"
      "  flash crowd peaks (§IV-A: packing is a swappable policy, and the\n"
      "  objective is the policy).\n");
  std::printf("  MCTS vs RR inter-container traffic (diurnal): %.1fk vs "
              "%.1fk %s\n",
              mcts_diurnal_cross * 1000.0, rr_diurnal_cross * 1000.0,
              mcts_diurnal_cross < rr_diurnal_cross ? "(MCTS WINS)"
                                                    : "(REGRESSION)");

  report.Write();
  return mcts_diurnal_cross < rr_diurnal_cross ? 0 : 1;
}
