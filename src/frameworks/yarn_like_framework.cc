#include "frameworks/yarn_like_framework.h"

// Behaviour is fully declared in the header; this TU anchors the target.
