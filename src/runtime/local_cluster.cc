#include "runtime/local_cluster.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "observability/trace_export.h"
#include "frameworks/aurora_like_framework.h"
#include "frameworks/marathon_like_framework.h"
#include "frameworks/slurm_like_framework.h"
#include "frameworks/yarn_like_framework.h"
#include "smgr/stream_manager.h"

namespace heron {
namespace runtime {

LocalCluster::LocalCluster(Config cluster_config, const Clock* clock)
    : cluster_config_(std::move(cluster_config)),
      transport_(cluster_config_.GetBoolOr(
          config_keys::kSmgrOptimizationsEnabled, true)),
      clock_(clock != nullptr ? clock : RealClock::Get()) {
  HERON_CHECK_OK(state_.Initialize(cluster_config_));
  recovery_detect_ms_ = recovery_metrics_.GetHistogram("recovery.detect.ms");
  recovery_restore_ms_ = recovery_metrics_.GetHistogram("recovery.restore.ms");
  recovery_detect_last_ms_ =
      recovery_metrics_.GetGauge("recovery.detect.last.ms");
  recovery_restore_last_ms_ =
      recovery_metrics_.GetGauge("recovery.restore.last.ms");
  recovery_deaths_ = recovery_metrics_.GetCounter("recovery.deaths");
  recovery_restarts_ = recovery_metrics_.GetCounter("recovery.restarts");
  chaos_kill_counter_ = recovery_metrics_.GetCounter("chaos.kills");
  checkpoint_restores_ =
      recovery_metrics_.GetCounter("recovery.checkpoint.restores");
}

LocalCluster::~LocalCluster() {
  if (running()) Kill().ok();
}

Status LocalCluster::BuildAndInstallPhysicalPlan(
    const packing::PackingPlan& plan) {
  HERON_ASSIGN_OR_RETURN(auto physical,
                         proto::PhysicalPlan::Build(topology_, plan));
  // Keep the metrics cache's (and scaling engine's) task → component
  // attribution in lockstep with the plan (scaling changes it).
  std::map<TaskId, ComponentId> task_component;
  for (const TaskId task : physical->all_tasks()) {
    const api::ComponentDef* def = physical->ComponentOfTask(task);
    if (def != nullptr) task_component[task] = def->id;
  }
  if (scaling_engine_ != nullptr) {
    // Only bolts are scalable: backpressure throttles the spouts, so
    // growing spout parallelism feeds the fire instead of relieving it.
    std::vector<ComponentId> bolts;
    for (const api::ComponentDef& def : topology_->components()) {
      if (def.kind == api::ComponentKind::kBolt) bolts.push_back(def.id);
    }
    scaling_engine_->SetScalableComponents(std::move(bolts), task_component);
  }
  if (metrics_cache_ != nullptr) {
    metrics_cache_->SetTopology(topology_->name(), std::move(task_component));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  physical_plan_ = physical;
  return Status::OK();
}

Status LocalCluster::Submit(std::shared_ptr<const api::Topology> topology) {
  if (topology == nullptr) {
    return Status::InvalidArgument("null topology");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) {
      return Status::FailedPrecondition(
          "local cluster already runs a topology");
    }
  }
  topology_ = topology;
  merged_config_ = cluster_config_.MergedWith(topology->config());
  step_mode_ = merged_config_.GetBoolOr(config_keys::kClusterStepMode, false);

  // Wire transport selection, before any container registers an endpoint:
  // config key first, then the HERON_TRANSPORT_MODE environment override
  // (how CI lanes re-run the suite over socket/shm), default in-process.
  // Step mode pumps wire fabrics inline so single-stepped universes stay
  // deterministic regardless of the wire.
  std::string transport_mode =
      merged_config_.GetStringOr(config_keys::kTransportMode, "");
  if (transport_mode.empty()) {
    const char* env_mode = std::getenv("HERON_TRANSPORT_MODE");
    if (env_mode != nullptr) transport_mode = env_mode;
  }
  HERON_ASSIGN_OR_RETURN(const smgr::Transport::Mode transport_kind,
                         smgr::Transport::ParseMode(transport_mode));
  smgr::Transport::Options transport_options;
  transport_options.mode = transport_kind;
  transport_options.inline_pump = step_mode_;
  HERON_RETURN_NOT_OK(transport_.Configure(transport_options));

  // Execution-mode selection, same precedence as the transport: config
  // key, then the HERON_EXECUTION_MODE environment override, default
  // thread-per-instance. Step mode wins over cooperative — a step-mode
  // universe is threadless by definition, so no pool is built.
  std::string execution_mode =
      merged_config_.GetStringOr(config_keys::kExecutionMode, "");
  if (execution_mode.empty()) {
    const char* env_mode = std::getenv("HERON_EXECUTION_MODE");
    if (env_mode != nullptr) execution_mode = env_mode;
  }
  if (execution_mode.empty()) execution_mode = "thread";
  if (execution_mode != "thread" && execution_mode != "cooperative") {
    return Status::InvalidArgument("unknown execution mode: '" +
                                   execution_mode +
                                   "' (thread | cooperative)");
  }

  // Flight recorder + scheduler profiler: always-on by default (the rings
  // are wait-free and control-plane events are rare); capacity 0 turns
  // the whole layer dark — no rings, no slice accounting, no per-pass
  // profiling. Allocated before the pool so workers get their slice ring.
  journal_ring_capacity_ = static_cast<size_t>(
      merged_config_.GetIntOr(config_keys::kJournalRingCapacity, 8192));
  slice_ring_capacity_ = static_cast<size_t>(
      merged_config_.GetIntOr(config_keys::kJournalSliceRingCapacity,
                              1 << 16));
  control_journal_.reset();
  slice_ring_.reset();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    journals_.clear();
  }
  if (journal_ring_capacity_ > 0) {
    control_journal_ = std::make_unique<observability::EventJournal>(
        journal_ring_capacity_);
    slice_ring_ =
        std::make_unique<observability::SliceRing>(slice_ring_capacity_);
  }

  tasklet_pool_.reset();
  if (execution_mode == "cooperative" && !step_mode_) {
    TaskletPool::Options pool_options;
    pool_options.profile = journal_ring_capacity_ > 0;
    pool_options.slice_ring = slice_ring_.get();
    pool_options.workers = static_cast<size_t>(
        merged_config_.GetIntOr(config_keys::kExecutionWorkers, 0));
    HERON_ASSIGN_OR_RETURN(
        pool_options.idle_policy,
        ParseIdlePolicy(merged_config_.GetStringOr(
            config_keys::kExecutionIdlePolicy, "condvar-park")));
    pool_options.tasklet.target_slice_nanos = merged_config_.GetIntOr(
        config_keys::kExecutionSliceNanos,
        pool_options.tasklet.target_slice_nanos);
    tasklet_pool_ = std::make_unique<TaskletPool>(pool_options, clock_);
    tasklet_pool_->Start();
  }

  chaos_kill_probability_ =
      merged_config_.GetDoubleOr(config_keys::kChaosKillProbability, 0);
  chaos_max_kills_ = static_cast<int>(
      merged_config_.GetIntOr(config_keys::kChaosMaxKills, 0));
  chaos_rng_ = Random(static_cast<uint64_t>(
      merged_config_.GetIntOr(config_keys::kChaosSeed, 1)));
  chaos_kills_ = 0;

  // 1. Resource Manager: "first determines how many containers should be
  //    allocated for the topology" (§II).
  HERON_ASSIGN_OR_RETURN(
      packing_,
      packing::PackingRegistry::Global()->CreateFromConfig(merged_config_));
  HERON_RETURN_NOT_OK(packing_->Initialize(merged_config_, topology_));
  HERON_ASSIGN_OR_RETURN(packing::PackingPlan plan, packing_->Pack());

  // 2. Scheduler stack for heron.scheduler.kind (may build a simulated
  //    framework substrate), so the State Manager can record its URL.
  HERON_RETURN_NOT_OK(BuildScheduler(plan));

  // 3. State Manager: register the topology and its metadata (§IV-C).
  HERON_RETURN_NOT_OK(statemgr::RegisterTopology(&state_, topology->name()));
  HERON_RETURN_NOT_OK(statemgr::SetSchedulerLocation(
      &state_, topology->name(),
      framework_ != nullptr ? framework_->Url() : "local://localhost"));

  // 4. TMaster in (alongside) container 0, with the heartbeat monitor
  //    parameters (§IV-B failure detection) and the event route into the
  //    Scheduler.
  tmaster::TopologyMaster::Options tm_options;
  tm_options.topology = topology->name();
  tmaster_ = std::make_unique<tmaster::TopologyMaster>(tm_options, &state_,
                                                       clock_);
  HERON_RETURN_NOT_OK(tmaster_->Start());
  HERON_RETURN_NOT_OK(tmaster_->PublishPackingPlan(plan));

  const int64_t monitor_interval_ms =
      merged_config_.GetIntOr(config_keys::kSchedulerMonitorIntervalMs, 0);
  const int miss_limit = static_cast<int>(
      merged_config_.GetIntOr(config_keys::kSchedulerMonitorMissLimit, 3));
  if (monitor_interval_ms > 0) {
    tmaster_->SetMonitorParams(monitor_interval_ms, miss_limit);
    tmaster_->SetContainerEventCallback(
        [this](const tmaster::TopologyMaster::ContainerEvent& event) {
          OnContainerEvent(event);
        });
    EventLoop::Options monitor_options;
    monitor_options.name = "monitor";
    monitor_ = std::make_unique<EventLoop>(monitor_options, clock_);
    monitor_->AddPeriodic(monitor_interval_ms * 1000000,
                          [this] { MonitorTick(); });
  }

  // 4a. Checkpointing: the coordinator rides the TMaster's monitor tick
  //     (periodic triggers + completion polling). Enabled by an interval
  //     or by exactly-once mode (which tests drive with explicit
  //     TriggerCheckpoint calls even at interval 0).
  const int64_t checkpoint_interval_ms =
      merged_config_.GetIntOr(config_keys::kCheckpointIntervalMs, 0);
  const std::string checkpoint_mode = merged_config_.GetStringOr(
      config_keys::kCheckpointMode, "at-least-once");
  checkpoint_exactly_once_ = checkpoint_mode == "exactly-once";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_restore_ckpt_ = 0;
    checkpoint_epoch_ = 0;
  }
  if (checkpoint_interval_ms > 0 || checkpoint_exactly_once_) {
    tmaster::CheckpointCoordinator::Options ckpt_options;
    ckpt_options.topology = topology->name();
    ckpt_options.interval_ms = checkpoint_interval_ms;
    ckpt_options.journal = control_journal_.get();
    checkpoint_coordinator_ = std::make_unique<tmaster::CheckpointCoordinator>(
        ckpt_options, &state_, &transport_, clock_);
  } else {
    checkpoint_coordinator_.reset();
  }

  // 4b. Observability: the TMaster's metrics cache — "the gateway for the
  //     topology metrics" (§II) — which every container's Metrics Manager
  //     flushes into (the AddSink in StartContainer is the TMaster's
  //     "subscription" to that container), publishing windowed rollups to
  //     the state tree; and the sampled tuple-path tracing knobs whose
  //     per-container span rings StartContainer allocates.
  observability::MetricsCache::Options cache_options;
  cache_options.window_nanos =
      merged_config_.GetIntOr(config_keys::kMetricsCacheWindowSec, 1) *
      1'000'000'000;
  cache_options.max_windows = static_cast<size_t>(
      merged_config_.GetIntOr(config_keys::kMetricsCacheMaxWindows, 60));
  metrics_cache_ = std::make_shared<observability::MetricsCache>(cache_options);
  metrics_cache_->SetPublishTarget(&state_);
  trace_sample_inverse_ =
      merged_config_.GetIntOr(config_keys::kTraceSampleInverse, 0);
  trace_ring_capacity_ = static_cast<size_t>(
      merged_config_.GetIntOr(config_keys::kTraceRingCapacity, 1 << 16));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    span_collectors_.clear();
  }

  // 4c. Auto-scaling: the policy engine rides the monitor tick, judging
  //     each completed metrics-cache window and driving the exactly-once
  //     repack rollout when a component runs sustained-hot.
  tmaster::ScalingPolicyEngine::Options scaling_options =
      tmaster::ScalingPolicyEngine::Options::FromConfig(topology->name(),
                                                        merged_config_);
  scaling_options.journal = control_journal_.get();
  if (scaling_options.enabled) {
    scaling_engine_ = std::make_unique<tmaster::ScalingPolicyEngine>(
        scaling_options, metrics_cache_.get(), &state_, clock_);
    scaling_engine_->SetExecute(
        [this](const ComponentId& component, int new_parallelism) {
          return ScaleWithRollback(component, new_parallelism);
        });
  } else {
    scaling_engine_.reset();
  }

  // 5. Physical plan, then Scheduler starts every container.
  HERON_RETURN_NOT_OK(BuildAndInstallPhysicalPlan(plan));
  if (checkpoint_coordinator_ != nullptr) {
    checkpoint_coordinator_->SetPlan(physical_plan());
  }
  HERON_RETURN_NOT_OK(scheduler_->Initialize(merged_config_));
  HERON_RETURN_NOT_OK(scheduler_->OnSchedule(plan));

  // The monitor observes only after every container is expected: a slow
  // scheduler start must not read as a death.
  if (monitor_ != nullptr && !step_mode_) monitor_->Start();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = true;
  }
  HLOG(INFO) << "topology '" << topology->name() << "' running locally ("
             << plan.NumContainers() << " containers, "
             << plan.NumInstances() << " instances, scheduler "
             << scheduler_->Name() << ")";
  return Status::OK();
}

Status LocalCluster::BuildScheduler(const packing::PackingPlan& plan) {
  const std::string kind =
      merged_config_.GetStringOr(config_keys::kSchedulerKind, "local");
  framework_scheduler_ = nullptr;
  if (kind == "local") {
    sim_cluster_.reset();
    framework_.reset();
    scheduler_ = std::make_unique<scheduler::LocalScheduler>(this);
    return Status::OK();
  }
  // Simulated machine substrate: enough identical nodes for the plan plus
  // headroom, so a restarted container always finds a slot even while the
  // dead one's allocation lingers for a tick.
  sim_cluster_ = std::make_unique<frameworks::SimCluster>();
  sim_cluster_->AddNodes(plan.NumContainers() + 2,
                         plan.MaxContainerResource());
  if (kind == "aurora") {
    framework_ = std::make_unique<frameworks::AuroraLikeFramework>(
        sim_cluster_.get());
  } else if (kind == "marathon") {
    framework_ = std::make_unique<frameworks::MarathonLikeFramework>(
        sim_cluster_.get());
  } else if (kind == "yarn") {
    framework_ =
        std::make_unique<frameworks::YarnLikeFramework>(sim_cluster_.get());
  } else if (kind == "slurm") {
    framework_ =
        std::make_unique<frameworks::SlurmLikeFramework>(sim_cluster_.get());
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown scheduler kind '%s'", kind.c_str()));
  }
  auto fs = std::make_unique<scheduler::FrameworkScheduler>(framework_.get(),
                                                            this);
  framework_scheduler_ = fs.get();
  scheduler_ = std::move(fs);
  return Status::OK();
}

Status LocalCluster::Kill() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return Status::FailedPrecondition("nothing running");
  }
  // Unified timeline export on demand: every run (tests, benches, CI
  // lanes) dumps its merged Perfetto timeline when HERON_TRACE_OUT names
  // a file. Before teardown so the tasklet names are still resolvable.
  const char* trace_out = std::getenv("HERON_TRACE_OUT");
  if (trace_out != nullptr && trace_out[0] != '\0') {
    const Status dumped = DumpTimeline(trace_out);
    if (dumped.ok()) {
      HLOG(INFO) << "timeline dumped to " << trace_out
                 << " (open at https://ui.perfetto.dev)";
    } else {
      HLOG(ERROR) << "timeline dump failed: " << dumped.ToString();
    }
  }
  // Monitor first — and only then flip running_: an in-flight recovery
  // finishes consistently (Join waits it out) and no new one can start, so
  // teardown below races nothing.
  if (monitor_ != nullptr) {
    monitor_->Stop();
    monitor_->Join();
    monitor_.reset();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return Status::FailedPrecondition("nothing running");
    running_ = false;
  }
  const Status st = scheduler_->OnKill({topology_->name()});
  tmaster_->Stop().ok();
  statemgr::UnregisterTopology(&state_, topology_->name()).ok();
  packing_->Close();
  // Cooperative pool last: every container (and thus every tasklet) is
  // stopped and retired by OnKill above, so the workers are idle.
  if (tasklet_pool_ != nullptr) {
    tasklet_pool_->Stop();
    tasklet_pool_.reset();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    failed_containers_.clear();
  }
  return st;
}

Status LocalCluster::Scale(const ComponentId& component,
                           int new_parallelism) {
  if (!running()) return Status::FailedPrecondition("nothing running");
  const packing::PackingPlan old_packing = current_packing_plan();

  // TMaster coordinates the repack (§IV-A) and publishes the plan.
  HERON_ASSIGN_OR_RETURN(
      packing::PackingPlan new_plan,
      tmaster_->ScaleTopology(packing_.get(), {{component, new_parallelism}}));

  // The topology object must reflect the new parallelism so the physical
  // plan validates and instances get the right context.
  HERON_ASSIGN_OR_RETURN(api::Topology scaled,
                         topology_->WithParallelism(component,
                                                    new_parallelism));
  topology_ = std::make_shared<const api::Topology>(std::move(scaled));

  // Survivors must restart onto the new physical plan (routing tables are
  // per-plan); capture them before the scheduler applies the diff.
  std::vector<ContainerId> survivors;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, _] : containers_) {
      if (new_plan.FindContainer(id) != nullptr) survivors.push_back(id);
    }
  }

  HERON_RETURN_NOT_OK(BuildAndInstallPhysicalPlan(new_plan));
  if (control_journal_ != nullptr) {
    control_journal_->Record(observability::JournalEventType::kPlanSwap,
                             /*origin=*/-1, /*task=*/-1, clock_->NowNanos(),
                             /*arg0=*/new_plan.NumContainers(),
                             /*arg1=*/new_parallelism, "scale");
  }
  if (checkpoint_coordinator_ != nullptr) {
    // Aborts any in-flight checkpoint too: its task set just changed.
    checkpoint_coordinator_->SetPlan(physical_plan());
  }

  // Plan-change hygiene for removed containers that are *already dead*
  // (hard-killed, not yet recovered): the graceful StopContainer below
  // will answer NotFound for them, so nothing else would ever stop
  // expecting their heartbeats, clear their recovery marker, or release
  // the throttle refs their SMGR stranded on survivors mid-episode.
  for (const auto& c : old_packing.containers()) {
    if (new_plan.FindContainer(c.id) != nullptr) continue;
    bool was_failed = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      was_failed = failed_containers_.erase(c.id) > 0;
    }
    if (was_failed) {
      tmaster_->ForgetContainer(c.id).ok();
      smgr::AnnounceInitiatorRemoved(&transport_, c.id);
    }
  }

  // Scheduler applies the container diff (§IV-B onUpdate): stops removed,
  // starts added (on the new plan).
  HERON_RETURN_NOT_OK(
      scheduler_->OnUpdate({topology_->name(), new_plan}));

  for (const ContainerId id : survivors) {
    HERON_RETURN_NOT_OK(StopContainer(id));
    const packing::ContainerPlan* c = new_plan.FindContainer(id);
    HERON_RETURN_NOT_OK(StartContainer(*c));
  }
  return Status::OK();
}

Status LocalCluster::ScaleWithRollback(const ComponentId& component,
                                       int new_parallelism) {
  if (!running()) return Status::FailedPrecondition("nothing running");
  if (checkpoint_coordinator_ == nullptr || !checkpoint_exactly_once_) {
    // Without exactly-once checkpointing there is no epoch to roll back
    // to; the plain scale path (at-least-once ack-replay) applies.
    return Scale(component, new_parallelism);
  }
  const packing::PackingPlan old_plan = current_packing_plan();

  // 1. Freeze the checkpoint epoch: abort the in-flight checkpoint (its
  //    task set is about to change) and pick the restore target.
  const uint64_t restore_id = checkpoint_coordinator_->latest_complete();
  checkpoint_coordinator_->AbortInFlight();
  HLOG(WARNING) << "scaling '" << component << "' to " << new_parallelism
                << " via rollback to checkpoint " << restore_id;

  // 2. TMaster coordinates the repack and publishes the plan; the
  //    topology object follows so the physical plan validates.
  HERON_ASSIGN_OR_RETURN(
      packing::PackingPlan new_plan,
      tmaster_->ScaleTopology(packing_.get(), {{component, new_parallelism}}));
  HERON_ASSIGN_OR_RETURN(
      api::Topology scaled,
      topology_->WithParallelism(component, new_parallelism));
  topology_ = std::make_shared<const api::Topology>(std::move(scaled));

  // 3. Halt every live container — the global rollback contract: tuples
  //    in flight past the checkpoint are of the doomed epoch and must be
  //    discarded, not drained onto a plan that no longer routes them.
  //    Halted incumbents join failed_containers_ so their replacements
  //    register as recovered incarnations.
  std::vector<ContainerId> halted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_restore_ckpt_ = restore_id;
    ++checkpoint_epoch_;
    for (const auto& [id, _] : containers_) halted.push_back(id);
  }
  for (const ContainerId id : halted) {
    std::unique_ptr<Container> victim;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = containers_.find(id);
      if (it == containers_.end()) continue;
      victim = std::move(it->second);
      containers_.erase(it);
      failed_containers_.insert(id);
    }
    victim->Fail();
  }

  // 4. Swap the plan everywhere: physical plan (+ metrics cache and
  //    scaling-engine attribution) and the coordinator's completion fence.
  HERON_RETURN_NOT_OK(BuildAndInstallPhysicalPlan(new_plan));
  if (control_journal_ != nullptr) {
    control_journal_->Record(observability::JournalEventType::kPlanSwap,
                             /*origin=*/-1, /*task=*/-1, clock_->NowNanos(),
                             /*arg0=*/new_plan.NumContainers(),
                             /*arg1=*/new_parallelism, "scale-rollback");
    control_journal_->Record(
        observability::JournalEventType::kCheckpointRestore,
        /*origin=*/-1, /*task=*/-1, clock_->NowNanos(),
        /*arg0=*/static_cast<int64_t>(restore_id),
        /*arg1=*/static_cast<int64_t>(halted.size()));
  }
  checkpoint_coordinator_->SetPlan(physical_plan());

  // 5. Plan-change hygiene for containers the repack removed: stop
  //    expecting their heartbeats, clear their recovery marker (they will
  //    never restart, so a later same-id container must not boot as a
  //    recovered incarnation), and broadcast kStop on their behalf so no
  //    registered SMGR keeps a throttle ref a vanished initiator can
  //    never release.
  for (const auto& c : old_plan.containers()) {
    if (new_plan.FindContainer(c.id) != nullptr) continue;
    tmaster_->ForgetContainer(c.id).ok();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      failed_containers_.erase(c.id);
    }
    smgr::AnnounceInitiatorRemoved(&transport_, c.id);
  }

  // 6. Scheduler applies the diff (repack-added containers start now,
  //    their instances cold — MaybeRestore tolerates tasks the checkpoint
  //    never knew), then the halted incumbents restart on the new plan;
  //    StartContainer hands every one the restore id and the new epoch,
  //    and the spouts re-emit the post-checkpoint suffix onto the new
  //    routing tables.
  HERON_RETURN_NOT_OK(scheduler_->OnUpdate({topology_->name(), new_plan}));
  for (const ContainerId id : halted) {
    const packing::ContainerPlan* c = new_plan.FindContainer(id);
    if (c == nullptr) continue;  // Removed by the repack.
    HERON_RETURN_NOT_OK(StartContainer(*c));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_restore_ckpt_ = 0;
  }
  checkpoint_restores_->Increment();
  return Status::OK();
}

Status LocalCluster::RestartContainer(ContainerId id) {
  if (!running()) return Status::FailedPrecondition("nothing running");
  return scheduler_->OnRestart({topology_->name(), id});
}

Status LocalCluster::FailContainer(ContainerId id) {
  std::unique_ptr<Container> victim;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = containers_.find(id);
    if (it == containers_.end()) {
      return Status::NotFound(StrFormat("container %d not live", id));
    }
    victim = std::move(it->second);
    containers_.erase(it);
    failed_containers_.insert(id);
  }
  HLOG(WARNING) << "FAULT INJECTION: hard-killing container " << id;
  // Failure-state diagnostics: the dead container's flight-recorder tail
  // is the first thing an operator wants — what the control plane was
  // doing in the moments before the kill.
  if (journal_ring_capacity_ > 0) {
    std::vector<observability::JournalEvent> tail;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = journals_.find(id);
      if (it != journals_.end()) tail = it->second->Snapshot();
    }
    constexpr size_t kTailEvents = 8;
    const size_t first =
        tail.size() > kTailEvents ? tail.size() - kTailEvents : 0;
    for (size_t i = first; i < tail.size(); ++i) {
      const observability::JournalEvent& e = tail[i];
      HLOG(WARNING) << "  journal[" << e.seq << "] "
                    << observability::JournalEventTypeName(e.type) << " at "
                    << e.at_nanos << " args " << e.arg0 << "," << e.arg1
                    << (e.detail.empty() ? "" : " " + e.detail);
    }
  }
  // Abrupt death: halt everything, drain nothing. The TMaster is NOT told —
  // detection is the heartbeat monitor's job, which is the point.
  victim->Fail();
  return Status::OK();
}

void LocalCluster::StepAll() {
  if (!step_mode_) return;
  std::vector<Container*> live;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live.reserve(containers_.size());
    for (const auto& [_, container] : containers_) {
      live.push_back(container.get());
    }
  }
  for (Container* container : live) container->Step();
}

void LocalCluster::MaybeChaosKill() {
  if (chaos_kill_probability_ <= 0) return;
  if (chaos_max_kills_ > 0 && chaos_kills_ >= chaos_max_kills_) return;
  if (!chaos_rng_.NextBool(chaos_kill_probability_)) return;
  std::vector<ContainerId> live;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, _] : containers_) live.push_back(id);
  }
  if (live.empty()) return;
  const ContainerId target =
      live[chaos_rng_.NextBelow(static_cast<uint64_t>(live.size()))];
  if (FailContainer(target).ok()) {
    ++chaos_kills_;
    chaos_kill_counter_->Increment();
    if (control_journal_ != nullptr) {
      control_journal_->Record(observability::JournalEventType::kChaosKill,
                               /*origin=*/target, /*task=*/-1,
                               clock_->NowNanos(),
                               /*arg0=*/chaos_kills_.load(), /*arg1=*/0);
    }
  }
}

void LocalCluster::MonitorTick() {
  if (!running()) return;
  MaybeChaosKill();
  if (tmaster_ != nullptr) {
    // CheckLiveness emits ContainerEvents through OnContainerEvent, which
    // routes deaths into the Scheduler synchronously — by the time this
    // returns, recovery (restart + re-register) has been driven as far as
    // the framework contract allows.
    tmaster_->CheckLiveness();
  }
  if (checkpoint_coordinator_ != nullptr && running()) {
    checkpoint_coordinator_->Tick(clock_->NowNanos());
  }
  if (scaling_engine_ != nullptr && running()) {
    // After liveness and checkpoint rounds: a scaling decision must see
    // the cluster's settled state, and its rollout reuses both paths.
    scaling_engine_->Tick();
  }
}

void LocalCluster::OnContainerEvent(
    const tmaster::TopologyMaster::ContainerEvent& event) {
  using Kind = tmaster::TopologyMaster::ContainerEvent::Kind;
  if (event.kind == Kind::kDead) {
    recovery_deaths_->Increment();
    recovery_detect_ms_->Record(
        static_cast<uint64_t>(std::max<int64_t>(event.latency_ms, 0)));
    recovery_detect_last_ms_->Set(event.latency_ms);
    if (control_journal_ != nullptr) {
      control_journal_->Record(
          observability::JournalEventType::kContainerDead,
          /*origin=*/event.container, /*task=*/-1, clock_->NowNanos(),
          /*arg0=*/event.latency_ms, /*arg1=*/0);
    }
    if (!running()) return;
    if (checkpoint_coordinator_ != nullptr && checkpoint_exactly_once_) {
      // Exactly-once mode: recovery is a global rollback to the latest
      // complete checkpoint, not per-container ack-replay.
      RestoreFromCheckpoint(event.container);
      return;
    }
    // Framework-contract routing (§IV-B): stateless schedulers lean on
    // the framework's auto-restart; stateful ones restart explicitly.
    const Status st =
        scheduler_->OnContainerDead(topology_->name(), event.container);
    if (!st.ok()) {
      HLOG(ERROR) << "recovery of container " << event.container
                  << " failed: " << st.ToString();
    }
    return;
  }
  // kRestored: heartbeats resumed from the replacement incarnation.
  recovery_restarts_->Increment();
  if (control_journal_ != nullptr) {
    control_journal_->Record(
        observability::JournalEventType::kContainerRestored,
        /*origin=*/event.container, /*task=*/-1, clock_->NowNanos(),
        /*arg0=*/event.latency_ms, /*arg1=*/0);
  }
  if (metrics_cache_ != nullptr) {
    metrics_cache_->NoteRestart(event.container);
  }
  recovery_metrics_
      .GetCounter(StrFormat("recovery.restarts.%d", event.container))
      ->Increment();
  recovery_restore_ms_->Record(
      static_cast<uint64_t>(std::max<int64_t>(event.latency_ms, 0)));
  recovery_restore_last_ms_->Set(event.latency_ms);
}

void LocalCluster::RestoreFromCheckpoint(ContainerId dead) {
  // 1. Freeze the checkpoint epoch: abort the in-flight checkpoint (the
  //    dead container can never report into it) and pick the restore
  //    target — the latest globally-complete id, 0 = cold restart.
  const uint64_t restore_id = checkpoint_coordinator_->latest_complete();
  checkpoint_coordinator_->AbortInFlight();
  HLOG(WARNING) << "container " << dead
                << " died in exactly-once mode; rolling every container "
                << "back to checkpoint " << restore_id;
  if (control_journal_ != nullptr) {
    control_journal_->Record(
        observability::JournalEventType::kCheckpointRestore,
        /*origin=*/dead, /*task=*/-1, clock_->NowNanos(),
        /*arg0=*/static_cast<int64_t>(restore_id), /*arg1=*/0);
  }

  // 2. Halt every survivor. The rollback is global: tuples in flight past
  //    the checkpoint — in outboxes, caches, channels — are of the failed
  //    epoch and must be discarded, not drained. Survivors join
  //    failed_containers_ so their replacements register as recovered
  //    incarnations (backpressure-ref cleanup).
  std::vector<ContainerId> survivors;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_restore_ckpt_ = restore_id;
    ++checkpoint_epoch_;
    for (const auto& [id, _] : containers_) survivors.push_back(id);
  }
  for (const ContainerId id : survivors) {
    std::unique_ptr<Container> victim;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = containers_.find(id);
      if (it == containers_.end()) continue;
      victim = std::move(it->second);
      containers_.erase(it);
      failed_containers_.insert(id);
    }
    victim->Fail();
  }

  // 3. Restart the dead container through the framework contract, then
  //    the survivors directly; StartContainer hands every one the restore
  //    id and the new epoch.
  const Status st = scheduler_->OnContainerDead(topology_->name(), dead);
  if (!st.ok()) {
    HLOG(ERROR) << "checkpoint recovery of container " << dead
                << " failed: " << st.ToString();
  }
  const packing::PackingPlan plan = current_packing_plan();
  for (const ContainerId id : survivors) {
    const packing::ContainerPlan* c = plan.FindContainer(id);
    if (c == nullptr) continue;
    const Status restart = StartContainer(*c);
    if (!restart.ok()) {
      HLOG(ERROR) << "checkpoint recovery: restart of survivor " << id
                  << " failed: " << restart.ToString();
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_restore_ckpt_ = 0;
  }
  checkpoint_restores_->Increment();
}

int64_t LocalCluster::checkpoint_epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return checkpoint_epoch_;
}

Status LocalCluster::StartContainer(const packing::ContainerPlan& container) {
  std::shared_ptr<const proto::PhysicalPlan> plan = physical_plan();
  if (plan == nullptr) {
    return Status::FailedPrecondition("no physical plan installed");
  }
  auto live = std::make_unique<Container>(container, plan, merged_config_,
                                          &transport_, clock_);
  {
    // A container replacing a hard-killed one is a recovered incarnation:
    // its SMGR announces recovery on registration (clears any throttle ref
    // the dead predecessor stranded on survivors).
    std::lock_guard<std::mutex> lock(mutex_);
    const bool recovering = failed_containers_.erase(container.id) > 0;
    if (recovering) {
      live->MarkRecovering();
    }
    // Flight recorder: like the span ring, the journal is keyed by
    // container id and kept across restarts, so a recovered incarnation's
    // events land next to its predecessor's.
    if (journal_ring_capacity_ > 0) {
      auto& journal = journals_[container.id];
      if (journal == nullptr) {
        journal = std::make_unique<observability::EventJournal>(
            journal_ring_capacity_);
      }
      live->set_journal(journal.get());
      journal->Record(observability::JournalEventType::kContainerStart,
                      /*origin=*/container.id, /*task=*/-1,
                      clock_->NowNanos(),
                      /*arg0=*/static_cast<int64_t>(container.instances.size()),
                      /*arg1=*/recovering ? 1 : 0);
    }
    // Checkpoint wiring: instances snapshot into (and restore from) the
    // cluster state tree. pending_restore_ckpt_ is nonzero only inside
    // RestoreFromCheckpoint's restart storm.
    if (checkpoint_coordinator_ != nullptr) {
      live->set_checkpoint_options(&state_, pending_restore_ckpt_,
                                   checkpoint_epoch_);
    }
    // Sampled tracing: hand the container its span ring. The ring is
    // keyed by container id and kept across restarts, so a recovered
    // incarnation's spans land next to its predecessor's.
    if (trace_sample_inverse_ > 0) {
      auto& collector = span_collectors_[container.id];
      if (collector == nullptr) {
        collector = std::make_unique<observability::SpanCollector>(
            trace_ring_capacity_);
      }
      live->set_span_collector(collector.get());
    }
  }
  // TMaster subscription: this container's collection rounds flush into
  // the topology-wide metrics cache alongside any test-attached sinks.
  if (metrics_cache_ != nullptr) {
    live->metrics_manager()->AddSink(metrics_cache_);
  }
  // Every collection round pulses the cluster-wide condvar, which is what
  // WaitForCounter parks on, heartbeats to the TMaster (this tick IS the
  // liveness signal the monitor watches), and forwards the container's
  // backpressure state on change — this is how local SMGR episodes reach
  // the topology status in the state tree (§IV-C). (The container outlives
  // its listener: Stop() halts the housekeeping loop before the container
  // is destroyed; Kill() stops every container before the TMaster.)
  Container* raw = live.get();
  const ContainerId container_id = container.id;
  auto last_bp = std::make_shared<int64_t>(0);
  live->metrics_manager()->AddCollectListener(
      [this, raw, container_id, last_bp] {
        const int64_t bp = raw->SmgrGauge("smgr.backpressure.active");
        if (bp != *last_bp) {
          *last_bp = bp;
          if (tmaster_ != nullptr) {
            tmaster_->ReportBackpressure(container_id, bp != 0).ok();
          }
        }
        if (tmaster_ != nullptr) {
          tmaster_->RecordHeartbeat(container_id).ok();
        }
        metrics_cv_.notify_all();
      });
  if (tmaster_ != nullptr) {
    // Seed liveness before the first heartbeat so a slow boot is not a
    // death (and a recovering container stays dead until it truly beats).
    tmaster_->ExpectContainer(container.id).ok();
  }
  if (tasklet_pool_ != nullptr) live->set_tasklet_pool(tasklet_pool_.get());
  HERON_RETURN_NOT_OK(step_mode_ ? live->StartStepMode() : live->Start());
  std::lock_guard<std::mutex> lock(mutex_);
  containers_[container.id] = std::move(live);
  return Status::OK();
}

Status LocalCluster::StopContainer(ContainerId id) {
  std::unique_ptr<Container> victim;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = containers_.find(id);
    if (it == containers_.end()) {
      return Status::NotFound(StrFormat("container %d not live", id));
    }
    victim = std::move(it->second);
    containers_.erase(it);
  }
  if (tmaster_ != nullptr) {
    // Graceful stop: an orderly departure must never look like a death.
    tmaster_->ForgetContainer(id).ok();
  }
  victim->Stop();
  return Status::OK();
}

int LocalCluster::failovers_handled() const {
  return framework_scheduler_ != nullptr
             ? framework_scheduler_->failovers_handled()
             : 0;
}

int LocalCluster::chaos_kills() const {
  // Atomic: the monitor thread increments while tests poll for the chaos
  // schedule to complete.
  return chaos_kills_.load(std::memory_order_relaxed);
}

bool LocalCluster::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

std::shared_ptr<const proto::PhysicalPlan> LocalCluster::physical_plan()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return physical_plan_;
}

packing::PackingPlan LocalCluster::current_packing_plan() const {
  auto plan = physical_plan();
  return plan == nullptr ? packing::PackingPlan() : plan->packing();
}

Container* LocalCluster::GetContainer(ContainerId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = containers_.find(id);
  return it == containers_.end() ? nullptr : it->second.get();
}

int LocalCluster::num_live_containers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(containers_.size());
}

uint64_t LocalCluster::SumCounter(const std::string& name,
                                  const std::string& component) const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [_, container] : containers_) {
    total += container->SumInstanceCounter(name, component);
  }
  return total;
}

int64_t LocalCluster::SumInstanceGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const auto& [_, container] : containers_) {
    total += container->SumInstanceGauge(name);
  }
  return total;
}

int64_t LocalCluster::SumSmgrGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const auto& [_, container] : containers_) {
    total += container->SmgrGauge(name);
  }
  return total;
}

uint64_t LocalCluster::SumSmgrCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [_, container] : containers_) {
    total += container->SmgrCounter(name);
  }
  return total;
}

Status LocalCluster::WaitForCounter(const std::string& name, uint64_t target,
                                    int64_t timeout_ms) {
  const int64_t deadline = clock_->NowNanos() + timeout_ms * 1000000;
  std::unique_lock<std::mutex> lock(metrics_cv_mutex_);
  while (SumCounter(name) < target) {
    const int64_t remaining = deadline - clock_->NowNanos();
    if (remaining <= 0) {
      return Status::Timeout(StrFormat(
          "counter '%s' reached %llu of %llu within %lld ms", name.c_str(),
          static_cast<unsigned long long>(SumCounter(name)),
          static_cast<unsigned long long>(target),
          static_cast<long long>(timeout_ms)));
    }
    // Park until the next metrics-collection pulse. The 50 ms cap bounds
    // the wait when no container is collecting (e.g. all stopped).
    metrics_cv_.wait_for(
        lock, std::chrono::nanoseconds(
                  std::min<int64_t>(remaining, 50000000)));
  }
  return Status::OK();
}

observability::SpanCollector* LocalCluster::span_collector(
    ContainerId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = span_collectors_.find(id);
  return it == span_collectors_.end() ? nullptr : it->second.get();
}

std::vector<observability::Span> LocalCluster::CollectSpans() const {
  std::vector<observability::Span> merged;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [_, collector] : span_collectors_) {
      auto spans = collector->Snapshot();
      merged.insert(merged.end(), spans.begin(), spans.end());
    }
  }
  // Deterministic merge order: timestamp, then trace id, then stage. Under
  // a SimClock two runs of the same step schedule produce byte-identical
  // sequences (the determinism the two-universe test asserts).
  std::sort(merged.begin(), merged.end(),
            [](const observability::Span& a, const observability::Span& b) {
              if (a.at_nanos != b.at_nanos) return a.at_nanos < b.at_nanos;
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              return static_cast<uint8_t>(a.stage) <
                     static_cast<uint8_t>(b.stage);
            });
  return merged;
}

uint64_t LocalCluster::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [_, collector] : span_collectors_) {
    total += collector->dropped();
  }
  return total;
}

observability::EventJournal* LocalCluster::journal(ContainerId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = journals_.find(id);
  return it == journals_.end() ? nullptr : it->second.get();
}

std::vector<observability::JournalEvent> LocalCluster::CollectJournal()
    const {
  std::vector<observability::JournalEvent> merged;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [_, journal] : journals_) {
      auto events = journal->Snapshot();
      merged.insert(merged.end(), events.begin(), events.end());
    }
  }
  if (control_journal_ != nullptr) {
    auto events = control_journal_->Snapshot();
    merged.insert(merged.end(), events.begin(), events.end());
  }
  // Deterministic merge: the pre-order (journals_ is id-sorted, control
  // plane last) is fixed and the stable sort keys on (timestamp, origin,
  // seq) — under a SimClock two runs of the same step schedule produce
  // byte-identical streams (the two-universe journal test).
  std::stable_sort(
      merged.begin(), merged.end(),
      [](const observability::JournalEvent& a,
         const observability::JournalEvent& b) {
        if (a.at_nanos != b.at_nanos) return a.at_nanos < b.at_nanos;
        if (a.origin != b.origin) return a.origin < b.origin;
        return a.seq < b.seq;
      });
  return merged;
}

uint64_t LocalCluster::journal_dropped() const {
  uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [_, journal] : journals_) {
      total += journal->dropped();
    }
  }
  if (control_journal_ != nullptr) total += control_journal_->dropped();
  return total;
}

std::string LocalCluster::BuildTimelineJson() const {
  observability::TimelineInput input;
  input.spans = CollectSpans();
  input.events = CollectJournal();
  if (slice_ring_ != nullptr) {
    input.slices = slice_ring_->Snapshot();
  }
  if (tasklet_pool_ != nullptr) {
    input.tasklet_names = tasklet_pool_->TaskletNames();
  }
  return observability::BuildChromeTrace(input);
}

Status LocalCluster::DumpTimeline(const std::string& path) const {
  return observability::WriteFile(path, BuildTimelineJson());
}

observability::TopologySnapshot LocalCluster::BuildSnapshot() const {
  observability::TopologySnapshot snap;
  snap.captured_at_nanos = clock_->NowNanos();
  if (topology_ != nullptr) snap.topology = topology_->name();

  // Physical plan.
  auto plan = physical_plan();
  if (plan != nullptr) {
    snap.num_containers = plan->num_containers();
    for (const TaskId task : plan->all_tasks()) {
      observability::TopologySnapshot::TaskEntry entry;
      entry.task = task;
      const api::ComponentDef* def = plan->ComponentOfTask(task);
      if (def != nullptr) entry.component = def->id;
      auto container = plan->ContainerOfTask(task);
      if (container.ok()) entry.container = *container;
      snap.tasks.push_back(std::move(entry));
    }
  }

  // Liveness.
  if (tmaster_ != nullptr) {
    auto dead = tmaster_->DeadContainers();
    if (dead.ok()) snap.dead_containers = *dead;
  }
  snap.restarts_total = recovery_restarts_->value();

  // MetricsCache rollups.
  if (metrics_cache_ != nullptr) {
    snap.topology_rollup = metrics_cache_->TopologyRollup();
    snap.components = metrics_cache_->ComponentRollups();
  }

  // Sampled tuple-path tracing.
  const std::vector<observability::Span> spans = CollectSpans();
  snap.trace = observability::SummarizeTraces(
      observability::BuildTraceBreakdown(spans), spans.size(),
      dropped_spans());

  // Flight recorder.
  uint64_t journal_recorded = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [_, journal] : journals_) {
      journal_recorded += journal->total_recorded();
    }
  }
  if (control_journal_ != nullptr) {
    journal_recorded += control_journal_->total_recorded();
  }
  snap.journal = observability::SummarizeJournal(
      CollectJournal(), journal_recorded, journal_dropped());

  // Cooperative-scheduler profiler.
  if (tasklet_pool_ != nullptr) {
    const TaskletPool::SchedulerStats stats =
        tasklet_pool_->CollectStats(clock_->NowNanos());
    snap.scheduler.workers = stats.workers;
    snap.scheduler.tasklets = stats.tasklets;
    snap.scheduler.slices = stats.slices;
    snap.scheduler.overruns = stats.overruns;
    snap.scheduler.occupancy = stats.occupancy();
    snap.scheduler.busy_ms = stats.busy_nanos / 1e6;
    snap.scheduler.wall_ms = stats.wall_nanos / 1e6;
  }
  if (slice_ring_ != nullptr) {
    const uint64_t recorded = slice_ring_->total_recorded();
    const uint64_t dropped = slice_ring_->dropped();
    snap.scheduler.slice_events = recorded - dropped;
    snap.scheduler.dropped_slices = dropped;
  }
  return snap;
}

uint64_t LocalCluster::CompleteLatencyQuantile(
    double q, const std::string& component) const {
  // Merge is approximate: take the max of per-instance quantiles weighted
  // by presence; adequate for shape-level assertions.
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t worst = 0;
  for (const auto& [_, container] : containers_) {
    for (const auto& instance : container->instances()) {
      if (!component.empty() && instance->component() != component) continue;
      auto* h = const_cast<instance::HeronInstance*>(instance.get())
                    ->metrics()
                    ->GetHistogram("instance.complete.latency.ns");
      if (h->count() > 0) {
        worst = std::max(worst, h->Quantile(q));
      }
    }
  }
  return worst;
}

}  // namespace runtime
}  // namespace heron
