#!/usr/bin/env python3
"""Perf-regression gate over the figures' BENCH-JSON archives.

Every figure binary writes ``BENCH_<name>.json`` — a ``{scenario ->
{metric -> value}}`` map (see bench/figures/fig_util.h). CI archives them
per commit; this script diffs a fresh set against the checked-in
baselines in ``bench/baselines/`` and fails the lane when any figure's
*headline* metric regresses beyond the tolerance.

Headline, not every cell: a figure is gated on one declared metric, and
only metrics that are reproducible deserve a 15% gate. Two kinds
qualify: anything from the simulated figures (fixed seeds, the archives
are byte-identical across runs — EXPERIMENTS.md "run-to-run variation of
the simulated series is zero by construction"), and live *ratio* metrics
whose numerator and denominator share the same process minutes, so host
weather cancels (the tail figure's throughput ratio sits at 1.00 across
runs). Live absolute rates and live max statistics (a smoke run's
p99.99, a microbench's tuples/sec) swing 20-50% on a noisy runner and
would make the lane flap; those stay *advisory* — reported in the diff,
never failing. Their enforcement lives where variance can be handled:
the figure binaries' own full-mode verdict exits (tail_latency_modes
re-runs interleaved rounds before judging its 5x bar;
transport_zero_copy enforces its 5x floor in-process). The HEADLINES
table names the gated metric per figure with its direction; figures
absent from the table get the name-based direction guess over every
metric, advisory only.

Usage:
  scripts/bench_compare.py --baseline bench/baselines --current build/bench
  scripts/bench_compare.py --current build/bench --tolerance 0.10 \
      --report /tmp/bench_diff.md
  scripts/bench_compare.py --self-test   # prove the gate can fail

Exit codes: 0 = no gated regression, 1 = regression (or self-test
failure), 2 = usage/IO error.
"""

import argparse
import glob
import json
import os
import sys

# bench name -> (scenario, metric, direction). direction "higher" means a
# drop beyond tolerance regresses; "lower" means a rise does.
HEADLINES = {
    # Live figure: the only run-stable ratio is equal-throughput (coop /
    # thread, both clocked against the same offered load). The tail win
    # itself is a max statistic of one short round in smoke mode (it
    # swings 4x-17x run to run) — the full-mode binary enforces the >=5x
    # bar itself over interleaved rounds, so here it stays advisory.
    "tail_latency_modes": ("verdict", "throughput_ratio", "higher"),
    # Live figure: dark/lit throughput ratio for the always-on flight
    # recorder + profiler layer. The full-mode binary enforces the 1.05x
    # ceiling itself over interleaved best-of-N rounds.
    "observability_overhead": ("verdict", "overhead_ratio", "lower"),
    # Everything below is simulated (fixed seeds, deterministic archive):
    # the paper-verdict ratio of each figure.
    "fig02_03_throughput_latency_acks": ("parallelism_50", "tput_ratio",
                                         "higher"),
    "fig04_throughput_noacks": ("parallelism_50", "tput_ratio", "higher"),
    "fig05_06_smgr_opts_noacks": ("parallelism_100", "tput_ratio",
                                  "higher"),
    "fig07_08_smgr_opts_acks": ("parallelism_100", "tput_ratio", "higher"),
    "fig09_latency_opts": ("parallelism_100", "latency_ratio", "higher"),
    # Knee of the pending sweep: the figure's story is that throughput
    # saturates here while latency keeps rising.
    "fig10_11_max_spout_pending": ("p100_pending_10000",
                                   "tput_mtuples_min", "higher"),
    # Paper-default drain point of the cache sweep.
    "fig12_13_cache_drain": ("p100_drain_10", "tput_mtuples_min",
                             "higher"),
    # Cluster-wide backpressure must keep delivering under a 4x-slowed
    # container (the paper's central robustness claim).
    "backpressure_slow_container": ("slowdown_4_cluster",
                                    "tput_mtuples_min", "higher"),
    # Snapshot recovery work must stay bounded by rate x interval.
    "recovery_checkpoint_interval": ("interval_400", "snapshot_work",
                                     "lower"),
    # The auto-tuner must hold its SLO's throughput.
    "autotune_v_b": ("slo_60ms", "tput_mtuples_min", "higher"),
}

FALLBACK_LOWER_HINTS = ("latency", "_ms", "_ns", "_us", "overhead", "stall")
FALLBACK_HIGHER_HINTS = ("throughput", "per_sec", "per_s", "speedup",
                         "ratio", "win", "mhops", "acks")


def load_bench(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("bench"), doc.get("results", {})


def collect(directory):
    out = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            name, results = load_bench(path)
        except (OSError, json.JSONDecodeError) as err:
            print(f"error: unreadable bench json {path}: {err}",
                  file=sys.stderr)
            sys.exit(2)
        if name:
            out[name] = results
    return out


def guess_direction(metric):
    m = metric.lower()
    if any(h in m for h in FALLBACK_LOWER_HINTS):
        return "lower"
    if any(h in m for h in FALLBACK_HIGHER_HINTS):
        return "higher"
    return None


def relative_change(baseline, current, direction):
    """Signed regression fraction: positive = worse by that fraction."""
    if baseline == 0:
        return 0.0
    if direction == "higher":
        return (baseline - current) / abs(baseline)
    return (current - baseline) / abs(baseline)


def compare(baselines, currents, tolerance):
    """Returns (rows, failures). Row: (bench, scenario, metric, base,
    cur, regression_fraction, gated, failed)."""
    rows = []
    failures = []
    for bench, base_results in sorted(baselines.items()):
        cur_results = currents.get(bench)
        if cur_results is None:
            # A figure that stopped producing its archive is itself a
            # regression of the CI contract.
            failures.append((bench, "<missing>", "<missing>"))
            rows.append((bench, "<missing BENCH json>", "", None, None,
                         None, True, True))
            continue
        headline = HEADLINES.get(bench)
        for scenario, metrics in sorted(base_results.items()):
            for metric, base_value in sorted(metrics.items()):
                cur_value = cur_results.get(scenario, {}).get(metric)
                gated = headline is not None and (scenario,
                                                  metric) == headline[:2]
                if cur_value is None:
                    if gated:
                        failures.append((bench, scenario, metric))
                    rows.append((bench, scenario, metric, base_value, None,
                                 None, gated, gated))
                    continue
                direction = (headline[2] if gated
                             else guess_direction(metric))
                if direction is None:
                    continue
                change = relative_change(base_value, cur_value, direction)
                failed = gated and change > tolerance
                if failed:
                    failures.append((bench, scenario, metric))
                rows.append((bench, scenario, metric, base_value, cur_value,
                             change, gated, failed))
    return rows, failures


def format_report(rows, failures, tolerance):
    lines = ["# Bench regression report", ""]
    lines.append(f"Tolerance: {tolerance:.0%} on each figure's headline "
                 "metric. Non-headline rows are advisory.")
    lines.append("")
    lines.append("| bench | scenario | metric | baseline | current | "
                 "change | gated | status |")
    lines.append("|---|---|---|---|---|---|---|---|")
    for bench, scenario, metric, base, cur, change, gated, failed in rows:
        fmt = lambda v: "-" if v is None else f"{v:.4g}"
        delta = "-" if change is None else f"{-change:+.1%}"
        status = "FAIL" if failed else ("ok" if gated else "info")
        lines.append(f"| {bench} | {scenario} | {metric} | {fmt(base)} | "
                     f"{fmt(cur)} | {delta} | {'yes' if gated else 'no'} | "
                     f"{status} |")
    lines.append("")
    if failures:
        lines.append(f"**{len(failures)} gated regression(s):** " +
                     ", ".join(f"{b}/{s}/{m}" for b, s, m in failures))
    else:
        lines.append("No gated regressions.")
    lines.append("")
    return "\n".join(lines)


def self_test():
    """Injects a 20% degradation into every headline direction and checks
    the gate trips — proof the lane can actually fail."""
    baseline = {
        "tail_latency_modes": {"verdict": {"tail_win_ratio": 8.0,
                                           "throughput_ratio": 1.0}},
        "fig09_latency_opts": {"parallelism_100": {"latency_ratio": 3.3}},
    }
    # 20% worse on a higher-is-better headline = value drops 20%.
    degraded = {
        "tail_latency_modes": {"verdict": {"tail_win_ratio": 8.0,
                                           "throughput_ratio": 0.8}},
        "fig09_latency_opts": {"parallelism_100": {"latency_ratio": 2.64}},
    }
    rows, failures = compare(baseline, degraded, tolerance=0.15)
    if len(failures) != 2:
        print(f"self-test FAILED: expected 2 gated regressions, got "
              f"{failures}", file=sys.stderr)
        return 1
    # Within tolerance must pass: a 10% dip on a 15% gate.
    mild = {
        "tail_latency_modes": {"verdict": {"tail_win_ratio": 8.0,
                                           "throughput_ratio": 0.9}},
        "fig09_latency_opts": {"parallelism_100": {"latency_ratio": 2.97}},
    }
    rows, failures = compare(baseline, mild, tolerance=0.15)
    if failures:
        print(f"self-test FAILED: mild dip tripped the gate: {failures}",
              file=sys.stderr)
        return 1
    # A vanished archive must fail.
    rows, failures = compare(baseline, {"fig09_latency_opts":
                                        baseline["fig09_latency_opts"]},
                             tolerance=0.15)
    if not failures:
        print("self-test FAILED: missing BENCH json not flagged",
              file=sys.stderr)
        return 1
    print("self-test passed: 20% injected regression trips the gate, a "
          "10% dip does not, a missing archive fails.")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="bench/baselines",
                        help="directory of checked-in BENCH_*.json")
    parser.add_argument("--current", default=".",
                        help="directory of freshly produced BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed headline regression fraction "
                             "(default 0.15)")
    parser.add_argument("--report", default=None,
                        help="write a markdown diff report here")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate trips on an injected 20%% "
                             "regression")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())

    if not os.path.isdir(args.baseline):
        print(f"error: baseline directory {args.baseline} not found",
              file=sys.stderr)
        sys.exit(2)
    baselines = collect(args.baseline)
    if not baselines:
        print(f"error: no BENCH_*.json under {args.baseline}",
              file=sys.stderr)
        sys.exit(2)
    currents = collect(args.current)

    rows, failures = compare(baselines, currents, args.tolerance)
    report = format_report(rows, failures, args.tolerance)
    print(report)
    if args.report:
        with open(args.report, "w") as f:
            f.write(report)

    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
