#include "frameworks/sim_cluster.h"

#include "common/strings.h"

namespace heron {
namespace frameworks {

NodeId SimCluster::AddNode(const Resource& capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  nodes_.push_back({capacity, Resource()});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void SimCluster::AddNodes(int count, const Resource& capacity) {
  for (int i = 0; i < count; ++i) AddNode(capacity);
}

Result<AllocationId> SimCluster::Allocate(const Resource& demand) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t n = 0; n < nodes_.size(); ++n) {
    const Resource free = nodes_[n].capacity - nodes_[n].used;
    if (free.Fits(demand)) {
      nodes_[n].used += demand;
      const AllocationId id = next_allocation_++;
      allocations_[id] = {static_cast<NodeId>(n), demand};
      return id;
    }
  }
  return Status::ResourceExhausted(
      StrFormat("no node can host %s", demand.ToString().c_str()));
}

Status SimCluster::Release(AllocationId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = allocations_.find(id);
  if (it == allocations_.end()) {
    return Status::NotFound(StrFormat(
        "allocation %llu not live", static_cast<unsigned long long>(id)));
  }
  nodes_[static_cast<size_t>(it->second.node)].used -= it->second.demand;
  allocations_.erase(it);
  return Status::OK();
}

Result<NodeId> SimCluster::NodeOf(AllocationId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = allocations_.find(id);
  if (it == allocations_.end()) {
    return Status::NotFound(StrFormat(
        "allocation %llu not live", static_cast<unsigned long long>(id)));
  }
  return it->second.node;
}

int SimCluster::num_nodes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(nodes_.size());
}

size_t SimCluster::num_allocations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocations_.size();
}

Resource SimCluster::TotalCapacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Resource total;
  for (const auto& n : nodes_) total += n.capacity;
  return total;
}

Resource SimCluster::TotalUsed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Resource total;
  for (const auto& n : nodes_) total += n.used;
  return total;
}

Result<Resource> SimCluster::FreeOn(NodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (node < 0 || static_cast<size_t>(node) >= nodes_.size()) {
    return Status::NotFound(StrFormat("no node %d", node));
  }
  return nodes_[static_cast<size_t>(node)].capacity -
         nodes_[static_cast<size_t>(node)].used;
}

}  // namespace frameworks
}  // namespace heron
