#include "ipc/channel.h"

#include <gtest/gtest.h>

#include <thread>

namespace heron {
namespace ipc {
namespace {

TEST(ChannelTest, FifoOrder) {
  Channel<int> channel(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(channel.TrySend(int(i)).ok());
  }
  for (int i = 0; i < 5; ++i) {
    auto v = channel.TryRecv();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(channel.TryRecv().has_value());
}

TEST(ChannelTest, TrySendFullKeepsItem) {
  Channel<std::string> channel(1);
  ASSERT_TRUE(channel.TrySend(std::string("first")).ok());
  std::string second = "second";
  const Status st = channel.TrySend(std::move(second));
  EXPECT_TRUE(st.IsResourceExhausted());
  EXPECT_EQ(second, "second");  // Not consumed on failure.
  EXPECT_EQ(channel.size(), 1u);
}

TEST(ChannelTest, CloseUnblocksAndDrains) {
  Channel<int> channel(8);
  ASSERT_TRUE(channel.TrySend(1).ok());
  ASSERT_TRUE(channel.TrySend(2).ok());
  channel.Close();
  EXPECT_TRUE(channel.TrySend(3).IsCancelled());
  // Remaining items drain before end-of-stream.
  EXPECT_EQ(*channel.Recv(), 1);
  EXPECT_EQ(*channel.Recv(), 2);
  EXPECT_FALSE(channel.Recv().has_value());
  EXPECT_TRUE(channel.closed());
}

TEST(ChannelTest, RecvForTimesOut) {
  Channel<int> channel(8);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(channel.RecvFor(std::chrono::milliseconds(20)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(15));
}

TEST(ChannelTest, BlockingSendAppliesBackpressure) {
  Channel<int> channel(2);
  ASSERT_TRUE(channel.Send(1).ok());
  ASSERT_TRUE(channel.Send(2).ok());
  std::atomic<bool> third_sent{false};
  std::thread producer([&] {
    channel.Send(3).ok();  // Blocks until a slot frees.
    third_sent.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_sent.load());
  EXPECT_EQ(*channel.Recv(), 1);
  producer.join();
  EXPECT_TRUE(third_sent.load());
}

TEST(ChannelTest, CrossThreadThroughputIsLossless) {
  Channel<uint64_t> channel(64);
  constexpr uint64_t kItems = 50000;
  uint64_t sum = 0;
  std::thread consumer([&] {
    while (auto v = channel.Recv()) sum += *v;
  });
  for (uint64_t i = 1; i <= kItems; ++i) {
    ASSERT_TRUE(channel.Send(uint64_t(i)).ok());
  }
  channel.Close();
  consumer.join();
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
  EXPECT_EQ(channel.total_enqueued(), kItems);
}

TEST(ChannelTest, TryRecvDistinguishesEmptyFromClosed) {
  Channel<int> channel(8);
  RecvState state;

  // Open and empty.
  EXPECT_FALSE(channel.TryRecv(&state).has_value());
  EXPECT_EQ(state, RecvState::kEmpty);

  // Open with an item.
  ASSERT_TRUE(channel.TrySend(42).ok());
  auto v = channel.TryRecv(&state);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(state, RecvState::kItem);

  // Closed but not yet drained: items still come out as kItem.
  ASSERT_TRUE(channel.TrySend(7).ok());
  channel.Close();
  v = channel.TryRecv(&state);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(state, RecvState::kItem);

  // Closed and drained: end of stream, not "try again".
  EXPECT_FALSE(channel.TryRecv(&state).has_value());
  EXPECT_EQ(state, RecvState::kClosed);
}

TEST(ChannelTest, BoundWakeupSeesSendsAndClose) {
  Channel<int> channel(8);
  Wakeup wakeup;
  channel.BindWakeup(&wakeup);

  EXPECT_FALSE(wakeup.Poll());
  ASSERT_TRUE(channel.TrySend(1).ok());
  EXPECT_TRUE(wakeup.Poll());   // Send notified; Poll consumes the latch.
  EXPECT_FALSE(wakeup.Poll());  // Coalesced: one pending bit, not a queue.

  ASSERT_TRUE(channel.TrySend(2).ok());
  ASSERT_TRUE(channel.TrySend(3).ok());
  EXPECT_TRUE(wakeup.Poll());  // N sends → one wakeup.
  EXPECT_FALSE(wakeup.Poll());

  channel.Close();
  EXPECT_TRUE(wakeup.Poll());  // Close must wake a parked consumer.

  channel.BindWakeup(nullptr);  // Unbind: no further notifications.
}

TEST(ChannelTest, MoveOnlyPayloads) {
  Channel<std::unique_ptr<int>> channel(4);
  ASSERT_TRUE(channel.Send(std::make_unique<int>(7)).ok());
  auto v = channel.Recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

}  // namespace
}  // namespace ipc
}  // namespace heron
