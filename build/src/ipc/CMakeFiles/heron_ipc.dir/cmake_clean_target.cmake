file(REMOVE_RECURSE
  "libheron_ipc.a"
)
