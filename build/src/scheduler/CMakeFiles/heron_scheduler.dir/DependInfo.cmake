
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scheduler/framework_scheduler.cc" "src/scheduler/CMakeFiles/heron_scheduler.dir/framework_scheduler.cc.o" "gcc" "src/scheduler/CMakeFiles/heron_scheduler.dir/framework_scheduler.cc.o.d"
  "/root/repo/src/scheduler/local_scheduler.cc" "src/scheduler/CMakeFiles/heron_scheduler.dir/local_scheduler.cc.o" "gcc" "src/scheduler/CMakeFiles/heron_scheduler.dir/local_scheduler.cc.o.d"
  "/root/repo/src/scheduler/scheduler.cc" "src/scheduler/CMakeFiles/heron_scheduler.dir/scheduler.cc.o" "gcc" "src/scheduler/CMakeFiles/heron_scheduler.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/heron_common.dir/DependInfo.cmake"
  "/root/repo/build/src/packing/CMakeFiles/heron_packing.dir/DependInfo.cmake"
  "/root/repo/build/src/frameworks/CMakeFiles/heron_frameworks.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/heron_api.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/heron_serde.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
