file(REMOVE_RECURSE
  "CMakeFiles/heron_runtime.dir/container.cc.o"
  "CMakeFiles/heron_runtime.dir/container.cc.o.d"
  "CMakeFiles/heron_runtime.dir/local_cluster.cc.o"
  "CMakeFiles/heron_runtime.dir/local_cluster.cc.o.d"
  "libheron_runtime.a"
  "libheron_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
