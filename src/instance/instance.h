#ifndef HERON_INSTANCE_INSTANCE_H_
#define HERON_INSTANCE_INSTANCE_H_

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "api/bolt.h"
#include "api/context.h"
#include "api/spout.h"
#include "instance/outbox.h"
#include "common/clock.h"
#include "common/random.h"
#include "metrics/metrics.h"
#include "observability/trace.h"
#include "proto/physical_plan.h"
#include "runtime/event_loop.h"
#include "runtime/tasklet.h"
#include "smgr/stream_manager.h"
#include "smgr/transport.h"
#include "statemgr/state_manager.h"

namespace heron {
namespace instance {

/// \brief A Heron Instance: one spout or bolt task on its own execution
/// unit (§II: spouts and bolts "run on their own JVM"; §III-A: "every
/// spout and bolt run as separate Heron Instances" for isolation).
///
/// The instance shares nothing with its peers: it constructs its own user
/// object from the component factory, talks to the world only through the
/// serialized instance ↔ SMGR wire, and runs on its own reactor
/// (runtime::EventLoop) — the inbound channel is a registered source, the
/// spout's NextTuple round is an idle worker, and user Open/Prepare run as
/// startup hooks on the loop thread. Spouts additionally enforce the §V-B
/// flow-control knob `max_spout_pending` ("the maximum number of tuples
/// that can be pending on a spout task at any given time") and pause on
/// the local SMGR's back-pressure flag. StartStepMode() arms the reactor
/// without a thread for deterministic RunOnce() tests.
class HeronInstance {
 public:
  struct Options {
    TaskId task = -1;
    /// Merged topology + cluster configuration handed to user code.
    Config config;
    bool acking = false;
    /// Maximum outstanding (unacked) spout roots; 0 = unbounded. Only
    /// meaningful with acking.
    int64_t max_spout_pending = 0;
    size_t inbound_capacity = 1 << 16;
    size_t emit_batch_tuples = 64;
    uint64_t seed = 7;
    /// Sampled tuple-path tracing: every `trace_sample_inverse`-th spout
    /// emission carries a trace id (0 = tracing disabled). Bolts ignore
    /// the knob and record spans for any tuple arriving traced.
    int64_t trace_sample_inverse = 0;
    /// The container's span sink; nullptr disables recording entirely
    /// (the hot path never even peeks trace ids then).
    observability::SpanCollector* span_collector = nullptr;
    /// Snapshot target for checkpoint barriers; nullptr disables the
    /// checkpoint path entirely (barrier envelopes are then dropped).
    statemgr::IStateManager* checkpoint_state = nullptr;
    /// When nonzero, restore this checkpoint's snapshot for our task from
    /// `checkpoint_state` right after user Open/Prepare (recovery).
    uint64_t restore_checkpoint = 0;
    /// Incarnation counter bumped on every cluster-wide restore; acks
    /// from a previous epoch that still reach us are counted as stale
    /// (`instance.rootevent.stale`) instead of completing fresh roots.
    int64_t checkpoint_epoch = 0;
  };

  /// \param local_smgr  the container's SMGR, for the back-pressure flag
  ///        (may be null in unit tests; spouts then never pause).
  HeronInstance(const Options& options,
                std::shared_ptr<const proto::PhysicalPlan> plan,
                smgr::Transport* transport, const Clock* clock,
                smgr::StreamManager* local_smgr);
  ~HeronInstance();

  HeronInstance(const HeronInstance&) = delete;
  HeronInstance& operator=(const HeronInstance&) = delete;

  /// Creates the user spout/bolt, registers the inbound channel, spawns
  /// the executor thread.
  Status Start();
  /// Step-mode Start: full wiring, no thread — drive loop()->RunOnce().
  Status StartStepMode();
  /// Cooperative Start: full wiring, then hands the reactor to `pool` as a
  /// tasklet instead of spawning a thread. The outbox switches to
  /// non-blocking delivery (a tasklet must never block its pool worker)
  /// and a backlog-pump idle worker retries parked envelopes.
  Status StartCooperative(runtime::TaskletPool* pool);
  /// Closes the channel, joins, runs user Close/Cleanup. Idempotent.
  void Stop();
  /// Hard-kill (fault injection): deregisters and halts the reactor. The
  /// outbox flush and user Close/Cleanup never run — the process "died".
  /// In-flight roots this spout tracked are lost with it; their trees time
  /// out at the ack tracker and replay from the restarted incarnation.
  void Kill();

  /// The reactor this instance runs on.
  runtime::EventLoop* loop() { return &loop_; }

  smgr::EnvelopeChannel* inbound() { return &inbound_; }
  metrics::MetricsRegistry* metrics() { return &metrics_; }
  TaskId task() const { return options_.task; }
  const ComponentId& component() const { return component_; }

  /// Outstanding spout roots (acking mode); for tests and flow control.
  int64_t pending_count() const {
    return pending_count_.load(std::memory_order_relaxed);
  }

 private:
  class SpoutCollector;
  class BoltCollector;

  /// Shared Start/StartStepMode body: user objects, transport, reactor.
  Status Prepare();
  /// Spout idle worker: one NextTuple round; true when tuples were emitted.
  bool SpoutStep();
  /// Inbound envelope dispatch (root events for spouts, batches for bolts).
  void HandleEnvelope(proto::Envelope env);
  void HandleRootEvent(const serde::Buffer& payload);
  /// Executes a routed batch — unless barrier alignment is buffering its
  /// channel, in which case the payload is moved into `aligned_buffer_`
  /// and false is returned (the caller must not recycle it).
  bool ProcessRoutedBatch(serde::Buffer& payload);

  // -- Checkpointing (aligned barriers; ROADMAP item 2) --------------------

  /// Dispatches a CheckpointBarrierMsg: trigger (spouts), in-stream
  /// barrier (bolt alignment) or abort.
  void HandleBarrier(const serde::Buffer& payload);
  /// Flushes the outbox (pre-barrier tuples first), snapshots user state
  /// (empty marker for stateless tasks — completion counts every task)
  /// into the state tree, and forwards the barrier to the local SMGR.
  void TakeCheckpoint(uint64_t ckpt_id);
  /// Sends the fan-out barrier request (origin = this task) to the local
  /// SMGR, behind everything the outbox already shipped.
  void ForwardBarrier(uint64_t ckpt_id);
  /// Drops alignment state and executes any buffered post-barrier batches
  /// (the data is still at-least-once valid; only the snapshot dies).
  void AbortAlignment();
  /// Restores this task's snapshot of `options_.restore_checkpoint` (runs
  /// as a startup hook, after user Open/Prepare).
  void MaybeRestore();

  Options options_;
  std::shared_ptr<const proto::PhysicalPlan> plan_;
  smgr::Transport* transport_;
  const Clock* clock_;
  smgr::StreamManager* local_smgr_;

  ComponentId component_;
  ContainerId container_ = -1;
  bool is_spout_ = false;

  smgr::EnvelopeChannel inbound_;
  std::unique_ptr<Outbox> outbox_;
  std::unique_ptr<api::TopologyContext> context_;
  std::unique_ptr<api::ISpout> spout_;
  std::unique_ptr<api::IBolt> bolt_;
  /// Non-owning stateful views of spout_/bolt_ (null when the user object
  /// does not implement the stateful surface).
  api::IStatefulSpout* stateful_spout_ = nullptr;
  api::IStatefulBolt* stateful_bolt_ = nullptr;
  std::unique_ptr<SpoutCollector> spout_collector_;
  std::unique_ptr<BoltCollector> bolt_collector_;
  Random rng_;
  metrics::MetricsRegistry metrics_;

  /// Spout bookkeeping: root → (user message id, emit time).
  struct PendingRoot {
    int64_t message_id = 0;
    int64_t emit_time_nanos = 0;
    /// Sampled tracing: record kAckComplete when this root's tree ends.
    bool traced = false;
  };
  std::map<api::TupleKey, PendingRoot> pending_roots_;
  std::atomic<int64_t> pending_count_{0};
  /// Spout emission sequence for deterministic 1-in-N trace sampling.
  uint64_t emit_seq_ = 0;

  // Barrier alignment (bolts). A checkpoint is "in alignment" from the
  // first input channel's barrier until every upstream task's barrier has
  // arrived; batches from already-barriered channels are buffered so the
  // snapshot reflects exactly the pre-barrier prefix of every channel.
  std::set<TaskId> upstream_tasks_;   ///< All producer tasks feeding us.
  uint64_t aligning_ckpt_ = 0;        ///< 0 = no alignment in progress.
  uint64_t last_ckpt_done_ = 0;       ///< Completed or aborted; staleness.
  std::set<TaskId> barriered_;        ///< Channels whose barrier arrived.
  std::vector<serde::Buffer> aligned_buffer_;  ///< Post-barrier batches.

  runtime::EventLoop loop_;
  std::atomic<bool> running_{false};
  bool registered_ = false;
  bool started_ = false;

  // Cooperative mode: the pool driving loop_ (null in thread/step mode).
  runtime::TaskletPool* pool_ = nullptr;
  runtime::TaskletPool::Handle* pool_handle_ = nullptr;

  // Hot-path metric handles.
  metrics::Counter* emitted_;
  metrics::Counter* executed_;
  metrics::Counter* acked_;
  metrics::Counter* failed_;
  metrics::Counter* checkpoints_;
  metrics::Counter* checkpoint_aborts_;
  metrics::Counter* restores_;
  metrics::Counter* aligned_buffered_;
  metrics::Counter* stale_root_events_;
  metrics::Histogram* complete_latency_;
};

}  // namespace instance
}  // namespace heron

#endif  // HERON_INSTANCE_INSTANCE_H_
