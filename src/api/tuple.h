#ifndef HERON_API_TUPLE_H_
#define HERON_API_TUPLE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "api/fields.h"
#include "api/values.h"
#include "common/ids.h"

namespace heron {
namespace api {

/// Random 64-bit identity of a spout-emitted tuple tree; 0 means the tuple
/// is not tracked (acking disabled or unanchored emit).
using TupleKey = uint64_t;

/// \brief A data tuple as seen by bolt user code.
///
/// Carries the values plus enough provenance (source component/stream/task)
/// for multi-input bolts to branch, and the ack bookkeeping the executor
/// needs when the bolt acks or anchors this tuple.
class Tuple {
 public:
  Tuple() = default;
  Tuple(ComponentId source_component, StreamId stream, TaskId source_task,
        Values values)
      : source_component_(std::move(source_component)),
        stream_(std::move(stream)),
        source_task_(source_task),
        values_(std::move(values)) {}

  const ComponentId& source_component() const { return source_component_; }
  const StreamId& stream() const { return stream_; }
  TaskId source_task() const { return source_task_; }

  const Values& values() const { return values_; }
  Values* mutable_values() { return &values_; }
  size_t size() const { return values_.size(); }

  const Value& at(size_t i) const { return values_[i]; }

  /// Typed accessors; behaviour is undefined (std::get throws) when the
  /// field holds a different type — user schema errors surface loudly.
  int64_t GetInt64(size_t i) const { return std::get<int64_t>(values_[i]); }
  double GetDouble(size_t i) const { return std::get<double>(values_[i]); }
  bool GetBool(size_t i) const { return std::get<bool>(values_[i]); }
  const std::string& GetString(size_t i) const {
    return std::get<std::string>(values_[i]);
  }

  /// Accessor by declared field name, resolved against the source
  /// component's output schema (wired in by the executor).
  const Value& GetByField(const Fields& schema, const std::string& name) const {
    return values_[static_cast<size_t>(schema.IndexOf(name))];
  }

  /// Ack bookkeeping: the XOR key of this tuple instance and the root
  /// spout-tuple keys it descends from (§ ack management in the SMGR).
  TupleKey tuple_key() const { return tuple_key_; }
  void set_tuple_key(TupleKey key) { tuple_key_ = key; }
  const std::vector<TupleKey>& roots() const { return roots_; }
  void set_roots(std::vector<TupleKey> roots) { roots_ = std::move(roots); }

  /// Emission timestamp at the root spout (nanos), carried end-to-end for
  /// the latency measurements of Figs. 3, 9, 11, 13.
  int64_t emit_time_nanos() const { return emit_time_nanos_; }
  void set_emit_time_nanos(int64_t t) { emit_time_nanos_ = t; }

 private:
  ComponentId source_component_;
  StreamId stream_{kDefaultStreamId};
  TaskId source_task_ = -1;
  Values values_;
  TupleKey tuple_key_ = 0;
  std::vector<TupleKey> roots_;
  int64_t emit_time_nanos_ = 0;
};

}  // namespace api
}  // namespace heron

#endif  // HERON_API_TUPLE_H_
