#include "scheduler/scheduler.h"

// The IScheduler interface and request types are declared in scheduler.h;
// this TU anchors the heron_scheduler target.
