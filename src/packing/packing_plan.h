#ifndef HERON_PACKING_PACKING_PLAN_H_
#define HERON_PACKING_PACKING_PLAN_H_

#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/resource.h"
#include "common/result.h"
#include "serde/message.h"

namespace heron {
namespace packing {

/// \brief One Heron Instance placement: which task runs where.
struct InstancePlan {
  TaskId task_id = -1;
  ComponentId component;
  int component_index = 0;  ///< 0-based index among this component's tasks.
  Resource resources;       ///< This instance's demand.

  bool operator==(const InstancePlan& o) const {
    return task_id == o.task_id && component == o.component &&
           component_index == o.component_index && resources == o.resources;
  }
};

/// \brief One container: its instances and the resource it must request
/// from the scheduling framework (§IV-A: "a mapping from containers to a
/// set of Heron Instances and their corresponding resource requirements").
struct ContainerPlan {
  ContainerId id = -1;
  std::vector<InstancePlan> instances;
  Resource required;  ///< Includes per-container overhead (SMGR, metrics).

  /// Sum of instance demands (excludes overhead).
  Resource InstanceTotal() const {
    Resource total;
    for (const auto& i : instances) total += i.resources;
    return total;
  }
};

/// \brief The Resource Manager's output: the packing plan.
class PackingPlan : public serde::Message {
 public:
  PackingPlan() = default;
  PackingPlan(std::string topology_name, std::vector<ContainerPlan> containers)
      : topology_name_(std::move(topology_name)),
        containers_(std::move(containers)) {}

  const std::string& topology_name() const { return topology_name_; }
  const std::vector<ContainerPlan>& containers() const { return containers_; }
  std::vector<ContainerPlan>* mutable_containers() { return &containers_; }
  void set_topology_name(std::string name) { topology_name_ = std::move(name); }

  int NumContainers() const { return static_cast<int>(containers_.size()); }
  int NumInstances() const;

  /// Container hosting `task`, or nullptr.
  const ContainerPlan* FindContainerOfTask(TaskId task) const;
  /// Container by id, or nullptr.
  const ContainerPlan* FindContainer(ContainerId id) const;

  /// All task ids of `component`, ascending.
  std::vector<TaskId> TasksOfComponent(const ComponentId& component) const;

  /// Current instance count per component (the repack baseline).
  std::map<ComponentId, int> ComponentParallelism() const;

  /// The largest per-container requirement — what a homogeneous-container
  /// framework (Aurora-like, §IV-B) must allocate for every container.
  Resource MaxContainerResource() const;

  /// Validation shared by all packers: task ids unique, component indices
  /// dense per component, container ids unique and non-negative, instances
  /// fit in their container's requirement. Freshly packed plans also have
  /// task ids dense from 0 (`require_dense_task_ids`); plans that have
  /// been scaled down legitimately contain holes.
  Status Validate(bool require_dense_task_ids = false) const;

  /// Wire format (stored in the State Manager, §IV-C).
  void SerializeTo(serde::WireEncoder* enc) const override;
  Status ParseFrom(serde::WireDecoder* dec) override;
  void Clear() override;

  std::string ToString() const;

  bool operator==(const PackingPlan& o) const;

 private:
  std::string topology_name_;
  std::vector<ContainerPlan> containers_;
};

/// Per-container overhead added by every built-in packer for the Stream
/// Manager and Metrics Manager processes that each container runs (§II).
Resource ContainerOverhead();

}  // namespace packing
}  // namespace heron

#endif  // HERON_PACKING_PACKING_PLAN_H_
