// Scheduler (§IV-B) tests: the framework scheduler in stateless (Aurora)
// and stateful (YARN) modes, container sizing, update diffing, and the
// local scheduler.

#include "scheduler/scheduler.h"

#include <gtest/gtest.h>

#include <map>

#include "frameworks/aurora_like_framework.h"
#include "frameworks/yarn_like_framework.h"
#include "packing/round_robin_packing.h"
#include "scheduler/framework_scheduler.h"
#include "scheduler/local_scheduler.h"
#include "workloads/word_count.h"

namespace heron {
namespace scheduler {
namespace {

class RecordingLauncher;
int launcher_starts(const std::map<ContainerId, int>& starts, ContainerId id) {
  const auto it = starts.find(id);
  return it == starts.end() ? 0 : it->second;
}

/// Records container starts/stops instead of spawning processes.
class RecordingLauncher final : public IContainerLauncher {
 public:
  Status StartContainer(const packing::ContainerPlan& container) override {
    ++starts[container.id];
    live.insert(container.id);
    return Status::OK();
  }
  Status StopContainer(ContainerId id) override {
    ++stops[id];
    live.erase(id);
    return Status::OK();
  }

  std::map<ContainerId, int> starts;
  std::map<ContainerId, int> stops;
  std::set<ContainerId> live;
};

packing::PackingPlan MakePlan(int spouts, int bolts,
                              std::shared_ptr<const api::Topology>* out_topo =
                                  nullptr,
                              packing::RoundRobinPacking* packer = nullptr) {
  auto topology = workloads::BuildWordCountTopology("sched-test", spouts,
                                                    bolts);
  HERON_CHECK_OK(topology.status());
  if (out_topo != nullptr) *out_topo = *topology;
  static packing::RoundRobinPacking local_packer;
  packing::RoundRobinPacking* p = packer != nullptr ? packer : &local_packer;
  *p = packing::RoundRobinPacking();
  HERON_CHECK_OK(p->Initialize(Config(), *topology));
  auto plan = p->Pack();
  HERON_CHECK_OK(plan.status());
  return *plan;
}

class FrameworkSchedulerTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    cluster_.AddNodes(16, Resource(32, 65536, 0));
    if (GetParam() == "yarn") {
      framework_ = std::make_unique<frameworks::YarnLikeFramework>(&cluster_);
    } else {
      framework_ =
          std::make_unique<frameworks::AuroraLikeFramework>(&cluster_);
    }
    scheduler_ = std::make_unique<FrameworkScheduler>(framework_.get(),
                                                      &launcher_);
    ASSERT_TRUE(scheduler_->Initialize(Config()).ok());
  }

  frameworks::SimCluster cluster_;
  std::unique_ptr<frameworks::BaseSimFramework> framework_;
  RecordingLauncher launcher_;
  std::unique_ptr<FrameworkScheduler> scheduler_;
};

TEST_P(FrameworkSchedulerTest, OnScheduleStartsEveryContainer) {
  const packing::PackingPlan plan = MakePlan(4, 4);
  ASSERT_TRUE(scheduler_->OnSchedule(plan).ok());
  EXPECT_EQ(launcher_.live.size(),
            static_cast<size_t>(plan.NumContainers()));
  for (const auto& c : plan.containers()) {
    EXPECT_EQ(launcher_.starts[c.id], 1) << "container " << c.id;
  }
  EXPECT_FALSE(scheduler_->job_id().empty());
  // Double-schedule rejected.
  EXPECT_TRUE(scheduler_->OnSchedule(plan).IsFailedPrecondition());
}

TEST_P(FrameworkSchedulerTest, StatefulnessFollowsFramework) {
  // "The Scheduler can be either stateful or stateless depending on the
  // capabilities of the underlying scheduling framework."
  EXPECT_EQ(scheduler_->IsStateful(), GetParam() == "yarn");
}

TEST_P(FrameworkSchedulerTest, OnKillTearsEverythingDown) {
  const packing::PackingPlan plan = MakePlan(2, 2);
  ASSERT_TRUE(scheduler_->OnSchedule(plan).ok());
  ASSERT_TRUE(scheduler_->OnKill({"sched-test"}).ok());
  EXPECT_TRUE(launcher_.live.empty());
  EXPECT_EQ(cluster_.num_allocations(), 0u);
  EXPECT_TRUE(scheduler_->OnKill({"sched-test"}).IsFailedPrecondition());
}

TEST_P(FrameworkSchedulerTest, OnKillRejectsWrongTopology) {
  ASSERT_TRUE(scheduler_->OnSchedule(MakePlan(2, 2)).ok());
  EXPECT_TRUE(scheduler_->OnKill({"other"}).IsNotFound());
}

TEST_P(FrameworkSchedulerTest, OnRestartSingleContainer) {
  const packing::PackingPlan plan = MakePlan(4, 4);
  ASSERT_TRUE(scheduler_->OnSchedule(plan).ok());
  const ContainerId target = plan.containers()[1].id;
  ASSERT_TRUE(scheduler_->OnRestart({"sched-test", target}).ok());
  EXPECT_EQ(launcher_.starts[target], 2);
  EXPECT_EQ(launcher_.stops[target], 1);
  EXPECT_TRUE(
      scheduler_->OnRestart({"sched-test", 999}).IsNotFound());
}

TEST_P(FrameworkSchedulerTest, OnUpdateAddsAndRemovesContainers) {
  std::shared_ptr<const api::Topology> topology;
  packing::RoundRobinPacking packer;
  const packing::PackingPlan before = MakePlan(4, 4, &topology, &packer);
  ASSERT_TRUE(scheduler_->OnSchedule(before).ok());

  // Scale the bolts up so the repack opens new containers.
  auto after = packer.Repack(before, {{"count", 12}});
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_GT(after->NumContainers(), before.NumContainers());

  ASSERT_TRUE(scheduler_->OnUpdate({"sched-test", *after}).ok());
  EXPECT_EQ(launcher_.live.size(),
            static_cast<size_t>(after->NumContainers()));
  EXPECT_EQ(scheduler_->current_plan().NumInstances(),
            after->NumInstances());

  // And back down: removed containers stop.
  auto shrunk = packer.Repack(*after, {{"count", 1}});
  ASSERT_TRUE(shrunk.ok());
  ASSERT_TRUE(scheduler_->OnUpdate({"sched-test", *shrunk}).ok());
  EXPECT_EQ(launcher_.live.size(),
            static_cast<size_t>(shrunk->NumContainers()));
}

INSTANTIATE_TEST_SUITE_P(Frameworks, FrameworkSchedulerTest,
                         ::testing::Values("yarn", "aurora"));

TEST(FrameworkSchedulerSizingTest, HomogeneousFrameworkGetsUniformMax) {
  // "Aurora can only allocate homogeneous containers": every container
  // must be sized to the plan's max requirement, and admission succeeds.
  frameworks::SimCluster cluster;
  cluster.AddNodes(8, Resource(32, 65536, 0));
  frameworks::AuroraLikeFramework aurora(&cluster);
  RecordingLauncher launcher;
  FrameworkScheduler scheduler(&aurora, &launcher);
  ASSERT_TRUE(scheduler.Initialize(Config()).ok());

  // Uneven plan: RR over 3 containers with 7 instances gives 3/2/2.
  auto topology = workloads::BuildWordCountTopology("uneven", 3, 4);
  ASSERT_TRUE(topology.ok());
  packing::RoundRobinPacking packer;
  Config config;
  config.SetInt(config_keys::kNumContainersHint, 3);
  ASSERT_TRUE(packer.Initialize(config, *topology).ok());
  auto plan = packer.Pack();
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(scheduler.OnSchedule(*plan).ok());

  const Resource uniform = plan->MaxContainerResource();
  EXPECT_EQ(cluster.TotalUsed(),
            Resource(uniform.cpu * 3, uniform.ram_mb * 3,
                     uniform.disk_mb * 3));
}

TEST(FrameworkSchedulerFailoverTest, StatefulSchedulerRecoversContainers) {
  // §IV-B, YARN mode: "When a container failure is detected, the
  // Scheduler invokes the appropriate commands to restart the container."
  frameworks::SimCluster cluster;
  cluster.AddNodes(8, Resource(32, 65536, 0));
  frameworks::YarnLikeFramework yarn(&cluster);
  RecordingLauncher launcher;
  FrameworkScheduler scheduler(&yarn, &launcher);
  ASSERT_TRUE(scheduler.Initialize(Config()).ok());
  const packing::PackingPlan plan = MakePlan(4, 4);
  ASSERT_TRUE(scheduler.OnSchedule(plan).ok());

  ASSERT_TRUE(yarn.InjectContainerFailure(scheduler.job_id(), 0).ok());
  // The scheduler reacted synchronously (event callback): slot restarted.
  auto status = yarn.JobStatus(scheduler.job_id());
  ASSERT_TRUE(status.ok());
  EXPECT_EQ((*status)[0].state, frameworks::ContainerState::kRunning);
  EXPECT_EQ(scheduler.failovers_handled(), 1);
  const ContainerId c0 = plan.containers()[0].id;
  EXPECT_EQ(launcher_starts(launcher.starts, c0), 2);
}

TEST(LocalSchedulerTest, FullLifecycle) {
  RecordingLauncher launcher;
  LocalScheduler scheduler(&launcher);
  ASSERT_TRUE(scheduler.Initialize(Config()).ok());
  const packing::PackingPlan plan = MakePlan(2, 2);
  ASSERT_TRUE(scheduler.OnSchedule(plan).ok());
  EXPECT_EQ(launcher.live.size(), static_cast<size_t>(plan.NumContainers()));
  EXPECT_FALSE(scheduler.IsStateful());

  ASSERT_TRUE(
      scheduler.OnRestart({"sched-test", plan.containers()[0].id}).ok());
  EXPECT_EQ(launcher.starts[plan.containers()[0].id], 2);

  ASSERT_TRUE(scheduler.OnKill({"sched-test"}).ok());
  EXPECT_TRUE(launcher.live.empty());
}

TEST(LocalSchedulerTest, ScheduleRollsBackOnLaunchFailure) {
  class FailingLauncher final : public IContainerLauncher {
   public:
    Status StartContainer(const packing::ContainerPlan& c) override {
      if (c.id >= 1) return Status::Internal("boom");
      started.push_back(c.id);
      return Status::OK();
    }
    Status StopContainer(ContainerId id) override {
      stopped.push_back(id);
      return Status::OK();
    }
    std::vector<ContainerId> started;
    std::vector<ContainerId> stopped;
  };
  FailingLauncher launcher;
  LocalScheduler scheduler(&launcher);
  ASSERT_TRUE(scheduler.Initialize(Config()).ok());
  EXPECT_FALSE(scheduler.OnSchedule(MakePlan(4, 4)).ok());
  // The container that did start was rolled back.
  EXPECT_EQ(launcher.started, launcher.stopped);
}

}  // namespace
}  // namespace scheduler
}  // namespace heron
