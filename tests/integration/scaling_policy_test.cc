// The metrics → placement loop, closed and asserted at three layers:
//
//  1. ScalingPolicyEngine unit behaviour on fabricated metrics windows —
//     hysteresis (a healthy window resets the hot streak), exactly-once
//     window judging, cooldown after an action, the skew detector's
//     component attribution, and the decision record published to the
//     state tree.
//  2. Deterministic step-mode rollout: ScaleWithRollback at a fixed round
//     in two identical universes produces byte-identical final
//     checkpoints — the scaled topology loses zero tuple trees and
//     double-counts nothing (the sum of bolt counts is exactly the emit
//     limit).
//  3. The live loop end to end on real threads: a CountBolt slowed by a
//     busy-spin delay becomes a genuine bottleneck, real cluster-wide
//     backpressure trips, the engine (riding the monitor tick) detects
//     the sustained episode, repacks "count" to higher parallelism
//     through the exactly-once rollout, and the topology converges with
//     every word counted exactly once.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "observability/json.h"
#include "observability/metrics_cache.h"
#include "runtime/local_cluster.h"
#include "serde/wire.h"
#include "statemgr/in_memory_state_manager.h"
#include "statemgr/state_manager.h"
#include "tmaster/scaling_policy_engine.h"
#include "workloads/word_count.h"

namespace heron {
namespace runtime {
namespace {

using tmaster::ScalingPolicyEngine;

// -- Layer 1: the engine on fabricated metrics ----------------------------

class ScalingEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { Logging::SetLevel(LogLevel::kError); }

  ScalingEngineTest() : clock_(0), cache_(CacheOptions()) {
    cache_.SetTopology("scaletest",
                       {{0, "word"}, {1, "count"}, {2, "count"}});
    EXPECT_TRUE(state_.Initialize(Config()).ok());
  }

  static observability::MetricsCache::Options CacheOptions() {
    observability::MetricsCache::Options options;
    options.window_nanos = 1'000'000'000;
    options.max_windows = 4;
    return options;
  }

  ScalingPolicyEngine::Options EngineOptions() {
    ScalingPolicyEngine::Options options;
    options.topology = "scaletest";
    options.enabled = true;
    options.backpressure_ratio = 0.25;
    options.hot_windows = 2;
    options.cooldown_ms = 5000;
    options.factor = 2.0;
    options.max_parallelism = 8;
    return options;
  }

  /// Fabricates one metrics window: both count tasks and the spout flush
  /// twice (start + end of the window), and the SMGR's backpressure
  /// duration counter grows by `backpressure_ms` between the flushes.
  void FeedWindow(int64_t window, double backpressure_ms) {
    const int64_t t0 = window * 1'000'000'000 + 100'000'000;
    const int64_t t1 = window * 1'000'000'000 + 900'000'000;
    cache_.Flush("task-0", {{"instance.emitted", window * 1000.0}}, t0);
    cache_.Flush("task-1", {{"instance.executed", window * 400.0}}, t0);
    cache_.Flush("task-2", {{"instance.executed", window * 400.0}}, t0);
    cache_.Flush("smgr-0",
                 {{"smgr.backpressure.duration.ns", bp_cumulative_ns_}}, t0);
    bp_cumulative_ns_ += backpressure_ms * 1e6;
    cache_.Flush("smgr-0",
                 {{"smgr.backpressure.duration.ns", bp_cumulative_ns_}}, t1);
    cache_.Flush("task-0", {{"instance.emitted", window * 1000.0 + 800}}, t1);
    cache_.Flush("task-1", {{"instance.executed", window * 400.0 + 350}},
                 t1);
    cache_.Flush("task-2", {{"instance.executed", window * 400.0 + 350}},
                 t1);
    // The clock tracks the window edge so cooldowns measure real time.
    clock_.AdvanceMillis(1000);
  }

  SimClock clock_;
  observability::MetricsCache cache_;
  statemgr::InMemoryStateManager state_;
  double bp_cumulative_ns_ = 0;
};

TEST_F(ScalingEngineTest, HysteresisCooldownAndPublishedDecision) {
  ScalingPolicyEngine engine(EngineOptions(), &cache_, &state_, &clock_);
  engine.SetScalableComponents({"count"}, {{1, "count"}, {2, "count"}});
  std::vector<std::pair<std::string, int>> executed;
  engine.SetExecute([&executed](const ComponentId& component, int to) {
    executed.emplace_back(component, to);
    return Status::OK();
  });

  // Window 1 is hot (600ms of backpressure in a ~800ms-covered window):
  // streak starts but nothing fires below hot_windows.
  FeedWindow(1, 600);
  EXPECT_FALSE(engine.Tick());
  EXPECT_EQ(engine.hot_streak(), 1);
  // Ticking again on the same window judges nothing twice.
  EXPECT_FALSE(engine.Tick());
  EXPECT_EQ(engine.hot_streak(), 1);

  // Window 2 is healthy: hysteresis resets the streak.
  FeedWindow(2, 0);
  EXPECT_FALSE(engine.Tick());
  EXPECT_EQ(engine.hot_streak(), 0);

  // Two consecutive hot windows: the decision fires on the second.
  FeedWindow(3, 600);
  EXPECT_FALSE(engine.Tick());
  FeedWindow(4, 600);
  EXPECT_TRUE(engine.Tick());
  ASSERT_EQ(executed.size(), 1u);
  // Busiest scalable component is "count" (the only one), at observed
  // parallelism 2 → factor 2.0 doubles it.
  EXPECT_EQ(executed[0].first, "count");
  EXPECT_EQ(executed[0].second, 4);
  EXPECT_EQ(engine.decisions_fired(), 1u);

  // The decision record is queryable: the parent node names the latest
  // seq, the child holds the full JSON.
  auto latest = state_.GetNodeData(statemgr::paths::Scaling("scaletest"));
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, "1");
  auto record = state_.GetNodeData(
      statemgr::paths::ScalingDecision("scaletest", 1));
  ASSERT_TRUE(record.ok());
  auto parsed = observability::json::Parse(*record);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->StringOr("component", ""), "count");
  EXPECT_DOUBLE_EQ(parsed->NumberOr("from", 0), 2);
  EXPECT_DOUBLE_EQ(parsed->NumberOr("to", 0), 4);
  EXPECT_EQ(parsed->StringOr("reason", ""), "backpressure");
  EXPECT_EQ(parsed->StringOr("outcome", ""), "applied");

  // Hot windows inside the cooldown count toward nothing — the restart
  // storm of the rollout must not trigger a second decision.
  FeedWindow(5, 600);
  EXPECT_FALSE(engine.Tick());
  EXPECT_EQ(engine.hot_streak(), 0);
  FeedWindow(6, 600);
  EXPECT_FALSE(engine.Tick());
  EXPECT_EQ(executed.size(), 1u);

  // Past the cooldown (5s), a fresh hot streak fires again.
  clock_.AdvanceMillis(5000);
  FeedWindow(7, 600);
  EXPECT_FALSE(engine.Tick());
  FeedWindow(8, 600);
  EXPECT_TRUE(engine.Tick());
  EXPECT_EQ(engine.decisions_fired(), 2u);
  EXPECT_EQ(state_.GetNodeData(statemgr::paths::Scaling("scaletest"))
                .ValueOrDie(),
            "2");
}

TEST_F(ScalingEngineTest, SkewDetectorTargetsTheSkewedComponent) {
  ScalingPolicyEngine::Options options = EngineOptions();
  options.backpressure_ratio = 0;  // Isolate the skew detector.
  options.skew_threshold = 1.5;
  options.hot_windows = 1;
  ScalingPolicyEngine engine(options, &cache_, &state_, &clock_);
  engine.SetScalableComponents({"count"}, {{1, "count"}, {2, "count"}});
  std::vector<std::pair<std::string, int>> executed;
  engine.SetExecute([&executed](const ComponentId& component, int to) {
    executed.emplace_back(component, to);
    return Status::OK();
  });

  // Task 1 does 950 units this window, task 2 does 50: max/mean = 1.9.
  // The spout's (task 0) huge delta must not matter — spouts are not
  // scalable.
  cache_.Flush("task-0", {{"instance.emitted", 100.0}}, 1'100'000'000);
  cache_.Flush("task-1", {{"instance.executed", 10.0}}, 1'100'000'000);
  cache_.Flush("task-2", {{"instance.executed", 10.0}}, 1'100'000'000);
  cache_.Flush("task-0", {{"instance.emitted", 5100.0}}, 1'900'000'000);
  cache_.Flush("task-1", {{"instance.executed", 960.0}}, 1'900'000'000);
  cache_.Flush("task-2", {{"instance.executed", 60.0}}, 1'900'000'000);

  EXPECT_TRUE(engine.Tick());
  ASSERT_EQ(executed.size(), 1u);
  EXPECT_EQ(executed[0].first, "count");
  EXPECT_EQ(executed[0].second, 4);
  auto record = state_.GetNodeData(
      statemgr::paths::ScalingDecision("scaletest", 1));
  ASSERT_TRUE(record.ok());
  auto parsed = observability::json::Parse(*record);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->StringOr("reason", ""), "skew");
}

// -- Layer 2: deterministic step-mode rollout -----------------------------

constexpr uint64_t kEmitLimit = 200;
constexpr char kStepTopology[] = "scale-rollback";

/// Decodes a CountBolt snapshot (sorted `word, count` pairs) into the
/// total number of counted words.
uint64_t SumBoltCounts(const std::string& snapshot) {
  uint64_t total = 0;
  serde::WireDecoder dec(snapshot);
  while (!dec.AtEnd()) {
    auto tag = dec.ReadTag();
    if (!tag.ok() || *tag == 0) break;
    if (serde::TagFieldNumber(*tag) == 2) {
      auto v = dec.ReadUint64();
      if (!v.ok()) break;
      total += *v;
    } else if (!dec.SkipField(serde::TagWireType(*tag)).ok()) {
      break;
    }
  }
  return total;
}

struct ScaledUniverse {
  bool ok = false;
  uint64_t final_ckpt = 0;
  std::map<int, std::string> snapshots;  ///< Task → final snapshot bytes.
  uint64_t counted = 0;
  size_t count_parallelism = 0;
};

ScaledUniverse RunScaledUniverse() {
  ScaledUniverse out;
  SimClock clock(0);
  Config cluster_config;
  cluster_config.SetInt(config_keys::kNumContainersHint, 2);
  cluster_config.SetBool(config_keys::kClusterStepMode, true);
  cluster_config.SetInt(config_keys::kSchedulerMonitorIntervalMs, 100);
  cluster_config.SetInt(config_keys::kMetricsCollectIntervalMs, 50);
  LocalCluster cluster(cluster_config, &clock);

  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 200;
  spout_options.words_per_call = 2;
  spout_options.emit_limit = kEmitLimit;
  Config topology_config;
  topology_config.SetBool(config_keys::kAckingEnabled, true);
  topology_config.SetInt(config_keys::kMessageTimeoutMs, 600000);
  topology_config.SetInt(config_keys::kMaxSpoutPending, 16);
  topology_config.Set(config_keys::kCheckpointMode, "exactly-once");
  auto topology = workloads::BuildWordCountTopology(
      kStepTopology, /*spouts=*/1, /*bolts=*/1, spout_options,
      topology_config);
  EXPECT_TRUE(topology.ok());
  if (!cluster.Submit(*topology).ok()) return out;

  const auto rounds = [&](int n) {
    for (int i = 0; i < n; ++i) {
      cluster.StepAll();
      clock.AdvanceMillis(5);
      cluster.StepAll();
    }
  };
  const auto run_checkpoint = [&]() -> uint64_t {
    const uint64_t id = cluster.TriggerCheckpoint();
    EXPECT_GT(id, 0u);
    int waited = 0;
    while (cluster.checkpoint_coordinator()->latest_complete() < id &&
           waited < 500) {
      ++waited;
      rounds(1);
      cluster.MonitorTick();
    }
    EXPECT_EQ(cluster.checkpoint_coordinator()->latest_complete(), id);
    return id;
  };

  // Pump mid-stream state, cut checkpoint 1, pump more — then scale at a
  // FIXED round, so both universes roll out at the identical point.
  rounds(6);
  const uint64_t ck1 = run_checkpoint();
  EXPECT_EQ(ck1, 1u);
  rounds(6);
  EXPECT_LT(cluster.SumCounter("instance.emitted"), kEmitLimit);

  EXPECT_TRUE(cluster.ScaleWithRollback("count", 2).ok());
  out.count_parallelism =
      cluster.physical_plan()->TasksOfComponent("count").size();
  EXPECT_EQ(
      cluster.recovery_metrics()
          ->GetCounter("recovery.checkpoint.restores")
          ->value(),
      1u);

  // Drain to quiescence (counter stability — counters reset on restart).
  uint64_t last_emitted = ~0ull, last_acked = ~0ull;
  int stable = 0;
  for (int r = 0; r < 8000 && stable < 50; ++r) {
    rounds(1);
    const uint64_t emitted = cluster.SumCounter("instance.emitted");
    const uint64_t acked = cluster.SumCounter("instance.acked");
    if (emitted == last_emitted && acked == last_acked) {
      ++stable;
    } else {
      stable = 0;
      last_emitted = emitted;
      last_acked = acked;
    }
  }
  EXPECT_GE(stable, 50) << "scaled universe did not quiesce";

  // The final checkpoint over the SCALED plan is the observable state.
  out.final_ckpt = run_checkpoint();
  const auto plan = cluster.physical_plan();
  for (const TaskId task : plan->all_tasks()) {
    const auto data = cluster.state_manager()->GetNodeData(
        statemgr::paths::CheckpointTask(kStepTopology, out.final_ckpt,
                                        task));
    EXPECT_TRUE(data.ok()) << "no snapshot for task " << task;
    out.snapshots[task] = data.ok() ? *data : std::string();
    const api::ComponentDef* def = plan->ComponentOfTask(task);
    if (data.ok() && def != nullptr &&
        def->kind == api::ComponentKind::kBolt) {
      out.counted += SumBoltCounts(*data);
    }
  }
  out.ok = cluster.Kill().ok();
  return out;
}

TEST(ScaleWithRollbackStepTest, TwoUniversesAreByteIdenticalAndLossless) {
  Logging::SetLevel(LogLevel::kError);
  const ScaledUniverse first = RunScaledUniverse();
  const ScaledUniverse second = RunScaledUniverse();
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);

  // The repack landed: two count tasks, three snapshots (spout + 2 bolts).
  EXPECT_EQ(first.count_parallelism, 2u);
  EXPECT_EQ(first.snapshots.size(), 3u);

  // Zero lost tuple trees, zero double counting: mid-stream repack or
  // not, every emitted word is counted exactly once across both bolts.
  EXPECT_EQ(first.counted, kEmitLimit);
  EXPECT_EQ(second.counted, kEmitLimit);

  // Determinism: the entire rollout — abort, halt, repack, restore,
  // suffix replay onto the new routing tables — is byte-identical across
  // universes.
  EXPECT_EQ(first.final_ckpt, second.final_ckpt);
  EXPECT_EQ(first.snapshots, second.snapshots)
      << "scaled universes diverged";
}

// -- Layer 3: the live loop on real threads -------------------------------

TEST(LiveScalingTest, SustainedBackpressureTriggersDetectRepackRecover) {
  Logging::SetLevel(LogLevel::kError);
  constexpr uint64_t kLiveEmitLimit = 4000;
  constexpr char kTopo[] = "live-scaling";

  Config config;
  config.SetInt(config_keys::kNumContainersHint, 2);
  config.SetInt(config_keys::kSchedulerMonitorIntervalMs, 50);
  config.SetInt(config_keys::kSchedulerMonitorMissLimit, 10);
  config.SetInt(config_keys::kMetricsCollectIntervalMs, 20);
  config.SetInt(config_keys::kMetricsCacheWindowSec, 1);
  // Per-tuple envelopes end to end (outbox batch 1, cache drain at one
  // byte) — batching would pack the backlog into a handful of envelopes
  // and hide the queue depth from the watermarks. With a small bolt
  // inbound queue and low watermarks, the saturated bolt fills its
  // queue, the SMGR's sends park in the retry queue, and a real
  // cluster-wide backpressure episode trips and stays up for the whole
  // overload plateau.
  config.SetInt(config_keys::kInstanceEmitBatchTuples, 1);
  config.SetInt(config_keys::kCacheDrainSizeBytes, 1);
  config.SetInt(config_keys::kInstanceInboundCapacity, 128);
  config.SetInt(config_keys::kBackpressureHighWater, 64);
  config.SetInt(config_keys::kBackpressureLowWater, 16);
  // The loop under test.
  config.SetBool(config_keys::kScalingEnabled, true);
  config.SetDouble(config_keys::kScalingBackpressureRatio, 0.05);
  config.SetInt(config_keys::kScalingHotWindows, 2);
  config.SetInt(config_keys::kScalingCooldownMs, 60000);  // One decision.
  config.SetDouble(config_keys::kScalingFactor, 2.0);
  config.SetInt(config_keys::kScalingMaxParallelism, 4);
  // Exactly-once substrate for the rollout.
  config.SetBool(config_keys::kAckingEnabled, true);
  config.SetInt(config_keys::kMessageTimeoutMs, 600000);
  // An ack window far above the bolt queue + watermarks: the spout keeps
  // a deep standing backlog parked at the bolt's SMGR for the whole run
  // (instead of one instantaneous burst that drains before the engine's
  // second window closes).
  config.SetInt(config_keys::kMaxSpoutPending, 1024);
  config.Set(config_keys::kCheckpointMode, "exactly-once");
  config.SetInt(config_keys::kCheckpointIntervalMs, 50);
  // The bottleneck: 1.5ms of busy-spin per word caps one bolt instance
  // near 650 words/sec, far below what the spout offers.
  config.SetInt(workloads::kCountBoltDelayUs, 1500);

  LocalCluster cluster(config);
  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 200;
  spout_options.words_per_call = 4;
  spout_options.emit_limit = kLiveEmitLimit;
  auto topology = workloads::BuildWordCountTopology(kTopo, 1, 1,
                                                    spout_options, config);
  ASSERT_TRUE(topology.ok());
  ASSERT_TRUE(cluster.Submit(*topology).ok());
  auto* engine = cluster.scaling_engine();
  ASSERT_NE(engine, nullptr) << "scaling engine not enabled";
  ASSERT_TRUE(cluster.WaitForCounter("instance.acked", 100, 30000).ok());

  // Detect → repack: the engine must fire within the load plateau.
  const auto fire_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (engine->decisions_fired() == 0 &&
         std::chrono::steady_clock::now() < fire_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GE(engine->decisions_fired(), 1u)
      << "no scaling decision under sustained backpressure";
  const auto decisions = engine->history();
  EXPECT_EQ(decisions[0].component, "count");
  EXPECT_EQ(decisions[0].from, 1);
  EXPECT_EQ(decisions[0].to, 2);
  EXPECT_EQ(decisions[0].reason, "backpressure");
  EXPECT_EQ(decisions[0].outcome, "applied");

  // The new plan is live: two count tasks across the cluster.
  EXPECT_EQ(cluster.physical_plan()->TasksOfComponent("count").size(), 2u);

  // The decision record is queryable from the state tree.
  auto latest = cluster.state_manager()->GetNodeData(
      statemgr::paths::Scaling(kTopo));
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, "1");
  auto record = cluster.state_manager()->GetNodeData(
      statemgr::paths::ScalingDecision(kTopo, 1));
  ASSERT_TRUE(record.ok());
  auto parsed = observability::json::Parse(*record);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->StringOr("component", ""), "count");
  EXPECT_EQ(parsed->StringOr("outcome", ""), "applied");

  // Recover → converge: run until a complete checkpoint over the scaled
  // plan counts every word exactly once. The rollout restored from the
  // last complete checkpoint and replayed the suffix, so nothing may be
  // missing and nothing doubled.
  const auto converge_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(90);
  uint64_t counted = 0;
  while (std::chrono::steady_clock::now() < converge_deadline) {
    counted = 0;
    const uint64_t ckpt =
        cluster.checkpoint_coordinator()->latest_complete();
    const auto plan = cluster.physical_plan();
    if (ckpt > 0 && plan != nullptr) {
      bool all_present = true;
      uint64_t sum = 0;
      for (const TaskId task : plan->all_tasks()) {
        const auto data = cluster.state_manager()->GetNodeData(
            statemgr::paths::CheckpointTask(kTopo, ckpt, task));
        const api::ComponentDef* def = plan->ComponentOfTask(task);
        if (!data.ok()) {
          all_present = false;
          break;
        }
        if (def != nullptr && def->kind == api::ComponentKind::kBolt) {
          sum += SumBoltCounts(*data);
        }
      }
      if (all_present) counted = sum;
    }
    if (counted == kLiveEmitLimit) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(counted, kLiveEmitLimit)
      << "scaled topology lost or double-counted words";
  ASSERT_TRUE(cluster.Kill().ok());
}

}  // namespace
}  // namespace runtime
}  // namespace heron
