#include "sim/cost_model.h"

// Cost tables are plain data; defaults live in the header. This TU
// anchors the target and leaves room for file-based table loading.
