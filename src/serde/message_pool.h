#ifndef HERON_SERDE_MESSAGE_POOL_H_
#define HERON_SERDE_MESSAGE_POOL_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "serde/message.h"

namespace heron {
namespace serde {

/// \brief Counters exposed by pools so the ablation benchmarks can verify
/// that steady-state operation stops allocating.
struct PoolStats {
  uint64_t allocations = 0;  ///< Objects created with new.
  uint64_t reuses = 0;       ///< Objects served from the free list.
  uint64_t returns = 0;      ///< Objects handed back to the pool.
  /// Returned objects the pool refused to retain because a growth bound
  /// (idle count, retained bytes, oversize buffer) tripped. Backpressure
  /// parking can return a burst far above steady state; the bounds turn
  /// that burst into evictions instead of permanently resident memory.
  uint64_t evicted = 0;
  /// Peak idle objects ever retained at once (freelist high-water mark).
  uint64_t high_water = 0;
};

/// \brief Recycling pool for message objects (§V-A optimization 1).
///
/// "Our implementation allows reusability of the Protocol Buffer objects by
/// using memory pools to store dedicated objects and thus avoid the
/// expensive new/delete operations." Acquire() returns a cleared object —
/// from the free list when available; Release() returns it. When disabled
/// (the ablation baseline), Acquire always allocates and Release always
/// deletes, which is what a naive implementation does per tuple.
///
/// Thread-safe; each Stream Manager owns its pools so contention is local.
template <typename T>
class MessagePool {
 public:
  /// \param enabled   pool on/off toggle (off = ablation baseline)
  /// \param max_idle  cap on retained free objects; beyond it Release deletes
  explicit MessagePool(bool enabled = true, size_t max_idle = 4096)
      : enabled_(enabled), max_idle_(max_idle) {}

  ~MessagePool() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (T* obj : free_list_) delete obj;
  }

  MessagePool(const MessagePool&) = delete;
  MessagePool& operator=(const MessagePool&) = delete;

  /// Returns a default-state object; caller must Release() it.
  T* Acquire() {
    if (enabled_) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!free_list_.empty()) {
        T* obj = free_list_.back();
        free_list_.pop_back();
        ++stats_.reuses;
        return obj;
      }
      ++stats_.allocations;
    } else {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.allocations;
    }
    return new T();
  }

  /// Returns an object to the pool (or deletes it when disabled/full).
  void Release(T* obj) {
    if (obj == nullptr) return;
    obj->Clear();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.returns;
      if (enabled_ && free_list_.size() < max_idle_) {
        free_list_.push_back(obj);
        if (free_list_.size() > stats_.high_water) {
          stats_.high_water = free_list_.size();
        }
        return;
      }
      // Deleting when disabled is the ablation baseline, not an eviction.
      if (enabled_) ++stats_.evicted;
    }
    delete obj;
  }

  PoolStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  size_t idle_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return free_list_.size();
  }

  bool enabled() const { return enabled_; }

 private:
  const bool enabled_;
  const size_t max_idle_;
  mutable std::mutex mutex_;
  std::vector<T*> free_list_;
  PoolStats stats_;
};

/// \brief RAII handle that returns a pooled object on destruction.
template <typename T>
class PooledPtr {
 public:
  PooledPtr() : pool_(nullptr), obj_(nullptr) {}
  PooledPtr(MessagePool<T>* pool, T* obj) : pool_(pool), obj_(obj) {}
  ~PooledPtr() { reset(); }

  PooledPtr(const PooledPtr&) = delete;
  PooledPtr& operator=(const PooledPtr&) = delete;
  PooledPtr(PooledPtr&& other) noexcept : pool_(other.pool_), obj_(other.obj_) {
    other.obj_ = nullptr;
  }
  PooledPtr& operator=(PooledPtr&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = other.pool_;
      obj_ = other.obj_;
      other.obj_ = nullptr;
    }
    return *this;
  }

  T* get() const { return obj_; }
  T* operator->() const { return obj_; }
  T& operator*() const { return *obj_; }
  explicit operator bool() const { return obj_ != nullptr; }

  /// Releases the object back to its pool.
  void reset() {
    if (obj_ != nullptr && pool_ != nullptr) pool_->Release(obj_);
    obj_ = nullptr;
  }

  /// Detaches ownership without releasing.
  T* release() {
    T* obj = obj_;
    obj_ = nullptr;
    return obj;
  }

 private:
  MessagePool<T>* pool_;
  T* obj_;
};

template <typename T>
PooledPtr<T> AcquirePooled(MessagePool<T>* pool) {
  return PooledPtr<T>(pool, pool->Acquire());
}

/// \brief Recycling pool for serialization buffers — the transport fabric's
/// allocator.
///
/// Companion to MessagePool: outbound tuple batches are encoded into pooled
/// buffers, and fabric receivers draw delivery buffers from the same pool,
/// so the hot path performs no heap allocation once warm. Buffers keep
/// their capacity across reuses (cleared, not shrunk).
///
/// Growth is bounded on three axes, because a backpressure-parking burst
/// returns a spike of buffers that must not become permanently resident:
///  - `max_idle` buffers retained (count cap);
///  - `max_retained_bytes` of capacity retained across the freelist;
///  - `max_buffer_bytes` per buffer (an outsized batch is never retained —
///    recycling one 64 MB buffer through 100-byte acks pins 64 MB forever).
/// A Release that would cross a bound deletes the buffer and counts it in
/// `stats().evicted`; `stats().high_water` tracks the freelist peak.
class BufferPool {
 public:
  explicit BufferPool(bool enabled = true, size_t max_idle = 4096,
                      size_t max_retained_bytes = 64u << 20,
                      size_t max_buffer_bytes = 4u << 20)
      : enabled_(enabled),
        max_idle_(max_idle),
        max_retained_bytes_(max_retained_bytes),
        max_buffer_bytes_(max_buffer_bytes) {}

  /// Returns an empty buffer (capacity retained from prior use when pooled).
  Buffer Acquire() {
    if (enabled_) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!free_list_.empty()) {
        Buffer buf = std::move(free_list_.back());
        free_list_.pop_back();
        retained_bytes_ -= buf.capacity();
        ++stats_.reuses;
        buf.clear();
        return buf;
      }
      ++stats_.allocations;
    } else {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.allocations;
    }
    return Buffer();
  }

  void Release(Buffer buf) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.returns;
    if (enabled_) {
      const size_t cap = buf.capacity();
      if (free_list_.size() < max_idle_ && cap <= max_buffer_bytes_ &&
          retained_bytes_ + cap <= max_retained_bytes_) {
        retained_bytes_ += cap;
        free_list_.push_back(std::move(buf));
        if (free_list_.size() > stats_.high_water) {
          stats_.high_water = free_list_.size();
        }
        return;
      }
      ++stats_.evicted;
    }
  }

  PoolStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  size_t idle_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return free_list_.size();
  }

  /// Capacity bytes currently parked on the freelist.
  size_t retained_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return retained_bytes_;
  }

  bool enabled() const { return enabled_; }
  size_t max_idle() const { return max_idle_; }
  size_t max_retained_bytes() const { return max_retained_bytes_; }
  size_t max_buffer_bytes() const { return max_buffer_bytes_; }

 private:
  const bool enabled_;
  const size_t max_idle_;
  const size_t max_retained_bytes_;
  const size_t max_buffer_bytes_;
  mutable std::mutex mutex_;
  std::vector<Buffer> free_list_;
  size_t retained_bytes_ = 0;
  PoolStats stats_;
};

}  // namespace serde
}  // namespace heron

#endif  // HERON_SERDE_MESSAGE_POOL_H_
