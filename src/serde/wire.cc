#include "serde/wire.h"

#include <cstring>

namespace heron {
namespace serde {

void WireEncoder::WriteVarint(uint64_t value) {
  while (value >= 0x80) {
    out_->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out_->push_back(static_cast<char>(value));
}

void WireEncoder::WriteUint64Field(uint32_t field, uint64_t value) {
  WriteTag(field, WireType::kVarint);
  WriteVarint(value);
}

void WireEncoder::WriteInt64Field(uint32_t field, int64_t value) {
  WriteTag(field, WireType::kVarint);
  WriteVarint(ZigZagEncode(value));
}

void WireEncoder::WriteInt32Field(uint32_t field, int32_t value) {
  WriteInt64Field(field, value);
}

void WireEncoder::WriteBoolField(uint32_t field, bool value) {
  WriteTag(field, WireType::kVarint);
  WriteVarint(value ? 1 : 0);
}

void WireEncoder::WriteDoubleField(uint32_t field, double value) {
  WriteTag(field, WireType::kFixed64);
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out_->push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

void WireEncoder::WriteBytesField(uint32_t field, BytesView value) {
  WriteTag(field, WireType::kLengthDelimited);
  WriteVarint(value.size());
  out_->append(value.data(), value.size());
}

size_t WireEncoder::BeginLengthDelimited(uint32_t field) {
  WriteTag(field, WireType::kLengthDelimited);
  // Reserve one byte for the common case of payloads < 128 bytes; the
  // payload is shifted right when the final varint is longer.
  out_->push_back('\0');
  return out_->size();
}

void WireEncoder::EndLengthDelimited(size_t mark) {
  const size_t payload_len = out_->size() - mark;
  // Encode the length varint into a scratch array.
  char scratch[10];
  size_t n = 0;
  uint64_t v = payload_len;
  while (v >= 0x80) {
    scratch[n++] = static_cast<char>((v & 0x7F) | 0x80);
    v >>= 7;
  }
  scratch[n++] = static_cast<char>(v);
  if (n == 1) {
    (*out_)[mark - 1] = scratch[0];
    return;
  }
  // Rare path: shift the payload to make room for the longer varint.
  out_->insert(mark, n - 1, '\0');
  std::memcpy(out_->data() + mark - 1, scratch, n);
}

Result<uint64_t> WireDecoder::ReadVarint() {
  uint64_t value = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift >= 64) {
      return Status::IOError("varint too long");
    }
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return Truncated();
}

Result<uint32_t> WireDecoder::ReadTag() {
  if (AtEnd()) return static_cast<uint32_t>(0);
  HERON_ASSIGN_OR_RETURN(uint64_t tag, ReadVarint());
  if (tag == 0 || tag > UINT32_MAX) {
    return Status::IOError("invalid wire tag");
  }
  return static_cast<uint32_t>(tag);
}

Result<uint64_t> WireDecoder::ReadUint64() { return ReadVarint(); }

Result<int64_t> WireDecoder::ReadInt64() {
  HERON_ASSIGN_OR_RETURN(uint64_t raw, ReadVarint());
  return ZigZagDecode(raw);
}

Result<int32_t> WireDecoder::ReadInt32() {
  HERON_ASSIGN_OR_RETURN(int64_t v, ReadInt64());
  if (v < INT32_MIN || v > INT32_MAX) {
    return Status::IOError("int32 field out of range");
  }
  return static_cast<int32_t>(v);
}

Result<bool> WireDecoder::ReadBool() {
  HERON_ASSIGN_OR_RETURN(uint64_t raw, ReadVarint());
  return raw != 0;
}

Result<double> WireDecoder::ReadDouble() {
  if (pos_ + 8 > data_.size()) return Truncated();
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
  }
  pos_ += 8;
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<BytesView> WireDecoder::ReadBytes() {
  HERON_ASSIGN_OR_RETURN(uint64_t len, ReadVarint());
  if (pos_ + len > data_.size()) return Truncated();
  BytesView view = data_.substr(pos_, len);
  pos_ += len;
  return view;
}

Status WireDecoder::SkipField(WireType type) {
  switch (type) {
    case WireType::kVarint:
      return ReadVarint().status();
    case WireType::kFixed64:
      if (pos_ + 8 > data_.size()) return Truncated();
      pos_ += 8;
      return Status::OK();
    case WireType::kLengthDelimited:
      return ReadBytes().status();
    case WireType::kFixed32:
      if (pos_ + 4 > data_.size()) return Truncated();
      pos_ += 4;
      return Status::OK();
  }
  return Status::IOError("unknown wire type");
}

// -- Transport framing ---------------------------------------------------

namespace {

inline void PutU16(char* out, uint16_t v) {
  out[0] = static_cast<char>(v & 0xff);
  out[1] = static_cast<char>((v >> 8) & 0xff);
}

inline void PutU32(char* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

inline void PutU64(char* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

inline uint16_t GetU16(const char* in) {
  return static_cast<uint16_t>(static_cast<uint8_t>(in[0])) |
         static_cast<uint16_t>(static_cast<uint8_t>(in[1])) << 8;
}

inline uint32_t GetU32(const char* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(in[i])) << (8 * i);
  }
  return v;
}

inline uint64_t GetU64(const char* in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(in[i])) << (8 * i);
  }
  return v;
}

}  // namespace

void EncodeFrameHeader(const FrameHeader& header, char* out) {
  PutU16(out, kFrameMagic);
  out[2] = static_cast<char>(header.type);
  out[3] = static_cast<char>(header.dest_kind);
  PutU32(out + 4, header.payload_len);
  PutU32(out + 8, static_cast<uint32_t>(header.dest));
  PutU64(out + 12, header.trace_id);
}

void AppendFrameHeader(const FrameHeader& header, Buffer* out) {
  char wire[kFrameHeaderBytes];
  EncodeFrameHeader(header, wire);
  out->append(wire, kFrameHeaderBytes);
}

Status DecodeFrameHeader(BytesView data, FrameHeader* out) {
  if (data.size() < kFrameHeaderBytes) {
    return Status::IOError("frame header truncated");
  }
  if (GetU16(data.data()) != kFrameMagic) {
    return Status::IOError("bad frame magic (stream desync?)");
  }
  FrameHeader h;
  h.type = static_cast<uint8_t>(data[2]);
  h.dest_kind = static_cast<uint8_t>(data[3]);
  h.payload_len = GetU32(data.data() + 4);
  h.dest = static_cast<int32_t>(GetU32(data.data() + 8));
  h.trace_id = GetU64(data.data() + 12);
  if (h.payload_len > kMaxFramePayloadBytes) {
    return Status::IOError("frame payload length exceeds cap");
  }
  *out = h;
  return Status::OK();
}

Result<size_t> PeekFrameSize(BytesView data) {
  FrameHeader h;
  HERON_RETURN_NOT_OK(DecodeFrameHeader(data, &h));
  return kFrameHeaderBytes + static_cast<size_t>(h.payload_len);
}

}  // namespace serde
}  // namespace heron
