#include "statemgr/in_memory_state_manager.h"

#include <algorithm>

#include "common/strings.h"

namespace heron {
namespace statemgr {

Status InMemoryStateManager::Initialize(const Config& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (initialized_) {
    return Status::FailedPrecondition("state manager already initialized");
  }
  initialized_ = true;
  return Status::OK();
}

Status InMemoryStateManager::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  initialized_ = false;
  nodes_.clear();
  watches_.clear();
  sessions_.clear();
  return Status::OK();
}

bool InMemoryStateManager::ExistsLocked(const std::string& path) const {
  return path == "/" || nodes_.count(path) != 0;
}

bool InMemoryStateManager::HasChildLocked(const std::string& path) const {
  const std::string prefix = path == "/" ? "/" : path + "/";
  const auto it = nodes_.lower_bound(prefix);
  return it != nodes_.end() && StartsWith(it->first, prefix);
}

void InMemoryStateManager::CollectWatchesLocked(
    const std::string& path, WatchEventType type,
    std::vector<std::pair<WatchCallback, WatchEvent>>* out) {
  auto [begin, end] = watches_.equal_range(path);
  for (auto it = begin; it != end; ++it) {
    out->emplace_back(std::move(it->second), WatchEvent{type, path});
  }
  watches_.erase(begin, end);
}

Status InMemoryStateManager::CreateNode(const std::string& path,
                                        serde::BytesView data,
                                        SessionId session) {
  HERON_RETURN_NOT_OK(ValidatePath(path));
  std::vector<std::pair<WatchCallback, WatchEvent>> fired;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!initialized_) {
      return Status::FailedPrecondition("state manager not initialized");
    }
    if (ExistsLocked(path)) {
      return Status::AlreadyExists(
          StrFormat("node '%s' already exists", path.c_str()));
    }
    const std::string parent = ParentPath(path);
    if (!ExistsLocked(parent)) {
      return Status::NotFound(
          StrFormat("parent '%s' does not exist", parent.c_str()));
    }
    if (session != kNoSession && sessions_.count(session) == 0) {
      return Status::NotFound(StrFormat(
          "session %llu is not open", static_cast<unsigned long long>(session)));
    }
    nodes_[path] = Node{serde::Buffer(data), session};
    CollectWatchesLocked(path, WatchEventType::kCreated, &fired);
    CollectWatchesLocked(parent, WatchEventType::kChildrenChanged, &fired);
  }
  for (auto& [cb, event] : fired) cb(event);
  return Status::OK();
}

Status InMemoryStateManager::SetNodeData(const std::string& path,
                                         serde::BytesView data) {
  HERON_RETURN_NOT_OK(ValidatePath(path));
  std::vector<std::pair<WatchCallback, WatchEvent>> fired;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = nodes_.find(path);
    if (it == nodes_.end()) {
      return Status::NotFound(StrFormat("node '%s' not found", path.c_str()));
    }
    it->second.data = serde::Buffer(data);
    CollectWatchesLocked(path, WatchEventType::kDataChanged, &fired);
  }
  for (auto& [cb, event] : fired) cb(event);
  return Status::OK();
}

Result<serde::Buffer> InMemoryStateManager::GetNodeData(
    const std::string& path) const {
  HERON_RETURN_NOT_OK(ValidatePath(path));
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = nodes_.find(path);
  if (it == nodes_.end()) {
    return Status::NotFound(StrFormat("node '%s' not found", path.c_str()));
  }
  return it->second.data;
}

Status InMemoryStateManager::DeleteNodeInternal(
    const std::string& path,
    std::vector<std::pair<WatchCallback, WatchEvent>>* fired) {
  const auto it = nodes_.find(path);
  if (it == nodes_.end()) {
    return Status::NotFound(StrFormat("node '%s' not found", path.c_str()));
  }
  if (HasChildLocked(path)) {
    return Status::FailedPrecondition(
        StrFormat("node '%s' has children", path.c_str()));
  }
  nodes_.erase(it);
  CollectWatchesLocked(path, WatchEventType::kDeleted, fired);
  CollectWatchesLocked(ParentPath(path), WatchEventType::kChildrenChanged,
                       fired);
  return Status::OK();
}

Status InMemoryStateManager::DeleteNode(const std::string& path) {
  HERON_RETURN_NOT_OK(ValidatePath(path));
  std::vector<std::pair<WatchCallback, WatchEvent>> fired;
  Status st;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    st = DeleteNodeInternal(path, &fired);
  }
  for (auto& [cb, event] : fired) cb(event);
  return st;
}

Result<bool> InMemoryStateManager::ExistsNode(const std::string& path) const {
  HERON_RETURN_NOT_OK(ValidatePath(path));
  std::lock_guard<std::mutex> lock(mutex_);
  return ExistsLocked(path);
}

Result<std::vector<std::string>> InMemoryStateManager::ListChildren(
    const std::string& path) const {
  HERON_RETURN_NOT_OK(ValidatePath(path == "/" ? "/x" : path));
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ExistsLocked(path)) {
    return Status::NotFound(StrFormat("node '%s' not found", path.c_str()));
  }
  const std::string prefix = path == "/" ? "/" : path + "/";
  std::vector<std::string> children;
  for (auto it = nodes_.lower_bound(prefix);
       it != nodes_.end() && StartsWith(it->first, prefix); ++it) {
    const std::string rest = it->first.substr(prefix.size());
    if (rest.find('/') == std::string::npos) {
      children.push_back(rest);
    }
  }
  return children;
}

Status InMemoryStateManager::Watch(const std::string& path,
                                   WatchCallback callback) {
  HERON_RETURN_NOT_OK(ValidatePath(path));
  if (callback == nullptr) {
    return Status::InvalidArgument("null watch callback");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  watches_.emplace(path, std::move(callback));
  return Status::OK();
}

Result<SessionId> InMemoryStateManager::OpenSession() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!initialized_) {
    return Status::FailedPrecondition("state manager not initialized");
  }
  const SessionId id = next_session_++;
  sessions_.insert(id);
  return id;
}

Status InMemoryStateManager::CloseSession(SessionId session) {
  std::vector<std::pair<WatchCallback, WatchEvent>> fired;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.erase(session) == 0) {
      return Status::NotFound(StrFormat(
          "session %llu is not open", static_cast<unsigned long long>(session)));
    }
    // Delete ephemerals owned by the session, deepest paths first so the
    // no-children invariant holds.
    std::vector<std::string> ephemerals;
    for (const auto& [path, node] : nodes_) {
      if (node.owner == session) ephemerals.push_back(path);
    }
    std::sort(ephemerals.begin(), ephemerals.end(),
              [](const std::string& a, const std::string& b) {
                return a.size() > b.size();
              });
    for (const auto& path : ephemerals) {
      DeleteNodeInternal(path, &fired).ok();
    }
  }
  for (auto& [cb, event] : fired) cb(event);
  return Status::OK();
}

size_t InMemoryStateManager::NodeCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return nodes_.size();
}

}  // namespace statemgr
}  // namespace heron
