// Trace-based latency breakdown: where does a tuple's end-to-end latency
// go? Extends Figure 9 — which reports only the end-to-end number — with
// the sampled tuple-path tracing stages, so the 2-3X the SMGR
// optimizations buy can be attributed to specific stations on the path.
//
// Three panels:
//
//  1. BREAKDOWN — a real LocalCluster (WordCount, acking, 2 containers so
//     tuples cross the transport) with 1-in-8 sampled tracing. Prints the
//     six telescoping stage slices; because the deltas telescope, their
//     sum equals the mean end-to-end latency exactly (asserted).
//
//  2. SNAPSHOT — the TopologySnapshot JSON dump of the same run is
//     serialized, re-parsed, and compared field-for-field (the queryable
//     topology dump an external tracker would consume).
//
//  3. OVERHEAD — the same topology with tracing disabled vs enabled:
//     sampled tracing must be free when off and cheap when on.
//
// `--smoke` (or HERON_BENCH_FAST=1) trims every window for CI.

#include <chrono>
#include <cmath>
#include <string>
#include <thread>

#include "bench/figures/fig_util.h"
#include "common/logging.h"
#include "observability/snapshot.h"
#include "runtime/local_cluster.h"
#include "workloads/word_count.h"

using namespace heron;

namespace {

struct TracedRun {
  observability::TopologySnapshot snapshot;
  std::string json;
  double acks_per_min = 0;
  bool ok = false;
};

TracedRun RunLive(int64_t trace_sample_inverse) {
  TracedRun out;
  const uint64_t target_acks = bench::FastMode() ? 3000 : 20000;

  Config config;
  config.SetInt(config_keys::kNumContainersHint, 2);
  config.SetBool(config_keys::kAckingEnabled, true);
  config.SetInt(config_keys::kMaxSpoutPending, 1024);
  config.SetInt(config_keys::kMetricsCollectIntervalMs, 20);
  config.SetInt(config_keys::kTraceSampleInverse, trace_sample_inverse);
  runtime::LocalCluster cluster(config);

  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 1000;
  spout_options.words_per_call = 4;
  auto topology = workloads::BuildWordCountTopology(
      "trace-breakdown", /*spouts=*/1, /*bolts=*/2, spout_options);
  if (!topology.ok() || !cluster.Submit(*topology).ok()) return out;

  const auto t0 = std::chrono::steady_clock::now();
  if (!cluster.WaitForCounter("instance.acked", target_acks, 60000).ok()) {
    cluster.Kill().ok();
    return out;
  }
  const double window_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  const uint64_t acked = cluster.SumCounter("instance.acked");
  out.acks_per_min =
      window_ms > 0 ? static_cast<double>(acked) / window_ms * 60000.0 : 0;

  // One explicit publish so the state-tree rollups cover this run even if
  // no window rolled, then the queryable dump.
  if (cluster.metrics_cache() != nullptr) {
    cluster.metrics_cache()->PublishNow().ok();
  }
  out.snapshot = cluster.BuildSnapshot();
  out.json = out.snapshot.ToJson();
  out.ok = true;
  cluster.Kill().ok();
  return out;
}

bool SnapshotsAgree(const observability::TopologySnapshot& a,
                    const observability::TopologySnapshot& b) {
  return a.topology == b.topology &&
         a.captured_at_nanos == b.captured_at_nanos &&
         a.num_containers == b.num_containers && a.tasks == b.tasks &&
         a.dead_containers == b.dead_containers &&
         a.restarts_total == b.restarts_total &&
         a.topology_rollup.component == b.topology_rollup.component &&
         a.topology_rollup.processed_delta ==
             b.topology_rollup.processed_delta &&
         a.components.size() == b.components.size() && a.trace == b.trace;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseSmoke(argc, argv);
  bench::JsonReport report("trace_latency_breakdown");
  Logging::SetLevel(LogLevel::kError);

  bench::PrintFigureHeader(
      "Trace latency breakdown: per-stage attribution of end-to-end latency",
      "Sampled tuple-path tracing decomposes the Fig. 9 end-to-end number "
      "into spout-emit / smgr-route / transport / dequeue / execute / ack");

  std::printf("\n-- stage breakdown (1-in-8 sampling, live cluster) --\n");
  const TracedRun traced = RunLive(/*trace_sample_inverse=*/8);
  if (!traced.ok) {
    std::printf("  (traced run did not complete!)\n");
    return 1;
  }
  const auto& trace = traced.snapshot.trace;
  bench::PrintColumns({"stage", "mean_ms", "share_pct"});
  double stage_sum_ms = 0;
  for (const auto& stage : trace.stages) stage_sum_ms += stage.mean_ms;
  for (const auto& stage : trace.stages) {
    bench::PrintCell(stage.stage.c_str());
    bench::PrintCell(stage.mean_ms);
    bench::PrintCell(stage_sum_ms > 0 ? stage.mean_ms / stage_sum_ms * 100.0
                                      : 0);
    bench::EndRow();
    report.Add("stages", stage.stage + "_ms", stage.mean_ms);
  }
  report.Add("stages", "end_to_end_ms", trace.mean_end_to_end_ms);
  std::printf(
      "\n  traces %llu (complete %llu)  spans %llu (dropped %llu)\n",
      static_cast<unsigned long long>(trace.traces),
      static_cast<unsigned long long>(trace.complete),
      static_cast<unsigned long long>(trace.spans),
      static_cast<unsigned long long>(trace.dropped_spans));
  std::printf("  mean end-to-end %.3f ms, stage sum %.3f ms\n",
              trace.mean_end_to_end_ms, stage_sum_ms);
  // The telescoping invariant: per-stage deltas sum to end-to-end exactly
  // (both are means over the same complete traces).
  const double telescope_err =
      trace.mean_end_to_end_ms > 0
          ? std::fabs(stage_sum_ms - trace.mean_end_to_end_ms) /
                trace.mean_end_to_end_ms
          : 1.0;
  bench::PrintVerdict("stage sum / end-to-end agreement (ratio)",
                      trace.mean_end_to_end_ms > 0
                          ? stage_sum_ms / trace.mean_end_to_end_ms
                          : 0,
                      0.999, 1.001);

  std::printf("\n-- topology snapshot JSON round trip --\n");
  auto reparsed = observability::TopologySnapshot::FromJson(traced.json);
  const bool round_trips =
      reparsed.ok() && SnapshotsAgree(traced.snapshot, *reparsed);
  std::printf("  snapshot %zu bytes, %zu tasks, %zu component rollups: %s\n",
              traced.json.size(), traced.snapshot.tasks.size(),
              traced.snapshot.components.size(),
              round_trips ? "ROUND-TRIPS" : "MISMATCH");

  std::printf("\n-- tracing overhead (acks/min, higher is better) --\n");
  bench::PrintColumns({"tracing", "acks_per_min"});
  const TracedRun untraced = RunLive(/*trace_sample_inverse=*/0);
  bench::PrintCell("off");
  bench::PrintCell(untraced.acks_per_min);
  bench::EndRow();
  bench::PrintCell("1-in-8");
  bench::PrintCell(traced.acks_per_min);
  bench::EndRow();
  if (untraced.acks_per_min > 0) {
    std::printf("  traced/untraced throughput ratio: %.2f\n",
                traced.acks_per_min / untraced.acks_per_min);
  }
  report.Add("overhead", "untraced_acks_min", untraced.acks_per_min);
  report.Add("overhead", "traced_acks_min", traced.acks_per_min);

  const bool telescopes = telescope_err < 1e-3 && trace.complete > 0;
  std::printf("\n  %s\n", telescopes && round_trips
                              ? "OK: breakdown telescopes and the snapshot "
                                "round-trips"
                              : "FAILED: see panels above");
  report.Write();
  return telescopes && round_trips ? 0 : 1;
}
