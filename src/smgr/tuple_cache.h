#ifndef HERON_SMGR_TUPLE_CACHE_H_
#define HERON_SMGR_TUPLE_CACHE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.h"
#include "proto/messages.h"
#include "serde/message_pool.h"
#include "serde/wire.h"

namespace heron {
namespace smgr {

/// \brief The Stream Manager tuple cache (§V-B): "a cache that temporarily
/// stores the incoming and outgoing data tuples before routing them to the
/// appropriate Heron Instances. The cache stores tuples in batches along
/// with the Heron Instance id that is the recipient of the batch."
///
/// Tuples are appended — still serialized — to a per-(destination, source,
/// stream) batch buffer whose TupleBatchMsg header was written up front,
/// so draining is a buffer handoff, not a serialization pass. The cache is
/// flushed every `drain_frequency_ms` (the §V-B tuning knob swept in
/// Figs. 12-13) or earlier when the buffered bytes cross
/// `drain_size_bytes`. Single-threaded: owned by one SMGR loop.
class TupleCache {
 public:
  struct Options {
    int64_t drain_frequency_ms = 10;
    size_t drain_size_bytes = 1 << 20;
  };

  struct Stats {
    uint64_t tuples_added = 0;
    uint64_t batches_drained = 0;
    uint64_t timer_drains = 0;
    uint64_t size_drains = 0;
    uint64_t bytes_drained = 0;
  };

  /// \param pool  transport buffer pool batches are built in (not owned)
  TupleCache(const Options& options, serde::BufferPool* pool)
      : options_(options), pool_(pool) {}

  /// Appends one serialized tuple for `dest`. Returns true when the size
  /// threshold tripped and the caller should DrainAll now.
  /// \param trace_id  sampled-tracing id of this tuple (0 = untraced); the
  ///        batch remembers the last traced tuple so the outgoing envelope
  ///        can carry the hint without re-peeking tuple bytes.
  bool Add(TaskId dest, TaskId src_task, serde::BytesView stream,
           serde::BytesView src_component, serde::BytesView tuple_bytes,
           uint64_t trace_id = 0);

  struct Batch {
    TaskId dest = -1;
    serde::Buffer bytes;  ///< A complete serialized TupleBatchMsg.
    size_t tuple_count = 0;
    /// Envelope tracing hint: last traced tuple in the batch (0 = none).
    uint64_t trace_id = 0;
  };

  /// Flushes every pending batch. `timer_drain` attributes the drain in
  /// stats (timer vs size trigger).
  std::vector<Batch> DrainAll(bool timer_drain = true);

  /// Re-arms the drain timer relative to `now_nanos`.
  void ArmTimer(int64_t now_nanos) {
    next_drain_nanos_ = now_nanos + options_.drain_frequency_ms * 1000000;
  }
  int64_t next_drain_nanos() const { return next_drain_nanos_; }

  size_t pending_bytes() const { return pending_bytes_; }
  size_t pending_batches() const { return pending_.size(); }
  /// Bytes staged in eagerly flushed batches, still awaiting DrainAll.
  size_t eager_bytes() const { return eager_bytes_; }
  /// True when buffered bytes — open batches *plus* eagerly flushed ones —
  /// crossed the size threshold and the owner should DrainAll now. Eager
  /// bytes must count here or an eagerly flushed batch waits for the next
  /// timer tick (the stranded-batch latency bug).
  bool should_drain() const {
    return pending_bytes_ + eager_bytes_ >= options_.drain_size_bytes;
  }
  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

 private:
  struct Pending {
    serde::Buffer buffer;  ///< Header already encoded; tuples appended.
    size_t tuple_count = 0;
    std::string stream;    ///< Header stream, to detect key collisions.
    uint64_t trace_id = 0;  ///< Last traced tuple appended (0 = none).
  };

  /// (dest, src) packed; stream collisions on the same pair flush eagerly.
  static uint64_t KeyOf(TaskId dest, TaskId src) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(dest)) << 32) |
           static_cast<uint32_t>(src);
  }

  Options options_;
  serde::BufferPool* pool_;
  std::map<uint64_t, Pending> pending_;
  size_t pending_bytes_ = 0;
  size_t eager_bytes_ = 0;
  int64_t next_drain_nanos_ = 0;
  Stats stats_;
  std::vector<Batch> eager_;  ///< Batches flushed early (stream collision).
};

}  // namespace smgr
}  // namespace heron

#endif  // HERON_SMGR_TUPLE_CACHE_H_
