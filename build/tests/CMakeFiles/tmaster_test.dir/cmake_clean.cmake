file(REMOVE_RECURSE
  "CMakeFiles/tmaster_test.dir/tmaster/tmaster_test.cc.o"
  "CMakeFiles/tmaster_test.dir/tmaster/tmaster_test.cc.o.d"
  "tmaster_test"
  "tmaster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmaster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
