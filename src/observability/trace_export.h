#ifndef HERON_OBSERVABILITY_TRACE_EXPORT_H_
#define HERON_OBSERVABILITY_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "observability/journal.h"
#include "observability/trace.h"

namespace heron {
namespace observability {

/// \brief Everything the unified timeline merges: sampled tuple-path
/// spans, flight-recorder events and cooperative-scheduler slices. Any
/// of the vectors may be empty (tracing sampled out, journal dark,
/// thread-per-instance execution).
struct TimelineInput {
  std::vector<Span> spans;
  std::vector<JournalEvent> events;
  std::vector<SchedSlice> slices;
  /// Tasklet ordinal → loop name (TaskletPool::TaskletNames); slices
  /// whose ordinal has no name render as "tasklet-<n>".
  std::vector<std::string> tasklet_names;
};

/// \brief Renders the merged timeline as one Chrome trace_event JSON
/// document ({"traceEvents": [...]}), loadable at chrome://tracing and
/// https://ui.perfetto.dev.
///
/// Track layout (the "pid" is a synthetic track group, not a process):
///  - pid 0                "control-plane": journal instants from the
///    TMaster, checkpoint coordinator, scaling engine and cluster runtime;
///  - pid 1 + container    "container-<id>": SMGR-side span stages as
///    duration events plus that container's journal instants;
///  - pid 1000 + task      "task-<id>": instance-side span stages
///    (spout emit, dequeue, execute, ack) as duration events;
///  - pid 2000 + worker    "worker-<n>": scheduler slices, named by the
///    tasklet that ran.
///
/// Span stages telescope into duration events: each recorded stage spans
/// from the previous recorded stage's timestamp to its own, so a trace's
/// slices tile its end-to-end latency exactly (trace.h's attribution,
/// drawn). Output is byte-deterministic for a given input: events are
/// ordered by (track, timestamp, name) with fixed %.3f microsecond
/// formatting, so two-universe SimClock runs export identical files.
std::string BuildChromeTrace(const TimelineInput& input);

/// Writes `content` to `path` (truncating). Used for timeline dumps.
Status WriteFile(const std::string& path, const std::string& content);

}  // namespace observability
}  // namespace heron

#endif  // HERON_OBSERVABILITY_TRACE_EXPORT_H_
