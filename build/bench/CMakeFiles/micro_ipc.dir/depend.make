# Empty dependencies file for micro_ipc.
# This may be replaced when dependencies are built.
