#include "runtime/tasklet.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "ipc/channel.h"

namespace heron {
namespace runtime {
namespace {

EventLoop::Options LoopOptions(const std::string& name) {
  EventLoop::Options options;
  options.name = name;
  return options;
}

// -- ParseIdlePolicy -------------------------------------------------------

TEST(IdlePolicyTest, ParsesEveryKnobValue) {
  EXPECT_EQ(*ParseIdlePolicy("condvar-park"), IdlePolicy::kCondvarPark);
  EXPECT_EQ(*ParseIdlePolicy("adaptive-spin"), IdlePolicy::kAdaptiveSpin);
  EXPECT_EQ(*ParseIdlePolicy("busy-spin"), IdlePolicy::kBusySpin);
  EXPECT_TRUE(ParseIdlePolicy("spin-harder").status().IsInvalidArgument());
  EXPECT_STREQ(IdlePolicyName(IdlePolicy::kAdaptiveSpin), "adaptive-spin");
}

// -- Tasklet slice autotune ------------------------------------------------

// The full AIMD cycle: the budget slow-starts at min_burst (a cold loop
// must not open with a full-burst step), grows additively while steps stay
// cheap, then halves per overrunning step back down to the floor once
// tuples turn expensive (simulated per-tuple cost via the SimClock).
TEST(TaskletTest, SliceBudgetSlowStartsGrowsAndHalvesOnOverrun) {
  SimClock clock(0);
  EventLoop loop(LoopOptions("aimd"), &clock);
  ipc::Channel<int> source(/*capacity=*/4096);
  // Per-tuple cost is switchable: free first (to watch additive growth),
  // then expensive (to watch multiplicative decrease).
  int64_t tuple_cost_nanos = 0;
  loop.AddChannel<int>(&source, [&clock, &tuple_cost_nanos](int&&) {
    clock.AdvanceNanos(tuple_cost_nanos);
  });

  TaskletOptions options;
  options.target_slice_nanos = 200000;  // Two 100us tuples fit; more do not.
  options.min_burst = 8;
  options.max_burst = 1024;
  options.burst_step = 32;
  Tasklet tasklet(&loop, options, &clock);
  EXPECT_EQ(tasklet.budget(), options.min_burst);  // Slow start.

  // Free tuples: every worked step is in budget, +burst_step each.
  for (int i = 0; i < 64 && tasklet.budget() < options.max_burst; ++i) {
    for (int j = 0; j < 64; ++j) source.TrySend(int(j)).ok();
    tasklet.Drive();
  }
  EXPECT_EQ(tasklet.budget(), options.max_burst);

  // Expensive tuples: the first full-burst step overruns the target by
  // far and halves the budget — the one step the autotuner cannot see
  // coming. But that step also seeds the per-tuple cost EWMA, so from
  // here the predictive clamp sizes every burst to fit the slice target:
  // sustained expensive tuples cause no further overruns, regardless of
  // how the AIMD budget re-probes upward.
  tuple_cost_nanos = 100000;  // 100 us per tuple.
  for (int i = 0; i < 4096; ++i) source.TrySend(int(i)).ok();
  EXPECT_TRUE(tasklet.Drive());
  EXPECT_LE(tasklet.budget(), options.max_burst / 2);
  EXPECT_GE(tasklet.overruns(), 1u);
  EXPECT_GT(tasklet.cost_ewma_nanos(), 0.0);
  const uint64_t overruns_after_first = tasklet.overruns();
  for (int i = 0; i < 12 && source.size() > 0; ++i) tasklet.Drive();
  EXPECT_EQ(tasklet.overruns(), overruns_after_first);
}

// Idle steps carry no cost signal and must leave the budget untouched: a
// budget that creeps toward max while the loop idles would meet the next
// flood with a cold full-burst step — the recurring version of the
// startup transient slow-start exists to prevent.
TEST(TaskletTest, IdleStepsLeaveBudgetUntouched) {
  SimClock clock(0);
  EventLoop loop(LoopOptions("idle"), &clock);
  ipc::Channel<int> source(/*capacity=*/64);
  loop.AddChannel<int>(&source, [](int&&) {});

  TaskletOptions options;
  options.min_burst = 8;
  options.max_burst = 64;
  options.burst_step = 4;
  Tasklet tasklet(&loop, options, &clock);
  EXPECT_EQ(tasklet.budget(), options.min_burst);

  for (int i = 0; i < 100; ++i) tasklet.Drive();
  EXPECT_EQ(tasklet.budget(), options.min_burst);

  // One worked (free) step is evidence: the budget grows additively.
  ASSERT_TRUE(source.TrySend(1).ok());
  tasklet.Drive();
  EXPECT_EQ(tasklet.budget(), options.min_burst + options.burst_step);
}

// Idle workers run once per step, not once per burst — a slice must span
// many steps so producers (a spout's NextTuple is an idle worker) are not
// starved to one call per scheduling pass.
TEST(TaskletTest, SliceRunsManyStepsForIdleWorkerProgress) {
  SimClock clock(0);
  EventLoop loop(LoopOptions("idle"), &clock);
  int calls = 0;
  loop.AddIdle([&calls] {
    ++calls;
    return true;  // Always has work, like a spout under offered load.
  });

  TaskletOptions options;
  options.max_steps_per_slice = 16;
  Tasklet tasklet(&loop, options, &clock);
  EXPECT_TRUE(tasklet.Drive());
  // Under a SimClock no wall time passes, so the deterministic step cap
  // is the slice bound: exactly max_steps_per_slice idle calls.
  EXPECT_EQ(calls, 16);
  EXPECT_EQ(tasklet.slices(), 1u);

  tasklet.Drive();
  EXPECT_EQ(calls, 32);
}

// A drained loop ends its slice immediately instead of spinning the cap.
TEST(TaskletTest, NoWorkEndsSliceAfterOneStep) {
  SimClock clock(0);
  EventLoop loop(LoopOptions("drained"), &clock);
  ipc::Channel<int> source(/*capacity=*/4);
  loop.AddChannel<int>(&source, [](int&&) {});

  Tasklet tasklet(&loop, TaskletOptions(), &clock);
  EXPECT_FALSE(tasklet.Drive());
  EXPECT_EQ(loop.iterations(), 1u);
  EXPECT_FALSE(tasklet.Done());

  source.Close();
  tasklet.Drive();
  EXPECT_TRUE(tasklet.Done());  // Every source closed and drained.
}

// -- TaskletPool (inline mode: deterministic DriveAll) ---------------------

TEST(TaskletPoolTest, DriveAllStepsEveryMemberUntilDone) {
  TaskletPool::Options options;
  options.workers = 2;
  options.threaded = false;
  SimClock clock(0);
  TaskletPool pool(options, &clock);
  EXPECT_EQ(pool.num_workers(), 2u);

  constexpr int kLoops = 8;
  std::vector<std::unique_ptr<EventLoop>> loops;
  std::vector<std::unique_ptr<ipc::Channel<int>>> channels;
  std::vector<int> handled(kLoops, 0);
  for (int i = 0; i < kLoops; ++i) {
    loops.push_back(std::make_unique<EventLoop>(
        LoopOptions("member-" + std::to_string(i)), &clock));
    channels.push_back(std::make_unique<ipc::Channel<int>>(64));
    int* slot = &handled[i];
    loops.back()->AddChannel<int>(channels.back().get(),
                                  [slot](int&&) { ++*slot; });
    for (int j = 0; j <= i; ++j) ASSERT_TRUE(channels[i]->TrySend(int(j)).ok());
    pool.Add(loops.back().get());
  }

  // Starvation freedom: every member (spread round-robin over both inline
  // workers) drains to completion under repeated full passes, regardless
  // of how unevenly the work was dealt.
  int passes = 0;
  while (pool.DriveAll() && passes < 1000) ++passes;
  for (int i = 0; i < kLoops; ++i) {
    EXPECT_EQ(handled[i], i + 1) << "member " << i << " starved";
  }
}

TEST(TaskletPoolTest, RetiredMemberStopsBeingDriven) {
  TaskletPool::Options options;
  options.workers = 1;
  options.threaded = false;
  SimClock clock(0);
  TaskletPool pool(options, &clock);

  EventLoop loop(LoopOptions("retiree"), &clock);
  int calls = 0;
  loop.AddIdle([&calls] {
    ++calls;
    return true;
  });
  TaskletPool::Handle* handle = pool.Add(&loop);
  pool.DriveAll();
  const int before = calls;
  EXPECT_GT(before, 0);

  pool.Retire(handle);
  pool.Retire(handle);  // Idempotent.
  pool.DriveAll();
  EXPECT_EQ(calls, before);  // No further drives after Retire.
  pool.Retire(nullptr);      // Null is a no-op.
}

TEST(TaskletPoolTest, DoneMemberRunsShutdownHooksOnce) {
  TaskletPool::Options options;
  options.workers = 1;
  options.threaded = false;
  SimClock clock(0);
  TaskletPool pool(options, &clock);

  EventLoop loop(LoopOptions("done"), &clock);
  ipc::Channel<int> source(8);
  loop.AddChannel<int>(&source, [](int&&) {});
  int shutdowns = 0;
  loop.OnShutdown([&shutdowns] { ++shutdowns; });
  ASSERT_TRUE(source.TrySend(7).ok());
  source.Close();

  pool.Add(&loop);
  for (int i = 0; i < 4; ++i) pool.DriveAll();
  EXPECT_EQ(shutdowns, 1);  // Hooks fired on the drive pass that drained it.
}

// -- TaskletPool (threaded mode) -------------------------------------------

class ThreadedPoolTest : public ::testing::TestWithParam<IdlePolicy> {};

// Work submitted from outside the pool flows through the chained wakeup
// to the worker, gets processed, and the worker re-parks (or re-spins)
// without losing tuples — across every idle policy.
TEST_P(ThreadedPoolTest, ProcessesExternalWorkUnderEveryIdlePolicy) {
  TaskletPool::Options options;
  options.workers = 2;
  options.idle_policy = GetParam();
  options.spin_window_nanos = 20000;
  RealClock clock;
  TaskletPool pool(options, &clock);

  constexpr int kLoops = 8;
  constexpr int kTuplesPerLoop = 500;
  std::vector<std::unique_ptr<EventLoop>> loops;
  std::vector<std::unique_ptr<ipc::Channel<int>>> channels;
  std::vector<std::atomic<int>> handled(kLoops);
  for (int i = 0; i < kLoops; ++i) {
    loops.push_back(std::make_unique<EventLoop>(
        LoopOptions("worker-" + std::to_string(i)), &clock));
    channels.push_back(std::make_unique<ipc::Channel<int>>(128));
    std::atomic<int>* slot = &handled[i];
    loops.back()->AddChannel<int>(channels.back().get(), [slot](int&&) {
      slot->fetch_add(1, std::memory_order_relaxed);
    });
    pool.Add(loops.back().get());
  }
  pool.Start();

  // Producers hammer all 8 loops concurrently; the 2 workers multiplex.
  std::vector<std::thread> producers;
  for (int i = 0; i < kLoops; ++i) {
    producers.emplace_back([&channels, i] {
      for (int j = 0; j < kTuplesPerLoop; ++j) {
        while (!channels[i]->TrySend(int(j)).ok()) {
          std::this_thread::yield();
        }
      }
      channels[i]->Close();
    });
  }
  for (auto& t : producers) t.join();

  // Every tasklet drains fully: closing the channels flips Done(), so
  // waiting on the handled counts is starvation-freedom in miniature.
  const auto deadline = clock.NowNanos() + 20000000000LL;  // 20 s.
  for (int i = 0; i < kLoops; ++i) {
    while (handled[i].load(std::memory_order_relaxed) < kTuplesPerLoop &&
           clock.NowNanos() < deadline) {
      std::this_thread::yield();
    }
    EXPECT_EQ(handled[i].load(std::memory_order_relaxed), kTuplesPerLoop)
        << "loop " << i << " under " << IdlePolicyName(GetParam());
  }
  pool.Stop();
}

INSTANTIATE_TEST_SUITE_P(IdlePolicies, ThreadedPoolTest,
                         ::testing::Values(IdlePolicy::kCondvarPark,
                                           IdlePolicy::kAdaptiveSpin,
                                           IdlePolicy::kBusySpin),
                         [](const auto& info) {
                           std::string name = IdlePolicyName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// Retire during live traffic: the caller owns the loop the moment Retire
// returns, so destroying it immediately afterward must be safe even while
// workers are mid-pass (this is the graceful-Stop path of every module).
TEST(ThreadedPoolLifecycleTest, RetireDuringTrafficLeavesLoopOwnedByCaller) {
  TaskletPool::Options options;
  options.workers = 2;
  RealClock clock;
  TaskletPool pool(options, &clock);
  pool.Start();

  for (int round = 0; round < 20; ++round) {
    auto loop = std::make_unique<EventLoop>(
        LoopOptions("churn-" + std::to_string(round)), &clock);
    ipc::Channel<int> channel(64);
    std::atomic<int> seen{0};
    loop->AddChannel<int>(&channel, [&seen](int&&) {
      seen.fetch_add(1, std::memory_order_relaxed);
    });
    TaskletPool::Handle* handle = pool.Add(loop.get());
    for (int j = 0; j < 32; ++j) channel.TrySend(int(j)).ok();
    if (round % 2 == 0) std::this_thread::yield();
    pool.Retire(handle);
    channel.Close();
    loop.reset();  // Must not race the workers: Retire() fenced them out.
  }
  pool.Stop();
}

}  // namespace
}  // namespace runtime
}  // namespace heron
