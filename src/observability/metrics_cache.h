#ifndef HERON_OBSERVABILITY_METRICS_CACHE_H_
#define HERON_OBSERVABILITY_METRICS_CACHE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/ids.h"
#include "metrics/metrics_manager.h"
#include "observability/json.h"
#include "statemgr/state_manager.h"

namespace heron {
namespace observability {

/// \brief One rolling-window aggregate for a component (or, with
/// component == kTopologyRollup, the whole topology).
struct ComponentRollup {
  /// Component name, or kTopologyRollup for the topology-level total.
  std::string component;
  int64_t window_start_nanos = 0;
  /// Wall-clock actually covered by collection rounds inside the window
  /// (first round → last round); throughput divides by this.
  double window_covered_sec = 0;
  int tasks = 0;
  /// Tuples processed inside the window (counter delta: executed + emitted).
  double processed_delta = 0;
  /// Cumulative tuples processed up to the window's last round.
  double processed_total = 0;
  double throughput_tps = 0;
  /// Spout end-to-end (complete) latency quantiles, ms; 0 for bolts.
  double latency_p50_ms = 0;
  double latency_p90_ms = 0;
  double latency_p99_ms = 0;
  /// Cluster-wide backpressure time initiated inside the window, ms
  /// (topology rollup only — backpressure is per-SMGR, not per-component).
  double backpressure_ms = 0;
  /// Container restarts observed so far (topology rollup only).
  uint64_t restarts = 0;

  std::string ToJson() const;
  static Result<ComponentRollup> FromJson(std::string_view text);
  /// Nested forms, for embedding in larger documents (TopologySnapshot).
  void AppendTo(json::Writer* w) const;
  static ComponentRollup FromValue(const json::Value& v);
};

inline constexpr char kTopologyRollup[] = "_topology";

/// \brief The TMaster's metrics cache (§II: the Topology Master is "the
/// gateway for the topology metrics").
///
/// An IMetricsSink that every container's Metrics Manager flushes into
/// (the TMaster "subscribes" to each container by having the runtime add
/// this sink at container start). Collection rounds are bucketed into
/// rolling time windows of `window_nanos`; at most `max_windows` windows
/// are retained. Per window the cache keeps, per source, the first and
/// last value of every sample — enough to compute counter deltas
/// (throughput, backpressure time) and latest-value gauges/quantiles
/// without retaining raw rounds.
///
/// When a publish target is attached, rollups are written as JSON under
/// /topologies/<t>/metrics/... whenever the window rolls (and on
/// PublishNow), so topology-level metrics are queryable from the state
/// tree rather than by scanning raw sinks.
///
/// Thread safety: Flush arrives concurrently from every container's
/// housekeeping thread; all state is guarded by one mutex (collection
/// cadence is O(100ms), far off the data plane).
class MetricsCache final : public metrics::IMetricsSink {
 public:
  struct Options {
    int64_t window_nanos = 1'000'000'000;  ///< kMetricsCacheWindowSec.
    size_t max_windows = 60;               ///< kMetricsCacheMaxWindows.
  };

  MetricsCache() : MetricsCache(Options()) {}
  explicit MetricsCache(Options options);

  /// Task → component mapping (from the physical plan) plus the topology
  /// name; required before rollups attribute task sources to components.
  void SetTopology(const std::string& topology,
                   std::map<TaskId, ComponentId> task_component);

  /// Attaches the state tree target for published rollups.
  void SetPublishTarget(statemgr::IStateManager* sm);

  /// Records a container restart (fed by the recovery path).
  void NoteRestart(ContainerId container);

  // -- IMetricsSink --------------------------------------------------------
  void Flush(const std::string& source, const std::vector<metrics::Sample>& samples,
             int64_t collected_at_nanos) override;

  /// Per-component rollups over the newest window with data (sorted by
  /// component name).
  std::vector<ComponentRollup> ComponentRollups() const;
  /// Topology-level rollup over the newest window with data.
  ComponentRollup TopologyRollup() const;
  /// Per-task processed deltas (executed + emitted, reset-rebased) over
  /// the newest window with data — the scaling engine's skew signal.
  std::map<TaskId, double> PerTaskProcessedDelta() const;

  /// Writes the current rollups to the state tree now (no-op without a
  /// publish target or topology).
  Status PublishNow();

  size_t window_count() const;
  uint64_t rounds_ingested() const;

 private:
  struct SourceWindow {
    int64_t first_at_nanos = 0;
    int64_t last_at_nanos = 0;
    std::map<std::string, double> first;
    std::map<std::string, double> last;
  };
  struct Window {
    int64_t bucket = 0;  ///< collected_at_nanos / window_nanos.
    std::map<std::string, SourceWindow> sources;
  };

  /// Rollups over `w`; locked by caller.
  std::vector<ComponentRollup> RollupsLocked(const Window& w) const;
  ComponentRollup TopologyRollupLocked(const Window& w) const;
  Status PublishLocked();
  const Window* NewestWindowLocked() const;

  const Options options_;

  mutable std::mutex mutex_;
  std::string topology_;
  std::map<TaskId, ComponentId> task_component_;
  statemgr::IStateManager* publish_target_ = nullptr;
  std::deque<Window> windows_;  ///< Oldest-first; size <= max_windows.
  uint64_t rounds_ingested_ = 0;
  uint64_t restarts_ = 0;
};

}  // namespace observability
}  // namespace heron

#endif  // HERON_OBSERVABILITY_METRICS_CACHE_H_
