#include "sim/heron_model.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "metrics/metrics.h"
#include "packing/round_robin_packing.h"
#include "sim/des.h"
#include "workloads/word_count.h"

namespace heron {
namespace sim {

namespace {

constexpr double kNs = 1e-9;
/// Spout back pressure engages when the SMGR's backlog exceeds what this
/// many queued tuples would take to service — channel capacity is counted
/// in messages, so the time the queue represents scales with the per-tuple
/// service cost (a slower SMGR runs with proportionally deeper queues).
constexpr double kBackpressureQueueTuples = 25000;
constexpr double kBackpressureRetrySec = 0.001;

class HeronSim {
 public:
  HeronSim(const HeronSimConfig& config, const HeronCostModel& costs)
      : config_(config), costs_(costs), rng_(config.seed) {}

  SimResult Run();

 private:
  struct SpoutState {
    int container = 0;
    int64_t pending = 0;
    bool busy = false;     ///< A batch is in service or a retry is armed.
    bool waiting = false;  ///< Blocked on max_spout_pending.
  };
  struct CacheSlot {
    int64_t count = 0;
    double sum_emit = 0;
  };
  /// Pending ack updates toward one owner container.
  struct AckSlot {
    int64_t count = 0;
    double sum_emit = 0;
    double credit = 0;  ///< Fractional proportional-share carry-over.
  };
  /// A batch addressed to an offline container: survivors park it (the
  /// TrySendOrPark path) and redeliver when the replacement re-registers.
  struct OfflineBatch {
    double sec = 0;  ///< Service-seconds it contributes to the gate.
    std::function<void()> redeliver;
  };
  struct ContainerState {
    std::unique_ptr<SimServer> smgr;
    std::vector<CacheSlot> cache;  ///< Indexed by bolt.
    double cache_bytes = 0;
    std::vector<int> spouts;   ///< Spout indices homed here.
    size_t ack_cursor = 0;     ///< Round-robin ack fan-out position.
    std::vector<AckSlot> ack_out;  ///< Ack outbox, indexed by owner container.
    /// Service-seconds of batches parked on this container's SMGR retry
    /// queue because an instance channel is full (TrySendOrPark analog);
    /// counts toward the back-pressure gate.
    double parked_sec = 0;
    /// Scripted-failure window: the container's processes are dead.
    bool offline = false;
    /// Traffic parked by survivors while this container was offline.
    std::deque<OfflineBatch> offline_parked;
  };
  /// A batch waiting for space in a full SMGR→instance channel.
  struct ParkedBatch {
    int64_t n = 0;
    double t_avg = 0;
  };

  /// Straggler injection: work multiplier for container `c`'s SMGR.
  double SmgrScale(int c) const {
    return c == config_.slow_container ? config_.slow_container_factor : 1.0;
  }
  /// Backlog the spout back-pressure gate sees: the whole cluster's worst
  /// queue under the control-plane protocol, the home queue without it.
  /// Also tracks the peak for SimResult.
  double GateBacklog(int home);

  void SpoutTryEmit(int i);
  void SmgrInstanceBatch(int c, int64_t n, double t_emit);
  void DrainCache(int c);
  void SmgrTransit(int cd, int dest_bolt, int64_t n, double t_avg);
  void BoltBatchArrive(int j, int64_t n, double t_avg);
  void BoltDeliver(int j, int64_t n, double t_avg);
  double BoltBatchWork(int64_t n) const;
  void SmgrAckReturn(int c, int64_t n, double t_avg);
  void RecordLatency(double emitted_at, int64_t weight);
  bool Measuring() const { return des_.now() >= config_.warmup_sec; }
  /// Attributes one counted batch to the recovery phase it landed in.
  void BucketThroughput(int64_t n);
  void FailScriptedContainer();
  void RecoverScriptedContainer();

  HeronSimConfig config_;
  HeronCostModel costs_;
  Random rng_;
  Des des_;

  std::vector<std::unique_ptr<SimServer>> spout_servers_;
  std::vector<std::unique_ptr<SimServer>> bolt_servers_;
  std::vector<std::deque<ParkedBatch>> bolt_parked_;  ///< Indexed by bolt.
  std::vector<SpoutState> spout_state_;
  std::vector<ContainerState> containers_;
  std::vector<int> bolt_container_;

  metrics::Histogram latency_;
  double backlog_limit_sec_ = 0.002;
  uint64_t delivered_ = 0;
  uint64_t acked_ = 0;
  double max_backlog_sec_ = 0;
  uint64_t backpressure_stalls_ = 0;
  // Recovery-phase throughput buckets (scripted failure only).
  uint64_t counted_before_ = 0;
  uint64_t counted_outage_ = 0;
  uint64_t counted_after_ = 0;
};

void HeronSim::BucketThroughput(int64_t n) {
  if (!Measuring() || config_.fail_container < 0) return;
  const double t = des_.now();
  if (t < config_.fail_at_sec) {
    counted_before_ += static_cast<uint64_t>(n);
  } else if (t < config_.fail_at_sec + config_.offline_sec) {
    counted_outage_ += static_cast<uint64_t>(n);
  } else {
    counted_after_ += static_cast<uint64_t>(n);
  }
}

void HeronSim::FailScriptedContainer() {
  ContainerState& c =
      containers_[static_cast<size_t>(config_.fail_container)];
  c.offline = true;
  // The tuples cached in the dead SMGR die with the process; in the real
  // engine the ack timeout replays their trees from the spouts.
  for (auto& slot : c.cache) {
    slot.count = 0;
    slot.sum_emit = 0;
  }
  c.cache_bytes = 0;
  for (auto& slot : c.ack_out) {
    slot.count = 0;
    slot.sum_emit = 0;
    slot.credit = 0;
  }
}

void HeronSim::RecoverScriptedContainer() {
  const int cid = config_.fail_container;
  ContainerState& c = containers_[static_cast<size_t>(cid)];
  c.offline = false;
  // The replacement re-registered: survivors' parked backlog drains in
  // arrival order (the FlushRetries analog).
  while (!c.offline_parked.empty()) {
    OfflineBatch batch = std::move(c.offline_parked.front());
    c.offline_parked.pop_front();
    c.parked_sec = std::max(0.0, c.parked_sec - batch.sec);
    batch.redeliver();
  }
  // Its spouts restart with fresh pending windows (the old windows died
  // with the process).
  for (int i : c.spouts) {
    SpoutState& s = spout_state_[static_cast<size_t>(i)];
    s.pending = 0;
    s.busy = false;
    s.waiting = false;
    SpoutTryEmit(i);
  }
}

double HeronSim::GateBacklog(int home) {
  // A container's effective backlog is its SMGR's queued service time plus
  // any batches parked because an instance channel is full — exactly the
  // retry-queue depth the real SMGR trips its high watermark on.
  double max_backlog = 0;
  for (const auto& c : containers_) {
    max_backlog = std::max(max_backlog, c.smgr->Backlog() + c.parked_sec);
  }
  if (Measuring()) {
    max_backlog_sec_ = std::max(max_backlog_sec_, max_backlog);
  }
  if (config_.cluster_backpressure) return max_backlog;
  const ContainerState& h = containers_[static_cast<size_t>(home)];
  return h.smgr->Backlog() + h.parked_sec;
}

void HeronSim::RecordLatency(double emitted_at, int64_t weight) {
  if (!Measuring()) return;
  const double latency_sec = std::max(des_.now() - emitted_at, 0.0);
  latency_.Record(static_cast<uint64_t>(latency_sec * 1e9));
  (void)weight;  // Batch-level sampling; every batch contributes once.
}

void HeronSim::SpoutTryEmit(int i) {
  SpoutState& spout = spout_state_[static_cast<size_t>(i)];
  if (containers_[static_cast<size_t>(spout.container)].offline) return;
  if (spout.busy) return;
  const int64_t n = config_.spout_batch;
  if (config_.acking && config_.max_spout_pending > 0 &&
      spout.pending + n > config_.max_spout_pending) {
    spout.waiting = true;  // Re-armed by the ack return path.
    return;
  }
  if (GateBacklog(spout.container) > backlog_limit_sec_) {
    if (Measuring()) ++backpressure_stalls_;
    spout.busy = true;
    des_.ScheduleAfter(kBackpressureRetrySec, [this, i] {
      spout_state_[static_cast<size_t>(i)].busy = false;
      SpoutTryEmit(i);
    });
    return;
  }

  spout.busy = true;
  double work = static_cast<double>(n) *
                    (costs_.spout_user_ns + costs_.inst_serialize_ns) +
                costs_.batch_send_ns;
  if (!config_.optimizations) {
    // Pools off: per-tuple message objects plus the batch buffer are
    // heap-allocated fresh.
    work += static_cast<double>(n + 1) * costs_.alloc_ns;
  }
  const int c = spout.container;
  spout_servers_[static_cast<size_t>(i)]->Submit(work * kNs, [this, i, n, c] {
    SpoutState& s = spout_state_[static_cast<size_t>(i)];
    if (config_.acking) s.pending += n;
    SmgrInstanceBatch(c, n, des_.now());
    s.busy = false;
    SpoutTryEmit(i);
  });
}

void HeronSim::SmgrInstanceBatch(int c, int64_t n, double t_emit) {
  // A dead home SMGR receives nothing: the batch dies with the container.
  if (containers_[static_cast<size_t>(c)].offline) return;
  double per_tuple = config_.optimizations ? costs_.route_optimized_ns
                                           : costs_.route_unoptimized_ns;
  if (config_.acking) per_tuple += costs_.tracker_register_ns;
  if (!config_.optimizations) per_tuple += costs_.alloc_ns;
  const double work = costs_.batch_recv_ns + static_cast<double>(n) * per_tuple;
  containers_[static_cast<size_t>(c)].smgr->Submit(
      work * SmgrScale(c) * kNs, [this, c, n, t_emit] {
        ContainerState& container = containers_[static_cast<size_t>(c)];
        const size_t bolts = container.cache.size();
        for (int64_t k = 0; k < n; ++k) {
          CacheSlot& slot = container.cache[rng_.NextBelow(bolts)];
          ++slot.count;
          slot.sum_emit += t_emit;
        }
        container.cache_bytes += static_cast<double>(n) * costs_.tuple_bytes;
        if (container.cache_bytes >= config_.cache_drain_size_bytes) {
          DrainCache(c);
        }
      });
}

void HeronSim::DrainCache(int c) {
  ContainerState& container = containers_[static_cast<size_t>(c)];
  if (container.offline) return;  // Dead SMGR: no drain timer fires.
  for (size_t j = 0; j < container.cache.size(); ++j) {
    CacheSlot& slot = container.cache[j];
    if (slot.count == 0) continue;
    const int64_t n = slot.count;
    const double t_avg = slot.sum_emit / static_cast<double>(n);
    slot.count = 0;
    slot.sum_emit = 0;
    const int dest_bolt = static_cast<int>(j);
    const int cd = bolt_container_[j];
    double send_work = costs_.batch_send_ns;
    if (!config_.optimizations) send_work += costs_.alloc_ns;
    container.smgr->Submit(send_work * SmgrScale(c) * kNs,
                           [this, c, cd, dest_bolt, n, t_avg] {
      if (cd == c) {
        BoltBatchArrive(dest_bolt, n, t_avg);
      } else {
        const double wire = (costs_.network_batch_ns +
                             static_cast<double>(n) * costs_.network_tuple_ns) *
                            kNs;
        des_.ScheduleAfter(wire, [this, cd, dest_bolt, n, t_avg] {
          SmgrTransit(cd, dest_bolt, n, t_avg);
        });
      }
    });
  }
  container.cache_bytes = 0;

  // Flush the ack outbox alongside the data drain.
  for (size_t owner = 0; owner < container.ack_out.size(); ++owner) {
    AckSlot& slot = container.ack_out[owner];
    if (slot.count == 0) continue;
    const int64_t n = slot.count;
    const double t_avg = slot.sum_emit / static_cast<double>(n);
    slot.count = 0;
    slot.sum_emit = 0;
    const int cc = static_cast<int>(owner);
    container.smgr->Submit(costs_.batch_send_ns * SmgrScale(c) * kNs,
                           [this, c, cc, n, t_avg] {
      const double wire =
          (cc == c) ? 0
                    : (costs_.network_batch_ns +
                       static_cast<double>(n) * costs_.network_tuple_ns) *
                          kNs;
      des_.ScheduleAfter(wire,
                         [this, cc, n, t_avg] { SmgrAckReturn(cc, n, t_avg); });
    });
  }
}

void HeronSim::SmgrTransit(int cd, int dest_bolt, int64_t n, double t_avg) {
  ContainerState& dest = containers_[static_cast<size_t>(cd)];
  if (dest.offline) {
    // Destination SMGR is dark: the sender parks the envelope on its retry
    // queue (TrySendOrPark) and it counts toward the back-pressure gate
    // until the replacement re-registers.
    const double sec = BoltBatchWork(n) * SmgrScale(cd);
    dest.parked_sec += sec;
    dest.offline_parked.push_back({sec, [this, cd, dest_bolt, n, t_avg] {
                                     SmgrTransit(cd, dest_bolt, n, t_avg);
                                   }});
    return;
  }
  // "It parses only the destination field ... forwarded as a serialized
  // byte array" — or, ablated, the naive per-tuple parse + rebuild.
  double work = costs_.batch_recv_ns;
  if (config_.optimizations) {
    work += costs_.transit_peek_per_batch_ns;
  } else {
    work += static_cast<double>(n) *
            (costs_.transit_reser_per_tuple_ns + costs_.alloc_ns);
  }
  containers_[static_cast<size_t>(cd)].smgr->Submit(
      work * SmgrScale(cd) * kNs,
      [this, dest_bolt, n, t_avg] { BoltBatchArrive(dest_bolt, n, t_avg); });
}

double HeronSim::BoltBatchWork(int64_t n) const {
  double per_tuple = costs_.inst_deserialize_ns + costs_.bolt_user_ns;
  if (config_.acking) per_tuple += costs_.ack_update_ns;  // Emit the ack.
  if (!config_.optimizations) per_tuple += costs_.alloc_ns;
  return (costs_.batch_recv_ns + static_cast<double>(n) * per_tuple) * kNs;
}

void HeronSim::BoltBatchArrive(int j, int64_t n, double t_avg) {
  const int home = bolt_container_[static_cast<size_t>(j)];
  ContainerState& home_state = containers_[static_cast<size_t>(home)];
  if (home_state.offline) {
    // The bolt's container is dark: park until it re-registers.
    const double sec = BoltBatchWork(n) * SmgrScale(home);
    home_state.parked_sec += sec;
    home_state.offline_parked.push_back({sec, [this, j, n, t_avg] {
                                           BoltBatchArrive(j, n, t_avg);
                                         }});
    return;
  }
  const double cap = config_.instance_channel_capacity_sec;
  if (cap > 0 && (!bolt_parked_[static_cast<size_t>(j)].empty() ||
                  bolt_servers_[static_cast<size_t>(j)]->Backlog() > cap)) {
    // Instance channel full: the batch parks on its container's SMGR
    // retry queue (the TrySendOrPark path) and counts toward the queue
    // depth the back-pressure gate watches. FIFO per channel: anything
    // arriving behind an already-parked batch parks too.
    const int cd = bolt_container_[static_cast<size_t>(j)];
    containers_[static_cast<size_t>(cd)].parked_sec +=
        BoltBatchWork(n) * SmgrScale(cd);
    bolt_parked_[static_cast<size_t>(j)].push_back({n, t_avg});
    return;
  }
  BoltDeliver(j, n, t_avg);
}

void HeronSim::BoltDeliver(int j, int64_t n, double t_avg) {
  bolt_servers_[static_cast<size_t>(j)]->Submit(BoltBatchWork(n), [this, j, n,
                                                                   t_avg] {
    // A kill that lands mid-service takes the in-flight batch with it.
    if (containers_[static_cast<size_t>(
                        bolt_container_[static_cast<size_t>(j)])]
            .offline) {
      return;
    }
    if (Measuring()) delivered_ += static_cast<uint64_t>(n);
    if (!config_.acking) {
      BucketThroughput(n);
      RecordLatency(t_avg, n);
    } else {
      // Ack updates accumulate in the bolt container's ack outbox, batched
      // per owner container — exactly how the real Outbox/AckBatchMsg path
      // coalesces acks — and flush with the drain timer. Owners receive
      // shares proportional to the spouts they host; fractional shares
      // carry over so no owner starves.
      ContainerState& home = containers_[static_cast<size_t>(
          bolt_container_[static_cast<size_t>(j)])];
      const int total_spouts = config_.spouts;
      for (size_t c = 0; c < home.ack_out.size(); ++c) {
        ContainerState& owner = containers_[c];
        if (owner.spouts.empty()) continue;
        AckSlot& slot = home.ack_out[c];
        slot.credit += static_cast<double>(n) *
                       static_cast<double>(owner.spouts.size()) /
                       static_cast<double>(total_spouts);
        const int64_t share = static_cast<int64_t>(slot.credit);
        if (share <= 0) continue;
        slot.credit -= static_cast<double>(share);
        slot.count += share;
        slot.sum_emit += t_avg * static_cast<double>(share);
      }
    }
    // FlushRetries: a completed service freed channel space, so the oldest
    // parked batch (if any) un-parks in arrival order.
    auto& parked = bolt_parked_[static_cast<size_t>(j)];
    if (!parked.empty() &&
        bolt_servers_[static_cast<size_t>(j)]->Backlog() <=
            config_.instance_channel_capacity_sec) {
      const ParkedBatch next = parked.front();
      parked.pop_front();
      const int cd = bolt_container_[static_cast<size_t>(j)];
      containers_[static_cast<size_t>(cd)].parked_sec -=
          BoltBatchWork(next.n) * SmgrScale(cd);
      BoltDeliver(j, next.n, next.t_avg);
    }
  });
}

void HeronSim::SmgrAckReturn(int c, int64_t n, double t_avg) {
  // Acks for a dead owner are lost with its tracker; the real engine's
  // message timeout replays those trees after recovery.
  if (containers_[static_cast<size_t>(c)].offline) return;
  double per_tuple = costs_.ack_update_ns + costs_.root_event_ns;
  if (!config_.optimizations) {
    per_tuple += costs_.ack_unopt_extra_ns + costs_.alloc_ns;
  }
  const double work =
      costs_.batch_recv_ns + static_cast<double>(n) * per_tuple;
  containers_[static_cast<size_t>(c)].smgr->Submit(
      work * SmgrScale(c) * kNs, [this, c, n, t_avg] {
    ContainerState& container = containers_[static_cast<size_t>(c)];
    if (container.spouts.empty()) return;
    // Completions spread round-robin over the container's spouts so every
    // spout's pending window keeps draining.
    const size_t spout_count = container.spouts.size();
    const int64_t per_spout = std::max<int64_t>(
        1, n / static_cast<int64_t>(spout_count));
    int64_t remaining = n;
    for (size_t step = 0; step < spout_count && remaining > 0; ++step) {
      const int i =
          container.spouts[(container.ack_cursor + step) % spout_count];
      const int64_t take = std::min(per_spout, remaining);
      remaining -= take;
      const double work_spout = static_cast<double>(take) * costs_.spout_ack_ns;
      spout_servers_[static_cast<size_t>(i)]->Submit(
          work_spout * kNs, [this, i, take, t_avg] {
            SpoutState& spout = spout_state_[static_cast<size_t>(i)];
            spout.pending = std::max<int64_t>(0, spout.pending - take);
            if (Measuring()) acked_ += static_cast<uint64_t>(take);
            BucketThroughput(take);
            RecordLatency(t_avg, take);
            if (spout.waiting) {
              spout.waiting = false;
              SpoutTryEmit(i);
            }
          });
    }
    container.ack_cursor = (container.ack_cursor + 1) % spout_count;
  });
}

SimResult HeronSim::Run() {
  // Place instances with the real Resource Manager policy.
  auto topology = workloads::BuildWordCountTopology(
      "sim-word-count", config_.spouts, config_.bolts);
  HERON_DCHECK(topology.ok()) << "sim topology build failed";
  Config packing_config;
  const int total = config_.spouts + config_.bolts;
  packing_config.SetInt(
      config_keys::kNumContainersHint,
      (total + config_.instances_per_container - 1) /
          config_.instances_per_container);
  packing::RoundRobinPacking packing;
  HERON_CHECK_OK(packing.Initialize(packing_config, *topology));
  auto plan = packing.Pack();
  HERON_DCHECK(plan.ok()) << "sim packing failed";

  const int num_containers = plan->NumContainers();
  containers_.resize(static_cast<size_t>(num_containers));
  for (auto& c : containers_) {
    c.smgr = std::make_unique<SimServer>(&des_);
    c.cache.resize(static_cast<size_t>(config_.bolts));
    c.ack_out.resize(static_cast<size_t>(num_containers));
  }
  spout_servers_.reserve(static_cast<size_t>(config_.spouts));
  spout_state_.resize(static_cast<size_t>(config_.spouts));
  bolt_servers_.reserve(static_cast<size_t>(config_.bolts));
  bolt_container_.resize(static_cast<size_t>(config_.bolts));

  // Task ids: spouts are component "word" (first), bolts "count". A
  // straggler container slows every process it hosts — instance servers
  // included — not just its SMGR (a cgroup-throttled host is slow for
  // everything).
  for (int i = 0; i < config_.spouts; ++i) {
    const auto* container = plan->FindContainerOfTask(i);
    spout_servers_.push_back(
        std::make_unique<SimServer>(&des_, SmgrScale(container->id)));
    spout_state_[static_cast<size_t>(i)].container = container->id;
    containers_[static_cast<size_t>(container->id)].spouts.push_back(i);
  }
  for (int j = 0; j < config_.bolts; ++j) {
    const auto* container = plan->FindContainerOfTask(config_.spouts + j);
    bolt_servers_.push_back(
        std::make_unique<SimServer>(&des_, SmgrScale(container->id)));
    bolt_container_[static_cast<size_t>(j)] = container->id;
  }
  bolt_parked_.resize(static_cast<size_t>(config_.bolts));

  // Arm the per-container cache-drain timers.
  const double drain_period = config_.cache_drain_frequency_ms * 1e-3;
  for (int c = 0; c < num_containers; ++c) {
    // Self-rescheduling timer via a shared holder.
    auto holder = std::make_shared<std::function<void()>>();
    *holder = [this, c, drain_period, holder] {
      DrainCache(c);
      des_.ScheduleAfter(drain_period, *holder);
    };
    des_.ScheduleAfter(drain_period, *holder);
  }

  // The spout back-pressure threshold in queue *time* follows from the
  // per-tuple SMGR service cost (queues are bounded in messages).
  double smgr_per_tuple_ns = config_.optimizations
                                 ? costs_.route_optimized_ns
                                 : costs_.route_unoptimized_ns + costs_.alloc_ns;
  if (config_.acking) smgr_per_tuple_ns += costs_.tracker_register_ns;
  backlog_limit_sec_ =
      std::max(0.002, kBackpressureQueueTuples * smgr_per_tuple_ns * kNs);

  for (int i = 0; i < config_.spouts; ++i) {
    SpoutTryEmit(i);
  }

  // Arm the scripted failure window (the recovery figure's fault).
  if (config_.fail_container >= 0 && config_.fail_container < num_containers &&
      config_.offline_sec > 0) {
    des_.ScheduleAfter(config_.fail_at_sec,
                       [this] { FailScriptedContainer(); });
    des_.ScheduleAfter(config_.fail_at_sec + config_.offline_sec,
                       [this] { RecoverScriptedContainer(); });
  }

  const double end = config_.warmup_sec + config_.measure_sec;
  des_.RunUntil(end);

  SimResult result;
  result.tuples_delivered = delivered_;
  result.tuples_acked = acked_;
  const uint64_t counted = config_.acking ? acked_ : delivered_;
  result.tuples_per_min =
      static_cast<double>(counted) / config_.measure_sec * 60.0;
  result.latency_ms_mean = latency_.Mean() / 1e6;
  result.latency_ms_p50 = static_cast<double>(latency_.Quantile(0.5)) / 1e6;
  result.latency_ms_p99 = static_cast<double>(latency_.Quantile(0.99)) / 1e6;
  result.cpu_cores_provisioned =
      static_cast<double>(config_.spouts + config_.bolts + num_containers);
  result.tuples_per_min_per_core =
      result.tuples_per_min / result.cpu_cores_provisioned;
  double max_util = 0;
  for (const auto& c : containers_) {
    max_util = std::max(max_util, c.smgr->busy_time() / end);
  }
  result.max_smgr_utilization = max_util;
  result.max_smgr_backlog_sec = max_backlog_sec_;
  result.backpressure_stalls = backpressure_stalls_;
  if (config_.fail_container >= 0) {
    const double t0 = config_.warmup_sec;
    const double t_fail = config_.fail_at_sec;
    const double t_back = config_.fail_at_sec + config_.offline_sec;
    const double before_sec = std::max(0.0, std::min(t_fail, end) - t0);
    const double outage_sec =
        std::max(0.0, std::min(t_back, end) - std::max(t_fail, t0));
    const double after_sec = std::max(0.0, end - std::max(t_back, t0));
    const auto rate = [](uint64_t n, double sec) {
      return sec > 0 ? static_cast<double>(n) / sec * 60.0 : 0.0;
    };
    result.tput_before_per_min = rate(counted_before_, before_sec);
    result.tput_outage_per_min = rate(counted_outage_, outage_sec);
    result.tput_after_per_min = rate(counted_after_, after_sec);
  }
  result.sim_events = des_.events_processed();
  return result;
}

}  // namespace

SimResult RunHeronSim(const HeronSimConfig& config,
                      const HeronCostModel& costs) {
  HeronSim sim(config, costs);
  return sim.Run();
}

}  // namespace sim
}  // namespace heron
