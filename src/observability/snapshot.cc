#include "observability/snapshot.h"

#include <algorithm>

#include "observability/json.h"

namespace heron {
namespace observability {

TopologySnapshot::TraceSummary SummarizeTraces(const TraceBreakdown& breakdown,
                                               uint64_t spans,
                                               uint64_t dropped_spans) {
  TopologySnapshot::TraceSummary out;
  out.traces = breakdown.traces.size();
  out.complete = breakdown.complete_count;
  out.spans = spans;
  out.dropped_spans = dropped_spans;
  out.mean_end_to_end_ms = breakdown.mean_end_to_end_nanos / 1e6;
  out.stages.reserve(kNumTraceStages);
  for (size_t stage = 0; stage < kNumTraceStages; ++stage) {
    TopologySnapshot::StageLatency slice;
    slice.stage = TraceStageName(static_cast<TraceStage>(stage));
    slice.mean_ms = breakdown.mean_delta_nanos[stage] / 1e6;
    out.stages.push_back(std::move(slice));
  }
  return out;
}

TopologySnapshot::JournalSummary SummarizeJournal(
    const std::vector<JournalEvent>& events, uint64_t recorded,
    uint64_t dropped) {
  TopologySnapshot::JournalSummary out;
  out.events = events.size();
  out.recorded = recorded;
  out.dropped = dropped;
  uint64_t counts[kNumJournalEventTypes] = {};
  for (const JournalEvent& e : events) {
    const size_t type = static_cast<size_t>(e.type);
    if (type < kNumJournalEventTypes) ++counts[type];
  }
  for (size_t type = 0; type < kNumJournalEventTypes; ++type) {
    if (counts[type] == 0) continue;
    TopologySnapshot::JournalTypeCount entry;
    entry.type = JournalEventTypeName(static_cast<JournalEventType>(type));
    entry.count = counts[type];
    out.by_type.push_back(std::move(entry));
  }
  return out;
}

std::string TopologySnapshot::ToJson() const {
  json::Writer w;
  w.BeginObject();
  w.Key("topology").String(topology);
  w.Key("captured_at_nanos").Int(captured_at_nanos);

  w.Key("physical_plan").BeginObject();
  w.Key("num_containers").Int(num_containers);
  w.Key("tasks").BeginArray();
  for (const TaskEntry& t : tasks) {
    w.BeginObject();
    w.Key("task").Int(t.task);
    w.Key("component").String(t.component);
    w.Key("container").Int(t.container);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  w.Key("liveness").BeginObject();
  w.Key("dead_containers").BeginArray();
  for (const int id : dead_containers) w.Int(id);
  w.EndArray();
  w.Key("restarts_total").Uint(restarts_total);
  w.EndObject();

  w.Key("metrics").BeginObject();
  w.Key("topology_rollup");
  topology_rollup.AppendTo(&w);
  w.Key("components").BeginArray();
  for (const ComponentRollup& rollup : components) rollup.AppendTo(&w);
  w.EndArray();
  w.EndObject();

  w.Key("trace").BeginObject();
  w.Key("traces").Uint(trace.traces);
  w.Key("complete").Uint(trace.complete);
  w.Key("spans").Uint(trace.spans);
  w.Key("dropped_spans").Uint(trace.dropped_spans);
  w.Key("mean_end_to_end_ms").Number(trace.mean_end_to_end_ms);
  w.Key("stages").BeginArray();
  for (const StageLatency& slice : trace.stages) {
    w.BeginObject();
    w.Key("stage").String(slice.stage);
    w.Key("mean_ms").Number(slice.mean_ms);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  w.Key("journal").BeginObject();
  w.Key("events").Uint(journal.events);
  w.Key("recorded").Uint(journal.recorded);
  w.Key("dropped").Uint(journal.dropped);
  w.Key("by_type").BeginArray();
  for (const JournalTypeCount& entry : journal.by_type) {
    w.BeginObject();
    w.Key("type").String(entry.type);
    w.Key("count").Uint(entry.count);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  w.Key("scheduler").BeginObject();
  w.Key("workers").Uint(scheduler.workers);
  w.Key("tasklets").Uint(scheduler.tasklets);
  w.Key("slices").Uint(scheduler.slices);
  w.Key("overruns").Uint(scheduler.overruns);
  w.Key("occupancy").Number(scheduler.occupancy);
  w.Key("busy_ms").Number(scheduler.busy_ms);
  w.Key("wall_ms").Number(scheduler.wall_ms);
  w.Key("slice_events").Uint(scheduler.slice_events);
  w.Key("dropped_slices").Uint(scheduler.dropped_slices);
  w.EndObject();

  w.EndObject();
  return w.Take();
}

Result<TopologySnapshot> TopologySnapshot::FromJson(std::string_view text) {
  HERON_ASSIGN_OR_RETURN(json::Value v, json::Parse(text));
  if (v.kind != json::Value::Kind::kObject) {
    return Status::IOError("topology snapshot JSON is not an object");
  }
  TopologySnapshot out;
  out.topology = v.StringOr("topology", "");
  out.captured_at_nanos =
      static_cast<int64_t>(v.NumberOr("captured_at_nanos", 0));

  if (const json::Value* plan = v.Find("physical_plan")) {
    out.num_containers = static_cast<int>(plan->NumberOr("num_containers", 0));
    if (const json::Value* tasks = plan->Find("tasks")) {
      for (const json::Value& t : tasks->array) {
        TaskEntry entry;
        entry.task = static_cast<int>(t.NumberOr("task", -1));
        entry.component = t.StringOr("component", "");
        entry.container = static_cast<int>(t.NumberOr("container", -1));
        out.tasks.push_back(std::move(entry));
      }
    }
  }

  if (const json::Value* liveness = v.Find("liveness")) {
    if (const json::Value* dead = liveness->Find("dead_containers")) {
      for (const json::Value& id : dead->array) {
        out.dead_containers.push_back(static_cast<int>(id.number));
      }
    }
    out.restarts_total =
        static_cast<uint64_t>(liveness->NumberOr("restarts_total", 0));
  }

  if (const json::Value* metrics = v.Find("metrics")) {
    if (const json::Value* rollup = metrics->Find("topology_rollup")) {
      out.topology_rollup = ComponentRollup::FromValue(*rollup);
    }
    if (const json::Value* components = metrics->Find("components")) {
      for (const json::Value& rollup : components->array) {
        out.components.push_back(ComponentRollup::FromValue(rollup));
      }
    }
  }

  if (const json::Value* trace = v.Find("trace")) {
    out.trace.traces = static_cast<uint64_t>(trace->NumberOr("traces", 0));
    out.trace.complete = static_cast<uint64_t>(trace->NumberOr("complete", 0));
    out.trace.spans = static_cast<uint64_t>(trace->NumberOr("spans", 0));
    out.trace.dropped_spans =
        static_cast<uint64_t>(trace->NumberOr("dropped_spans", 0));
    out.trace.mean_end_to_end_ms = trace->NumberOr("mean_end_to_end_ms", 0);
    if (const json::Value* stages = trace->Find("stages")) {
      for (const json::Value& slice : stages->array) {
        StageLatency stage;
        stage.stage = slice.StringOr("stage", "");
        stage.mean_ms = slice.NumberOr("mean_ms", 0);
        out.trace.stages.push_back(std::move(stage));
      }
    }
  }

  if (const json::Value* journal = v.Find("journal")) {
    out.journal.events =
        static_cast<uint64_t>(journal->NumberOr("events", 0));
    out.journal.recorded =
        static_cast<uint64_t>(journal->NumberOr("recorded", 0));
    out.journal.dropped =
        static_cast<uint64_t>(journal->NumberOr("dropped", 0));
    if (const json::Value* by_type = journal->Find("by_type")) {
      for (const json::Value& entry : by_type->array) {
        JournalTypeCount count;
        count.type = entry.StringOr("type", "");
        count.count = static_cast<uint64_t>(entry.NumberOr("count", 0));
        out.journal.by_type.push_back(std::move(count));
      }
    }
  }

  if (const json::Value* sched = v.Find("scheduler")) {
    out.scheduler.workers =
        static_cast<uint64_t>(sched->NumberOr("workers", 0));
    out.scheduler.tasklets =
        static_cast<uint64_t>(sched->NumberOr("tasklets", 0));
    out.scheduler.slices =
        static_cast<uint64_t>(sched->NumberOr("slices", 0));
    out.scheduler.overruns =
        static_cast<uint64_t>(sched->NumberOr("overruns", 0));
    out.scheduler.occupancy = sched->NumberOr("occupancy", 0);
    out.scheduler.busy_ms = sched->NumberOr("busy_ms", 0);
    out.scheduler.wall_ms = sched->NumberOr("wall_ms", 0);
    out.scheduler.slice_events =
        static_cast<uint64_t>(sched->NumberOr("slice_events", 0));
    out.scheduler.dropped_slices =
        static_cast<uint64_t>(sched->NumberOr("dropped_slices", 0));
  }
  return out;
}

}  // namespace observability
}  // namespace heron
