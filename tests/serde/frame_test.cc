#include "serde/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/random.h"

namespace heron {
namespace serde {
namespace {

FrameHeader RandomHeader(Random* rng) {
  FrameHeader h;
  h.type = static_cast<uint8_t>(rng->NextBelow(256));
  h.dest_kind = static_cast<uint8_t>(rng->NextBelow(2));
  h.payload_len = static_cast<uint32_t>(rng->NextBelow(1 << 20));
  h.dest = h.dest_kind == 1
               ? static_cast<int32_t>(rng->NextBelow(1 << 16))
               : -1;
  h.trace_id = rng->NextUint64();
  return h;
}

TEST(FrameTest, HeaderRoundTripProperty) {
  Random rng(1234);
  for (int i = 0; i < 1000; ++i) {
    const FrameHeader in = RandomHeader(&rng);
    char wire[kFrameHeaderBytes];
    EncodeFrameHeader(in, wire);
    FrameHeader out;
    ASSERT_TRUE(
        DecodeFrameHeader(BytesView(wire, kFrameHeaderBytes), &out).ok());
    EXPECT_EQ(in, out);
  }
}

TEST(FrameTest, AppendThenDecodeEqualsEncode) {
  Random rng(99);
  for (int i = 0; i < 100; ++i) {
    const FrameHeader in = RandomHeader(&rng);
    Buffer appended;
    AppendFrameHeader(in, &appended);
    ASSERT_EQ(appended.size(), kFrameHeaderBytes);
    char direct[kFrameHeaderBytes];
    EncodeFrameHeader(in, direct);
    EXPECT_EQ(appended, Buffer(direct, kFrameHeaderBytes));
  }
}

TEST(FrameTest, EveryTruncatedPrefixIsRejected) {
  Random rng(7);
  const FrameHeader in = RandomHeader(&rng);
  char wire[kFrameHeaderBytes];
  EncodeFrameHeader(in, wire);
  for (size_t len = 0; len < kFrameHeaderBytes; ++len) {
    FrameHeader out;
    EXPECT_FALSE(DecodeFrameHeader(BytesView(wire, len), &out).ok())
        << "prefix of " << len << " bytes must not decode";
    EXPECT_FALSE(PeekFrameSize(BytesView(wire, len)).ok());
  }
}

TEST(FrameTest, BadMagicIsRejected) {
  Random rng(8);
  const FrameHeader in = RandomHeader(&rng);
  char wire[kFrameHeaderBytes];
  EncodeFrameHeader(in, wire);
  for (const size_t flip : {size_t{0}, size_t{1}}) {
    char corrupt[kFrameHeaderBytes];
    std::memcpy(corrupt, wire, kFrameHeaderBytes);
    corrupt[flip] = static_cast<char>(corrupt[flip] ^ 0x5A);
    FrameHeader out;
    EXPECT_FALSE(
        DecodeFrameHeader(BytesView(corrupt, kFrameHeaderBytes), &out).ok());
  }
}

TEST(FrameTest, OversizePayloadLenIsRejected) {
  FrameHeader in;
  in.payload_len = kMaxFramePayloadBytes + 1;
  char wire[kFrameHeaderBytes];
  EncodeFrameHeader(in, wire);
  FrameHeader out;
  EXPECT_FALSE(
      DecodeFrameHeader(BytesView(wire, kFrameHeaderBytes), &out).ok());
  // The cap itself is legal.
  in.payload_len = kMaxFramePayloadBytes;
  EncodeFrameHeader(in, wire);
  EXPECT_TRUE(
      DecodeFrameHeader(BytesView(wire, kFrameHeaderBytes), &out).ok());
  EXPECT_EQ(out.payload_len, kMaxFramePayloadBytes);
}

TEST(FrameTest, PeekFrameSizeEqualsFullDecode) {
  // Header-only peek must agree with the full decode on every frame — the
  // property the stream reassembler relies on to split frames without
  // parsing them.
  Random rng(4321);
  for (int i = 0; i < 1000; ++i) {
    const FrameHeader in = RandomHeader(&rng);
    Buffer frame;
    AppendFrameHeader(in, &frame);
    frame.append(in.payload_len % 64, 'x');  // Partial payload is fine.
    auto peeked = PeekFrameSize(frame);
    ASSERT_TRUE(peeked.ok());
    FrameHeader out;
    ASSERT_TRUE(DecodeFrameHeader(frame, &out).ok());
    EXPECT_EQ(*peeked, kFrameHeaderBytes + out.payload_len);
  }
}

TEST(FrameTest, FuzzRandomBytesNeverCrashAndRarelyDecode) {
  // 20 random bytes must either decode cleanly or fail cleanly — never
  // report a size beyond the cap the reassembler would trust.
  Random rng(0xF00D);
  for (int i = 0; i < 5000; ++i) {
    char junk[kFrameHeaderBytes];
    for (char& c : junk) c = static_cast<char>(rng.NextBelow(256));
    FrameHeader out;
    if (DecodeFrameHeader(BytesView(junk, kFrameHeaderBytes), &out).ok()) {
      EXPECT_LE(out.payload_len, kMaxFramePayloadBytes);
      auto peeked = PeekFrameSize(BytesView(junk, kFrameHeaderBytes));
      ASSERT_TRUE(peeked.ok());
      EXPECT_EQ(*peeked, kFrameHeaderBytes + out.payload_len);
    }
  }
}

TEST(FrameTest, MaxSizePayloadFrameRoundTrip) {
  // A full frame at a large (but allocatable) payload size survives the
  // append + peek + decode path byte-exactly.
  FrameHeader in;
  in.type = 5;
  in.dest_kind = 1;
  in.dest = 12345;
  in.trace_id = 0xDEADBEEFCAFEF00DULL;
  Buffer payload(1u << 20, '\x7F');
  in.payload_len = static_cast<uint32_t>(payload.size());

  Buffer frame;
  AppendFrameHeader(in, &frame);
  frame.append(payload);

  auto peeked = PeekFrameSize(frame);
  ASSERT_TRUE(peeked.ok());
  EXPECT_EQ(*peeked, frame.size());
  FrameHeader out;
  ASSERT_TRUE(DecodeFrameHeader(frame, &out).ok());
  EXPECT_EQ(in, out);
  EXPECT_EQ(BytesView(frame).substr(kFrameHeaderBytes), BytesView(payload));
}

}  // namespace
}  // namespace serde
}  // namespace heron
