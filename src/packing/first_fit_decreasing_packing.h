#ifndef HERON_PACKING_FIRST_FIT_DECREASING_PACKING_H_
#define HERON_PACKING_FIRST_FIT_DECREASING_PACKING_H_

#include <memory>

#include "packing/packing.h"

namespace heron {
namespace packing {

/// \brief First-Fit-Decreasing bin packing (§IV-A: "a user who wants to
/// reduce the total cost of running a topology in a pay-as-you-go
/// environment can choose a Bin Packing algorithm that produces a packing
/// plan with the minimum number of containers").
///
/// Containers are bins of the configured capacity
/// (`heron.packing.container.{cpu,ram.mb,disk.mb}`); instances are sorted
/// by RAM then CPU descending and placed into the first container that
/// fits. FFD uses at most 11/9·OPT + 1 bins.
class FirstFitDecreasingPacking final : public IPacking {
 public:
  Status Initialize(const Config& config,
                    std::shared_ptr<const api::Topology> topology) override;
  Result<PackingPlan> Pack() override;
  Result<PackingPlan> Repack(
      const PackingPlan& current,
      const std::map<ComponentId, int>& parallelism_changes) override;
  void Close() override {}
  std::string Name() const override { return "FIRST_FIT_DECREASING"; }

 private:
  Config config_;
  std::shared_ptr<const api::Topology> topology_;
};

}  // namespace packing
}  // namespace heron

#endif  // HERON_PACKING_FIRST_FIT_DECREASING_PACKING_H_
