#include "ipc/channel.h"

// Channel is a header-only template; this TU anchors the heron_ipc target.
