#ifndef HERON_SIM_HERON_MODEL_H_
#define HERON_SIM_HERON_MODEL_H_

#include <cstdint>

#include "sim/cost_model.h"

namespace heron {
namespace sim {

/// \brief Configuration of one simulated WordCount run on the Heron
/// engine model — the knobs the paper's evaluation sweeps.
struct HeronSimConfig {
  int spouts = 25;
  int bolts = 25;
  int instances_per_container = 4;
  bool acking = false;
  /// Outstanding roots allowed per spout (§V-B); 0 = unbounded.
  int64_t max_spout_pending = 20000;
  double cache_drain_frequency_ms = 10;   ///< §V-B knob (Figs. 12-13).
  double cache_drain_size_bytes = 1 << 20;
  bool optimizations = true;              ///< §V-A toggle (Figs. 5-9).
  int spout_batch = 64;                   ///< Outbox flush threshold.
  /// Cluster-wide spout back pressure (the SMGR control-plane protocol):
  /// when true a spout pauses when ANY container's SMGR backlog crosses
  /// the threshold — modeling the kStart/kStopBackpressure broadcast
  /// reaching every container. When false only the home container's
  /// backlog throttles its spouts (the container-local behaviour a naive
  /// engine gets), so a slow remote container's queue grows without bound.
  bool cluster_backpressure = true;
  /// Injected straggler: every process in this container (SMGR, instance
  /// servers) runs its work multiplied by `slow_container_factor`
  /// (-1 = no straggler). Models a cgroup-throttled / oversubscribed host.
  int slow_container = -1;
  double slow_container_factor = 1.0;
  /// Bounded SMGR→instance handoff: when an instance's service backlog
  /// exceeds this many seconds the batch parks on its container's SMGR
  /// retry queue (the TrySendOrPark path) and counts toward that SMGR's
  /// backlog until the channel drains. 0 disables the bound (legacy
  /// figures keep the unbounded handoff).
  double instance_channel_capacity_sec = 0;
  /// Scripted container failure (the recovery figure's fault): container
  /// `fail_container` goes dark at `fail_at_sec` for `offline_sec`
  /// seconds. While offline its SMGR and instances process nothing, the
  /// tuples cached in its SMGR die with the process, and survivors park
  /// traffic addressed to it (the TrySendOrPark path) until the
  /// replacement re-registers — at which point the backlog drains and its
  /// spouts restart with fresh pending windows. -1 = no fault.
  int fail_container = -1;
  double fail_at_sec = 0;
  double offline_sec = 0;
  double warmup_sec = 0.5;
  double measure_sec = 1.0;
  uint64_t seed = 2017;
};

/// \brief What one simulated run reports — the quantities the paper's
/// figures plot.
struct SimResult {
  double tuples_per_min = 0;          ///< Figs. 2, 4, 5, 7, 10, 12.
  double latency_ms_mean = 0;         ///< Figs. 3, 9, 11, 13.
  double latency_ms_p50 = 0;
  double latency_ms_p99 = 0;
  double cpu_cores_provisioned = 0;   ///< Instances + SMGRs.
  double tuples_per_min_per_core = 0; ///< Figs. 6, 8.
  uint64_t tuples_delivered = 0;
  uint64_t tuples_acked = 0;
  double max_smgr_utilization = 0;    ///< Diagnostic: bottleneck check.
  /// Peak SMGR queue depth (in service-time seconds) observed while
  /// measuring — bounded under cluster-wide back pressure, unbounded when
  /// a straggler is only throttled container-locally.
  double max_smgr_backlog_sec = 0;
  /// Spout emit attempts deferred by back pressure while measuring.
  uint64_t backpressure_stalls = 0;
  /// Recovery-phase throughput split (fail_container >= 0 only): rate
  /// before the kill, while the container is dark, and after it
  /// re-registers — the dip-and-drain shape the recovery figure plots.
  double tput_before_per_min = 0;
  double tput_outage_per_min = 0;
  double tput_after_per_min = 0;
  uint64_t sim_events = 0;
};

/// \brief Simulates the WordCount topology on the Heron architecture:
/// per-instance emit batching, SMGR routing with the §V-A optimization
/// toggle, TupleCache timer/size drains, inter-container transit with the
/// lazy destination peek, XOR ack tracking and max-spout-pending flow
/// control. Placement comes from the real RoundRobinPacking.
SimResult RunHeronSim(const HeronSimConfig& config,
                      const HeronCostModel& costs);

}  // namespace sim
}  // namespace heron

#endif  // HERON_SIM_HERON_MODEL_H_
