file(REMOVE_RECURSE
  "CMakeFiles/heron_external.dir/kafka_sim.cc.o"
  "CMakeFiles/heron_external.dir/kafka_sim.cc.o.d"
  "CMakeFiles/heron_external.dir/pipeline_workload.cc.o"
  "CMakeFiles/heron_external.dir/pipeline_workload.cc.o.d"
  "CMakeFiles/heron_external.dir/redis_sim.cc.o"
  "CMakeFiles/heron_external.dir/redis_sim.cc.o.d"
  "libheron_external.a"
  "libheron_external.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_external.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
