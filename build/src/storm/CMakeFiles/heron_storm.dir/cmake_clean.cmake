file(REMOVE_RECURSE
  "CMakeFiles/heron_storm.dir/storm_cluster.cc.o"
  "CMakeFiles/heron_storm.dir/storm_cluster.cc.o.d"
  "libheron_storm.a"
  "libheron_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
