# Empty dependencies file for fig09_latency_opts.
# This may be replaced when dependencies are built.
