# Empty compiler generated dependencies file for heron_storm.
# This may be replaced when dependencies are built.
