# Empty compiler generated dependencies file for heron_instance.
# This may be replaced when dependencies are built.
