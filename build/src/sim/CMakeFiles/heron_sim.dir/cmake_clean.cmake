file(REMOVE_RECURSE
  "CMakeFiles/heron_sim.dir/cost_model.cc.o"
  "CMakeFiles/heron_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/heron_sim.dir/des.cc.o"
  "CMakeFiles/heron_sim.dir/des.cc.o.d"
  "CMakeFiles/heron_sim.dir/heron_model.cc.o"
  "CMakeFiles/heron_sim.dir/heron_model.cc.o.d"
  "CMakeFiles/heron_sim.dir/storm_model.cc.o"
  "CMakeFiles/heron_sim.dir/storm_model.cc.o.d"
  "libheron_sim.a"
  "libheron_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
