# Empty dependencies file for heron_packing.
# This may be replaced when dependencies are built.
