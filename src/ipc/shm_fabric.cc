#include <sys/mman.h>

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/strings.h"
#include "ipc/fabric.h"

namespace heron {
namespace ipc {

ShmRingFabric::~ShmRingFabric() {
  StopPump();
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [_, ring] : links_) {
    if (ring->base != nullptr) ::munmap(ring->base, ring->capacity);
  }
  links_.clear();
}

Status ShmRingFabric::OpenLink(uint64_t key, FrameSink sink) {
  if (sink == nullptr) return Status::InvalidArgument("null frame sink");
  std::lock_guard<std::mutex> lock(mutex_);
  if (links_.count(key) != 0) {
    return Status::AlreadyExists(
        StrFormat("fabric link %llu already open",
                  static_cast<unsigned long long>(key)));
  }
  const size_t capacity = options_.link_capacity_bytes > 0
                              ? options_.link_capacity_bytes
                              : (1u << 20);
  // MAP_SHARED models the cross-process page mapping a multi-process
  // deployment would use (over memfd/shm_open); MAP_ANONYMOUS keeps the
  // single-host single-process case file-free.
  void* base = ::mmap(nullptr, capacity, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    return Status::IOError("mmap of shm ring failed");
  }
  auto ring = std::make_unique<Ring>();
  ring->base = static_cast<char*>(base);
  ring->capacity = capacity;
  ring->sink = std::move(sink);
  links_.emplace(key, std::move(ring));
  return Status::OK();
}

Status ShmRingFabric::CloseLink(uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = links_.find(key);
  if (it == links_.end()) return Status::NotFound("fabric link not open");
  // Graceful close drains deliverable frames; a stalled sink drops the
  // rest (the loss a dying channel takes anyway).
  PumpRingLocked(it->second.get());
  ::munmap(it->second->base, it->second->capacity);
  it->second->base = nullptr;
  links_.erase(it);
  return Status::OK();
}

void ShmRingFabric::WriteWrapped(Ring* ring, uint64_t at, const char* src,
                                 size_t len) {
  const size_t off = static_cast<size_t>(at % ring->capacity);
  const size_t first = std::min(len, ring->capacity - off);
  std::memcpy(ring->base + off, src, first);
  if (first < len) std::memcpy(ring->base, src + first, len - first);
}

void ShmRingFabric::ReadWrapped(const Ring* ring, uint64_t at, char* dst,
                                size_t len) {
  const size_t off = static_cast<size_t>(at % ring->capacity);
  const size_t first = std::min(len, ring->capacity - off);
  std::memcpy(dst, ring->base + off, first);
  if (first < len) std::memcpy(dst + first, ring->base, len - first);
}

Status ShmRingFabric::SendFrame(uint64_t key, const serde::FrameHeader& header,
                                serde::Buffer* payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = links_.find(key);
  if (it == links_.end()) return Status::NotFound("fabric link not open");
  Ring* ring = it->second.get();

  const size_t frame_bytes = serde::kFrameHeaderBytes + payload->size();
  if (frame_bytes > ring->capacity) {
    return Status::InvalidArgument("frame larger than shm ring");
  }
  const uint64_t head = ring->head.load(std::memory_order_relaxed);
  const uint64_t tail = ring->tail.load(std::memory_order_acquire);
  if (head - tail + frame_bytes > ring->capacity) {
    // Ring full: the shm fabric's backpressure. Sender parks and retries.
    return Status::ResourceExhausted("shm ring full");
  }

  char wire_header[serde::kFrameHeaderBytes];
  serde::EncodeFrameHeader(header, wire_header);
  WriteWrapped(ring, head, wire_header, serde::kFrameHeaderBytes);
  WriteWrapped(ring, head + serde::kFrameHeaderBytes, payload->data(),
               payload->size());
  // Release: the pump's acquire load of head sees the frame bytes.
  ring->head.store(head + frame_bytes, std::memory_order_release);

  ++stats_.frames_sent;
  stats_.bytes_on_wire += frame_bytes;
  return Status::OK();
}

void ShmRingFabric::PumpRingLocked(Ring* ring) {
  while (true) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t tail = ring->tail.load(std::memory_order_relaxed);
    if (head - tail < serde::kFrameHeaderBytes) return;

    char wire_header[serde::kFrameHeaderBytes];
    ReadWrapped(ring, tail, wire_header, serde::kFrameHeaderBytes);
    serde::FrameHeader header;
    if (!serde::DecodeFrameHeader(
             serde::BytesView(wire_header, serde::kFrameHeaderBytes),
             &header)
             .ok()) {
      HLOG(ERROR) << "shm ring desync; discarding ring contents";
      ring->tail.store(head, std::memory_order_release);
      return;
    }
    const size_t frame_bytes = serde::kFrameHeaderBytes + header.payload_len;
    if (head - tail < frame_bytes) return;  // Payload not fully written.

    serde::Buffer payload = AcquireBuffer();
    payload.resize(header.payload_len);
    ReadWrapped(ring, tail + serde::kFrameHeaderBytes, payload.data(),
                header.payload_len);
    const Status st = ring->sink(header, std::move(payload));
    if (st.IsResourceExhausted()) {
      // Receiver full: leave the tail in place — the frame stays in the
      // ring (stall-in-place, no side copy) and blocks senders exactly as
      // a full downstream should.
      ++stats_.sink_stalls;
      return;
    }
    // Release: senders' acquire load of tail sees the freed space.
    ring->tail.store(tail + frame_bytes, std::memory_order_release);
    if (st.ok()) ++stats_.frames_delivered;
  }
}

void ShmRingFabric::Pump() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [_, ring] : links_) PumpRingLocked(ring.get());
}

void ShmRingFabric::PumpLink(uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = links_.find(key);
  if (it != links_.end()) PumpRingLocked(it->second.get());
}

FabricStats ShmRingFabric::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace ipc
}  // namespace heron
