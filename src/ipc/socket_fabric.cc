#include <errno.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cstring>

#include "common/logging.h"
#include "common/strings.h"
#include "ipc/fabric.h"

namespace heron {
namespace ipc {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(
        StrFormat("fcntl(O_NONBLOCK) failed: %s", std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace

SocketFabric::~SocketFabric() {
  StopPump();
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [_, link] : links_) {
    if (link->write_fd >= 0) ::close(link->write_fd);
    if (link->read_fd >= 0) ::close(link->read_fd);
  }
  links_.clear();
}

Status SocketFabric::OpenLink(uint64_t key, FrameSink sink) {
  if (sink == nullptr) return Status::InvalidArgument("null frame sink");
  std::lock_guard<std::mutex> lock(mutex_);
  if (links_.count(key) != 0) {
    return Status::AlreadyExists(
        StrFormat("fabric link %llu already open",
                  static_cast<unsigned long long>(key)));
  }
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IOError(
        StrFormat("socketpair failed: %s", std::strerror(errno)));
  }
  Status st = SetNonBlocking(fds[0]);
  if (st.ok()) st = SetNonBlocking(fds[1]);
  if (!st.ok()) {
    ::close(fds[0]);
    ::close(fds[1]);
    return st;
  }
  auto link = std::make_unique<Link>();
  link->write_fd = fds[0];
  link->read_fd = fds[1];
  link->sink = std::move(sink);
  links_.emplace(key, std::move(link));
  return Status::OK();
}

Status SocketFabric::CloseLink(uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = links_.find(key);
  if (it == links_.end()) return Status::NotFound("fabric link not open");
  DrainAndCloseLocked(it->second.get());
  links_.erase(it);
  return Status::OK();
}

Status SocketFabric::FlushPendingLocked(Link* link) {
  // Flush the spill buffer ahead of anything new so the byte stream never
  // interleaves frames.
  size_t off = 0;
  while (off < link->pending_out.size()) {
    const ssize_t n = ::write(link->write_fd, link->pending_out.data() + off,
                              link->pending_out.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EAGAIN (kernel buffer full) or a hard error.
  }
  if (off > 0) link->pending_out.erase(0, off);
  return link->pending_out.empty()
             ? Status::OK()
             : Status::ResourceExhausted("socket send backlog");
}

Status SocketFabric::SendFrame(uint64_t key, const serde::FrameHeader& header,
                               serde::Buffer* payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = links_.find(key);
  if (it == links_.end()) return Status::NotFound("fabric link not open");
  Link* link = it->second.get();

  const size_t frame_bytes = serde::kFrameHeaderBytes + payload->size();
  // The wire-side backlog cap is the fabric's own backpressure: a sender
  // that cannot even spill must park the whole frame and retry, exactly
  // like a full channel.
  if (!link->pending_out.empty()) {
    FlushPendingLocked(link).ok();
    if (link->pending_out.size() + frame_bytes >
        options_.link_capacity_bytes) {
      return Status::ResourceExhausted("socket send backlog full");
    }
  }

  char wire_header[serde::kFrameHeaderBytes];
  serde::EncodeFrameHeader(header, wire_header);

  size_t written = 0;
  if (link->pending_out.empty()) {
    // Scatter-gather: header and payload leave in one writev, so framing
    // never costs an extra copy or syscall on the happy path.
    struct iovec iov[2];
    iov[0].iov_base = wire_header;
    iov[0].iov_len = serde::kFrameHeaderBytes;
    iov[1].iov_base = const_cast<char*>(payload->data());
    iov[1].iov_len = payload->size();
    const int iovcnt = payload->empty() ? 1 : 2;
    ssize_t n;
    do {
      n = ::writev(link->write_fd, iov, iovcnt);
    } while (n < 0 && errno == EINTR);
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      return Status::IOError(
          StrFormat("writev failed: %s", std::strerror(errno)));
    }
    if (n > 0) written = static_cast<size_t>(n);
    if (iovcnt == 2 && written > 0) ++stats_.gather_writes;
  }

  if (written < frame_bytes) {
    // Short write: spill the unwritten tail (whole frames stay contiguous
    // in pending_out, so a later flush resumes mid-frame byte-exactly).
    if (link->pending_out.size() + (frame_bytes - written) >
        options_.link_capacity_bytes) {
      if (written == 0) {
        return Status::ResourceExhausted("socket send backlog full");
      }
      // A prefix is already on the wire; the remainder MUST spill past the
      // cap or the stream tears. The cap check above makes this rare.
    }
    ++stats_.partial_writes;
    if (written < serde::kFrameHeaderBytes) {
      link->pending_out.append(wire_header + written,
                               serde::kFrameHeaderBytes - written);
      link->pending_out.append(*payload);
    } else {
      link->pending_out.append(*payload,
                               written - serde::kFrameHeaderBytes,
                               serde::Buffer::npos);
    }
  }

  ++stats_.frames_sent;
  stats_.bytes_on_wire += frame_bytes;
  // The payload was copied to the wire; hand the intact buffer back for
  // the caller to recycle through its pool.
  return Status::OK();
}

void SocketFabric::PumpLinkLocked(Link* link) {
  FlushPendingLocked(link).ok();

  // FIFO: a frame the receiver refused earlier must land before anything
  // newer is even read off the socket.
  if (link->stalled) {
    const Status st =
        link->sink(link->stalled_header, std::move(link->stalled_payload));
    if (st.IsResourceExhausted()) {
      ++stats_.sink_stalls;
      return;
    }
    link->stalled = false;
    link->stalled_payload = serde::Buffer();
    if (st.ok()) ++stats_.frames_delivered;
  }

  // Drain the socket into the reassembly buffer.
  char chunk[65536];
  while (true) {
    const ssize_t n = ::read(link->read_fd, chunk, sizeof(chunk));
    if (n > 0) {
      link->rdbuf.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EAGAIN (nothing more) or EOF/err.
  }

  // Deliver every complete frame.
  size_t consumed = 0;
  while (true) {
    const serde::BytesView rest =
        serde::BytesView(link->rdbuf).substr(consumed);
    if (rest.size() < serde::kFrameHeaderBytes) break;
    serde::FrameHeader header;
    if (!serde::DecodeFrameHeader(rest, &header).ok()) {
      HLOG(ERROR) << "fabric stream desync; dropping " << rest.size()
                  << " buffered bytes";
      consumed = link->rdbuf.size();
      break;
    }
    const size_t frame_bytes = serde::kFrameHeaderBytes + header.payload_len;
    if (rest.size() < frame_bytes) break;  // Partial frame; wait for more.
    serde::Buffer payload = AcquireBuffer();
    payload.assign(rest.data() + serde::kFrameHeaderBytes,
                   header.payload_len);
    consumed += frame_bytes;
    const Status st = link->sink(header, std::move(payload));
    if (st.IsResourceExhausted()) {
      // Receiver full: keep the frame (the sink left the payload intact by
      // contract) and stop delivering on this link until the next pump.
      ++stats_.sink_stalls;
      link->stalled = true;
      link->stalled_header = header;
      link->stalled_payload = std::move(payload);
      break;
    }
    if (st.ok()) ++stats_.frames_delivered;
  }
  if (consumed > 0) link->rdbuf.erase(0, consumed);
}

void SocketFabric::DrainAndCloseLocked(Link* link) {
  // Graceful close loses nothing already on the wire: push out the spill
  // buffer, then deliver every readable frame. A sink that is full at
  // close time drops the remainder — the same loss a dying in-process
  // channel takes.
  FlushPendingLocked(link).ok();
  PumpLinkLocked(link);
  if (link->stalled) {
    link->stalled = false;
    link->stalled_payload = serde::Buffer();
  }
  ::close(link->write_fd);
  ::close(link->read_fd);
  link->write_fd = -1;
  link->read_fd = -1;
}

void SocketFabric::Pump() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [_, link] : links_) PumpLinkLocked(link.get());
}

void SocketFabric::PumpLink(uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = links_.find(key);
  if (it != links_.end()) PumpLinkLocked(it->second.get());
}

FabricStats SocketFabric::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace ipc
}  // namespace heron
