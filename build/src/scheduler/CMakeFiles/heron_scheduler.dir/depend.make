# Empty dependencies file for heron_scheduler.
# This may be replaced when dependencies are built.
