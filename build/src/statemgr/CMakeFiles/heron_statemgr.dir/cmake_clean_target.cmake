file(REMOVE_RECURSE
  "libheron_statemgr.a"
)
