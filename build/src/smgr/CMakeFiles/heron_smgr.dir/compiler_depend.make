# Empty compiler generated dependencies file for heron_smgr.
# This may be replaced when dependencies are built.
