file(REMOVE_RECURSE
  "CMakeFiles/heron_proto.dir/messages.cc.o"
  "CMakeFiles/heron_proto.dir/messages.cc.o.d"
  "CMakeFiles/heron_proto.dir/physical_plan.cc.o"
  "CMakeFiles/heron_proto.dir/physical_plan.cc.o.d"
  "libheron_proto.a"
  "libheron_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
