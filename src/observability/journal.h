#ifndef HERON_OBSERVABILITY_JOURNAL_H_
#define HERON_OBSERVABILITY_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace heron {
namespace observability {

/// \brief The control-plane transitions the flight recorder captures.
///
/// Everything an operator asks "why did the engine do that?" about:
/// backpressure episodes, checkpoint barriers, scaling verdicts, container
/// lifecycle and plan swaps. Data-path tuples never land here — they have
/// their own sampled span rings (trace.h); the journal is always-on
/// precisely because control-plane events are rare enough to record all
/// of them.
enum class JournalEventType : uint8_t {
  kBackpressureStart = 0,   ///< Local SMGR tripped its high watermark.
  kBackpressureStop = 1,    ///< Local episode ended (arg0 = duration ns).
  kRemoteThrottleOn = 2,    ///< Peer SMGR announced start (arg0 = initiator).
  kRemoteThrottleOff = 3,   ///< Peer SMGR announced stop (arg0 = initiator).
  kCheckpointTriggered = 4, ///< Coordinator opened a barrier (arg0 = id).
  kCheckpointComplete = 5,  ///< All tasks snapshotted (arg0 = id).
  kCheckpointAborted = 6,   ///< In-flight checkpoint abandoned (arg0 = id).
  kCheckpointRestore = 7,   ///< Global rollback began (arg0 = id).
  kScalingDecision = 8,     ///< Engine verdict (detail = component,
                            ///< arg0 = from parallelism, arg1 = to).
  kContainerStart = 9,      ///< Container (re)started.
  kContainerDead = 10,      ///< Liveness monitor declared death.
  kContainerRestored = 11,  ///< Recovery brought the container back.
  kPlanSwap = 12,           ///< New physical plan installed (detail = why).
  kChaosKill = 13,          ///< Fault injection pulled the trigger.
};

inline constexpr size_t kNumJournalEventTypes = 14;

/// Short stable name for dumps and JSON ("backpressure_start", ...).
const char* JournalEventTypeName(JournalEventType type);

/// Fixed payload budget for the human-readable detail tag. Anything
/// longer is truncated at Record() time — the journal never allocates.
inline constexpr size_t kJournalDetailBytes = 16;

/// \brief One recorded control-plane event.
struct JournalEvent {
  /// Global record index within its ring — a per-ring monotonic sequence
  /// that survives wraparound (it keeps counting past capacity).
  uint64_t seq = 0;
  JournalEventType type = JournalEventType::kBackpressureStart;
  /// Originating container id; -1 for control-plane components (TMaster,
  /// coordinator, scaling engine, cluster runtime).
  int32_t origin = -1;
  /// Task id when the event is task-scoped; -1 otherwise.
  int32_t task = -1;
  int64_t at_nanos = 0;
  int64_t arg0 = 0;
  int64_t arg1 = 0;
  /// Short tag (component name, reason); at most kJournalDetailBytes.
  std::string detail;

  bool operator==(const JournalEvent& o) const {
    return seq == o.seq && type == o.type && origin == o.origin &&
           task == o.task && at_nanos == o.at_nanos && arg0 == o.arg0 &&
           arg1 == o.arg1 && detail == o.detail;
  }
};

/// \brief Wait-free bounded flight recorder: one ring per container plus
/// one for the control plane, same claim/stamp discipline as SpanCollector.
///
/// Record() claims a slot with a relaxed fetch_add, invalidates the slot's
/// stamp, stores the fields relaxed, and publishes with a release stamp —
/// no locks, no allocation, safe from any thread including inside other
/// components' critical sections. On wrap the oldest events are
/// overwritten and counted in dropped().
///
/// Snapshot() returns the retained events oldest-first; slots caught
/// mid-overwrite are detected through the stamp and skipped, so concurrent
/// Record/Snapshot is TSan-clean (every shared field is atomic).
class EventJournal {
 public:
  explicit EventJournal(size_t capacity);

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Wait-free; callable from any thread. detail may be nullptr; it is
  /// truncated to kJournalDetailBytes.
  void Record(JournalEventType type, int32_t origin, int32_t task,
              int64_t at_nanos, int64_t arg0, int64_t arg1,
              const char* detail = nullptr);

  /// Retained events oldest-first in record order.
  std::vector<JournalEvent> Snapshot() const;

  /// Events ever recorded (including overwritten ones).
  uint64_t total_recorded() const {
    return next_.load(std::memory_order_acquire);
  }
  /// Events lost to ring wraparound.
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    /// 0 = empty; otherwise 1 + the global record index that owns the
    /// slot's current contents. Written last (release) by Record.
    std::atomic<uint64_t> stamp{0};
    std::atomic<uint8_t> type{0};
    std::atomic<int32_t> origin{-1};
    std::atomic<int32_t> task{-1};
    std::atomic<int64_t> at_nanos{0};
    std::atomic<int64_t> arg0{0};
    std::atomic<int64_t> arg1{0};
    /// kJournalDetailBytes of tag text packed little-endian into two
    /// words so the whole event stays lock-free.
    std::atomic<uint64_t> detail_lo{0};
    std::atomic<uint64_t> detail_hi{0};
  };

  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
};

/// \brief One cooperative-scheduler slice: tasklet `tasklet` ran on worker
/// `worker` from `start_nanos` for `dur_nanos`. Only slices that made
/// progress are recorded — idle passes would drown the ring.
struct SchedSlice {
  int32_t worker = -1;
  int32_t tasklet = -1;  ///< Pool-assigned ordinal; names live in the pool.
  int64_t start_nanos = 0;
  int64_t dur_nanos = 0;

  bool operator==(const SchedSlice& o) const {
    return worker == o.worker && tasklet == o.tasklet &&
           start_nanos == o.start_nanos && dur_nanos == o.dur_nanos;
  }
};

/// \brief Wait-free bounded ring of scheduler slices, same claim/stamp
/// discipline as EventJournal/SpanCollector. One per TaskletPool; workers
/// record concurrently, the timeline exporter snapshots live.
class SliceRing {
 public:
  explicit SliceRing(size_t capacity);

  SliceRing(const SliceRing&) = delete;
  SliceRing& operator=(const SliceRing&) = delete;

  /// Wait-free; callable from any pool worker.
  void Record(int32_t worker, int32_t tasklet, int64_t start_nanos,
              int64_t dur_nanos);

  /// Retained slices oldest-first in record order.
  std::vector<SchedSlice> Snapshot() const;

  uint64_t total_recorded() const {
    return next_.load(std::memory_order_acquire);
  }
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    std::atomic<uint64_t> stamp{0};
    std::atomic<int32_t> worker{-1};
    std::atomic<int32_t> tasklet{-1};
    std::atomic<int64_t> start_nanos{0};
    std::atomic<int64_t> dur_nanos{0};
  };

  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
};

}  // namespace observability
}  // namespace heron

#endif  // HERON_OBSERVABILITY_JOURNAL_H_
