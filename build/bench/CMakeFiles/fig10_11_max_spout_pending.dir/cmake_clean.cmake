file(REMOVE_RECURSE
  "CMakeFiles/fig10_11_max_spout_pending.dir/figures/fig10_11_max_spout_pending.cc.o"
  "CMakeFiles/fig10_11_max_spout_pending.dir/figures/fig10_11_max_spout_pending.cc.o.d"
  "fig10_11_max_spout_pending"
  "fig10_11_max_spout_pending.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_11_max_spout_pending.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
