#ifndef HERON_FRAMEWORKS_SLURM_LIKE_FRAMEWORK_H_
#define HERON_FRAMEWORKS_SLURM_LIKE_FRAMEWORK_H_

#include "frameworks/base_sim_framework.h"

namespace heron {
namespace frameworks {

/// \brief Slurm-semantics framework — one of the integrations §IV-B says
/// the community was building ("various other frameworks such as Mesos,
/// Slurm and Marathon"). Implemented here to demonstrate that a new
/// framework plugs into the same FrameworkScheduler with zero engine
/// changes.
///
/// Slurm traits modeled:
///  - *Gang admission*: a job is admitted only if every container fits
///    simultaneously (inherited from BaseSimFramework's all-or-nothing
///    allocation) and, unlike YARN, the job cannot grow afterwards —
///    Slurm allocations are fixed at sbatch time.
///  - Heterogeneous steps are fine (packed job steps).
///  - No automatic requeue by default: a failed step stays failed until
///    the client acts, so the Heron Scheduler runs *stateful* on Slurm.
class SlurmLikeFramework final : public BaseSimFramework {
 public:
  explicit SlurmLikeFramework(SimCluster* cluster)
      : BaseSimFramework(cluster) {}

  std::string Name() const override { return "slurm"; }
  bool SupportsHeterogeneousContainers() const override { return true; }
  bool AutoRestartsFailedContainers() const override { return false; }

  /// Slurm allocations are sized at submission; growth is refused and the
  /// client must resubmit (Heron surfaces this as a topology restart).
  Result<std::vector<int>> AddContainers(
      const JobId& job, const std::vector<Resource>& demands,
      const std::function<void(const std::vector<int>&)>& on_registered =
          nullptr) override {
    return Status::FailedPrecondition(
        "slurm allocations are fixed at submission; resubmit to resize");
  }

 protected:
  void OnContainerFailed(const JobId& job, int index) override {}
};

}  // namespace frameworks
}  // namespace heron

#endif  // HERON_FRAMEWORKS_SLURM_LIKE_FRAMEWORK_H_
