#include "api/values.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "serde/wire.h"

namespace heron {
namespace api {
namespace {

Value RandomValue(Random* rng) {
  switch (rng->NextBelow(4)) {
    case 0:
      return Value(static_cast<int64_t>(rng->NextUint64()));
    case 1:
      return Value(rng->NextDouble() * 1e9 - 5e8);
    case 2:
      return Value(rng->NextBool());
    default: {
      std::string s(rng->NextBelow(64), '\0');
      for (auto& c : s) c = static_cast<char>('a' + rng->NextBelow(26));
      return Value(std::move(s));
    }
  }
}

TEST(ValuesTest, KindOfMatchesAlternative) {
  EXPECT_EQ(KindOf(Value(int64_t{1})), ValueKind::kInt64);
  EXPECT_EQ(KindOf(Value(1.5)), ValueKind::kDouble);
  EXPECT_EQ(KindOf(Value(true)), ValueKind::kBool);
  EXPECT_EQ(KindOf(Value(std::string("x"))), ValueKind::kString);
}

TEST(ValuesTest, EncodeDecodeRoundTripScalars) {
  for (const Value& v :
       {Value(int64_t{-123456}), Value(0.0), Value(true), Value(false),
        Value(std::string()), Value(std::string("word")),
        Value(int64_t{0}), Value(-1.5e-300)}) {
    serde::Buffer buf;
    serde::WireEncoder enc(&buf);
    EncodeValue(v, &enc);
    serde::WireDecoder dec(buf);
    const auto decoded = DecodeValue(&dec);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, v);
    EXPECT_TRUE(dec.AtEnd());
  }
}

TEST(ValuesTest, HashEqualsSerializedBytesHash) {
  // The lazy routing contract: HashValue(v) must equal an FNV over the
  // exact canonical encoding. This keeps SMGR routing identical whether
  // or not the tuple was ever decoded.
  Random rng(17);
  for (int i = 0; i < 500; ++i) {
    const Value v = RandomValue(&rng);
    serde::Buffer buf;
    serde::WireEncoder enc(&buf);
    EncodeValue(v, &enc);
    EXPECT_EQ(HashValue(v), HashSerializedBytes(buf.data(), buf.size()))
        << ValueToString(v);
  }
}

TEST(ValuesTest, HashIsStableAndDiscriminating) {
  EXPECT_EQ(HashValue(Value(std::string("heron"))),
            HashValue(Value(std::string("heron"))));
  EXPECT_NE(HashValue(Value(std::string("heron"))),
            HashValue(Value(std::string("storm"))));
  // Same bits, different type → different hash (kind byte is folded in).
  EXPECT_NE(HashValue(Value(int64_t{0})), HashValue(Value(false)));
}

TEST(ValuesTest, HashCombineOrderSensitive) {
  const uint64_t a = HashValue(Value(std::string("a")));
  const uint64_t b = HashValue(Value(std::string("b")));
  EXPECT_NE(HashCombine(HashCombine(0, a), b),
            HashCombine(HashCombine(0, b), a));
}

TEST(ValuesTest, ToStringRenders) {
  EXPECT_EQ(ValueToString(Value(int64_t{42})), "42");
  EXPECT_EQ(ValueToString(Value(true)), "true");
  EXPECT_EQ(ValueToString(Value(std::string("w"))), "\"w\"");
}

TEST(ValuesTest, ByteSizeApproximation) {
  EXPECT_EQ(ValueByteSize(Value(int64_t{1})), sizeof(int64_t));
  EXPECT_EQ(ValueByteSize(Value(1.0)), sizeof(double));
  EXPECT_EQ(ValueByteSize(Value(true)), 1u);
  EXPECT_EQ(ValueByteSize(Value(std::string("abcd"))), 4u);
}

TEST(ValuesTest, DecodeRejectsGarbageKind) {
  serde::Buffer buf;
  serde::WireEncoder enc(&buf);
  enc.WriteVarint(250);  // Not a ValueKind.
  serde::WireDecoder dec(buf);
  EXPECT_FALSE(DecodeValue(&dec).ok());
}

/// Property sweep: random multi-value tuples round-trip.
class ValuesRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValuesRoundTrip, RandomTuples) {
  Random rng(GetParam());
  Values values;
  for (size_t i = 0; i < 1 + rng.NextBelow(10); ++i) {
    values.push_back(RandomValue(&rng));
  }
  serde::Buffer buf;
  serde::WireEncoder enc(&buf);
  for (const auto& v : values) EncodeValue(v, &enc);
  serde::WireDecoder dec(buf);
  for (const auto& v : values) {
    const auto decoded = DecodeValue(&dec);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, v);
  }
  EXPECT_TRUE(dec.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValuesRoundTrip,
                         ::testing::Range<uint64_t>(100, 120));

}  // namespace
}  // namespace api
}  // namespace heron
