file(REMOVE_RECURSE
  "CMakeFiles/fig05_06_smgr_opts_noacks.dir/figures/fig05_06_smgr_opts_noacks.cc.o"
  "CMakeFiles/fig05_06_smgr_opts_noacks.dir/figures/fig05_06_smgr_opts_noacks.cc.o.d"
  "fig05_06_smgr_opts_noacks"
  "fig05_06_smgr_opts_noacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_06_smgr_opts_noacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
