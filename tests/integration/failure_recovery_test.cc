// End-to-end container failure recovery, single-stepped: the full
// detect → restart → re-register → drain → replay cycle of §IV-B runs
// threadless on a SimClock, for every scheduler kind the repo models
// (direct local launch plus the four simulated frameworks).
//
// The script: a 2-container WordCount with acking — spout (+ its SMGR's
// ack tracker) in container 0 alongside the TMaster, bolt in container 1.
// Mid-stream, container 1 is hard-killed (threads halted, no shutdown
// drains). The heartbeat monitor must notice the silence, declare the
// container dead after interval × miss-limit, and route the death per the
// framework contract: Aurora/Marathon auto-restart the failed slot
// themselves, YARN/Slurm emit a kFailed event that the stateful
// FrameworkScheduler answers with an explicit RestartContainer. The
// surviving SMGR parks envelopes for the dead endpoints, re-delivers them
// once the replacement re-registers, and the tuple trees that died inside
// the killed container time out at the ack tracker and replay from the
// spout (WordSpout::Options::replay_failed) — so every one of the
// emit-limit distinct words ends up acked: zero silent loss.
//
// Every phase is asserted on, and the whole run is replayed twice: two
// identical universes must produce byte-identical traces.

#include "runtime/local_cluster.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "statemgr/topology_state.h"
#include "workloads/word_count.h"

namespace heron {
namespace runtime {
namespace {

constexpr uint64_t kEmitLimit = 30;
constexpr int64_t kMonitorIntervalMs = 100;
constexpr int kMissLimit = 3;
constexpr int64_t kCollectIntervalMs = 50;
constexpr int64_t kMessageTimeoutMs = 2000;

Config StepClusterConfig(const std::string& kind) {
  Config config;
  config.SetInt(config_keys::kNumContainersHint, 2);
  config.Set(config_keys::kSchedulerKind, kind);
  config.SetBool(config_keys::kClusterStepMode, true);
  config.SetInt(config_keys::kSchedulerMonitorIntervalMs, kMonitorIntervalMs);
  config.SetInt(config_keys::kSchedulerMonitorMissLimit, kMissLimit);
  config.SetInt(config_keys::kMetricsCollectIntervalMs, kCollectIntervalMs);
  return config;
}

Config AckingTopologyConfig() {
  Config config;
  config.SetBool(config_keys::kAckingEnabled, true);
  // Long relative to the recovery window: only trees whose tuples really
  // died with the container expire — parked-but-alive trees complete
  // normally after re-registration, so no word is ever acked twice.
  config.SetInt(config_keys::kMessageTimeoutMs, kMessageTimeoutMs);
  config.SetInt(config_keys::kMaxSpoutPending, 64);
  return config;
}

/// One full kill → recover → drain universe under `kind`. Returns the
/// sampled trace so two runs can be compared bit for bit.
std::vector<uint64_t> RunKillRecoveryUniverse(const std::string& kind) {
  std::vector<uint64_t> trace;
  SimClock clock(0);
  LocalCluster cluster(StepClusterConfig(kind), &clock);

  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 200;
  spout_options.words_per_call = 2;
  spout_options.emit_limit = kEmitLimit;
  spout_options.replay_failed = true;
  const std::string name = "recovery-" + kind;
  auto topology = workloads::BuildWordCountTopology(
      name, /*spouts=*/1, /*bolts=*/1, spout_options, AckingTopologyConfig());
  EXPECT_TRUE(topology.ok());
  EXPECT_TRUE(cluster.Submit(*topology).ok()) << "submit failed for " << kind;
  EXPECT_EQ(cluster.num_live_containers(), 2);
  // RR packing: spout task 0 → container 0 (with the TMaster + tracker),
  // bolt task 1 → container 1 (the victim).

  const auto counter = [&](const char* metric) {
    return cluster.SumCounter(metric);
  };
  const auto recovery = [&](const char* metric) {
    return cluster.recovery_metrics()->GetCounter(metric)->value();
  };
  const auto rounds = [&](int n) {
    for (int i = 0; i < n; ++i) {
      cluster.StepAll();
      clock.AdvanceMillis(5);
      cluster.StepAll();
    }
  };

  // Phase 1: pump the pipeline. The spout is still mid-stream when the
  // kill lands, so tuple trees are in flight inside the victim.
  rounds(6);
  EXPECT_GT(counter("instance.emitted"), 0u);
  trace.push_back(counter("instance.emitted"));
  trace.push_back(counter("instance.executed"));
  trace.push_back(counter("instance.acked"));

  // Phase 2: hard-kill the bolt container. No detection yet — heartbeats
  // just stop.
  EXPECT_TRUE(cluster.FailContainer(1).ok());
  EXPECT_EQ(cluster.num_live_containers(), 1);
  EXPECT_EQ(recovery("recovery.deaths"), 0u);

  // Phase 3: detection. Advance in heartbeat-interval chunks; the
  // survivor keeps heartbeating through its collection tick while the
  // victim stays silent. After interval × miss-limit the monitor declares
  // it dead and recovery routes synchronously — the replacement container
  // is live when MonitorTick returns.
  int detect_ticks = 0;
  while (recovery("recovery.deaths") == 0 && detect_ticks < 20) {
    ++detect_ticks;
    clock.AdvanceMillis(kCollectIntervalMs);
    cluster.StepAll();
    cluster.MonitorTick();
  }
  trace.push_back(static_cast<uint64_t>(detect_ticks));
  EXPECT_EQ(recovery("recovery.deaths"), 1u);
  EXPECT_EQ(cluster.num_live_containers(), 2) << "replacement not launched";
  // Silence must exceed interval × miss-limit before the declaration.
  EXPECT_GE(detect_ticks * kCollectIntervalMs,
            kMonitorIntervalMs * kMissLimit);
  // The state tree shows the death until the replacement heartbeats.
  auto dead = statemgr::GetDeadContainers(*cluster.state_manager(), name);
  EXPECT_TRUE(dead.ok());
  if (dead.ok()) {
    EXPECT_EQ(*dead, std::vector<int>{1});
  }

  // Phase 4: restoration. The replacement's first metrics-collection tick
  // heartbeats; the TMaster flips dead → alive and measures the restore
  // latency.
  int restore_ticks = 0;
  while (recovery("recovery.restarts") == 0 && restore_ticks < 20) {
    ++restore_ticks;
    clock.AdvanceMillis(kCollectIntervalMs);
    cluster.StepAll();
  }
  trace.push_back(static_cast<uint64_t>(restore_ticks));
  EXPECT_EQ(recovery("recovery.restarts"), 1u);
  EXPECT_EQ(recovery("recovery.restarts.1"), 1u);
  EXPECT_EQ(cluster.tmaster()->ContainerRestarts(1), 1);
  dead = statemgr::GetDeadContainers(*cluster.state_manager(), name);
  EXPECT_TRUE(dead.ok());
  if (dead.ok()) {
    EXPECT_TRUE(dead->empty()) << "state tree still dead";
  }

  // The framework contract (§IV-B): stateless frameworks auto-restarted
  // the slot themselves; stateful ones needed the Scheduler to act.
  if (kind == "yarn" || kind == "slurm") {
    EXPECT_EQ(cluster.failovers_handled(), 1) << kind;
  } else {
    EXPECT_EQ(cluster.failovers_handled(), 0) << kind;
  }

  // Phase 5: drain + replay. Parked envelopes re-deliver to the restarted
  // SMGR; the trees that died inside the victim ride out the message
  // timeout, fail back to the spout and replay (same id, same word). Run
  // until every distinct word is acked.
  int drain_rounds = 0;
  while (counter("instance.acked") < kEmitLimit && drain_rounds < 3000) {
    ++drain_rounds;
    cluster.StepAll();
    clock.AdvanceMillis(5);
    cluster.StepAll();
  }
  trace.push_back(static_cast<uint64_t>(drain_rounds));
  trace.push_back(counter("instance.emitted"));
  trace.push_back(counter("instance.acked"));
  trace.push_back(counter("instance.failed"));

  // Zero silent loss: all kEmitLimit distinct words acked, exactly once.
  EXPECT_EQ(counter("instance.acked"), kEmitLimit) << kind;
  // Replays re-emitted through the instance, so raw emits ≥ the limit,
  // and the timed-out trees surfaced as spout Fail() calls.
  EXPECT_GE(counter("instance.emitted"), kEmitLimit);
  EXPECT_GT(counter("instance.failed"), 0u) << "no tree died in the kill";

  // Quiescence: nothing pending at the spout or its tracker.
  Container* c0 = cluster.GetContainer(0);
  EXPECT_NE(c0, nullptr);
  if (c0 != nullptr) {
    for (const auto& inst : c0->instances()) {
      EXPECT_EQ(inst->pending_count(), 0);
    }
    EXPECT_EQ(c0->stream_manager()->acks_pending(), 0u);
  }

  EXPECT_TRUE(cluster.Kill().ok());
  return trace;
}

class FailureRecoveryTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() { Logging::SetLevel(LogLevel::kError); }
};

TEST_P(FailureRecoveryTest, KillDetectRestartReplayDeterministic) {
  // Two identical universes: the entire recovery conversation — heartbeat
  // silence, liveness declaration, framework routing, re-registration,
  // parked-envelope drain, ack-timeout replay — must replay identically.
  const std::vector<uint64_t> first = RunKillRecoveryUniverse(GetParam());
  const std::vector<uint64_t> second = RunKillRecoveryUniverse(GetParam());
  EXPECT_EQ(first, second) << "non-deterministic recovery under "
                           << GetParam();
  EXPECT_FALSE(first.empty());
}

INSTANTIATE_TEST_SUITE_P(AllSchedulerKinds, FailureRecoveryTest,
                         ::testing::Values("local", "aurora", "marathon",
                                           "yarn", "slurm"),
                         [](const auto& info) { return info.param; });

// Threaded mode: the same kill, detected by the live monitor reactor on
// the real clock — no hand-driven ticks. Slower and coarser than the
// step-mode replay, but it proves the monitor loop itself works.
TEST(FailureRecoveryThreadedTest, MonitorDetectsAndRecoversLive) {
  Logging::SetLevel(LogLevel::kError);
  Config config;
  config.SetInt(config_keys::kNumContainersHint, 2);
  config.SetInt(config_keys::kSchedulerMonitorIntervalMs, 50);
  config.SetInt(config_keys::kSchedulerMonitorMissLimit, 2);
  config.SetInt(config_keys::kMetricsCollectIntervalMs, 20);
  config.SetBool(config_keys::kAckingEnabled, true);
  config.SetInt(config_keys::kMessageTimeoutMs, 1500);
  config.SetInt(config_keys::kMaxSpoutPending, 128);
  LocalCluster cluster(config);

  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 500;
  spout_options.words_per_call = 2;
  spout_options.replay_failed = true;
  auto topology = workloads::BuildWordCountTopology("recovery-threaded", 1, 1,
                                                    spout_options);
  ASSERT_TRUE(topology.ok());
  ASSERT_TRUE(cluster.Submit(*topology).ok());
  ASSERT_TRUE(cluster.WaitForCounter("instance.acked", 200, 30000).ok());

  ASSERT_TRUE(cluster.FailContainer(1).ok());
  ASSERT_EQ(cluster.num_live_containers(), 1);

  // The monitor must detect the silence and restart within seconds.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (cluster.recovery_metrics()->GetCounter("recovery.restarts")->value() ==
             0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(
      cluster.recovery_metrics()->GetCounter("recovery.deaths")->value(), 1u);
  EXPECT_EQ(
      cluster.recovery_metrics()->GetCounter("recovery.restarts")->value(),
      1u);
  EXPECT_EQ(cluster.num_live_containers(), 2);
  // Detect latency was measured and is at least one monitor interval.
  EXPECT_GE(cluster.recovery_metrics()
                ->GetGauge("recovery.detect.last.ms")
                ->value(),
            50);

  // Flow resumes through the replacement, and replayed trees complete.
  const uint64_t acked = cluster.SumCounter("instance.acked");
  EXPECT_TRUE(
      cluster.WaitForCounter("instance.acked", acked + 500, 30000).ok());
  ASSERT_TRUE(cluster.Kill().ok());
}

// Chaos mode: probabilistic kills on the monitor tick, bounded by the
// max-kills cap. The cluster must absorb every injected death and keep
// acking tuple trees afterwards.
TEST(FailureRecoveryThreadedTest, ChaosKillsAreAbsorbed) {
  Logging::SetLevel(LogLevel::kError);
  Config config;
  config.SetInt(config_keys::kNumContainersHint, 2);
  config.SetInt(config_keys::kSchedulerMonitorIntervalMs, 50);
  config.SetInt(config_keys::kSchedulerMonitorMissLimit, 2);
  config.SetInt(config_keys::kMetricsCollectIntervalMs, 20);
  config.SetBool(config_keys::kAckingEnabled, true);
  config.SetInt(config_keys::kMessageTimeoutMs, 1500);
  config.SetInt(config_keys::kMaxSpoutPending, 128);
  config.SetDouble(config_keys::kChaosKillProbability, 0.5);
  config.SetInt(config_keys::kChaosMaxKills, 2);
  config.SetInt(config_keys::kChaosSeed, 7);
  LocalCluster cluster(config);

  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 500;
  spout_options.words_per_call = 2;
  spout_options.replay_failed = true;
  auto topology = workloads::BuildWordCountTopology("recovery-chaos", 1, 1,
                                                    spout_options);
  ASSERT_TRUE(topology.ok());
  ASSERT_TRUE(cluster.Submit(*topology).ok());

  // Wait for the chaos schedule to exhaust its kill budget and for every
  // kill to be recovered.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const uint64_t restarts =
        cluster.recovery_metrics()->GetCounter("recovery.restarts")->value();
    if (cluster.chaos_kills() >= 2 && restarts >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(cluster.chaos_kills(), 2);
  EXPECT_EQ(
      cluster.recovery_metrics()->GetCounter("chaos.kills")->value(), 2u);
  EXPECT_GE(
      cluster.recovery_metrics()->GetCounter("recovery.restarts")->value(),
      2u);
  EXPECT_EQ(cluster.num_live_containers(), 2);

  // Liveness after the storm: acks still complete.
  const uint64_t acked = cluster.SumCounter("instance.acked");
  EXPECT_TRUE(
      cluster.WaitForCounter("instance.acked", acked + 500, 30000).ok());
  ASSERT_TRUE(cluster.Kill().ok());
}

}  // namespace
}  // namespace runtime
}  // namespace heron
