#ifndef HERON_PACKING_MCTS_PACKING_H_
#define HERON_PACKING_MCTS_PACKING_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "packing/packing.h"
#include "packing/placement_cost.h"

namespace heron {
namespace packing {

/// \brief Monte-Carlo tree search over instance → container assignments
/// (the paper's §IV-A extensibility claim, exercised: "policies based on
/// Monte-Carlo Tree Search" as a drop-in ResourceManager).
///
/// The search places instances one at a time; a tree node is a placement
/// prefix and an edge is "put the next instance into container c". UCT
/// picks the child to descend into, expansion tries one untried container,
/// and a greedy rollout (colocate with DAG neighbours, tie-break on free
/// CPU, ε-random) completes the assignment, which is scored with
/// EvaluatePlacement — inter-container traffic under the configured
/// per-component rate hints, CPU imbalance, and (for repacks) moved
/// instances. Empty containers are interchangeable, so only the
/// lowest-id empty candidate is ever offered (symmetry reduction).
///
/// Repack() first runs RepackMinimalDisruption for target resolution and
/// capacity/argument validation, then *pins every surviving instance* in
/// its current container and searches only over the placement of the
/// added instances — the disruption guarantee the property tests pin down
/// (an unchanged component never moves).
///
/// Deterministic for a fixed heron.packing.mcts.seed: the rollout RNG is
/// splitmix64 and every tie-break is ordered, so two universes running
/// the same scaling decision produce byte-identical plans.
class MctsPacking final : public IPacking {
 public:
  Status Initialize(const Config& config,
                    std::shared_ptr<const api::Topology> topology) override;
  Result<PackingPlan> Pack() override;
  Result<PackingPlan> Repack(
      const PackingPlan& current,
      const std::map<ComponentId, int>& parallelism_changes) override;
  std::string Name() const override { return "MCTS"; }

  /// Itemized cost of the last plan returned (figure/test introspection).
  const PlacementCost& last_cost() const { return last_cost_; }

 private:
  /// One candidate container during search: identity plus current load
  /// (instance demand only; overhead is added in the fit check).
  struct CState {
    ContainerId id = -1;
    Resource load;
    int instances = 0;
    /// Tasks per component already inside (the rollout's colocation
    /// signal).
    std::map<ComponentId, int> component_tasks;
  };

  /// Runs the search: places `to_place` (in order) into `base` (whose
  /// existing instances are pinned), opening fresh containers past
  /// `first_fresh_id` when nothing fits. `previous` feeds the disruption
  /// term of the objective.
  Result<PackingPlan> Search(const PackingPlan& base,
                             std::vector<InstancePlan> to_place,
                             ContainerId first_fresh_id,
                             const Resource& capacity,
                             const PackingPlan* previous);

  Config config_;
  std::shared_ptr<const api::Topology> topology_;
  std::map<ComponentId, double> rates_;
  /// Components adjacent in the DAG (producers and consumers), the
  /// rollout's colocation heuristic.
  std::map<ComponentId, std::vector<ComponentId>> adjacent_;
  PlacementCostWeights weights_;
  PlacementCost last_cost_;
  int iterations_ = 256;
  double exploration_ = 1.4;
  uint64_t seed_ = 42;
};

}  // namespace packing
}  // namespace heron

#endif  // HERON_PACKING_MCTS_PACKING_H_
