#ifndef HERON_STORM_STORM_CLUSTER_H_
#define HERON_STORM_STORM_CLUSTER_H_

#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "api/grouping.h"
#include "api/topology.h"
#include "common/clock.h"
#include "ipc/channel.h"
#include "metrics/metrics.h"
#include "proto/messages.h"

namespace heron {
namespace storm {

/// \brief The specialized-architecture comparator: a Storm-style engine
/// with the structural choices §III-A attributes to Apache Storm, so the
/// Fig. 2-4 comparison measures the same design delta the paper measured.
///
///  - "Storm ... packs multiple spout and bolt tasks into a single
///    executor. Each executor shares the same JVM with other executors":
///    tasks multiplex onto executor threads inside shared worker
///    processes (thread groups).
///  - "The threads that perform the communication operations and the
///    actual processing tasks share the same JVM": each worker runs its
///    own transfer/receive threads next to the executors; there is no
///    separate routing process.
///  - Inter-worker tuples are serialized and deserialized per tuple with
///    fresh allocations each hop (no pools, no lazy parsing).
///  - Acking uses dedicated *acker tasks* scheduled like any other task,
///    so ack traffic rides the same executor queues as data.
///  - Resources for the whole cluster are pre-allocated at start ("the
///    resources for a Storm cluster must be acquired before any topology
///    can be submitted"): num_workers is fixed up front, not derived from
///    the topology.
class StormCluster {
 public:
  struct Options {
    int num_workers = 4;
    int tasks_per_executor = 2;
    bool acking = false;
    int64_t max_spout_pending = 0;
    int num_ackers = 2;
    size_t queue_capacity = 1 << 14;
    uint64_t seed = 13;
  };

  explicit StormCluster(const Options& options);
  ~StormCluster();

  StormCluster(const StormCluster&) = delete;
  StormCluster& operator=(const StormCluster&) = delete;

  /// Deploys the topology onto the pre-acquired workers and starts every
  /// thread. One topology per cluster.
  Status Submit(std::shared_ptr<const api::Topology> topology);
  Status Kill();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // -- Aggregate observability for tests and benches. --
  uint64_t TotalEmitted() const;
  uint64_t TotalExecuted() const;
  uint64_t TotalAcked() const;
  uint64_t TotalFailed() const;
  /// End-to-end (spout complete) latency quantile in nanos.
  uint64_t CompleteLatencyQuantile(double q) const;

 private:
  struct Message;
  class Executor;
  class Worker;

  /// Task table entry.
  struct TaskInfo {
    TaskId task = -1;
    ComponentId component;
    int component_index = 0;
    bool is_spout = false;
    bool is_acker = false;
    int executor = -1;
    int worker = -1;
  };

  /// Routing edge resolved at submit.
  struct EdgeInfo {
    api::GroupingKind kind;
    std::vector<int> sorted_field_indices;  ///< kFields.
    api::CustomGroupingFn custom_fn;
    std::vector<TaskId> consumer_tasks;
  };

  /// The acker task owning `root` (hash partitioned).
  TaskId AckerOf(api::TupleKey root) const;
  /// Resolves groupings and fans `tuple` out to its destinations.
  void RouteData(api::Tuple tuple, int src_executor);
  /// Ships one message: direct object pass inside a worker, serialize +
  /// transfer thread between workers.
  void Deliver(Message message, int src_executor);
  /// Enqueues onto the destination executor with bounded retry.
  void DeliverLocal(Message message);

  Options options_;
  const Clock* clock_;
  std::shared_ptr<const api::Topology> topology_;
  std::vector<TaskInfo> tasks_;
  std::map<std::pair<ComponentId, StreamId>, std::vector<EdgeInfo>> edges_;
  std::vector<TaskId> acker_tasks_;
  std::vector<int> executor_worker_;  ///< executor id → worker id.

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<Executor>> executors_;
  std::atomic<bool> running_{false};

  metrics::MetricsRegistry metrics_;
  metrics::Counter* emitted_;
  metrics::Counter* executed_;
  metrics::Counter* acked_;
  metrics::Counter* failed_;
  metrics::Counter* dropped_;
  metrics::Histogram* complete_latency_;
};

}  // namespace storm
}  // namespace heron

#endif  // HERON_STORM_STORM_CLUSTER_H_
