#ifndef HERON_COMMON_CONFIG_H_
#define HERON_COMMON_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace heron {

/// \brief Hierarchical string key → typed value configuration.
///
/// The paper's modules are configured "either at topology submission time
/// through the command line or using special configuration files" (§II).
/// Config is the single mechanism: every module receives one at
/// Initialize() and reads only its own keys. Values are stored as strings
/// and parsed on access, mirroring Heron's .yaml-backed configuration.
class Config {
 public:
  Config() = default;

  /// Sets a key, overwriting any previous value.
  Config& Set(std::string_view key, std::string_view value);
  Config& SetInt(std::string_view key, int64_t value);
  Config& SetDouble(std::string_view key, double value);
  Config& SetBool(std::string_view key, bool value);

  bool Has(std::string_view key) const;

  /// Typed getters; return kNotFound for missing keys and
  /// kInvalidArgument for unparseable values.
  Result<std::string> GetString(std::string_view key) const;
  Result<int64_t> GetInt(std::string_view key) const;
  Result<double> GetDouble(std::string_view key) const;
  Result<bool> GetBool(std::string_view key) const;

  /// Getters with fallback, for optional keys with engine defaults.
  std::string GetStringOr(std::string_view key, std::string_view dflt) const;
  int64_t GetIntOr(std::string_view key, int64_t dflt) const;
  double GetDoubleOr(std::string_view key, double dflt) const;
  bool GetBoolOr(std::string_view key, bool dflt) const;

  /// Merges `overrides` on top of this config: keys in `overrides` win.
  /// This is how per-topology configuration layers over cluster defaults.
  Config MergedWith(const Config& overrides) const;

  /// Parses "key=value" lines (comments with '#', blank lines ignored);
  /// used for the "special configuration files" of §II.
  static Result<Config> FromKeyValueText(std::string_view text);

  size_t size() const { return values_.size(); }
  const std::map<std::string, std::string, std::less<>>& values() const {
    return values_;
  }

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

/// Well-known configuration keys used by the built-in modules.
namespace config_keys {

// Topology-level.
inline constexpr char kTopologyName[] = "heron.topology.name";
inline constexpr char kAckingEnabled[] = "heron.topology.acking";
inline constexpr char kMessageTimeoutMs[] = "heron.topology.message.timeout.ms";
inline constexpr char kMaxSpoutPending[] = "heron.topology.max.spout.pending";

// Resource manager / packing.
inline constexpr char kPackingAlgorithm[] = "heron.packing.algorithm";
inline constexpr char kContainerCpuHint[] = "heron.packing.container.cpu";
inline constexpr char kContainerRamMbHint[] = "heron.packing.container.ram.mb";
inline constexpr char kContainerDiskMbHint[] = "heron.packing.container.disk.mb";
inline constexpr char kInstanceCpuDefault[] = "heron.packing.instance.cpu";
inline constexpr char kInstanceRamMbDefault[] = "heron.packing.instance.ram.mb";
inline constexpr char kNumContainersHint[] = "heron.packing.num.containers";
/// MCTS packing (heron.packing.algorithm = MCTS): search budget in
/// simulations per decision, UCT exploration constant, and the RNG seed
/// (the search is deterministic for a fixed seed — two-universe tests
/// depend on it).
inline constexpr char kMctsIterations[] = "heron.packing.mcts.iterations";
inline constexpr char kMctsExploration[] = "heron.packing.mcts.exploration";
inline constexpr char kMctsSeed[] = "heron.packing.mcts.seed";
/// Per-instance emit rate hint (tuples/sec) weighing a component's output
/// edges in the MCTS cost function: heron.packing.mcts.rate.<component>.
/// Unset components default to a uniform rate.
inline constexpr char kMctsRatePrefix[] = "heron.packing.mcts.rate.";

// Auto-scaling (the TMaster's ScalingPolicyEngine, riding the monitor
// tick; requires the monitor and the metrics cache).
/// Master switch; off by default — scaling restarts containers.
inline constexpr char kScalingEnabled[] = "heron.scaling.enabled";
/// Fraction of a metrics window a topology may spend under backpressure
/// before the window counts as hot.
inline constexpr char kScalingBackpressureRatio[] =
    "heron.scaling.backpressure.ratio";
/// Per-task throughput skew (max/mean within a component) above which a
/// window counts as hot. 0 disables the skew detector.
inline constexpr char kScalingSkewThreshold[] = "heron.scaling.skew.threshold";
/// p90 complete-latency rise (newest window / rolling baseline) above
/// which a window counts as hot. 0 disables the latency detector.
inline constexpr char kScalingLatencyRise[] = "heron.scaling.latency.rise";
/// Consecutive hot windows before the engine fires (hysteresis: one
/// healthy window resets the streak).
inline constexpr char kScalingHotWindows[] = "heron.scaling.hot.windows";
/// Quiet period after a repack during which no new decision fires.
inline constexpr char kScalingCooldownMs[] = "heron.scaling.cooldown.ms";
/// Parallelism multiplier per scale-up (ceil; always grows by >= 1).
inline constexpr char kScalingFactor[] = "heron.scaling.factor";
/// Hard per-component parallelism ceiling for engine decisions.
inline constexpr char kScalingMaxParallelism[] =
    "heron.scaling.max.parallelism";

// Scheduler.
inline constexpr char kSchedulerKind[] = "heron.scheduler.kind";
/// Heartbeat-monitor cadence: how often the TMaster's liveness scan runs
/// and the width of one heartbeat interval. 0 disables failure detection.
inline constexpr char kSchedulerMonitorIntervalMs[] =
    "heron.scheduler.monitor.interval.ms";
/// Consecutive monitor intervals a container may stay silent before it is
/// declared dead.
inline constexpr char kSchedulerMonitorMissLimit[] =
    "heron.scheduler.monitor.miss.limit";

// Cluster runtime.
/// Step mode: containers and the monitor run threadless; the test drives
/// Container::Step() / LocalCluster::StepAll() + MonitorTick() by hand
/// (deterministic under a SimClock).
inline constexpr char kClusterStepMode[] = "heron.cluster.step.mode";
/// Wire transport between containers: "in-process" (default, direct
/// channel handoff), "socket" (unix-domain socketpair + framed stream) or
/// "shm" (shared-memory byte ring). The HERON_TRANSPORT_MODE environment
/// variable overrides the default when the key is unset (CI lanes).
inline constexpr char kTransportMode[] = "heron.transport.mode";

// Execution engine.
/// Module scheduling: "thread" (default, one thread per SMGR/instance
/// loop) or "cooperative" (a fixed thread-per-core runtime::TaskletPool
/// multiplexes every module loop as cooperative tasklets — the
/// Hazelcast-Jet tail-latency model). The HERON_EXECUTION_MODE
/// environment variable overrides the default when the key is unset (CI
/// lanes). Step mode wins: with kClusterStepMode set, no pool is built.
inline constexpr char kExecutionMode[] = "heron.execution.mode";
/// Cooperative idle policy: "condvar-park" (default), "adaptive-spin" or
/// "busy-spin" — what a pool worker does when none of its tasklets has
/// work (see runtime::IdlePolicy).
inline constexpr char kExecutionIdlePolicy[] = "heron.execution.idle.policy";
/// Cooperative worker count; 0 (default) = one per hardware core.
inline constexpr char kExecutionWorkers[] = "heron.execution.workers";
/// Cooperative slice budget: target wall nanoseconds for one tasklet
/// slice; the tuples-per-slice burst is autotuned (AIMD) against it.
inline constexpr char kExecutionSliceNanos[] =
    "heron.execution.slice.target.nanos";

// Chaos (fault injection on the monitor tick).
/// Per-tick probability of hard-killing one random live container.
inline constexpr char kChaosKillProbability[] = "heron.chaos.kill.probability";
/// Cap on chaos-injected kills (0 = unlimited).
inline constexpr char kChaosMaxKills[] = "heron.chaos.max.kills";
/// RNG seed for the chaos schedule.
inline constexpr char kChaosSeed[] = "heron.chaos.seed";

// State manager.
inline constexpr char kStateManagerKind[] = "heron.statemgr.kind";
inline constexpr char kStateManagerRoot[] = "heron.statemgr.root.path";

// Checkpointing (aligned barriers + snapshot restore).
/// Cadence at which the TMaster-side coordinator injects a checkpoint
/// barrier into every spout. 0 (default) disables checkpointing.
inline constexpr char kCheckpointIntervalMs[] = "heron.checkpoint.interval.ms";
/// Delivery semantics on container failure: "at-least-once" (default,
/// PR 4 ack-XOR replay) or "exactly-once" (restore every task from the
/// latest globally-complete checkpoint and replay from the snapshotted
/// spout offsets).
inline constexpr char kCheckpointMode[] = "heron.checkpoint.mode";
/// Cap on the WordSpout replay-tracking maps (`inflight_` and the replay
/// queue); beyond it new emissions are not tracked for replay and
/// `replay.dropped` counts the loss.
inline constexpr char kSpoutReplayTrackLimit[] =
    "heron.spout.replay.track.limit";

// Stream manager.
inline constexpr char kCacheDrainFrequencyMs[] =
    "heron.streammgr.cache.drain.frequency.ms";
inline constexpr char kCacheDrainSizeBytes[] =
    "heron.streammgr.cache.drain.size.bytes";
inline constexpr char kSmgrOptimizationsEnabled[] =
    "heron.streammgr.optimizations.enabled";
/// Parked retry entries at which an SMGR starts a cluster-wide
/// backpressure episode (kStartBackpressure to every peer).
inline constexpr char kBackpressureHighWater[] =
    "heron.streammgr.backpressure.highwater";
/// Parked retry entries at which an active episode releases
/// (kStopBackpressure). 0 = half the high watermark (hysteresis default).
inline constexpr char kBackpressureLowWater[] =
    "heron.streammgr.backpressure.lowwater";
/// Capacity (envelopes) of each Heron Instance's inbound queue. A slow
/// instance fills it; the SMGR's undeliverable sends then park in the
/// retry queue, which is what the backpressure watermarks measure.
inline constexpr char kInstanceInboundCapacity[] =
    "heron.instance.inbound.capacity";
/// Tuples an instance's outbox packs per data envelope before handing it
/// to the SMGR. 1 = per-tuple envelopes (every queued tuple is visible
/// to channel capacities and the backpressure watermarks).
inline constexpr char kInstanceEmitBatchTuples[] =
    "heron.instance.emit.batch.tuples";

// Metrics manager.
inline constexpr char kMetricsCollectIntervalMs[] =
    "heron.metricsmgr.collect.interval.ms";

// Observability (sampled tuple-path tracing + TMaster metrics cache).
/// Inverse sampling rate for tuple-path tracing: every Nth spout-emitted
/// tuple carries a trace id and yields a stage-by-stage latency breakdown.
/// 0 (default) disables tracing entirely — no per-tuple overhead.
inline constexpr char kTraceSampleInverse[] =
    "heron.observability.trace.sample.inverse";
/// Capacity (spans) of each container's wait-free span ring. Oldest spans
/// are overwritten on wrap.
inline constexpr char kTraceRingCapacity[] =
    "heron.observability.trace.ring.capacity";
/// Width of one MetricsCache aggregation window in seconds.
inline constexpr char kMetricsCacheWindowSec[] =
    "heron.observability.metricscache.window.sec";
/// Number of rolling windows the MetricsCache retains per metric.
inline constexpr char kMetricsCacheMaxWindows[] =
    "heron.observability.metricscache.max.windows";
/// Max retained collection rounds per source in InMemorySink before the
/// oldest rounds are evicted (bounded-memory satellite).
inline constexpr char kInMemorySinkMaxRounds[] =
    "heron.metricsmgr.inmemory.max.rounds";
/// Capacity (events) of each flight-recorder ring: one per container plus
/// one for the control plane. Always-on by default — control-plane events
/// are rare, so the ring is cheap; 0 turns the whole observability layer
/// (journal, scheduler profiler, timeline slices) dark.
inline constexpr char kJournalRingCapacity[] =
    "heron.observability.journal.ring.capacity";
/// Capacity (slices) of the cooperative scheduler's timeline slice ring.
/// Only allocated when the journal is on and a TaskletPool exists.
inline constexpr char kJournalSliceRingCapacity[] =
    "heron.observability.journal.slice.ring.capacity";

}  // namespace config_keys

}  // namespace heron

#endif  // HERON_COMMON_CONFIG_H_
