#include "tmaster/checkpoint_coordinator.h"

#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "proto/messages.h"
#include "serde/wire.h"

namespace heron {
namespace tmaster {

CheckpointCoordinator::CheckpointCoordinator(const Options& options,
                                             statemgr::IStateManager* state,
                                             smgr::Transport* transport,
                                             const Clock* clock)
    : options_(options), state_(state), transport_(transport), clock_(clock) {}

void CheckpointCoordinator::SetPlan(
    std::shared_ptr<const proto::PhysicalPlan> plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++plan_epoch_;
  if (in_flight_ != 0) AbortInFlightLocked();
  plan_ = std::move(plan);
}

void CheckpointCoordinator::Tick(int64_t now_nanos) {
  bool should_trigger = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (in_flight_ != 0) {
      PollCompletionLocked();
      // Stale in-flight checkpoint: its barrier raced a restart and died
      // with an endpoint, so it can never complete. Time it out rather
      // than wedge the periodic cadence.
      if (in_flight_ != 0 && options_.interval_ms > 0 &&
          now_nanos - last_trigger_nanos_ >=
              options_.stale_timeout_multiple * options_.interval_ms *
                  1000000) {
        AbortInFlightLocked();
      }
    }
    should_trigger =
        options_.interval_ms > 0 && plan_ != nullptr && in_flight_ == 0 &&
        now_nanos - last_trigger_nanos_ >= options_.interval_ms * 1000000;
  }
  if (should_trigger) TriggerNow();
}

uint64_t CheckpointCoordinator::TriggerNow() {
  // The whole trigger — id allocation, tree creation, barrier injection —
  // runs under the lock. The old unlocked middle section could be raced
  // by SetPlan: the abort would delete the checkpoint tree, and the
  // trigger would then resurrect it and inject barriers for a plan that
  // no longer exists. Nothing called here re-enters the coordinator, so
  // holding the lock is safe.
  std::lock_guard<std::mutex> lock(mutex_);
  if (plan_ == nullptr || in_flight_ != 0) return 0;
  const std::shared_ptr<const proto::PhysicalPlan> plan = plan_;
  const uint64_t id = next_ckpt_id_++;
  in_flight_ = id;
  in_flight_plan_ = plan;
  last_trigger_nanos_ = clock_->NowNanos();
  ++triggered_;
  // The checkpoint's parent node must exist before any task writes its
  // snapshot (CreateNode requires parents); EnsurePath also covers the
  // very first checkpoint creating /topologies/<t>/checkpoints itself.
  const Status st = statemgr::EnsurePath(
      state_, statemgr::paths::Checkpoint(options_.topology, id), "");
  if (!st.ok()) {
    HLOG(ERROR) << "checkpoint " << id
                << ": cannot create tree: " << st.ToString();
    in_flight_ = 0;
    in_flight_plan_.reset();
    ++aborted_;
    return 0;
  }
  if (options_.journal != nullptr) {
    options_.journal->Record(
        observability::JournalEventType::kCheckpointTriggered,
        /*origin=*/-1, /*task=*/-1, last_trigger_nanos_,
        /*arg0=*/static_cast<int64_t>(id),
        /*arg1=*/static_cast<int64_t>(plan->num_tasks()));
  }
  // Inject the trigger into every spout. A spout whose container is mid
  // restart simply misses it — the checkpoint then never completes and is
  // aborted by the recovery path or superseded by the next trigger.
  for (const TaskId task : plan->all_tasks()) {
    const api::ComponentDef* def = plan->ComponentOfTask(task);
    if (def == nullptr || def->kind != api::ComponentKind::kSpout) continue;
    proto::CheckpointBarrierMsg msg;
    msg.ckpt_id = id;
    msg.origin_task = -1;
    msg.kind = proto::CheckpointBarrierMsg::kTrigger;
    serde::Buffer payload = transport_->buffer_pool()->Acquire();
    serde::WireEncoder enc(&payload);
    msg.SerializeTo(&enc);
    proto::Envelope env(proto::MessageType::kCheckpointBarrier,
                        std::move(payload));
    env.dest_task = task;
    const Status send =
        transport_->TrySend(smgr::Transport::InstanceEndpoint(task), &env);
    if (!send.ok()) {
      HLOG(WARNING) << "checkpoint " << id << ": trigger for spout " << task
                    << " undeliverable (" << send.ToString() << ")";
    }
  }
  return id;
}

void CheckpointCoordinator::PollCompletionLocked() {
  if (in_flight_plan_ == nullptr || in_flight_ == 0) return;
  const std::string path =
      statemgr::paths::Checkpoint(options_.topology, in_flight_);
  const auto children = state_->ListChildren(path);
  if (!children.ok()) return;
  // Completion is fenced to the plan that triggered the checkpoint. A
  // plan swapped in mid-flight (scaling down, say) must never let a
  // partial old-epoch snapshot set pass for "globally complete" — a
  // restore from it would bring tasks up with state missing.
  if (children->size() < static_cast<size_t>(in_flight_plan_->num_tasks())) {
    return;
  }
  // Globally complete: publish, then garbage-collect superseded trees.
  state_->SetNodeData(path, "complete").ok();
  statemgr::EnsurePath(state_,
                       statemgr::paths::Checkpoints(options_.topology),
                       StrFormat("%llu",
                                 static_cast<unsigned long long>(in_flight_)))
      .ok();
  const uint64_t done = in_flight_;
  latest_complete_ = done;
  in_flight_ = 0;
  in_flight_plan_.reset();
  ++completed_;
  const auto ids = state_->ListChildren(
      statemgr::paths::Checkpoints(options_.topology));
  if (ids.ok()) {
    for (const std::string& name : *ids) {
      const uint64_t old_id = std::strtoull(name.c_str(), nullptr, 10);
      if (old_id != 0 && old_id < done) {
        statemgr::DeleteTree(
            state_, statemgr::paths::Checkpoint(options_.topology, old_id))
            .ok();
      }
    }
  }
  HLOG(INFO) << "checkpoint " << done << " complete for '"
             << options_.topology << "'";
  if (options_.journal != nullptr) {
    const int64_t now = clock_->NowNanos();
    options_.journal->Record(
        observability::JournalEventType::kCheckpointComplete,
        /*origin=*/-1, /*task=*/-1, now,
        /*arg0=*/static_cast<int64_t>(done),
        /*arg1=*/now - last_trigger_nanos_);
  }
}

void CheckpointCoordinator::AbortInFlight() {
  std::lock_guard<std::mutex> lock(mutex_);
  AbortInFlightLocked();
}

void CheckpointCoordinator::AbortInFlightLocked() {
  if (in_flight_ == 0) return;
  HLOG(WARNING) << "checkpoint " << in_flight_ << " aborted";
  statemgr::DeleteTree(
      state_, statemgr::paths::Checkpoint(options_.topology, in_flight_))
      .ok();
  if (options_.journal != nullptr) {
    options_.journal->Record(
        observability::JournalEventType::kCheckpointAborted,
        /*origin=*/-1, /*task=*/-1, clock_->NowNanos(),
        /*arg0=*/static_cast<int64_t>(in_flight_), /*arg1=*/0);
  }
  in_flight_ = 0;
  in_flight_plan_.reset();
  ++aborted_;
}

uint64_t CheckpointCoordinator::plan_epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plan_epoch_;
}

uint64_t CheckpointCoordinator::latest_complete() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return latest_complete_;
}

uint64_t CheckpointCoordinator::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

uint64_t CheckpointCoordinator::triggered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return triggered_;
}

uint64_t CheckpointCoordinator::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

uint64_t CheckpointCoordinator::aborted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return aborted_;
}

}  // namespace tmaster
}  // namespace heron
