#ifndef HERON_PACKING_PACKING_H_
#define HERON_PACKING_PACKING_H_

#include <map>
#include <memory>

#include "api/topology.h"
#include "common/config.h"
#include "packing/packing_plan.h"

namespace heron {
namespace packing {

/// \brief The Resource Manager's pluggable packing policy (§IV-A).
///
/// Direct C++ rendering of the paper's interface:
///
///   public interface ResourceManager {
///     void initialize(Configuration conf, Topology topology)
///     PackingPlan pack()
///     PackingPlan repack(PackingPlan currentPlan, Map parallelismChanges)
///     void close()
///   }
///
/// "The Resource Manager is not a long-running Heron process but is
/// invoked on-demand": implementations are constructed, initialized, asked
/// for a plan, and closed. Different topologies on the same cluster may use
/// different implementations.
class IPacking {
 public:
  virtual ~IPacking() = default;

  /// Binds the policy to a topology and its configuration. Must be called
  /// exactly once before Pack/Repack.
  virtual Status Initialize(const Config& config,
                            std::shared_ptr<const api::Topology> topology) = 0;

  /// Generates the initial packing plan for the topology ("invoked the
  /// first time a topology is submitted").
  virtual Result<PackingPlan> Pack() = 0;

  /// Adjusts `current` for the requested parallelism deltas ("invoked
  /// during topology scaling operations"). `parallelism_changes` maps
  /// component id → *new absolute parallelism*. The built-in policies
  /// minimize disruption: surviving instances keep their container and
  /// task id; new instances first exploit free space in provisioned
  /// containers.
  virtual Result<PackingPlan> Repack(
      const PackingPlan& current,
      const std::map<ComponentId, int>& parallelism_changes) = 0;

  virtual void Close() {}

  /// Human-readable policy name ("ROUND_ROBIN", ...).
  virtual std::string Name() const = 0;
};

namespace internal {

/// Shared Repack implementation used by the built-in policies.
///
/// Keeps every surviving instance in place; removes scaled-down instances
/// highest component_index first (so indices stay dense); places added
/// instances into the container with the most free headroom under
/// `capacity`, opening fresh containers when none fits. New task ids
/// continue after the current maximum.
Result<PackingPlan> RepackMinimalDisruption(
    const api::Topology& topology, const PackingPlan& current,
    const std::map<ComponentId, int>& parallelism_changes,
    const Resource& capacity);

/// Builds the flat instance list (task ids dense from 0, component
/// declaration order) that initial packers distribute.
std::vector<InstancePlan> EnumerateInstances(const api::Topology& topology);

/// Reads per-container capacity hints from config with engine defaults.
Resource ContainerCapacityFromConfig(const Config& config);

}  // namespace internal

}  // namespace packing
}  // namespace heron

#endif  // HERON_PACKING_PACKING_H_
