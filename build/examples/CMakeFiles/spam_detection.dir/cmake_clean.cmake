file(REMOVE_RECURSE
  "CMakeFiles/spam_detection.dir/spam_detection.cpp.o"
  "CMakeFiles/spam_detection.dir/spam_detection.cpp.o.d"
  "spam_detection"
  "spam_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
