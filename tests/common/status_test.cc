#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace heron {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, MessageAndToString) {
  const Status st = Status::NotFound("missing node");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "missing node");
  EXPECT_EQ(st.ToString(), "Not found: missing node");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status original = Status::Timeout("deadline");
  Status copy = original;
  EXPECT_TRUE(copy.IsTimeout());
  EXPECT_EQ(copy.message(), "deadline");
  EXPECT_TRUE(original.IsTimeout());  // Copy did not steal.

  Status moved = std::move(original);
  EXPECT_TRUE(moved.IsTimeout());
  EXPECT_EQ(moved.message(), "deadline");
}

TEST(StatusTest, WithContextPrefixesMessage) {
  const Status st = Status::IOError("disk full").WithContext("writing plan");
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(st.message(), "writing plan: disk full");
  EXPECT_TRUE(Status::OK().WithContext("anything").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  const auto fails = []() -> Status {
    HERON_RETURN_NOT_OK(Status::Unavailable("nope"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsUnavailable());
  const auto succeeds = []() -> Status {
    HERON_RETURN_NOT_OK(Status::OK());
    return Status::Internal("reached");
  };
  EXPECT_TRUE(succeeds().IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, AssignOrReturnMacro) {
  const auto add_one = [](Result<int> in) -> Result<int> {
    HERON_ASSIGN_OR_RETURN(int v, std::move(in));
    return v + 1;
  };
  EXPECT_EQ(*add_one(Result<int>(1)), 2);
  EXPECT_TRUE(add_one(Status::Timeout("t")).status().IsTimeout());
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("heron"));
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace heron
