#include "api/grouping.h"

#include <algorithm>

#include "common/logging.h"

namespace heron {
namespace api {

Router::Router(GroupingKind kind, const Fields& schema,
               const Fields& grouping_fields, std::vector<TaskId> target_tasks,
               uint64_t seed, CustomGroupingFn custom_fn)
    : kind_(kind),
      target_tasks_(std::move(target_tasks)),
      rng_(seed),
      custom_fn_(std::move(custom_fn)) {
  std::sort(target_tasks_.begin(), target_tasks_.end());
  if (kind_ == GroupingKind::kFields) {
    for (const auto& name : grouping_fields.names()) {
      const int idx = schema.IndexOf(name);
      if (idx < 0) {
        HLOG(FATAL) << "fields grouping references unknown field '" << name
                    << "'";
      }
      field_indices_.push_back(idx);
    }
    // Hash in ascending schema position so the Stream Manager's lazy
    // serialized-bytes walk (which visits values in order) combines
    // identically.
    std::sort(field_indices_.begin(), field_indices_.end());
    HERON_DCHECK(!field_indices_.empty()) << "empty fields grouping";
  }
  if (kind_ == GroupingKind::kCustom && custom_fn_ == nullptr) {
    HLOG(FATAL) << "custom grouping requires a grouping function";
  }
  HERON_DCHECK(!target_tasks_.empty()) << "router with no target tasks";
}

uint64_t Router::KeyHash(const Values& values) const {
  uint64_t h = 0;
  for (const int idx : field_indices_) {
    h = HashCombine(h, HashValue(values[static_cast<size_t>(idx)]));
  }
  return h;
}

TaskId Router::RouteOne(const Values& values) {
  switch (kind_) {
    case GroupingKind::kShuffle:
      return target_tasks_[rng_.NextBelow(target_tasks_.size())];
    case GroupingKind::kFields:
      return target_tasks_[KeyHash(values) % target_tasks_.size()];
    case GroupingKind::kGlobal:
      return target_tasks_.front();
    case GroupingKind::kAll:
    case GroupingKind::kDirect:
    case GroupingKind::kCustom:
      break;
  }
  HLOG(FATAL) << "RouteOne called on fan-out/direct grouping kind "
              << static_cast<int>(kind_);
  return -1;
}

void Router::Route(const Values& values, std::vector<TaskId>* out) {
  switch (kind_) {
    case GroupingKind::kShuffle:
    case GroupingKind::kFields:
    case GroupingKind::kGlobal:
      out->push_back(RouteOne(values));
      return;
    case GroupingKind::kAll:
      out->insert(out->end(), target_tasks_.begin(), target_tasks_.end());
      return;
    case GroupingKind::kCustom: {
      const std::vector<int> picks =
          custom_fn_(values, static_cast<int>(target_tasks_.size()));
      for (const int p : picks) {
        HERON_DCHECK(p >= 0 && p < static_cast<int>(target_tasks_.size()))
            << "custom grouping index out of range";
        out->push_back(target_tasks_[static_cast<size_t>(p)]);
      }
      return;
    }
    case GroupingKind::kDirect:
      HLOG(FATAL) << "direct grouping resolves via emit-direct, not Route()";
      return;
  }
}

}  // namespace api
}  // namespace heron
