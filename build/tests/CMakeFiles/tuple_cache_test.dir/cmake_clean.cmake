file(REMOVE_RECURSE
  "CMakeFiles/tuple_cache_test.dir/smgr/tuple_cache_test.cc.o"
  "CMakeFiles/tuple_cache_test.dir/smgr/tuple_cache_test.cc.o.d"
  "tuple_cache_test"
  "tuple_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
