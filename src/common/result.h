#ifndef HERON_COMMON_RESULT_H_
#define HERON_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/status.h"

namespace heron {

/// \brief A value-or-error holder in the Arrow style.
///
/// A Result<T> holds either a T (success) or a non-OK Status. Accessing the
/// value of a failed result aborts, so callers are expected to check ok()
/// or use HERON_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Constructs a successful result from a value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result. Aborts if `status` is OK, since an OK
  /// result must carry a value.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(repr_).ok()) {
      internal::AbortWithStatus(
          Status::Internal("Result constructed from OK status"), __FILE__,
          __LINE__);
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the status: OK() if this result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Returns the contained value; aborts if this result holds an error.
  const T& ValueOrDie() const& {
    CheckValue();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    CheckValue();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    CheckValue();
    return std::move(std::get<T>(repr_));
  }

  /// Returns the contained value, or `fallback` if this result is an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void CheckValue() const {
    if (!ok()) {
      internal::AbortWithStatus(std::get<Status>(repr_), __FILE__, __LINE__);
    }
  }

  std::variant<T, Status> repr_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// move-assigns the value into `lhs`. `lhs` may include a declaration, e.g.
///   HERON_ASSIGN_OR_RETURN(auto plan, packing->Pack());
#define HERON_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

#define HERON_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define HERON_ASSIGN_OR_RETURN_CONCAT(x, y) HERON_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define HERON_ASSIGN_OR_RETURN(lhs, rexpr)                                   \
  HERON_ASSIGN_OR_RETURN_IMPL(                                               \
      HERON_ASSIGN_OR_RETURN_CONCAT(_heron_result_, __COUNTER__), lhs, rexpr)

}  // namespace heron

#endif  // HERON_COMMON_RESULT_H_
