// Reproduces Figure 4: Heron vs Storm WordCount throughput without
// acknowledgements.
//
// "The throughput of Heron is 2-3X higher than that of Storm." (§VI-A)

#include "bench/figures/fig_util.h"
#include "sim/heron_model.h"
#include "sim/storm_model.h"

using namespace heron;
using namespace heron::sim;

int main(int argc, char** argv) {
  bench::ParseSmoke(argc, argv);
  bench::JsonReport report("fig04_throughput_noacks");
  HeronCostModel heron_costs;
  StormCostModel storm_costs;

  bench::PrintFigureHeader(
      "Figure 4: Throughput without acks",
      "Heron throughput 2-3X higher than Storm (WordCount, acks off)");
  bench::PrintColumns(
      {"parallelism", "heron_Mt/min", "storm_Mt/min", "ratio"});

  double min_ratio = 1e30, max_ratio = 0;
  for (const int p : {25, 50, 75}) {
    HeronSimConfig h;
    h.spouts = h.bolts = p;
    h.acking = false;
    h.warmup_sec = bench::WarmupSec();
    h.measure_sec = bench::MeasureSec();
    const SimResult hr = RunHeronSim(h, heron_costs);

    StormSimConfig s;
    s.spouts = s.bolts = p;
    s.acking = false;
    s.warmup_sec = bench::WarmupSec();
    s.measure_sec = bench::MeasureSec();
    const SimResult sr = RunStormSim(s, storm_costs);

    const double ratio = hr.tuples_per_min / sr.tuples_per_min;
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);

    bench::PrintCellInt(p);
    bench::PrintCell(hr.tuples_per_min / 1e6);
    bench::PrintCell(sr.tuples_per_min / 1e6);
    bench::PrintCell(ratio);
    bench::EndRow();

    const std::string scenario = "parallelism_" + std::to_string(p);
    report.Add(scenario, "heron_mtuples_min", hr.tuples_per_min / 1e6);
    report.Add(scenario, "storm_mtuples_min", sr.tuples_per_min / 1e6);
    report.Add(scenario, "tput_ratio", ratio);
  }

  std::printf("\n");
  bench::PrintVerdict("Fig 4 min Heron/Storm throughput ratio", min_ratio,
                      2.0, 3.2);
  bench::PrintVerdict("Fig 4 max Heron/Storm throughput ratio", max_ratio,
                      2.0, 3.2);
  report.Write();
  return 0;
}
