file(REMOVE_RECURSE
  "libheron_workloads.a"
)
