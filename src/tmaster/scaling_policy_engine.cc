#include "tmaster/scaling_policy_engine.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"
#include "observability/json.h"

namespace heron {
namespace tmaster {

ScalingPolicyEngine::Options ScalingPolicyEngine::Options::FromConfig(
    const std::string& topology, const Config& config) {
  Options o;
  o.topology = topology;
  o.enabled = config.GetBoolOr(config_keys::kScalingEnabled, false);
  o.backpressure_ratio =
      config.GetDoubleOr(config_keys::kScalingBackpressureRatio, 0.25);
  o.skew_threshold =
      config.GetDoubleOr(config_keys::kScalingSkewThreshold, 0);
  o.latency_rise = config.GetDoubleOr(config_keys::kScalingLatencyRise, 0);
  o.hot_windows = static_cast<int>(
      config.GetIntOr(config_keys::kScalingHotWindows, 3));
  o.cooldown_ms = config.GetIntOr(config_keys::kScalingCooldownMs, 10000);
  o.factor = config.GetDoubleOr(config_keys::kScalingFactor, 2.0);
  o.max_parallelism = static_cast<int>(
      config.GetIntOr(config_keys::kScalingMaxParallelism, 64));
  return o;
}

std::string ScalingPolicyEngine::Decision::ToJson() const {
  observability::json::Writer w;
  w.BeginObject();
  w.Key("seq").Uint(seq);
  w.Key("component").String(component);
  w.Key("from").Int(from);
  w.Key("to").Int(to);
  w.Key("reason").String(reason);
  w.Key("decided_at_nanos").Int(decided_at_nanos);
  w.Key("outcome").String(outcome);
  w.EndObject();
  return w.Take();
}

ScalingPolicyEngine::ScalingPolicyEngine(const Options& options,
                                         observability::MetricsCache* cache,
                                         statemgr::IStateManager* state,
                                         const Clock* clock)
    : options_(options), cache_(cache), state_(state), clock_(clock) {}

void ScalingPolicyEngine::SetExecute(ExecuteFn execute) {
  std::lock_guard<std::mutex> lock(mutex_);
  execute_ = std::move(execute);
}

void ScalingPolicyEngine::SetScalableComponents(
    std::vector<ComponentId> components,
    std::map<TaskId, ComponentId> task_component) {
  std::lock_guard<std::mutex> lock(mutex_);
  scalable_ = std::move(components);
  task_component_ = std::move(task_component);
}

ScalingPolicyEngine::Verdict ScalingPolicyEngine::JudgeWindowLocked(
    const observability::ComponentRollup& topo,
    const std::vector<observability::ComponentRollup>& rollups) {
  Verdict v;

  // Backpressure: time under cluster-wide throttling as a fraction of the
  // window, from the rollup's duration deltas; a live marker under
  // /backpressure counts as a full-window episode (the duration counter
  // only grows when an episode *ends*, so an initiator stuck mid-episode
  // would otherwise look healthy).
  if (options_.backpressure_ratio > 0) {
    const double ratio =
        topo.backpressure_ms / (topo.window_covered_sec * 1000.0);
    bool live_marker = false;
    const auto markers =
        state_->ListChildren(statemgr::paths::Backpressure(options_.topology));
    if (markers.ok() && !markers->empty()) live_marker = true;
    if (ratio >= options_.backpressure_ratio || live_marker) {
      v.hot = true;
      v.reason = "backpressure";
      return v;
    }
  }

  // Skew: within one component, the busiest task outruns the mean by more
  // than the threshold — one straggler instance, the classic repack cue.
  if (options_.skew_threshold > 0) {
    std::map<ComponentId, std::pair<double, std::pair<double, int>>> per_comp;
    for (const auto& [task, delta] : cache_->PerTaskProcessedDelta()) {
      const auto it = task_component_.find(task);
      if (it == task_component_.end()) continue;
      auto& [max, sum_count] = per_comp[it->second];
      max = std::max(max, delta);
      sum_count.first += delta;
      ++sum_count.second;
    }
    for (const ComponentId& comp : scalable_) {
      const auto it = per_comp.find(comp);
      if (it == per_comp.end()) continue;
      const auto& [max, sum_count] = it->second;
      if (sum_count.second < 2 || sum_count.first <= 0) continue;
      const double mean = sum_count.first / sum_count.second;
      if (max / mean >= options_.skew_threshold) {
        v.hot = true;
        v.reason = "skew";
        v.skewed = comp;
        return v;
      }
    }
  }

  // Latency: p90 complete latency rose against the rolling healthy
  // baseline (updated only on healthy windows, so a sustained regression
  // cannot drag its own reference up).
  if (options_.latency_rise > 0 && latency_baseline_ms_ > 0 &&
      topo.latency_p90_ms >=
          latency_baseline_ms_ * options_.latency_rise) {
    v.hot = true;
    v.reason = "latency";
    return v;
  }
  (void)rollups;
  return v;
}

ComponentId ScalingPolicyEngine::PickTargetLocked(
    const std::vector<observability::ComponentRollup>& rollups,
    const ComponentId& skewed, int* current_parallelism) const {
  const auto parallelism_of = [&rollups](const ComponentId& comp) {
    for (const auto& r : rollups) {
      if (r.component == comp) return r.tasks;
    }
    return 0;
  };
  if (!skewed.empty() &&
      std::find(scalable_.begin(), scalable_.end(), skewed) !=
          scalable_.end()) {
    *current_parallelism = parallelism_of(skewed);
    return skewed;
  }
  // The busiest scalable component by processed delta is the likeliest
  // bottleneck: backpressure throttles the spouts, so whatever is doing
  // the most work per window is the stage that cannot keep up.
  ComponentId best;
  double best_delta = -1;
  for (const ComponentId& comp : scalable_) {
    for (const auto& r : rollups) {
      if (r.component == comp && r.processed_delta > best_delta) {
        best_delta = r.processed_delta;
        best = comp;
      }
    }
  }
  *current_parallelism = best.empty() ? 0 : parallelism_of(best);
  return best;
}

Status ScalingPolicyEngine::PublishLocked(const Decision& decision) {
  HERON_RETURN_NOT_OK(statemgr::EnsurePath(
      state_, statemgr::paths::Scaling(options_.topology),
      StrFormat("%llu", static_cast<unsigned long long>(decision.seq))));
  return statemgr::EnsurePath(
      state_,
      statemgr::paths::ScalingDecision(options_.topology, decision.seq),
      decision.ToJson());
}

bool ScalingPolicyEngine::Tick() {
  ExecuteFn execute;
  Decision decision;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!options_.enabled || execute_ == nullptr) return false;
    const observability::ComponentRollup topo = cache_->TopologyRollup();
    if (topo.window_covered_sec <= 0) return false;
    // Judge each window exactly once — the monitor ticks much faster than
    // the cache windows roll, and hysteresis counts *windows*, not ticks.
    if (topo.window_start_nanos == last_window_nanos_) return false;
    last_window_nanos_ = topo.window_start_nanos;

    const int64_t now = clock_->NowNanos();
    if (last_action_nanos_ != 0 &&
        now - last_action_nanos_ < options_.cooldown_ms * 1000000) {
      // Cooldown: the restart storm of the previous repack pollutes these
      // windows, so they count toward nothing.
      hot_streak_ = 0;
      return false;
    }

    const std::vector<observability::ComponentRollup> rollups =
        cache_->ComponentRollups();
    const Verdict verdict = JudgeWindowLocked(topo, rollups);
    if (!verdict.hot) {
      hot_streak_ = 0;
      // Healthy window: fold its p90 into the latency baseline.
      if (topo.latency_p90_ms > 0) {
        latency_baseline_ms_ =
            latency_baseline_ms_ == 0
                ? topo.latency_p90_ms
                : 0.7 * latency_baseline_ms_ + 0.3 * topo.latency_p90_ms;
      }
      return false;
    }
    ++hot_streak_;
    HLOG(INFO) << "scaling engine: hot window (" << verdict.reason
               << "), streak " << hot_streak_ << "/" << options_.hot_windows;
    if (hot_streak_ < options_.hot_windows) return false;

    int from = 0;
    const ComponentId target =
        PickTargetLocked(rollups, verdict.skewed, &from);
    if (target.empty() || from <= 0) return false;
    const int to = std::min(
        options_.max_parallelism,
        std::max(from + 1,
                 static_cast<int>(std::ceil(from * options_.factor))));
    if (to <= from) {
      // At the ceiling: back off for a cooldown rather than re-deciding
      // the same dead end every window.
      hot_streak_ = 0;
      last_action_nanos_ = now;
      return false;
    }

    decision.seq = next_seq_++;
    decision.component = target;
    decision.from = from;
    decision.to = to;
    decision.reason = verdict.reason;
    decision.decided_at_nanos = now;
    execute = execute_;
    hot_streak_ = 0;
    last_action_nanos_ = now;
  }

  // Execute with no lock held: the rollout re-enters the cluster (plan
  // install → SetScalableComponents) and takes its own locks.
  HLOG(WARNING) << "scaling engine: scaling '" << decision.component
                << "' " << decision.from << " -> " << decision.to << " ("
                << decision.reason << ")";
  const Status st = execute(decision.component, decision.to);
  decision.outcome = st.ok() ? "applied" : st.ToString();
  if (!st.ok()) {
    HLOG(ERROR) << "scaling decision " << decision.seq
                << " failed: " << st.ToString();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PublishLocked(decision).ok();
    history_.push_back(decision);
  }
  if (options_.journal != nullptr) {
    options_.journal->Record(
        observability::JournalEventType::kScalingDecision,
        /*origin=*/-1, /*task=*/-1, decision.decided_at_nanos,
        /*arg0=*/decision.from, /*arg1=*/decision.to,
        decision.component.c_str());
  }
  return true;
}

uint64_t ScalingPolicyEngine::decisions_fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return history_.size();
}

int ScalingPolicyEngine::hot_streak() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hot_streak_;
}

std::vector<ScalingPolicyEngine::Decision> ScalingPolicyEngine::history()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return history_;
}

}  // namespace tmaster
}  // namespace heron
