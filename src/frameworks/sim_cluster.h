#ifndef HERON_FRAMEWORKS_SIM_CLUSTER_H_
#define HERON_FRAMEWORKS_SIM_CLUSTER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/resource.h"
#include "common/result.h"

namespace heron {
namespace frameworks {

using NodeId = int32_t;
using AllocationId = uint64_t;

/// \brief The machine substrate the scheduling-framework simulations run
/// on: a set of nodes with capacities, tracking live allocations.
///
/// Substitute for the paper's HDInsight / Twitter clusters. Admission is
/// strict — an allocation that does not fit any node is refused with
/// kResourceExhausted, which is exactly the failure mode the Scheduler
/// must surface when a packing plan over-asks. Thread-safe.
class SimCluster {
 public:
  /// Adds a node; returns its id.
  NodeId AddNode(const Resource& capacity);
  /// Adds `count` identical nodes.
  void AddNodes(int count, const Resource& capacity);

  /// First-fit allocation across nodes in id order.
  Result<AllocationId> Allocate(const Resource& demand);
  /// Releases a live allocation.
  Status Release(AllocationId id);

  /// Node hosting a live allocation.
  Result<NodeId> NodeOf(AllocationId id) const;

  int num_nodes() const;
  size_t num_allocations() const;
  Resource TotalCapacity() const;
  Resource TotalUsed() const;
  /// Free resources on one node.
  Result<Resource> FreeOn(NodeId node) const;

 private:
  struct Node {
    Resource capacity;
    Resource used;
  };
  struct Allocation {
    NodeId node;
    Resource demand;
  };

  mutable std::mutex mutex_;
  std::vector<Node> nodes_;
  std::map<AllocationId, Allocation> allocations_;
  AllocationId next_allocation_ = 1;
};

}  // namespace frameworks
}  // namespace heron

#endif  // HERON_FRAMEWORKS_SIM_CLUSTER_H_
