#include "sim/des.h"

#include <algorithm>

#include "common/logging.h"

namespace heron {
namespace sim {

void Des::ScheduleAt(double t_sec, EventFn fn) {
  HERON_DCHECK(t_sec >= now_) << "event scheduled in the past";
  queue_.push(Event{t_sec, next_seq_++, std::move(fn)});
}

void Des::RunUntil(double t_end_sec) {
  while (!queue_.empty()) {
    if (queue_.top().time > t_end_sec) break;
    // Moving out of the priority queue requires a const_cast; the element
    // is popped immediately after.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++events_processed_;
    event.fn();
  }
  now_ = std::max(now_, t_end_sec);
}

void SimServer::Submit(double work_sec, Des::EventFn on_done) {
  const double scaled = work_sec * speed_;
  const double start = std::max(des_->now(), next_free_);
  next_free_ = start + scaled;
  busy_time_ += scaled;
  des_->ScheduleAt(next_free_, std::move(on_done));
}

double SimServer::Backlog() const {
  const double backlog = next_free_ - des_->now();
  return backlog > 0 ? backlog : 0;
}

}  // namespace sim
}  // namespace heron
