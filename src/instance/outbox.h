#ifndef HERON_INSTANCE_OUTBOX_H_
#define HERON_INSTANCE_OUTBOX_H_

#include <deque>
#include <map>
#include <string>

#include "common/ids.h"
#include "proto/messages.h"
#include "smgr/transport.h"

namespace heron {
namespace instance {

/// \brief The instance-side half of the instance → Stream Manager wire:
/// serializes emitted tuples into per-stream batches and ack updates into
/// per-owner batches, and ships them to the local SMGR.
///
/// Tuples leave the instance as bytes — the executor serializes exactly
/// once, the SMGR routes the serialized form (§V-A), and only the
/// receiving instance deserializes.
///
/// Two delivery modes:
///  - **blocking** (thread-per-instance, default): sends block when the
///    SMGR inbound is full — safe because the SMGR loop never blocks, so
///    it always drains;
///  - **non-blocking** (`SetNonBlocking(true)`, cooperative mode): a
///    tasklet must never block its pool worker (the SMGR tasklet draining
///    our channel may be *behind us on the same worker* — a blocking send
///    would deadlock the core). Full-channel sends instead park the
///    envelope in a FIFO backlog retried by PumpBacklog(); while a backlog
///    exists every later envelope parks behind it, so tuple order is
///    preserved (no overtake).
class Outbox {
 public:
  /// \param flush_tuples  per-stream batch size that triggers a flush
  Outbox(TaskId task, ComponentId component, ContainerId container,
         smgr::Transport* transport, size_t flush_tuples = 64);

  /// Serializes and stages one tuple on `stream`; auto-flushes the stream's
  /// batch at the threshold.
  void EmitTuple(const StreamId& stream, const proto::TupleDataMsg& msg);

  /// Stages one ack update toward `owner_task`'s container.
  void AddAckUpdate(TaskId owner_task, const proto::AckUpdate& update);

  /// Ships every staged batch. Called by the executor at the end of each
  /// loop iteration so nothing lingers while the instance waits for input.
  void Flush();

  /// Ships an already-built envelope through the same FIFO discipline as
  /// staged batches — checkpoint barriers use this so a barrier can never
  /// overtake data parked in the backlog.
  void ShipEnvelope(proto::Envelope env);

  /// Selects the delivery mode (see class comment). Toggle only while no
  /// send is in flight (pre-start, or after the tasklet is retired).
  void SetNonBlocking(bool on) { nonblocking_ = on; }

  /// Retries parked envelopes in FIFO order; true when any shipped.
  /// Cooperative instances register this as an idle worker.
  bool PumpBacklog();
  bool HasBacklog() const { return !backlog_.empty(); }

  uint64_t tuples_emitted() const { return tuples_emitted_; }
  uint64_t batches_sent() const { return batches_sent_; }

 private:
  struct PendingBatch {
    serde::Buffer buffer;  ///< TupleBatchMsg header + appended tuples.
    size_t count = 0;
    /// Envelope tracing hint: last traced tuple staged in this batch (0 =
    /// none) — lets the SMGR skip per-tuple trace peeks on untraced
    /// batches.
    uint64_t trace_id = 0;
  };

  void FlushStream(const StreamId& stream, PendingBatch* batch);
  /// Delivers or (non-blocking mode, full channel) parks `env`.
  void Ship(proto::Envelope env);

  TaskId task_;
  ComponentId component_;
  ContainerId container_;
  smgr::Transport* transport_;
  size_t flush_tuples_;

  std::map<StreamId, PendingBatch> pending_;
  std::map<TaskId, proto::AckBatchMsg> pending_acks_;
  bool nonblocking_ = false;
  std::deque<proto::Envelope> backlog_;
  uint64_t tuples_emitted_ = 0;
  uint64_t batches_sent_ = 0;
};

}  // namespace instance
}  // namespace heron

#endif  // HERON_INSTANCE_OUTBOX_H_
