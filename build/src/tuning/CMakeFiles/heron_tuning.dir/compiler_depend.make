# Empty compiler generated dependencies file for heron_tuning.
# This may be replaced when dependencies are built.
