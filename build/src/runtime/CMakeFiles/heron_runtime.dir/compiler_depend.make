# Empty compiler generated dependencies file for heron_runtime.
# This may be replaced when dependencies are built.
