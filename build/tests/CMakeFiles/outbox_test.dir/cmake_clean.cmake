file(REMOVE_RECURSE
  "CMakeFiles/outbox_test.dir/instance/outbox_test.cc.o"
  "CMakeFiles/outbox_test.dir/instance/outbox_test.cc.o.d"
  "outbox_test"
  "outbox_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
