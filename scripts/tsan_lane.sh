#!/usr/bin/env bash
# ThreadSanitizer ctest lane — compatibility shim.
#
# The sanitizer lanes were generalized into scripts/san_lane.sh
# (address | thread | undefined); this wrapper keeps the old entry point
# working. Same arguments as before:
#   scripts/tsan_lane.sh [build-dir] [-- extra ctest args]

set -euo pipefail
exec "$(dirname "$0")/san_lane.sh" thread "$@"
