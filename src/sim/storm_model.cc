#include "sim/storm_model.h"

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "metrics/metrics.h"
#include "sim/des.h"

namespace heron {
namespace sim {

namespace {

constexpr double kNs = 1e-9;
constexpr double kBackpressureBacklogSec = 0.002;
constexpr double kBackpressureRetrySec = 0.001;

class StormSim {
 public:
  StormSim(const StormSimConfig& config, const StormCostModel& costs)
      : config_(config), costs_(costs), rng_(config.seed) {}

  SimResult Run();

 private:
  struct SpoutState {
    int executor = 0;
    int64_t pending = 0;
    bool busy = false;
    bool waiting = false;
  };

  int WorkerOfExecutor(int e) const {
    return executor_worker_[static_cast<size_t>(e)];
  }

  void SpoutTryEmit(int s);
  /// Routes a spout batch: splits over destination executors, charging
  /// inline serialization for remote shares and the transfer pipeline.
  void RouteSpoutBatch(int s, int64_t n, double t_emit);
  void DeliverToBolts(int dest_executor, int src_spout, int64_t n,
                      double t_emit);
  void AckerProcess(int src_spout, int64_t n, double t_emit);
  void SpoutAckArrive(int s, int64_t n, double t_emit);
  void RecordLatency(double emitted_at);
  bool Measuring() const { return des_.now() >= config_.warmup_sec; }

  StormSimConfig config_;
  StormCostModel costs_;
  Random rng_;
  Des des_;

  std::vector<std::unique_ptr<SimServer>> executor_servers_;
  std::vector<std::unique_ptr<SimServer>> transfer_servers_;  ///< Per worker.
  std::vector<std::unique_ptr<SimServer>> receive_servers_;   ///< Per worker.
  std::vector<int> executor_worker_;
  std::vector<int> bolt_executor_;   ///< Bolt index → executor.
  std::vector<int> acker_executor_;  ///< Acker index → executor.
  std::vector<SpoutState> spout_state_;

  metrics::Histogram latency_;
  uint64_t delivered_ = 0;
  uint64_t acked_ = 0;
};

void StormSim::RecordLatency(double emitted_at) {
  if (!Measuring()) return;
  const double latency_sec = std::max(des_.now() - emitted_at, 0.0);
  latency_.Record(static_cast<uint64_t>(latency_sec * 1e9));
}

void StormSim::SpoutTryEmit(int s) {
  SpoutState& spout = spout_state_[static_cast<size_t>(s)];
  if (spout.busy) return;
  const int64_t n = costs_.batch_size;
  if (config_.acking && config_.max_spout_pending > 0 &&
      spout.pending + n > config_.max_spout_pending) {
    spout.waiting = true;
    return;
  }
  SimServer* executor = executor_servers_[static_cast<size_t>(spout.executor)].get();
  SimServer* transfer =
      transfer_servers_[static_cast<size_t>(WorkerOfExecutor(spout.executor))]
          .get();
  if (executor->Backlog() > kBackpressureBacklogSec ||
      transfer->Backlog() > kBackpressureBacklogSec) {
    spout.busy = true;
    des_.ScheduleAfter(kBackpressureRetrySec, [this, s] {
      spout_state_[static_cast<size_t>(s)].busy = false;
      SpoutTryEmit(s);
    });
    return;
  }

  spout.busy = true;
  // User logic plus the per-destination tuple copy and the queue dispatch
  // — all on the executor thread, Storm style.
  const double work =
      static_cast<double>(n) *
      (costs_.spout_user_ns + costs_.copy_alloc_ns +
       costs_.dispatch_per_message_ns);
  executor->Submit(work * kNs, [this, s, n] {
    SpoutState& state = spout_state_[static_cast<size_t>(s)];
    if (config_.acking) state.pending += n;
    RouteSpoutBatch(s, n, des_.now());
    state.busy = false;
    SpoutTryEmit(s);
  });
}

void StormSim::RouteSpoutBatch(int s, int64_t n, double t_emit) {
  // Fields grouping over a uniform dictionary: destinations uniform over
  // bolt tasks; aggregate per destination executor.
  std::map<int, int64_t> per_executor;
  for (int64_t k = 0; k < n; ++k) {
    const size_t bolt = rng_.NextBelow(bolt_executor_.size());
    ++per_executor[bolt_executor_[bolt]];
  }

  // Acker init messages (one per tuple) ride the same machinery.
  if (config_.acking && !acker_executor_.empty()) {
    std::map<int, int64_t> per_acker_executor;
    for (int64_t k = 0; k < n; ++k) {
      const size_t acker = rng_.NextBelow(acker_executor_.size());
      ++per_acker_executor[acker_executor_[acker]];
    }
    for (const auto& [e, count] : per_acker_executor) {
      const double work =
          static_cast<double>(count) * costs_.acker_process_ns;
      executor_servers_[static_cast<size_t>(e)]->Submit(work * kNs, [] {});
    }
  }

  const int src_executor = spout_state_[static_cast<size_t>(s)].executor;
  const int src_worker = WorkerOfExecutor(src_executor);
  for (const auto& [dest_executor, count] : per_executor) {
    const int dest_worker = WorkerOfExecutor(dest_executor);
    if (dest_worker == src_worker) {
      DeliverToBolts(dest_executor, s, count, t_emit);
      continue;
    }
    // Remote: serialize inline on the source executor, then transfer
    // thread → network → receive thread (deserializing) → dest executor.
    const double ser = static_cast<double>(count) * costs_.serialize_ns;
    const int64_t c = count;
    const int de = dest_executor;
    executor_servers_[static_cast<size_t>(src_executor)]->Submit(
        ser * kNs, [this, src_worker, dest_worker, de, s, c, t_emit] {
          const double transfer_work =
              costs_.transfer_per_batch_ns +
              static_cast<double>(c) * costs_.transfer_per_tuple_ns;
          transfer_servers_[static_cast<size_t>(src_worker)]->Submit(
              transfer_work * kNs, [this, dest_worker, de, s, c, t_emit] {
                const double wire =
                    (costs_.network_batch_ns +
                     static_cast<double>(c) * costs_.network_tuple_ns) *
                    kNs;
                des_.ScheduleAfter(wire, [this, dest_worker, de, s, c,
                                          t_emit] {
                  const double deser =
                      static_cast<double>(c) * costs_.deserialize_ns;
                  receive_servers_[static_cast<size_t>(dest_worker)]->Submit(
                      deser * kNs, [this, de, s, c, t_emit] {
                        DeliverToBolts(de, s, c, t_emit);
                      });
                });
              });
        });
  }
}

void StormSim::DeliverToBolts(int dest_executor, int src_spout, int64_t n,
                              double t_emit) {
  double per_tuple = costs_.dispatch_per_message_ns + costs_.bolt_user_ns;
  if (config_.acking) {
    // Emitting the ack message costs another dispatch + copy.
    per_tuple += costs_.dispatch_per_message_ns + costs_.copy_alloc_ns;
  }
  const double work = static_cast<double>(n) * per_tuple;
  executor_servers_[static_cast<size_t>(dest_executor)]->Submit(
      work * kNs, [this, src_spout, n, t_emit] {
        if (Measuring()) delivered_ += static_cast<uint64_t>(n);
        if (!config_.acking) {
          RecordLatency(t_emit);
          return;
        }
        AckerProcess(src_spout, n, t_emit);
      });
}

void StormSim::AckerProcess(int src_spout, int64_t n, double t_emit) {
  if (acker_executor_.empty()) {
    SpoutAckArrive(src_spout, n, t_emit);
    return;
  }
  // Distribute the n ack messages over acker tasks; each completion sends
  // one more message back to the spout's executor.
  std::map<int, int64_t> per_acker_executor;
  for (int64_t k = 0; k < n; ++k) {
    const size_t acker = rng_.NextBelow(acker_executor_.size());
    ++per_acker_executor[acker_executor_[acker]];
  }
  for (const auto& [e, count] : per_acker_executor) {
    const double work = static_cast<double>(count) * costs_.acker_process_ns;
    const int64_t c = count;
    executor_servers_[static_cast<size_t>(e)]->Submit(
        work * kNs,
        [this, src_spout, c, t_emit] { SpoutAckArrive(src_spout, c, t_emit); });
  }
}

void StormSim::SpoutAckArrive(int s, int64_t n, double t_emit) {
  SpoutState& spout = spout_state_[static_cast<size_t>(s)];
  const double work = static_cast<double>(n) * costs_.spout_ack_ns;
  executor_servers_[static_cast<size_t>(spout.executor)]->Submit(
      work * kNs, [this, s, n, t_emit] {
        SpoutState& state = spout_state_[static_cast<size_t>(s)];
        state.pending = std::max<int64_t>(0, state.pending - n);
        if (Measuring()) acked_ += static_cast<uint64_t>(n);
        RecordLatency(t_emit);
        if (state.waiting) {
          state.waiting = false;
          SpoutTryEmit(s);
        }
      });
}

SimResult StormSim::Run() {
  const int data_tasks = config_.spouts + config_.bolts;
  const int executors_for_data =
      (data_tasks + config_.tasks_per_executor - 1) /
      config_.tasks_per_executor;
  const int num_workers =
      (data_tasks + config_.tasks_per_worker - 1) / config_.tasks_per_worker;
  const int num_ackers =
      config_.acking
          ? (config_.num_ackers > 0 ? config_.num_ackers : num_workers)
          : 0;
  const int acker_executors =
      (num_ackers + config_.tasks_per_executor - 1) /
      std::max(config_.tasks_per_executor, 1);
  const int num_executors = executors_for_data + acker_executors;

  for (int e = 0; e < num_executors; ++e) {
    executor_servers_.push_back(
        std::make_unique<SimServer>(&des_, costs_.oversubscription));
    executor_worker_.push_back(e % num_workers);
  }
  for (int w = 0; w < num_workers; ++w) {
    transfer_servers_.push_back(
        std::make_unique<SimServer>(&des_, costs_.oversubscription));
    receive_servers_.push_back(
        std::make_unique<SimServer>(&des_, costs_.oversubscription));
  }

  // Task → executor assignment, spouts first (mirrors the threaded
  // StormCluster).
  spout_state_.resize(static_cast<size_t>(config_.spouts));
  int task = 0;
  for (int s = 0; s < config_.spouts; ++s, ++task) {
    spout_state_[static_cast<size_t>(s)].executor =
        task / config_.tasks_per_executor;
  }
  for (int b = 0; b < config_.bolts; ++b, ++task) {
    bolt_executor_.push_back(task / config_.tasks_per_executor);
  }
  for (int a = 0; a < num_ackers; ++a) {
    acker_executor_.push_back(executors_for_data +
                              a / std::max(config_.tasks_per_executor, 1));
  }

  for (int s = 0; s < config_.spouts; ++s) SpoutTryEmit(s);

  const double end = config_.warmup_sec + config_.measure_sec;
  des_.RunUntil(end);

  SimResult result;
  result.tuples_delivered = delivered_;
  result.tuples_acked = acked_;
  const uint64_t counted = config_.acking ? acked_ : delivered_;
  result.tuples_per_min =
      static_cast<double>(counted) / config_.measure_sec * 60.0;
  result.latency_ms_mean = latency_.Mean() / 1e6;
  result.latency_ms_p50 = static_cast<double>(latency_.Quantile(0.5)) / 1e6;
  result.latency_ms_p99 = static_cast<double>(latency_.Quantile(0.99)) / 1e6;
  result.cpu_cores_provisioned =
      static_cast<double>(num_workers * config_.tasks_per_worker);
  result.tuples_per_min_per_core =
      result.tuples_per_min / result.cpu_cores_provisioned;
  double max_util = 0;
  for (const auto& t : transfer_servers_) {
    max_util = std::max(max_util, t->busy_time() / end);
  }
  result.max_smgr_utilization = max_util;
  result.sim_events = des_.events_processed();
  return result;
}

}  // namespace

SimResult RunStormSim(const StormSimConfig& config,
                      const StormCostModel& costs) {
  StormSim sim(config, costs);
  return sim.Run();
}

}  // namespace sim
}  // namespace heron
