// The Storm-style baseline must be a working engine (the comparison in
// Figs. 2-4 is only meaningful against a functional comparator).

#include "storm/storm_cluster.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/logging.h"
#include "workloads/word_count.h"

namespace heron {
namespace storm {
namespace {

class StormClusterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { Logging::SetLevel(LogLevel::kWarning); }

  std::shared_ptr<const api::Topology> WordCount(int spouts, int bolts,
                                                 bool acking) {
    workloads::WordSpout::Options spout_options;
    spout_options.dictionary_size = 500;
    spout_options.words_per_call = 4;
    Config config;
    config.SetBool(config_keys::kAckingEnabled, acking);
    auto topology = workloads::BuildWordCountTopology(
        "storm-wc", spouts, bolts, spout_options, config);
    HERON_CHECK_OK(topology.status());
    return *topology;
  }

  void WaitFor(const std::function<bool()>& done, int64_t timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!done() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
};

TEST_F(StormClusterTest, WordCountFlowsWithoutAcks) {
  StormCluster::Options options;
  options.num_workers = 2;
  options.acking = false;
  StormCluster cluster(options);
  ASSERT_TRUE(cluster.Submit(WordCount(2, 2, false)).ok());
  WaitFor([&] { return cluster.TotalExecuted() >= 5000; }, 30000);
  EXPECT_GE(cluster.TotalExecuted(), 5000u);
  EXPECT_GE(cluster.TotalEmitted(), cluster.TotalExecuted());
  ASSERT_TRUE(cluster.Kill().ok());
  EXPECT_FALSE(cluster.running());
}

TEST_F(StormClusterTest, AckerTasksCompleteTupleTrees) {
  StormCluster::Options options;
  options.num_workers = 2;
  options.acking = true;
  options.max_spout_pending = 500;
  options.num_ackers = 2;
  StormCluster cluster(options);
  ASSERT_TRUE(cluster.Submit(WordCount(2, 2, true)).ok());
  WaitFor([&] { return cluster.TotalAcked() >= 2000; }, 30000);
  EXPECT_GE(cluster.TotalAcked(), 2000u);
  EXPECT_EQ(cluster.TotalFailed(), 0u);
  EXPECT_GT(cluster.CompleteLatencyQuantile(0.5), 0u);
  ASSERT_TRUE(cluster.Kill().ok());
}

TEST_F(StormClusterTest, DoubleSubmitRejected) {
  StormCluster::Options options;
  options.num_workers = 1;
  StormCluster cluster(options);
  ASSERT_TRUE(cluster.Submit(WordCount(1, 1, false)).ok());
  EXPECT_TRUE(
      cluster.Submit(WordCount(1, 1, false)).IsFailedPrecondition());
  ASSERT_TRUE(cluster.Kill().ok());
  EXPECT_TRUE(cluster.Kill().IsFailedPrecondition());
}

TEST_F(StormClusterTest, ResubmitAfterKillWorks) {
  StormCluster::Options options;
  options.num_workers = 1;
  StormCluster cluster(options);
  ASSERT_TRUE(cluster.Submit(WordCount(1, 1, false)).ok());
  ASSERT_TRUE(cluster.Kill().ok());
  ASSERT_TRUE(cluster.Submit(WordCount(1, 1, false)).ok());
  WaitFor([&] { return cluster.TotalExecuted() >= 100; }, 30000);
  EXPECT_GE(cluster.TotalExecuted(), 100u);
  ASSERT_TRUE(cluster.Kill().ok());
}

}  // namespace
}  // namespace storm
}  // namespace heron
