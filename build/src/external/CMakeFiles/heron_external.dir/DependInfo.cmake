
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/external/kafka_sim.cc" "src/external/CMakeFiles/heron_external.dir/kafka_sim.cc.o" "gcc" "src/external/CMakeFiles/heron_external.dir/kafka_sim.cc.o.d"
  "/root/repo/src/external/pipeline_workload.cc" "src/external/CMakeFiles/heron_external.dir/pipeline_workload.cc.o" "gcc" "src/external/CMakeFiles/heron_external.dir/pipeline_workload.cc.o.d"
  "/root/repo/src/external/redis_sim.cc" "src/external/CMakeFiles/heron_external.dir/redis_sim.cc.o" "gcc" "src/external/CMakeFiles/heron_external.dir/redis_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/heron_api.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/heron_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/heron_serde.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
