#include "api/topology.h"

#include <gtest/gtest.h>

#include "api/context.h"

namespace heron {
namespace api {
namespace {

class NoopSpout final : public ISpout {
 public:
  void Open(const Config&, TopologyContext*, ISpoutOutputCollector*) override {}
  void NextTuple() override {}
};

class NoopBolt final : public IBolt {
 public:
  void Prepare(const Config&, TopologyContext*, IBoltOutputCollector*) override {}
  void Execute(const Tuple&) override {}
};

SpoutFactory Spout() {
  return [] { return std::make_unique<NoopSpout>(); };
}
BoltFactory Bolt() {
  return [] { return std::make_unique<NoopBolt>(); };
}

TEST(TopologyBuilderTest, BuildsValidTopology) {
  TopologyBuilder b("wc");
  b.SetSpout("spout", Spout(), 3).OutputFields({"word"});
  b.SetBolt("bolt", Bolt(), 2).FieldsGrouping("spout", {"word"});
  auto t = b.Build();
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ((*t)->name(), "wc");
  EXPECT_EQ((*t)->TotalInstances(), 5);
  EXPECT_EQ((*t)->components().size(), 2u);
  EXPECT_NE((*t)->FindComponent("spout"), nullptr);
  EXPECT_EQ((*t)->FindComponent("nope"), nullptr);
  const Fields* schema = (*t)->OutputSchema("spout", kDefaultStreamId);
  ASSERT_NE(schema, nullptr);
  EXPECT_TRUE(schema->Contains("word"));
}

TEST(TopologyBuilderTest, RejectsEmptyName) {
  TopologyBuilder b("");
  b.SetSpout("s", Spout(), 1);
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, RejectsNoComponents) {
  TopologyBuilder b("t");
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, RejectsNoSpout) {
  TopologyBuilder b("t");
  b.SetBolt("b", Bolt(), 1);
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, RejectsDuplicateIds) {
  TopologyBuilder b("t");
  b.SetSpout("x", Spout(), 1);
  b.SetBolt("x", Bolt(), 1);
  EXPECT_TRUE(b.Build().status().IsAlreadyExists());
}

TEST(TopologyBuilderTest, RejectsNonPositiveParallelism) {
  TopologyBuilder b("t");
  b.SetSpout("s", Spout(), 0);
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, RejectsUnknownInputComponent) {
  TopologyBuilder b("t");
  b.SetSpout("s", Spout(), 1);
  b.SetBolt("b", Bolt(), 1).ShuffleGrouping("ghost");
  EXPECT_TRUE(b.Build().status().IsNotFound());
}

TEST(TopologyBuilderTest, RejectsUndeclaredStream) {
  TopologyBuilder b("t");
  b.SetSpout("s", Spout(), 1);
  b.SetBolt("b", Bolt(), 1).ShuffleGrouping("s", "sidestream");
  EXPECT_TRUE(b.Build().status().IsNotFound());
}

TEST(TopologyBuilderTest, RejectsGroupingOnMissingField) {
  TopologyBuilder b("t");
  b.SetSpout("s", Spout(), 1).OutputFields({"word"});
  b.SetBolt("b", Bolt(), 1).FieldsGrouping("s", {"nope"});
  EXPECT_TRUE(b.Build().status().IsNotFound());
}

TEST(TopologyBuilderTest, RejectsEmptyFieldsGrouping) {
  TopologyBuilder b("t");
  b.SetSpout("s", Spout(), 1).OutputFields({"word"});
  b.SetBolt("b", Bolt(), 1).FieldsGrouping("s", Fields{});
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, RejectsCycles) {
  TopologyBuilder cyclic("cyc");
  cyclic.SetSpout("s", Spout(), 1).OutputFields({"w"});
  cyclic.SetBolt("a", Bolt(), 1).OutputFields({"w"}).ShuffleGrouping("b");
  cyclic.SetBolt("b", Bolt(), 1).OutputFields({"w"}).ShuffleGrouping("a");
  EXPECT_TRUE(cyclic.Build().status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, DiamondIsAcceptedAsDag) {
  TopologyBuilder b("diamond");
  b.SetSpout("s", Spout(), 1).OutputFields({"w"});
  b.SetBolt("l", Bolt(), 1).OutputFields({"w"}).ShuffleGrouping("s");
  b.SetBolt("r", Bolt(), 1).OutputFields({"w"}).ShuffleGrouping("s");
  b.SetBolt("join", Bolt(), 1).ShuffleGrouping("l").ShuffleGrouping("r");
  EXPECT_TRUE(b.Build().ok());
}

TEST(TopologyBuilderTest, MultipleStreamsPerComponent) {
  TopologyBuilder b("multi");
  b.SetSpout("s", Spout(), 1)
      .OutputFields({"w"})
      .OutputFields({"err"}, "errors");
  b.SetBolt("main", Bolt(), 1).ShuffleGrouping("s");
  b.SetBolt("errors", Bolt(), 1).ShuffleGrouping("s", "errors");
  auto t = b.Build();
  ASSERT_TRUE(t.ok());
  EXPECT_NE((*t)->OutputSchema("s", "errors"), nullptr);
}

TEST(TopologyTest, WithParallelismProducesScaledCopy) {
  TopologyBuilder b("t");
  b.SetSpout("s", Spout(), 2).OutputFields({"w"});
  b.SetBolt("b", Bolt(), 3).ShuffleGrouping("s");
  auto t = b.Build();
  ASSERT_TRUE(t.ok());
  auto scaled = (*t)->WithParallelism("b", 7);
  ASSERT_TRUE(scaled.ok());
  EXPECT_EQ(scaled->FindComponent("b")->parallelism, 7);
  EXPECT_EQ((*t)->FindComponent("b")->parallelism, 3);  // Original intact.
  EXPECT_TRUE((*t)->WithParallelism("ghost", 2).status().IsNotFound());
  EXPECT_TRUE((*t)->WithParallelism("b", 0).status().IsInvalidArgument());
}

TEST(TopologyTest, ResourcesDeclaredPerInstance) {
  TopologyBuilder b("t");
  b.SetSpout("s", Spout(), 1)
      .OutputFields({"w"})
      .SetResources(Resource(2.0, 2048));
  b.SetBolt("b", Bolt(), 1).ShuffleGrouping("s");
  auto t = b.Build();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->FindComponent("s")->resources, Resource(2.0, 2048));
}

TEST(TopologyContextTest, ExposesIdentity) {
  TopologyContext ctx("topo", "comp", 5, 2, 8);
  EXPECT_EQ(ctx.topology_name(), "topo");
  EXPECT_EQ(ctx.component(), "comp");
  EXPECT_EQ(ctx.task_id(), 5);
  EXPECT_EQ(ctx.component_index(), 2);
  EXPECT_EQ(ctx.parallelism(), 8);
}

}  // namespace
}  // namespace api
}  // namespace heron
