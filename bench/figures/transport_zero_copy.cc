// Transport zero-copy smoke bench: the cost of one SMGR forwarding hop
// under the three routing strategies the codebase supports, over the same
// serialized tuple batch.
//
//   header-route   read the destination from the envelope/frame header —
//                  the zero-copy path (`smgr.payload_touches` == 0).
//   payload-peek   lazy partial parse of dest_task from the payload — the
//                  fallback when an envelope arrives unaddressed (§V-A
//                  optimization 2).
//   reserialize    full deserialize + reserialize per hop — the ablation
//                  baseline ("tuples had to be serialized/deserialized at
//                  every hop", §V-A).
//
// The figure to eyeball: header-route must be far cheaper than the
// reserialize baseline — that gap is what the pluggable-transport refactor
// protects by carrying dest_task in the frame header.

#include <chrono>
#include <cstdint>

#include "bench/figures/fig_util.h"
#include "proto/messages.h"
#include "serde/wire.h"

using namespace heron;

namespace {

serde::Buffer MakeBatchPayload(int tuples) {
  proto::TupleBatchMsg batch;
  batch.src_task = 0;
  batch.dest_task = 7;
  batch.stream = "default";
  batch.src_component = "word";
  for (int i = 0; i < tuples; ++i) {
    proto::TupleDataMsg tuple;
    tuple.tuple_key = static_cast<api::TupleKey>(i + 1);
    tuple.roots.push_back(static_cast<api::TupleKey>(i * 31 + 1));
    tuple.emit_time_nanos = 1000 + i;
    tuple.values.push_back(api::Value(std::string("word-") +
                                      std::to_string(i % 100)));
    batch.tuples.push_back(tuple.SerializeAsBuffer());
  }
  return batch.SerializeAsBuffer();
}

/// Runs `hop` in a timed window and returns hops per second.
template <typename Hop>
double MeasureHops(double warmup_sec, double measure_sec, Hop hop) {
  using Clock = std::chrono::steady_clock;
  const auto Run = [&](double seconds) {
    const auto start = Clock::now();
    uint64_t hops = 0;
    while (std::chrono::duration<double>(Clock::now() - start).count() <
           seconds) {
      for (int i = 0; i < 256; ++i) hop();
      hops += 256;
    }
    return hops / std::chrono::duration<double>(Clock::now() - start).count();
  };
  Run(warmup_sec);
  return Run(measure_sec);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseSmoke(argc, argv);
  bench::JsonReport report("transport_zero_copy");

  bench::PrintFigureHeader(
      "Transport zero-copy: per-hop routing cost by strategy",
      "SMGR routes on metadata; \"the tuple is not deserialized but is "
      "forwarded as a serialized byte array\" (SV-A)");
  bench::PrintColumns({"batch_tuples", "hdr_Mhop/s", "peek_Mhop/s",
                       "reser_Mhop/s", "hdr/reser", "peek/reser"});

  // `sink` defeats dead-code elimination across all three loops.
  volatile int64_t sink = 0;
  double min_header_ratio = 1e30;

  for (const int tuples : {8, 64, 256}) {
    const serde::Buffer payload = MakeBatchPayload(tuples);

    // Zero-copy hop: dest travels in the frame header; forwarding decodes
    // the 20 header bytes and never looks at the payload.
    serde::FrameHeader header;
    header.type = 5;
    header.dest_kind = 1;
    header.dest = 7;
    header.payload_len = static_cast<uint32_t>(payload.size());
    char wire[serde::kFrameHeaderBytes];
    serde::EncodeFrameHeader(header, wire);
    const double header_hops = MeasureHops(
        bench::WarmupSec(), bench::MeasureSec(), [&] {
          serde::FrameHeader out;
          if (serde::DecodeFrameHeader(
                  serde::BytesView(wire, serde::kFrameHeaderBytes), &out)
                  .ok()) {
            sink = sink + out.dest;
          }
        });

    // Fallback hop: partial parse of dest_task out of the payload bytes.
    const double peek_hops = MeasureHops(
        bench::WarmupSec(), bench::MeasureSec(), [&] {
          auto dest = proto::PeekDestTask(payload);
          if (dest.ok()) sink = sink + *dest;
        });

    // Ablation hop: the pre-Heron baseline, full parse + reserialize.
    const double reser_hops = MeasureHops(
        bench::WarmupSec(), bench::MeasureSec(), [&] {
          proto::TupleBatchMsg batch;
          if (batch.ParseFromBytes(payload).ok()) {
            sink = sink + batch.dest_task;
            sink = sink + static_cast<int64_t>(batch.SerializeAsBuffer().size());
          }
        });

    const double header_ratio = header_hops / reser_hops;
    min_header_ratio = std::min(min_header_ratio, header_ratio);

    bench::PrintCellInt(tuples);
    bench::PrintCell(header_hops / 1e6);
    bench::PrintCell(peek_hops / 1e6);
    bench::PrintCell(reser_hops / 1e6);
    bench::PrintCell(header_ratio);
    bench::PrintCell(peek_hops / reser_hops);
    bench::EndRow();

    const std::string scenario = "batch_" + std::to_string(tuples);
    report.Add(scenario, "header_mhops_s", header_hops / 1e6);
    report.Add(scenario, "peek_mhops_s", peek_hops / 1e6);
    report.Add(scenario, "reserialize_mhops_s", reser_hops / 1e6);
    report.Add(scenario, "header_speedup", header_ratio);
  }

  std::printf("\n");
  bench::PrintVerdict("min header-route speedup over reserialize",
                      min_header_ratio, 5.0, 1e9);
  std::printf(
      "  Note: the upper bound is open — header routing is O(1) in batch\n"
      "  size while the reserialize baseline is O(tuples), so the ratio\n"
      "  grows with batch size; the check is that the floor holds.\n");
  (void)sink;
  report.Write();
  return 0;
}
