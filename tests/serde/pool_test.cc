#include "serde/message_pool.h"

#include <gtest/gtest.h>

#include "proto/messages.h"

namespace heron {
namespace serde {
namespace {

TEST(MessagePoolTest, ReusesReleasedObjects) {
  MessagePool<proto::TupleDataMsg> pool(/*enabled=*/true);
  proto::TupleDataMsg* first = pool.Acquire();
  first->tuple_key = 42;
  pool.Release(first);
  proto::TupleDataMsg* second = pool.Acquire();
  EXPECT_EQ(second, first);          // Same object back.
  EXPECT_EQ(second->tuple_key, 0u);  // But cleared.
  pool.Release(second);

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.allocations, 1u);
  EXPECT_EQ(stats.reuses, 1u);
  EXPECT_EQ(stats.returns, 2u);
}

TEST(MessagePoolTest, DisabledPoolAlwaysAllocates) {
  MessagePool<proto::TupleDataMsg> pool(/*enabled=*/false);
  proto::TupleDataMsg* first = pool.Acquire();
  pool.Release(first);
  pool.Release(pool.Acquire());
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.allocations, 2u);
  EXPECT_EQ(stats.reuses, 0u);
  EXPECT_EQ(pool.idle_count(), 0u);
}

TEST(MessagePoolTest, MaxIdleCapsRetention) {
  MessagePool<proto::TupleDataMsg> pool(/*enabled=*/true, /*max_idle=*/2);
  std::vector<proto::TupleDataMsg*> objs;
  for (int i = 0; i < 5; ++i) objs.push_back(pool.Acquire());
  for (auto* obj : objs) pool.Release(obj);
  EXPECT_EQ(pool.idle_count(), 2u);
}

TEST(MessagePoolTest, ReleaseNullIsNoop) {
  MessagePool<proto::TupleDataMsg> pool;
  pool.Release(nullptr);
  EXPECT_EQ(pool.stats().returns, 0u);
}

TEST(PooledPtrTest, ReleasesOnDestruction) {
  MessagePool<proto::TupleDataMsg> pool;
  {
    PooledPtr<proto::TupleDataMsg> ptr = AcquirePooled(&pool);
    ptr->tuple_key = 7;
    EXPECT_TRUE(static_cast<bool>(ptr));
  }
  EXPECT_EQ(pool.idle_count(), 1u);
  EXPECT_EQ(pool.stats().returns, 1u);
}

TEST(PooledPtrTest, MoveTransfersOwnership) {
  MessagePool<proto::TupleDataMsg> pool;
  PooledPtr<proto::TupleDataMsg> a = AcquirePooled(&pool);
  proto::TupleDataMsg* raw = a.get();
  PooledPtr<proto::TupleDataMsg> b = std::move(a);
  EXPECT_EQ(b.get(), raw);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b.reset();
  EXPECT_EQ(pool.idle_count(), 1u);
}

TEST(PooledPtrTest, ReleaseDetaches) {
  MessagePool<proto::TupleDataMsg> pool;
  PooledPtr<proto::TupleDataMsg> ptr = AcquirePooled(&pool);
  proto::TupleDataMsg* raw = ptr.release();
  EXPECT_FALSE(static_cast<bool>(ptr));
  EXPECT_EQ(pool.stats().returns, 0u);
  delete raw;  // Caller owns after release().
}

TEST(BufferPoolTest, RecyclesCapacity) {
  BufferPool pool(/*enabled=*/true);
  Buffer buffer = pool.Acquire();
  buffer.reserve(4096);
  const size_t capacity = buffer.capacity();
  pool.Release(std::move(buffer));
  Buffer again = pool.Acquire();
  EXPECT_GE(again.capacity(), capacity);  // Capacity survived the reuse.
  EXPECT_TRUE(again.empty());             // Contents did not.
  EXPECT_EQ(pool.stats().reuses, 1u);
}

TEST(BufferPoolTest, DisabledAllocatesFresh) {
  BufferPool pool(/*enabled=*/false);
  pool.Release(pool.Acquire());
  pool.Release(pool.Acquire());
  EXPECT_EQ(pool.stats().allocations, 2u);
  EXPECT_EQ(pool.stats().reuses, 0u);
}

TEST(BufferPoolTest, MaxIdleCapsRetentionAndCountsEvictions) {
  BufferPool pool(/*enabled=*/true, /*max_idle=*/2);
  std::vector<Buffer> out;
  for (int i = 0; i < 5; ++i) out.push_back(pool.Acquire());
  for (auto& b : out) pool.Release(std::move(b));
  EXPECT_EQ(pool.idle_count(), 2u);
  EXPECT_EQ(pool.stats().evicted, 3u);
  EXPECT_EQ(pool.stats().returns, 5u);
}

TEST(BufferPoolTest, RetainedBytesBudgetBoundsFreelist) {
  // 3 × 4KB fits an 8KB budget only twice: the third release is evicted
  // even though the idle-count cap has room.
  BufferPool pool(/*enabled=*/true, /*max_idle=*/64,
                  /*max_retained_bytes=*/8192, /*max_buffer_bytes=*/1u << 20);
  std::vector<Buffer> out;
  for (int i = 0; i < 3; ++i) {
    Buffer b = pool.Acquire();
    b.reserve(4096);
    out.push_back(std::move(b));
  }
  for (auto& b : out) pool.Release(std::move(b));
  EXPECT_LE(pool.retained_bytes(), pool.max_retained_bytes());
  EXPECT_GE(pool.stats().evicted, 1u);
  // Re-acquiring returns the budget to the pool.
  Buffer back = pool.Acquire();
  EXPECT_GE(back.capacity(), 4096u);
  EXPECT_LT(pool.retained_bytes(), 8192u);
}

TEST(BufferPoolTest, OversizeBuffersAreNeverRetained) {
  // A buffer that ballooned past max_buffer_bytes must not poison the
  // freelist (it would hand every future sender a giant allocation).
  BufferPool pool(/*enabled=*/true, /*max_idle=*/64,
                  /*max_retained_bytes=*/64u << 20,
                  /*max_buffer_bytes=*/4096);
  Buffer big = pool.Acquire();
  big.reserve(1u << 20);
  pool.Release(std::move(big));
  EXPECT_EQ(pool.idle_count(), 0u);
  EXPECT_EQ(pool.stats().evicted, 1u);
  Buffer small = pool.Acquire();
  small.reserve(1024);
  pool.Release(std::move(small));
  EXPECT_EQ(pool.idle_count(), 1u);
}

TEST(BufferPoolTest, HighWaterTracksPeakIdleDepth) {
  BufferPool pool(/*enabled=*/true, /*max_idle=*/16);
  std::vector<Buffer> out;
  for (int i = 0; i < 6; ++i) out.push_back(pool.Acquire());
  for (auto& b : out) pool.Release(std::move(b));
  EXPECT_EQ(pool.stats().high_water, 6u);
  // Draining the pool does not lower the recorded peak.
  Buffer b1 = pool.Acquire();
  Buffer b2 = pool.Acquire();
  EXPECT_EQ(pool.stats().high_water, 6u);
  pool.Release(std::move(b1));
  pool.Release(std::move(b2));
}

TEST(BufferPoolTest, SteadyStateStopsAllocating) {
  BufferPool pool(/*enabled=*/true);
  // Warm with 8 buffers, then churn: no further allocations.
  std::vector<Buffer> warm;
  for (int i = 0; i < 8; ++i) warm.push_back(pool.Acquire());
  for (auto& b : warm) pool.Release(std::move(b));
  const uint64_t baseline = pool.stats().allocations;
  for (int round = 0; round < 100; ++round) {
    Buffer b = pool.Acquire();
    b.append(64, 'x');
    pool.Release(std::move(b));
  }
  EXPECT_EQ(pool.stats().allocations, baseline);
}

}  // namespace
}  // namespace serde
}  // namespace heron
