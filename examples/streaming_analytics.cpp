// Real-time analytics — the production-style pipeline of §VI-D: events
// from a (simulated) Kafka firehose, filtered, aggregated per key, and
// written to a (simulated) Redis store, with per-category CPU accounting.
//
//   $ ./build/examples/streaming_analytics

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/logging.h"
#include "external/pipeline_workload.h"
#include "runtime/local_cluster.h"

using namespace heron;

int main() {
  Logging::SetLevel(LogLevel::kWarning);

  auto kafka = std::make_shared<external::SimKafka>(
      external::SimKafka::Options{});
  auto redis = std::make_shared<external::SimRedis>(
      external::SimRedis::Options{});
  auto recorder = std::make_shared<external::CostRecorder>();

  external::PipelineWorkloadOptions workload;
  workload.spouts = 2;
  workload.filters = 2;
  workload.aggregators = 2;
  auto topology = external::BuildPipelineTopology(
      "streaming-analytics", workload, kafka, redis, recorder);
  HERON_CHECK_OK(topology.status());

  Config config;
  config.SetInt(config_keys::kNumContainersHint, 2);
  runtime::LocalCluster cluster(config);
  HERON_CHECK_OK(cluster.Submit(*topology));
  std::printf("analytics pipeline running (kafka → filter → aggregate → "
              "redis)...\n");
  std::this_thread::sleep_for(std::chrono::seconds(3));

  const double engine_cpu_ms =
      static_cast<double>(cluster.SumInstanceGauge("instance.thread.cpu.ns") +
                          cluster.SumSmgrGauge("smgr.thread.cpu.ns")) /
      1e6;
  HERON_CHECK_OK(cluster.Kill());

  std::printf("events fetched from kafka-sim: %llu\n",
              static_cast<unsigned long long>(kafka->total_fetched()));
  std::printf("operations written to redis-sim: %llu (%zu keys)\n",
              static_cast<unsigned long long>(redis->total_ops()),
              redis->key_count());
  std::printf("CPU spent fetching: %.1f ms | user logic: %.1f ms | "
              "writing: %.1f ms\n",
              static_cast<double>(recorder->fetch_ns.load()) / 1e6,
              static_cast<double>(recorder->user_ns.load()) / 1e6,
              static_cast<double>(recorder->write_ns.load()) / 1e6);
  std::printf("engine threads total CPU: %.1f ms\n", engine_cpu_ms);
  return kafka->total_fetched() > 0 && redis->total_ops() > 0 ? 0 : 1;
}
