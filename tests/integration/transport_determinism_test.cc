// The transport fabric's observability contract, asserted end to end: a
// WordCount universe single-stepped under a SimClock must produce
// byte-identical results no matter which wire carries its envelopes.
// "in-process" hands buffers through channels directly; "socket" pushes
// every container-crossing envelope through a real kernel byte stream
// (framed, scatter-gather written, reassembled); "shm" rides a
// shared-memory ring. If any wire reordered, duplicated, dropped or
// re-timed a frame, the snapshot JSON, span sequence and rollups would
// diverge — equality across universes is the determinism proof.
//
// Also asserted here because it needs a live multi-container cluster: the
// zero-copy invariant. With optimizations on, every batch a Stream
// Manager *forwards* routes on Envelope/frame metadata alone, so
// `smgr.payload_touches` must read zero in every universe.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/logging.h"
#include "observability/trace.h"
#include "runtime/local_cluster.h"
#include "workloads/word_count.h"

namespace heron {
namespace runtime {
namespace {

constexpr uint64_t kEmitLimit = 40;
constexpr int64_t kSampleInverse = 4;
constexpr char kTopologyName[] = "transport-det";

Config StepClusterConfig(const std::string& transport_mode) {
  Config config;
  config.SetInt(config_keys::kNumContainersHint, 2);
  config.SetBool(config_keys::kClusterStepMode, true);
  config.SetInt(config_keys::kMetricsCollectIntervalMs, 50);
  config.SetInt(config_keys::kTraceSampleInverse, kSampleInverse);
  config.Set(config_keys::kTransportMode, transport_mode);
  return config;
}

Config AckingTopologyConfig() {
  Config config;
  config.SetBool(config_keys::kAckingEnabled, true);
  config.SetInt(config_keys::kMessageTimeoutMs, 10000);
  config.SetInt(config_keys::kMaxSpoutPending, 16);
  return config;
}

/// Everything one universe produces that a differently-wired twin must
/// reproduce byte for byte.
struct UniverseResult {
  bool ok = false;
  std::vector<observability::Span> spans;
  std::string snapshot_json;
  uint64_t acked = 0;
  uint64_t payload_touches = 0;
  uint64_t frames_on_wire = 0;
};

UniverseResult RunUniverse(const std::string& transport_mode) {
  UniverseResult out;
  SimClock clock(0);
  LocalCluster cluster(StepClusterConfig(transport_mode), &clock);

  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 100;
  spout_options.words_per_call = 2;
  spout_options.emit_limit = kEmitLimit;
  auto topology = workloads::BuildWordCountTopology(
      kTopologyName, /*spouts=*/1, /*bolts=*/1, spout_options,
      AckingTopologyConfig());
  EXPECT_TRUE(topology.ok());
  if (!cluster.Submit(*topology).ok()) return out;
  EXPECT_EQ(std::string(cluster.transport()->fabric()->name()),
            transport_mode.empty() ? "in-process" : transport_mode);

  // RR packing: spout task 0 → container 0, bolt task 1 → container 1 —
  // every spout→bolt tuple and every ack crosses the wire under test.
  int rounds = 0;
  while (cluster.SumCounter("instance.acked") < kEmitLimit && rounds < 3000) {
    ++rounds;
    cluster.StepAll();
    clock.AdvanceMillis(5);
    cluster.StepAll();
  }
  out.acked = cluster.SumCounter("instance.acked");
  EXPECT_EQ(out.acked, kEmitLimit)
      << "universe on '" << transport_mode << "' did not drain";

  out.spans = cluster.CollectSpans();
  out.payload_touches = cluster.SumSmgrCounter("smgr.payload_touches");
  out.frames_on_wire = cluster.transport()->fabric_stats().frames_sent;
  out.snapshot_json = cluster.BuildSnapshot().ToJson();
  out.ok = cluster.Kill().ok();
  return out;
}

class TransportDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { Logging::SetLevel(LogLevel::kError); }
};

TEST_F(TransportDeterminismTest, SocketUniverseIsByteIdenticalToInProcess) {
  const UniverseResult in_process = RunUniverse("in-process");
  const UniverseResult socket = RunUniverse("socket");
  ASSERT_TRUE(in_process.ok);
  ASSERT_TRUE(socket.ok);

  // The acceptance bar: identical topology results. Snapshot JSON folds in
  // the physical plan, liveness, metric rollups and the trace summary;
  // span sequences carry every SimClock timestamp. One reordered or
  // re-timed frame anywhere and these strings differ.
  EXPECT_EQ(in_process.snapshot_json, socket.snapshot_json);
  EXPECT_EQ(in_process.spans, socket.spans);
  EXPECT_FALSE(socket.spans.empty());
  EXPECT_EQ(in_process.acked, socket.acked);
}

TEST_F(TransportDeterminismTest, ShmUniverseIsByteIdenticalToInProcess) {
  const UniverseResult in_process = RunUniverse("in-process");
  const UniverseResult shm = RunUniverse("shm");
  ASSERT_TRUE(in_process.ok);
  ASSERT_TRUE(shm.ok);
  EXPECT_EQ(in_process.snapshot_json, shm.snapshot_json);
  EXPECT_EQ(in_process.spans, shm.spans);
  EXPECT_EQ(in_process.acked, shm.acked);
}

TEST_F(TransportDeterminismTest, ForwardingPathsNeverTouchPayloads) {
  // The zero-copy invariant, per mode: every batch travels
  // instance → SMGR → (wire) → SMGR → instance with the only payload
  // (de)serialization at the instance boundaries.
  for (const char* mode : {"in-process", "socket", "shm"}) {
    const UniverseResult r = RunUniverse(mode);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.payload_touches, 0u)
        << "SMGR forwarding path inspected payload bytes under '" << mode
        << "'";
  }
}

TEST_F(TransportDeterminismTest, WireModesActuallyCarryFrames) {
  // Guard against the determinism tests passing vacuously: the wire
  // fabrics must have framed real traffic.
  const UniverseResult socket = RunUniverse("socket");
  ASSERT_TRUE(socket.ok);
  EXPECT_GT(socket.frames_on_wire, 0u);
  const UniverseResult shm = RunUniverse("shm");
  ASSERT_TRUE(shm.ok);
  EXPECT_GT(shm.frames_on_wire, 0u);
}

}  // namespace
}  // namespace runtime
}  // namespace heron
