// The §IV-B roadmap frameworks (Slurm-like, Marathon-like): "there is no
// need to create separate specialized versions of Heron for each new
// scheduling framework" — the same FrameworkScheduler must drive both
// without modification.

#include <gtest/gtest.h>

#include "frameworks/marathon_like_framework.h"
#include "frameworks/slurm_like_framework.h"
#include "packing/round_robin_packing.h"
#include "scheduler/framework_scheduler.h"
#include "workloads/word_count.h"

namespace heron {
namespace frameworks {
namespace {

class NoopLauncher final : public scheduler::IContainerLauncher {
 public:
  Status StartContainer(const packing::ContainerPlan&) override {
    return Status::OK();
  }
  Status StopContainer(ContainerId) override { return Status::OK(); }
};

packing::PackingPlan Plan(int spouts, int bolts) {
  auto topology = workloads::BuildWordCountTopology("fw", spouts, bolts);
  HERON_CHECK_OK(topology.status());
  packing::RoundRobinPacking packer;
  HERON_CHECK_OK(packer.Initialize(Config(), *topology));
  auto plan = packer.Pack();
  HERON_CHECK_OK(plan.status());
  return *plan;
}

TEST(SlurmLikeTest, StatefulSchedulerRecoversFailedStep) {
  SimCluster cluster;
  cluster.AddNodes(8, Resource(32, 65536, 0));
  SlurmLikeFramework slurm(&cluster);
  EXPECT_TRUE(slurm.SupportsHeterogeneousContainers());
  EXPECT_FALSE(slurm.AutoRestartsFailedContainers());

  NoopLauncher launcher;
  scheduler::FrameworkScheduler sched(&slurm, &launcher);
  ASSERT_TRUE(sched.Initialize(Config()).ok());
  ASSERT_TRUE(sched.OnSchedule(Plan(4, 4)).ok());
  EXPECT_TRUE(sched.IsStateful());

  ASSERT_TRUE(slurm.InjectContainerFailure(sched.job_id(), 0).ok());
  EXPECT_EQ(sched.failovers_handled(), 1);
  EXPECT_EQ((*slurm.JobStatus(sched.job_id()))[0].state,
            ContainerState::kRunning);
}

TEST(SlurmLikeTest, AllocationsAreFixedAtSubmission) {
  SimCluster cluster;
  cluster.AddNodes(8, Resource(32, 65536, 0));
  SlurmLikeFramework slurm(&cluster);
  NoopLauncher launcher;
  scheduler::FrameworkScheduler sched(&slurm, &launcher);
  ASSERT_TRUE(sched.Initialize(Config()).ok());
  const packing::PackingPlan before = Plan(4, 4);
  ASSERT_TRUE(sched.OnSchedule(before).ok());

  // A repack that needs new containers must be refused end to end.
  auto topology = workloads::BuildWordCountTopology("fw", 4, 4);
  ASSERT_TRUE(topology.ok());
  packing::RoundRobinPacking packer;
  ASSERT_TRUE(packer.Initialize(Config(), *topology).ok());
  auto grown = packer.Repack(before, {{"count", 16}});
  ASSERT_TRUE(grown.ok());
  ASSERT_GT(grown->NumContainers(), before.NumContainers());
  EXPECT_TRUE(sched.OnUpdate({"fw", *grown}).IsFailedPrecondition());
}

TEST(MarathonLikeTest, StatelessSchedulerAndSelfHealing) {
  SimCluster cluster;
  cluster.AddNodes(8, Resource(32, 65536, 0));
  MarathonLikeFramework marathon(&cluster);
  EXPECT_FALSE(marathon.SupportsHeterogeneousContainers());
  EXPECT_TRUE(marathon.AutoRestartsFailedContainers());

  NoopLauncher launcher;
  scheduler::FrameworkScheduler sched(&marathon, &launcher);
  ASSERT_TRUE(sched.Initialize(Config()).ok());
  ASSERT_TRUE(sched.OnSchedule(Plan(4, 4)).ok());
  EXPECT_FALSE(sched.IsStateful());

  // Marathon heals without the scheduler noticing.
  ASSERT_TRUE(marathon.InjectContainerFailure(sched.job_id(), 1).ok());
  EXPECT_EQ(sched.failovers_handled(), 0);
  EXPECT_EQ((*marathon.JobStatus(sched.job_id()))[1].state,
            ContainerState::kRunning);
  EXPECT_EQ((*marathon.JobStatus(sched.job_id()))[1].restarts, 1);
}

TEST(MarathonLikeTest, ScaleOutKeepsInstanceSize) {
  SimCluster cluster;
  cluster.AddNodes(8, Resource(32, 65536, 0));
  MarathonLikeFramework marathon(&cluster);
  NoopLauncher launcher;
  scheduler::FrameworkScheduler sched(&marathon, &launcher);
  ASSERT_TRUE(sched.Initialize(Config()).ok());
  const packing::PackingPlan before = Plan(4, 4);
  ASSERT_TRUE(sched.OnSchedule(before).ok());

  // On an identical-instance framework the repack must not open
  // containers bigger than the deployed app size, so the operator caps
  // the packer's container capacity at that size.
  const Resource deployed = before.MaxContainerResource();
  Config repack_config;
  repack_config.SetDouble(config_keys::kContainerCpuHint, deployed.cpu);
  repack_config.SetInt(config_keys::kContainerRamMbHint, deployed.ram_mb);
  auto topology = workloads::BuildWordCountTopology("fw", 4, 4);
  ASSERT_TRUE(topology.ok());
  packing::RoundRobinPacking packer;
  ASSERT_TRUE(packer.Initialize(repack_config, *topology).ok());
  auto grown = packer.Repack(before, {{"count", 16}});
  ASSERT_TRUE(grown.ok());
  ASSERT_TRUE(sched.OnUpdate({"fw", *grown}).ok())
      << sched.OnUpdate({"fw", *grown}).ToString();
  // All deployed containers share the app's (uniform) instance size.
  auto status = marathon.JobStatus(sched.job_id());
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->size(),
            static_cast<size_t>(grown->NumContainers()));
}

}  // namespace
}  // namespace frameworks
}  // namespace heron
