#include "observability/trace.h"

#include <algorithm>
#include <map>

namespace heron {
namespace observability {

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kSpoutEmit:
      return "spout_emit";
    case TraceStage::kSmgrRoute:
      return "smgr_route";
    case TraceStage::kTransportHop:
      return "transport_hop";
    case TraceStage::kInstanceDequeue:
      return "instance_dequeue";
    case TraceStage::kExecute:
      return "execute";
    case TraceStage::kAckComplete:
      return "ack_complete";
  }
  return "unknown";
}

SpanCollector::SpanCollector(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

void SpanCollector::Record(uint64_t trace_id, TraceStage stage,
                           int32_t location, int64_t at_nanos) {
  const uint64_t index = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[index % capacity_];
  // Invalidate while the fields are in flux, then publish with the new
  // stamp. A concurrent Snapshot seeing stamp==0 or a stamp that does not
  // match the expected index skips the slot.
  slot.stamp.store(0, std::memory_order_release);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.stage.store(static_cast<uint8_t>(stage), std::memory_order_relaxed);
  slot.location.store(location, std::memory_order_relaxed);
  slot.at_nanos.store(at_nanos, std::memory_order_relaxed);
  slot.stamp.store(index + 1, std::memory_order_release);
}

std::vector<Span> SpanCollector::Snapshot() const {
  const uint64_t total = next_.load(std::memory_order_acquire);
  const uint64_t retained = std::min<uint64_t>(total, capacity_);
  std::vector<Span> out;
  out.reserve(retained);
  // Oldest retained record index.
  const uint64_t first = total - retained;
  for (uint64_t index = first; index < total; ++index) {
    const Slot& slot = slots_[index % capacity_];
    if (slot.stamp.load(std::memory_order_acquire) != index + 1) {
      continue;  // Mid-overwrite by a concurrent Record; skip.
    }
    Span s;
    s.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    s.stage = static_cast<TraceStage>(slot.stage.load(std::memory_order_relaxed));
    s.location = slot.location.load(std::memory_order_relaxed);
    s.at_nanos = slot.at_nanos.load(std::memory_order_relaxed);
    if (slot.stamp.load(std::memory_order_acquire) != index + 1) {
      continue;  // Overwritten while copying.
    }
    out.push_back(s);
  }
  return out;
}

uint64_t SpanCollector::dropped() const {
  const uint64_t total = next_.load(std::memory_order_acquire);
  return total > capacity_ ? total - capacity_ : 0;
}

TraceBreakdown BuildTraceBreakdown(const std::vector<Span>& spans) {
  TraceBreakdown out;
  out.mean_delta_nanos.fill(0);
  // First-appearance order, first record per (trace, stage).
  std::map<uint64_t, size_t> index_of;
  for (const Span& span : spans) {
    auto [it, inserted] = index_of.try_emplace(span.trace_id, 0);
    if (inserted) {
      it->second = out.traces.size();
      TraceRecord rec;
      rec.trace_id = span.trace_id;
      rec.at_nanos.fill(-1);
      rec.delta_nanos.fill(-1);
      out.traces.push_back(rec);
    }
    TraceRecord& rec = out.traces[it->second];
    int64_t& at = rec.at_nanos[static_cast<size_t>(span.stage)];
    if (at < 0) at = span.at_nanos;
  }

  std::array<double, kNumTraceStages> delta_sum{};
  std::array<size_t, kNumTraceStages> delta_count{};
  double e2e_sum = 0;
  for (TraceRecord& rec : out.traces) {
    int64_t prev = -1;
    for (size_t stage = 0; stage < kNumTraceStages; ++stage) {
      const int64_t at = rec.at_nanos[stage];
      if (at < 0) continue;
      rec.delta_nanos[stage] = prev < 0 ? 0 : at - prev;
      prev = at;
    }
    const int64_t emit =
        rec.at_nanos[static_cast<size_t>(TraceStage::kSpoutEmit)];
    const int64_t ack =
        rec.at_nanos[static_cast<size_t>(TraceStage::kAckComplete)];
    if (emit >= 0 && ack >= 0) {
      rec.end_to_end_nanos = ack - emit;
      ++out.complete_count;
      e2e_sum += static_cast<double>(rec.end_to_end_nanos);
      for (size_t stage = 0; stage < kNumTraceStages; ++stage) {
        if (rec.delta_nanos[stage] >= 0) {
          delta_sum[stage] += static_cast<double>(rec.delta_nanos[stage]);
          ++delta_count[stage];
        }
      }
    }
  }
  if (out.complete_count > 0) {
    out.mean_end_to_end_nanos =
        e2e_sum / static_cast<double>(out.complete_count);
    for (size_t stage = 0; stage < kNumTraceStages; ++stage) {
      if (delta_count[stage] > 0) {
        // Mean over *complete* traces: stages that skipped (no transport
        // hop) contribute zero to the stack, keeping the stacked stage sum
        // equal to the mean end-to-end latency.
        out.mean_delta_nanos[stage] =
            delta_sum[stage] / static_cast<double>(out.complete_count);
      }
    }
  }
  return out;
}

}  // namespace observability
}  // namespace heron
