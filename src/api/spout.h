#ifndef HERON_API_SPOUT_H_
#define HERON_API_SPOUT_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "api/tuple.h"
#include "common/config.h"

namespace heron {
namespace api {

class TopologyContext;

/// \brief Emission surface handed to a spout.
///
/// Implemented by the Heron Instance executor (and by the Storm-baseline
/// executor); user code never constructs one.
class ISpoutOutputCollector {
 public:
  virtual ~ISpoutOutputCollector() = default;

  /// Emits `values` on `stream`. When `message_id` is set and acking is
  /// enabled, the tuple tree is tracked: Ack()/Fail() is eventually called
  /// back with the same id.
  virtual void Emit(const StreamId& stream, Values values,
                    std::optional<int64_t> message_id) = 0;

  /// Emits on the default stream.
  void Emit(Values values, std::optional<int64_t> message_id = std::nullopt) {
    Emit(kDefaultStreamId, std::move(values), message_id);
  }
};

/// \brief A source of streams — the user-code contract (§II: "spouts are
/// sources of input data such as a stream of Tweets").
///
/// Lifecycle: Open once, then NextTuple repeatedly from the instance's
/// execution loop; Ack/Fail callbacks arrive on the same thread. Close on
/// topology kill.
class ISpout {
 public:
  virtual ~ISpout() = default;

  /// Called once before any NextTuple, with this instance's slice of the
  /// merged topology config and its task context.
  virtual void Open(const Config& config, TopologyContext* context,
                    ISpoutOutputCollector* collector) = 0;

  /// Requests the next tuple(s); may emit zero or more. Must not block —
  /// the executor interleaves NextTuple with ack processing and flow
  /// control (max_spout_pending, §V-B).
  virtual void NextTuple() = 0;

  /// The tuple tree rooted at `message_id` completed fully.
  virtual void Ack(int64_t message_id) {}

  /// The tuple tree rooted at `message_id` failed or timed out.
  virtual void Fail(int64_t message_id) {}

  virtual void Close() {}
};

/// \brief A spout whose emission cursor participates in checkpointing.
///
/// SnapshotState must capture everything needed to deterministically
/// re-emit the post-checkpoint suffix of the stream — generator state,
/// emission count, next message id — and nothing volatile (ack counters),
/// so that the same logical position always snapshots to the same bytes.
/// After a failure, RestoreState rewinds the spout to the checkpoint's
/// offset and NextTuple replays only from there (bounded recovery work,
/// vs. replaying entire tuple trees from history).
class IStatefulSpout : public ISpout {
 public:
  /// Appends the replay cursor to `out` (deterministic encoding).
  virtual void SnapshotState(std::string* out) = 0;

  /// Rewinds to a previously snapshotted cursor. Called after Open and
  /// before any NextTuple.
  virtual void RestoreState(std::string_view state) = 0;
};

/// Factory the topology carries; each Heron Instance constructs its own
/// spout object so instances share nothing (§III-A isolation).
using SpoutFactory = std::function<std::unique_ptr<ISpout>()>;

}  // namespace api
}  // namespace heron

#endif  // HERON_API_SPOUT_H_
