
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/packing/first_fit_decreasing_packing.cc" "src/packing/CMakeFiles/heron_packing.dir/first_fit_decreasing_packing.cc.o" "gcc" "src/packing/CMakeFiles/heron_packing.dir/first_fit_decreasing_packing.cc.o.d"
  "/root/repo/src/packing/packing.cc" "src/packing/CMakeFiles/heron_packing.dir/packing.cc.o" "gcc" "src/packing/CMakeFiles/heron_packing.dir/packing.cc.o.d"
  "/root/repo/src/packing/packing_plan.cc" "src/packing/CMakeFiles/heron_packing.dir/packing_plan.cc.o" "gcc" "src/packing/CMakeFiles/heron_packing.dir/packing_plan.cc.o.d"
  "/root/repo/src/packing/packing_registry.cc" "src/packing/CMakeFiles/heron_packing.dir/packing_registry.cc.o" "gcc" "src/packing/CMakeFiles/heron_packing.dir/packing_registry.cc.o.d"
  "/root/repo/src/packing/resource_compliant_rr_packing.cc" "src/packing/CMakeFiles/heron_packing.dir/resource_compliant_rr_packing.cc.o" "gcc" "src/packing/CMakeFiles/heron_packing.dir/resource_compliant_rr_packing.cc.o.d"
  "/root/repo/src/packing/round_robin_packing.cc" "src/packing/CMakeFiles/heron_packing.dir/round_robin_packing.cc.o" "gcc" "src/packing/CMakeFiles/heron_packing.dir/round_robin_packing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/heron_api.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/heron_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/heron_serde.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
