# Empty dependencies file for stream_manager_test.
# This may be replaced when dependencies are built.
