file(REMOVE_RECURSE
  "CMakeFiles/heron_tmaster.dir/tmaster.cc.o"
  "CMakeFiles/heron_tmaster.dir/tmaster.cc.o.d"
  "libheron_tmaster.a"
  "libheron_tmaster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_tmaster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
