#ifndef HERON_BENCH_FIGURES_FIG_UTIL_H_
#define HERON_BENCH_FIGURES_FIG_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace heron {
namespace bench {

/// Shared output conventions for the figure-reproduction harness: every
/// binary prints the series the paper's figure plots, one row per x-axis
/// point, with the paper's reported band next to the measured value so
/// the reader can eyeball the shape without the PDF at hand.

inline void PrintFigureHeader(const char* figure, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", figure);
  std::printf("Paper: %s\n", claim);
  std::printf("================================================================\n");
}

inline void PrintColumns(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < cols.size(); ++i) std::printf("%16s", "----------");
  std::printf("\n");
}

inline void PrintCell(double v) { std::printf("%16.1f", v); }
inline void PrintCell(const char* v) { std::printf("%16s", v); }
inline void PrintCellInt(int64_t v) {
  std::printf("%16lld", static_cast<long long>(v));
}
inline void EndRow() { std::printf("\n"); }

inline void PrintVerdict(const char* what, double measured, double lo,
                         double hi) {
  const bool ok = measured >= lo && measured <= hi;
  std::printf("  %-44s measured %6.2f  paper band [%.1f, %.1f]  %s\n", what,
              measured, lo, hi, ok ? "IN BAND" : "OUT OF BAND");
}

/// `--smoke`: every figure binary accepts it and switches to the trimmed
/// CI windows (same effect as HERON_BENCH_FAST=1 in the environment).
/// Call first thing in main(); unknown flags abort with usage so a typo
/// in a CI matrix fails loudly instead of silently running the full sweep.
inline void ParseSmoke(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      setenv("HERON_BENCH_FAST", "1", /*overwrite=*/1);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      std::exit(2);
    }
  }
}

/// Simulation windows: trimmed when HERON_BENCH_FAST is set (or --smoke
/// was passed) so the whole harness stays CI-friendly.
inline bool FastMode() { return std::getenv("HERON_BENCH_FAST") != nullptr; }
inline double WarmupSec() { return FastMode() ? 0.1 : 0.2; }
inline double MeasureSec() { return FastMode() ? 0.2 : 0.4; }

/// \brief Machine-readable companion to the human tables: a
/// {scenario → {metric → value}} map written as `BENCH_<name>.json` so CI
/// can archive one file per figure and diff the perf trajectory across
/// PRs. HERON_BENCH_JSON_DIR overrides the output directory (default:
/// current directory). Keys are sorted (std::map), so reruns of an
/// unchanged binary produce byte-identical files modulo the values.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& scenario, const std::string& metric,
           double value) {
    rows_[scenario][metric] = value;
  }

  /// Writes BENCH_<name>.json; call once, after the tables are printed.
  void Write() const {
    const char* dir = std::getenv("HERON_BENCH_JSON_DIR");
    const std::string path = (dir != nullptr ? std::string(dir) + "/" : "") +
                             "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": {", name_.c_str());
    const char* scen_sep = "\n";
    for (const auto& [scenario, metrics] : rows_) {
      std::fprintf(f, "%s    \"%s\": {", scen_sep, scenario.c_str());
      const char* metric_sep = "";
      for (const auto& [metric, value] : metrics) {
        std::fprintf(f, "%s\"%s\": %.6g", metric_sep, metric.c_str(), value);
        metric_sep = ", ";
      }
      std::fprintf(f, "}");
      scen_sep = ",\n";
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("\n  Machine-readable: %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::map<std::string, std::map<std::string, double>> rows_;
};

}  // namespace bench
}  // namespace heron

#endif  // HERON_BENCH_FIGURES_FIG_UTIL_H_
