#include "serde/message_pool.h"

#include <gtest/gtest.h>

#include "proto/messages.h"

namespace heron {
namespace serde {
namespace {

TEST(MessagePoolTest, ReusesReleasedObjects) {
  MessagePool<proto::TupleDataMsg> pool(/*enabled=*/true);
  proto::TupleDataMsg* first = pool.Acquire();
  first->tuple_key = 42;
  pool.Release(first);
  proto::TupleDataMsg* second = pool.Acquire();
  EXPECT_EQ(second, first);          // Same object back.
  EXPECT_EQ(second->tuple_key, 0u);  // But cleared.
  pool.Release(second);

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.allocations, 1u);
  EXPECT_EQ(stats.reuses, 1u);
  EXPECT_EQ(stats.returns, 2u);
}

TEST(MessagePoolTest, DisabledPoolAlwaysAllocates) {
  MessagePool<proto::TupleDataMsg> pool(/*enabled=*/false);
  proto::TupleDataMsg* first = pool.Acquire();
  pool.Release(first);
  pool.Release(pool.Acquire());
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.allocations, 2u);
  EXPECT_EQ(stats.reuses, 0u);
  EXPECT_EQ(pool.idle_count(), 0u);
}

TEST(MessagePoolTest, MaxIdleCapsRetention) {
  MessagePool<proto::TupleDataMsg> pool(/*enabled=*/true, /*max_idle=*/2);
  std::vector<proto::TupleDataMsg*> objs;
  for (int i = 0; i < 5; ++i) objs.push_back(pool.Acquire());
  for (auto* obj : objs) pool.Release(obj);
  EXPECT_EQ(pool.idle_count(), 2u);
}

TEST(MessagePoolTest, ReleaseNullIsNoop) {
  MessagePool<proto::TupleDataMsg> pool;
  pool.Release(nullptr);
  EXPECT_EQ(pool.stats().returns, 0u);
}

TEST(PooledPtrTest, ReleasesOnDestruction) {
  MessagePool<proto::TupleDataMsg> pool;
  {
    PooledPtr<proto::TupleDataMsg> ptr = AcquirePooled(&pool);
    ptr->tuple_key = 7;
    EXPECT_TRUE(static_cast<bool>(ptr));
  }
  EXPECT_EQ(pool.idle_count(), 1u);
  EXPECT_EQ(pool.stats().returns, 1u);
}

TEST(PooledPtrTest, MoveTransfersOwnership) {
  MessagePool<proto::TupleDataMsg> pool;
  PooledPtr<proto::TupleDataMsg> a = AcquirePooled(&pool);
  proto::TupleDataMsg* raw = a.get();
  PooledPtr<proto::TupleDataMsg> b = std::move(a);
  EXPECT_EQ(b.get(), raw);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b.reset();
  EXPECT_EQ(pool.idle_count(), 1u);
}

TEST(PooledPtrTest, ReleaseDetaches) {
  MessagePool<proto::TupleDataMsg> pool;
  PooledPtr<proto::TupleDataMsg> ptr = AcquirePooled(&pool);
  proto::TupleDataMsg* raw = ptr.release();
  EXPECT_FALSE(static_cast<bool>(ptr));
  EXPECT_EQ(pool.stats().returns, 0u);
  delete raw;  // Caller owns after release().
}

TEST(BufferPoolTest, RecyclesCapacity) {
  BufferPool pool(/*enabled=*/true);
  Buffer buffer = pool.Acquire();
  buffer.reserve(4096);
  const size_t capacity = buffer.capacity();
  pool.Release(std::move(buffer));
  Buffer again = pool.Acquire();
  EXPECT_GE(again.capacity(), capacity);  // Capacity survived the reuse.
  EXPECT_TRUE(again.empty());             // Contents did not.
  EXPECT_EQ(pool.stats().reuses, 1u);
}

TEST(BufferPoolTest, DisabledAllocatesFresh) {
  BufferPool pool(/*enabled=*/false);
  pool.Release(pool.Acquire());
  pool.Release(pool.Acquire());
  EXPECT_EQ(pool.stats().allocations, 2u);
  EXPECT_EQ(pool.stats().reuses, 0u);
}

TEST(BufferPoolTest, SteadyStateStopsAllocating) {
  BufferPool pool(/*enabled=*/true);
  // Warm with 8 buffers, then churn: no further allocations.
  std::vector<Buffer> warm;
  for (int i = 0; i < 8; ++i) warm.push_back(pool.Acquire());
  for (auto& b : warm) pool.Release(std::move(b));
  const uint64_t baseline = pool.stats().allocations;
  for (int round = 0; round < 100; ++round) {
    Buffer b = pool.Acquire();
    b.append(64, 'x');
    pool.Release(std::move(b));
  }
  EXPECT_EQ(pool.stats().allocations, baseline);
}

}  // namespace
}  // namespace serde
}  // namespace heron
