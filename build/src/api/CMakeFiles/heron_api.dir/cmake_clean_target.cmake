file(REMOVE_RECURSE
  "libheron_api.a"
)
