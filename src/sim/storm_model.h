#ifndef HERON_SIM_STORM_MODEL_H_
#define HERON_SIM_STORM_MODEL_H_

#include "sim/cost_model.h"
#include "sim/heron_model.h"  // SimResult.

namespace heron {
namespace sim {

/// \brief Configuration of one simulated WordCount run on the Storm-style
/// specialized architecture (§III-A).
struct StormSimConfig {
  int spouts = 25;
  int bolts = 25;
  int tasks_per_executor = 2;
  int tasks_per_worker = 4;  ///< Worker slots sized like Heron containers.
  bool acking = false;
  int num_ackers = 0;  ///< 0 → one acker task per worker (Storm default-ish).
  int64_t max_spout_pending = 20000;
  double warmup_sec = 0.5;
  double measure_sec = 1.0;
  uint64_t seed = 2013;
};

/// \brief Simulates WordCount on the Storm model: tasks multiplexed onto
/// executor threads, per-tuple inter-worker serialization through a
/// per-worker transfer thread that shares the worker's cores with the
/// executors, and acker tasks riding the same queues as data. The
/// structural choices are the ones §III-A names; the per-operation costs
/// come from StormCostModel.
SimResult RunStormSim(const StormSimConfig& config,
                      const StormCostModel& costs);

}  // namespace sim
}  // namespace heron

#endif  // HERON_SIM_STORM_MODEL_H_
