#ifndef HERON_WORKLOADS_WORD_COUNT_H_
#define HERON_WORKLOADS_WORD_COUNT_H_

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "api/context.h"
#include "api/topology.h"
#include "common/random.h"

namespace heron {
namespace workloads {

/// \brief The paper's benchmark workload (§VI-A): "the spout picks a word
/// at random from a set of 450K English words and emits it. ... The spouts
/// use hash partitioning to distribute the words to the bolts which in
/// turn count the number of times each word was encountered."
///
/// The dictionary is synthetic (the paper's word list is not published):
/// `dictionary_size` pseudo-words of length 4-12, generated from a fixed
/// seed so every run and every instance draws from the same set.
class WordDictionary {
 public:
  explicit WordDictionary(size_t size = 450000, uint64_t seed = 2017);

  const std::string& WordAt(size_t index) const { return words_[index]; }
  size_t size() const { return words_.size(); }

  /// Shared 450K-word instance (built once, ~5MB).
  static const WordDictionary& Default();

 private:
  std::vector<std::string> words_;
};

/// \brief The word-emitting spout. "Spouts are extremely fast, if left
/// unrestricted" — NextTuple emits `words_per_call` words per invocation.
///
/// Stateful-spout surface: the replay cursor (RNG state, emission count,
/// next message id) snapshots into checkpoints, so after a restore the
/// spout deterministically re-emits exactly the post-checkpoint suffix of
/// its word sequence (same words, same ids).
class WordSpout final : public api::IStatefulSpout {
 public:
  struct Options {
    size_t dictionary_size = 450000;
    int words_per_call = 1;
    /// Stop after this many emits; 0 = unbounded. Used by tests that need
    /// a finite stream.
    uint64_t emit_limit = 0;
    /// At-least-once source semantics: remember each in-flight word by its
    /// message id and re-emit it (same id, same word) when the ack tracker
    /// reports it failed — e.g. because its tuple tree died with a killed
    /// container and the message timeout replayed it. Replays do not count
    /// toward `emit_limit`, so "`emit_limit` distinct words all acked"
    /// remains the zero-loss acceptance condition under faults. Off in
    /// exactly-once mode, where checkpoint restore owns recovery.
    bool replay_failed = false;
    /// Cap on the replay-tracking maps (`inflight_` + the pending-replay
    /// set): an endless downstream outage must not grow them without
    /// bound. Beyond the cap new emissions go untracked (unable to
    /// replay) and the `replay.dropped` counter records each loss.
    /// Overridden by `heron.spout.replay.track.limit` when set.
    size_t replay_track_limit = 1 << 16;
    /// First N words go out unanchored even with acking on: they carry no
    /// message id, join no tuple tree, and therefore leave no complete-
    /// latency sample. Latency benches use this as a warmup phase — cold-
    /// start tuples (first-touch page faults, lazy pool growth) otherwise
    /// own the deep-tail quantiles of a short run.
    uint64_t warmup_emits = 0;
    /// Fixed offered load in words/sec; 0 = unrestricted ("spouts are
    /// extremely fast, if left unrestricted"). Token-bucket against the
    /// wall clock, so latency benches can compare execution modes below
    /// saturation — equal throughput by construction, with the latency
    /// distribution isolating scheduling. Wall-clock based: leave at 0
    /// under a virtual clock (it would break replay determinism).
    double target_rate_per_sec = 0;
  };

  explicit WordSpout(const Options& options) : options_(options) {}

  void Open(const Config& config, api::TopologyContext* context,
            api::ISpoutOutputCollector* collector) override;
  void NextTuple() override;
  void Ack(int64_t message_id) override {
    ++acked_;
    if (options_.replay_failed) {
      inflight_.erase(message_id);
      // Forget any queued replay for this id: the tree completed via a
      // later ack, so re-emitting it now would double-deliver.
      replay_pending_.erase(message_id);
    }
  }
  void Fail(int64_t message_id) override {
    ++failed_;
    // The pending-set insert dedupes: a root that fails twice before its
    // replay drains (message timeout firing again) used to be enqueued
    // twice and re-emitted twice.
    if (options_.replay_failed && inflight_.count(message_id) > 0 &&
        replay_pending_.insert(message_id).second) {
      replay_queue_.push_back(message_id);
    }
  }

  // IStatefulSpout: the replay cursor. Volatile counters (acked/failed/
  // replayed) and the replay maps are deliberately excluded so the same
  // logical position always snapshots to the same bytes.
  void SnapshotState(std::string* out) override;
  void RestoreState(std::string_view state) override;

  uint64_t emitted() const { return emitted_; }
  uint64_t acked() const { return acked_; }
  uint64_t failed() const { return failed_; }
  /// Failed roots re-emitted so far (replay_failed mode).
  uint64_t replayed() const { return replayed_; }
  /// Words emitted but neither acked nor failed yet (replay_failed mode).
  size_t inflight() const { return inflight_.size(); }
  /// Emissions that exceeded `replay_track_limit` and went untracked.
  uint64_t replay_dropped() const { return replay_dropped_; }

 private:
  Options options_;
  api::ISpoutOutputCollector* collector_ = nullptr;
  const WordDictionary* dictionary_ = nullptr;
  std::unique_ptr<WordDictionary> owned_dictionary_;
  Random rng_{2017};
  bool acking_ = false;
  uint64_t emitted_ = 0;
  uint64_t acked_ = 0;
  uint64_t failed_ = 0;
  uint64_t replayed_ = 0;
  uint64_t replay_dropped_ = 0;
  metrics::Counter* replay_dropped_counter_ = nullptr;
  int64_t next_message_id_ = 1;
  /// Token-bucket state for `target_rate_per_sec`: last refill time (wall
  /// nanoseconds; -1 = not started) and the accumulated token balance,
  /// capped at `words_per_call` so a stalled spout cannot bank debt.
  int64_t rate_epoch_nanos_ = -1;
  double rate_tokens_ = 0;
  /// message id → dictionary index of the word it carried (replay mode).
  /// Bounded by `replay_track_limit`.
  std::unordered_map<int64_t, size_t> inflight_;
  /// Failed ids awaiting re-emission, FIFO. Members mirror
  /// `replay_pending_`, which both dedupes and bounds the queue.
  std::deque<int64_t> replay_queue_;
  /// Ids currently queued for replay (dedupe + ack-drain bookkeeping).
  std::unordered_set<int64_t> replay_pending_;
};

/// Per-tuple artificial work in CountBolt::Execute, microseconds (busy
/// spin, so the cost is CPU like real user logic, not a scheduler yield).
/// 0 = off. The auto-scaling tests use it to make the bolt a genuine
/// bottleneck that trips real backpressure under load.
inline constexpr char kCountBoltDelayUs[] = "heron.workload.count.delay.us";

/// \brief The counting bolt: tallies words and acks every input.
///
/// Stateful-bolt surface: the word→count table snapshots in sorted order
/// (deterministic bytes — recovery tests byte-compare snapshots across
/// universes) and restores wholesale, making the bolt a deterministic
/// replicated state machine over its aligned input prefix.
class CountBolt final : public api::IStatefulBolt {
 public:
  void Prepare(const Config& config, api::TopologyContext* context,
               api::IBoltOutputCollector* collector) override {
    collector_ = collector;
    delay_us_ = config.GetIntOr(kCountBoltDelayUs, 0);
  }

  void Execute(const api::Tuple& input) override {
    ++counts_[input.GetString(0)];
    ++executed_;
    if (delay_us_ > 0) BurnCpu();
    collector_->Ack(input);
  }

  void SnapshotState(std::string* out) override;
  void RestoreState(std::string_view state) override;

  uint64_t executed() const { return executed_; }
  const std::unordered_map<std::string, uint64_t>& counts() const {
    return counts_;
  }

 private:
  void BurnCpu() const;

  api::IBoltOutputCollector* collector_ = nullptr;
  std::unordered_map<std::string, uint64_t> counts_;
  uint64_t executed_ = 0;
  int64_t delay_us_ = 0;
};

/// \brief A pass-through relay: re-emits each word anchored to its input
/// and acks it. Chained between the spout and the counting sink it
/// deepens the tuple tree, so end-to-end complete latency crosses one
/// module handoff per stage — the knob latency figures turn to scale the
/// per-hop scheduling cost they measure.
class RelayBolt final : public api::IBolt {
 public:
  void Prepare(const Config& config, api::TopologyContext* context,
               api::IBoltOutputCollector* collector) override {
    collector_ = collector;
  }

  void Execute(const api::Tuple& input) override {
    collector_->Emit(input, {api::Value(input.GetString(0))});
    collector_->Ack(input);
    ++forwarded_;
  }

  uint64_t forwarded() const { return forwarded_; }

 private:
  api::IBoltOutputCollector* collector_ = nullptr;
  uint64_t forwarded_ = 0;
};

/// \brief Assembles the WordCount topology at the given parallelism:
/// `spouts` WordSpout instances, fields-grouped ("hash partitioning") into
/// `bolts` CountBolt instances.
Result<std::shared_ptr<const api::Topology>> BuildWordCountTopology(
    const std::string& name, int spouts, int bolts,
    const WordSpout::Options& spout_options = {},
    const Config& topology_config = Config());

/// \brief WordCount with a relay pipeline in the middle: `spouts` WordSpout
/// instances, shuffle-grouped through `relay_stages` RelayBolt stages (each
/// at `relay_parallelism`), fields-grouped into `bolts` CountBolt sinks.
/// `relay_stages = 0` degenerates to plain WordCount.
Result<std::shared_ptr<const api::Topology>> BuildWordChainTopology(
    const std::string& name, int spouts, int relay_stages,
    int relay_parallelism, int bolts,
    const WordSpout::Options& spout_options = {},
    const Config& topology_config = Config());

}  // namespace workloads
}  // namespace heron

#endif  // HERON_WORKLOADS_WORD_COUNT_H_
