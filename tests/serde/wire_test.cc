#include "serde/wire.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace heron {
namespace serde {
namespace {

TEST(WireTest, VarintRoundTripEdges) {
  for (const uint64_t v :
       std::vector<uint64_t>{0, 1, 127, 128, 16383, 16384, uint64_t{1} << 32,
                             UINT64_MAX}) {
    Buffer buf;
    WireEncoder enc(&buf);
    enc.WriteVarint(v);
    WireDecoder dec(buf);
    EXPECT_EQ(*dec.ReadVarint(), v);
    EXPECT_TRUE(dec.AtEnd());
  }
}

TEST(WireTest, ZigZagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  for (const int64_t v :
       std::vector<int64_t>{0, 1, -1, INT64_MAX, INT64_MIN, 123456789,
                            -987654321}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(WireTest, TagPacksFieldAndWireType) {
  const uint32_t tag = MakeTag(5, WireType::kLengthDelimited);
  EXPECT_EQ(TagFieldNumber(tag), 5u);
  EXPECT_EQ(TagWireType(tag), WireType::kLengthDelimited);
}

TEST(WireTest, AllFieldTypesRoundTrip) {
  Buffer buf;
  WireEncoder enc(&buf);
  enc.WriteUint64Field(1, 999);
  enc.WriteInt64Field(2, -12345);
  enc.WriteInt32Field(3, -7);
  enc.WriteBoolField(4, true);
  enc.WriteDoubleField(5, 3.14159);
  enc.WriteBytesField(6, "payload");

  WireDecoder dec(buf);
  EXPECT_EQ(TagFieldNumber(*dec.ReadTag()), 1u);
  EXPECT_EQ(*dec.ReadUint64(), 999u);
  EXPECT_EQ(TagFieldNumber(*dec.ReadTag()), 2u);
  EXPECT_EQ(*dec.ReadInt64(), -12345);
  EXPECT_EQ(TagFieldNumber(*dec.ReadTag()), 3u);
  EXPECT_EQ(*dec.ReadInt32(), -7);
  EXPECT_EQ(TagFieldNumber(*dec.ReadTag()), 4u);
  EXPECT_TRUE(*dec.ReadBool());
  EXPECT_EQ(TagFieldNumber(*dec.ReadTag()), 5u);
  EXPECT_DOUBLE_EQ(*dec.ReadDouble(), 3.14159);
  EXPECT_EQ(TagFieldNumber(*dec.ReadTag()), 6u);
  EXPECT_EQ(*dec.ReadBytes(), "payload");
  EXPECT_TRUE(dec.AtEnd());
}

TEST(WireTest, ReadBytesIsZeroCopyView) {
  Buffer buf;
  WireEncoder enc(&buf);
  enc.WriteBytesField(1, "abc");
  WireDecoder dec(buf);
  dec.ReadTag().ValueOrDie();
  const BytesView view = *dec.ReadBytes();
  EXPECT_GE(view.data(), buf.data());
  EXPECT_LT(view.data(), buf.data() + buf.size());
}

TEST(WireTest, TruncatedInputsFailCleanly) {
  Buffer buf;
  WireEncoder enc(&buf);
  enc.WriteBytesField(1, std::string(100, 'x'));
  // Chop the payload.
  const Buffer truncated = buf.substr(0, buf.size() - 50);
  WireDecoder dec(truncated);
  dec.ReadTag().ValueOrDie();
  EXPECT_TRUE(dec.ReadBytes().status().IsIOError());

  // Truncated varint.
  const Buffer half_varint("\x80");
  WireDecoder dec2(half_varint);
  EXPECT_TRUE(dec2.ReadVarint().status().IsIOError());

  // Truncated fixed64.
  const Buffer half_fixed("\x01\x02\x03");
  WireDecoder dec3(half_fixed);
  EXPECT_TRUE(dec3.ReadDouble().status().IsIOError());
}

TEST(WireTest, SkipFieldHopsEveryWireType) {
  Buffer buf;
  WireEncoder enc(&buf);
  enc.WriteUint64Field(1, 300);
  enc.WriteDoubleField(2, 1.5);
  enc.WriteBytesField(3, "skip me");
  enc.WriteBoolField(4, true);

  WireDecoder dec(buf);
  for (int field = 1; field <= 3; ++field) {
    const uint32_t tag = *dec.ReadTag();
    EXPECT_EQ(TagFieldNumber(tag), static_cast<uint32_t>(field));
    ASSERT_TRUE(dec.SkipField(TagWireType(tag)).ok());
  }
  EXPECT_EQ(TagFieldNumber(*dec.ReadTag()), 4u);
  EXPECT_TRUE(*dec.ReadBool());
}

TEST(WireTest, LengthDelimitedScopeShortPayload) {
  Buffer buf;
  WireEncoder enc(&buf);
  const size_t mark = enc.BeginLengthDelimited(7);
  enc.WriteVarint(5);
  enc.EndLengthDelimited(mark);

  WireDecoder dec(buf);
  EXPECT_EQ(TagFieldNumber(*dec.ReadTag()), 7u);
  const BytesView nested = *dec.ReadBytes();
  WireDecoder inner(nested);
  EXPECT_EQ(*inner.ReadVarint(), 5u);
}

TEST(WireTest, LengthDelimitedScopeLongPayloadShiftsCorrectly) {
  // Payload > 127 bytes forces the length varint beyond the reserved byte.
  Buffer buf;
  WireEncoder enc(&buf);
  const size_t mark = enc.BeginLengthDelimited(2);
  const std::string payload(1000, 'q');
  enc.buffer()->append(payload);
  enc.EndLengthDelimited(mark);

  WireDecoder dec(buf);
  dec.ReadTag().ValueOrDie();
  const BytesView nested = *dec.ReadBytes();
  EXPECT_EQ(nested, payload);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(WireTest, EmptyTagAtEndOfInput) {
  WireDecoder dec(BytesView{});
  EXPECT_EQ(*dec.ReadTag(), 0u);
}

/// Property sweep: random field sequences round-trip.
class WireFuzzRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireFuzzRoundTrip, RandomFieldSequences) {
  Random rng(GetParam());
  Buffer buf;
  WireEncoder enc(&buf);
  struct Written {
    int kind;
    uint64_t u;
    int64_t i;
    double d;
    std::string s;
  };
  std::vector<Written> written;
  for (int f = 1; f <= 50; ++f) {
    Written w;
    w.kind = static_cast<int>(rng.NextBelow(4));
    switch (w.kind) {
      case 0:
        w.u = rng.NextUint64();
        enc.WriteUint64Field(static_cast<uint32_t>(f), w.u);
        break;
      case 1:
        w.i = static_cast<int64_t>(rng.NextUint64());
        enc.WriteInt64Field(static_cast<uint32_t>(f), w.i);
        break;
      case 2:
        w.d = rng.NextDouble() * 1e6 - 5e5;
        enc.WriteDoubleField(static_cast<uint32_t>(f), w.d);
        break;
      default:
        w.s = std::string(rng.NextBelow(200), 'a' + (f % 26));
        enc.WriteBytesField(static_cast<uint32_t>(f), w.s);
        break;
    }
    written.push_back(std::move(w));
  }
  WireDecoder dec(buf);
  for (int f = 1; f <= 50; ++f) {
    const uint32_t tag = *dec.ReadTag();
    ASSERT_EQ(TagFieldNumber(tag), static_cast<uint32_t>(f));
    const Written& w = written[static_cast<size_t>(f - 1)];
    switch (w.kind) {
      case 0:
        EXPECT_EQ(*dec.ReadUint64(), w.u);
        break;
      case 1:
        EXPECT_EQ(*dec.ReadInt64(), w.i);
        break;
      case 2:
        EXPECT_DOUBLE_EQ(*dec.ReadDouble(), w.d);
        break;
      default:
        EXPECT_EQ(*dec.ReadBytes(), w.s);
        break;
    }
  }
  EXPECT_TRUE(dec.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace serde
}  // namespace heron
