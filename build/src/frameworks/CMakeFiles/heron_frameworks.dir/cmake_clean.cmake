file(REMOVE_RECURSE
  "CMakeFiles/heron_frameworks.dir/aurora_like_framework.cc.o"
  "CMakeFiles/heron_frameworks.dir/aurora_like_framework.cc.o.d"
  "CMakeFiles/heron_frameworks.dir/framework.cc.o"
  "CMakeFiles/heron_frameworks.dir/framework.cc.o.d"
  "CMakeFiles/heron_frameworks.dir/sim_cluster.cc.o"
  "CMakeFiles/heron_frameworks.dir/sim_cluster.cc.o.d"
  "CMakeFiles/heron_frameworks.dir/yarn_like_framework.cc.o"
  "CMakeFiles/heron_frameworks.dir/yarn_like_framework.cc.o.d"
  "libheron_frameworks.a"
  "libheron_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
