# Empty compiler generated dependencies file for fig02_03_throughput_latency_acks.
# This may be replaced when dependencies are built.
