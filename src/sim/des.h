#ifndef HERON_SIM_DES_H_
#define HERON_SIM_DES_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace heron {
namespace sim {

/// \brief A minimal discrete-event simulation core.
///
/// The figure-scale experiments (parallelism 25-200, hundreds of millions
/// of tuples per minute) cannot run as real threads on one box, so the
/// benchmark harness replays the engine's behaviour — batching, routing,
/// cache drains, acking, flow control — against simulated time, with
/// per-operation costs calibrated from microbenchmarks of the real
/// components (bench/micro_*). Events are simulated at *batch*
/// granularity, which keeps tens of millions of simulated tuples per
/// second tractable.
class Des {
 public:
  using EventFn = std::function<void()>;

  /// Current simulated time in seconds.
  double now() const { return now_; }

  /// Schedules `fn` at absolute simulated time `t_sec` (>= now).
  void ScheduleAt(double t_sec, EventFn fn);
  /// Schedules `fn` `dt_sec` from now.
  void ScheduleAfter(double dt_sec, EventFn fn) {
    ScheduleAt(now_ + dt_sec, std::move(fn));
  }

  /// Runs events in time order until the queue empties or simulated time
  /// passes `t_end_sec`.
  void RunUntil(double t_end_sec);

  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    double time;
    uint64_t seq;  ///< FIFO tie-break for simultaneous events.
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// \brief A single-threaded resource (one core running one process loop):
/// work submitted to it completes FIFO, one piece at a time.
///
/// Models a Heron Instance thread, a Stream Manager loop, a Storm
/// executor/transfer thread. Utilization and queue depth are tracked for
/// the per-core throughput accounting (Fig. 6/8).
class SimServer {
 public:
  /// \param speed_factor  >1 slows all service (used to model thread
  ///        oversubscription inside Storm workers)
  SimServer(Des* des, double speed_factor = 1.0)
      : des_(des), speed_(speed_factor) {}

  /// Enqueues `work_sec` of service; `on_done` fires at completion.
  void Submit(double work_sec, Des::EventFn on_done);

  /// Seconds of queued-but-unfinished work (backlog).
  double Backlog() const;
  /// Total service time performed.
  double busy_time() const { return busy_time_; }

 private:
  Des* des_;
  double speed_;
  double next_free_ = 0;
  double busy_time_ = 0;
};

}  // namespace sim
}  // namespace heron

#endif  // HERON_SIM_DES_H_
