file(REMOVE_RECURSE
  "CMakeFiles/stream_manager_test.dir/smgr/stream_manager_test.cc.o"
  "CMakeFiles/stream_manager_test.dir/smgr/stream_manager_test.cc.o.d"
  "stream_manager_test"
  "stream_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
