# Empty compiler generated dependencies file for storm_cluster_test.
# This may be replaced when dependencies are built.
