file(REMOVE_RECURSE
  "CMakeFiles/heron_statemgr.dir/in_memory_state_manager.cc.o"
  "CMakeFiles/heron_statemgr.dir/in_memory_state_manager.cc.o.d"
  "CMakeFiles/heron_statemgr.dir/local_file_state_manager.cc.o"
  "CMakeFiles/heron_statemgr.dir/local_file_state_manager.cc.o.d"
  "CMakeFiles/heron_statemgr.dir/state_manager.cc.o"
  "CMakeFiles/heron_statemgr.dir/state_manager.cc.o.d"
  "CMakeFiles/heron_statemgr.dir/topology_state.cc.o"
  "CMakeFiles/heron_statemgr.dir/topology_state.cc.o.d"
  "libheron_statemgr.a"
  "libheron_statemgr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_statemgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
