file(REMOVE_RECURSE
  "libheron_frameworks.a"
)
