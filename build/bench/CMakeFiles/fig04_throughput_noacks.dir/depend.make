# Empty dependencies file for fig04_throughput_noacks.
# This may be replaced when dependencies are built.
