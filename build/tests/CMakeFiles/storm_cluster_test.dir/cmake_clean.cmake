file(REMOVE_RECURSE
  "CMakeFiles/storm_cluster_test.dir/storm/storm_cluster_test.cc.o"
  "CMakeFiles/storm_cluster_test.dir/storm/storm_cluster_test.cc.o.d"
  "storm_cluster_test"
  "storm_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
