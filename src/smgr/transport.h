#ifndef HERON_SMGR_TRANSPORT_H_
#define HERON_SMGR_TRANSPORT_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/ids.h"
#include "ipc/channel.h"
#include "proto/messages.h"
#include "serde/message_pool.h"

namespace heron {
namespace smgr {

using EnvelopeChannel = ipc::Channel<proto::Envelope>;

/// \brief The topology's endpoint directory: which channel reaches each
/// Heron Instance and each container's Stream Manager.
///
/// Stands in for the host:port registry Heron keeps in the State Manager
/// plus the connected sockets. Components register at startup and
/// unregister on teardown (container restart re-registers fresh
/// channels). Also owns the shared BufferPool through which transport
/// buffers are recycled across senders and receivers (§V-A optimization 1
/// — when pooling is disabled, every Acquire is a fresh allocation, the
/// naive baseline).
class Transport {
 public:
  /// A send destination in the directory: a task's instance channel or a
  /// container's SMGR channel. Senders that may outlive the receiver
  /// (the SMGR's park/retry queue) hold Endpoints, never raw channel
  /// pointers: a torn-down endpoint cannot be dereferenced after free,
  /// and a re-registered one (container restart) receives its backlog on
  /// the fresh channel.
  struct Endpoint {
    enum class Kind { kInstance, kSmgr };
    Kind kind = Kind::kInstance;
    int32_t id = -1;
    bool operator<(const Endpoint& o) const {
      return kind != o.kind ? kind < o.kind : id < o.id;
    }
    bool operator==(const Endpoint& o) const {
      return kind == o.kind && id == o.id;
    }
  };
  static Endpoint InstanceEndpoint(TaskId task) {
    return Endpoint{Endpoint::Kind::kInstance, task};
  }
  static Endpoint SmgrEndpoint(ContainerId container) {
    return Endpoint{Endpoint::Kind::kSmgr, container};
  }

  /// \param pooling_enabled  buffer recycling on/off (ablation toggle)
  explicit Transport(bool pooling_enabled = true)
      : buffer_pool_(pooling_enabled, /*max_idle=*/65536) {}

  Status RegisterInstance(TaskId task, EnvelopeChannel* channel);
  Status UnregisterInstance(TaskId task);
  Status RegisterSmgr(ContainerId container, EnvelopeChannel* channel);
  Status UnregisterSmgr(ContainerId container);

  /// Non-blocking send to an endpoint, performed under the registry lock
  /// so a concurrent Unregister + channel destruction on another thread
  /// cannot free the channel mid-send. Returns kNotFound when the
  /// endpoint is not (currently) registered; otherwise forwards
  /// Channel::TrySend's result (kResourceExhausted when full, kCancelled
  /// when closed). `*env` is consumed only on OK.
  Status TrySend(const Endpoint& dest, proto::Envelope* env);

  /// nullptr when the endpoint is not (currently) registered — e.g. its
  /// container is being restarted; senders retry.
  EnvelopeChannel* InstanceChannel(TaskId task) const;
  EnvelopeChannel* SmgrChannel(ContainerId container) const;

  /// Snapshot of every container whose SMGR is currently registered.
  /// The back-pressure control plane broadcasts to this set (rather than
  /// the plan's container list) so peers that are mid-restart are simply
  /// skipped instead of blackholing control envelopes.
  std::vector<ContainerId> RegisteredSmgrs() const;

  serde::BufferPool* buffer_pool() { return &buffer_pool_; }

 private:
  mutable std::mutex mutex_;
  std::map<TaskId, EnvelopeChannel*> instances_;
  std::map<ContainerId, EnvelopeChannel*> smgrs_;
  serde::BufferPool buffer_pool_;
};

}  // namespace smgr
}  // namespace heron

#endif  // HERON_SMGR_TRANSPORT_H_
