file(REMOVE_RECURSE
  "libheron_instance.a"
)
