file(REMOVE_RECURSE
  "CMakeFiles/pluggable_modules.dir/pluggable_modules.cpp.o"
  "CMakeFiles/pluggable_modules.dir/pluggable_modules.cpp.o.d"
  "pluggable_modules"
  "pluggable_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pluggable_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
