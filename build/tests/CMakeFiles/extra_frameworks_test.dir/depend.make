# Empty dependencies file for extra_frameworks_test.
# This may be replaced when dependencies are built.
