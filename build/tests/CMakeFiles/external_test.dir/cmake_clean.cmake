file(REMOVE_RECURSE
  "CMakeFiles/external_test.dir/external/external_test.cc.o"
  "CMakeFiles/external_test.dir/external/external_test.cc.o.d"
  "external_test"
  "external_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
