// Scheduling-framework substrate tests: SimCluster admission accounting
// and the YARN-like / Aurora-like capability contracts of §IV-B.

#include "frameworks/framework.h"

#include <gtest/gtest.h>

#include "frameworks/aurora_like_framework.h"
#include "frameworks/yarn_like_framework.h"

namespace heron {
namespace frameworks {
namespace {

TEST(SimClusterTest, FirstFitAllocationAndRelease) {
  SimCluster cluster;
  cluster.AddNodes(2, Resource(8, 8192, 0));
  auto a = cluster.Allocate(Resource(6, 4096, 0));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*cluster.NodeOf(*a), 0);
  auto b = cluster.Allocate(Resource(6, 4096, 0));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*cluster.NodeOf(*b), 1);  // Did not fit next to the first.
  EXPECT_EQ(cluster.num_allocations(), 2u);

  // Full: a third large ask fails.
  EXPECT_TRUE(
      cluster.Allocate(Resource(6, 4096, 0)).status().IsResourceExhausted());

  ASSERT_TRUE(cluster.Release(*a).ok());
  EXPECT_TRUE(cluster.Allocate(Resource(6, 4096, 0)).ok());
  EXPECT_TRUE(cluster.Release(12345).IsNotFound());
}

TEST(SimClusterTest, AccountingBalances) {
  SimCluster cluster;
  cluster.AddNode(Resource(4, 4096, 0));
  auto a = cluster.Allocate(Resource(1, 1024, 0));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(cluster.TotalUsed(), Resource(1, 1024, 0));
  ASSERT_TRUE(cluster.Release(*a).ok());
  EXPECT_TRUE(cluster.TotalUsed().IsZero());
  EXPECT_EQ(*cluster.FreeOn(0), Resource(4, 4096, 0));
}

class CountingCommands {
 public:
  JobSpec Spec(const std::string& name, std::vector<Resource> demands) {
    JobSpec spec;
    spec.name = name;
    spec.containers = std::move(demands);
    spec.start = [this](int i) { starts.push_back(i); };
    spec.stop = [this](int i) { stops.push_back(i); };
    return spec;
  }
  std::vector<int> starts;
  std::vector<int> stops;
};

class FrameworkContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    cluster_.AddNodes(8, Resource(16, 32768, 0));
    if (GetParam() == "yarn") {
      framework_ = std::make_unique<YarnLikeFramework>(&cluster_);
    } else {
      framework_ = std::make_unique<AuroraLikeFramework>(&cluster_);
    }
  }

  SimCluster cluster_;
  std::unique_ptr<BaseSimFramework> framework_;
  CountingCommands commands_;
};

TEST_P(FrameworkContractTest, SubmitStartsEveryContainer) {
  auto job = framework_->SubmitJob(
      commands_.Spec("t", {Resource(2, 2048, 0), Resource(2, 2048, 0)}));
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_EQ(commands_.starts, (std::vector<int>{0, 1}));
  auto status = framework_->JobStatus(*job);
  ASSERT_TRUE(status.ok());
  for (const auto& c : *status) {
    EXPECT_EQ(c.state, ContainerState::kRunning);
  }
  EXPECT_EQ(cluster_.num_allocations(), 2u);
}

TEST_P(FrameworkContractTest, KillStopsAndReleasesEverything) {
  auto job = framework_->SubmitJob(
      commands_.Spec("t", {Resource(2, 2048, 0), Resource(2, 2048, 0)}));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(framework_->KillJob(*job).ok());
  EXPECT_EQ(commands_.stops.size(), 2u);
  EXPECT_EQ(cluster_.num_allocations(), 0u);
  EXPECT_TRUE(framework_->JobStatus(*job).status().IsNotFound());
  EXPECT_TRUE(framework_->KillJob(*job).IsNotFound());
}

TEST_P(FrameworkContractTest, AdmissionFailureLeavesNothingBehind) {
  // Ask for more than the cluster holds; everything must roll back.
  std::vector<Resource> demands(40, Resource(8, 8192, 0));
  EXPECT_TRUE(framework_->SubmitJob(commands_.Spec("big", demands))
                  .status()
                  .IsResourceExhausted());
  EXPECT_EQ(cluster_.num_allocations(), 0u);
  EXPECT_TRUE(commands_.starts.empty());
}

TEST_P(FrameworkContractTest, RestartCyclesTheContainer) {
  auto job = framework_->SubmitJob(
      commands_.Spec("t", {Resource(2, 2048, 0), Resource(2, 2048, 0)}));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(framework_->RestartContainer(*job, 1).ok());
  EXPECT_EQ(commands_.stops, (std::vector<int>{1}));
  EXPECT_EQ(commands_.starts, (std::vector<int>{0, 1, 1}));
  auto status = framework_->JobStatus(*job);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ((*status)[1].restarts, 1);
}

TEST_P(FrameworkContractTest, RemoveContainerShrinks) {
  auto job = framework_->SubmitJob(
      commands_.Spec("t", {Resource(2, 2048, 0), Resource(2, 2048, 0)}));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(framework_->RemoveContainer(*job, 0).ok());
  EXPECT_EQ(framework_->JobStatus(*job)->size(), 1u);
  EXPECT_EQ(cluster_.num_allocations(), 1u);
}

TEST_P(FrameworkContractTest, AddContainersRegistersBeforeStart) {
  auto job = framework_->SubmitJob(
      commands_.Spec("t", {Resource(2, 2048, 0)}));
  ASSERT_TRUE(job.ok());
  bool registered_before_start = false;
  size_t starts_at_registration = 0;
  auto added = framework_->AddContainers(
      *job, {Resource(2, 2048, 0)},
      [&](const std::vector<int>& indices) {
        registered_before_start = true;
        starts_at_registration = commands_.starts.size();
        EXPECT_EQ(indices, (std::vector<int>{1}));
      });
  ASSERT_TRUE(added.ok());
  EXPECT_TRUE(registered_before_start);
  EXPECT_EQ(starts_at_registration, 1u);  // Only the original start.
  EXPECT_EQ(commands_.starts, (std::vector<int>{0, 1}));
}

INSTANTIATE_TEST_SUITE_P(Frameworks, FrameworkContractTest,
                         ::testing::Values("yarn", "aurora"));

// ---------------------------------------------------------------------
// The §IV-B capability differences.
// ---------------------------------------------------------------------

TEST(YarnLikeTest, AcceptsHeterogeneousContainers) {
  SimCluster cluster;
  cluster.AddNodes(4, Resource(16, 32768, 0));
  YarnLikeFramework yarn(&cluster);
  EXPECT_TRUE(yarn.SupportsHeterogeneousContainers());
  EXPECT_FALSE(yarn.AutoRestartsFailedContainers());
  CountingCommands commands;
  EXPECT_TRUE(yarn.SubmitJob(commands.Spec(
                     "t", {Resource(1, 1024, 0), Resource(8, 8192, 0)}))
                  .ok());
}

TEST(AuroraLikeTest, RejectsHeterogeneousContainers) {
  SimCluster cluster;
  cluster.AddNodes(4, Resource(16, 32768, 0));
  AuroraLikeFramework aurora(&cluster);
  EXPECT_FALSE(aurora.SupportsHeterogeneousContainers());
  EXPECT_TRUE(aurora.AutoRestartsFailedContainers());
  CountingCommands commands;
  EXPECT_TRUE(aurora
                  .SubmitJob(commands.Spec(
                      "t", {Resource(1, 1024, 0), Resource(8, 8192, 0)}))
                  .status()
                  .IsInvalidArgument());
  // Homogeneous is fine; growing with a different size is not.
  auto job = aurora.SubmitJob(
      commands.Spec("t", {Resource(2, 2048, 0), Resource(2, 2048, 0)}));
  ASSERT_TRUE(job.ok());
  EXPECT_TRUE(aurora.AddContainers(*job, {Resource(4, 4096, 0)})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(aurora.AddContainers(*job, {Resource(2, 2048, 0)}).ok());
}

TEST(AuroraLikeTest, AutoRestartsFailedContainer) {
  SimCluster cluster;
  cluster.AddNodes(2, Resource(16, 32768, 0));
  AuroraLikeFramework aurora(&cluster);
  CountingCommands commands;
  std::vector<FrameworkEvent> events;
  aurora.SetEventCallback(
      [&events](const FrameworkEvent& e) { events.push_back(e); });
  auto job = aurora.SubmitJob(
      commands.Spec("t", {Resource(2, 2048, 0), Resource(2, 2048, 0)}));
  ASSERT_TRUE(job.ok());

  ASSERT_TRUE(aurora.InjectContainerFailure(*job, 0).ok());
  // "Aurora invokes the appropriate command to restart the container."
  auto status = aurora.JobStatus(*job);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ((*status)[0].state, ContainerState::kRunning);
  EXPECT_EQ((*status)[0].restarts, 1);
  EXPECT_EQ(commands.starts.size(), 3u);  // 2 initial + 1 restart.
  EXPECT_EQ(cluster.num_allocations(), 2u);
}

TEST(YarnLikeTest, FailureStaysDownUntilClientActs) {
  SimCluster cluster;
  cluster.AddNodes(2, Resource(16, 32768, 0));
  YarnLikeFramework yarn(&cluster);
  CountingCommands commands;
  std::vector<FrameworkEvent> events;
  yarn.SetEventCallback(
      [&events](const FrameworkEvent& e) { events.push_back(e); });
  auto job = yarn.SubmitJob(
      commands.Spec("t", {Resource(2, 2048, 0), Resource(2, 2048, 0)}));
  ASSERT_TRUE(job.ok());

  ASSERT_TRUE(yarn.InjectContainerFailure(*job, 1).ok());
  auto status = yarn.JobStatus(*job);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ((*status)[1].state, ContainerState::kFailed);
  // The client was told.
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().container.state, ContainerState::kFailed);
  // The stateful client recovers it explicitly.
  ASSERT_TRUE(yarn.RestartContainer(*job, 1).ok());
  EXPECT_EQ((*yarn.JobStatus(*job))[1].state, ContainerState::kRunning);
}

}  // namespace
}  // namespace frameworks
}  // namespace heron
