#ifndef HERON_IPC_WAKEUP_H_
#define HERON_IPC_WAKEUP_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace heron {
namespace ipc {

/// \brief Coalescing wakeup latch: the "interrupt line" between Channels
/// and the reactor (runtime::EventLoop) that multiplexes them.
///
/// Any number of producers call Notify(); a single consumer blocks in
/// WaitFor(). Notifications are *coalesced*: N notifies between two waits
/// wake the consumer exactly once. A notify that races ahead of the wait
/// is latched (`pending_`), so the consumer never sleeps through work that
/// was announced before it went to sleep — the classic lost-wakeup hazard
/// of hand-rolled loops.
///
/// This is deliberately separate from Channel's internal `not_empty_`
/// condition variable: a reactor waits on *one* Wakeup while draining
/// *many* channels, which is what lets one thread multiplex an arbitrary
/// set of endpoints (Fig. 1's kernel) without polling.
class Wakeup {
 public:
  Wakeup() = default;
  Wakeup(const Wakeup&) = delete;
  Wakeup& operator=(const Wakeup&) = delete;

  /// Announces that work may be available. Cheap when already pending.
  ///
  /// When chained (see Chain()), the latch is still set locally but the
  /// condition variable is skipped: the parent is notified instead, so a
  /// consumer parked on the *parent* wakes and can Poll() this latch.
  /// Coalescing still applies — a notify while already pending forwards
  /// nothing, which is safe only under the chained consumer's discipline
  /// of Poll()ing every member latch immediately before parking.
  void Notify() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (pending_) return;  // Coalesce.
      pending_ = true;
    }
    Wakeup* parent = parent_.load(std::memory_order_acquire);
    if (parent != nullptr) {
      parent->Notify();
      return;
    }
    // Same-thread fast path: the consumer cannot be parked in WaitFor()
    // while it is itself calling Notify(), so the cv signal would be
    // wasted. This is what makes same-loop handoff between cooperative
    // tasklets a latch flip instead of a futex syscall.
    if (owner_.load(std::memory_order_relaxed) == std::this_thread::get_id()) {
      return;
    }
    cv_.notify_all();
  }

  /// Routes future notifications to `parent` instead of this latch's
  /// condition variable (nullptr restores direct delivery). Used by the
  /// cooperative tasklet pool: every member loop's wakeup chains to its
  /// worker's wakeup, so one parked worker hears all of its loops.
  void Chain(Wakeup* parent) {
    parent_.store(parent, std::memory_order_release);
  }

  /// Declares the calling thread the latch's consumer, enabling the
  /// same-thread notify elision above. Call from the consumer thread; a
  /// default-constructed id (never equal to a live thread) disables it.
  void SetOwnerThread() {
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }
  void ClearOwnerThread() {
    owner_.store(std::thread::id(), std::memory_order_relaxed);
  }

  /// Blocks until notified or `timeout_nanos` elapse. Returns true when a
  /// notification was consumed, false on timeout. Always clears the latch.
  bool WaitFor(int64_t timeout_nanos) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (pending_) {
      pending_ = false;
      return true;
    }
    const bool notified = cv_.wait_for(
        lock, std::chrono::nanoseconds(timeout_nanos), [&] { return pending_; });
    pending_ = false;
    return notified;
  }

  /// Non-blocking: consumes and returns the latch.
  bool Poll() {
    std::lock_guard<std::mutex> lock(mutex_);
    const bool was = pending_;
    pending_ = false;
    return was;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool pending_ = false;
  std::atomic<Wakeup*> parent_{nullptr};
  std::atomic<std::thread::id> owner_{};
};

}  // namespace ipc
}  // namespace heron

#endif  // HERON_IPC_WAKEUP_H_
