file(REMOVE_RECURSE
  "CMakeFiles/heron_metrics.dir/metrics.cc.o"
  "CMakeFiles/heron_metrics.dir/metrics.cc.o.d"
  "CMakeFiles/heron_metrics.dir/metrics_manager.cc.o"
  "CMakeFiles/heron_metrics.dir/metrics_manager.cc.o.d"
  "libheron_metrics.a"
  "libheron_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
