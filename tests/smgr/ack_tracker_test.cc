// XOR ack-tracking algebra: the invariant is that a tree completes exactly
// when every tuple key has been folded in twice, in any order.

#include "smgr/ack_tracker.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "proto/messages.h"

namespace heron {
namespace smgr {
namespace {

constexpr int64_t kTimeout = 1000;

TEST(AckTrackerTest, SingleTupleTreeCompletes) {
  AckTracker tracker(kTimeout);
  const api::TupleKey root = proto::MakeRootKey(1, 0xAA);
  tracker.Register(root, root, /*now=*/0);
  EXPECT_EQ(tracker.pending(), 1u);
  // The bolt acks the spout tuple: k_in == root, no children.
  auto done = tracker.Update(root, root, false);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->root, root);
  EXPECT_FALSE(done->fail);
  EXPECT_EQ(tracker.pending(), 0u);
}

TEST(AckTrackerTest, ChainTreeCompletesAfterEveryAck) {
  // spout → boltA (emits child) → boltB.
  AckTracker tracker(kTimeout);
  const api::TupleKey root = proto::MakeRootKey(0, 0x1);
  const api::TupleKey child = 0xCAFEBABE;
  tracker.Register(root, root, 0);
  // boltA acks the spout tuple having emitted `child` anchored to root.
  EXPECT_FALSE(tracker.Update(root, root ^ child, false).has_value());
  // boltB acks the child (leaf).
  auto done = tracker.Update(root, child, false);
  ASSERT_TRUE(done.has_value());
  EXPECT_FALSE(done->fail);
}

TEST(AckTrackerTest, OrderDoesNotMatter) {
  AckTracker t1(kTimeout);
  AckTracker t2(kTimeout);
  const api::TupleKey root = proto::MakeRootKey(0, 0x2);
  const api::TupleKey c1 = 111, c2 = 222;
  for (AckTracker* t : {&t1, &t2}) t->Register(root, root, 0);
  // Updates: spout-ack-with-children, leaf c1, leaf c2 — two orders.
  EXPECT_FALSE(t1.Update(root, root ^ c1 ^ c2, false).has_value());
  EXPECT_FALSE(t1.Update(root, c1, false).has_value());
  EXPECT_TRUE(t1.Update(root, c2, false).has_value());

  EXPECT_FALSE(t2.Update(root, c2, false).has_value());
  EXPECT_FALSE(t2.Update(root, c1, false).has_value());
  EXPECT_TRUE(t2.Update(root, root ^ c1 ^ c2, false).has_value());
}

TEST(AckTrackerTest, FailCompletesImmediately) {
  AckTracker tracker(kTimeout);
  const api::TupleKey root = proto::MakeRootKey(0, 0x3);
  tracker.Register(root, root, 0);
  auto done = tracker.Update(root, 0, true);
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->fail);
  // Subsequent updates for the dead root are stale no-ops.
  EXPECT_FALSE(tracker.Update(root, root, false).has_value());
}

TEST(AckTrackerTest, StaleUpdateForUnknownRootIgnored) {
  AckTracker tracker(kTimeout);
  EXPECT_FALSE(tracker.Update(12345, 1, false).has_value());
}

TEST(AckTrackerTest, TimeoutsExpireOverdueRoots) {
  AckTracker tracker(kTimeout);
  const api::TupleKey r1 = proto::MakeRootKey(0, 1);
  const api::TupleKey r2 = proto::MakeRootKey(0, 2);
  tracker.Register(r1, r1, /*now=*/0);
  tracker.Register(r2, r2, /*now=*/500);
  EXPECT_EQ(tracker.NextDeadlineNanos(), kTimeout);

  auto expired = tracker.ExpireTimeouts(/*now=*/kTimeout);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].root, r1);
  EXPECT_TRUE(expired[0].fail);
  EXPECT_EQ(tracker.pending(), 1u);

  // r2 still completes normally before its deadline.
  EXPECT_TRUE(tracker.Update(r2, r2, false).has_value());
  EXPECT_EQ(tracker.ExpireTimeouts(10 * kTimeout).size(), 0u);
}

TEST(AckTrackerTest, NextDeadlinePrunesCompletedRoots) {
  AckTracker tracker(kTimeout);
  const api::TupleKey r1 = proto::MakeRootKey(0, 1);
  const api::TupleKey r2 = proto::MakeRootKey(0, 2);
  tracker.Register(r1, r1, 0);
  tracker.Register(r2, r2, 100);
  EXPECT_TRUE(tracker.Update(r1, r1, false).has_value());
  EXPECT_EQ(tracker.NextDeadlineNanos(), 100 + kTimeout);
  EXPECT_TRUE(tracker.Update(r2, r2, false).has_value());
  EXPECT_EQ(tracker.NextDeadlineNanos(),
            std::numeric_limits<int64_t>::max());
}

/// Property: random tuple trees complete exactly at the last ack,
/// regardless of delivery order.
class AckTreeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AckTreeProperty, RandomTreeCompletesOnlyAtLastAck) {
  Random rng(GetParam());
  AckTracker tracker(1ll << 60);
  const api::TupleKey root = proto::MakeRootKey(0, rng.NextUint64());
  tracker.Register(root, root, 0);

  // Build a random tree: each node gets a key; each node's ack update is
  // its key XOR its children's keys.
  struct Node {
    api::TupleKey key;
    std::vector<size_t> children;
  };
  std::vector<Node> nodes;
  nodes.push_back({root, {}});
  const size_t total = 2 + rng.NextBelow(30);
  for (size_t i = 1; i < total; ++i) {
    const size_t parent = rng.NextBelow(nodes.size());
    nodes.push_back({rng.NextUint64() | 1, {}});
    nodes[parent].children.push_back(i);
  }
  std::vector<api::TupleKey> updates;
  for (const auto& node : nodes) {
    api::TupleKey update = node.key;
    for (const size_t child : node.children) {
      update ^= nodes[child].key;
    }
    updates.push_back(update);
  }
  // Deliver in shuffled order.
  for (size_t i = updates.size(); i > 1; --i) {
    std::swap(updates[i - 1], updates[rng.NextBelow(i)]);
  }
  for (size_t i = 0; i < updates.size(); ++i) {
    auto done = tracker.Update(root, updates[i], false);
    if (i + 1 < updates.size()) {
      EXPECT_FALSE(done.has_value()) << "completed early at " << i;
    } else {
      EXPECT_TRUE(done.has_value()) << "did not complete at last ack";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AckTreeProperty,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace smgr
}  // namespace heron
