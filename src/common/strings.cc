#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace heron {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view input, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      break;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseBool(std::string_view s, bool* out) {
  s = StripWhitespace(s);
  if (s == "true" || s == "1" || s == "yes") {
    *out = true;
    return true;
  }
  if (s == "false" || s == "0" || s == "no") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace heron
