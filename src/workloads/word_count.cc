#include "workloads/word_count.h"

#include "api/context.h"
#include "common/strings.h"

namespace heron {
namespace workloads {

WordDictionary::WordDictionary(size_t size, uint64_t seed) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz";
  Random rng(seed);
  words_.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    const size_t length = 4 + rng.NextBelow(9);
    std::string word;
    word.reserve(length);
    for (size_t c = 0; c < length; ++c) {
      word.push_back(kAlphabet[rng.NextBelow(26)]);
    }
    words_.push_back(std::move(word));
  }
}

const WordDictionary& WordDictionary::Default() {
  static const WordDictionary dictionary;
  return dictionary;
}

void WordSpout::Open(const Config& config, api::TopologyContext* context,
                     api::ISpoutOutputCollector* collector) {
  collector_ = collector;
  acking_ = config.GetBoolOr(config_keys::kAckingEnabled, false);
  if (options_.dictionary_size == 450000) {
    dictionary_ = &WordDictionary::Default();
  } else {
    owned_dictionary_ =
        std::make_unique<WordDictionary>(options_.dictionary_size);
    dictionary_ = owned_dictionary_.get();
  }
  // Decorrelate instances of the spout without losing determinism.
  rng_ = Random(2017 + static_cast<uint64_t>(context->task_id()) * 7919);
}

void WordSpout::NextTuple() {
  // Replays first: a failed word goes out again — same id, same word —
  // before any new work, so recovery backlog drains ahead of fresh load.
  while (!replay_queue_.empty()) {
    const int64_t id = replay_queue_.front();
    replay_queue_.pop_front();
    const auto it = inflight_.find(id);
    if (it == inflight_.end()) continue;  // Raced an ack; already done.
    collector_->Emit({api::Value(dictionary_->WordAt(it->second))}, id);
    ++replayed_;
  }
  for (int i = 0; i < options_.words_per_call; ++i) {
    if (options_.emit_limit != 0 && emitted_ >= options_.emit_limit) return;
    const size_t index = rng_.NextBelow(dictionary_->size());
    const std::string& word = dictionary_->WordAt(index);
    if (acking_) {
      if (options_.replay_failed) inflight_[next_message_id_] = index;
      collector_->Emit({api::Value(word)}, next_message_id_++);
    } else {
      collector_->Emit({api::Value(word)}, std::nullopt);
    }
    ++emitted_;
  }
}

Result<std::shared_ptr<const api::Topology>> BuildWordCountTopology(
    const std::string& name, int spouts, int bolts,
    const WordSpout::Options& spout_options, const Config& topology_config) {
  api::TopologyBuilder builder(name);
  *builder.mutable_config() = topology_config;
  builder
      .SetSpout(
          "word",
          [spout_options] { return std::make_unique<WordSpout>(spout_options); },
          spouts)
      .OutputFields({"word"});
  builder
      .SetBolt(
          "count", [] { return std::make_unique<CountBolt>(); }, bolts)
      .FieldsGrouping("word", {"word"});
  return builder.Build();
}

}  // namespace workloads
}  // namespace heron
