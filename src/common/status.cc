#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace heron {

namespace {
const std::string kEmptyString;
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(msg)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ ? state_->msg : kEmptyString;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message();
  return Status(code(), std::move(msg));
}

namespace internal {

void AbortWithStatus(const Status& st, const char* file, int line) {
  std::fprintf(stderr, "HERON_CHECK_OK failed at %s:%d: %s\n", file, line,
               st.ToString().c_str());
  std::abort();
}

}  // namespace internal

}  // namespace heron
