#ifndef HERON_PROTO_MESSAGES_H_
#define HERON_PROTO_MESSAGES_H_

#include <string>
#include <vector>

#include "api/tuple.h"
#include "api/values.h"
#include "common/ids.h"
#include "serde/message.h"

namespace heron {
namespace proto {

/// Message kind carried in transport envelopes so receivers can dispatch
/// without parsing the payload.
enum class MessageType : uint8_t {
  kTupleBatch = 1,        ///< Unrouted tuples, instance → its local SMGR.
  kAckBatch = 2,          ///< XOR ack updates toward the root owner's SMGR.
  kRootEvent = 3,         ///< SMGR → spout instance: tree completed/failed.
  kControl = 4,           ///< Control-plane payloads (plan updates, ...).
  kTupleBatchRouted = 5,  ///< Routed tuples, SMGR → SMGR or SMGR → instance.
  kStartBackpressure = 6, ///< SMGR → all peer SMGRs: throttle your spouts.
  kStopBackpressure = 7,  ///< SMGR → all peer SMGRs: release the throttle.
  kCheckpointBarrier = 8, ///< Checkpoint barrier control tuple (in-stream).
};

/// \brief A typed, serialized payload as it crosses the IPC kernel.
///
/// The payload buffer is pooled by the sending side and recycled by the
/// receiver, so steady-state transport performs no allocation (§V-A).
struct Envelope {
  MessageType type = MessageType::kControl;
  serde::Buffer payload;
  /// In-memory tracing hint (not serialized): nonzero when the payload
  /// carries at least one traced tuple, so receivers can record a
  /// transport-hop span without peeking any tuple bytes. Last-traced-wins
  /// when several traced tuples share a batch — tracing is sampled, so
  /// collisions are rare and a single hop span per batch suffices.
  uint64_t trace_id = 0;
  /// Destination task of the payload (-1 = unaddressed). Carried in the
  /// transport frame header (serde::FrameHeader::dest), so a forwarding
  /// Stream Manager routes on envelope metadata alone and never inspects
  /// payload bytes — the zero-copy invariant `smgr.payload_touches`
  /// asserts. Mirrors the dest_task field serialized inside tuple/ack
  /// batch payloads; when -1 receivers fall back to a payload peek.
  TaskId dest_task = -1;

  Envelope() = default;
  Envelope(MessageType t, serde::Buffer p) : type(t), payload(std::move(p)) {}
};

/// \brief Wire form of one data tuple.
///
/// Field layout (proto-style numbers):
///   1  tuple_key        varint (uint64)
///   2  root             varint, repeated
///   3  emit_time_nanos  zigzag varint
///   5  trace_id         varint (uint64), omitted when 0
///   4  values           length-delimited: varint count + EncodeValue * count
///
/// trace_id is written *before* the values blob (despite the higher field
/// number) so the lazy PeekTraceId never has to skip the payload; parsers
/// are field-order agnostic. A zero trace_id (the untraced common case)
/// costs zero wire bytes.
class TupleDataMsg final : public serde::Message {
 public:
  api::TupleKey tuple_key = 0;
  std::vector<api::TupleKey> roots;
  int64_t emit_time_nanos = 0;
  /// Sampled tuple-path tracing (observability): nonzero marks this tuple
  /// as traced; the id joins spans recorded across containers.
  uint64_t trace_id = 0;
  api::Values values;

  void SerializeTo(serde::WireEncoder* enc) const override;
  Status ParseFrom(serde::WireDecoder* dec) override;
  void Clear() override;

  /// Fills from / copies into the user-facing Tuple representation.
  void FromTuple(const api::Tuple& tuple);
  void ToTuple(ComponentId source_component, StreamId stream,
               TaskId source_task, api::Tuple* out) const;
};

/// \brief Wire form of a batch of tuples flowing on one (source task →
/// destination task, stream) edge.
///
/// Field layout:
///   1  src_task       zigzag varint
///   2  dest_task      zigzag varint   <- the only field the lazy path reads
///   3  stream         string
///   4  src_component  string
///   5  tuple          length-delimited TupleDataMsg, repeated
///
/// dest_task is deliberately early in the layout: the receiving Stream
/// Manager "parses only the destination field that determines the
/// particular Heron Instance that must receive the tuple. The tuple is not
/// deserialized but is forwarded as a serialized byte array" (§V-A).
class TupleBatchMsg final : public serde::Message {
 public:
  TaskId src_task = -1;
  TaskId dest_task = -1;
  StreamId stream{kDefaultStreamId};
  ComponentId src_component;
  /// Serialized TupleDataMsg payloads. Kept serialized so a routing SMGR
  /// can append/forward without touching tuple internals.
  std::vector<serde::Buffer> tuples;

  void SerializeTo(serde::WireEncoder* enc) const override;
  Status ParseFrom(serde::WireDecoder* dec) override;
  void Clear() override;
};

/// \brief Lazy/partial parse: extracts only dest_task from a serialized
/// TupleBatchMsg, skipping everything else (§V-A optimization 2). The
/// eager alternative — full TupleBatchMsg::ParseFromBytes — is the
/// ablation baseline.
Result<TaskId> PeekDestTask(serde::BytesView batch_bytes);

/// \brief In-place update (§V-A: "performs in-place updates of Protocol
/// Buffer objects"): rewrites dest_task inside serialized batch bytes
/// without reserializing the tuples. Requires the new id to occupy the
/// same zigzag-varint width as the old; returns false otherwise (caller
/// falls back to reserialization).
bool OverwriteDestTaskInPlace(serde::Buffer* batch_bytes, TaskId new_dest);

/// \brief One XOR update toward a tracked root (ack management).
///
/// Field layout: 1 root varint, 2 xor_value varint, 3 fail bool.
struct AckUpdate {
  api::TupleKey root = 0;
  api::TupleKey xor_value = 0;
  bool fail = false;

  bool operator==(const AckUpdate& o) const {
    return root == o.root && xor_value == o.xor_value && fail == o.fail;
  }
};

/// \brief A batch of ack updates routed to the SMGR owning the roots'
/// spout task.
///
/// Field layout: 1 dest_task zigzag (the spout task that emitted the
/// roots), 2 update (length-delimited AckUpdate), repeated.
class AckBatchMsg final : public serde::Message {
 public:
  TaskId dest_task = -1;
  std::vector<AckUpdate> updates;

  void SerializeTo(serde::WireEncoder* enc) const override;
  Status ParseFrom(serde::WireDecoder* dec) override;
  void Clear() override;
};

/// \brief SMGR → spout instance notification that a tuple tree finished.
///
/// Field layout: 1 root varint (uint64), 2 fail bool. The spout executor
/// maps the root back to the user message id and the emit timestamp it
/// recorded at emission time.
class RootEventMsg final : public serde::Message {
 public:
  api::TupleKey root = 0;
  bool fail = false;

  void SerializeTo(serde::WireEncoder* enc) const override;
  Status ParseFrom(serde::WireDecoder* dec) override;
  void Clear() override;
};

/// \brief Control envelope of the cluster-wide spout back-pressure
/// protocol (§II / Heron's "spout back pressure"): when a Stream
/// Manager's retry backlog crosses its high watermark it broadcasts a
/// `kStartBackpressure` envelope carrying this payload to every peer
/// SMGR, each of which raises a ref-counted throttle on its local
/// spouts; dropping below the low watermark broadcasts
/// `kStopBackpressure`. The payload is deliberately tiny — the control
/// plane must stay deliverable precisely when the data plane is choking.
///
/// Field layout: 1 initiator zigzag (container id of the choking SMGR),
/// 2 retry_depth varint (diagnostic: the backlog that tripped it).
class BackpressureMsg final : public serde::Message {
 public:
  ContainerId initiator = -1;
  uint64_t retry_depth = 0;

  void SerializeTo(serde::WireEncoder* enc) const override;
  Status ParseFrom(serde::WireDecoder* dec) override;
  void Clear() override;

  bool operator==(const BackpressureMsg& o) const {
    return initiator == o.initiator && retry_depth == o.retry_depth;
  }
};

/// \brief The checkpoint barrier control tuple (aligned snapshots per
/// *Stream-based State-Machine Replication*; ROADMAP item 2).
///
/// One message class serves all three legs of the protocol, distinguished
/// by `kind` and the envelope's `dest_task`:
///  - **kTrigger**, coordinator → spout instance (dest_task = spout task):
///    snapshot your replay cursor and start barrier `ckpt_id`.
///  - **kBarrier** with envelope dest_task = -1, instance → local SMGR: a
///    fan-out request — "I snapshotted; flush my cached tuples, then put a
///    barrier behind them on every downstream channel of `origin_task`".
///  - **kBarrier** with envelope dest_task >= 0, SMGR → SMGR → instance:
///    the in-stream barrier itself; `origin_task` names the upstream
///    channel it closes for alignment purposes.
///  - **kAbort**: coordinator-initiated cancellation (a barrier died with
///    a killed container); aligning bolts release their buffers.
///
/// Field layout: 1 ckpt_id varint, 2 origin_task zigzag, 3 kind varint.
class CheckpointBarrierMsg final : public serde::Message {
 public:
  enum Kind : uint8_t { kTrigger = 0, kBarrier = 1, kAbort = 2 };

  uint64_t ckpt_id = 0;
  TaskId origin_task = -1;
  uint8_t kind = kBarrier;

  void SerializeTo(serde::WireEncoder* enc) const override;
  Status ParseFrom(serde::WireDecoder* dec) override;
  void Clear() override;

  bool operator==(const CheckpointBarrierMsg& o) const {
    return ckpt_id == o.ckpt_id && origin_task == o.origin_task &&
           kind == o.kind;
  }
};

/// \brief Location advertisement the Topology Master writes into the
/// State Manager (§IV-C: "the Topology Master advertises its location
/// through the State Manager to the Stream Manager processes").
///
/// Field layout: 1 topology string, 2 host string, 3 port zigzag,
/// 4 controller_port zigzag.
class TMasterLocationMsg final : public serde::Message {
 public:
  std::string topology;
  std::string host;
  int32_t port = 0;
  int32_t controller_port = 0;

  void SerializeTo(serde::WireEncoder* enc) const override;
  Status ParseFrom(serde::WireDecoder* dec) override;
  void Clear() override;

  bool operator==(const TMasterLocationMsg& o) const {
    return topology == o.topology && host == o.host && port == o.port &&
           controller_port == o.controller_port;
  }
};

/// TupleBatchMsg wire field numbers, exported so components that build
/// batches incrementally (the Stream Manager tuple cache) write the exact
/// same layout the parsers read.
namespace tuple_batch_fields {
inline constexpr uint32_t kSrcTask = 1;
inline constexpr uint32_t kDestTask = 2;
inline constexpr uint32_t kStream = 3;
inline constexpr uint32_t kSrcComponent = 4;
inline constexpr uint32_t kTuple = 5;
}  // namespace tuple_batch_fields

/// Root keys embed the emitting spout's task id in the top 16 bits so any
/// SMGR can route an ack update to the owner container with no extra
/// lookup state.
api::TupleKey MakeRootKey(TaskId spout_task, uint64_t random48);
TaskId RootKeyTask(api::TupleKey root);

/// \brief Zero-copy view of a serialized TupleBatchMsg: header fields plus
/// views into each serialized tuple. Valid only while the underlying
/// buffer lives. This is the optimized Stream Manager's working form — it
/// never materializes tuple objects for routing (§V-A).
struct TupleBatchView {
  TaskId src_task = -1;
  TaskId dest_task = -1;
  serde::BytesView stream;
  serde::BytesView src_component;
  std::vector<serde::BytesView> tuples;
};

/// Parses a serialized TupleBatchMsg into views (no payload copies).
Status ParseTupleBatchView(serde::BytesView batch_bytes, TupleBatchView* out);

/// \brief Lazy ack-metadata peek: reads only tuple_key and roots from a
/// serialized TupleDataMsg, stopping before the values blob.
Status PeekTupleKeyAndRoots(serde::BytesView tuple_bytes, api::TupleKey* key,
                            std::vector<api::TupleKey>* roots);

/// \brief Lazy fields-grouping hash: walks the serialized values of a
/// TupleDataMsg and folds the byte ranges of the values at
/// `sorted_field_indices` (ascending) with api::HashCombine — yielding
/// exactly Router::KeyHash of the decoded tuple, without decoding.
Result<uint64_t> PeekFieldsHash(serde::BytesView tuple_bytes,
                                const std::vector<int>& sorted_field_indices);

/// \brief Lazy dest peek for serialized AckBatchMsg (field 1).
Result<TaskId> PeekAckBatchDest(serde::BytesView ack_bytes);

/// \brief Lazy trace peek: reads only the trace_id from a serialized
/// TupleDataMsg (0 when absent — the untraced common case). Stops at the
/// values blob, which serialization always writes last.
Result<uint64_t> PeekTraceId(serde::BytesView tuple_bytes);

}  // namespace proto
}  // namespace heron

#endif  // HERON_PROTO_MESSAGES_H_
