#ifndef HERON_TMASTER_TMASTER_H_
#define HERON_TMASTER_TMASTER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "packing/packing.h"
#include "statemgr/state_manager.h"
#include "statemgr/topology_state.h"

namespace heron {
namespace tmaster {

/// \brief The Topology Master: "the process responsible for managing the
/// topology throughout its existence" (§II), running in container 0.
///
/// Responsibilities implemented here, each through the State Manager
/// exactly as §IV-C describes:
///  - advertises its location as an ephemeral node, so when it dies "all
///    the Stream Managers become immediately aware of the event";
///  - owns the authoritative packing plan record;
///  - coordinates topology scaling: takes the user's parallelism changes,
///    drives the Resource Manager's repack, and publishes the new plan.
///
/// Exactly one TMaster may be active per topology: a second Start() races
/// on the ephemeral advertisement and loses with kAlreadyExists — the
/// standby pattern used for TMaster failover.
class TopologyMaster {
 public:
  struct Options {
    std::string topology;
    std::string host = "localhost";
    int32_t port = 0;
    int32_t controller_port = 0;
  };

  TopologyMaster(const Options& options, statemgr::IStateManager* state,
                 const Clock* clock);
  ~TopologyMaster();

  /// Opens a session and advertises the location ephemerally.
  /// kAlreadyExists when another TMaster is alive for the topology.
  Status Start();

  /// Withdraws the advertisement (closes the session). Idempotent.
  Status Stop();

  /// Simulates a TMaster crash for failover tests: drops the session
  /// without orderly teardown; ephemeral cleanup does the rest.
  Status Crash();

  bool active() const;

  /// Publishes `plan` as the topology's authoritative packing plan.
  Status PublishPackingPlan(const packing::PackingPlan& plan);
  Result<packing::PackingPlan> CurrentPackingPlan() const;

  /// Scaling coordination (§IV-A): applies the user's absolute
  /// parallelism targets via `packing->Repack` against the current plan,
  /// publishes, and returns the new plan for the Scheduler's OnUpdate.
  Result<packing::PackingPlan> ScaleTopology(
      packing::IPacking* packing,
      const std::map<ComponentId, int>& parallelism_changes);

  /// Records that `container`'s Stream Manager started (active) or ended
  /// (inactive) a cluster-wide backpressure episode. The marker lives in
  /// the state tree so the topology status — not just per-container
  /// metrics — shows who is throttling the spouts.
  Status ReportBackpressure(int container, bool active);

  /// Containers currently initiating backpressure, ascending; empty when
  /// the topology runs unthrottled.
  Result<std::vector<int>> BackpressureContainers() const;

  // -- Heartbeat-based container liveness (§IV-B failure detection) -------
  //
  // Containers publish liveness through their metrics-collection tick
  // (RecordHeartbeat); the monitor (LocalCluster's monitor loop, calling
  // CheckLiveness on the heron.scheduler.monitor.interval.ms cadence)
  // declares a container dead after `miss_limit` silent intervals, writes
  // "dead" at /topologies/<t>/containers/<id>, and emits a ContainerEvent
  // for the Scheduler to route per the framework contract.

  /// A liveness transition the monitor observed.
  struct ContainerEvent {
    enum class Kind {
      kDead,      ///< Heartbeats missed past the limit.
      kRestored,  ///< A dead container's heartbeats resumed.
    };
    Kind kind = Kind::kDead;
    int container = -1;
    /// kDead: silence observed before declaring death (last beat → now).
    /// kRestored: time spent dead (declared dead → first new beat).
    int64_t latency_ms = 0;
  };

  /// Installs the event sink (invoked from CheckLiveness / RecordHeartbeat
  /// with no TMaster lock held). One callback; last install wins.
  void SetContainerEventCallback(std::function<void(const ContainerEvent&)> cb);

  /// Monitor cadence: a container is dead after `miss_limit` intervals of
  /// `interval_ms` without a heartbeat.
  void SetMonitorParams(int64_t interval_ms, int miss_limit);

  /// Begins expecting heartbeats from `container` (seeds last-beat = now,
  /// writes "alive"). Called when the Scheduler starts the container.
  Status ExpectContainer(int container);

  /// Stops expecting heartbeats (graceful stop / descale): removes the
  /// liveness entry and state-tree record, so an orderly StopContainer is
  /// never mistaken for a death.
  Status ForgetContainer(int container);

  /// One heartbeat from `container` (the metrics collection tick). A beat
  /// from a container previously declared dead marks it restored, writes
  /// "alive", bumps its restart count and emits kRestored.
  Status RecordHeartbeat(int container);

  /// Scans every expected container; declares the overdue ones dead
  /// (state-tree write + kDead event + backpressure-marker cleanup, since
  /// a dead initiator can never broadcast its own kStop). Returns the
  /// events emitted this scan.
  std::vector<ContainerEvent> CheckLiveness();

  /// Containers currently recorded dead in the state tree, ascending.
  Result<std::vector<int>> DeadContainers() const;

  /// Times this container was restored after a death (0 = never died).
  int ContainerRestarts(int container) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  statemgr::IStateManager* state_;
  const Clock* clock_;

  mutable std::mutex mutex_;
  statemgr::SessionId session_ = statemgr::kNoSession;

  struct Liveness {
    int64_t last_beat_nanos = 0;
    bool alive = true;
    int64_t dead_since_nanos = 0;
    int restarts = 0;
  };
  std::map<int, Liveness> liveness_;
  int64_t monitor_interval_ms_ = 1000;
  int monitor_miss_limit_ = 3;
  std::function<void(const ContainerEvent&)> event_cb_;
};

}  // namespace tmaster
}  // namespace heron

#endif  // HERON_TMASTER_TMASTER_H_
