file(REMOVE_RECURSE
  "libheron_metrics.a"
)
