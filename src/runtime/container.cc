#include "runtime/container.h"

#include "common/logging.h"
#include "common/strings.h"

namespace heron {
namespace runtime {

Container::Container(const packing::ContainerPlan& plan,
                     std::shared_ptr<const proto::PhysicalPlan> physical_plan,
                     const Config& config, smgr::Transport* transport,
                     const Clock* clock)
    : plan_(plan),
      physical_plan_(std::move(physical_plan)),
      config_(config),
      transport_(transport),
      clock_(clock),
      metrics_manager_(clock),
      housekeeping_(
          EventLoop::Options{
              /*.name=*/StrFormat("container-%d", plan.id),
              /*.burst=*/128,
              /*.idle_backoff_nanos=*/200000,
              /*.max_park_nanos=*/100000000,
              /*.registry=*/&housekeeping_metrics_,
              /*.metric_prefix=*/"container"},
          clock) {}

Container::~Container() { Stop(); }

Status Container::Start() { return StartInternal(/*step_mode=*/false); }

Status Container::StartStepMode() { return StartInternal(/*step_mode=*/true); }

Status Container::StartInternal(bool step_mode) {
  if (started_) {
    return Status::FailedPrecondition(
        StrFormat("container %d already started", plan_.id));
  }
  step_mode_ = step_mode;

  smgr::StreamManager::Options smgr_options;
  smgr_options.container = plan_.id;
  smgr_options.acking =
      config_.GetBoolOr(config_keys::kAckingEnabled, false);
  smgr_options.optimizations =
      config_.GetBoolOr(config_keys::kSmgrOptimizationsEnabled, true);
  smgr_options.cache_drain_frequency_ms =
      config_.GetIntOr(config_keys::kCacheDrainFrequencyMs, 10);
  smgr_options.cache_drain_size_bytes = static_cast<size_t>(
      config_.GetIntOr(config_keys::kCacheDrainSizeBytes, 1 << 20));
  smgr_options.message_timeout_ms =
      config_.GetIntOr(config_keys::kMessageTimeoutMs, 30000);
  smgr_options.backpressure_high_water = static_cast<size_t>(
      config_.GetIntOr(config_keys::kBackpressureHighWater, 4096));
  smgr_options.backpressure_low_water = static_cast<size_t>(
      config_.GetIntOr(config_keys::kBackpressureLowWater, 0));
  smgr_options.seed = 42 + static_cast<uint64_t>(plan_.id);
  smgr_options.announce_recovery = recovering_;
  smgr_options.span_collector = span_collector_;
  smgr_options.journal = journal_;
  recovering_ = false;
  smgr_ = std::make_unique<smgr::StreamManager>(smgr_options, physical_plan_,
                                                transport_, clock_);
  if (step_mode) {
    HERON_RETURN_NOT_OK(smgr_->StartStepMode());
  } else if (tasklet_pool_ != nullptr) {
    HERON_RETURN_NOT_OK(smgr_->StartCooperative(tasklet_pool_));
  } else {
    HERON_RETURN_NOT_OK(smgr_->Start());
  }
  metrics_manager_
      .RegisterSource(StrFormat("smgr-%d", plan_.id), smgr_->metrics())
      .ok();

  for (const auto& inst : plan_.instances) {
    instance::HeronInstance::Options options;
    options.task = inst.task_id;
    options.config = config_;
    options.acking = smgr_options.acking;
    options.max_spout_pending =
        config_.GetIntOr(config_keys::kMaxSpoutPending, 0);
    options.inbound_capacity = static_cast<size_t>(
        config_.GetIntOr(config_keys::kInstanceInboundCapacity, 1 << 16));
    options.emit_batch_tuples = static_cast<size_t>(
        config_.GetIntOr(config_keys::kInstanceEmitBatchTuples, 64));
    options.seed = 1000 + static_cast<uint64_t>(inst.task_id);
    options.trace_sample_inverse =
        config_.GetIntOr(config_keys::kTraceSampleInverse, 0);
    options.span_collector = span_collector_;
    options.checkpoint_state = checkpoint_state_;
    options.restore_checkpoint = restore_checkpoint_;
    options.checkpoint_epoch = checkpoint_epoch_;
    auto instance = std::make_unique<instance::HeronInstance>(
        options, physical_plan_, transport_, clock_, smgr_.get());
    Status st;
    if (step_mode) {
      st = instance->StartStepMode();
    } else if (tasklet_pool_ != nullptr) {
      st = instance->StartCooperative(tasklet_pool_);
    } else {
      st = instance->Start();
    }
    if (!st.ok()) {
      Stop();
      return st.WithContext(
          StrFormat("starting task %d in container %d", inst.task_id,
                    plan_.id));
    }
    metrics_manager_
        .RegisterSource(StrFormat("task-%d", inst.task_id),
                        instance->metrics())
        .ok();
    instances_.push_back(std::move(instance));
  }

  // Metrics Manager housekeeping: periodic collection on the container's
  // reactor, at the configured cadence.
  metrics_manager_
      .RegisterSource(StrFormat("container-%d", plan_.id),
                      &housekeeping_metrics_)
      .ok();
  if (!housekeeping_wired_) {
    const int64_t collect_interval_ms =
        config_.GetIntOr(config_keys::kMetricsCollectIntervalMs, 5);
    housekeeping_.AddPeriodic(collect_interval_ms * 1000000,
                              [this] { metrics_manager_.Collect(); });
    housekeeping_wired_ = true;
  }
  if (!step_mode) {
    if (tasklet_pool_ != nullptr) {
      housekeeping_handle_ = tasklet_pool_->Add(&housekeeping_);
    } else {
      housekeeping_.Start();
    }
  }

  started_ = true;
  HLOG(INFO) << "container " << plan_.id << " up: smgr + "
             << instances_.size() << " instances";
  return Status::OK();
}

void Container::Step() {
  if (!started_ || !step_mode_) return;
  if (smgr_ != nullptr) smgr_->loop()->RunOnce();
  for (auto& instance : instances_) {
    instance->loop()->RunOnce();
  }
  housekeeping_.RunOnce();
}

void Container::Fail() {
  if (!started_) return;
  // Halt order mirrors Stop()'s join-before-destroy discipline, but with
  // Halt instead of Stop: no shutdown drain anywhere. Housekeeping first —
  // its Collect() snapshots registries the kills below will orphan.
  housekeeping_.Halt();
  if (housekeeping_handle_ != nullptr) {
    tasklet_pool_->Retire(housekeeping_handle_);
    housekeeping_handle_ = nullptr;
  }
  housekeeping_.Join();
  for (auto& instance : instances_) {
    instance->Kill();
  }
  if (smgr_ != nullptr) {
    smgr_->Kill();
  }
  // Only now — every thread joined — may the endpoints be destroyed.
  instances_.clear();
  smgr_.reset();
  started_ = false;
  HLOG(INFO) << "container " << plan_.id << " KILLED (fault injection)";
}

void Container::Stop() {
  // Housekeeping first: Collect() snapshots the instance registries, so
  // the collection loop must be parked before any registry dies.
  if (housekeeping_handle_ != nullptr) {
    tasklet_pool_->Retire(housekeeping_handle_);
    housekeeping_handle_ = nullptr;
  }
  housekeeping_.Stop();
  housekeeping_.Join();
  housekeeping_.Shutdown();
  // Park every thread before destroying any endpoint: the SMGR's wire
  // thread can be mid-TrySend into an instance channel (delivering a
  // routed batch or a parked retry), so no instance may be destroyed
  // until the SMGR has joined — and vice versa for instances still
  // flushing toward the SMGR.
  for (auto& instance : instances_) {
    instance->Stop();
  }
  if (smgr_ != nullptr) {
    smgr_->Stop();
  }
  instances_.clear();
  smgr_.reset();
  started_ = false;
}

int64_t Container::SumInstanceGauge(const std::string& name) const {
  int64_t total = 0;
  for (const auto& instance : instances_) {
    total += const_cast<instance::HeronInstance*>(instance.get())
                 ->metrics()
                 ->GetGauge(name)
                 ->value();
  }
  return total;
}

int64_t Container::SmgrGauge(const std::string& name) const {
  if (smgr_ == nullptr) return 0;
  return const_cast<smgr::StreamManager*>(smgr_.get())
      ->metrics()
      ->GetGauge(name)
      ->value();
}

uint64_t Container::SmgrCounter(const std::string& name) const {
  if (smgr_ == nullptr) return 0;
  return const_cast<smgr::StreamManager*>(smgr_.get())
      ->metrics()
      ->GetCounter(name)
      ->value();
}

uint64_t Container::SumInstanceCounter(const std::string& name,
                                       const std::string& component) const {
  uint64_t total = 0;
  for (const auto& instance : instances_) {
    if (!component.empty() && instance->component() != component) continue;
    total += const_cast<instance::HeronInstance*>(instance.get())
                 ->metrics()
                 ->GetCounter(name)
                 ->value();
  }
  return total;
}

}  // namespace runtime
}  // namespace heron
