#include "packing/mcts_packing.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"

namespace heron {
namespace packing {

namespace {

/// One node of the search tree: a placement prefix. Children are keyed by
/// the container id chosen for the next instance, which is stable across
/// iterations because the path to a node fully determines which fresh
/// containers have been opened below it.
struct Node {
  int visits = 0;
  double value_sum = 0;
  bool expanded = false;                  ///< Legal actions materialized.
  std::vector<ContainerId> untried;       ///< Not yet expanded children.
  std::map<ContainerId, std::unique_ptr<Node>> children;
};

bool FitsContainer(const Resource& capacity, const Resource& load,
                   const Resource& demand) {
  return (capacity - ContainerOverhead() - load).Fits(demand);
}

}  // namespace

Status MctsPacking::Initialize(const Config& config,
                               std::shared_ptr<const api::Topology> topology) {
  if (topology == nullptr) {
    return Status::InvalidArgument("MctsPacking: null topology");
  }
  config_ = config.MergedWith(topology->config());
  topology_ = std::move(topology);
  rates_ = ComponentRatesFromConfig(*topology_, config_);
  adjacent_.clear();
  for (const api::ComponentDef& def : topology_->components()) {
    for (const api::InputSpec& input : def.inputs) {
      adjacent_[def.id].push_back(input.source);
      adjacent_[input.source].push_back(def.id);
    }
  }
  iterations_ = static_cast<int>(
      config_.GetIntOr(config_keys::kMctsIterations, 256));
  if (iterations_ < 1) {
    return Status::InvalidArgument("MCTS iteration budget must be >= 1");
  }
  exploration_ = config_.GetDoubleOr(config_keys::kMctsExploration, 1.4);
  seed_ = static_cast<uint64_t>(config_.GetIntOr(config_keys::kMctsSeed, 42));
  return Status::OK();
}

Result<PackingPlan> MctsPacking::Pack() {
  if (topology_ == nullptr) {
    return Status::FailedPrecondition("MctsPacking not initialized");
  }
  std::vector<InstancePlan> instances =
      internal::EnumerateInstances(*topology_);
  if (instances.empty()) {
    return Status::InvalidArgument("topology has no instances to pack");
  }
  const int64_t default_containers =
      (static_cast<int64_t>(instances.size()) + 3) / 4;
  const int64_t hint =
      config_.GetIntOr(config_keys::kNumContainersHint, default_containers);
  if (hint < 1) {
    return Status::InvalidArgument(
        StrFormat("number of containers must be >= 1, got %lld",
                  static_cast<long long>(hint)));
  }
  const Resource capacity = internal::ContainerCapacityFromConfig(config_);
  // The hint containers exist as open-but-empty candidates; the search
  // may open more past the hint only when capacity forces it.
  PackingPlan base;
  base.set_topology_name(topology_->name());
  for (ContainerId c = 0; c < static_cast<ContainerId>(hint); ++c) {
    ContainerPlan open;
    open.id = c;
    base.mutable_containers()->push_back(std::move(open));
  }
  HERON_ASSIGN_OR_RETURN(
      PackingPlan plan,
      Search(base, std::move(instances), static_cast<ContainerId>(hint),
             capacity, /*previous=*/nullptr));
  HERON_RETURN_NOT_OK(plan.Validate(/*require_dense_task_ids=*/true));
  return plan;
}

Result<PackingPlan> MctsPacking::Repack(
    const PackingPlan& current,
    const std::map<ComponentId, int>& parallelism_changes) {
  if (topology_ == nullptr) {
    return Status::FailedPrecondition("MctsPacking not initialized");
  }
  const Resource capacity =
      Resource::Max(current.MaxContainerResource(),
                    internal::ContainerCapacityFromConfig(config_));
  // The baseline resolves targets and validates arguments/capacity; the
  // search then re-decides only where the *added* instances go. Survivors
  // are pinned in their current containers — the minimal-disruption
  // contract the property tests check — so the search space is exactly
  // the placement of the additions.
  HERON_ASSIGN_OR_RETURN(
      PackingPlan baseline,
      internal::RepackMinimalDisruption(*topology_, current,
                                        parallelism_changes, capacity));
  std::vector<InstancePlan> additions;
  PackingPlan pinned;
  pinned.set_topology_name(baseline.topology_name());
  ContainerId max_container = -1;
  for (const ContainerPlan& c : baseline.containers()) {
    ContainerPlan keep;
    keep.id = c.id;
    keep.required = c.required;
    max_container = std::max(max_container, c.id);
    for (const InstancePlan& inst : c.instances) {
      if (current.FindContainerOfTask(inst.task_id) != nullptr) {
        keep.instances.push_back(inst);
      } else {
        additions.push_back(inst);
      }
    }
    // Keep even emptied containers as open candidates: the baseline
    // provisioned them, so the search may reuse their capacity.
    pinned.mutable_containers()->push_back(std::move(keep));
  }
  if (additions.empty()) {
    last_cost_ = EvaluatePlacement(*topology_, baseline, rates_, &current,
                                   weights_);
    return baseline;
  }
  // Additions are searched in task order (deterministic).
  std::sort(additions.begin(), additions.end(),
            [](const InstancePlan& a, const InstancePlan& b) {
              return a.task_id < b.task_id;
            });
  HERON_ASSIGN_OR_RETURN(
      PackingPlan plan,
      Search(pinned, std::move(additions), max_container + 1, capacity,
             &current));
  HERON_RETURN_NOT_OK(plan.Validate(/*require_dense_task_ids=*/false));
  return plan;
}

Result<PackingPlan> MctsPacking::Search(const PackingPlan& base,
                                        std::vector<InstancePlan> to_place,
                                        ContainerId first_fresh_id,
                                        const Resource& capacity,
                                        const PackingPlan* previous) {
  // Every instance must at least fit an empty container, or no assignment
  // can ever validate — fail fast with the same error the baseline gives.
  for (const InstancePlan& inst : to_place) {
    if (!FitsContainer(capacity, Resource(), inst.resources)) {
      return Status::ResourceExhausted(StrFormat(
          "instance of '%s' demands %s, beyond container capacity %s",
          inst.component.c_str(), inst.resources.ToString().c_str(),
          capacity.ToString().c_str()));
    }
  }

  std::vector<CState> base_state;
  for (const ContainerPlan& c : base.containers()) {
    CState s;
    s.id = c.id;
    s.load = c.InstanceTotal();
    s.instances = static_cast<int>(c.instances.size());
    for (const InstancePlan& inst : c.instances) {
      ++s.component_tasks[inst.component];
    }
    base_state.push_back(std::move(s));
  }

  // Legal actions for placing `inst` given container states: every
  // non-empty open container that fits, plus one representative empty
  // candidate (empty containers are interchangeable — symmetry
  // reduction), plus a fresh container when no empty one is open.
  const auto legal_actions = [&capacity](const std::vector<CState>& state,
                                         ContainerId next_fresh,
                                         const InstancePlan& inst) {
    std::vector<ContainerId> actions;
    bool have_empty = false;
    for (const CState& s : state) {
      if (s.instances == 0) {
        if (!have_empty) {
          have_empty = true;
          actions.push_back(s.id);
        }
        continue;
      }
      if (FitsContainer(capacity, s.load, inst.resources)) {
        actions.push_back(s.id);
      }
    }
    if (!have_empty) actions.push_back(next_fresh);
    return actions;
  };

  const auto apply = [](std::vector<CState>* state, ContainerId* next_fresh,
                        ContainerId choice, const InstancePlan& inst) {
    for (CState& s : *state) {
      if (s.id == choice) {
        s.load += inst.resources;
        ++s.instances;
        ++s.component_tasks[inst.component];
        return;
      }
    }
    CState fresh;
    fresh.id = choice;
    fresh.load = inst.resources;
    fresh.instances = 1;
    fresh.component_tasks[inst.component] = 1;
    state->push_back(std::move(fresh));
    *next_fresh = std::max(*next_fresh, static_cast<ContainerId>(choice + 1));
  };

  // Rollout policy: colocate with DAG neighbours (most adjacent tasks in
  // the container wins), tie-break on most free CPU, ε-random for
  // exploration diversity.
  Random rng(seed_);
  const auto rollout_choice = [this, &rng](
                                  const std::vector<CState>& state,
                                  const std::vector<ContainerId>& actions,
                                  const InstancePlan& inst) {
    if (actions.size() == 1) return actions.front();
    if (rng.NextBool(0.1)) {
      return actions[rng.NextBelow(actions.size())];
    }
    const auto adj_it = adjacent_.find(inst.component);
    ContainerId best = actions.front();
    double best_score = -std::numeric_limits<double>::infinity();
    for (const ContainerId action : actions) {
      int neighbours = 0;
      double free_cpu = 0;
      for (const CState& s : state) {
        if (s.id != action) continue;
        free_cpu = -s.load.cpu;
        if (adj_it != adjacent_.end()) {
          for (const ComponentId& other : adj_it->second) {
            const auto it = s.component_tasks.find(other);
            if (it != s.component_tasks.end()) neighbours += it->second;
          }
        }
        break;
      }
      // Neighbours dominate; free CPU (encoded as negative load) breaks
      // ties toward balance. Strict > keeps the lowest id on full ties.
      const double score = neighbours * 1000.0 + free_cpu;
      if (score > best_score) {
        best_score = score;
        best = action;
      }
    }
    return best;
  };

  const auto build_plan = [&base, &to_place](
                              const std::vector<ContainerId>& assignment) {
    PackingPlan plan;
    plan.set_topology_name(base.topology_name());
    *plan.mutable_containers() = base.containers();
    auto& containers = *plan.mutable_containers();
    for (size_t i = 0; i < assignment.size(); ++i) {
      ContainerPlan* dest = nullptr;
      for (ContainerPlan& c : containers) {
        if (c.id == assignment[i]) {
          dest = &c;
          break;
        }
      }
      if (dest == nullptr) {
        ContainerPlan fresh;
        fresh.id = assignment[i];
        containers.push_back(std::move(fresh));
        dest = &containers.back();
      }
      dest->instances.push_back(to_place[i]);
    }
    // Drop candidates that stayed empty; recompute requirements.
    containers.erase(std::remove_if(containers.begin(), containers.end(),
                                    [](const ContainerPlan& c) {
                                      return c.instances.empty();
                                    }),
                     containers.end());
    for (ContainerPlan& c : containers) {
      c.required =
          Resource::Max(c.required, c.InstanceTotal() + ContainerOverhead());
    }
    return plan;
  };

  Node root;
  std::vector<ContainerId> best_assignment;
  PlacementCost best_cost;
  double best_total = std::numeric_limits<double>::infinity();
  double worst_total = -std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < iterations_; ++iter) {
    std::vector<CState> state = base_state;
    ContainerId next_fresh = first_fresh_id;
    std::vector<ContainerId> assignment;
    assignment.reserve(to_place.size());
    std::vector<Node*> visited{&root};

    // Selection + expansion.
    Node* node = &root;
    size_t depth = 0;
    while (depth < to_place.size()) {
      const InstancePlan& inst = to_place[depth];
      if (!node->expanded) {
        node->untried = legal_actions(state, next_fresh, inst);
        node->expanded = true;
      }
      ContainerId choice = -1;
      if (!node->untried.empty()) {
        const size_t pick = rng.NextBelow(node->untried.size());
        choice = node->untried[pick];
        node->untried.erase(node->untried.begin() + pick);
        auto child = std::make_unique<Node>();
        Node* raw = child.get();
        node->children.emplace(choice, std::move(child));
        apply(&state, &next_fresh, choice, inst);
        assignment.push_back(choice);
        visited.push_back(raw);
        ++depth;
        break;  // Expanded one node; rollout from here.
      }
      // Fully expanded: UCT descent.
      Node* best_child = nullptr;
      double best_uct = -std::numeric_limits<double>::infinity();
      for (const auto& [action, child] : node->children) {
        const double mean = child->value_sum / child->visits;
        const double uct =
            mean + exploration_ * std::sqrt(std::log(node->visits + 1.0) /
                                            child->visits);
        if (uct > best_uct) {
          best_uct = uct;
          best_child = child.get();
          choice = action;
        }
      }
      apply(&state, &next_fresh, choice, inst);
      assignment.push_back(choice);
      node = best_child;
      visited.push_back(node);
      ++depth;
    }

    // Rollout to a complete assignment.
    for (; depth < to_place.size(); ++depth) {
      const InstancePlan& inst = to_place[depth];
      const auto actions = legal_actions(state, next_fresh, inst);
      const ContainerId choice = rollout_choice(state, actions, inst);
      apply(&state, &next_fresh, choice, inst);
      assignment.push_back(choice);
    }

    const PackingPlan plan = build_plan(assignment);
    const PlacementCost cost =
        EvaluatePlacement(*topology_, plan, rates_, previous, weights_);
    if (cost.total < best_total) {
      best_total = cost.total;
      best_cost = cost;
      best_assignment = assignment;
    }
    worst_total = std::max(worst_total, cost.total);

    // Backpropagate the [0, 1]-normalized reward (running min/max keep
    // the UCT exploration term meaningful across cost magnitudes).
    const double span = worst_total - best_total;
    const double reward =
        span > 0 ? (worst_total - cost.total) / span : 1.0;
    for (Node* n : visited) {
      ++n->visits;
      n->value_sum += reward;
    }
  }

  last_cost_ = best_cost;
  return build_plan(best_assignment);
}

}  // namespace packing
}  // namespace heron
