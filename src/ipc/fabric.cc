#include "ipc/fabric.h"

#include <chrono>

#include "common/strings.h"

namespace heron {
namespace ipc {

// -- Pump thread (shared by the wire fabrics) -----------------------------

void Fabric::StartPump() {
  if (pumping_.exchange(true)) return;
  pump_thread_ = std::thread([this] {
    const auto interval = std::chrono::microseconds(
        options_.pump_interval_us > 0 ? options_.pump_interval_us : 200);
    while (pumping_.load(std::memory_order_acquire)) {
      Pump();
      // Sleep-driven cadence rather than fd readiness: the pump drains
      // every readable frame per pass, so the interval bounds latency,
      // not throughput, and it works identically for fd-less fabrics.
      std::this_thread::sleep_for(interval);
    }
    // Final drain so frames sent just before StopPump still deliver.
    Pump();
  });
}

void Fabric::StopPump() {
  if (!pumping_.exchange(false)) return;
  if (pump_thread_.joinable()) pump_thread_.join();
}

// -- InProcessFabric ------------------------------------------------------

Status InProcessFabric::OpenLink(uint64_t key, FrameSink sink) {
  if (sink == nullptr) return Status::InvalidArgument("null frame sink");
  std::lock_guard<std::mutex> lock(mutex_);
  if (!links_.emplace(key, std::move(sink)).second) {
    return Status::AlreadyExists(
        StrFormat("fabric link %llu already open",
                  static_cast<unsigned long long>(key)));
  }
  return Status::OK();
}

Status InProcessFabric::CloseLink(uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (links_.erase(key) == 0) {
    return Status::NotFound("fabric link not open");
  }
  return Status::OK();
}

Status InProcessFabric::SendFrame(uint64_t key,
                                  const serde::FrameHeader& header,
                                  serde::Buffer* payload) {
  // Delivery is the send: the sink runs synchronously under the fabric
  // lock (exactly the channel push the pre-fabric transport performed
  // under its registry lock). The payload moves pointer-wise — the header
  // is never serialized and the bytes are never copied.
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = links_.find(key);
  if (it == links_.end()) return Status::NotFound("fabric link not open");
  const Status st = it->second(header, std::move(*payload));
  if (st.ok()) {
    ++stats_.frames_sent;
    ++stats_.frames_delivered;
  } else if (st.IsResourceExhausted()) {
    ++stats_.sink_stalls;
  }
  return st;
}

FabricStats InProcessFabric::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

// -- Factory --------------------------------------------------------------

Result<std::unique_ptr<Fabric>> MakeFabric(const std::string& mode,
                                           const Fabric::Options& options) {
  std::unique_ptr<Fabric> fabric;
  if (mode == "in-process" || mode == "inprocess" || mode.empty()) {
    fabric = std::make_unique<InProcessFabric>(options);
  } else if (mode == "socket") {
    fabric = std::make_unique<SocketFabric>(options);
  } else if (mode == "shm") {
    fabric = std::make_unique<ShmRingFabric>(options);
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown transport mode '%s' "
                  "(want in-process, socket or shm)",
                  mode.c_str()));
  }
  return fabric;
}

}  // namespace ipc
}  // namespace heron
