// End-to-end integration tests: real WordCount topologies on a
// LocalCluster — live Stream Managers, Heron Instances and acking, on
// threads, through the full §II submission pipeline.

#include "runtime/local_cluster.h"

#include <gtest/gtest.h>

#include "common/logging.h"
#include "workloads/word_count.h"

namespace heron {
namespace runtime {
namespace {

class LocalClusterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { Logging::SetLevel(LogLevel::kWarning); }

  Config BaseConfig() {
    Config config;
    config.SetInt(config_keys::kNumContainersHint, 2);
    return config;
  }
};

TEST_F(LocalClusterTest, WordCountWithoutAcksDeliversTuples) {
  LocalCluster cluster(BaseConfig());
  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 1000;
  spout_options.words_per_call = 8;
  auto topology = workloads::BuildWordCountTopology("wc-noack", 2, 2,
                                                    spout_options);
  ASSERT_TRUE(topology.ok()) << topology.status().ToString();
  ASSERT_TRUE(cluster.Submit(*topology).ok());

  // Tuples must flow from spouts through the SMGRs into the bolts.
  EXPECT_TRUE(
      cluster.WaitForCounter("instance.executed", 10000, 30000).ok());
  EXPECT_GE(cluster.SumCounter("instance.emitted"), 10000u);
  ASSERT_TRUE(cluster.Kill().ok());
}

TEST_F(LocalClusterTest, WordCountWithAcksCompletesTupleTrees) {
  Config config = BaseConfig();
  config.SetBool(config_keys::kAckingEnabled, true);
  config.SetInt(config_keys::kMaxSpoutPending, 1000);
  LocalCluster cluster(config);

  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 1000;
  spout_options.words_per_call = 4;
  auto topology = workloads::BuildWordCountTopology("wc-ack", 2, 2,
                                                    spout_options);
  ASSERT_TRUE(topology.ok()) << topology.status().ToString();
  ASSERT_TRUE(cluster.Submit(*topology).ok());

  // Acks must travel back: bolt → SMGR tracker → spout.
  EXPECT_TRUE(cluster.WaitForCounter("instance.acked", 5000, 30000).ok());
  EXPECT_EQ(cluster.SumCounter("instance.failed"), 0u);
  // End-to-end latency was measured for completed trees.
  EXPECT_GT(cluster.CompleteLatencyQuantile(0.5), 0u);
  ASSERT_TRUE(cluster.Kill().ok());
}

TEST_F(LocalClusterTest, MaxSpoutPendingBoundsInFlightTuples) {
  Config config = BaseConfig();
  config.SetBool(config_keys::kAckingEnabled, true);
  config.SetInt(config_keys::kMaxSpoutPending, 50);
  LocalCluster cluster(config);

  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 100;
  auto topology =
      workloads::BuildWordCountTopology("wc-msp", 1, 1, spout_options);
  ASSERT_TRUE(topology.ok());
  ASSERT_TRUE(cluster.Submit(*topology).ok());
  ASSERT_TRUE(cluster.WaitForCounter("instance.acked", 500, 30000).ok());

  // The §V-B invariant: pending never exceeds the configured cap.
  Container* c0 = cluster.GetContainer(0);
  ASSERT_NE(c0, nullptr);
  for (int probe = 0; probe < 50; ++probe) {
    for (const auto& inst : c0->instances()) {
      EXPECT_LE(inst->pending_count(), 50);
    }
  }
  ASSERT_TRUE(cluster.Kill().ok());
}

TEST_F(LocalClusterTest, ScaleUpAddsInstancesAndKeepsFlowing) {
  LocalCluster cluster(BaseConfig());
  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 500;
  spout_options.words_per_call = 4;
  auto topology =
      workloads::BuildWordCountTopology("wc-scale", 1, 1, spout_options);
  ASSERT_TRUE(topology.ok());
  ASSERT_TRUE(cluster.Submit(*topology).ok());
  ASSERT_TRUE(cluster.WaitForCounter("instance.executed", 1000, 30000).ok());

  // Scale the bolts 1 → 3 (§IV-A repack + §IV-B onUpdate).
  ASSERT_TRUE(cluster.Scale("count", 3).ok()) << "scale failed";
  EXPECT_EQ(cluster.current_packing_plan().TasksOfComponent("count").size(),
            3u);

  const uint64_t executed_after_scale =
      cluster.SumCounter("instance.executed");
  EXPECT_TRUE(cluster
                  .WaitForCounter("instance.executed",
                                  executed_after_scale + 2000, 30000)
                  .ok());
  ASSERT_TRUE(cluster.Kill().ok());
}

TEST_F(LocalClusterTest, RestartContainerRecovers) {
  LocalCluster cluster(BaseConfig());
  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 500;
  spout_options.words_per_call = 4;
  auto topology =
      workloads::BuildWordCountTopology("wc-restart", 2, 2, spout_options);
  ASSERT_TRUE(topology.ok());
  ASSERT_TRUE(cluster.Submit(*topology).ok());
  ASSERT_TRUE(cluster.WaitForCounter("instance.executed", 1000, 30000).ok());

  ASSERT_TRUE(cluster.RestartContainer(1).ok());
  const uint64_t executed = cluster.SumCounter("instance.executed");
  EXPECT_TRUE(
      cluster.WaitForCounter("instance.executed", executed + 1000, 30000)
          .ok());
  ASSERT_TRUE(cluster.Kill().ok());
}

TEST_F(LocalClusterTest, KillStopsEverything) {
  LocalCluster cluster(BaseConfig());
  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 100;
  auto topology =
      workloads::BuildWordCountTopology("wc-kill", 1, 1, spout_options);
  ASSERT_TRUE(topology.ok());
  ASSERT_TRUE(cluster.Submit(*topology).ok());
  ASSERT_TRUE(cluster.Kill().ok());
  EXPECT_EQ(cluster.num_live_containers(), 0);
  EXPECT_FALSE(cluster.running());
  // Re-submitting on the same cluster works after a kill.
  auto again =
      workloads::BuildWordCountTopology("wc-kill-2", 1, 1, spout_options);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(cluster.Submit(*again).ok());
  EXPECT_TRUE(cluster.Kill().ok());
}

}  // namespace
}  // namespace runtime
}  // namespace heron
