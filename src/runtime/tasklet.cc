#include "runtime/tasklet.h"

#include <algorithm>

#include "common/logging.h"

namespace heron {
namespace runtime {
namespace {

/// One spin-loop beat that tells the core (not the OS) we are waiting.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  asm volatile("pause");
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

}  // namespace

Result<IdlePolicy> ParseIdlePolicy(std::string_view text) {
  if (text == "condvar-park") return IdlePolicy::kCondvarPark;
  if (text == "adaptive-spin") return IdlePolicy::kAdaptiveSpin;
  if (text == "busy-spin") return IdlePolicy::kBusySpin;
  return Status::InvalidArgument("unknown idle policy: '" + std::string(text) +
                                 "' (condvar-park | adaptive-spin | "
                                 "busy-spin)");
}

const char* IdlePolicyName(IdlePolicy policy) {
  switch (policy) {
    case IdlePolicy::kCondvarPark:
      return "condvar-park";
    case IdlePolicy::kAdaptiveSpin:
      return "adaptive-spin";
    case IdlePolicy::kBusySpin:
      return "busy-spin";
  }
  return "unknown";
}

/// Pool-owned per-tasklet state. `mu` is the drive fence: held for every
/// Drive() of this tasklet and taken once by Retire(), so "retired
/// observed under mu" means "no driver will ever touch the loop again".
class TaskletPool::Handle {
 public:
  Handle(EventLoop* loop, const TaskletOptions& options, const Clock* clock,
         int32_t ord)
      : tasklet(loop, options, clock), ord(ord) {}

  Tasklet tasklet;
  const int32_t ord;  ///< Pool registration ordinal (slice-ring identity).
  std::mutex mu;
  std::atomic<bool> retired{false};
  bool finished = false;  ///< Loop reached Done(); guarded by mu.
};

/// One scheduling thread (or inline stepper): round-robin drives its
/// member tasklets, idles per the pool policy.
class TaskletPool::Worker {
 public:
  Worker(const Options* options, const Clock* clock, size_t index)
      : options_(options), clock_(clock), index_(index) {}

  void Add(std::shared_ptr<Handle> handle) {
    handle->tasklet.loop()->wakeup()->Chain(&wakeup_);
    {
      std::lock_guard<std::mutex> lock(list_mu_);
      members_.push_back(std::move(handle));
    }
    wakeup_.Notify();
  }

  void Start() {
    thread_ = std::thread([this] { Run(); });
  }

  void RequestStop() {
    stop_.store(true, std::memory_order_release);
    wakeup_.Notify();
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  /// One drive pass over a snapshot of the member list; prunes retired
  /// handles. Returns whether any tasklet progressed.
  bool Pass() {
    scratch_.clear();
    {
      std::lock_guard<std::mutex> lock(list_mu_);
      members_.erase(
          std::remove_if(members_.begin(), members_.end(),
                         [](const std::shared_ptr<Handle>& h) {
                           return h->retired.load(std::memory_order_acquire);
                         }),
          members_.end());
      scratch_ = members_;
    }
    bool did_work = false;
    observability::SliceRing* ring = options_->slice_ring;
    for (const std::shared_ptr<Handle>& handle : scratch_) {
      std::lock_guard<std::mutex> drive(handle->mu);
      if (handle->retired.load(std::memory_order_acquire) || handle->finished) {
        continue;
      }
      if (ring != nullptr) {
        // Timeline slice: only progressing drives are recorded — idle
        // passes happen thousands of times a second and carry no signal.
        const int64_t t0 = clock_->NowNanos();
        if (handle->tasklet.Drive()) {
          ring->Record(static_cast<int32_t>(index_), handle->ord, t0,
                       clock_->NowNanos() - t0);
          did_work = true;
        }
      } else if (handle->tasklet.Drive()) {
        did_work = true;
      }
      if (handle->tasklet.Done()) {
        // Mirror Run()'s exit: the loop's sources closed and drained (or
        // Stop was requested) while pooled — run its shutdown hooks here
        // on the driving thread. Halted loops no-op this.
        handle->tasklet.loop()->Shutdown();
        handle->finished = true;
      }
    }
    return did_work;
  }

  ipc::Wakeup* wakeup() { return &wakeup_; }

  /// Worker wall-time spent inside drive passes (profiling; 0 when off).
  int64_t busy_nanos() const {
    return busy_nanos_.load(std::memory_order_relaxed);
  }
  /// When Run() began, -1 before Start (occupancy denominator).
  int64_t started_nanos() const {
    return started_nanos_.load(std::memory_order_relaxed);
  }

 private:
  void Run() {
    wakeup_.SetOwnerThread();
    const bool profile = options_->profile;
    started_nanos_.store(clock_->NowNanos(), std::memory_order_relaxed);
    int64_t spin_start = -1;  // -1 = not currently in an idle spin window.
    while (!stop_.load(std::memory_order_acquire)) {
      bool did_work;
      if (profile) {
        const int64_t t0 = clock_->NowNanos();
        did_work = Pass();
        busy_nanos_.fetch_add(
            std::max<int64_t>(clock_->NowNanos() - t0, 0),
            std::memory_order_relaxed);
      } else {
        did_work = Pass();
      }
      if (stop_.load(std::memory_order_acquire)) break;
      if (did_work) {
        spin_start = -1;
        continue;
      }
      // A member latch left pending means work was announced during or
      // after the pass (coalesced away from the worker latch): re-drive
      // instead of parking. Polling also re-arms the latch's forwarding.
      if (PollMembers()) {
        spin_start = -1;
        continue;
      }
      switch (options_->idle_policy) {
        case IdlePolicy::kBusySpin:
          CpuRelax();
          continue;
        case IdlePolicy::kAdaptiveSpin: {
          const int64_t now = clock_->NowNanos();
          if (spin_start < 0) spin_start = now;
          if (now - spin_start < options_->spin_window_nanos) {
            CpuRelax();
            continue;
          }
          break;  // Spin window exhausted: fall through to the park.
        }
        case IdlePolicy::kCondvarPark:
          break;
      }
      Park();
      spin_start = -1;
    }
  }

  // Every member-loop access below (Poll, deadline reads) happens under
  // the handle's drive mutex with `retired` re-checked: the loop object
  // belongs to the module and may be destroyed any time after Retire()
  // returns, so the fence must cover more than just Drive().
  bool PollMembers() {
    bool pending = false;
    for (const std::shared_ptr<Handle>& handle : scratch_) {
      std::lock_guard<std::mutex> fence(handle->mu);
      if (handle->retired.load(std::memory_order_acquire)) continue;
      if (handle->tasklet.loop()->wakeup()->Poll()) pending = true;
    }
    return pending;
  }

  void Park() {
    // Bound the park by the members' timer/service deadlines, and by the
    // idle backoff when any member has idle workers (their external state —
    // back-pressure flags, pending windows — changes without a notify).
    const int64_t now = clock_->NowNanos();
    int64_t deadline = EventLoop::kNoDeadline;
    for (const std::shared_ptr<Handle>& handle : scratch_) {
      std::lock_guard<std::mutex> fence(handle->mu);
      if (handle->retired.load(std::memory_order_acquire) || handle->finished) {
        continue;
      }
      EventLoop* loop = handle->tasklet.loop();
      deadline = std::min(deadline, loop->NextWakeDeadlineNanos());
      if (loop->has_idle_workers()) {
        deadline = std::min(deadline, now + loop->idle_backoff_nanos());
      }
    }
    int64_t park = options_->max_park_nanos;
    if (deadline != EventLoop::kNoDeadline) {
      park = std::min<int64_t>(park, deadline - now);
    }
    if (park > 0) wakeup_.WaitFor(park);
  }

  const Options* options_;
  const Clock* clock_;
  size_t index_;

  ipc::Wakeup wakeup_;
  std::atomic<int64_t> busy_nanos_{0};
  std::atomic<int64_t> started_nanos_{-1};
  std::mutex list_mu_;
  std::vector<std::shared_ptr<Handle>> members_;  ///< Guarded by list_mu_.
  std::vector<std::shared_ptr<Handle>> scratch_;  ///< Worker-thread only.
  std::thread thread_;
  std::atomic<bool> stop_{false};
};

TaskletPool::TaskletPool(const Options& options, const Clock* clock)
    : options_(options), clock_(clock) {
  size_t n = options_.workers;
  if (n == 0) {
    n = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>(&options_, clock_, i));
  }
}

TaskletPool::~TaskletPool() { Stop(); }

TaskletPool::Handle* TaskletPool::Add(EventLoop* loop) {
  std::shared_ptr<Handle> handle;
  Handle* raw = nullptr;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    handle = std::make_shared<Handle>(loop, options_.tasklet, clock_,
                                      static_cast<int32_t>(names_.size()));
    raw = handle.get();
    names_.push_back(loop->name());
    registry_.emplace(raw, handle);
  }
  const size_t slot =
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  workers_[slot]->Add(std::move(handle));
  return raw;
}

void TaskletPool::Retire(Handle* handle) {
  if (handle == nullptr) return;
  // Claim ownership from the registry first: once `retired` flips, the
  // worker prunes its shared_ptrs at the next pass, so without this hold
  // the handle could be freed between the flip and the unchain below.
  // A second Retire of the same pointer finds the registry empty and
  // returns without ever dereferencing (possibly freed) memory.
  std::shared_ptr<Handle> keep;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    const auto it = registry_.find(handle);
    if (it == registry_.end()) return;
    keep = std::move(it->second);
    registry_.erase(it);
  }
  if (keep->retired.exchange(true, std::memory_order_acq_rel)) return;
  // Fence: wait out any in-flight Drive(). After this, workers observe
  // `retired` under mu before touching the tasklet, so the loop is ours.
  { std::lock_guard<std::mutex> fence(keep->mu); }
  keep->tasklet.loop()->wakeup()->Chain(nullptr);
}

void TaskletPool::Start() {
  if (started_ || !options_.threaded) return;
  started_ = true;
  for (auto& worker : workers_) worker->Start();
}

void TaskletPool::Stop() {
  if (!started_) return;
  started_ = false;
  for (auto& worker : workers_) worker->RequestStop();
  for (auto& worker : workers_) worker->Join();
}

bool TaskletPool::DriveAll() {
  bool did_work = false;
  for (auto& worker : workers_) {
    if (worker->Pass()) did_work = true;
  }
  return did_work;
}

TaskletPool::SchedulerStats TaskletPool::CollectStats(int64_t now_nanos) const {
  SchedulerStats stats;
  stats.workers = workers_.size();
  for (const auto& worker : workers_) {
    stats.busy_nanos += worker->busy_nanos();
    const int64_t started = worker->started_nanos();
    if (started >= 0 && now_nanos > started) {
      stats.wall_nanos += now_nanos - started;
    }
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& [raw, handle] : registry_) {
    // The drive mutex is the established fence: holding it briefly means
    // no Drive() is mutating the tasklet's counters while we read them.
    std::lock_guard<std::mutex> fence(handle->mu);
    ++stats.tasklets;
    stats.slices += handle->tasklet.slices();
    stats.overruns += handle->tasklet.overruns();
    stats.budget_sum += handle->tasklet.budget();
    stats.cost_ewma_sum += handle->tasklet.cost_ewma_nanos();
  }
  return stats;
}

std::vector<std::string> TaskletPool::TaskletNames() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return names_;
}

}  // namespace runtime
}  // namespace heron
