# Empty compiler generated dependencies file for pluggable_modules.
# This may be replaced when dependencies are built.
