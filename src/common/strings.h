#ifndef HERON_COMMON_STRINGS_H_
#define HERON_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace heron {

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// \brief Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view input, char delim);

/// \brief Joins `parts` with `delim`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view delim);

/// \brief True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// \brief Strips leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// \brief Parses integers/doubles/bools with full-string validation.
/// Returns false (leaving *out untouched) on any trailing garbage.
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseDouble(std::string_view s, double* out);
bool ParseBool(std::string_view s, bool* out);

}  // namespace heron

#endif  // HERON_COMMON_STRINGS_H_
