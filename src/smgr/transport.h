#ifndef HERON_SMGR_TRANSPORT_H_
#define HERON_SMGR_TRANSPORT_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "ipc/channel.h"
#include "ipc/fabric.h"
#include "proto/messages.h"
#include "serde/message_pool.h"

namespace heron {
namespace smgr {

using EnvelopeChannel = ipc::Channel<proto::Envelope>;

/// \brief The topology's endpoint directory and its wire: which fabric
/// link reaches each Heron Instance and each container's Stream Manager.
///
/// Stands in for the host:port registry Heron keeps in the State Manager
/// plus the connected sockets. Components register at startup and
/// unregister on teardown (container restart re-registers fresh
/// channels); each registration opens a link on the pluggable
/// ipc::Fabric selected by `heron.transport.mode`:
///
///  - "in-process" — frames hand the payload buffer through by move,
///    synchronously (today's channel semantics, the step-mode baseline);
///  - "socket"     — frames serialize onto a unix-domain socketpair with
///    scatter-gather writev and are reassembled by a pump;
///  - "shm"        — frames ride a shared-memory byte ring.
///
/// Whatever the wire, the payload crosses it as opaque bytes under a
/// serde::FrameHeader built from Envelope metadata (type, dest_task,
/// trace id) — receivers rebuild the Envelope from the header alone, so
/// forwarding paths never parse payloads (the zero-copy invariant).
///
/// Also owns the shared BufferPool through which transport buffers are
/// recycled across senders and receivers (§V-A optimization 1 — when
/// pooling is disabled, every Acquire is a fresh allocation, the naive
/// baseline).
class Transport {
 public:
  enum class Mode { kInProcess, kSocket, kShmRing };

  struct Options {
    Mode mode = Mode::kInProcess;
    /// Step mode: deliver wire frames synchronously inside TrySend (no
    /// pump thread), so wire modes are observably identical to
    /// in-process under a single-stepped reactor.
    bool inline_pump = false;
    /// Per-link wire backlog cap (socket spill buffer / shm ring bytes).
    size_t link_capacity_bytes = 1u << 20;
    /// Background pump cadence for threaded wire modes.
    int64_t pump_interval_us = 200;
  };

  /// A send destination in the directory: a task's instance channel or a
  /// container's SMGR channel. Senders that may outlive the receiver
  /// (the SMGR's park/retry queue) hold Endpoints, never raw channel
  /// pointers: a torn-down endpoint cannot be dereferenced after free,
  /// and a re-registered one (container restart) receives its backlog on
  /// the fresh channel.
  struct Endpoint {
    enum class Kind { kInstance, kSmgr };
    Kind kind = Kind::kInstance;
    int32_t id = -1;
    bool operator<(const Endpoint& o) const {
      return kind != o.kind ? kind < o.kind : id < o.id;
    }
    bool operator==(const Endpoint& o) const {
      return kind == o.kind && id == o.id;
    }
  };
  static Endpoint InstanceEndpoint(TaskId task) {
    return Endpoint{Endpoint::Kind::kInstance, task};
  }
  static Endpoint SmgrEndpoint(ContainerId container) {
    return Endpoint{Endpoint::Kind::kSmgr, container};
  }

  /// A resolved send path: the destination's inbound channel (for the
  /// wire-mode window probe) plus its fabric link. Valid only while the
  /// endpoint stays registered — cache it across sends only together
  /// with the generation() observed at resolution (see FlushScope).
  struct Route {
    EnvelopeChannel* channel = nullptr;
    uint64_t link_key = 0;
  };

  /// \param pooling_enabled  buffer recycling on/off (ablation toggle)
  explicit Transport(bool pooling_enabled = true);
  ~Transport();

  /// Selects the wire. Must run before any endpoint registers (the links
  /// already opened on the old fabric cannot migrate); starts the pump
  /// thread for threaded wire modes. "in-process" + inline_pump=false is
  /// the default state of a fresh Transport.
  Status Configure(const Options& options);

  /// "in-process" / "socket" / "shm" -> Mode; anything else is an error.
  static Result<Mode> ParseMode(std::string_view name);
  static const char* ModeName(Mode mode);
  Mode mode() const;

  Status RegisterInstance(TaskId task, EnvelopeChannel* channel);
  Status UnregisterInstance(TaskId task);
  Status RegisterSmgr(ContainerId container, EnvelopeChannel* channel);
  Status UnregisterSmgr(ContainerId container);

  /// Non-blocking send to an endpoint, performed under the registry lock
  /// so a concurrent Unregister + channel destruction on another thread
  /// cannot free the channel mid-send. Returns kNotFound when the
  /// endpoint is not (currently) registered; kResourceExhausted when the
  /// destination is full (in-process: channel full; wire modes: window
  /// probe or wire backlog full); kCancelled when the destination
  /// closed. The envelope's payload is consumed only on OK — on failure
  /// it is intact for the caller to park and retry.
  Status TrySend(const Endpoint& dest, proto::Envelope* env);

  /// \brief One registry-lock hold spanning a whole retry pass.
  ///
  /// FlushRetries used to pay a lock-guarded directory lookup per parked
  /// envelope; a FlushScope takes the lock once, lets the caller resolve
  /// each destination once (caching the Route in its per-destination
  /// backlog entry, keyed by generation()), and sends every envelope
  /// over resolved routes without relocking. Do not call any other
  /// Transport method while a scope is open (the lock is held).
  class FlushScope {
   public:
    explicit FlushScope(Transport* transport)
        : transport_(transport), lock_(transport->mutex_) {}

    /// Registration epoch: bumps on every (un)register. A cached Route
    /// resolved under an older generation must be re-resolved.
    uint64_t generation() const { return transport_->generation_; }

    /// Resolves `dest` under the held lock; false when not registered.
    bool Resolve(const Endpoint& dest, Route* route) const {
      return transport_->ResolveLocked(dest, route);
    }

    /// Same contract as Transport::TrySend, minus the per-call lock.
    Status TrySend(const Route& route, proto::Envelope* env) {
      return transport_->SendOnRouteLocked(route, env);
    }

   private:
    Transport* transport_;
    std::lock_guard<std::mutex> lock_;
  };

  /// nullptr when the endpoint is not (currently) registered — e.g. its
  /// container is being restarted; senders retry.
  EnvelopeChannel* InstanceChannel(TaskId task) const;
  EnvelopeChannel* SmgrChannel(ContainerId container) const;

  /// Snapshot of every container whose SMGR is currently registered.
  /// The back-pressure control plane broadcasts to this set (rather than
  /// the plan's container list) so peers that are mid-restart are simply
  /// skipped instead of blackholing control envelopes.
  std::vector<ContainerId> RegisteredSmgrs() const;

  serde::BufferPool* buffer_pool() { return &buffer_pool_; }
  ipc::Fabric* fabric() { return fabric_.get(); }
  ipc::FabricStats fabric_stats() const { return fabric_->stats(); }

 private:
  static uint64_t LinkKey(const Endpoint& dest) {
    return (static_cast<uint64_t>(dest.kind == Endpoint::Kind::kSmgr) << 32) |
           static_cast<uint32_t>(dest.id);
  }

  /// Opens `dest`'s fabric link with a sink that rebuilds the Envelope
  /// from the frame header and pushes it into `channel`.
  Status OpenLinkLocked(const Endpoint& dest, EnvelopeChannel* channel);
  bool ResolveLocked(const Endpoint& dest, Route* route) const;
  Status SendOnRouteLocked(const Route& route, proto::Envelope* env);

  mutable std::mutex mutex_;
  Options options_;
  std::map<TaskId, EnvelopeChannel*> instances_;
  std::map<ContainerId, EnvelopeChannel*> smgrs_;
  /// Registration epoch for cached-Route invalidation (see FlushScope).
  uint64_t generation_ = 0;
  serde::BufferPool buffer_pool_;
  std::unique_ptr<ipc::Fabric> fabric_;
  /// True for wire modes (socket/shm): delivery is asynchronous, so
  /// TrySend window-probes the destination channel before sending.
  bool wire_mode_ = false;
};

}  // namespace smgr
}  // namespace heron

#endif  // HERON_SMGR_TRANSPORT_H_
