#include "smgr/transport.h"

#include "common/strings.h"

namespace heron {
namespace smgr {

Status Transport::RegisterInstance(TaskId task, EnvelopeChannel* channel) {
  if (channel == nullptr) {
    return Status::InvalidArgument("null instance channel");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (!instances_.emplace(task, channel).second) {
    return Status::AlreadyExists(
        StrFormat("task %d already registered", task));
  }
  return Status::OK();
}

Status Transport::UnregisterInstance(TaskId task) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (instances_.erase(task) == 0) {
    return Status::NotFound(StrFormat("task %d not registered", task));
  }
  return Status::OK();
}

Status Transport::RegisterSmgr(ContainerId container,
                               EnvelopeChannel* channel) {
  if (channel == nullptr) {
    return Status::InvalidArgument("null smgr channel");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (!smgrs_.emplace(container, channel).second) {
    return Status::AlreadyExists(
        StrFormat("container %d smgr already registered", container));
  }
  return Status::OK();
}

Status Transport::UnregisterSmgr(ContainerId container) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (smgrs_.erase(container) == 0) {
    return Status::NotFound(
        StrFormat("container %d smgr not registered", container));
  }
  return Status::OK();
}

EnvelopeChannel* Transport::InstanceChannel(TaskId task) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = instances_.find(task);
  return it == instances_.end() ? nullptr : it->second;
}

EnvelopeChannel* Transport::SmgrChannel(ContainerId container) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = smgrs_.find(container);
  return it == smgrs_.end() ? nullptr : it->second;
}

}  // namespace smgr
}  // namespace heron
