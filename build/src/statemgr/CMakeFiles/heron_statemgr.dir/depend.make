# Empty dependencies file for heron_statemgr.
# This may be replaced when dependencies are built.
