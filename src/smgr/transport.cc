#include "smgr/transport.h"

#include "common/strings.h"

namespace heron {
namespace smgr {

Transport::Transport(bool pooling_enabled)
    : buffer_pool_(pooling_enabled, /*max_idle=*/65536) {
  ipc::Fabric::Options fabric_options;
  fabric_options.pool = &buffer_pool_;
  fabric_ = std::make_unique<ipc::InProcessFabric>(fabric_options);
}

Transport::~Transport() {
  if (fabric_ != nullptr) fabric_->StopPump();
}

Result<Transport::Mode> Transport::ParseMode(std::string_view name) {
  if (name.empty() || name == "in-process" || name == "inprocess") {
    return Mode::kInProcess;
  }
  if (name == "socket") return Mode::kSocket;
  if (name == "shm") return Mode::kShmRing;
  return Status::InvalidArgument(
      StrFormat("unknown transport mode '%.*s' "
                "(want in-process, socket or shm)",
                static_cast<int>(name.size()), name.data()));
}

const char* Transport::ModeName(Mode mode) {
  switch (mode) {
    case Mode::kInProcess: return "in-process";
    case Mode::kSocket: return "socket";
    case Mode::kShmRing: return "shm";
  }
  return "in-process";
}

Transport::Mode Transport::mode() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return options_.mode;
}

Status Transport::Configure(const Options& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!instances_.empty() || !smgrs_.empty()) {
    return Status::FailedPrecondition(
        "transport mode must be configured before endpoints register");
  }
  ipc::Fabric::Options fabric_options;
  fabric_options.pool = &buffer_pool_;
  fabric_options.link_capacity_bytes = options.link_capacity_bytes;
  fabric_options.pump_interval_us = options.pump_interval_us;
  HERON_ASSIGN_OR_RETURN(
      auto fabric, ipc::MakeFabric(ModeName(options.mode), fabric_options));
  if (fabric_ != nullptr) fabric_->StopPump();
  fabric_ = std::move(fabric);
  options_ = options;
  wire_mode_ = options.mode != Mode::kInProcess;
  // Threaded wire modes need the background pump; step mode pumps inline
  // after every send instead (deterministic single-threaded delivery).
  if (wire_mode_ && !options_.inline_pump) fabric_->StartPump();
  return Status::OK();
}

Status Transport::OpenLinkLocked(const Endpoint& dest,
                                 EnvelopeChannel* channel) {
  // The sink rebuilds the Envelope from the frame header alone — type,
  // destination task and trace id all ride the 20 header bytes, so the
  // payload is never inspected between serialization points.
  serde::BufferPool* pool = &buffer_pool_;
  return fabric_->OpenLink(
      LinkKey(dest),
      [channel, pool](const serde::FrameHeader& header,
                      serde::Buffer&& payload) {
        proto::Envelope env(static_cast<proto::MessageType>(header.type),
                            std::move(payload));
        env.trace_id = header.trace_id;
        if (header.dest_kind == 1 || header.dest_kind == 2) {
          env.dest_task = header.dest;
        }
        Status st = channel->TrySend(std::move(env));
        if (st.IsResourceExhausted()) {
          // Receiver full: the fabric retains the frame and retries, so
          // hand the payload back through the rvalue (sink contract).
          payload = std::move(env.payload);
        } else if (!st.ok()) {
          // Closed channel: the frame dies here; recycle its buffer.
          pool->Release(std::move(env.payload));
        }
        return st;
      });
}

Status Transport::RegisterInstance(TaskId task, EnvelopeChannel* channel) {
  if (channel == nullptr) {
    return Status::InvalidArgument("null instance channel");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (instances_.count(task) != 0) {
    return Status::AlreadyExists(
        StrFormat("task %d already registered", task));
  }
  HERON_RETURN_NOT_OK(OpenLinkLocked(InstanceEndpoint(task), channel));
  instances_.emplace(task, channel);
  ++generation_;
  return Status::OK();
}

Status Transport::UnregisterInstance(TaskId task) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (instances_.erase(task) == 0) {
    return Status::NotFound(StrFormat("task %d not registered", task));
  }
  fabric_->CloseLink(LinkKey(InstanceEndpoint(task))).ok();
  ++generation_;
  return Status::OK();
}

Status Transport::RegisterSmgr(ContainerId container,
                               EnvelopeChannel* channel) {
  if (channel == nullptr) {
    return Status::InvalidArgument("null smgr channel");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (smgrs_.count(container) != 0) {
    return Status::AlreadyExists(
        StrFormat("container %d smgr already registered", container));
  }
  HERON_RETURN_NOT_OK(OpenLinkLocked(SmgrEndpoint(container), channel));
  smgrs_.emplace(container, channel);
  ++generation_;
  return Status::OK();
}

Status Transport::UnregisterSmgr(ContainerId container) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (smgrs_.erase(container) == 0) {
    return Status::NotFound(
        StrFormat("container %d smgr not registered", container));
  }
  fabric_->CloseLink(LinkKey(SmgrEndpoint(container))).ok();
  ++generation_;
  return Status::OK();
}

bool Transport::ResolveLocked(const Endpoint& dest, Route* route) const {
  EnvelopeChannel* channel = nullptr;
  if (dest.kind == Endpoint::Kind::kInstance) {
    const auto it = instances_.find(dest.id);
    if (it != instances_.end()) channel = it->second;
  } else {
    const auto it = smgrs_.find(dest.id);
    if (it != smgrs_.end()) channel = it->second;
  }
  if (channel == nullptr) return false;
  route->channel = channel;
  route->link_key = LinkKey(dest);
  return true;
}

Status Transport::SendOnRouteLocked(const Route& route,
                                    proto::Envelope* env) {
  if (wire_mode_) {
    // Window probe: wire delivery is asynchronous, so a full or closed
    // destination would surface only at the pump — after the sender
    // already counted the frame delivered. Refusing here mirrors the
    // in-process channel's synchronous kResourceExhausted/kCancelled
    // exactly, which is what keeps park/retry (and therefore the whole
    // backpressure protocol) byte-identical across transport modes.
    if (route.channel->closed()) {
      return Status::Cancelled("channel closed");
    }
    if (route.channel->size() >= route.channel->capacity()) {
      return Status::ResourceExhausted("destination window full");
    }
  }
  serde::FrameHeader header;
  header.type = static_cast<uint8_t>(env->type);
  header.trace_id = env->trace_id;
  header.payload_len = static_cast<uint32_t>(env->payload.size());
  if (env->type == proto::MessageType::kCheckpointBarrier) {
    // Barriers get their own frame kind: dest may legitimately be -1 (a
    // fan-out request), which dest_kind 1 could not express on the wire.
    header.dest_kind = 2;
    header.dest = env->dest_task;
  } else if (env->dest_task >= 0) {
    header.dest_kind = 1;
    header.dest = env->dest_task;
  }
  HERON_RETURN_NOT_OK(fabric_->SendFrame(route.link_key, header,
                                         &env->payload));
  if (wire_mode_) {
    // The wire copied the payload; recycle the buffer so steady-state
    // wire transport allocates nothing.
    buffer_pool_.Release(std::move(env->payload));
    env->payload = serde::Buffer();
    if (options_.inline_pump) fabric_->PumpLink(route.link_key);
  }
  return Status::OK();
}

Status Transport::TrySend(const Endpoint& dest, proto::Envelope* env) {
  // The whole send runs under the registry lock: once Unregister returns
  // on another thread, no sender can still be inside TrySend on the
  // removed channel, so the owner may destroy it. TrySend never blocks,
  // so the critical section is a bounded queue push (in-process) or a
  // nonblocking wire write.
  std::lock_guard<std::mutex> lock(mutex_);
  Route route;
  if (!ResolveLocked(dest, &route)) {
    return Status::NotFound("endpoint not registered");
  }
  return SendOnRouteLocked(route, env);
}

EnvelopeChannel* Transport::InstanceChannel(TaskId task) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = instances_.find(task);
  return it == instances_.end() ? nullptr : it->second;
}

EnvelopeChannel* Transport::SmgrChannel(ContainerId container) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = smgrs_.find(container);
  return it == smgrs_.end() ? nullptr : it->second;
}

std::vector<ContainerId> Transport::RegisteredSmgrs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ContainerId> out;
  out.reserve(smgrs_.size());
  for (const auto& [container, _] : smgrs_) {
    out.push_back(container);
  }
  return out;
}

}  // namespace smgr
}  // namespace heron
