#!/usr/bin/env bash
# ThreadSanitizer ctest lane.
#
# Configures a dedicated build tree with -DHERON_SANITIZE=thread, builds
# every test target and runs the full ctest suite under TSan. The reactor
# handoff (EventLoop wakeup, ipc::Channel cross-thread send/recv) and the
# back-pressure throttle (an atomic read by spout idle workers on another
# thread) are exactly the code TSan is good at: run this lane after any
# change to src/runtime, src/ipc or src/smgr.
#
# Usage:
#   scripts/tsan_lane.sh [build-dir] [-- extra ctest args]
# Examples:
#   scripts/tsan_lane.sh                       # build-tsan, full suite
#   scripts/tsan_lane.sh build-tsan -- -R smgr # only the smgr tests

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="build-tsan"
if [[ $# -gt 0 && "$1" != "--" ]]; then
  BUILD_DIR="$1"
  shift
fi
if [[ $# -gt 0 && "$1" == "--" ]]; then
  shift
fi

GENERATOR_ARGS=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR_ARGS=(-G Ninja)
fi

cmake -B "${BUILD_DIR}" -S . "${GENERATOR_ARGS[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHERON_SANITIZE=thread
cmake --build "${BUILD_DIR}" --parallel

# second_deadlock_stack: the reactor parks on a futex; richer reports when
# a test deadlocks under the sanitizer's scheduler perturbation.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
exec ctest --test-dir "${BUILD_DIR}" --output-on-failure "$@"
