#ifndef HERON_SERDE_WIRE_H_
#define HERON_SERDE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace heron {
namespace serde {

/// Serialized bytes are carried in std::string buffers; views are
/// std::string_view. This keeps the transport layer allocation-friendly
/// (buffers are recycled through BufferPool) and zero-copy on the read
/// path (decoders never copy payload bytes).
using Buffer = std::string;
using BytesView = std::string_view;

/// \brief Wire types, following the Protocol Buffers encoding.
enum class WireType : uint8_t {
  kVarint = 0,
  kFixed64 = 1,
  kLengthDelimited = 2,
  kFixed32 = 5,
};

/// Combines a field number and wire type into a tag varint.
constexpr uint32_t MakeTag(uint32_t field_number, WireType type) {
  return (field_number << 3) | static_cast<uint32_t>(type);
}
constexpr uint32_t TagFieldNumber(uint32_t tag) { return tag >> 3; }
constexpr WireType TagWireType(uint32_t tag) {
  return static_cast<WireType>(tag & 0x7);
}

/// ZigZag mapping for signed varints.
constexpr uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
constexpr int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// \brief Appends protobuf-encoded fields to a Buffer.
///
/// The encoder never owns its buffer: the Stream Manager hands it pooled
/// buffers so that steady-state serialization performs no heap allocation
/// (§V-A optimization 1).
class WireEncoder {
 public:
  explicit WireEncoder(Buffer* out) : out_(out) {}

  void WriteVarint(uint64_t value);
  void WriteTag(uint32_t field_number, WireType type) {
    WriteVarint(MakeTag(field_number, type));
  }

  /// Field writers: tag + payload.
  void WriteUint64Field(uint32_t field, uint64_t value);
  void WriteInt64Field(uint32_t field, int64_t value);  // ZigZag.
  void WriteInt32Field(uint32_t field, int32_t value);  // ZigZag.
  void WriteBoolField(uint32_t field, bool value);
  void WriteDoubleField(uint32_t field, double value);  // Fixed64.
  void WriteBytesField(uint32_t field, BytesView value);
  void WriteStringField(uint32_t field, std::string_view value) {
    WriteBytesField(field, value);
  }

  /// Nested messages are written via a length-prefixed scope: call
  /// BeginLengthDelimited, write the nested fields, then EndLengthDelimited
  /// with the returned mark. The length prefix is patched in place (moving
  /// the payload when the varint needs more than one reserved byte).
  size_t BeginLengthDelimited(uint32_t field);
  void EndLengthDelimited(size_t mark);

  size_t size() const { return out_->size(); }
  Buffer* buffer() { return out_; }

 private:
  Buffer* out_;
};

// -- Transport framing ---------------------------------------------------

/// \brief Fixed-size header prefixed to every payload that crosses the
/// transport fabric (the wire form of a proto::Envelope's metadata).
///
/// Layout, little-endian, kFrameHeaderBytes total:
///
///     offset  size  field
///     ------  ----  --------------------------------------------------
///       0       2   magic 0x4846 ("HF") — tear/desync detector
///       2       1   type       (proto::MessageType as u8)
///       3       1   dest_kind  (0 = none, 1 = task-addressed,
///                               2 = checkpoint barrier)
///       4       4   payload_len u32
///       8       4   dest        i32 (task id; -1 when dest_kind == 0;
///                               for dest_kind == 2, the barrier's
///                               destination task or -1 for a fan-out
///                               request to the receiving SMGR)
///      12       8   trace_id    u64 (0 = untraced)
///
/// The header is everything a forwarding Stream Manager needs to route:
/// receivers that only relay a frame never look past these 20 bytes (the
/// zero-copy invariant asserted by `smgr.payload_touches`).
struct FrameHeader {
  uint8_t type = 0;
  uint8_t dest_kind = 0;  ///< 0 = unaddressed, 1 = dest is a task id,
                          ///< 2 = checkpoint barrier (dest may be -1).
  uint32_t payload_len = 0;
  int32_t dest = -1;
  uint64_t trace_id = 0;

  bool operator==(const FrameHeader& o) const {
    return type == o.type && dest_kind == o.dest_kind &&
           payload_len == o.payload_len && dest == o.dest &&
           trace_id == o.trace_id;
  }
};

inline constexpr size_t kFrameHeaderBytes = 20;
inline constexpr uint16_t kFrameMagic = 0x4846;
/// Frames above this payload size are rejected at decode: a desynced or
/// corrupted stream must not drive a multi-gigabyte allocation.
inline constexpr uint32_t kMaxFramePayloadBytes = 256u << 20;

/// Writes the 20-byte wire form of `header` into `out`.
void EncodeFrameHeader(const FrameHeader& header, char* out);
/// Appends the 20-byte wire form of `header` to `out`.
void AppendFrameHeader(const FrameHeader& header, Buffer* out);

/// Decodes a header from the first kFrameHeaderBytes of `data`.
/// kIOError on truncation, bad magic or an oversized payload length.
Status DecodeFrameHeader(BytesView data, FrameHeader* out);

/// Header-only peek: total frame size (header + payload) implied by the
/// header at the front of `data`. Same validation as DecodeFrameHeader.
Result<size_t> PeekFrameSize(BytesView data);

/// \brief Cursor over serialized bytes; reads fields without copying.
///
/// Decoding errors (truncation, wire-type mismatches) surface as Status —
/// a malformed message from a remote Stream Manager must never crash the
/// process.
class WireDecoder {
 public:
  explicit WireDecoder(BytesView data) : data_(data), pos_(0) {}

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t position() const { return pos_; }

  Result<uint64_t> ReadVarint();
  /// Reads the next tag; returns 0 at end of input.
  Result<uint32_t> ReadTag();

  Result<uint64_t> ReadUint64();
  Result<int64_t> ReadInt64();  // ZigZag.
  Result<int32_t> ReadInt32();  // ZigZag.
  Result<bool> ReadBool();
  Result<double> ReadDouble();
  /// Returns a view into the underlying buffer (no copy).
  Result<BytesView> ReadBytes();

  /// Skips a field of the given wire type; used by lazy/partial parsing to
  /// hop over everything except the fields of interest (§V-A optimization 2).
  Status SkipField(WireType type);

 private:
  Status Truncated() const {
    return Status::IOError("wire decode past end of buffer");
  }

  BytesView data_;
  size_t pos_;
};

}  // namespace serde
}  // namespace heron

#endif  // HERON_SERDE_WIRE_H_
