// State Manager (§IV-C) tests, parameterized over both built-in backends
// (the ZooKeeper-like in-memory tree and the local filesystem), exactly as
// the paper names them.

#include "statemgr/state_manager.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "common/ids.h"
#include "common/strings.h"
#include "packing/round_robin_packing.h"
#include "statemgr/topology_state.h"
#include "workloads/word_count.h"

namespace heron {
namespace statemgr {
namespace {

class StateManagerTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    Config config;
    config.Set(config_keys::kStateManagerKind, GetParam());
    if (GetParam() == "LOCAL_FILE") {
      root_dir_ = std::filesystem::temp_directory_path() /
                  IdGenerator::Next("heron-statemgr-test");
      config.Set(config_keys::kStateManagerRoot, root_dir_.string());
    }
    auto sm = CreateStateManager(config);
    ASSERT_TRUE(sm.ok()) << sm.status().ToString();
    sm_ = std::move(*sm);
  }

  void TearDown() override {
    if (sm_ != nullptr) sm_->Close().ok();
    if (!root_dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(root_dir_, ec);
    }
  }

  std::unique_ptr<IStateManager> sm_;
  std::filesystem::path root_dir_;
};

TEST_P(StateManagerTest, CreateGetSetDelete) {
  ASSERT_TRUE(sm_->CreateNode("/a", "one").ok());
  EXPECT_EQ(*sm_->GetNodeData("/a"), "one");
  ASSERT_TRUE(sm_->SetNodeData("/a", "two").ok());
  EXPECT_EQ(*sm_->GetNodeData("/a"), "two");
  ASSERT_TRUE(sm_->DeleteNode("/a").ok());
  EXPECT_TRUE(sm_->GetNodeData("/a").status().IsNotFound());
}

TEST_P(StateManagerTest, CreateRequiresParent) {
  EXPECT_TRUE(sm_->CreateNode("/a/b", "x").IsNotFound());
  ASSERT_TRUE(sm_->CreateNode("/a", "").ok());
  EXPECT_TRUE(sm_->CreateNode("/a/b", "x").ok());
}

TEST_P(StateManagerTest, DuplicateCreateRejected) {
  ASSERT_TRUE(sm_->CreateNode("/a", "").ok());
  EXPECT_TRUE(sm_->CreateNode("/a", "").IsAlreadyExists());
}

TEST_P(StateManagerTest, DeleteWithChildrenRejected) {
  ASSERT_TRUE(sm_->CreateNode("/a", "").ok());
  ASSERT_TRUE(sm_->CreateNode("/a/b", "").ok());
  EXPECT_TRUE(sm_->DeleteNode("/a").IsFailedPrecondition());
  ASSERT_TRUE(sm_->DeleteNode("/a/b").ok());
  EXPECT_TRUE(sm_->DeleteNode("/a").ok());
}

TEST_P(StateManagerTest, ListChildrenSorted) {
  ASSERT_TRUE(sm_->CreateNode("/t", "").ok());
  ASSERT_TRUE(sm_->CreateNode("/t/c", "").ok());
  ASSERT_TRUE(sm_->CreateNode("/t/a", "").ok());
  ASSERT_TRUE(sm_->CreateNode("/t/b", "").ok());
  ASSERT_TRUE(sm_->CreateNode("/t/a/nested", "").ok());
  auto children = sm_->ListChildren("/t");
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(sm_->ListChildren("/ghost").status().IsNotFound());
}

TEST_P(StateManagerTest, PathValidation) {
  EXPECT_TRUE(sm_->CreateNode("relative", "").IsInvalidArgument());
  EXPECT_TRUE(sm_->CreateNode("/a/", "").IsInvalidArgument());
  EXPECT_TRUE(sm_->CreateNode("/a//b", "").IsInvalidArgument());
  EXPECT_TRUE(sm_->CreateNode("/a/../b", "").IsInvalidArgument());
}

TEST_P(StateManagerTest, BinaryDataSurvives) {
  serde::Buffer binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  ASSERT_TRUE(sm_->CreateNode("/bin", binary).ok());
  EXPECT_EQ(*sm_->GetNodeData("/bin"), binary);
}

TEST_P(StateManagerTest, WatchesFireOnceWithRightType) {
  ASSERT_TRUE(sm_->CreateNode("/w", "").ok());
  std::vector<WatchEvent> events;
  const auto record = [&events](const WatchEvent& e) { events.push_back(e); };

  ASSERT_TRUE(sm_->Watch("/w", record).ok());
  ASSERT_TRUE(sm_->SetNodeData("/w", "x").ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, WatchEventType::kDataChanged);
  EXPECT_EQ(events[0].path, "/w");

  // One-shot: a second mutation does not fire.
  ASSERT_TRUE(sm_->SetNodeData("/w", "y").ok());
  EXPECT_EQ(events.size(), 1u);

  // Deletion event.
  ASSERT_TRUE(sm_->Watch("/w", record).ok());
  ASSERT_TRUE(sm_->DeleteNode("/w").ok());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].type, WatchEventType::kDeleted);

  // Creation event on a watched-but-absent path.
  ASSERT_TRUE(sm_->Watch("/w", record).ok());
  ASSERT_TRUE(sm_->CreateNode("/w", "").ok());
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[2].type, WatchEventType::kCreated);
}

TEST_P(StateManagerTest, ParentWatchSeesChildrenChange) {
  ASSERT_TRUE(sm_->CreateNode("/p", "").ok());
  int fired = 0;
  ASSERT_TRUE(sm_->Watch("/p", [&fired](const WatchEvent& e) {
                    if (e.type == WatchEventType::kChildrenChanged) ++fired;
                  }).ok());
  ASSERT_TRUE(sm_->CreateNode("/p/kid", "").ok());
  EXPECT_EQ(fired, 1);
}

TEST_P(StateManagerTest, EphemeralNodesVanishWithSession) {
  auto session = sm_->OpenSession();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(sm_->CreateNode("/eph", "alive", *session).ok());
  EXPECT_TRUE(*sm_->ExistsNode("/eph"));

  bool deleted = false;
  ASSERT_TRUE(sm_->Watch("/eph", [&deleted](const WatchEvent& e) {
                    deleted = e.type == WatchEventType::kDeleted;
                  }).ok());
  ASSERT_TRUE(sm_->CloseSession(*session).ok());
  EXPECT_FALSE(*sm_->ExistsNode("/eph"));
  EXPECT_TRUE(deleted);  // "all the Stream Managers become immediately
                         // aware of the event" (§IV-C).
}

TEST_P(StateManagerTest, PersistentNodesSurviveSessionClose) {
  auto session = sm_->OpenSession();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(sm_->CreateNode("/persist", "stay").ok());
  ASSERT_TRUE(sm_->CloseSession(*session).ok());
  EXPECT_TRUE(*sm_->ExistsNode("/persist"));
}

TEST_P(StateManagerTest, UnknownSessionRejected) {
  EXPECT_TRUE(sm_->CreateNode("/x", "", 424242).IsNotFound());
  EXPECT_TRUE(sm_->CloseSession(424242).IsNotFound());
}

TEST_P(StateManagerTest, EnsurePathCreatesAncestors) {
  ASSERT_TRUE(EnsurePath(sm_.get(), "/deep/nested/leaf", "v").ok());
  EXPECT_EQ(*sm_->GetNodeData("/deep/nested/leaf"), "v");
  // Overwrites the leaf on repeat.
  ASSERT_TRUE(EnsurePath(sm_.get(), "/deep/nested/leaf", "w").ok());
  EXPECT_EQ(*sm_->GetNodeData("/deep/nested/leaf"), "w");
}

// ---------------------------------------------------------------------
// Typed topology-state helpers (§IV-C metadata).
// ---------------------------------------------------------------------

TEST_P(StateManagerTest, TopologyLifecycle) {
  ASSERT_TRUE(RegisterTopology(sm_.get(), "wc").ok());
  EXPECT_TRUE(*TopologyExists(sm_.get(), "wc"));
  EXPECT_TRUE(RegisterTopology(sm_.get(), "wc").IsAlreadyExists());
  ASSERT_TRUE(UnregisterTopology(sm_.get(), "wc").ok());
  EXPECT_FALSE(*TopologyExists(sm_.get(), "wc"));
}

TEST_P(StateManagerTest, PackingPlanStoredAndLoaded) {
  auto topology = workloads::BuildWordCountTopology("wc", 2, 2);
  ASSERT_TRUE(topology.ok());
  packing::RoundRobinPacking packing;
  ASSERT_TRUE(packing.Initialize(Config(), *topology).ok());
  auto plan = packing.Pack();
  ASSERT_TRUE(plan.ok());

  ASSERT_TRUE(RegisterTopology(sm_.get(), "wc").ok());
  ASSERT_TRUE(SetPackingPlan(sm_.get(), *plan).ok());
  auto loaded = GetPackingPlan(*sm_, "wc");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, *plan);
}

TEST_P(StateManagerTest, TMasterLocationAdvertisement) {
  ASSERT_TRUE(RegisterTopology(sm_.get(), "wc").ok());
  auto session = sm_->OpenSession();
  ASSERT_TRUE(session.ok());

  proto::TMasterLocationMsg location;
  location.topology = "wc";
  location.host = "host-a";
  location.port = 1234;
  ASSERT_TRUE(SetTMasterLocation(sm_.get(), location, *session).ok());
  auto loaded = GetTMasterLocation(*sm_, "wc");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, location);

  // A second TMaster must not clobber the live advertisement.
  proto::TMasterLocationMsg usurper = location;
  usurper.host = "host-b";
  EXPECT_TRUE(
      SetTMasterLocation(sm_.get(), usurper).IsAlreadyExists());

  // Session death clears the way (failover).
  ASSERT_TRUE(sm_->CloseSession(*session).ok());
  EXPECT_TRUE(SetTMasterLocation(sm_.get(), usurper).ok());
  EXPECT_EQ(GetTMasterLocation(*sm_, "wc")->host, "host-b");
}

TEST_P(StateManagerTest, SchedulerLocationAndContainerInfo) {
  ASSERT_TRUE(RegisterTopology(sm_.get(), "wc").ok());
  ASSERT_TRUE(
      SetSchedulerLocation(sm_.get(), "wc", "yarn://rm:8032").ok());
  EXPECT_EQ(*GetSchedulerLocation(*sm_, "wc"), "yarn://rm:8032");
  ASSERT_TRUE(SetContainerInfo(sm_.get(), "wc", 2, "host-x:7000").ok());
  EXPECT_EQ(*GetContainerInfo(*sm_, "wc", 2), "host-x:7000");
  EXPECT_TRUE(GetContainerInfo(*sm_, "wc", 9).status().IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(Backends, StateManagerTest,
                         ::testing::Values("IN_MEMORY", "LOCAL_FILE"));

TEST(StateManagerFactoryTest, UnknownKindRejected) {
  Config config;
  config.Set(config_keys::kStateManagerKind, "ETCD");
  EXPECT_TRUE(CreateStateManager(config).status().IsNotFound());
}

TEST(StateManagerPathsTest, Helpers) {
  EXPECT_EQ(SplitPath("/a/b/c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitPath("/").empty());
  EXPECT_EQ(ParentPath("/a/b"), "/a");
  EXPECT_EQ(ParentPath("/a"), "/");
  EXPECT_EQ(paths::PackingPlan("wc"), "/topologies/wc/packingplan");
  EXPECT_EQ(paths::TMasterLocation("wc"), "/topologies/wc/tmaster");
}

}  // namespace
}  // namespace statemgr
}  // namespace heron
