#ifndef HERON_FRAMEWORKS_BASE_SIM_FRAMEWORK_H_
#define HERON_FRAMEWORKS_BASE_SIM_FRAMEWORK_H_

#include <map>
#include <mutex>

#include "frameworks/framework.h"

namespace heron {
namespace frameworks {

/// \brief Shared machinery of the simulated frameworks: job table,
/// allocation against a SimCluster, start/stop command invocation, event
/// delivery. Subclasses differ only where YARN and Aurora actually differ:
/// admission rules and failure handling.
class BaseSimFramework : public ISchedulingFramework {
 public:
  explicit BaseSimFramework(SimCluster* cluster) : cluster_(cluster) {}

  Result<JobId> SubmitJob(const JobSpec& spec) override;
  Status KillJob(const JobId& job) override;
  Result<std::vector<ContainerStatus>> JobStatus(
      const JobId& job) const override;
  Status RestartContainer(const JobId& job, int index) override;
  Result<std::vector<int>> AddContainers(
      const JobId& job, const std::vector<Resource>& demands,
      const std::function<void(const std::vector<int>&)>& on_registered =
          nullptr) override;
  Status RemoveContainer(const JobId& job, int index) override;
  void SetEventCallback(FrameworkEventCallback callback) override;
  Status InjectContainerFailure(const JobId& job, int index) override;

  std::string Url() const override {
    return "sim://" + Name() + ".cluster.local";
  }

  /// Total jobs currently registered (live).
  size_t num_jobs() const;

 protected:
  struct Container {
    Resource demand;
    ContainerStatus status;
  };
  struct Job {
    JobSpec spec;
    std::map<int, Container> containers;  ///< index → container.
    int next_index = 0;
  };

  /// Admission hook: subclasses reject specs their real counterpart would
  /// (Aurora: heterogeneous containers).
  virtual Status ValidateSubmit(const JobSpec& spec) const {
    return Status::OK();
  }
  virtual Status ValidateAdd(const Job& job,
                             const std::vector<Resource>& demands) const {
    return Status::OK();
  }

  /// Failure hook: called with the lock *released* after a container has
  /// been marked failed and its allocation dropped. Auto-restarting
  /// frameworks bring it back here.
  virtual void OnContainerFailed(const JobId& job, int index) = 0;

  /// Allocates + starts one container slot. Caller holds no lock.
  Status StartContainerSlot(const JobId& job, int index);
  /// Stops + releases one container slot. Caller holds no lock.
  Status StopContainerSlot(const JobId& job, int index, ContainerState final_state);

  void EmitEvent(const JobId& job, const ContainerStatus& status);

  SimCluster* cluster_;
  mutable std::mutex mutex_;
  std::map<JobId, Job> jobs_;
  FrameworkEventCallback callback_;
  uint64_t next_job_ = 1;
};

}  // namespace frameworks
}  // namespace heron

#endif  // HERON_FRAMEWORKS_BASE_SIM_FRAMEWORK_H_
