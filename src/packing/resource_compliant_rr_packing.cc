#include "packing/resource_compliant_rr_packing.h"

#include "common/strings.h"

namespace heron {
namespace packing {

Status ResourceCompliantRRPacking::Initialize(
    const Config& config, std::shared_ptr<const api::Topology> topology) {
  if (topology == nullptr) {
    return Status::InvalidArgument("ResourceCompliantRRPacking: null topology");
  }
  config_ = config.MergedWith(topology->config());
  topology_ = std::move(topology);
  return Status::OK();
}

Result<PackingPlan> ResourceCompliantRRPacking::Pack() {
  if (topology_ == nullptr) {
    return Status::FailedPrecondition(
        "ResourceCompliantRRPacking not initialized");
  }
  const Resource capacity = internal::ContainerCapacityFromConfig(config_);
  const Resource usable = capacity - ContainerOverhead();
  const auto instances = internal::EnumerateInstances(*topology_);
  const int64_t default_containers =
      (static_cast<int64_t>(instances.size()) + 3) / 4;
  const size_t initial = static_cast<size_t>(std::max<int64_t>(
      1, config_.GetIntOr(config_keys::kNumContainersHint,
                          default_containers)));

  std::vector<ContainerPlan> containers(std::min(initial, instances.size()));
  for (size_t c = 0; c < containers.size(); ++c) {
    containers[c].id = static_cast<ContainerId>(c);
  }

  size_t cursor = 0;
  for (const auto& inst : instances) {
    if (!usable.Fits(inst.resources)) {
      return Status::ResourceExhausted(StrFormat(
          "instance of '%s' demands %s, beyond usable container capacity %s",
          inst.component.c_str(), inst.resources.ToString().c_str(),
          usable.ToString().c_str()));
    }
    // Probe one full rotation starting at the cursor; grow the ring when
    // every container is full.
    bool placed = false;
    for (size_t probe = 0; probe < containers.size(); ++probe) {
      ContainerPlan& c = containers[(cursor + probe) % containers.size()];
      const Resource free = usable - c.InstanceTotal();
      if (free.Fits(inst.resources)) {
        c.instances.push_back(inst);
        cursor = (cursor + probe + 1) % containers.size();
        placed = true;
        break;
      }
    }
    if (!placed) {
      ContainerPlan fresh;
      fresh.id = static_cast<ContainerId>(containers.size());
      fresh.instances.push_back(inst);
      containers.push_back(std::move(fresh));
      cursor = 0;
    }
  }

  // Drop containers that received nothing (possible when the hint exceeds
  // the instance count after capacity-driven growth reshuffles placement).
  std::vector<ContainerPlan> live;
  for (auto& c : containers) {
    if (!c.instances.empty()) {
      c.required = c.InstanceTotal() + ContainerOverhead();
      live.push_back(std::move(c));
    }
  }

  PackingPlan plan(topology_->name(), std::move(live));
  HERON_RETURN_NOT_OK(plan.Validate(/*require_dense_task_ids=*/true));
  return plan;
}

Result<PackingPlan> ResourceCompliantRRPacking::Repack(
    const PackingPlan& current,
    const std::map<ComponentId, int>& parallelism_changes) {
  if (topology_ == nullptr) {
    return Status::FailedPrecondition(
        "ResourceCompliantRRPacking not initialized");
  }
  return internal::RepackMinimalDisruption(
      *topology_, current, parallelism_changes,
      internal::ContainerCapacityFromConfig(config_));
}

}  // namespace packing
}  // namespace heron
