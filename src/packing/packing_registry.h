#ifndef HERON_PACKING_PACKING_REGISTRY_H_
#define HERON_PACKING_PACKING_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "packing/packing.h"

namespace heron {
namespace packing {

/// \brief Name → factory registry for packing policies.
///
/// The extensibility point of §IV-A: "Heron allows the application
/// developer or the system administrator to create a new implementation
/// for a specific Heron module ... and plug it in the system". Topologies
/// choose their policy with `heron.packing.algorithm`; different
/// topologies on the same cluster may name different policies. Built-ins
/// (ROUND_ROBIN, FIRST_FIT_DECREASING, RESOURCE_COMPLIANT_RR) are
/// pre-registered; user policies register at startup.
class PackingRegistry {
 public:
  using Factory = std::function<std::unique_ptr<IPacking>()>;

  /// The process-wide registry.
  static PackingRegistry* Global();

  /// Registers `factory` under `name`; kAlreadyExists if taken.
  Status Register(const std::string& name, Factory factory);

  /// Instantiates the policy registered as `name`.
  Result<std::unique_ptr<IPacking>> Create(const std::string& name) const;

  /// Instantiates the policy selected by `heron.packing.algorithm`
  /// (default ROUND_ROBIN).
  Result<std::unique_ptr<IPacking>> CreateFromConfig(
      const Config& config) const;

  std::vector<std::string> RegisteredNames() const;

 private:
  PackingRegistry();

  std::vector<std::pair<std::string, Factory>> factories_;
};

}  // namespace packing
}  // namespace heron

#endif  // HERON_PACKING_PACKING_REGISTRY_H_
