#ifndef HERON_IPC_CHANNEL_H_
#define HERON_IPC_CHANNEL_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/status.h"

namespace heron {
namespace ipc {

/// \brief Bounded multi-producer/multi-consumer message channel — the IPC
/// kernel of Fig. 1.
///
/// In the paper's deployment the modules are separate processes connected
/// by sockets; here each module runs on its own thread and a Channel is
/// the socket stand-in. The semantics that matter for fidelity are
/// preserved: payloads cross the boundary only as serialized bytes
/// (enforced by the Envelope discipline, not by this class), and capacity
/// is bounded so a slow consumer exerts back pressure on producers exactly
/// as a full TCP window would.
template <typename T>
class Channel {
 public:
  explicit Channel(size_t capacity) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks until space is available (back pressure) or the channel is
  /// closed. kCancelled after Close.
  Status Send(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return Status::Cancelled("channel closed");
    queue_.push_back(std::move(item));
    ++total_enqueued_;
    lock.unlock();
    not_empty_.notify_one();
    return Status::OK();
  }

  /// Non-blocking send; kResourceExhausted when full, kCancelled when
  /// closed. Takes an rvalue reference and moves only on success, so the
  /// caller keeps the item (and can park it for retry) on failure.
  Status TrySend(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return Status::Cancelled("channel closed");
      if (queue_.size() >= capacity_) {
        return Status::ResourceExhausted("channel full");
      }
      queue_.push_back(std::move(item));
      ++total_enqueued_;
    }
    not_empty_.notify_one();
    return Status::OK();
  }

  /// Blocks until an item arrives or the channel is closed *and* drained.
  /// std::nullopt signals end of stream.
  std::optional<T> Recv() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    return PopLocked(&lock);
  }

  /// Like Recv but gives up after `timeout`; std::nullopt on timeout or
  /// end of stream (check closed() to distinguish).
  std::optional<T> RecvFor(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !queue_.empty(); })) {
      return std::nullopt;
    }
    return PopLocked(&lock);
  }

  /// Non-blocking receive.
  std::optional<T> TryRecv() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    return PopLocked(&lock);
  }

  /// Closes the channel: senders fail immediately; receivers drain the
  /// remaining items and then see end of stream.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  size_t capacity() const { return capacity_; }

  /// Total items ever enqueued; a cheap throughput probe for tests.
  uint64_t total_enqueued() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_enqueued_;
  }

 private:
  std::optional<T> PopLocked(std::unique_lock<std::mutex>* lock) {
    if (queue_.empty()) return std::nullopt;  // Closed and drained.
    T item = std::move(queue_.front());
    queue_.pop_front();
    lock->unlock();
    not_full_.notify_one();
    return item;
  }

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  bool closed_ = false;
  uint64_t total_enqueued_ = 0;
};

}  // namespace ipc
}  // namespace heron

#endif  // HERON_IPC_CHANNEL_H_
