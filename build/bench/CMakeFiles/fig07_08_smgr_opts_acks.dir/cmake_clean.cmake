file(REMOVE_RECURSE
  "CMakeFiles/fig07_08_smgr_opts_acks.dir/figures/fig07_08_smgr_opts_acks.cc.o"
  "CMakeFiles/fig07_08_smgr_opts_acks.dir/figures/fig07_08_smgr_opts_acks.cc.o.d"
  "fig07_08_smgr_opts_acks"
  "fig07_08_smgr_opts_acks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_08_smgr_opts_acks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
