#ifndef HERON_STATEMGR_LOCAL_FILE_STATE_MANAGER_H_
#define HERON_STATEMGR_LOCAL_FILE_STATE_MANAGER_H_

#include <map>
#include <mutex>
#include <set>
#include <string>

#include "statemgr/state_manager.h"

namespace heron {
namespace statemgr {

/// \brief State manager persisted on the local filesystem (§IV-C: "an
/// implementation on the local file system for running locally in a
/// single server").
///
/// Each state node maps to a directory containing a `__data__` file; the
/// tree root lives under `heron.statemgr.root.path`. Watches are served
/// in-process (mutations through this instance fire them); a multi-process
/// deployment would poll, which single-server local mode does not need.
/// Ephemeral nodes are tracked in-process and removed on session close or
/// Close(), so a crashed local run leaves them behind exactly like a real
/// local-mode Heron — stale-node cleanup happens at Initialize via an
/// optional sweep of `__ephemeral__` markers.
class LocalFileStateManager final : public IStateManager {
 public:
  Status Initialize(const Config& config) override;
  Status Close() override;

  Status CreateNode(const std::string& path, serde::BytesView data,
                    SessionId session = kNoSession) override;
  Status SetNodeData(const std::string& path, serde::BytesView data) override;
  Result<serde::Buffer> GetNodeData(const std::string& path) const override;
  Status DeleteNode(const std::string& path) override;
  Result<bool> ExistsNode(const std::string& path) const override;
  Result<std::vector<std::string>> ListChildren(
      const std::string& path) const override;
  Status Watch(const std::string& path, WatchCallback callback) override;
  Result<SessionId> OpenSession() override;
  Status CloseSession(SessionId session) override;
  std::string Name() const override { return "LOCAL_FILE"; }

  const std::string& root_dir() const { return root_; }

  /// Torn artifacts quarantined by the Initialize() load sweep: stray
  /// `.tmp` files (a crash between write and rename) plus node
  /// directories that never committed a `__data__` file.
  uint64_t torn_files_quarantined() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return torn_quarantined_;
  }

 private:
  /// Filesystem directory corresponding to a state path.
  std::string DirOf(const std::string& path) const;
  void CollectWatchesLocked(
      const std::string& path, WatchEventType type,
      std::vector<std::pair<WatchCallback, WatchEvent>>* out);

  mutable std::mutex mutex_;
  bool initialized_ = false;
  std::string root_;
  std::multimap<std::string, WatchCallback> watches_;
  std::map<SessionId, std::set<std::string>> session_nodes_;
  SessionId next_session_ = 1;
  uint64_t torn_quarantined_ = 0;
};

}  // namespace statemgr
}  // namespace heron

#endif  // HERON_STATEMGR_LOCAL_FILE_STATE_MANAGER_H_
