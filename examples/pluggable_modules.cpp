// The paper's headline feature tour: the same topology deployed with
// *different module implementations* plugged in (§II, §IV) — no topology
// changes, no engine changes.
//
//  1. Resource Manager: ROUND_ROBIN vs FIRST_FIT_DECREASING packing.
//  2. Scheduler: stateless on an Aurora-like framework vs stateful on a
//     YARN-like framework, surviving an injected container failure each.
//  3. Live scaling: TMaster-coordinated repack + scheduler onUpdate on a
//     running local cluster.
//
//   $ ./build/examples/pluggable_modules

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/logging.h"
#include "frameworks/aurora_like_framework.h"
#include "frameworks/yarn_like_framework.h"
#include "packing/packing_registry.h"
#include "packing/round_robin_packing.h"
#include "runtime/local_cluster.h"
#include "scheduler/framework_scheduler.h"
#include "workloads/word_count.h"

using namespace heron;

namespace {

/// Launcher stub for the framework demos (the real process launch is the
/// LocalCluster's job; here we only show scheduling behaviour).
class NoopLauncher final : public scheduler::IContainerLauncher {
 public:
  Status StartContainer(const packing::ContainerPlan&) override {
    return Status::OK();
  }
  Status StopContainer(ContainerId) override { return Status::OK(); }
};

void DemoPackingPolicies() {
  std::printf("== pluggable Resource Manager (§IV-A) ==\n");
  auto topology = workloads::BuildWordCountTopology("demo", 20, 20);
  HERON_CHECK_OK(topology.status());
  for (const char* policy : {"ROUND_ROBIN", "FIRST_FIT_DECREASING"}) {
    auto packing = packing::PackingRegistry::Global()->Create(policy);
    HERON_CHECK_OK(packing.status());
    HERON_CHECK_OK((*packing)->Initialize(Config(), *topology));
    auto plan = (*packing)->Pack();
    HERON_CHECK_OK(plan.status());
    std::printf("  %-22s → %2d containers (max ask %s)\n", policy,
                plan->NumContainers(),
                plan->MaxContainerResource().ToString().c_str());
  }
}

void DemoSchedulers() {
  std::printf("== pluggable Scheduler over two frameworks (§IV-B) ==\n");
  auto topology = workloads::BuildWordCountTopology("demo", 4, 4);
  HERON_CHECK_OK(topology.status());
  packing::RoundRobinPacking packer;
  HERON_CHECK_OK(packer.Initialize(Config(), *topology));
  auto plan = packer.Pack();
  HERON_CHECK_OK(plan.status());

  frameworks::SimCluster cluster;
  cluster.AddNodes(8, Resource(32, 65536, 0));
  NoopLauncher launcher;

  frameworks::AuroraLikeFramework aurora(&cluster);
  scheduler::FrameworkScheduler stateless(&aurora, &launcher);
  HERON_CHECK_OK(stateless.Initialize(Config()));
  HERON_CHECK_OK(stateless.OnSchedule(*plan));
  HERON_CHECK_OK(aurora.InjectContainerFailure(stateless.job_id(), 0));
  std::printf("  aurora (stateless): container failed → framework "
              "auto-restarted it; scheduler handled %d failovers\n",
              stateless.failovers_handled());
  HERON_CHECK_OK(stateless.OnKill({"demo"}));

  frameworks::YarnLikeFramework yarn(&cluster);
  scheduler::FrameworkScheduler stateful(&yarn, &launcher);
  HERON_CHECK_OK(stateful.Initialize(Config()));
  HERON_CHECK_OK(stateful.OnSchedule(*plan));
  HERON_CHECK_OK(yarn.InjectContainerFailure(stateful.job_id(), 0));
  std::printf("  yarn (stateful):    container failed → scheduler "
              "recovered it itself; failovers handled: %d\n",
              stateful.failovers_handled());
  HERON_CHECK_OK(stateful.OnKill({"demo"}));
}

void DemoLiveScaling() {
  std::printf("== live topology scaling (§IV-A repack + onUpdate) ==\n");
  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 1000;
  spout_options.words_per_call = 4;
  Config config;
  config.SetInt(config_keys::kNumContainersHint, 2);
  auto topology =
      workloads::BuildWordCountTopology("scaling", 2, 2, spout_options);
  HERON_CHECK_OK(topology.status());

  runtime::LocalCluster cluster(config);
  HERON_CHECK_OK(cluster.Submit(*topology));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  std::printf("  before: %d bolt instances, %d containers\n",
              static_cast<int>(
                  cluster.current_packing_plan().TasksOfComponent("count")
                      .size()),
              cluster.current_packing_plan().NumContainers());

  HERON_CHECK_OK(cluster.Scale("count", 6));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  std::printf("  after scale to 6: %d bolt instances, %d containers, "
              "still flowing (%llu executed)\n",
              static_cast<int>(
                  cluster.current_packing_plan().TasksOfComponent("count")
                      .size()),
              cluster.current_packing_plan().NumContainers(),
              static_cast<unsigned long long>(
                  cluster.SumCounter("instance.executed")));
  HERON_CHECK_OK(cluster.Kill());
}

}  // namespace

int main() {
  Logging::SetLevel(LogLevel::kWarning);
  DemoPackingPolicies();
  DemoSchedulers();
  DemoLiveScaling();
  return 0;
}
