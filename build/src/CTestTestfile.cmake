# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("serde")
subdirs("ipc")
subdirs("api")
subdirs("packing")
subdirs("proto")
subdirs("frameworks")
subdirs("scheduler")
subdirs("statemgr")
subdirs("metrics")
subdirs("smgr")
subdirs("instance")
subdirs("tmaster")
subdirs("runtime")
subdirs("workloads")
subdirs("external")
subdirs("storm")
subdirs("sim")
subdirs("tuning")
