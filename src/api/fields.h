#ifndef HERON_API_FIELDS_H_
#define HERON_API_FIELDS_H_

#include <initializer_list>
#include <string>
#include <vector>

namespace heron {
namespace api {

/// \brief Ordered schema of field names declared by a component's output
/// stream, e.g. Fields({"word", "count"}).
///
/// Fields grouping selects a subset of these names; the Router resolves
/// names to positions once at wiring time so the data plane works with
/// indices only.
class Fields {
 public:
  Fields() = default;
  Fields(std::initializer_list<std::string> names) : names_(names) {}
  explicit Fields(std::vector<std::string> names) : names_(std::move(names)) {}

  /// Returns the position of `name`, or -1 when absent.
  int IndexOf(const std::string& name) const {
    for (size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  bool Contains(const std::string& name) const { return IndexOf(name) >= 0; }

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }
  const std::string& at(size_t i) const { return names_[i]; }
  const std::vector<std::string>& names() const { return names_; }

  bool operator==(const Fields& other) const { return names_ == other.names_; }

 private:
  std::vector<std::string> names_;
};

}  // namespace api
}  // namespace heron

#endif  // HERON_API_FIELDS_H_
