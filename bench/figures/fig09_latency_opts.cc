// Reproduces Figure 9: end-to-end latency with and without the Stream
// Manager optimizations (acks enabled).
//
// "The Stream Manager optimizations can also provide a 2-3X reduction in
// end-to-end latency." (§VI-B)

#include "bench/figures/fig_util.h"
#include "sim/heron_model.h"

using namespace heron;
using namespace heron::sim;

int main(int argc, char** argv) {
  bench::ParseSmoke(argc, argv);
  bench::JsonReport report("fig09_latency_opts");
  HeronCostModel costs;
  constexpr int64_t kMaxSpoutPending = 50000;

  bench::PrintFigureHeader(
      "Figure 9: End-to-end latency with acks",
      "SMGR optimizations: 2-3X lower end-to-end latency");
  bench::PrintColumns(
      {"parallelism", "opt_lat_ms", "noopt_lat_ms", "lat_ratio"});

  double min_ratio = 1e30, max_ratio = 0;
  for (const int p : {25, 100, 200}) {
    HeronSimConfig config;
    config.spouts = config.bolts = p;
    config.acking = true;
    config.max_spout_pending = kMaxSpoutPending;
    config.warmup_sec = bench::WarmupSec();
    config.measure_sec = bench::MeasureSec();

    config.optimizations = true;
    const SimResult on = RunHeronSim(config, costs);
    config.optimizations = false;
    const SimResult off = RunHeronSim(config, costs);

    const double ratio = off.latency_ms_mean / on.latency_ms_mean;
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);

    bench::PrintCellInt(p);
    bench::PrintCell(on.latency_ms_mean);
    bench::PrintCell(off.latency_ms_mean);
    bench::PrintCell(ratio);
    bench::EndRow();

    const std::string scenario = "parallelism_" + std::to_string(p);
    report.Add(scenario, "opt_latency_ms", on.latency_ms_mean);
    report.Add(scenario, "noopt_latency_ms", off.latency_ms_mean);
    report.Add(scenario, "latency_ratio", ratio);
  }

  std::printf("\n");
  bench::PrintVerdict("Fig 9 min latency reduction ratio", min_ratio, 2.0,
                      3.5);
  bench::PrintVerdict("Fig 9 max latency reduction ratio", max_ratio, 2.0,
                      3.5);
  report.Write();
  return 0;
}
