#include "instance/outbox.h"

#include <gtest/gtest.h>

namespace heron {
namespace instance {
namespace {

proto::TupleDataMsg WordTuple(const std::string& word) {
  proto::TupleDataMsg msg;
  msg.tuple_key = 5;
  msg.values.emplace_back(word);
  return msg;
}

class OutboxTest : public ::testing::Test {
 protected:
  OutboxTest() : transport_(true), smgr_inbound_(256) {
    HERON_CHECK_OK(transport_.RegisterSmgr(0, &smgr_inbound_));
  }

  smgr::Transport transport_;
  smgr::EnvelopeChannel smgr_inbound_;
};

TEST_F(OutboxTest, FlushShipsWellFormedUnroutedBatch) {
  Outbox outbox(/*task=*/4, "word", /*container=*/0, &transport_, 64);
  outbox.EmitTuple(kDefaultStreamId, WordTuple("a"));
  outbox.EmitTuple(kDefaultStreamId, WordTuple("b"));
  EXPECT_EQ(smgr_inbound_.size(), 0u);  // Below threshold: staged.
  outbox.Flush();

  auto env = smgr_inbound_.TryRecv();
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->type, proto::MessageType::kTupleBatch);
  proto::TupleBatchMsg batch;
  ASSERT_TRUE(batch.ParseFromBytes(env->payload).ok());
  EXPECT_EQ(batch.src_task, 4);
  EXPECT_EQ(batch.dest_task, -1);  // Unrouted.
  EXPECT_EQ(batch.src_component, "word");
  EXPECT_EQ(batch.tuples.size(), 2u);
  EXPECT_EQ(outbox.tuples_emitted(), 2u);
  EXPECT_EQ(outbox.batches_sent(), 1u);
}

TEST_F(OutboxTest, ThresholdAutoFlushes) {
  Outbox outbox(4, "word", 0, &transport_, /*flush_tuples=*/3);
  for (int i = 0; i < 7; ++i) {
    outbox.EmitTuple(kDefaultStreamId, WordTuple("w" + std::to_string(i)));
  }
  EXPECT_EQ(smgr_inbound_.size(), 2u);  // Two full batches of 3.
  outbox.Flush();                       // The remaining 1.
  EXPECT_EQ(smgr_inbound_.size(), 3u);
  size_t total = 0;
  while (auto env = smgr_inbound_.TryRecv()) {
    proto::TupleBatchMsg batch;
    ASSERT_TRUE(batch.ParseFromBytes(env->payload).ok());
    total += batch.tuples.size();
  }
  EXPECT_EQ(total, 7u);
}

TEST_F(OutboxTest, StreamsBatchSeparately) {
  Outbox outbox(4, "word", 0, &transport_, 64);
  outbox.EmitTuple("default", WordTuple("d"));
  outbox.EmitTuple("errors", WordTuple("e"));
  outbox.Flush();
  std::set<std::string> streams;
  while (auto env = smgr_inbound_.TryRecv()) {
    proto::TupleBatchMsg batch;
    ASSERT_TRUE(batch.ParseFromBytes(env->payload).ok());
    streams.insert(batch.stream);
  }
  EXPECT_EQ(streams, (std::set<std::string>{"default", "errors"}));
}

TEST_F(OutboxTest, AckUpdatesBatchPerOwner) {
  Outbox outbox(4, "count", 0, &transport_, 64);
  outbox.AddAckUpdate(0, {proto::MakeRootKey(0, 1), 11, false});
  outbox.AddAckUpdate(0, {proto::MakeRootKey(0, 2), 22, false});
  outbox.AddAckUpdate(1, {proto::MakeRootKey(1, 3), 33, true});
  outbox.Flush();

  std::map<TaskId, size_t> updates_per_owner;
  while (auto env = smgr_inbound_.TryRecv()) {
    EXPECT_EQ(env->type, proto::MessageType::kAckBatch);
    proto::AckBatchMsg batch;
    ASSERT_TRUE(batch.ParseFromBytes(env->payload).ok());
    updates_per_owner[batch.dest_task] = batch.updates.size();
  }
  EXPECT_EQ(updates_per_owner[0], 2u);
  EXPECT_EQ(updates_per_owner[1], 1u);
}

TEST_F(OutboxTest, FlushIsIdempotentWhenEmpty) {
  Outbox outbox(4, "word", 0, &transport_, 64);
  outbox.Flush();
  outbox.Flush();
  EXPECT_EQ(smgr_inbound_.size(), 0u);
  EXPECT_EQ(outbox.batches_sent(), 0u);
}

}  // namespace
}  // namespace instance
}  // namespace heron
