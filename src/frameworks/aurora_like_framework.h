#ifndef HERON_FRAMEWORKS_AURORA_LIKE_FRAMEWORK_H_
#define HERON_FRAMEWORKS_AURORA_LIKE_FRAMEWORK_H_

#include "frameworks/base_sim_framework.h"

namespace heron {
namespace frameworks {

/// \brief Aurora-semantics framework: containers must be homogeneous
/// ("Aurora can only allocate homogeneous containers for a given packing
/// plan", §IV-B) and the framework itself recovers failed containers ("In
/// case of a container failure, Aurora invokes the appropriate command to
/// restart the container and its corresponding tasks") — which is why the
/// Heron Scheduler can be *stateless* on Aurora.
class AuroraLikeFramework final : public BaseSimFramework {
 public:
  explicit AuroraLikeFramework(SimCluster* cluster)
      : BaseSimFramework(cluster) {}

  std::string Name() const override { return "aurora"; }
  bool SupportsHeterogeneousContainers() const override { return false; }
  bool AutoRestartsFailedContainers() const override { return true; }

 protected:
  Status ValidateSubmit(const JobSpec& spec) const override;
  Status ValidateAdd(const Job& job,
                     const std::vector<Resource>& demands) const override;

  /// Aurora's executor brings the task back up on its own.
  void OnContainerFailed(const JobId& job, int index) override;
};

}  // namespace frameworks
}  // namespace heron

#endif  // HERON_FRAMEWORKS_AURORA_LIKE_FRAMEWORK_H_
