#include "smgr/tuple_cache.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "proto/messages.h"

namespace heron {
namespace smgr {
namespace {

serde::Buffer TupleBytes(const std::string& word) {
  proto::TupleDataMsg msg;
  msg.tuple_key = 1;
  msg.values.emplace_back(word);
  return msg.SerializeAsBuffer();
}

class TupleCacheTest : public ::testing::Test {
 protected:
  serde::BufferPool pool_{true};
};

TEST_F(TupleCacheTest, DrainedBatchesParseWithCorrectHeaders) {
  TupleCache cache({10, 1 << 20}, &pool_);
  cache.Add(/*dest=*/5, /*src=*/1, "default", "word", TupleBytes("a"));
  cache.Add(5, 1, "default", "word", TupleBytes("b"));
  cache.Add(9, 1, "default", "word", TupleBytes("c"));

  auto batches = cache.DrainAll();
  ASSERT_EQ(batches.size(), 2u);
  std::map<TaskId, size_t> counts;
  for (const auto& batch : batches) {
    proto::TupleBatchMsg parsed;
    ASSERT_TRUE(parsed.ParseFromBytes(batch.bytes).ok());
    EXPECT_EQ(parsed.dest_task, batch.dest);
    EXPECT_EQ(parsed.src_task, 1);
    EXPECT_EQ(parsed.stream, "default");
    EXPECT_EQ(parsed.src_component, "word");
    counts[batch.dest] = parsed.tuples.size();
    EXPECT_EQ(batch.tuple_count, parsed.tuples.size());
    // Lazy peek agrees with the header.
    EXPECT_EQ(*proto::PeekDestTask(batch.bytes), batch.dest);
  }
  EXPECT_EQ(counts[5], 2u);
  EXPECT_EQ(counts[9], 1u);
}

TEST_F(TupleCacheTest, ConservationNoTupleLostOrDuplicated) {
  TupleCache cache({10, 64 << 20}, &pool_);
  Random rng(3);
  std::map<TaskId, uint64_t> sent;
  for (int round = 0; round < 20; ++round) {
    const int adds = 1 + static_cast<int>(rng.NextBelow(300));
    for (int i = 0; i < adds; ++i) {
      const TaskId dest = static_cast<TaskId>(rng.NextBelow(16));
      const TaskId src = static_cast<TaskId>(rng.NextBelow(4));
      cache.Add(dest, src, "default", "word", TupleBytes("w"));
      ++sent[dest];
    }
    for (auto& batch : cache.DrainAll()) {
      proto::TupleBatchMsg parsed;
      ASSERT_TRUE(parsed.ParseFromBytes(batch.bytes).ok());
      sent[batch.dest] -= parsed.tuples.size();
    }
  }
  for (const auto& [dest, remaining] : sent) {
    EXPECT_EQ(remaining, 0u) << "dest " << dest;
  }
  EXPECT_EQ(cache.pending_bytes(), 0u);
  EXPECT_EQ(cache.pending_batches(), 0u);
}

TEST_F(TupleCacheTest, SizeThresholdSignalsDrain) {
  TupleCache cache({1000, /*drain_size_bytes=*/256}, &pool_);
  bool tripped = false;
  for (int i = 0; i < 100 && !tripped; ++i) {
    tripped = cache.Add(1, 1, "default", "word", TupleBytes("wordwordword"));
  }
  EXPECT_TRUE(tripped);
  EXPECT_GE(cache.pending_bytes(), 256u);
}

TEST_F(TupleCacheTest, TimerArming) {
  TupleCache cache({10, 1 << 20}, &pool_);
  cache.ArmTimer(/*now_nanos=*/1000);
  EXPECT_EQ(cache.next_drain_nanos(), 1000 + 10 * 1000000);
}

TEST_F(TupleCacheTest, StreamCollisionFlushesEagerly) {
  TupleCache cache({10, 1 << 20}, &pool_);
  cache.Add(3, 1, "default", "word", TupleBytes("a"));
  // Same (dest, src) pair, different stream → old batch flushes on the
  // next drain without mixing streams.
  cache.Add(3, 1, "errors", "word", TupleBytes("b"));
  auto batches = cache.DrainAll();
  ASSERT_EQ(batches.size(), 2u);
  std::set<std::string> streams;
  for (const auto& batch : batches) {
    proto::TupleBatchMsg parsed;
    ASSERT_TRUE(parsed.ParseFromBytes(batch.bytes).ok());
    ASSERT_EQ(parsed.tuples.size(), 1u);
    streams.insert(parsed.stream);
  }
  EXPECT_EQ(streams, (std::set<std::string>{"default", "errors"}));
}

// Regression: bytes that moved to the eager staging area (stream
// collision) must keep counting toward the size trip. Previously they
// silently stopped counting, so an eagerly flushed batch could sit
// stranded until the next timer tick.
TEST_F(TupleCacheTest, EagerBytesStillTripSizeDrain) {
  TupleCache cache({/*drain_frequency_ms=*/1000, /*drain_size_bytes=*/256},
                   &pool_);
  // Grow one batch close to (but under) the threshold.
  bool tripped = false;
  while (cache.pending_bytes() < 200) {
    tripped = cache.Add(3, 1, "default", "word", TupleBytes("wordword"));
    ASSERT_FALSE(tripped);
  }
  const size_t staged = cache.pending_bytes();
  // Collide the stream: the whole batch moves to the eager staging area.
  tripped = cache.Add(3, 1, "errors", "word", TupleBytes("x"));
  EXPECT_EQ(cache.eager_bytes(), staged);
  EXPECT_LT(cache.pending_bytes(), staged);
  // Keep adding on the *new* stream: open + eager bytes must trip the
  // threshold even though the open batch alone is far below it.
  for (int i = 0; i < 100 && !tripped; ++i) {
    tripped = cache.Add(3, 1, "errors", "word", TupleBytes("wordword"));
  }
  EXPECT_TRUE(tripped);
  EXPECT_TRUE(cache.should_drain());
  EXPECT_LT(cache.pending_bytes(), 256u)
      << "the open batch alone must not have crossed the threshold — the "
         "eager bytes are what tripped it";

  // Drain stats are attributed when the batches actually leave.
  const auto batches = cache.DrainAll(/*timer_drain=*/false);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(cache.eager_bytes(), 0u);
  EXPECT_EQ(cache.stats().batches_drained, 2u);
  uint64_t drained_bytes = 0;
  for (const auto& b : batches) drained_bytes += b.bytes.size();
  EXPECT_EQ(cache.stats().bytes_drained, drained_bytes);
}

TEST_F(TupleCacheTest, StatsAccumulate) {
  TupleCache cache({10, 1 << 20}, &pool_);
  cache.Add(1, 1, "default", "word", TupleBytes("a"));
  cache.Add(2, 1, "default", "word", TupleBytes("b"));
  cache.DrainAll(/*timer_drain=*/true);
  cache.Add(1, 1, "default", "word", TupleBytes("c"));
  cache.DrainAll(/*timer_drain=*/false);
  const auto& stats = cache.stats();
  EXPECT_EQ(stats.tuples_added, 3u);
  EXPECT_EQ(stats.batches_drained, 3u);
  EXPECT_EQ(stats.timer_drains, 1u);
  EXPECT_EQ(stats.size_drains, 1u);
  EXPECT_GT(stats.bytes_drained, 0u);
}

TEST_F(TupleCacheTest, EmptyDrainIsCheapNoop) {
  TupleCache cache({10, 1 << 20}, &pool_);
  EXPECT_TRUE(cache.DrainAll().empty());
  EXPECT_EQ(cache.stats().timer_drains, 0u);
}

}  // namespace
}  // namespace smgr
}  // namespace heron
