#ifndef HERON_FRAMEWORKS_FRAMEWORK_H_
#define HERON_FRAMEWORKS_FRAMEWORK_H_

#include <functional>
#include <string>
#include <vector>

#include "common/resource.h"
#include "common/result.h"
#include "frameworks/sim_cluster.h"

namespace heron {
namespace frameworks {

using JobId = std::string;

enum class ContainerState : uint8_t {
  kPending = 0,
  kRunning = 1,
  kFailed = 2,
  kStopped = 3,
};

struct ContainerStatus {
  int index = -1;
  ContainerState state = ContainerState::kPending;
  AllocationId allocation = 0;
  int restarts = 0;
};

/// \brief A job submitted to a scheduling framework: one container per
/// entry of `containers`, plus the "command" the framework runs in each.
///
/// In a real deployment the command is the heron-executor launch line; in
/// this substrate it is a callback pair the Heron Scheduler wires to the
/// runtime's container launcher. The framework invokes `start` whenever a
/// container (re)starts and `stop` when one is torn down.
struct JobSpec {
  std::string name;
  std::vector<Resource> containers;
  std::function<void(int container_index)> start;
  std::function<void(int container_index)> stop;
};

/// \brief Lifecycle event delivered to the framework's client (the Heron
/// Scheduler, when it is stateful).
struct FrameworkEvent {
  JobId job;
  ContainerStatus container;
};
using FrameworkEventCallback = std::function<void(const FrameworkEvent&)>;

/// \brief The underlying scheduling framework the Heron Scheduler talks to
/// (§IV-B) — YARN/Aurora/Mesos in the paper, simulated substrates here.
///
/// The two capability bits drive the Scheduler's behaviour exactly as the
/// paper describes:
///  - SupportsHeterogeneousContainers: "YARN can allocate heterogeneous
///    containers whereas Aurora can only allocate homogeneous containers".
///  - AutoRestartsFailedContainers: with Aurora "the underlying scheduling
///    framework ... take[s] the necessary actions" on container failure
///    (stateless Heron Scheduler); with YARN the Heron Scheduler monitors
///    and restarts (stateful).
class ISchedulingFramework {
 public:
  virtual ~ISchedulingFramework() = default;

  virtual std::string Name() const = 0;
  /// Endpoint string stored in the State Manager as "the URL of the
  /// underlying scheduling framework".
  virtual std::string Url() const = 0;

  virtual bool SupportsHeterogeneousContainers() const = 0;
  virtual bool AutoRestartsFailedContainers() const = 0;

  /// Submits a job; all containers are allocated (atomically — on any
  /// admission failure nothing is left allocated) and started.
  virtual Result<JobId> SubmitJob(const JobSpec& spec) = 0;

  /// Stops and deallocates every container of the job.
  virtual Status KillJob(const JobId& job) = 0;

  /// Current status of every container.
  virtual Result<std::vector<ContainerStatus>> JobStatus(
      const JobId& job) const = 0;

  /// Restarts one container (used by stateful clients after a failure and
  /// by topology restart requests).
  virtual Status RestartContainer(const JobId& job, int index) = 0;

  /// Grows a job by `demands.size()` containers (topology scaling).
  /// Returns the indices of the new containers. `on_registered` (optional)
  /// is invoked with those indices after allocation but before the start
  /// commands run, so the client can map framework slots to its own
  /// container ids without racing the start hook.
  virtual Result<std::vector<int>> AddContainers(
      const JobId& job, const std::vector<Resource>& demands,
      const std::function<void(const std::vector<int>&)>& on_registered =
          nullptr) = 0;

  /// Stops and removes one container (scale-down).
  virtual Status RemoveContainer(const JobId& job, int index) = 0;

  /// Registers the client event callback (container failed/restarted).
  virtual void SetEventCallback(FrameworkEventCallback callback) = 0;

  /// Failure injection: kills the container's process and marks the slot
  /// failed. Auto-restarting frameworks then recover it themselves;
  /// others emit a kFailed event and wait for the client.
  virtual Status InjectContainerFailure(const JobId& job, int index) = 0;
};

}  // namespace frameworks
}  // namespace heron

#endif  // HERON_FRAMEWORKS_FRAMEWORK_H_
