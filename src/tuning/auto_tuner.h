#ifndef HERON_TUNING_AUTO_TUNER_H_
#define HERON_TUNING_AUTO_TUNER_H_

#include <vector>

#include "common/result.h"
#include "sim/heron_model.h"

namespace heron {
namespace tuning {

/// \brief The operator's objective for the §V-B knobs.
///
/// The paper: "As part of future work, we plan to automate the process of
/// configuring the values for these parameters based on real-time
/// observations of the workload performance." This module implements that
/// plan: it searches the (max_spout_pending, cache_drain_frequency) space
/// with the calibrated engine model and returns the throughput-maximizing
/// setting that honours a latency objective — the tradeoff Figs. 10-13
/// chart by hand.
struct TuningGoal {
  /// Upper bound on acceptable mean end-to-end latency; the tuner rejects
  /// configurations above it.
  double max_latency_ms = 50.0;
  /// Candidate grids. Defaults cover the ranges the paper sweeps.
  std::vector<int64_t> max_spout_pending_grid = {2000,  5000,  10000,
                                                 20000, 40000, 60000};
  std::vector<double> drain_frequency_grid_ms = {2, 5, 10, 20, 30};
};

/// One evaluated configuration.
struct Candidate {
  int64_t max_spout_pending = 0;
  double cache_drain_frequency_ms = 0;
  sim::SimResult result;
  bool feasible = false;  ///< Met the latency objective.
};

/// The tuner's verdict: the winning knob values plus the full search
/// record (so operators can see the frontier, not just the point).
struct TuningResult {
  int64_t max_spout_pending = 0;
  double cache_drain_frequency_ms = 0;
  sim::SimResult best;
  std::vector<Candidate> evaluated;
};

/// Searches the grid for the feasible configuration with the highest
/// throughput. `base` fixes everything except the two knobs (parallelism,
/// acking, optimization toggle, simulation windows).
///
/// Returns kNotFound when no grid point meets the latency objective —
/// the honest answer when the SLO is tighter than the topology's floor.
Result<TuningResult> AutoTune(const sim::HeronSimConfig& base,
                              const sim::HeronCostModel& costs,
                              const TuningGoal& goal);

}  // namespace tuning
}  // namespace heron

#endif  // HERON_TUNING_AUTO_TUNER_H_
