#include "external/kafka_sim.h"

#include <chrono>

#include "common/strings.h"

namespace heron {
namespace external {

void BurnCpu(int64_t nanos) {
  if (nanos <= 0) return;
  const auto start = std::chrono::steady_clock::now();
  // Volatile sink defeats the optimizer; the loop re-checks the clock in
  // chunks to keep the overshoot small without a syscall per iteration.
  volatile uint64_t sink = 0;
  while (true) {
    for (int i = 0; i < 64; ++i) {
      sink = sink + static_cast<uint64_t>(i) * 2654435761u;
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (elapsed >= nanos) break;
  }
}

SimKafka::SimKafka(const Options& options) : options_(options) {
  for (int p = 0; p < options_.partitions; ++p) {
    auto partition = std::make_unique<Partition>();
    partition->rng = Random(options_.seed + static_cast<uint64_t>(p) * 131);
    partitions_.push_back(std::move(partition));
  }
}

Status SimKafka::Fetch(int partition, int max_events,
                       std::vector<KafkaEvent>* out) {
  if (partition < 0 || partition >= options_.partitions) {
    return Status::InvalidArgument(
        StrFormat("no partition %d (have %d)", partition,
                  options_.partitions));
  }
  if (max_events <= 0) {
    return Status::InvalidArgument("max_events must be positive");
  }
  Partition& p = *partitions_[static_cast<size_t>(partition)];
  std::lock_guard<std::mutex> lock(p.mutex);
  BurnCpu(options_.fetch_cost_per_batch_ns +
          options_.fetch_cost_per_event_ns * max_events);
  out->clear();
  out->reserve(static_cast<size_t>(max_events));
  for (int i = 0; i < max_events; ++i) {
    KafkaEvent event;
    event.offset = p.next_offset++;
    event.key = StrFormat(
        "user-%llu", static_cast<unsigned long long>(p.rng.NextBelow(
                         static_cast<uint64_t>(options_.key_cardinality))));
    event.value = StrFormat(
        "event-%llu-%llu", static_cast<unsigned long long>(event.offset),
        static_cast<unsigned long long>(p.rng.NextUint64() & 0xFFFF));
    out->push_back(std::move(event));
  }
  total_fetched_.fetch_add(static_cast<uint64_t>(max_events),
                           std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace external
}  // namespace heron
