// Live-cluster figure: the closed metrics→placement loop, end to end.
//
// A WordCount topology runs with one deliberately slow CountBolt (1.5ms
// busy-spin per word) under an offered load it cannot absorb. The bolt's
// inbound queue fills, its Stream Manager parks sends past the high
// watermark and starts a cluster-wide backpressure episode; the TMaster's
// ScalingPolicyEngine sees the sustained episode in the MetricsCache
// rollups, doubles the bolt's parallelism via IPacking::Repack, and rolls
// the new plan through the checkpoint-rollback restart path. The timeline
// below shows detection, the repack decision, the restart dip, and the
// recovered topology draining the stream at roughly twice the throughput.

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench/figures/fig_util.h"
#include "common/logging.h"
#include "runtime/local_cluster.h"
#include "statemgr/state_manager.h"
#include "tmaster/scaling_policy_engine.h"
#include "workloads/word_count.h"

using namespace heron;

namespace {

constexpr char kTopo[] = "scaling-figure";

Config FigureConfig() {
  // The live scaling recipe (mirrors the scaling_policy_test integration
  // test): per-tuple envelopes end to end so queue depth is visible to
  // the backpressure watermarks, a small bolt inbound queue, a deep ack
  // window to hold a standing backlog, and the policy engine armed with
  // a 2-window hysteresis.
  Config config;
  config.SetInt(config_keys::kNumContainersHint, 2);
  config.SetInt(config_keys::kSchedulerMonitorIntervalMs, 50);
  config.SetInt(config_keys::kSchedulerMonitorMissLimit, 10);
  config.SetInt(config_keys::kMetricsCollectIntervalMs, 20);
  config.SetInt(config_keys::kMetricsCacheWindowSec, 1);
  config.SetInt(config_keys::kInstanceEmitBatchTuples, 1);
  config.SetInt(config_keys::kCacheDrainSizeBytes, 1);
  config.SetInt(config_keys::kInstanceInboundCapacity, 128);
  config.SetInt(config_keys::kBackpressureHighWater, 64);
  config.SetInt(config_keys::kBackpressureLowWater, 16);
  config.SetBool(config_keys::kScalingEnabled, true);
  config.SetDouble(config_keys::kScalingBackpressureRatio, 0.05);
  config.SetInt(config_keys::kScalingHotWindows, 2);
  config.SetInt(config_keys::kScalingCooldownMs, 60000);
  config.SetDouble(config_keys::kScalingFactor, 2.0);
  config.SetInt(config_keys::kScalingMaxParallelism, 4);
  config.SetBool(config_keys::kAckingEnabled, true);
  config.SetInt(config_keys::kMessageTimeoutMs, 600000);
  config.SetInt(config_keys::kMaxSpoutPending, 1024);
  config.Set(config_keys::kCheckpointMode, "exactly-once");
  config.SetInt(config_keys::kCheckpointIntervalMs, 50);
  config.SetInt(workloads::kCountBoltDelayUs, 1500);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseSmoke(argc, argv);
  Logging::SetLevel(LogLevel::kError);
  bench::JsonReport report("scaling_detect_repack");

  const uint64_t emit_limit = bench::FastMode() ? 6000 : 16000;
  bench::PrintFigureHeader(
      "Live auto-scaling: detect -> repack -> recover (TMaster policy loop)",
      "a hot component triggers Repack; topology resumes at 2x parallelism");

  const Config config = FigureConfig();
  runtime::LocalCluster cluster(config);
  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 200;
  spout_options.words_per_call = 4;
  spout_options.emit_limit = emit_limit;
  auto topology = workloads::BuildWordCountTopology(kTopo, 1, 1,
                                                    spout_options, config);
  HERON_CHECK_OK(topology.status());
  HERON_CHECK_OK(cluster.Submit(*topology));
  auto* engine = cluster.scaling_engine();
  if (engine == nullptr) {
    std::fprintf(stderr, "scaling engine not enabled\n");
    return 1;
  }

  bench::PrintColumns({"t_ms", "acked", "acked_tps", "bp", "count_par",
                       "event"});

  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::seconds(120);
  auto elapsed_ms = [&] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  int64_t detect_ms = -1;    // First live backpressure marker.
  int64_t decision_ms = -1;  // Engine fired.
  int64_t swap_ms = -1;      // Scaled plan live (2 count tasks).
  int64_t done_ms = -1;      // Stream drained after the repack.
  uint64_t last_acked = 0;
  int64_t last_sample_ms = 0;
  int quiet_samples = 0;
  std::vector<double> tps_before;  // While hot, pre-decision.
  std::vector<double> tps_after;   // Post-swap plateau.

  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const int64_t now_ms = elapsed_ms();
    const uint64_t acked = cluster.SumCounter("instance.acked");
    // Restarted instances reset their counters; clamp the dip so the
    // rate column shows the restart as a zero, not a negative spike.
    const double tps = acked >= last_acked
                           ? static_cast<double>(acked - last_acked) * 1000.0 /
                                 static_cast<double>(now_ms - last_sample_ms)
                           : 0.0;
    const auto markers =
        statemgr::GetBackpressureContainers(*cluster.state_manager(), kTopo);
    const size_t bp = markers.ok() ? markers->size() : 0;
    const auto plan = cluster.physical_plan();
    const size_t count_par =
        plan != nullptr ? plan->TasksOfComponent("count").size() : 0;

    std::string event;
    if (detect_ms < 0 && bp > 0) {
      detect_ms = now_ms;
      event = "BACKPRESSURE DETECTED";
    }
    if (decision_ms < 0 && engine->decisions_fired() > 0) {
      decision_ms = now_ms;
      const auto d = engine->history()[0];
      event = "DECISION: " + d.component + " " + std::to_string(d.from) +
              " -> " + std::to_string(d.to) + " (" + d.reason + ")";
    }
    if (swap_ms < 0 && count_par >= 2) {
      swap_ms = now_ms;
      event = "SCALED PLAN LIVE";
    }
    if (decision_ms < 0 && bp > 0 && tps > 0) tps_before.push_back(tps);
    if (swap_ms >= 0 && tps > 0) tps_after.push_back(tps);

    bench::PrintCellInt(now_ms);
    bench::PrintCellInt(static_cast<int64_t>(acked));
    bench::PrintCell(tps);
    bench::PrintCellInt(static_cast<int64_t>(bp));
    bench::PrintCellInt(static_cast<int64_t>(count_par));
    bench::PrintCell(event.empty() ? "" : event.c_str());
    bench::EndRow();

    // Drained: the scaled plan is live and acks have gone quiet with the
    // full stream emitted (replay included).
    if (swap_ms >= 0 && acked == last_acked && acked >= emit_limit / 2) {
      if (++quiet_samples >= 10) {
        done_ms = now_ms;
        break;
      }
    } else {
      quiet_samples = 0;
    }
    last_acked = acked;
    last_sample_ms = now_ms;
  }
  HERON_CHECK_OK(cluster.Kill());

  if (decision_ms < 0 || swap_ms < 0) {
    std::printf("\n  FAILED: no scaling decision within the deadline\n");
    return 1;
  }

  auto mean = [](const std::vector<double>& v) {
    if (v.empty()) return 0.0;
    double sum = 0;
    for (double x : v) sum += x;
    return sum / static_cast<double>(v.size());
  };
  const double before = mean(tps_before);
  const double after = mean(tps_after);

  std::printf("\n  detect (first live marker):     %6lld ms\n",
              static_cast<long long>(detect_ms));
  std::printf("  decision (engine fired):        %6lld ms\n",
              static_cast<long long>(decision_ms));
  std::printf("  scaled plan live:               %6lld ms  (repack+restart "
              "%lld ms)\n",
              static_cast<long long>(swap_ms),
              static_cast<long long>(swap_ms - decision_ms));
  if (done_ms >= 0) {
    std::printf("  stream drained:                 %6lld ms\n",
                static_cast<long long>(done_ms));
  }
  std::printf("  throughput while hot (1 bolt):  %6.0f tuples/s\n", before);
  std::printf("  throughput after scale-up:      %6.0f tuples/s  %s\n", after,
              after > before ? "(RECOVERED ABOVE)" : "");

  report.Add("timeline", "detect_ms", static_cast<double>(detect_ms));
  report.Add("timeline", "decision_ms", static_cast<double>(decision_ms));
  report.Add("timeline", "plan_live_ms", static_cast<double>(swap_ms));
  if (done_ms >= 0)
    report.Add("timeline", "drained_ms", static_cast<double>(done_ms));
  report.Add("throughput", "before_tps", before);
  report.Add("throughput", "after_tps", after);
  report.Write();
  return 0;
}
