// Topology Master tests: ephemeral advertisement, single-active-master,
// failover via session expiry, scaling coordination (§IV-C / §IV-A), and
// the checkpoint coordinator's plan-swap fence.

#include "tmaster/tmaster.h"

#include <gtest/gtest.h>

#include "packing/round_robin_packing.h"
#include "proto/physical_plan.h"
#include "smgr/transport.h"
#include "statemgr/in_memory_state_manager.h"
#include "tmaster/checkpoint_coordinator.h"
#include "workloads/word_count.h"

namespace heron {
namespace tmaster {
namespace {

class TMasterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(state_.Initialize(Config()).ok());
    ASSERT_TRUE(statemgr::RegisterTopology(&state_, "wc").ok());
  }

  TopologyMaster::Options Options(const std::string& host = "h1") {
    TopologyMaster::Options options;
    options.topology = "wc";
    options.host = host;
    options.port = 9000;
    return options;
  }

  statemgr::InMemoryStateManager state_;
};

TEST_F(TMasterTest, StartAdvertisesLocation) {
  TopologyMaster tmaster(Options(), &state_, RealClock::Get());
  ASSERT_TRUE(tmaster.Start().ok());
  EXPECT_TRUE(tmaster.active());
  auto location = statemgr::GetTMasterLocation(state_, "wc");
  ASSERT_TRUE(location.ok());
  EXPECT_EQ(location->host, "h1");
  EXPECT_EQ(location->port, 9000);
}

TEST_F(TMasterTest, SecondMasterLosesTheRace) {
  TopologyMaster first(Options("h1"), &state_, RealClock::Get());
  ASSERT_TRUE(first.Start().ok());
  TopologyMaster second(Options("h2"), &state_, RealClock::Get());
  EXPECT_TRUE(second.Start().IsAlreadyExists());
  EXPECT_FALSE(second.active());
  // The advertisement still names the first.
  EXPECT_EQ(statemgr::GetTMasterLocation(state_, "wc")->host, "h1");
}

TEST_F(TMasterTest, FailoverAfterCrash) {
  auto first = std::make_unique<TopologyMaster>(Options("h1"), &state_,
                                                RealClock::Get());
  ASSERT_TRUE(first->Start().ok());

  // Stream Managers watch the location to learn about TMaster death
  // "immediately" (§IV-C).
  bool notified = false;
  ASSERT_TRUE(state_
                  .Watch(statemgr::paths::TMasterLocation("wc"),
                         [&notified](const statemgr::WatchEvent& e) {
                           notified =
                               e.type == statemgr::WatchEventType::kDeleted;
                         })
                  .ok());

  ASSERT_TRUE(first->Crash().ok());
  EXPECT_TRUE(notified);

  // A standby can now take over.
  TopologyMaster standby(Options("h2"), &state_, RealClock::Get());
  ASSERT_TRUE(standby.Start().ok());
  EXPECT_EQ(statemgr::GetTMasterLocation(state_, "wc")->host, "h2");
}

TEST_F(TMasterTest, StopIsIdempotent) {
  TopologyMaster tmaster(Options(), &state_, RealClock::Get());
  ASSERT_TRUE(tmaster.Start().ok());
  EXPECT_TRUE(tmaster.Stop().ok());
  EXPECT_TRUE(tmaster.Stop().ok());
  EXPECT_FALSE(tmaster.active());
}

TEST_F(TMasterTest, PublishesAndReadsPackingPlan) {
  TopologyMaster tmaster(Options(), &state_, RealClock::Get());
  ASSERT_TRUE(tmaster.Start().ok());

  auto topology = workloads::BuildWordCountTopology("wc", 2, 2);
  ASSERT_TRUE(topology.ok());
  packing::RoundRobinPacking packer;
  ASSERT_TRUE(packer.Initialize(Config(), *topology).ok());
  auto plan = packer.Pack();
  ASSERT_TRUE(plan.ok());

  ASSERT_TRUE(tmaster.PublishPackingPlan(*plan).ok());
  auto loaded = tmaster.CurrentPackingPlan();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, *plan);

  // Wrong-topology plans are rejected.
  packing::PackingPlan alien = *plan;
  alien.set_topology_name("other");
  EXPECT_TRUE(tmaster.PublishPackingPlan(alien).IsInvalidArgument());
}

TEST_F(TMasterTest, ScaleTopologyRepacksAndPublishes) {
  TopologyMaster tmaster(Options(), &state_, RealClock::Get());
  ASSERT_TRUE(tmaster.Start().ok());

  auto topology = workloads::BuildWordCountTopology("wc", 2, 2);
  ASSERT_TRUE(topology.ok());
  packing::RoundRobinPacking packer;
  ASSERT_TRUE(packer.Initialize(Config(), *topology).ok());
  auto plan = packer.Pack();
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(tmaster.PublishPackingPlan(*plan).ok());

  auto scaled = tmaster.ScaleTopology(&packer, {{"count", 5}});
  ASSERT_TRUE(scaled.ok()) << scaled.status().ToString();
  EXPECT_EQ(scaled->TasksOfComponent("count").size(), 5u);
  // The published record was updated too.
  EXPECT_EQ(tmaster.CurrentPackingPlan()->TasksOfComponent("count").size(),
            5u);
}

TEST_F(TMasterTest, ScaleRequiresActiveMaster) {
  TopologyMaster tmaster(Options(), &state_, RealClock::Get());
  packing::RoundRobinPacking packer;
  EXPECT_TRUE(tmaster.ScaleTopology(&packer, {{"count", 3}})
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(TMasterTest, BackpressureReportsSurfaceInTopologyStatus) {
  TopologyMaster tmaster(Options(), &state_, RealClock::Get());
  ASSERT_TRUE(tmaster.Start().ok());

  // Nothing reported yet: unthrottled topology, empty set (not an error).
  auto initiators = tmaster.BackpressureContainers();
  ASSERT_TRUE(initiators.ok());
  EXPECT_TRUE(initiators->empty());

  // Two containers trip; status lists both, ascending.
  ASSERT_TRUE(tmaster.ReportBackpressure(2, true).ok());
  ASSERT_TRUE(tmaster.ReportBackpressure(0, true).ok());
  initiators = tmaster.BackpressureContainers();
  ASSERT_TRUE(initiators.ok());
  EXPECT_EQ(*initiators, (std::vector<int>{0, 2}));
  // Re-reporting an active container is idempotent.
  ASSERT_TRUE(tmaster.ReportBackpressure(2, true).ok());
  EXPECT_EQ(tmaster.BackpressureContainers()->size(), 2u);

  // One releases; clearing twice (stop + teardown) is tolerated.
  ASSERT_TRUE(tmaster.ReportBackpressure(2, false).ok());
  ASSERT_TRUE(tmaster.ReportBackpressure(2, false).ok());
  EXPECT_EQ(*tmaster.BackpressureContainers(), std::vector<int>{0});

  // Unregistering the topology drops the markers with everything else.
  ASSERT_TRUE(statemgr::UnregisterTopology(&state_, "wc").ok());
  EXPECT_TRUE(
      statemgr::GetBackpressureContainers(state_, "wc")->empty());
}

// -- CheckpointCoordinator plan-swap fence ---------------------------------

namespace {

std::shared_ptr<const proto::PhysicalPlan> MakePlan(int spouts, int bolts) {
  auto topology = workloads::BuildWordCountTopology("wc", spouts, bolts);
  EXPECT_TRUE(topology.ok());
  packing::RoundRobinPacking packer;
  EXPECT_TRUE(packer.Initialize(Config(), *topology).ok());
  auto packed = packer.Pack();
  EXPECT_TRUE(packed.ok());
  auto plan = proto::PhysicalPlan::Build(*topology, *packed);
  EXPECT_TRUE(plan.ok());
  return *plan;
}

}  // namespace

class CoordinatorFenceTest : public ::testing::Test {
 protected:
  CoordinatorFenceTest()
      : coordinator_(MakeOptions(), &state_, &transport_, RealClock::Get()) {}

  void SetUp() override {
    ASSERT_TRUE(state_.Initialize(Config()).ok());
    ASSERT_TRUE(statemgr::RegisterTopology(&state_, "wc").ok());
  }

  static CheckpointCoordinator::Options MakeOptions() {
    CheckpointCoordinator::Options options;
    options.topology = "wc";
    options.interval_ms = 0;  // Explicit TriggerNow drives everything.
    return options;
  }

  // A task reporting its snapshot: one child node under the checkpoint.
  void WriteSnapshot(uint64_t ckpt, int task) {
    ASSERT_TRUE(statemgr::EnsurePath(
                    &state_, statemgr::paths::CheckpointTask("wc", ckpt, task),
                    "bytes")
                    .ok());
  }

  statemgr::InMemoryStateManager state_;
  smgr::Transport transport_;
  CheckpointCoordinator coordinator_;
};

TEST_F(CoordinatorFenceTest, CompletionCountsAgainstTriggeringPlanOnly) {
  // Trigger under a 4-task plan, then report only 2 snapshots. A 2-task
  // plan's worth of children must never be judged "globally complete"
  // for a checkpoint triggered against 4 tasks.
  coordinator_.SetPlan(MakePlan(2, 2));
  EXPECT_EQ(coordinator_.plan_epoch(), 1u);
  const uint64_t first = coordinator_.TriggerNow();
  ASSERT_NE(first, 0u);
  WriteSnapshot(first, 0);
  WriteSnapshot(first, 1);
  coordinator_.Tick(0);
  EXPECT_EQ(coordinator_.latest_complete(), 0u);
  EXPECT_EQ(coordinator_.in_flight(), first);

  // The remaining two arrive; now it completes.
  WriteSnapshot(first, 2);
  WriteSnapshot(first, 3);
  coordinator_.Tick(0);
  EXPECT_EQ(coordinator_.latest_complete(), first);
  EXPECT_EQ(coordinator_.in_flight(), 0u);
}

TEST_F(CoordinatorFenceTest, SetPlanMidFlightAbortsAndDeletesPartialTree) {
  coordinator_.SetPlan(MakePlan(2, 2));
  const uint64_t doomed = coordinator_.TriggerNow();
  ASSERT_NE(doomed, 0u);
  WriteSnapshot(doomed, 0);
  WriteSnapshot(doomed, 1);

  // Scaling swaps in a smaller plan mid-flight. Without the abort the
  // next poll would see 2 children >= the new plan's 2 tasks and publish
  // a restore target that is missing half the old plan's state.
  coordinator_.SetPlan(MakePlan(1, 1));
  EXPECT_EQ(coordinator_.plan_epoch(), 2u);
  EXPECT_EQ(coordinator_.in_flight(), 0u);
  EXPECT_EQ(coordinator_.aborted(), 1u);
  // The partial tree is gone from the state manager.
  EXPECT_FALSE(
      state_.ListChildren(statemgr::paths::Checkpoint("wc", doomed)).ok());
  coordinator_.Tick(0);
  EXPECT_EQ(coordinator_.latest_complete(), 0u);

  // The new epoch checkpoints cleanly under the new plan.
  const uint64_t fresh = coordinator_.TriggerNow();
  ASSERT_NE(fresh, 0u);
  WriteSnapshot(fresh, 0);
  WriteSnapshot(fresh, 1);
  coordinator_.Tick(0);
  EXPECT_EQ(coordinator_.latest_complete(), fresh);
  EXPECT_EQ(coordinator_.completed(), 1u);
}

}  // namespace
}  // namespace tmaster
}  // namespace heron
