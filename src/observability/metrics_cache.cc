#include "observability/metrics_cache.h"

#include <algorithm>
#include <cstdlib>

#include "common/strings.h"
#include "observability/json.h"

namespace heron {
namespace observability {

namespace {

/// "task-7" → 7; anything else → -1.
int SourceTask(const std::string& source) {
  if (source.rfind("task-", 0) != 0) return -1;
  return std::atoi(source.c_str() + 5);
}

bool IsSmgrSource(const std::string& source) {
  return source.rfind("smgr-", 0) == 0;
}

double LastOr(const std::map<std::string, double>& samples,
              const std::string& name, double fallback) {
  auto it = samples.find(name);
  return it == samples.end() ? fallback : it->second;
}

/// Counter delta across the window, reset-aware. A restarted process
/// comes back with its counters at zero, so `last < first` for the same
/// source means the counter was reborn mid-window — the plain difference
/// would be negative, poisoning throughput and every scaling decision
/// downstream. The pre-reset run-up is unknowable from two samples; the
/// post-reset value is a correct lower bound on the work done this
/// window, so rebase the delta to it.
double Delta(const std::map<std::string, double>& first,
             const std::map<std::string, double>& last,
             const std::string& name) {
  const double begin = LastOr(first, name, 0);
  const double end = LastOr(last, name, 0);
  return end >= begin ? end - begin : end;
}

}  // namespace

void ComponentRollup::AppendTo(json::Writer* w) const {
  w->BeginObject();
  w->Key("component").String(component);
  w->Key("window_start_nanos").Int(window_start_nanos);
  w->Key("window_covered_sec").Number(window_covered_sec);
  w->Key("tasks").Int(tasks);
  w->Key("processed_delta").Number(processed_delta);
  w->Key("processed_total").Number(processed_total);
  w->Key("throughput_tps").Number(throughput_tps);
  w->Key("latency_ms")
      .BeginObject()
      .Key("p50")
      .Number(latency_p50_ms)
      .Key("p90")
      .Number(latency_p90_ms)
      .Key("p99")
      .Number(latency_p99_ms)
      .EndObject();
  w->Key("backpressure_ms").Number(backpressure_ms);
  w->Key("restarts").Uint(restarts);
  w->EndObject();
}

std::string ComponentRollup::ToJson() const {
  json::Writer w;
  AppendTo(&w);
  return w.Take();
}

ComponentRollup ComponentRollup::FromValue(const json::Value& v) {
  ComponentRollup out;
  out.component = v.StringOr("component", "");
  out.window_start_nanos =
      static_cast<int64_t>(v.NumberOr("window_start_nanos", 0));
  out.window_covered_sec = v.NumberOr("window_covered_sec", 0);
  out.tasks = static_cast<int>(v.NumberOr("tasks", 0));
  out.processed_delta = v.NumberOr("processed_delta", 0);
  out.processed_total = v.NumberOr("processed_total", 0);
  out.throughput_tps = v.NumberOr("throughput_tps", 0);
  if (const json::Value* lat = v.Find("latency_ms")) {
    out.latency_p50_ms = lat->NumberOr("p50", 0);
    out.latency_p90_ms = lat->NumberOr("p90", 0);
    out.latency_p99_ms = lat->NumberOr("p99", 0);
  }
  out.backpressure_ms = v.NumberOr("backpressure_ms", 0);
  out.restarts = static_cast<uint64_t>(v.NumberOr("restarts", 0));
  return out;
}

Result<ComponentRollup> ComponentRollup::FromJson(std::string_view text) {
  HERON_ASSIGN_OR_RETURN(json::Value v, json::Parse(text));
  if (v.kind != json::Value::Kind::kObject) {
    return Status::IOError("component rollup JSON is not an object");
  }
  return FromValue(v);
}

MetricsCache::MetricsCache(Options options) : options_(options) {}

void MetricsCache::SetTopology(const std::string& topology,
                               std::map<TaskId, ComponentId> task_component) {
  std::lock_guard<std::mutex> lock(mutex_);
  topology_ = topology;
  task_component_ = std::move(task_component);
}

void MetricsCache::SetPublishTarget(statemgr::IStateManager* sm) {
  std::lock_guard<std::mutex> lock(mutex_);
  publish_target_ = sm;
}

void MetricsCache::NoteRestart(ContainerId container) {
  (void)container;
  std::lock_guard<std::mutex> lock(mutex_);
  ++restarts_;
}

void MetricsCache::Flush(const std::string& source,
                         const std::vector<metrics::Sample>& samples,
                         int64_t collected_at_nanos) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++rounds_ingested_;
  const int64_t bucket = collected_at_nanos / options_.window_nanos;
  Window* window = nullptr;
  bool rolled = false;
  if (windows_.empty() || windows_.back().bucket < bucket) {
    windows_.push_back(Window{bucket, {}});
    rolled = windows_.size() > 1;
    while (windows_.size() > options_.max_windows) windows_.pop_front();
    window = &windows_.back();
  } else {
    // Usually the newest window; a straggler round for an older bucket
    // lands in its own window if still retained.
    for (auto it = windows_.rbegin(); it != windows_.rend(); ++it) {
      if (it->bucket == bucket) {
        window = &*it;
        break;
      }
    }
    if (window == nullptr) return;  // Older than the retention horizon.
  }

  SourceWindow& sw = window->sources[source];
  const bool first_round = sw.first_at_nanos == 0;
  if (first_round) sw.first_at_nanos = collected_at_nanos;
  sw.last_at_nanos = collected_at_nanos;
  for (const auto& sample : samples) {
    if (first_round) sw.first[sample.name] = sample.value;
    sw.last[sample.name] = sample.value;
  }

  if (rolled && publish_target_ != nullptr && !topology_.empty()) {
    // The previous window just completed: refresh the state tree. Errors
    // are swallowed — publishing is best-effort observability, never a
    // data-plane failure.
    (void)PublishLocked();
  }
}

const MetricsCache::Window* MetricsCache::NewestWindowLocked() const {
  for (auto it = windows_.rbegin(); it != windows_.rend(); ++it) {
    if (!it->sources.empty()) return &*it;
  }
  return nullptr;
}

std::vector<ComponentRollup> MetricsCache::RollupsLocked(
    const Window& w) const {
  std::map<std::string, ComponentRollup> by_component;
  for (const auto& [source, sw] : w.sources) {
    const int task = SourceTask(source);
    if (task < 0) continue;
    auto comp_it = task_component_.find(task);
    if (comp_it == task_component_.end()) continue;
    ComponentRollup& rollup = by_component[comp_it->second];
    if (rollup.component.empty()) {
      rollup.component = comp_it->second;
      rollup.window_start_nanos = w.bucket * options_.window_nanos;
    }
    ++rollup.tasks;
    const double covered =
        static_cast<double>(sw.last_at_nanos - sw.first_at_nanos) / 1e9;
    rollup.window_covered_sec = std::max(rollup.window_covered_sec, covered);
    rollup.processed_delta += Delta(sw.first, sw.last, "instance.executed") +
                              Delta(sw.first, sw.last, "instance.emitted");
    rollup.processed_total += LastOr(sw.last, "instance.executed", 0) +
                              LastOr(sw.last, "instance.emitted", 0);
    // Complete latency only exists on spout tasks; fold the worst task in
    // (tails matter more than averages for the status view).
    rollup.latency_p50_ms = std::max(
        rollup.latency_p50_ms,
        LastOr(sw.last, "instance.complete.latency.ns.p50", 0) / 1e6);
    rollup.latency_p90_ms = std::max(
        rollup.latency_p90_ms,
        LastOr(sw.last, "instance.complete.latency.ns.p90", 0) / 1e6);
    rollup.latency_p99_ms = std::max(
        rollup.latency_p99_ms,
        LastOr(sw.last, "instance.complete.latency.ns.p99", 0) / 1e6);
  }
  std::vector<ComponentRollup> out;
  out.reserve(by_component.size());
  for (auto& [_, rollup] : by_component) {
    if (rollup.window_covered_sec > 0) {
      rollup.throughput_tps = rollup.processed_delta / rollup.window_covered_sec;
    }
    out.push_back(std::move(rollup));
  }
  return out;
}

ComponentRollup MetricsCache::TopologyRollupLocked(const Window& w) const {
  ComponentRollup total;
  total.component = kTopologyRollup;
  total.window_start_nanos = w.bucket * options_.window_nanos;
  total.restarts = restarts_;
  for (const ComponentRollup& rollup : RollupsLocked(w)) {
    total.tasks += rollup.tasks;
    total.window_covered_sec =
        std::max(total.window_covered_sec, rollup.window_covered_sec);
    total.processed_delta += rollup.processed_delta;
    total.processed_total += rollup.processed_total;
    total.latency_p50_ms = std::max(total.latency_p50_ms, rollup.latency_p50_ms);
    total.latency_p90_ms = std::max(total.latency_p90_ms, rollup.latency_p90_ms);
    total.latency_p99_ms = std::max(total.latency_p99_ms, rollup.latency_p99_ms);
  }
  for (const auto& [source, sw] : w.sources) {
    if (!IsSmgrSource(source)) continue;
    total.backpressure_ms +=
        Delta(sw.first, sw.last, "smgr.backpressure.duration.ns") / 1e6;
  }
  if (total.window_covered_sec > 0) {
    total.throughput_tps = total.processed_delta / total.window_covered_sec;
  }
  return total;
}

std::vector<ComponentRollup> MetricsCache::ComponentRollups() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Window* w = NewestWindowLocked();
  if (w == nullptr) return {};
  return RollupsLocked(*w);
}

std::map<TaskId, double> MetricsCache::PerTaskProcessedDelta() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<TaskId, double> out;
  const Window* w = NewestWindowLocked();
  if (w == nullptr) return out;
  for (const auto& [source, sw] : w->sources) {
    const int task = SourceTask(source);
    if (task < 0) continue;
    out[task] = Delta(sw.first, sw.last, "instance.executed") +
                Delta(sw.first, sw.last, "instance.emitted");
  }
  return out;
}

ComponentRollup MetricsCache::TopologyRollup() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Window* w = NewestWindowLocked();
  if (w == nullptr) {
    ComponentRollup empty;
    empty.component = kTopologyRollup;
    empty.restarts = restarts_;
    return empty;
  }
  return TopologyRollupLocked(*w);
}

Status MetricsCache::PublishLocked() {
  if (publish_target_ == nullptr || topology_.empty()) {
    return Status::FailedPrecondition("metrics cache has no publish target");
  }
  const Window* w = NewestWindowLocked();
  if (w == nullptr) return Status::OK();
  HERON_RETURN_NOT_OK(
      statemgr::EnsurePath(publish_target_,
                           statemgr::paths::MetricsTopologyRollup(topology_),
                           TopologyRollupLocked(*w).ToJson()));
  for (const ComponentRollup& rollup : RollupsLocked(*w)) {
    HERON_RETURN_NOT_OK(statemgr::EnsurePath(
        publish_target_,
        statemgr::paths::MetricsComponent(topology_, rollup.component),
        rollup.ToJson()));
  }
  return Status::OK();
}

Status MetricsCache::PublishNow() {
  std::lock_guard<std::mutex> lock(mutex_);
  return PublishLocked();
}

size_t MetricsCache::window_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return windows_.size();
}

uint64_t MetricsCache::rounds_ingested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rounds_ingested_;
}

}  // namespace observability
}  // namespace heron
