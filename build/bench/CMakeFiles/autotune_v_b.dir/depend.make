# Empty dependencies file for autotune_v_b.
# This may be replaced when dependencies are built.
