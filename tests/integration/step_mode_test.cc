// Deterministic step-mode integration: a full route → cache-drain → ack
// cycle driven entirely through EventLoop::RunOnce() against a SimClock —
// zero threads, bit-replayable. This is the §II kernel's testing payoff:
// the same reactors that run on live threads in production single-step
// here, so end-to-end tuple-tree semantics are checked without sleeps,
// timeouts or scheduling luck.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "instance/instance.h"
#include "packing/round_robin_packing.h"
#include "runtime/tasklet.h"
#include "smgr/stream_manager.h"
#include "workloads/word_count.h"

namespace heron {
namespace {

class StepModeTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kEmitLimit = 20;

  void SetUp() override {
    Logging::SetLevel(LogLevel::kError);
    topology_config_.SetBool(config_keys::kAckingEnabled, true);
    workloads::WordSpout::Options spout_options;
    spout_options.dictionary_size = 1000;
    spout_options.words_per_call = 1;
    spout_options.emit_limit = kEmitLimit;  // Finite stream → quiescence.
    auto topology = workloads::BuildWordCountTopology(
        "step-mode", /*spouts=*/1, /*bolts=*/1, spout_options,
        topology_config_);
    ASSERT_TRUE(topology.ok());

    packing::RoundRobinPacking packer;
    Config packing_config;
    packing_config.SetInt(config_keys::kNumContainersHint, 1);
    ASSERT_TRUE(packer.Initialize(packing_config, *topology).ok());
    auto plan = packer.Pack();
    ASSERT_TRUE(plan.ok());
    physical_ = *proto::PhysicalPlan::Build(*topology, *plan);
    ASSERT_EQ(physical_->num_containers(), 1);
  }

  Config topology_config_;
  std::shared_ptr<const proto::PhysicalPlan> physical_;
};

TEST_F(StepModeTest, FullCycleDeterministic) {
  // Two identical universes must replay the same counters step for step.
  const auto run_universe = [this](int rounds) {
    SimClock clock(0);
    smgr::Transport transport(/*pooling_enabled=*/true);

    smgr::StreamManager::Options smgr_options;
    smgr_options.container = 0;
    smgr_options.acking = true;
    smgr_options.cache_drain_frequency_ms = 10;
    smgr::StreamManager smgr(smgr_options, physical_, &transport, &clock);
    EXPECT_TRUE(smgr.StartStepMode().ok());

    instance::HeronInstance::Options spout_options;
    spout_options.task = 0;
    spout_options.config = topology_config_;
    spout_options.acking = true;
    spout_options.max_spout_pending = 8;
    instance::HeronInstance spout(spout_options, physical_, &transport,
                                  &clock, &smgr);
    EXPECT_TRUE(spout.StartStepMode().ok());

    instance::HeronInstance::Options bolt_options;
    bolt_options.task = 1;
    bolt_options.config = topology_config_;
    bolt_options.acking = true;
    instance::HeronInstance bolt(bolt_options, physical_, &transport, &clock,
                                 &smgr);
    EXPECT_TRUE(bolt.StartStepMode().ok());

    std::vector<uint64_t> trace;
    for (int round = 0; round < rounds; ++round) {
      // 1. Spout: NextTuple emits one tracked word; outbox ships the
      //    unrouted batch to the local SMGR.
      spout.loop()->RunOnce();
      // 2. SMGR: routes the batch, registers the root, caches the tuple.
      smgr.loop()->RunOnce();
      // 3. The cache-drain timer fires on SimClock time, not wall time.
      clock.AdvanceMillis(10);
      smgr.loop()->RunOnce();
      // 4. Bolt: executes the word, acks; the ack batch flushes back.
      bolt.loop()->RunOnce();
      // 5. SMGR: applies the XOR update → root completes → root event.
      smgr.loop()->RunOnce();
      // 6. Spout: consumes the completion, Ack() reaches user code.
      spout.loop()->RunOnce();

      trace.push_back(spout.metrics()->GetCounter("instance.emitted")->value());
      trace.push_back(spout.metrics()->GetCounter("instance.acked")->value());
      trace.push_back(bolt.metrics()->GetCounter("instance.executed")->value());
      trace.push_back(smgr.acks_pending());
    }

    // Quiescence: the finite stream fully emitted, every word executed,
    // every tuple tree closed, nothing left in flight.
    EXPECT_EQ(spout.metrics()->GetCounter("instance.emitted")->value(),
              kEmitLimit);
    EXPECT_EQ(bolt.metrics()->GetCounter("instance.executed")->value(),
              kEmitLimit);
    EXPECT_EQ(spout.metrics()->GetCounter("instance.acked")->value(),
              kEmitLimit);
    EXPECT_EQ(smgr.acks_pending(), 0u);
    EXPECT_EQ(spout.pending_count(), 0);

    bolt.Stop();
    spout.Stop();
    smgr.Stop();
    return trace;
  };

  const auto first = run_universe(40);
  const auto second = run_universe(40);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST_F(StepModeTest, MaxSpoutPendingThrottlesInStepMode) {
  SimClock clock(0);
  smgr::Transport transport(true);

  smgr::StreamManager::Options smgr_options;
  smgr_options.container = 0;
  smgr_options.acking = true;
  smgr::StreamManager smgr(smgr_options, physical_, &transport, &clock);
  ASSERT_TRUE(smgr.StartStepMode().ok());

  instance::HeronInstance::Options spout_options;
  spout_options.task = 0;
  spout_options.config = topology_config_;
  spout_options.acking = true;
  spout_options.max_spout_pending = 3;  // §V-B flow control.
  instance::HeronInstance spout(spout_options, physical_, &transport, &clock,
                                &smgr);
  ASSERT_TRUE(spout.StartStepMode().ok());

  // With no acks flowing back, emission stalls at the pending cap.
  for (int i = 0; i < 20; ++i) spout.loop()->RunOnce();
  EXPECT_EQ(spout.metrics()->GetCounter("instance.emitted")->value(), 3u);
  EXPECT_EQ(spout.pending_count(), 3);

  spout.Stop();
  smgr.Stop();
}

// Cooperative mode's two-universe harness: the same modules ride an
// inline (threaded=false) TaskletPool, driven by DriveAll() against a
// SimClock. Replays must be byte-identical — cooperative scheduling adds
// slice budgets and round-robin passes, but no nondeterminism.
TEST_F(StepModeTest, CooperativeInlinePoolDeterministic) {
  const auto run_universe = [this](int rounds) {
    SimClock clock(0);
    smgr::Transport transport(/*pooling_enabled=*/true);

    runtime::TaskletPool::Options pool_options;
    pool_options.workers = 1;
    pool_options.threaded = false;
    runtime::TaskletPool pool(pool_options, &clock);

    smgr::StreamManager::Options smgr_options;
    smgr_options.container = 0;
    smgr_options.acking = true;
    smgr_options.cache_drain_frequency_ms = 10;
    smgr::StreamManager smgr(smgr_options, physical_, &transport, &clock);
    EXPECT_TRUE(smgr.StartCooperative(&pool).ok());

    instance::HeronInstance::Options spout_options;
    spout_options.task = 0;
    spout_options.config = topology_config_;
    spout_options.acking = true;
    spout_options.max_spout_pending = 8;
    instance::HeronInstance spout(spout_options, physical_, &transport,
                                  &clock, &smgr);
    EXPECT_TRUE(spout.StartCooperative(&pool).ok());

    instance::HeronInstance::Options bolt_options;
    bolt_options.task = 1;
    bolt_options.config = topology_config_;
    bolt_options.acking = true;
    instance::HeronInstance bolt(bolt_options, physical_, &transport, &clock,
                                 &smgr);
    EXPECT_TRUE(bolt.StartCooperative(&pool).ok());

    std::vector<uint64_t> trace;
    for (int round = 0; round < rounds; ++round) {
      // One scheduler pass over {smgr, spout, bolt}, then the cache-drain
      // timer's clock edge, then the pass that consumes what it flushed.
      pool.DriveAll();
      clock.AdvanceMillis(10);
      pool.DriveAll();

      trace.push_back(spout.metrics()->GetCounter("instance.emitted")->value());
      trace.push_back(spout.metrics()->GetCounter("instance.acked")->value());
      trace.push_back(bolt.metrics()->GetCounter("instance.executed")->value());
      trace.push_back(smgr.acks_pending());
    }

    // Quiescence under the same drive loop (bounded for safety).
    for (int i = 0; i < 100; ++i) {
      const bool worked = pool.DriveAll();
      clock.AdvanceMillis(10);
      if (!worked && !pool.DriveAll()) break;
    }
    EXPECT_EQ(spout.metrics()->GetCounter("instance.emitted")->value(),
              kEmitLimit);
    EXPECT_EQ(bolt.metrics()->GetCounter("instance.executed")->value(),
              kEmitLimit);
    EXPECT_EQ(spout.metrics()->GetCounter("instance.acked")->value(),
              kEmitLimit);
    EXPECT_EQ(smgr.acks_pending(), 0u);
    EXPECT_EQ(spout.pending_count(), 0);

    bolt.Stop();
    spout.Stop();
    smgr.Stop();
    return trace;
  };

  const auto first = run_universe(20);
  const auto second = run_universe(20);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

}  // namespace
}  // namespace heron
