file(REMOVE_RECURSE
  "CMakeFiles/micro_tuple_cache.dir/micro/micro_tuple_cache.cc.o"
  "CMakeFiles/micro_tuple_cache.dir/micro/micro_tuple_cache.cc.o.d"
  "micro_tuple_cache"
  "micro_tuple_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tuple_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
