file(REMOVE_RECURSE
  "CMakeFiles/state_manager_test.dir/statemgr/state_manager_test.cc.o"
  "CMakeFiles/state_manager_test.dir/statemgr/state_manager_test.cc.o.d"
  "state_manager_test"
  "state_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
