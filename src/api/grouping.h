#ifndef HERON_API_GROUPING_H_
#define HERON_API_GROUPING_H_

#include <functional>
#include <memory>
#include <vector>

#include "api/fields.h"
#include "api/tuple.h"
#include "common/random.h"

namespace heron {
namespace api {

/// \brief How a stream is partitioned across the consuming bolt's tasks.
enum class GroupingKind : uint8_t {
  kShuffle = 0,   ///< Uniform random task choice.
  kFields = 1,    ///< Hash of selected fields → one task (sticky per key).
  kAll = 2,       ///< Replicated to every task.
  kGlobal = 3,    ///< Always the lowest task id.
  kDirect = 4,    ///< Emitter names the destination task explicitly.
  kCustom = 5,    ///< User-provided function.
};

/// \brief User-defined grouping: maps (values, #tasks) to task indices.
/// Must be deterministic for a given input if replay consistency matters.
using CustomGroupingFn =
    std::function<std::vector<int>(const Values& values, int num_tasks)>;

/// \brief Resolves destination task ids for tuples on one (stream →
/// consumer) edge. Built once from the physical plan; the data plane calls
/// Route() per tuple with no allocation on the single-destination paths.
class Router {
 public:
  /// \param kind          the grouping
  /// \param schema        producer's output schema on this stream
  /// \param grouping_fields  selected fields (kFields only)
  /// \param target_tasks  consumer task ids, sorted ascending
  /// \param seed          shuffle RNG seed (deterministic tests/sims)
  Router(GroupingKind kind, const Fields& schema, const Fields& grouping_fields,
         std::vector<TaskId> target_tasks, uint64_t seed = 1,
         CustomGroupingFn custom_fn = nullptr);

  /// Appends the destination task id(s) for `values` to `out`.
  /// kAll appends every target; others append exactly one.
  void Route(const Values& values, std::vector<TaskId>* out);

  /// Single-destination fast path used by the hot loop; valid for every
  /// kind except kAll and kCustom (which may fan out).
  TaskId RouteOne(const Values& values);

  GroupingKind kind() const { return kind_; }
  const std::vector<TaskId>& target_tasks() const { return target_tasks_; }

  /// Computes the fields-grouping hash of `values` with this router's
  /// selected field indices. Exposed for tests of routing determinism.
  uint64_t KeyHash(const Values& values) const;

 private:
  GroupingKind kind_;
  std::vector<int> field_indices_;  // Positions of grouping fields in schema.
  std::vector<TaskId> target_tasks_;
  Random rng_;
  CustomGroupingFn custom_fn_;
};

}  // namespace api
}  // namespace heron

#endif  // HERON_API_GROUPING_H_
