#include "packing/round_robin_packing.h"

#include "common/strings.h"

namespace heron {
namespace packing {

Status RoundRobinPacking::Initialize(
    const Config& config, std::shared_ptr<const api::Topology> topology) {
  if (topology == nullptr) {
    return Status::InvalidArgument("RoundRobinPacking: null topology");
  }
  config_ = config.MergedWith(topology->config());
  topology_ = std::move(topology);
  return Status::OK();
}

Result<PackingPlan> RoundRobinPacking::Pack() {
  if (topology_ == nullptr) {
    return Status::FailedPrecondition("RoundRobinPacking not initialized");
  }
  const auto instances = internal::EnumerateInstances(*topology_);
  const int64_t default_containers =
      (static_cast<int64_t>(instances.size()) + 3) / 4;
  const int64_t num_containers = config_.GetIntOr(
      config_keys::kNumContainersHint, default_containers);
  if (num_containers < 1) {
    return Status::InvalidArgument(StrFormat(
        "number of containers must be >= 1, got %lld",
        static_cast<long long>(num_containers)));
  }
  const size_t n = std::min<size_t>(static_cast<size_t>(num_containers),
                                    instances.size());

  std::vector<ContainerPlan> containers(n);
  for (size_t c = 0; c < n; ++c) {
    containers[c].id = static_cast<ContainerId>(c);
  }
  for (size_t i = 0; i < instances.size(); ++i) {
    containers[i % n].instances.push_back(instances[i]);
  }
  for (auto& c : containers) {
    c.required = c.InstanceTotal() + ContainerOverhead();
  }

  PackingPlan plan(topology_->name(), std::move(containers));
  HERON_RETURN_NOT_OK(plan.Validate(/*require_dense_task_ids=*/true));
  return plan;
}

Result<PackingPlan> RoundRobinPacking::Repack(
    const PackingPlan& current,
    const std::map<ComponentId, int>& parallelism_changes) {
  if (topology_ == nullptr) {
    return Status::FailedPrecondition("RoundRobinPacking not initialized");
  }
  // Free space in existing containers is bounded by the largest container
  // already provisioned, so scaling up prefers balance over growth.
  Resource capacity =
      Resource::Max(current.MaxContainerResource(),
                    internal::ContainerCapacityFromConfig(config_));
  return internal::RepackMinimalDisruption(*topology_, current,
                                           parallelism_changes, capacity);
}

}  // namespace packing
}  // namespace heron
