#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace heron {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_emit_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void Logging::SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logging::level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  const bool enabled = Logging::Enabled(level_);
  if (enabled || level_ == LogLevel::kFatal) {
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
    // Strip directories from the file path for readability.
    const char* base = file_;
    for (const char* p = file_; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    std::lock_guard<std::mutex> lock(g_emit_mutex);
    std::fprintf(stderr, "[%s %lld.%03lld %s:%d] %s\n", LevelTag(level_),
                 static_cast<long long>(ms / 1000),
                 static_cast<long long>(ms % 1000), base, line_,
                 stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal

}  // namespace heron
