#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/clock.h"
#include "metrics/metrics_manager.h"

namespace heron {
namespace metrics {
namespace {

TEST(CounterTest, IncrementsAndResets) {
  Counter c;
  c.Increment();
  c.Increment(9);
  EXPECT_EQ(c.value(), 10u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(5);
  g.Add(-2);
  EXPECT_EQ(g.value(), 3);
}

TEST(HistogramTest, CountSumMinMaxMean) {
  Histogram h;
  for (const uint64_t v : {10u, 20u, 30u, 40u}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 100u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 40u);
  EXPECT_DOUBLE_EQ(h.Mean(), 25.0);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, QuantilesApproximateWithinBucketResolution) {
  Histogram h;
  // 1000 samples uniform on [1000, 2000).
  for (int i = 0; i < 1000; ++i) h.Record(1000 + i);
  const uint64_t p50 = h.Quantile(0.5);
  // Log2 buckets: everything lands in [1024, 2048); interpolation should
  // put the median within a factor-of-2 band of the true value.
  EXPECT_GE(p50, 1000u);
  EXPECT_LE(p50, 2000u);
  EXPECT_LE(h.Quantile(0.0), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.5), h.Quantile(1.0));
  EXPECT_EQ(h.Quantile(1.0), 1999u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(100);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(RegistryTest, SameNameSameMetric) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("y"), a);
}

TEST(RegistryTest, SnapshotFlattensEverything) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(3);
  registry.GetGauge("g")->Set(-7);
  registry.GetHistogram("h")->Record(50);
  const auto samples = registry.Snapshot();

  const auto find = [&samples](const std::string& name) -> double {
    for (const auto& s : samples) {
      if (s.name == name) return s.value;
    }
    ADD_FAILURE() << "missing sample " << name;
    return -1;
  };
  EXPECT_DOUBLE_EQ(find("c"), 3);
  EXPECT_DOUBLE_EQ(find("g"), -7);
  EXPECT_DOUBLE_EQ(find("h.count"), 1);
  EXPECT_DOUBLE_EQ(find("h.mean"), 50);
}

TEST(RegistryTest, SnapshotEmitsMinAndMidQuantiles) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat");
  for (const uint64_t v : {10u, 20u, 40u, 80u}) h->Record(v);
  const auto samples = registry.Snapshot();

  const auto find = [&samples](const std::string& name) -> double {
    for (const auto& s : samples) {
      if (s.name == name) return s.value;
    }
    ADD_FAILURE() << "missing sample " << name;
    return -1;
  };
  // The full histogram sample family:
  // .count/.mean/.min/.p50/.p90/.p99/.p999/.p9999/.max.
  EXPECT_DOUBLE_EQ(find("lat.count"), 4);
  EXPECT_DOUBLE_EQ(find("lat.min"), 10);
  EXPECT_DOUBLE_EQ(find("lat.max"), 80);
  EXPECT_DOUBLE_EQ(find("lat.p90"), static_cast<double>(h->Quantile(0.9)));
  // Ordering sanity across the emitted quantiles, deep tail included.
  EXPECT_LE(find("lat.min"), find("lat.p50"));
  EXPECT_LE(find("lat.p50"), find("lat.p90"));
  EXPECT_LE(find("lat.p90"), find("lat.p99"));
  EXPECT_LE(find("lat.p99"), find("lat.p999"));
  EXPECT_LE(find("lat.p999"), find("lat.p9999"));
  EXPECT_LE(find("lat.p9999"), find("lat.max"));
}

TEST(InMemorySinkTest, EvictsOldestRoundsPerSourceAtCap) {
  InMemorySink sink(/*max_rounds_per_source=*/2);
  const auto round = [&sink](const std::string& source, double value,
                             int64_t at) {
    sink.Flush(source, {{"m", value}}, at);
  };
  round("a", 1, 100);
  round("b", 10, 150);
  round("a", 2, 200);
  round("a", 3, 300);  // Evicts a@100.
  round("a", 4, 400);  // Evicts a@200.

  EXPECT_EQ(sink.evicted_rounds(), 2u);
  const auto entries = sink.entries();
  ASSERT_EQ(entries.size(), 3u);  // 2 newest "a" rounds + the "b" round.
  // "b" is untouched by "a"'s evictions, and the survivors are the newest
  // "a" rounds in order.
  EXPECT_EQ(entries[0].source, "b");
  EXPECT_EQ(entries[1].collected_at_nanos, 300);
  EXPECT_EQ(entries[2].collected_at_nanos, 400);
  EXPECT_DOUBLE_EQ(sink.Latest("a", "m"), 4);
  EXPECT_DOUBLE_EQ(sink.Latest("b", "m"), 10);
}

TEST(InMemorySinkTest, CapComesFromTheConfigKnob) {
  Config config;
  config.SetInt(config_keys::kInMemorySinkMaxRounds, 3);
  InMemorySink sink(config);
  EXPECT_EQ(sink.max_rounds_per_source(), 3u);

  InMemorySink defaulted((Config()));
  EXPECT_EQ(defaulted.max_rounds_per_source(),
            InMemorySink::kDefaultMaxRoundsPerSource);
}

TEST(InMemorySinkTest, ConcurrentFlushesAllRetainedUnderCap) {
  InMemorySink sink(/*max_rounds_per_source=*/1000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&sink, t] {
      const std::string source = "src-" + std::to_string(t);
      for (int i = 0; i < 200; ++i) {
        sink.Flush(source, {{"m", static_cast<double>(i)}}, i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sink.entries().size(), 800u);
  EXPECT_EQ(sink.evicted_rounds(), 0u);
}

TEST(ConsoleSinkTest, ConcurrentRoundsDoNotCrash) {
  // The per-round buffered write is asserted structurally (one fwrite per
  // Flush); here the sanitizer lanes get concurrent rounds to chew on.
  ConsoleSink sink;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&sink, t] {
      for (int i = 0; i < 8; ++i) {
        sink.Flush("src-" + std::to_string(t),
                   {{"m", static_cast<double>(i)}, {"n", 1}}, i * 1000000);
      }
    });
  }
  for (auto& t : threads) t.join();
}

TEST(MetricsManagerTest, CollectsEverySourceIntoEverySink) {
  VirtualClock clock(123);
  MetricsManager manager(&clock);
  MetricsRegistry smgr_registry;
  MetricsRegistry task_registry;
  smgr_registry.GetCounter("tuples")->Increment(10);
  task_registry.GetCounter("emitted")->Increment(20);

  ASSERT_TRUE(manager.RegisterSource("smgr-0", &smgr_registry).ok());
  ASSERT_TRUE(manager.RegisterSource("task-1", &task_registry).ok());
  EXPECT_TRUE(
      manager.RegisterSource("smgr-0", &smgr_registry).IsAlreadyExists());

  auto sink = std::make_shared<InMemorySink>();
  manager.AddSink(sink);
  manager.Collect();

  EXPECT_DOUBLE_EQ(sink->Latest("smgr-0", "tuples"), 10);
  EXPECT_DOUBLE_EQ(sink->Latest("task-1", "emitted"), 20);
  EXPECT_DOUBLE_EQ(sink->Latest("task-1", "missing", -1), -1);
  EXPECT_EQ(sink->entries().size(), 2u);
  EXPECT_EQ(sink->entries()[0].collected_at_nanos, 123);

  // Latest wins after another round.
  task_registry.GetCounter("emitted")->Increment(5);
  manager.Collect();
  EXPECT_DOUBLE_EQ(sink->Latest("task-1", "emitted"), 25);

  ASSERT_TRUE(manager.RemoveSource("task-1").ok());
  EXPECT_TRUE(manager.RemoveSource("task-1").IsNotFound());
  EXPECT_EQ(manager.Sources(), std::vector<std::string>{"smgr-0"});
}

}  // namespace
}  // namespace metrics
}  // namespace heron
