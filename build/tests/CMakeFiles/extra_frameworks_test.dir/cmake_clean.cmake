file(REMOVE_RECURSE
  "CMakeFiles/extra_frameworks_test.dir/frameworks/extra_frameworks_test.cc.o"
  "CMakeFiles/extra_frameworks_test.dir/frameworks/extra_frameworks_test.cc.o.d"
  "extra_frameworks_test"
  "extra_frameworks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_frameworks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
