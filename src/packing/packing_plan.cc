#include "packing/packing_plan.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace heron {
namespace packing {

namespace {
// Wire field numbers.
constexpr uint32_t kFieldTopologyName = 1;
constexpr uint32_t kFieldContainer = 2;
// ContainerPlan fields.
constexpr uint32_t kFieldContainerId = 1;
constexpr uint32_t kFieldInstance = 2;
constexpr uint32_t kFieldCpuMilli = 3;
constexpr uint32_t kFieldRamMb = 4;
constexpr uint32_t kFieldDiskMb = 5;
// InstancePlan fields.
constexpr uint32_t kFieldTaskId = 1;
constexpr uint32_t kFieldComponent = 2;
constexpr uint32_t kFieldComponentIndex = 3;
constexpr uint32_t kFieldInstCpuMilli = 4;
constexpr uint32_t kFieldInstRamMb = 5;
constexpr uint32_t kFieldInstDiskMb = 6;

int64_t CpuToMilli(double cpu) { return static_cast<int64_t>(cpu * 1000.0 + 0.5); }
double MilliToCpu(int64_t milli) { return static_cast<double>(milli) / 1000.0; }

void SerializeInstance(const InstancePlan& inst, serde::WireEncoder* enc) {
  enc->WriteInt32Field(kFieldTaskId, inst.task_id);
  enc->WriteStringField(kFieldComponent, inst.component);
  enc->WriteInt32Field(kFieldComponentIndex, inst.component_index);
  enc->WriteInt64Field(kFieldInstCpuMilli, CpuToMilli(inst.resources.cpu));
  enc->WriteInt64Field(kFieldInstRamMb, inst.resources.ram_mb);
  enc->WriteInt64Field(kFieldInstDiskMb, inst.resources.disk_mb);
}

Status ParseInstance(serde::BytesView bytes, InstancePlan* inst) {
  serde::WireDecoder dec(bytes);
  while (!dec.AtEnd()) {
    HERON_ASSIGN_OR_RETURN(uint32_t tag, dec.ReadTag());
    if (tag == 0) break;
    switch (serde::TagFieldNumber(tag)) {
      case kFieldTaskId: {
        HERON_ASSIGN_OR_RETURN(inst->task_id, dec.ReadInt32());
        break;
      }
      case kFieldComponent: {
        HERON_ASSIGN_OR_RETURN(serde::BytesView v, dec.ReadBytes());
        inst->component = std::string(v);
        break;
      }
      case kFieldComponentIndex: {
        HERON_ASSIGN_OR_RETURN(inst->component_index, dec.ReadInt32());
        break;
      }
      case kFieldInstCpuMilli: {
        HERON_ASSIGN_OR_RETURN(int64_t v, dec.ReadInt64());
        inst->resources.cpu = MilliToCpu(v);
        break;
      }
      case kFieldInstRamMb: {
        HERON_ASSIGN_OR_RETURN(inst->resources.ram_mb, dec.ReadInt64());
        break;
      }
      case kFieldInstDiskMb: {
        HERON_ASSIGN_OR_RETURN(inst->resources.disk_mb, dec.ReadInt64());
        break;
      }
      default:
        HERON_RETURN_NOT_OK(dec.SkipField(serde::TagWireType(tag)));
    }
  }
  return Status::OK();
}

void SerializeContainer(const ContainerPlan& c, serde::WireEncoder* enc) {
  enc->WriteInt32Field(kFieldContainerId, c.id);
  for (const auto& inst : c.instances) {
    const size_t mark = enc->BeginLengthDelimited(kFieldInstance);
    SerializeInstance(inst, enc);
    enc->EndLengthDelimited(mark);
  }
  enc->WriteInt64Field(kFieldCpuMilli, CpuToMilli(c.required.cpu));
  enc->WriteInt64Field(kFieldRamMb, c.required.ram_mb);
  enc->WriteInt64Field(kFieldDiskMb, c.required.disk_mb);
}

Status ParseContainer(serde::BytesView bytes, ContainerPlan* c) {
  serde::WireDecoder dec(bytes);
  while (!dec.AtEnd()) {
    HERON_ASSIGN_OR_RETURN(uint32_t tag, dec.ReadTag());
    if (tag == 0) break;
    switch (serde::TagFieldNumber(tag)) {
      case kFieldContainerId: {
        HERON_ASSIGN_OR_RETURN(c->id, dec.ReadInt32());
        break;
      }
      case kFieldInstance: {
        HERON_ASSIGN_OR_RETURN(serde::BytesView v, dec.ReadBytes());
        InstancePlan inst;
        HERON_RETURN_NOT_OK(ParseInstance(v, &inst));
        c->instances.push_back(std::move(inst));
        break;
      }
      case kFieldCpuMilli: {
        HERON_ASSIGN_OR_RETURN(int64_t v, dec.ReadInt64());
        c->required.cpu = MilliToCpu(v);
        break;
      }
      case kFieldRamMb: {
        HERON_ASSIGN_OR_RETURN(c->required.ram_mb, dec.ReadInt64());
        break;
      }
      case kFieldDiskMb: {
        HERON_ASSIGN_OR_RETURN(c->required.disk_mb, dec.ReadInt64());
        break;
      }
      default:
        HERON_RETURN_NOT_OK(dec.SkipField(serde::TagWireType(tag)));
    }
  }
  return Status::OK();
}

}  // namespace

int PackingPlan::NumInstances() const {
  int total = 0;
  for (const auto& c : containers_) {
    total += static_cast<int>(c.instances.size());
  }
  return total;
}

const ContainerPlan* PackingPlan::FindContainerOfTask(TaskId task) const {
  for (const auto& c : containers_) {
    for (const auto& inst : c.instances) {
      if (inst.task_id == task) return &c;
    }
  }
  return nullptr;
}

const ContainerPlan* PackingPlan::FindContainer(ContainerId id) const {
  for (const auto& c : containers_) {
    if (c.id == id) return &c;
  }
  return nullptr;
}

std::vector<TaskId> PackingPlan::TasksOfComponent(
    const ComponentId& component) const {
  std::vector<TaskId> tasks;
  for (const auto& c : containers_) {
    for (const auto& inst : c.instances) {
      if (inst.component == component) tasks.push_back(inst.task_id);
    }
  }
  std::sort(tasks.begin(), tasks.end());
  return tasks;
}

std::map<ComponentId, int> PackingPlan::ComponentParallelism() const {
  std::map<ComponentId, int> parallelism;
  for (const auto& c : containers_) {
    for (const auto& inst : c.instances) {
      ++parallelism[inst.component];
    }
  }
  return parallelism;
}

Resource PackingPlan::MaxContainerResource() const {
  Resource max;
  for (const auto& c : containers_) {
    max = Resource::Max(max, c.required);
  }
  return max;
}

Status PackingPlan::Validate(bool require_dense_task_ids) const {
  std::set<TaskId> task_ids;
  std::set<ContainerId> container_ids;
  std::map<ComponentId, std::set<int>> indices;
  for (const auto& c : containers_) {
    if (c.id < 0) {
      return Status::Internal(
          StrFormat("container id %d is negative", c.id));
    }
    if (!container_ids.insert(c.id).second) {
      return Status::Internal(StrFormat("duplicate container id %d", c.id));
    }
    if (c.instances.empty()) {
      return Status::Internal(StrFormat("container %d is empty", c.id));
    }
    if (!c.required.Fits(c.InstanceTotal())) {
      return Status::Internal(StrFormat(
          "container %d requirement %s below instance demand %s", c.id,
          c.required.ToString().c_str(), c.InstanceTotal().ToString().c_str()));
    }
    for (const auto& inst : c.instances) {
      if (!task_ids.insert(inst.task_id).second) {
        return Status::Internal(
            StrFormat("task %d placed twice", inst.task_id));
      }
      if (!indices[inst.component].insert(inst.component_index).second) {
        return Status::Internal(
            StrFormat("component '%s' index %d placed twice",
                      inst.component.c_str(), inst.component_index));
      }
    }
  }
  if (require_dense_task_ids) {
    int expected = 0;
    for (const TaskId id : task_ids) {
      if (id != expected++) {
        return Status::Internal("task ids are not dense from 0");
      }
    }
  }
  // Component indices dense from 0.
  for (const auto& [comp, idx_set] : indices) {
    int want = 0;
    for (const int idx : idx_set) {
      if (idx != want++) {
        return Status::Internal(StrFormat(
            "component '%s' indices are not dense from 0", comp.c_str()));
      }
    }
  }
  return Status::OK();
}

void PackingPlan::SerializeTo(serde::WireEncoder* enc) const {
  enc->WriteStringField(kFieldTopologyName, topology_name_);
  for (const auto& c : containers_) {
    const size_t mark = enc->BeginLengthDelimited(kFieldContainer);
    SerializeContainer(c, enc);
    enc->EndLengthDelimited(mark);
  }
}

Status PackingPlan::ParseFrom(serde::WireDecoder* dec) {
  while (!dec->AtEnd()) {
    HERON_ASSIGN_OR_RETURN(uint32_t tag, dec->ReadTag());
    if (tag == 0) break;
    switch (serde::TagFieldNumber(tag)) {
      case kFieldTopologyName: {
        HERON_ASSIGN_OR_RETURN(serde::BytesView v, dec->ReadBytes());
        topology_name_ = std::string(v);
        break;
      }
      case kFieldContainer: {
        HERON_ASSIGN_OR_RETURN(serde::BytesView v, dec->ReadBytes());
        ContainerPlan c;
        HERON_RETURN_NOT_OK(ParseContainer(v, &c));
        containers_.push_back(std::move(c));
        break;
      }
      default:
        HERON_RETURN_NOT_OK(dec->SkipField(serde::TagWireType(tag)));
    }
  }
  return Status::OK();
}

void PackingPlan::Clear() {
  topology_name_.clear();
  containers_.clear();
}

std::string PackingPlan::ToString() const {
  std::string out = StrFormat("PackingPlan{topology=%s, containers=%d\n",
                              topology_name_.c_str(), NumContainers());
  for (const auto& c : containers_) {
    out += StrFormat("  container %d %s:", c.id,
                     c.required.ToString().c_str());
    for (const auto& inst : c.instances) {
      out += StrFormat(" %s[%d]#%d", inst.component.c_str(),
                       inst.component_index, inst.task_id);
    }
    out += "\n";
  }
  out += "}";
  return out;
}

bool PackingPlan::operator==(const PackingPlan& o) const {
  if (topology_name_ != o.topology_name_ ||
      containers_.size() != o.containers_.size()) {
    return false;
  }
  for (size_t i = 0; i < containers_.size(); ++i) {
    const ContainerPlan& a = containers_[i];
    const ContainerPlan& b = o.containers_[i];
    if (a.id != b.id || !(a.required == b.required) ||
        a.instances != b.instances) {
      return false;
    }
  }
  return true;
}

Resource ContainerOverhead() { return Resource(1.0, 512, 0); }

}  // namespace packing
}  // namespace heron
