# Empty dependencies file for fig07_08_smgr_opts_acks.
# This may be replaced when dependencies are built.
