# Empty compiler generated dependencies file for heron_ipc.
# This may be replaced when dependencies are built.
