#ifndef HERON_SCHEDULER_SCHEDULER_H_
#define HERON_SCHEDULER_SCHEDULER_H_

#include <string>

#include "common/config.h"
#include "packing/packing_plan.h"

namespace heron {
namespace scheduler {

/// Control-plane requests, mirroring the paper's API surface.
struct KillTopologyRequest {
  std::string topology;
};

struct RestartTopologyRequest {
  std::string topology;
  /// Specific container to restart, or -1 for every container.
  ContainerId container = -1;
};

struct UpdateTopologyRequest {
  std::string topology;
  /// The new plan produced by the Resource Manager's repack (§IV-A);
  /// "the Scheduler might remove existing containers or request new
  /// containers from the underlying scheduling framework".
  packing::PackingPlan new_plan;
};

/// \brief Starts and stops the Heron processes of a container.
///
/// "The Scheduler is also responsible for starting all the Heron
/// processes assigned to the container" (§II) — the runtime implements
/// this to spin up the container's Stream Manager, Metrics Manager and
/// Heron Instances; schedulers call it whenever the underlying framework
/// (re)starts a container slot.
class IContainerLauncher {
 public:
  virtual ~IContainerLauncher() = default;
  virtual Status StartContainer(const packing::ContainerPlan& container) = 0;
  virtual Status StopContainer(ContainerId id) = 0;
};

/// \brief The pluggable Scheduler module (§IV-B). Direct C++ rendering of
/// the paper's interface:
///
///   public interface Scheduler {
///     void initialize(Configuration conf)
///     void onSchedule(PackingPlan initialPlan);
///     void onKill(KillTopologyRequest request);
///     void onRestart(RestartTopologyRequest request);
///     void onUpdate(UpdateTopologyRequest request);
///     void close()
///   }
///
/// "The Scheduler can be either stateful or stateless depending on the
/// capabilities of the underlying scheduling framework": IsStateful()
/// reports which mode a concrete scheduler is operating in.
class IScheduler {
 public:
  virtual ~IScheduler() = default;

  virtual Status Initialize(const Config& conf) = 0;

  /// Receives the initial packing plan from the Resource Manager and
  /// allocates the specified resources from the underlying framework.
  virtual Status OnSchedule(const packing::PackingPlan& initial_plan) = 0;

  virtual Status OnKill(const KillTopologyRequest& request) = 0;
  virtual Status OnRestart(const RestartTopologyRequest& request) = 0;
  virtual Status OnUpdate(const UpdateTopologyRequest& request) = 0;
  virtual void Close() = 0;

  /// The TMaster's heartbeat monitor declared `container` dead (§IV-B).
  /// Concrete schedulers route this per the framework contract: a
  /// framework that auto-restarts failures is told about the failure and
  /// recovers on its own; a stateful scheduler restarts the container
  /// explicitly. The container's processes are already gone — handlers
  /// must tolerate stop-side NotFound. Default: treat as a restart request.
  ///
  /// Exactly-once note (heron.checkpoint.mode == "exactly-once"): the
  /// runtime halts every *surviving* container before this is invoked and
  /// restarts them afterwards — the scheduler still only owns the dead
  /// container's relaunch. Restarted containers restore the latest
  /// globally-complete checkpoint on startup; the scheduler contract is
  /// unchanged.
  virtual Status OnContainerDead(const std::string& topology,
                                 ContainerId container) {
    return OnRestart({topology, container});
  }

  virtual bool IsStateful() const = 0;
  virtual std::string Name() const = 0;
};

}  // namespace scheduler
}  // namespace heron

#endif  // HERON_SCHEDULER_SCHEDULER_H_
