file(REMOVE_RECURSE
  "CMakeFiles/fig14_resource_breakdown.dir/figures/fig14_resource_breakdown.cc.o"
  "CMakeFiles/fig14_resource_breakdown.dir/figures/fig14_resource_breakdown.cc.o.d"
  "fig14_resource_breakdown"
  "fig14_resource_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_resource_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
