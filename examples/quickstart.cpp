// Quickstart: build a WordCount topology with the public API, run it on a
// local Heron cluster (real Stream Managers and Heron Instances on
// threads), and read back metrics.
//
//   $ ./build/examples/quickstart
//
// This is the topology the paper benchmarks (§VI-A): word spouts, hash
// (fields) partitioning, counting bolts.

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/logging.h"
#include "runtime/local_cluster.h"
#include "workloads/word_count.h"

using namespace heron;

int main() {
  Logging::SetLevel(LogLevel::kWarning);

  // 1. Configure the engine: acking on, §V-B flow control, modular knobs.
  Config config;
  config.SetBool(config_keys::kAckingEnabled, true);
  config.SetInt(config_keys::kMaxSpoutPending, 2000);
  config.SetInt(config_keys::kCacheDrainFrequencyMs, 5);
  config.Set(config_keys::kPackingAlgorithm, "ROUND_ROBIN");
  config.SetInt(config_keys::kNumContainersHint, 2);

  // 2. Declare the topology: 2 word spouts → fields-grouped → 2 counters.
  workloads::WordSpout::Options spout_options;
  spout_options.dictionary_size = 10000;
  spout_options.words_per_call = 4;
  auto topology = workloads::BuildWordCountTopology("quickstart", 2, 2,
                                                    spout_options, config);
  if (!topology.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 topology.status().ToString().c_str());
    return 1;
  }

  // 3. Submit: Resource Manager packs, Scheduler starts the containers.
  runtime::LocalCluster cluster(config);
  HERON_CHECK_OK(cluster.Submit(*topology));
  std::printf("topology running: %d containers, %d instances\n",
              cluster.current_packing_plan().NumContainers(),
              cluster.current_packing_plan().NumInstances());

  // 4. Let it stream for two seconds, then report.
  std::this_thread::sleep_for(std::chrono::seconds(2));
  std::printf("emitted:  %llu tuples\n",
              static_cast<unsigned long long>(
                  cluster.SumCounter("instance.emitted")));
  std::printf("executed: %llu tuples\n",
              static_cast<unsigned long long>(
                  cluster.SumCounter("instance.executed")));
  std::printf("acked:    %llu tuple trees\n",
              static_cast<unsigned long long>(
                  cluster.SumCounter("instance.acked")));
  std::printf("p50 end-to-end latency: %.2f ms\n",
              static_cast<double>(cluster.CompleteLatencyQuantile(0.5)) /
                  1e6);

  HERON_CHECK_OK(cluster.Kill());
  std::printf("topology killed cleanly\n");
  return 0;
}
