file(REMOVE_RECURSE
  "libheron_runtime.a"
)
