#ifndef HERON_RUNTIME_TASKLET_H_
#define HERON_RUNTIME_TASKLET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "ipc/wakeup.h"
#include "observability/journal.h"
#include "runtime/event_loop.h"

namespace heron {
namespace runtime {

/// What a pool worker does when none of its tasklets made progress.
///
///   kCondvarPark   park on the worker's coalescing Wakeup until a chained
///                  member loop announces work or a deadline arrives — the
///                  default, lowest CPU, pays one futex wake per handoff.
///   kAdaptiveSpin  spin (cpu-relax) for a bounded window first, then fall
///                  back to parking — absorbs sub-window handoff gaps
///                  without a syscall, the Hazelcast-Jet middle ground.
///   kBusySpin      never park; spin on the member loops — lowest tail
///                  latency, one core burned per worker.
enum class IdlePolicy {
  kCondvarPark,
  kAdaptiveSpin,
  kBusySpin,
};

/// Parses "condvar-park" | "adaptive-spin" | "busy-spin".
Result<IdlePolicy> ParseIdlePolicy(std::string_view text);
const char* IdlePolicyName(IdlePolicy policy);

/// Knobs for one tasklet's slice autotuner (see Tasklet).
struct TaskletOptions {
  /// Target wall time for one Drive() slice. A single RunOnce() step is
  /// the uninterruptible unit, so overrunning steps halve the burst
  /// budget while in-budget steps grow it additively — AIMD against
  /// overrun, so a tasklet that turns expensive (bigger tuples, slower
  /// Execute) backs off fast and re-probes slowly.
  int64_t target_slice_nanos = 200000;  // 200 us.
  /// Bound on one uninterruptible RunOnce() step; 0 = 8x the slice
  /// target. Distinct from the slice target on purpose: the slice is a
  /// tasklet's fair share of a pass, while the step bound is the worst
  /// stall one tasklet may inflict on its worker. Sizing steps to the
  /// slice target itself would convoy bursty traffic — a 64-tuple burst
  /// whose drain costs a few slice targets of CPU would be doled out a
  /// handful of tuples per pass, turning microseconds of work into
  /// milliseconds of queueing.
  int64_t max_step_nanos = 0;
  size_t min_burst = 8;
  size_t max_burst = 1024;
  size_t burst_step = 32;  ///< Additive increase per in-budget step.
  /// Deterministic bound on RunOnce() steps per slice. The wall-time
  /// check cannot be the only slice bound: under a virtual clock time
  /// never advances inside Drive(), and idle-worker progress (a spout's
  /// NextTuple runs once per step, not once per burst) must still be
  /// sliced fairly against source-burst progress.
  size_t max_steps_per_slice = 64;
};

/// \brief One cooperatively-scheduled module loop: an EventLoop driven in
/// bounded slices from a pool worker instead of Run() on an owned thread.
///
/// Drive() = one slice: repeated RunOnce() steps until the slice's wall
/// budget (`target_slice_nanos`) or the deterministic step cap is spent,
/// or the loop reports no progress. Each step drains at most `budget_`
/// tuples per source; one step is the uninterruptible unit, so that
/// burst is the yield contract — a tasklet may not hog its worker past
/// the step bound (`max_step_nanos`) — and it is autotuned instead of
/// guessed: multiplicative decrease when a step overruns the bound,
/// additive increase otherwise, plus a predictive per-tuple-cost clamp
/// so the overrun case is the exception, not the steady state. Idle-worker
/// progress (a spout's NextTuple) happens once per step, which is why a
/// slice is many steps: one step per pass would let a burst-drained
/// consumer starve its producer of offered load. Everything here runs on
/// one driving thread at a time — the pool's per-handle mutex enforces
/// that.
class Tasklet {
 public:
  /// The burst budget slow-starts from `min_burst`: additive increase
  /// reaches `max_burst` within ~(max-min)/step in-budget steps, while
  /// starting high would let the very first steps of a cold loop run
  /// multi-millisecond slices (draining a pre-filled channel at full
  /// burst) before the autotuner has any overrun signal to react to —
  /// a startup transient that lands exactly in the p99.99 tail.
  Tasklet(EventLoop* loop, const TaskletOptions& options, const Clock* clock)
      : loop_(loop), options_(options), clock_(clock),
        step_bound_nanos_(options.max_step_nanos > 0
                              ? options.max_step_nanos
                              : 8 * options.target_slice_nanos),
        budget_(options.min_burst) {}

  /// One slice: returns whether the loop reported progress.
  bool Drive() {
    const int64_t slice_start = clock_->NowNanos();
    bool did_work = false;
    size_t steps = 0;
    do {
      // Predictive clamp on top of AIMD: AIMD only reacts *after* an
      // overrunning step has run to completion, and one full-burst step
      // against a sudden backlog can take milliseconds — straight into
      // the deep tail the step bound exists to cap. The per-tuple cost
      // EWMA turns the bound into a burst the step can actually finish
      // in time, with a floor of 1 — a loop whose single tuple costs
      // more than the bound (a CPU-heavy Execute) drains one at a time.
      // (The EWMA stays zero under a virtual clock, where steps take no
      // wall time: the clamp stays off and stepping stays deterministic.)
      size_t burst = budget_;
      if (cost_ewma_nanos_ > 0) {
        const size_t cap = std::max(
            size_t{1},
            static_cast<size_t>(static_cast<double>(step_bound_nanos_) /
                                cost_ewma_nanos_));
        burst = std::min(burst, cap);
      }
      loop_->set_burst(burst);
      const int64_t step_start = clock_->NowNanos();
      const bool step_work = loop_->RunOnce();
      const int64_t step_elapsed = clock_->NowNanos() - step_start;
      const size_t handled = loop_->last_step_handled();
      if (handled > 0 && step_elapsed > 0) {
        const double cost =
            static_cast<double>(step_elapsed) / static_cast<double>(handled);
        cost_ewma_nanos_ =
            cost_ewma_nanos_ > 0 ? (cost_ewma_nanos_ * 7 + cost) / 8 : cost;
      }
      ++steps;
      // Only steps that did work carry a cost signal: an idle step must
      // not creep the budget toward max, or a long-idle tasklet would
      // meet its next flood with a cold full-burst step — the recurring
      // version of the startup transient slow-start exists to prevent.
      if (step_work) {
        // Overrun = the step bound, not the slice target: a step is
        // allowed to spend several slice targets draining a burst (that
        // is what keeps bursts from convoying across passes); only a
        // step that blows the uninterruptible-stall contract halves the
        // budget.
        if (step_elapsed > step_bound_nanos_) {
          ++overruns_;
          budget_ = std::max(options_.min_burst, budget_ / 2);
        } else if (budget_ < options_.max_burst) {
          budget_ =
              std::min(options_.max_burst, budget_ + options_.burst_step);
        }
      } else {
        break;
      }
      did_work = true;
    } while (steps < options_.max_steps_per_slice &&
             clock_->NowNanos() - slice_start < options_.target_slice_nanos);
    ++slices_;
    return did_work;
  }

  /// True when the loop would have exited Run(): stopped, or every channel
  /// source closed and drained.
  bool Done() const { return loop_->stopped() || loop_->sources_done(); }

  EventLoop* loop() const { return loop_; }
  size_t budget() const { return budget_; }
  /// Per-tuple wall cost estimate (ns); 0 until a timed step drained work.
  double cost_ewma_nanos() const { return cost_ewma_nanos_; }
  uint64_t slices() const { return slices_; }
  uint64_t overruns() const { return overruns_; }

 private:
  EventLoop* loop_;
  TaskletOptions options_;
  const Clock* clock_;
  const int64_t step_bound_nanos_;
  size_t budget_;
  double cost_ewma_nanos_ = 0;
  uint64_t slices_ = 0;
  uint64_t overruns_ = 0;
};

/// \brief Thread-per-core cooperative scheduler: N workers, each driving
/// many tasklets round-robin, parking per the configured IdlePolicy.
///
/// This is `heron.execution.mode=cooperative`'s engine. Instead of one OS
/// thread per instance (tail latency at the mercy of the kernel scheduler
/// once instances outnumber cores), every module EventLoop becomes a
/// tasklet on one of a fixed set of workers — the Hazelcast-Jet execution
/// model grafted onto the paper's §II reactor kernel.
///
/// ## Wakeup protocol (lost-wakeup-free parking)
/// Add() chains the member loop's Wakeup to its worker's Wakeup: producers
/// notify the member latch, which forwards one coalesced notify to the
/// worker. Because member latches coalesce (a second notify while pending
/// forwards nothing), a worker must Poll() every member latch immediately
/// before parking — any pending latch means undrained work, so it re-drives
/// instead of parking, and the cleared latch re-arms forwarding. A notify
/// landing between the Poll and the park still reaches the worker's own
/// latch, which WaitFor() consumes.
///
/// ## Retire fence
/// Retire() is synchronous: it marks the handle retired, then acquires the
/// per-handle drive mutex, guaranteeing any in-flight Drive() finished and
/// no later one starts. After Retire() returns, the caller owns the loop
/// again (e.g. to drain it on its own thread during graceful Stop).
///
/// ## Inline mode
/// `Options::threaded=false` spawns no threads; DriveAll() steps every
/// worker's tasklets once, in registration order, from the caller — the
/// deterministic two-universe harness for cooperative mode.
class TaskletPool {
 public:
  struct Options {
    /// Worker count; 0 = one per hardware core.
    size_t workers = 0;
    /// False = inline stepping via DriveAll() (deterministic tests).
    bool threaded = true;
    IdlePolicy idle_policy = IdlePolicy::kCondvarPark;
    /// Adaptive-spin window before falling back to a park.
    int64_t spin_window_nanos = 50000;  // 50 us.
    /// Cap on any single park (back-pressure flags clear silently).
    int64_t max_park_nanos = 1000000;  // 1 ms.
    TaskletOptions tasklet;
    /// Profiling: when true, workers account busy wall-time per pass so
    /// CollectStats() can report an occupancy ratio. Two clock reads per
    /// drive pass — cheap against a pass that did work, but off together
    /// with the rest of the observability layer when the journal is dark.
    bool profile = true;
    /// Timeline slices: when set, every progressing Drive() records a
    /// (worker, tasklet, start, duration) slice. Owned by the caller
    /// (LocalCluster); nullptr leaves the scheduler out of the timeline.
    observability::SliceRing* slice_ring = nullptr;
  };

  class Handle;

  TaskletPool(const Options& options, const Clock* clock);
  ~TaskletPool();

  TaskletPool(const TaskletPool&) = delete;
  TaskletPool& operator=(const TaskletPool&) = delete;

  /// Registers `loop` as a tasklet, round-robin across workers, and chains
  /// its wakeup. The loop must be fully registered (channels, timers, idle
  /// workers) before Add — the pool worker becomes its driving thread.
  /// Returns a handle for Retire(); owned by the pool.
  Handle* Add(EventLoop* loop);

  /// Synchronously stops driving `handle`'s loop (see class comment).
  /// Idempotent; null is a no-op. Does not stop or drain the loop itself.
  void Retire(Handle* handle);

  void Start();
  /// Stops and joins every worker. Member loops are left as-is.
  void Stop();

  /// Inline mode: one Drive pass over every tasklet; true when any
  /// progressed. Threaded pools must not call this.
  bool DriveAll();

  /// \brief Aggregated scheduler profile: what the pool's tasklets and
  /// workers have been doing since Start(). Tasklet counters cover the
  /// *live* (un-retired) handles; worker busy/wall cover every threaded
  /// worker since its Run() began.
  struct SchedulerStats {
    size_t workers = 0;
    uint64_t tasklets = 0;     ///< Live handles.
    uint64_t slices = 0;       ///< Drive() slices across live tasklets.
    uint64_t overruns = 0;     ///< Steps that blew the step bound.
    uint64_t budget_sum = 0;   ///< Sum of current autotuned burst budgets.
    double cost_ewma_sum = 0;  ///< Sum of per-tuple cost estimates (ns).
    int64_t busy_nanos = 0;    ///< Worker wall-time inside drive passes.
    int64_t wall_nanos = 0;    ///< Worker wall-time since Run() started.
    /// Fraction of worker wall-time spent driving; 0 when unprofiled or
    /// inline (no worker threads, so no wall to divide by).
    double occupancy() const {
      return wall_nanos > 0
                 ? static_cast<double>(busy_nanos) /
                       static_cast<double>(wall_nanos)
                 : 0.0;
    }
  };

  /// Snapshot of the scheduler profile; safe from any thread (briefly
  /// fences each tasklet's drive mutex). `now_nanos` bounds the wall term.
  SchedulerStats CollectStats(int64_t now_nanos) const;

  /// Registration-ordered tasklet names (their loops' names); index =
  /// the ordinal recorded in SchedSlice::tasklet. Names persist past
  /// retirement so old slices stay resolvable.
  std::vector<std::string> TaskletNames() const;

  size_t num_workers() const { return workers_.size(); }
  const Options& options() const { return options_; }

 private:
  class Worker;

  Options options_;
  const Clock* clock_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<size_t> next_worker_{0};
  bool started_ = false;
  /// Keeps every un-retired handle alive independent of the workers'
  /// member lists, so Retire() can safely dereference the raw pointer it
  /// was given (and detect an already-retired one without touching it).
  mutable std::mutex registry_mu_;
  std::unordered_map<Handle*, std::shared_ptr<Handle>> registry_;
  /// Registration-ordered loop names; index = SchedSlice ordinal.
  /// Guarded by registry_mu_; grows only.
  std::vector<std::string> names_;
};

}  // namespace runtime
}  // namespace heron

#endif  // HERON_RUNTIME_TASKLET_H_
